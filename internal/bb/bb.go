// Package bb defines the problem abstraction shared by every Branch and
// Bound engine in this repository and provides the classical sequential
// depth-first B&B solver, which serves both as the correctness oracle for
// the grid engine and as the single-processor baseline of the paper's
// evaluation.
//
// Problems are expressed as backtracking state machines over a regular tree
// (see internal/tree): the engine drives Descend/Ascend calls along a
// root-to-leaf path and asks for bounds and leaf costs; the problem never
// allocates per node, which keeps the exploration hot loop free of garbage.
// All problems are minimization problems; maximization problems negate
// their objective (see internal/knapsack).
package bb

import (
	"math"

	"repro/internal/tree"
)

// Infinity is the lower-bound sentinel meaning "this subtree contains no
// feasible solution"; any node bounded at Infinity is pruned whatever the
// incumbent is.
const Infinity int64 = math.MaxInt64

// Problem is a combinatorial minimization problem explored over a regular
// tree. Implementations maintain the state of the current root-to-leaf path
// internally and mutate it in place as the engine descends and ascends.
//
// The branching operator is expressed through Descend(rank): rank r selects
// the r-th child in the problem's canonical child order, which must be
// deterministic and identical in every process — the node-number coding of
// the paper (§3.2) is a shared coordinate system and only works if every
// worker agrees on which child has which rank.
//
// Implementations must generate the full regular tree: children that are
// infeasible in the problem domain still exist in the shape and must be
// reported as hopeless through Bound() returning Infinity, never by
// shrinking the branching factor, which would desynchronize the numbering.
type Problem interface {
	// Shape returns the regular tree explored by the problem. It must be
	// constant for the lifetime of the value.
	Shape() tree.Shape
	// Reset returns the path to the root. Engines call it before any
	// exploration and implementations must support repeated calls.
	Reset()
	// Descend extends the current path with the child of the given rank
	// (0-based, in canonical order). The engine guarantees
	// 0 <= rank < Shape().Branching(depth) where depth is the current
	// path depth.
	Descend(rank int)
	// Ascend removes the deepest element of the current path. The engine
	// never calls it at the root.
	Ascend()
	// Bound returns a lower bound on the cost of every leaf below the
	// current path node. Tighter is better; Infinity prunes
	// unconditionally. Bound is never called on a leaf.
	//
	// The cutoff is the engine's pruning threshold (the incumbent cost):
	// the engine eliminates the subtree exactly when the returned value is
	// >= cutoff. Implementations may stop computing and return early as
	// soon as a partial evaluation already proves the bound >= cutoff; the
	// returned value must itself remain an admissible lower bound, so
	//
	//	Bound(cutoff) >= cutoff  ⟺  the full bound >= cutoff
	//
	// and with an unreachable cutoff (bb.Infinity) the result is the full,
	// exact bound. This cutoff-aware contract is what keeps deep, hopeless
	// nodes cheap: most are eliminated by a fraction of the full bound
	// computation (see DESIGN.md §2).
	Bound(cutoff int64) int64
	// Cost returns the objective value of the current leaf. It is only
	// called when the path has reached depth Shape().Depth().
	Cost() int64
}

// Decoder is implemented by problems that can translate a rank path into a
// domain-level solution description (a job permutation, a tour, an item
// subset...). It is optional; engines report rank paths either way.
type Decoder interface {
	// DecodePath renders the solution identified by the rank path.
	DecodePath(ranks []int) string
}

// Solution is an incumbent: the best leaf found so far.
type Solution struct {
	// Cost is the objective value. Infinity means "no solution found".
	Cost int64
	// Path is the rank path from the root to the leaf; its length is the
	// tree depth. Nil when Cost is Infinity.
	Path []int
}

// Valid reports whether the solution denotes an actual leaf.
func (s Solution) Valid() bool { return s.Cost < Infinity && s.Path != nil }

// Clone returns a deep copy of the solution.
func (s Solution) Clone() Solution {
	c := Solution{Cost: s.Cost}
	if s.Path != nil {
		c.Path = append([]int(nil), s.Path...)
	}
	return c
}

// Stats aggregates exploration counters. "Explored" counts every node
// visited (branched or evaluated), matching the paper's "explored nodes"
// statistic in Table 2; "Pruned" counts subtrees eliminated by bounding.
type Stats struct {
	Explored int64 // nodes visited (internal nodes decomposed + leaves evaluated)
	Pruned   int64 // subtrees cut by the bounding operator
	Leaves   int64 // leaves evaluated
	Improved int64 // times the incumbent improved
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Explored += other.Explored
	s.Pruned += other.Pruned
	s.Leaves += other.Leaves
	s.Improved += other.Improved
}

// Solve runs a sequential depth-first Branch and Bound to completion and
// returns the optimal solution (or an invalid one if the tree has no leaf,
// which only happens for depth-0 shapes). initialUpper primes the incumbent
// cost — the paper initializes runs on Ta056 with the best known makespan
// (3681, then 3680, §5.3); pass Infinity when no upper bound is known.
// Pruning uses "bound >= incumbent", so Solve proves optimality of the
// returned cost even when initialUpper equals the optimum: it will simply
// find no improving leaf, and the caller learns the initial bound was
// optimal if the returned solution is invalid.
func Solve(p Problem, initialUpper int64) (Solution, Stats) {
	eng := engine{p: p, best: Solution{Cost: initialUpper}}
	eng.run()
	return eng.best, eng.stats
}

// engine is the plain DFS baseline: no interval coding, a single path walk.
type engine struct {
	p     Problem
	best  Solution
	stats Stats
}

func (e *engine) run() {
	p := e.p
	shape := p.Shape()
	depthMax := shape.Depth()
	p.Reset()
	if depthMax == 0 {
		return
	}
	// cursor[d] is the rank of the next child to try at depth d; the
	// current path is defined by cursor[d]-1 for d < depth. Branching
	// factors are cached up front: one slice load per node instead of an
	// interface call.
	cursor := make([]int, depthMax)
	path := make([]int, depthMax)
	branch := Branchings(shape)
	depth := 0
	for {
		if cursor[depth] >= branch[depth] {
			// Level exhausted: backtrack.
			cursor[depth] = 0
			if depth == 0 {
				return
			}
			depth--
			p.Ascend()
			continue
		}
		r := cursor[depth]
		cursor[depth]++
		path[depth] = r
		p.Descend(r)
		e.stats.Explored++
		if depth+1 == depthMax {
			// Leaf.
			e.stats.Leaves++
			if c := p.Cost(); c < e.best.Cost {
				e.best.Cost = c
				e.best.Path = append(e.best.Path[:0], path...)
				e.stats.Improved++
			}
			p.Ascend()
			continue
		}
		if b := p.Bound(e.best.Cost); b >= e.best.Cost {
			e.stats.Pruned++
			p.Ascend()
			continue
		}
		depth++
	}
}

// Branchings caches the branching factor of every internal depth in a slice,
// trading one interface dispatch per visited node for a slice load in the
// engines' hot loops.
func Branchings(s tree.Shape) []int {
	b := make([]int, s.Depth())
	for d := range b {
		b[d] = s.Branching(d)
	}
	return b
}

// Enumerate visits every leaf of the problem tree without any bounding and
// reports the best one. It is exponential and exists solely as a brute-force
// oracle for tests on tiny instances.
func Enumerate(p Problem) (Solution, Stats) {
	shape := p.Shape()
	depthMax := shape.Depth()
	p.Reset()
	best := Solution{Cost: Infinity}
	var stats Stats
	if depthMax == 0 {
		return best, stats
	}
	path := make([]int, 0, depthMax)
	var walk func(depth int)
	walk = func(depth int) {
		if depth == depthMax {
			stats.Leaves++
			if c := p.Cost(); c < best.Cost {
				best.Cost = c
				best.Path = append([]int(nil), path...)
				stats.Improved++
			}
			return
		}
		for r := 0; r < shape.Branching(depth); r++ {
			p.Descend(r)
			stats.Explored++
			path = append(path, r)
			walk(depth + 1)
			path = path[:len(path)-1]
			p.Ascend()
		}
	}
	walk(0)
	return best, stats
}
