package bb

import (
	"testing"

	"repro/internal/tree"
)

// toyProblem is a uniform tree whose leaf costs are a fixed function of the
// rank path, with a configurable bound quality, letting tests control
// pruning behaviour precisely.
type toyProblem struct {
	shape tree.Uniform
	path  []int
	// exactBound makes Bound() return the true subtree minimum; false
	// returns 0 (never prunes).
	exactBound bool
}

func newToy(p, k int, exact bool) *toyProblem {
	return &toyProblem{shape: tree.Uniform{P: p, K: k}, exactBound: exact}
}

func (t *toyProblem) Shape() tree.Shape { return t.shape }
func (t *toyProblem) Reset()            { t.path = t.path[:0] }
func (t *toyProblem) Descend(rank int)  { t.path = append(t.path, rank) }
func (t *toyProblem) Ascend()           { t.path = t.path[:len(t.path)-1] }

// leafCost: sum of (rank+1)*depth weights — deterministic, spread out, with
// a unique minimum at the all-zero path.
func (t *toyProblem) costOf(path []int) int64 {
	var c int64 = 100
	for d, r := range path {
		c += int64(r) * int64(d+1) * 7 % 31
	}
	return c
}

func (t *toyProblem) Cost() int64 { return t.costOf(t.path) }

func (t *toyProblem) Bound(int64) int64 {
	if !t.exactBound {
		return 0
	}
	// The minimum completion keeps all remaining ranks at 0, which add
	// nothing: the current partial cost is the exact subtree minimum.
	return t.costOf(t.path)
}

// TestSolveFindsEnumerateOptimum: with a useless bound, Solve degenerates
// to full enumeration and both agree.
func TestSolveFindsEnumerateOptimum(t *testing.T) {
	p := newToy(5, 3, false)
	brute, bstats := Enumerate(p)
	sol, stats := Solve(p, Infinity)
	if sol.Cost != brute.Cost {
		t.Fatalf("solve %d != enumerate %d", sol.Cost, brute.Cost)
	}
	if stats.Leaves != bstats.Leaves {
		t.Fatalf("unpruned solve visited %d leaves, enumerate %d", stats.Leaves, bstats.Leaves)
	}
	if stats.Pruned != 0 {
		t.Fatalf("useless bound pruned %d subtrees", stats.Pruned)
	}
}

// TestSolvePrunesWithExactBound: an exact bound prunes everything except
// one root-to-leaf spine.
func TestSolvePrunesWithExactBound(t *testing.T) {
	p := newToy(6, 3, true)
	sol, stats := Solve(p, Infinity)
	brute, _ := Enumerate(p)
	if sol.Cost != brute.Cost {
		t.Fatalf("solve %d != enumerate %d", sol.Cost, brute.Cost)
	}
	if stats.Pruned == 0 {
		t.Fatal("exact bound never pruned")
	}
	if stats.Explored >= 3*729 {
		t.Fatalf("exact bound still explored %d nodes", stats.Explored)
	}
}

// TestSolveWithOptimalPrime: priming with the exact optimum finds no
// improving leaf but proves the bound.
func TestSolveWithOptimalPrime(t *testing.T) {
	p := newToy(4, 3, true)
	brute, _ := Enumerate(p)
	sol, stats := Solve(p, brute.Cost)
	if sol.Valid() {
		t.Fatalf("primed-at-optimum run claims an improving solution %v", sol)
	}
	if stats.Improved != 0 {
		t.Fatalf("improved %d times below the optimum", stats.Improved)
	}
	// Priming one above the optimum recovers the solution itself.
	sol, _ = Solve(p, brute.Cost+1)
	if !sol.Valid() || sol.Cost != brute.Cost {
		t.Fatalf("primed-above run found %v, want cost %d", sol, brute.Cost)
	}
}

// TestSolutionClone: clones are deep.
func TestSolutionClone(t *testing.T) {
	s := Solution{Cost: 5, Path: []int{1, 2, 3}}
	c := s.Clone()
	c.Path[0] = 9
	if s.Path[0] != 1 {
		t.Fatal("clone shares the path slice")
	}
	var empty Solution
	if empty.Valid() {
		t.Fatal("zero solution valid")
	}
	if empty.Clone().Path != nil {
		t.Fatal("clone invented a path")
	}
}

// TestStatsAdd accumulates.
func TestStatsAdd(t *testing.T) {
	a := Stats{Explored: 1, Pruned: 2, Leaves: 3, Improved: 4}
	a.Add(Stats{Explored: 10, Pruned: 20, Leaves: 30, Improved: 40})
	if a != (Stats{Explored: 11, Pruned: 22, Leaves: 33, Improved: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

// TestZeroDepthShape: a depth-0 tree has no leaves to visit; Solve returns
// an invalid solution rather than crashing.
func TestZeroDepthShape(t *testing.T) {
	p := newToy(0, 1, false)
	sol, stats := Solve(p, Infinity)
	if sol.Valid() || stats.Explored != 0 {
		t.Fatalf("zero-depth solve = %v, %+v", sol, stats)
	}
	sol, _ = Enumerate(p)
	if sol.Valid() {
		t.Fatalf("zero-depth enumerate = %v", sol)
	}
}
