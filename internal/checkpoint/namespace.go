// Checkpoint namespaces: the multi-tenant extension of the §4.1 two-file
// layout. One store directory holds one sub-store per job, each with its
// own intervals.ckpt/solution.ckpt pair, so every job's resolution is
// independently resumable and inspectable:
//
//	store/
//	  default/intervals.ckpt  ← pre-namespace stores migrate here
//	  default/solution.ckpt
//	  <job-id>/intervals.ckpt
//	  <job-id>/solution.ckpt
//
// Namespace names are vetted before they touch the filesystem — a job id
// arrives over the network, and "../" or a path separator must never
// escape the store directory.
package checkpoint

import (
	"fmt"
	"path/filepath"
)

// DefaultNamespace is where a bare (pre-namespace, single-job) store's
// files migrate, and where requests that name no job resolve.
const DefaultNamespace = "default"

// MaxNamespaceBytes bounds a namespace name; job ids arrive over the
// network and become directory names.
const MaxNamespaceBytes = 128

// ValidNamespace reports whether name is safe to use as a sub-store
// directory: non-empty, bounded, and built only from bytes that cannot
// carry path structure or filesystem surprises. The quarantine directory
// name is reserved — a job by that name would collide with the store's
// corrupt-file holding area.
func ValidNamespace(name string) bool {
	if name == "" || len(name) > MaxNamespaceBytes {
		return false
	}
	if name == quarantineDir {
		return false
	}
	if name[0] == '.' || name[len(name)-1] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Namespace returns the sub-store for one job, creating its directory.
// The sub-store shares the parent's filesystem and self-healing counters,
// so injected disk faults and quarantine events aggregate at the root. A
// bare single-job store (files directly under dir, from before the
// namespace layout) is migrated once into the default namespace, so old
// deployments resume under the new layout with nothing lost.
func (s *Store) Namespace(name string) (*Store, error) {
	if !ValidNamespace(name) {
		return nil, fmt.Errorf("checkpoint: invalid namespace %q", name)
	}
	if name == DefaultNamespace {
		if err := s.migrateBare(); err != nil {
			return nil, err
		}
	}
	sub := &Store{dir: filepath.Join(s.dir, name), fs: s.fs, stats: s.stats}
	if err := sub.init(); err != nil {
		return nil, err
	}
	return sub, nil
}

// migrateBare moves a pre-namespace store's files (both generations) into
// the default sub-directory. The rename order matters for crash safety:
// intervals moves last, so a store interrupted mid-migration still
// Exists() in at most one layout (Exists needs both files; the solution
// file alone satisfies neither the bare nor the namespaced probe).
func (s *Store) migrateBare() error {
	if !s.Exists() {
		return nil
	}
	sub := filepath.Join(s.dir, DefaultNamespace)
	if err := s.fs.MkdirAll(sub); err != nil {
		return fmt.Errorf("checkpoint: migrate %s: %w", s.dir, err)
	}
	for _, f := range []string{
		solutionFile + prevSuffix, solutionFile,
		intervalsFile + prevSuffix, intervalsFile,
	} {
		src := filepath.Join(s.dir, f)
		if _, err := s.fs.Stat(src); err != nil {
			continue
		}
		if err := s.fs.Rename(src, filepath.Join(sub, f)); err != nil {
			return fmt.Errorf("checkpoint: migrate %s: %w", f, err)
		}
	}
	return nil
}

// Namespaces lists the sub-stores holding a checkpoint, in directory
// order — the resumable jobs of a multi-tenant store.
func (s *Store) Namespaces() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || !ValidNamespace(e.Name()) {
			continue
		}
		probe := &Store{dir: filepath.Join(s.dir, e.Name()), fs: s.fs, stats: s.stats}
		if probe.Exists() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}
