package checkpoint

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/interval"
)

// FuzzCheckpointLoad fuzzes the snapshot text parser: framing (header,
// CRC/record-count footer, v1 legacy), record grammar, and the TotalLen
// cross-check. The parser must never panic, and any intervals parse that
// succeeds with a recorded total must actually satisfy the cross-check —
// that invariant is what stands between a corrupt file and a wrong search
// space.
func FuzzCheckpointLoad(f *testing.F) {
	// Seed with real files from the current writer, one per kind, plus a
	// legacy v1 pair and a few near-miss corruptions.
	dir := f.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		f.Fatal(err)
	}
	iv := interval.FromInt64(3, 7777)
	snap := Snapshot{
		Epoch:     2,
		NextID:    9,
		BestCost:  123,
		BestPath:  []int{2, 0, 1},
		Intervals: []IntervalRecord{{ID: 5, Interval: iv}},
		TotalLen:  iv.Len(),
	}
	if err := store.Save(snap); err != nil {
		f.Fatal(err)
	}
	if err := store.SaveBinding(Binding{Bound: true, ID: 4, Interval: iv}); err != nil {
		f.Fatal(err)
	}
	for _, name := range []string{intervalsFile, solutionFile, bindingFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("gridbb-checkpoint-v1 intervals\nepoch 1\nnextid 2\ninterval 1 0 10\n"))
	f.Add([]byte("gridbb-checkpoint-v1 solution\ncost 42\npath 1 0\n"))
	f.Add([]byte("gridbb-checkpoint-v2 intervals\nepoch 1\nfooter 1 00000000\n"))
	f.Add([]byte("gridbb-checkpoint-v2 solution\ncost 1\nfooter"))
	f.Add([]byte("footer 0 deadbeef\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []string{"intervals", "solution", "upstream"} {
			lines, err := parseBody("fuzz.ckpt", kind, data)
			if err != nil {
				continue
			}
			switch kind {
			case "intervals":
				p, err := parseIntervalLines(lines)
				if err != nil {
					continue
				}
				if p.total != nil {
					sum := new(big.Int)
					for _, rec := range p.records {
						sum.Add(sum, rec.Interval.Len())
					}
					if sum.Cmp(p.total) != 0 {
						t.Fatalf("parse accepted a snapshot whose records sum to %s against recorded total %s", sum, p.total)
					}
				}
			case "solution":
				_, _ = parseSolutionLines(lines)
			case "upstream":
				_, _ = parseBindingLines(lines)
			}
		}
	})
}
