package checkpoint

import (
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/interval"
)

func bigIv(a, b string) interval.Interval {
	x, _ := new(big.Int).SetString(a, 10)
	y, _ := new(big.Int).SetString(b, 10)
	return interval.New(x, y)
}

// TestSaveLoadRoundTrip: a snapshot with huge intervals and a solution
// survives the two files exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		NextID:   42,
		BestCost: 3679,
		BestPath: []int{13, 36, 2, 0},
		Intervals: []IntervalRecord{
			{ID: 3, Interval: bigIv("0", "30414093201713378043612608166064768844377641568960512000000000000")},
			{ID: 7, Interval: bigIv("123456789012345678901234567890", "999999999999999999999999999999")},
		},
	}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	if !store.Exists() {
		t.Fatal("snapshot not found after save")
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != snap.NextID || got.BestCost != snap.BestCost {
		t.Fatalf("scalar fields differ: %+v", got)
	}
	if len(got.BestPath) != 4 || got.BestPath[0] != 13 {
		t.Fatalf("best path = %v", got.BestPath)
	}
	if len(got.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(got.Intervals))
	}
	for i := range snap.Intervals {
		if got.Intervals[i].ID != snap.Intervals[i].ID ||
			!got.Intervals[i].Interval.Equal(snap.Intervals[i].Interval) {
			t.Fatalf("interval %d differs: %v vs %v", i, got.Intervals[i], snap.Intervals[i])
		}
	}
}

// TestSaveOverwritesAtomically: a second save fully replaces the first; no
// temp files linger.
func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 1, BestCost: 100,
		Intervals: []IntervalRecord{{ID: 1, Interval: interval.FromInt64(0, 10)}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 2, BestCost: 50}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.BestCost != 50 || len(got.Intervals) != 0 {
		t.Fatalf("second snapshot not authoritative: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// The paper's two files, each with its rotated previous generation.
	if len(entries) != 4 {
		t.Fatalf("expected two files and two previous generations, found %d: %v", len(entries), entries)
	}
	prev, err := os.ReadFile(filepath.Join(dir, "intervals.ckpt.prev"))
	if err != nil {
		t.Fatalf("previous generation missing: %v", err)
	}
	if !strings.Contains(string(prev), "nextid 1") {
		t.Fatalf("previous generation is not the first save:\n%s", prev)
	}
}

// TestEmptySolution: a snapshot without a best path loads with a nil path.
func TestEmptySolution(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 5, BestCost: 1 << 62}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.BestPath != nil {
		t.Fatalf("path = %v, want nil", got.BestPath)
	}
}

// TestLoadRejectsCorruption: headerless or garbled files with no previous
// generation to fall back to fail loudly — and as ErrCorrupt, with the bad
// file quarantined and counted — never silently restoring a wrong state.
func TestLoadRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"intervals.ckpt": "not a checkpoint\n",
		"solution.ckpt":  "gridbb-checkpoint-v1 solution\ncost notanumber\n",
	}
	for file, content := range cases {
		// A fresh store per case: a single save has no *.prev generation,
		// so corruption of the current file must surface as an error.
		dir := t.TempDir()
		store, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(Snapshot{NextID: 1}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = store.Load()
		if err == nil {
			t.Fatalf("corrupted %s accepted", file)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupted %s: err = %v, want ErrCorrupt", file, err)
		}
		if got := store.Stats().CorruptSnapshots; got == 0 {
			t.Fatalf("corrupted %s not counted", file)
		}
		if _, err := os.Stat(filepath.Join(dir, "quarantine", file+".0")); err != nil {
			t.Fatalf("corrupted %s not quarantined: %v", file, err)
		}
	}
}

// TestLoadRejectsBadRecords: unknown record types error.
func TestLoadRejectsBadRecords(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	bad := "gridbb-checkpoint-v1 intervals\nmystery 1 2 3\n"
	if err := os.WriteFile(filepath.Join(dir, "intervals.ckpt"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(); err == nil {
		t.Fatal("unknown record accepted")
	}
}

// TestExistsRequiresBothFiles: the paper's scheme is two files; one alone
// is not a checkpoint.
func TestExistsRequiresBothFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Exists() {
		t.Fatal("empty store claims a checkpoint")
	}
	if err := store.Save(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "solution.ckpt")); err != nil {
		t.Fatal(err)
	}
	if store.Exists() {
		t.Fatal("half a checkpoint reported as present")
	}
}

// TestTotalLenRoundTrip: the incremental INTERVALS total the farmer stamps
// on a snapshot survives the file format and passes the load-time
// cross-check.
func TestTotalLenRoundTrip(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	iv1 := bigIv("10", "30414093201713378043612608166064768844377641568960512000000000000")
	iv2 := bigIv("5", "905")
	total := new(big.Int).Add(iv1.Len(), iv2.Len())
	snap := Snapshot{
		BestCost: 100,
		Intervals: []IntervalRecord{
			{ID: 1, Interval: iv1},
			{ID: 2, Interval: iv2},
		},
		TotalLen: total,
	}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLen == nil || got.TotalLen.Cmp(total) != 0 {
		t.Fatalf("TotalLen = %v, want %s", got.TotalLen, total)
	}
}

// TestTotalLenMismatchRejected: a snapshot whose recorded total disagrees
// with its interval records is corrupt and must not restore.
func TestTotalLenMismatchRejected(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Intervals: []IntervalRecord{{ID: 1, Interval: bigIv("0", "100")}},
		TotalLen:  big.NewInt(99),
	}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(); err == nil || !strings.Contains(err.Error(), "total") {
		t.Fatalf("load of inconsistent snapshot: err = %v, want total mismatch", err)
	}
}

// TestTotalLenAbsentSkipsCheck: files written before the total line existed
// still load (the field stays nil).
func TestTotalLenAbsentSkipsCheck(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Intervals: []IntervalRecord{{ID: 1, Interval: bigIv("0", "100")}}}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLen != nil {
		t.Fatalf("TotalLen = %v, want nil", got.TotalLen)
	}
}
