package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/interval"
)

// twoGenerations saves two distinguishable snapshots so the store holds a
// current (NextID 2) and a previous (NextID 1) generation of every file.
func twoGenerations(t *testing.T, store *Store) (genA, genB Snapshot) {
	t.Helper()
	genA = Snapshot{
		NextID:   1,
		BestCost: 100,
		BestPath: []int{1, 2},
		Intervals: []IntervalRecord{
			{ID: 11, Interval: interval.FromInt64(0, 1000)},
		},
	}
	genB = Snapshot{
		NextID:   2,
		BestCost: 50,
		BestPath: []int{2, 1},
		Intervals: []IntervalRecord{
			{ID: 21, Interval: interval.FromInt64(0, 400)},
			{ID: 22, Interval: interval.FromInt64(600, 1000)},
		},
	}
	if err := store.Save(genA); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(genB); err != nil {
		t.Fatal(err)
	}
	return genA, genB
}

// matchesGeneration reports whether the loaded intervals are exactly one
// generation's records — the "never a wrong search space" check: any mix,
// loss, or invention of records fails.
func matchesGeneration(got []IntervalRecord, want Snapshot) bool {
	if len(got) != len(want.Intervals) {
		return false
	}
	for i := range got {
		if got[i].ID != want.Intervals[i].ID || !got[i].Interval.Equal(want.Intervals[i].Interval) {
			return false
		}
	}
	return true
}

// TestLoadFallsBackToPreviousGeneration: a corrupt current file quarantines
// and the previous generation restores, counted; the undamaged file still
// serves its current generation.
func TestLoadFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	genA, genB := twoGenerations(t, store)
	if err := os.WriteFile(filepath.Join(dir, intervalsFile), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if got.NextID != genA.NextID || !matchesGeneration(got.Intervals, genA) {
		t.Fatalf("intervals not the previous generation: %+v", got)
	}
	if got.BestCost != genB.BestCost {
		t.Fatalf("solution should still be current: cost %d", got.BestCost)
	}
	st := store.Stats()
	if st.CorruptSnapshots != 1 || st.FallbackLoads != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt / 1 fallback", st)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, intervalsFile+".0")); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	// A second restart finds no current intervals file (quarantined) and
	// serves the previous generation again, without recounting corruption.
	got, err = store.Load()
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if got.NextID != genA.NextID {
		t.Fatalf("second load NextID = %d", got.NextID)
	}
	st = store.Stats()
	if st.CorruptSnapshots != 1 || st.FallbackLoads != 2 {
		t.Fatalf("stats after second load = %+v", st)
	}
}

// TestTornWriteMatrix is the satellite corruption matrix: every snapshot
// file truncated at and flipped at every byte offset. With a previous
// generation present, Load must succeed and each file's content must be
// exactly one of the two generations; with no previous generation, a
// detected corruption must surface as a counted ErrCorrupt. In no case may
// a wrong search space load.
func TestTornWriteMatrix(t *testing.T) {
	for _, withPrev := range []bool{true, false} {
		t.Run(fmt.Sprintf("withPrev=%v", withPrev), func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			var genA, genB Snapshot
			if withPrev {
				genA, genB = twoGenerations(t, store)
			} else {
				genB = Snapshot{
					NextID:   2,
					BestCost: 50,
					Intervals: []IntervalRecord{
						{ID: 21, Interval: interval.FromInt64(0, 400)},
						{ID: 22, Interval: interval.FromInt64(600, 1000)},
					},
				}
				if err := store.Save(genB); err != nil {
					t.Fatal(err)
				}
			}
			// Remember every file so each case starts from pristine bytes.
			pristine := map[string][]byte{}
			for _, name := range []string{intervalsFile, solutionFile, intervalsFile + prevSuffix, solutionFile + prevSuffix} {
				data, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					if withPrev {
						t.Fatal(err)
					}
					continue
				}
				pristine[name] = data
			}
			restore := func() {
				for name, data := range pristine {
					if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, target := range []string{intervalsFile, solutionFile} {
				data := pristine[target]
				for k := 0; k < len(data); k++ {
					for _, mode := range []string{"truncate", "flip"} {
						restore()
						mutated := append([]byte{}, data[:k]...)
						if mode == "flip" {
							mutated = append([]byte{}, data...)
							mutated[k] ^= 0x40
						}
						if err := os.WriteFile(filepath.Join(dir, target), mutated, 0o644); err != nil {
							t.Fatal(err)
						}
						got, err := store.Load()
						if err != nil {
							if withPrev {
								t.Fatalf("%s %s@%d: load failed despite previous generation: %v", target, mode, k, err)
							}
							if !errors.Is(err, ErrCorrupt) {
								t.Fatalf("%s %s@%d: err = %v, want ErrCorrupt", target, mode, k, err)
							}
							continue
						}
						// Whatever loaded must be exactly one generation of
						// each file — never a blend or an invention.
						okIntervals := matchesGeneration(got.Intervals, genB) ||
							(withPrev && matchesGeneration(got.Intervals, genA))
						okSolution := got.BestCost == genB.BestCost ||
							(withPrev && got.BestCost == genA.BestCost)
						if !okIntervals || !okSolution {
							t.Fatalf("%s %s@%d: wrong search space loaded: %+v", target, mode, k, got)
						}
					}
				}
			}
			st := store.Stats()
			if st.CorruptSnapshots == 0 {
				t.Fatal("matrix never counted a corruption")
			}
			if withPrev && st.FallbackLoads == 0 {
				t.Fatal("matrix never fell back")
			}
		})
	}
}

// TestNewStoreSweepsTmp: stale *.tmp leftovers from a crash between write
// and rename are removed when the store opens.
func TestNewStoreSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, intervalsFile+".tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, solutionFile+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.SweptTmpFiles != 2 {
		t.Fatalf("swept %d tmp files, want 2", st.SweptTmpFiles)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale %s survived store open", e.Name())
		}
	}
}

// TestFallbackSalvagesEpoch: restoring an older generation must not reuse
// the crashed incarnation's epoch — ids it issued could still be in flight.
// The salvage scan lifts the restored epoch above every epoch visible on
// disk, including the quarantined file's.
func TestFallbackSalvagesEpoch(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{Epoch: 3, NextID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{Epoch: 7, NextID: 9}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the epoch-7 current file, leaving its epoch line readable —
	// exactly what a torn tail looks like.
	path := filepath.Join(dir, intervalsFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != 1 {
		t.Fatalf("did not fall back: %+v", got)
	}
	if got.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7 (salvaged from the quarantined generation)", got.Epoch)
	}
}

// TestSaveFailsCleanOnSyncEIO: an injected fsync failure fails the Save
// but leaves the previous snapshot fully loadable — the fault hits before
// any rename touches the current generation.
func TestSaveFailsCleanOnSyncEIO(t *testing.T) {
	ffs := NewFaultFS(nil)
	store, err := NewStoreFS(ffs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 1, BestCost: 9}); err != nil {
		t.Fatal(err)
	}
	ffs.SetDecide(func(op Op, path string) Fault {
		if op == OpSync {
			return EIO()
		}
		return Fault{}
	})
	if err := store.Save(Snapshot{NextID: 2}); !errors.Is(err, ErrInjected) {
		t.Fatalf("save under sync EIO: err = %v, want ErrInjected", err)
	}
	ffs.SetDecide(nil)
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != 1 || got.BestCost != 9 {
		t.Fatalf("previous snapshot damaged by failed save: %+v", got)
	}
	if ffs.Faults() == 0 {
		t.Fatal("injector reports no faults")
	}
}

// TestTornWriteFallsBack: a lying disk truncates the intervals write but
// reports success; the footer check catches it at load and the previous
// generation restores.
func TestTornWriteFallsBack(t *testing.T) {
	ffs := NewFaultFS(nil)
	store, err := NewStoreFS(ffs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 1, BestCost: 9}); err != nil {
		t.Fatal(err)
	}
	ffs.SetDecide(func(op Op, path string) Fault {
		if op == OpWriteFile && strings.Contains(path, intervalsFile) {
			return TornWrite(20)
		}
		return Fault{}
	})
	if err := store.Save(Snapshot{NextID: 2}); err != nil {
		t.Fatalf("lying disk must report success: %v", err)
	}
	ffs.SetDecide(nil)
	got, err := store.Load()
	if err != nil {
		t.Fatalf("load after torn write: %v", err)
	}
	if got.NextID != 1 {
		t.Fatalf("torn current accepted or wrong generation: %+v", got)
	}
	st := store.Stats()
	if st.CorruptSnapshots != 1 || st.FallbackLoads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRotateEIOKeepsCurrent: an injected rename failure during rotation
// fails the Save and leaves the current generation untouched.
func TestRotateEIOKeepsCurrent(t *testing.T) {
	ffs := NewFaultFS(nil)
	store, err := NewStoreFS(ffs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(Snapshot{NextID: 1}); err != nil {
		t.Fatal(err)
	}
	ffs.SetDecide(func(op Op, path string) Fault {
		if op == OpRename && strings.HasSuffix(path, intervalsFile) {
			return EIO()
		}
		return Fault{}
	})
	if err := store.Save(Snapshot{NextID: 2}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	ffs.SetDecide(nil)
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != 1 {
		t.Fatalf("current generation lost: %+v", got)
	}
}

// TestLegacyV1Loads: a v1 file (no footer) written by the previous format
// still loads.
func TestLegacyV1Loads(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	iv := "gridbb-checkpoint-v1 intervals\nepoch 2\nnextid 5\ninterval 7 3 14\n"
	sol := "gridbb-checkpoint-v1 solution\ncost 77\npath 1 0 2\n"
	if err := os.WriteFile(filepath.Join(dir, intervalsFile), []byte(iv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, solutionFile), []byte(sol), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if got.Epoch != 2 || got.NextID != 5 || got.BestCost != 77 || len(got.Intervals) != 1 {
		t.Fatalf("v1 snapshot mangled: %+v", got)
	}
}

// TestCorruptBindingDegradesToUnbound: a corrupt binding with no previous
// generation quarantines and reads as "not bound" — the parent's lease
// mechanism is the recovery path, not an error.
func TestCorruptBindingDegradesToUnbound(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveBinding(Binding{Bound: true, ID: 5, Interval: interval.FromInt64(0, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bindingFile), []byte("zap\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := store.LoadBinding()
	if err != nil || ok {
		t.Fatalf("corrupt binding: ok=%v err=%v, want unbound and nil", ok, err)
	}
	if store.Stats().CorruptSnapshots == 0 {
		t.Fatal("corrupt binding not counted")
	}
	// With a previous generation present, the stale binding restores
	// instead — staleness is safe, the parent rejects retired ids.
	if err := store.SaveBinding(Binding{Bound: true, ID: 6, Interval: interval.FromInt64(0, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveBinding(Binding{Bound: true, ID: 7, Interval: interval.FromInt64(0, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bindingFile), []byte("zap\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, ok, err := store.LoadBinding()
	if err != nil || !ok || b.ID != 6 {
		t.Fatalf("binding fallback: b=%+v ok=%v err=%v, want previous generation id 6", b, ok, err)
	}
}

// TestNamespaceSharesStats: corruption inside a namespaced sub-store is
// visible in the root store's aggregate counters.
func TestNamespaceSharesStats(t *testing.T) {
	dir := t.TempDir()
	root, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := root.Namespace("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Save(Snapshot{NextID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub.Dir(), intervalsFile), []byte("bad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if root.Stats().CorruptSnapshots != 1 {
		t.Fatalf("root stats = %+v, want the sub-store's corruption aggregated", root.Stats())
	}
}

// TestQuarantineIsNotANamespace: the quarantine directory never shows up
// as a resumable job, and the name is rejected for new jobs.
func TestQuarantineIsNotANamespace(t *testing.T) {
	if ValidNamespace(quarantineDir) {
		t.Fatal("quarantine accepted as a namespace name")
	}
	dir := t.TempDir()
	root, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := root.Namespace("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Save(Snapshot{NextID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub.Dir(), intervalsFile), []byte("bad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Load(); err == nil {
		t.Fatal("corrupt load accepted")
	}
	names, err := root.Namespaces()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == quarantineDir {
			t.Fatalf("quarantine listed as a namespace: %v", names)
		}
	}
}
