package checkpoint

import (
	"io/fs"
	"os"
)

// Op identifies one filesystem operation crossing the FS seam. The fault
// injector (FaultFS) keys its decisions on it, and error messages carry it.
type Op string

// The operations a Store performs. Write, sync and rename are the
// durability-critical ones — a disk that lies on any of them is exactly
// what the crash-consistency machinery must survive.
const (
	OpMkdirAll  Op = "mkdirall"
	OpWriteFile Op = "write"
	OpSync      Op = "sync"
	OpSyncDir   Op = "syncdir"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpReadFile  Op = "read"
	OpReadDir   Op = "readdir"
	OpStat      Op = "stat"
)

// FS is the filesystem seam under a Store: every byte a checkpoint writes
// or reads goes through it. The production implementation is the OS
// (osFS); tests and the chaos harness substitute FaultFS to make the disk
// itself a fault domain — short writes, torn writes, I/O errors on sync or
// rename, crash points — without leaving the deterministic harness.
type FS interface {
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string) error
	// WriteFile creates (or truncates) the file with the given bytes. It
	// does NOT sync: durability is a separate Sync call, so the injector
	// can make the two fail independently — the torn-write window is the
	// gap between them.
	WriteFile(name string, data []byte) error
	// Sync fsyncs the named file's content to stable storage.
	Sync(name string) error
	// SyncDir fsyncs the directory itself, making renames inside it
	// durable.
	SyncDir(dir string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns the file's full content.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat probes a path.
	Stat(name string) (fs.FileInfo, error)
}

// osFS is the production FS: the operating system, with real fsync.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}

func (osFS) Sync(name string) error {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// A directory fsync makes the renames inside it durable on every
	// filesystem that journals metadata; where the operation is not
	// supported the open-for-read handle still syncs what it can.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	return os.ReadDir(dir)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
