package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/interval"
)

func TestValidNamespace(t *testing.T) {
	good := []string{"default", "job-1", "a", "Flow_Shop.12", "x9"}
	for _, n := range good {
		if !ValidNamespace(n) {
			t.Errorf("ValidNamespace(%q) = false, want true", n)
		}
	}
	long := make([]byte, MaxNamespaceBytes+1)
	for i := range long {
		long[i] = 'a'
	}
	bad := []string{"", ".", "..", ".hidden", "trail.", "a/b", `a\b`, "a b", "a\x00b", string(long), "jé"}
	for _, n := range bad {
		if ValidNamespace(n) {
			t.Errorf("ValidNamespace(%q) = true, want false", n)
		}
	}
}

func TestNamespaceIsolation(t *testing.T) {
	root, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := root.Namespace("job-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Namespace("job-b")
	if err != nil {
		t.Fatal(err)
	}
	snapA := Snapshot{
		Intervals: []IntervalRecord{{ID: 1, Interval: interval.FromInt64(0, 100)}},
		BestCost:  10,
	}
	if err := a.Save(snapA); err != nil {
		t.Fatal(err)
	}
	if b.Exists() {
		t.Fatal("saving job-a made job-b exist")
	}
	if err := b.Save(Snapshot{BestCost: 99}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.BestCost != 10 || len(got.Intervals) != 1 {
		t.Fatalf("job-a loaded %+v", got)
	}
	names, err := root.Namespaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "job-a" || names[1] != "job-b" {
		t.Fatalf("Namespaces() = %v", names)
	}
}

func TestNamespaceRejectsHostileNames(t *testing.T) {
	root, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"", "..", "../escape", "a/b", ".git"} {
		if _, err := root.Namespace(n); err == nil {
			t.Errorf("Namespace(%q) accepted a hostile name", n)
		}
	}
}

// TestNamespaceMigratesBareStore: a pre-namespace store's two files move
// into default/ the first time the default namespace is opened, and the
// snapshot survives the move byte for byte.
func TestNamespaceMigratesBareStore(t *testing.T) {
	dir := t.TempDir()
	bare, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Intervals: []IntervalRecord{{ID: 7, Interval: interval.FromInt64(3, 44)}},
		Epoch:     2,
		BestCost:  123,
		BestPath:  []int{1, 0, 2},
	}
	if err := bare.Save(snap); err != nil {
		t.Fatal(err)
	}
	def, err := bare.Namespace(DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Exists() {
		t.Fatal("bare files survived the migration")
	}
	if !def.Exists() {
		t.Fatal("migrated snapshot missing from default/")
	}
	got, err := def.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.BestCost != 123 || got.Epoch != 2 || len(got.Intervals) != 1 || len(got.BestPath) != 3 {
		t.Fatalf("migrated snapshot = %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, intervalsFile)); !os.IsNotExist(err) {
		t.Fatalf("bare intervals file still present: %v", err)
	}
	// Re-opening is idempotent: no bare files left, nothing to migrate.
	if _, err := bare.Namespace(DefaultNamespace); err != nil {
		t.Fatal(err)
	}
}
