// Package checkpoint implements the coordinator-side fault tolerance of the
// paper (§4.1): "The coordinator manages a possible failure of the farmer by
// periodically saving, in two files, the contents of INTERVALS and
// SOLUTION. In the case of the farmer failure, the coordinator initializes
// INTERVALS and SOLUTION by the contents of these files."
//
// Snapshots are versioned text files with a CRC32 footer, written durably
// (temp file, fsync, rename, directory fsync) with generation rotation: the
// previous good snapshot survives as "*.prev". A Load that finds a corrupt
// file quarantines it and falls back to the previous generation, so a torn
// write or bit flip degrades the resolution by one checkpoint period instead
// of losing it. Every filesystem touch goes through the FS seam so the chaos
// harness can make the disk itself fail.
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"math/big"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/interval"
)

// IntervalRecord is one INTERVALS entry: the coordinator's copy of a work
// unit. Owner identities are deliberately not persisted — after a farmer
// restart every interval is an orphan and gets handed out afresh, exactly
// the virtual null-power process rule of §4.2.
type IntervalRecord struct {
	// ID is the coordinator-side identifier.
	ID int64
	// Interval is the not-yet-explored range.
	Interval interval.Interval
}

// Snapshot is the persistent state of a resolution.
type Snapshot struct {
	// Intervals is the content of INTERVALS.
	Intervals []IntervalRecord
	// Epoch counts farmer incarnations: each restore bumps it, and ids
	// are epoch-qualified, so an id issued after this snapshot was taken
	// can never collide with one issued after the restore.
	Epoch int64
	// NextID records the saving incarnation's allocation count. It is
	// diagnostic only: id freshness across restarts comes from the Epoch
	// bump (a restored farmer restarts its sequence at zero in a fresh
	// epoch), never from continuing this sequence.
	NextID int64
	// BestCost is SOLUTION's cost; bb.Infinity when no solution exists.
	BestCost int64
	// BestPath is SOLUTION's rank path; nil when no solution exists.
	BestPath []int
	// TotalLen, when non-nil, records the total remaining length of
	// INTERVALS as the farmer maintained it incrementally (§4.3's "size"
	// measure). Save persists it and Load cross-checks it against the sum
	// of the interval records, so a snapshot whose incremental counter
	// drifted from its table — or whose file lost or gained a record —
	// is rejected instead of silently restoring the wrong search space.
	// Nil (files from before the field existed) skips the check.
	TotalLen *big.Int
}

// ErrCorrupt marks a Load failure caused by corrupt snapshot files (CRC or
// record-count mismatch, truncation, unparseable records, TotalLen drift)
// with no previous generation left to fall back to. The corrupt files have
// already been quarantined when this is returned; callers that multiplex
// many resolutions (the job table) use it to quarantine one job instead of
// failing the whole restart.
var ErrCorrupt = errors.New("corrupt snapshot")

// Stats counts the store's self-healing events. Namespaced sub-stores share
// their parent's counters, so a multi-tenant store reports one aggregate.
type Stats struct {
	// CorruptSnapshots counts snapshot files found corrupt and moved to
	// the quarantine directory.
	CorruptSnapshots int64
	// FallbackLoads counts Loads that served any file from its previous
	// generation instead of the current one.
	FallbackLoads int64
	// SweptTmpFiles counts stale *.tmp leftovers removed at store open.
	SweptTmpFiles int64
}

type storeStats struct {
	corrupt  atomic.Int64
	fallback atomic.Int64
	swept    atomic.Int64
}

// Store reads and writes snapshots under a directory, using the paper's
// two-file layout plus the durability additions (generations, quarantine).
type Store struct {
	dir   string
	fs    FS
	stats *storeStats
}

// intervalsFile and solutionFile are the two files of §4.1.
const (
	intervalsFile = "intervals.ckpt"
	solutionFile  = "solution.ckpt"
	// formatVersion (v2) adds a mandatory CRC32-and-record-count footer:
	// any truncation destroys the footer line, any byte flip fails the
	// checksum, so "last line parses as a valid footer" certifies the
	// whole file. legacyVersion files (v1, no footer) still load.
	formatVersion = "gridbb-checkpoint-v2"
	legacyVersion = "gridbb-checkpoint-v1"
	// prevSuffix names the rotated previous generation of each file.
	prevSuffix = ".prev"
	// quarantineDir collects corrupt files (bytes preserved for forensics
	// and for the epoch salvage scan) instead of deleting them.
	quarantineDir = "quarantine"
)

// crcTable is Castagnoli, the hardware-accelerated polynomial.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewStore creates the directory if needed and returns a store over the
// real filesystem.
func NewStore(dir string) (*Store, error) {
	return NewStoreFS(OSFS(), dir)
}

// NewStoreFS is NewStore over an explicit filesystem — the injection point
// for disk-fault testing. Opening a store sweeps stale *.tmp leftovers: a
// crash between write and rename strands them, and nothing else ever
// deletes them.
func NewStoreFS(fs FS, dir string) (*Store, error) {
	s := &Store{dir: dir, fs: fs, stats: &storeStats{}}
	if err := s.init(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) init() error {
	if err := s.fs.MkdirAll(s.dir); err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", s.dir, err)
	}
	s.sweepTmp()
	return nil
}

// sweepTmp removes stale *.tmp files left by a crash between write and
// rename. Best effort: a failure to sweep never blocks opening the store.
func (s *Store) sweepTmp() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if s.fs.Remove(filepath.Join(s.dir, e.Name())) == nil {
			s.stats.swept.Add(1)
		}
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the self-healing counters. Namespaced sub-stores share one
// counter set with their parent, so the root of a multi-tenant store
// aggregates every job.
func (s *Store) Stats() Stats {
	return Stats{
		CorruptSnapshots: s.stats.corrupt.Load(),
		FallbackLoads:    s.stats.fallback.Load(),
		SweptTmpFiles:    s.stats.swept.Load(),
	}
}

// Save persists the snapshot durably. Each file is written to a temporary
// name and fsynced, the current generation (if any) rotates to *.prev, the
// temp renames into place, and the directory is fsynced — so after a crash
// at any point there is always at least one complete, checksummed
// generation of each file on disk.
func (s *Store) Save(snap Snapshot) error {
	var iv strings.Builder
	fmt.Fprintf(&iv, "epoch %d\n", snap.Epoch)
	fmt.Fprintf(&iv, "nextid %d\n", snap.NextID)
	if snap.TotalLen != nil {
		fmt.Fprintf(&iv, "total %s\n", snap.TotalLen.Text(10))
	}
	records := 2
	if snap.TotalLen != nil {
		records++
	}
	for _, rec := range snap.Intervals {
		text, err := rec.Interval.MarshalText()
		if err != nil {
			return fmt.Errorf("checkpoint: marshal interval %d: %w", rec.ID, err)
		}
		fmt.Fprintf(&iv, "interval %d %s\n", rec.ID, text)
		records++
	}
	if err := s.writeSnapshotFile(intervalsFile, "intervals", iv.String(), records); err != nil {
		return err
	}
	var sol strings.Builder
	fmt.Fprintf(&sol, "cost %d\n", snap.BestCost)
	records = 1
	if snap.BestPath != nil {
		fmt.Fprintf(&sol, "path")
		for _, r := range snap.BestPath {
			fmt.Fprintf(&sol, " %d", r)
		}
		fmt.Fprintf(&sol, "\n")
		records++
	}
	return s.writeSnapshotFile(solutionFile, "solution", sol.String(), records)
}

// writeSnapshotFile frames body in the v2 format (header, body, CRC
// footer) and writes it durably with generation rotation.
func (s *Store) writeSnapshotFile(name, kind, body string, records int) error {
	payload := formatVersion + " " + kind + "\n" + body
	footer := fmt.Sprintf("footer %d %08x\n", records, crc32.Checksum([]byte(payload), crcTable))
	return s.writeDurable(name, []byte(payload+footer))
}

// writeDurable is the crash-consistency core: tmp write, tmp fsync,
// current→prev rotation, tmp→current rename, directory fsync. A crash (or
// injected fault) at any step leaves either the old generation in place or
// the old generation as *.prev — never zero complete generations, and
// never a half-written current (the footer check catches the torn-write
// disks that ignore the fsync).
func (s *Store) writeDurable(name string, data []byte) error {
	full := filepath.Join(s.dir, name)
	tmp := full + ".tmp"
	if err := s.fs.WriteFile(tmp, data); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := s.fs.Sync(tmp); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if _, err := s.fs.Stat(full); err == nil {
		if err := s.fs.Rename(full, full+prevSuffix); err != nil {
			return fmt.Errorf("checkpoint: rotate %s: %w", full, err)
		}
	}
	if err := s.fs.Rename(tmp, full); err != nil {
		return fmt.Errorf("checkpoint: rename %s: %w", tmp, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", s.dir, err)
	}
	return nil
}

// Exists reports whether a checkpoint is present: some generation (current
// or previous) of both files.
func (s *Store) Exists() bool {
	return s.anyGeneration(intervalsFile) && s.anyGeneration(solutionFile)
}

func (s *Store) anyGeneration(name string) bool {
	if _, err := s.fs.Stat(filepath.Join(s.dir, name)); err == nil {
		return true
	}
	_, err := s.fs.Stat(filepath.Join(s.dir, name+prevSuffix))
	return err == nil
}

// Load reads the latest loadable snapshot. Each of the two files
// independently falls back to its previous generation when the current one
// is corrupt (the corrupt file is quarantined and counted); mixing
// generations is safe — an older SOLUTION only weakens the incumbent bound
// and an older INTERVALS only enlarges the frontier, both pure rework,
// never a lost region. When any fallback happened the restored epoch is
// raised above every epoch findable on disk (including quarantined files),
// so ids issued by the newer, lost incarnation can never collide with ids
// the restored farmer will issue.
func (s *Store) Load() (Snapshot, error) {
	var snap Snapshot
	fellBack := false
	fromPrev, err := s.loadGeneration(intervalsFile, "intervals", func(lines []string) error {
		part, err := parseIntervalLines(lines)
		if err != nil {
			return err
		}
		snap.Epoch, snap.NextID, snap.TotalLen, snap.Intervals = part.epoch, part.nextID, part.total, part.records
		return nil
	})
	if err != nil {
		return Snapshot{}, err
	}
	fellBack = fellBack || fromPrev
	fromPrev, err = s.loadGeneration(solutionFile, "solution", func(lines []string) error {
		part, err := parseSolutionLines(lines)
		if err != nil {
			return err
		}
		snap.BestCost, snap.BestPath = part.cost, part.path
		return nil
	})
	if err != nil {
		return Snapshot{}, err
	}
	fellBack = fellBack || fromPrev
	if fellBack {
		s.stats.fallback.Add(1)
		if max := s.maxEpochOnDisk(); max > snap.Epoch {
			snap.Epoch = max
		}
	}
	return snap, nil
}

// loadGeneration tries the current generation of one file, then its
// previous one. parse must mutate its target only on success, so a failed
// current attempt leaves nothing behind for the prev attempt to collide
// with. Corrupt generations are quarantined as they are ruled out.
func (s *Store) loadGeneration(name, kind string, parse func(lines []string) error) (fromPrev bool, err error) {
	curErr := s.tryLoadFile(name, kind, parse)
	if curErr == nil {
		return false, nil
	}
	corrupt := false
	if !errors.Is(curErr, iofs.ErrNotExist) {
		s.quarantineFile(name)
		corrupt = true
	}
	prevErr := s.tryLoadFile(name+prevSuffix, kind, parse)
	if prevErr == nil {
		return true, nil
	}
	if !errors.Is(prevErr, iofs.ErrNotExist) {
		s.quarantineFile(name + prevSuffix)
		corrupt = true
	}
	if corrupt {
		return false, fmt.Errorf("checkpoint: %s: %w: %v", name, ErrCorrupt, curErr)
	}
	return false, fmt.Errorf("checkpoint: %s: %w", name, curErr)
}

func (s *Store) tryLoadFile(name, kind string, parse func(lines []string) error) error {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return err
	}
	lines, err := parseBody(name, kind, data)
	if err != nil {
		return err
	}
	return parse(lines)
}

// quarantineFile moves a corrupt file into quarantine/ under a fresh
// numbered name, preserving its bytes. Best effort: if the move itself
// fails the file stays put (the next Save rotates over it), but the
// corruption is counted either way.
func (s *Store) quarantineFile(name string) {
	s.stats.corrupt.Add(1)
	src := filepath.Join(s.dir, name)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return
	}
	for n := 0; n < 10000; n++ {
		dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", name, n))
		if _, err := s.fs.Stat(dst); err == nil {
			continue
		}
		_ = s.fs.Rename(src, dst)
		return
	}
}

// maxEpochOnDisk scans every intervals file the store can still see —
// current, previous, quarantined — for the highest recorded epoch,
// ignoring checksums (a corrupt file's epoch line is still the best
// available evidence of how high the lost incarnation counted). Used only
// after a fallback load, where restoring an older generation's epoch could
// otherwise re-issue ids the crashed incarnation already handed out.
func (s *Store) maxEpochOnDisk() int64 {
	var max int64
	scan := func(path string) {
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return
		}
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(line, "epoch ")
			if !ok {
				continue
			}
			if v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64); err == nil && v > max {
				max = v
			}
		}
	}
	scan(filepath.Join(s.dir, intervalsFile))
	scan(filepath.Join(s.dir, intervalsFile+prevSuffix))
	if entries, err := s.fs.ReadDir(filepath.Join(s.dir, quarantineDir)); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), intervalsFile) {
				scan(filepath.Join(s.dir, quarantineDir, e.Name()))
			}
		}
	}
	return max
}

// parseBody validates a snapshot file's framing and returns its body
// lines. v2 files must end in a valid footer line whose CRC covers header
// and body and whose record count matches the non-empty body lines; v1
// files (written before footers existed) are accepted without one.
func parseBody(name, kind string, data []byte) ([]string, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("checkpoint: %s: bad or missing header", name)
	}
	header := string(data[:nl])
	legacy := strings.HasPrefix(header, legacyVersion)
	if !legacy {
		if !strings.HasPrefix(header, formatVersion) {
			return nil, fmt.Errorf("checkpoint: %s: bad or missing header", name)
		}
		if header != formatVersion+" "+kind {
			return nil, fmt.Errorf("checkpoint: %s: header %q is not a %s header", name, header, kind)
		}
	}
	rest := data[nl+1:]
	if !legacy {
		var err error
		rest, err = checkFooter(name, data, rest)
		if err != nil {
			return nil, err
		}
	}
	var lines []string
	for _, line := range strings.Split(string(rest), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			lines = append(lines, line)
		}
	}
	return lines, nil
}

// checkFooter verifies the v2 trailer and returns the body with the footer
// line stripped. data is the whole file, body the part after the header.
func checkFooter(name string, data, body []byte) ([]byte, error) {
	if len(body) == 0 || !bytes.HasSuffix(data, []byte("\n")) {
		return nil, fmt.Errorf("checkpoint: %s: truncated (no trailing newline)", name)
	}
	trimmed := body[:len(body)-1]
	j := bytes.LastIndexByte(trimmed, '\n')
	footerLine := string(trimmed[j+1:]) // j == -1 means the body is just the footer
	fields := strings.Fields(footerLine)
	if len(fields) != 3 || fields[0] != "footer" {
		return nil, fmt.Errorf("checkpoint: %s: truncated or missing footer", name)
	}
	wantRecords, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: bad footer count %q", name, fields[1])
	}
	wantCRC, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: bad footer crc %q", name, fields[2])
	}
	payload := data[:len(data)-len(body)+j+1] // header + body lines, footer excluded
	if got := crc32.Checksum(payload, crcTable); got != uint32(wantCRC) {
		return nil, fmt.Errorf("checkpoint: %s: crc mismatch (file %08x, computed %08x)", name, wantCRC, got)
	}
	records := 0
	for _, line := range strings.Split(string(trimmed[:j+1]), "\n") {
		if strings.TrimSpace(line) != "" {
			records++
		}
	}
	if records != wantRecords {
		return nil, fmt.Errorf("checkpoint: %s: footer promises %d records, file has %d", name, wantRecords, records)
	}
	return body[:len(body)-len(footerLine)-1], nil
}

// intervalsPart is a fully parsed INTERVALS file.
type intervalsPart struct {
	epoch   int64
	nextID  int64
	total   *big.Int
	records []IntervalRecord
}

func parseIntervalLines(lines []string) (intervalsPart, error) {
	var p intervalsPart
	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case "epoch":
			// Absent in files written before the epoch mechanism; the
			// zero default makes the restore bump it to 1 either way.
			if len(fields) != 2 {
				return p, fmt.Errorf("checkpoint: bad epoch line %q", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return p, fmt.Errorf("checkpoint: bad epoch %q: %w", fields[1], err)
			}
			p.epoch = v
		case "nextid":
			if len(fields) != 2 {
				return p, fmt.Errorf("checkpoint: bad nextid line %q", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return p, fmt.Errorf("checkpoint: bad nextid %q: %w", fields[1], err)
			}
			p.nextID = v
		case "total":
			if len(fields) != 2 {
				return p, fmt.Errorf("checkpoint: bad total line %q", line)
			}
			total, ok := new(big.Int).SetString(fields[1], 10)
			if !ok {
				return p, fmt.Errorf("checkpoint: bad total %q", fields[1])
			}
			p.total = total
		case "interval":
			if len(fields) != 4 {
				return p, fmt.Errorf("checkpoint: bad interval line %q", line)
			}
			var rec IntervalRecord
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return p, fmt.Errorf("checkpoint: bad interval id %q: %w", fields[1], err)
			}
			rec.ID = id
			if err := rec.Interval.UnmarshalText([]byte(fields[2] + " " + fields[3])); err != nil {
				return p, fmt.Errorf("checkpoint: %w", err)
			}
			p.records = append(p.records, rec)
		default:
			return p, fmt.Errorf("checkpoint: unknown record %q", fields[0])
		}
	}
	// Integrity cross-check: the incremental total the farmer carried must
	// match what the records actually sum to. This is the only place the
	// lengths are ever re-summed — at restore time, once, not per snapshot.
	if p.total != nil {
		sum := new(big.Int)
		for _, rec := range p.records {
			sum.Add(sum, rec.Interval.Len())
		}
		if sum.Cmp(p.total) != 0 {
			return p, fmt.Errorf("checkpoint: %s: interval records sum to %s but the recorded total is %s (corrupt or inconsistent snapshot)",
				intervalsFile, sum, p.total)
		}
	}
	return p, nil
}

// solutionPart is a fully parsed SOLUTION file.
type solutionPart struct {
	cost int64
	path []int
}

func parseSolutionLines(lines []string) (solutionPart, error) {
	var p solutionPart
	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case "cost":
			if len(fields) != 2 {
				return p, fmt.Errorf("checkpoint: bad cost line %q", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return p, fmt.Errorf("checkpoint: bad cost %q: %w", fields[1], err)
			}
			p.cost = v
		case "path":
			p.path = make([]int, 0, len(fields)-1)
			for _, fstr := range fields[1:] {
				r, err := strconv.Atoi(fstr)
				if err != nil {
					return p, fmt.Errorf("checkpoint: bad path entry %q: %w", fstr, err)
				}
				p.path = append(p.path, r)
			}
		default:
			return p, fmt.Errorf("checkpoint: unknown record %q", fields[0])
		}
	}
	return p, nil
}
