// Package checkpoint implements the coordinator-side fault tolerance of the
// paper (§4.1): "The coordinator manages a possible failure of the farmer by
// periodically saving, in two files, the contents of INTERVALS and
// SOLUTION. In the case of the farmer failure, the coordinator initializes
// INTERVALS and SOLUTION by the contents of these files."
//
// Snapshots are versioned text files written atomically (temp file + rename)
// so a crash mid-write can never corrupt the previous checkpoint.
package checkpoint

import (
	"bufio"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/interval"
)

// IntervalRecord is one INTERVALS entry: the coordinator's copy of a work
// unit. Owner identities are deliberately not persisted — after a farmer
// restart every interval is an orphan and gets handed out afresh, exactly
// the virtual null-power process rule of §4.2.
type IntervalRecord struct {
	// ID is the coordinator-side identifier.
	ID int64
	// Interval is the not-yet-explored range.
	Interval interval.Interval
}

// Snapshot is the persistent state of a resolution.
type Snapshot struct {
	// Intervals is the content of INTERVALS.
	Intervals []IntervalRecord
	// Epoch counts farmer incarnations: each restore bumps it, and ids
	// are epoch-qualified, so an id issued after this snapshot was taken
	// can never collide with one issued after the restore.
	Epoch int64
	// NextID records the saving incarnation's allocation count. It is
	// diagnostic only: id freshness across restarts comes from the Epoch
	// bump (a restored farmer restarts its sequence at zero in a fresh
	// epoch), never from continuing this sequence.
	NextID int64
	// BestCost is SOLUTION's cost; bb.Infinity when no solution exists.
	BestCost int64
	// BestPath is SOLUTION's rank path; nil when no solution exists.
	BestPath []int
	// TotalLen, when non-nil, records the total remaining length of
	// INTERVALS as the farmer maintained it incrementally (§4.3's "size"
	// measure). Save persists it and Load cross-checks it against the sum
	// of the interval records, so a snapshot whose incremental counter
	// drifted from its table — or whose file lost or gained a record —
	// is rejected instead of silently restoring the wrong search space.
	// Nil (files from before the field existed) skips the check.
	TotalLen *big.Int
}

// Store reads and writes snapshots under a directory, using the paper's
// two-file layout.
type Store struct {
	dir string
}

// intervalsFile and solutionFile are the two files of §4.1.
const (
	intervalsFile = "intervals.ckpt"
	solutionFile  = "solution.ckpt"
	formatVersion = "gridbb-checkpoint-v1"
)

// NewStore creates the directory if needed and returns a store over it.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Save persists the snapshot atomically: each file is written to a
// temporary name and renamed into place, so readers always see either the
// old or the new checkpoint in full.
func (s *Store) Save(snap Snapshot) error {
	var iv strings.Builder
	fmt.Fprintf(&iv, "%s intervals\n", formatVersion)
	fmt.Fprintf(&iv, "epoch %d\n", snap.Epoch)
	fmt.Fprintf(&iv, "nextid %d\n", snap.NextID)
	if snap.TotalLen != nil {
		fmt.Fprintf(&iv, "total %s\n", snap.TotalLen.Text(10))
	}
	for _, rec := range snap.Intervals {
		text, err := rec.Interval.MarshalText()
		if err != nil {
			return fmt.Errorf("checkpoint: marshal interval %d: %w", rec.ID, err)
		}
		fmt.Fprintf(&iv, "interval %d %s\n", rec.ID, text)
	}
	if err := writeAtomic(filepath.Join(s.dir, intervalsFile), iv.String()); err != nil {
		return err
	}
	var sol strings.Builder
	fmt.Fprintf(&sol, "%s solution\n", formatVersion)
	fmt.Fprintf(&sol, "cost %d\n", snap.BestCost)
	if snap.BestPath != nil {
		fmt.Fprintf(&sol, "path")
		for _, r := range snap.BestPath {
			fmt.Fprintf(&sol, " %d", r)
		}
		fmt.Fprintf(&sol, "\n")
	}
	return writeAtomic(filepath.Join(s.dir, solutionFile), sol.String())
}

func writeAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: rename %s: %w", tmp, err)
	}
	return nil
}

// Exists reports whether a checkpoint is present.
func (s *Store) Exists() bool {
	_, err1 := os.Stat(filepath.Join(s.dir, intervalsFile))
	_, err2 := os.Stat(filepath.Join(s.dir, solutionFile))
	return err1 == nil && err2 == nil
}

// Load reads the latest snapshot.
func (s *Store) Load() (Snapshot, error) {
	var snap Snapshot
	if err := s.loadIntervals(&snap); err != nil {
		return snap, err
	}
	if err := s.loadSolution(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

func (s *Store) loadIntervals(snap *Snapshot) error {
	f, err := os.Open(filepath.Join(s.dir, intervalsFile))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), formatVersion) {
		return fmt.Errorf("checkpoint: %s: bad or missing header", intervalsFile)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "epoch":
			// Absent in files written before the epoch mechanism; the
			// zero default makes the restore bump it to 1 either way.
			if len(fields) != 2 {
				return fmt.Errorf("checkpoint: bad epoch line %q", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &snap.Epoch); err != nil {
				return fmt.Errorf("checkpoint: bad epoch %q: %w", fields[1], err)
			}
		case "nextid":
			if len(fields) != 2 {
				return fmt.Errorf("checkpoint: bad nextid line %q", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &snap.NextID); err != nil {
				return fmt.Errorf("checkpoint: bad nextid %q: %w", fields[1], err)
			}
		case "total":
			if len(fields) != 2 {
				return fmt.Errorf("checkpoint: bad total line %q", line)
			}
			total, ok := new(big.Int).SetString(fields[1], 10)
			if !ok {
				return fmt.Errorf("checkpoint: bad total %q", fields[1])
			}
			snap.TotalLen = total
		case "interval":
			if len(fields) != 4 {
				return fmt.Errorf("checkpoint: bad interval line %q", line)
			}
			var rec IntervalRecord
			if _, err := fmt.Sscanf(fields[1], "%d", &rec.ID); err != nil {
				return fmt.Errorf("checkpoint: bad interval id %q: %w", fields[1], err)
			}
			if err := rec.Interval.UnmarshalText([]byte(fields[2] + " " + fields[3])); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			snap.Intervals = append(snap.Intervals, rec)
		default:
			return fmt.Errorf("checkpoint: unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Integrity cross-check: the incremental total the farmer carried must
	// match what the records actually sum to. This is the only place the
	// lengths are ever re-summed — at restore time, once, not per snapshot.
	if snap.TotalLen != nil {
		sum := new(big.Int)
		for _, rec := range snap.Intervals {
			sum.Add(sum, rec.Interval.Len())
		}
		if sum.Cmp(snap.TotalLen) != 0 {
			return fmt.Errorf("checkpoint: %s: interval records sum to %s but the recorded total is %s (corrupt or inconsistent snapshot)",
				intervalsFile, sum, snap.TotalLen)
		}
	}
	return nil
}

func (s *Store) loadSolution(snap *Snapshot) error {
	f, err := os.Open(filepath.Join(s.dir, solutionFile))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), formatVersion) {
		return fmt.Errorf("checkpoint: %s: bad or missing header", solutionFile)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "cost":
			if len(fields) != 2 {
				return fmt.Errorf("checkpoint: bad cost line %q", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &snap.BestCost); err != nil {
				return fmt.Errorf("checkpoint: bad cost %q: %w", fields[1], err)
			}
		case "path":
			snap.BestPath = make([]int, 0, len(fields)-1)
			for _, fstr := range fields[1:] {
				var r int
				if _, err := fmt.Sscanf(fstr, "%d", &r); err != nil {
					return fmt.Errorf("checkpoint: bad path entry %q: %w", fstr, err)
				}
				snap.BestPath = append(snap.BestPath, r)
			}
		default:
			return fmt.Errorf("checkpoint: unknown record %q", fields[0])
		}
	}
	return sc.Err()
}
