package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// ErrInjected is the error surfaced by FaultFS for every injected I/O
// failure. Callers that want to distinguish a staged disk fault from a
// genuine one (the chaos harness does, to assert its faults actually
// fired) can errors.Is against it.
var ErrInjected = errors.New("checkpoint: injected I/O fault")

// Fault is the injector's verdict for a single filesystem operation.
// The zero value means "no fault: pass through".
type Fault struct {
	// Err, when non-nil, is returned from the operation (wrapped so it
	// matches ErrInjected when it or the wrapping chain does).
	Err error
	// Keep bounds how many bytes of a WriteFile actually reach the file
	// before the fault takes effect. With Err set it models a short
	// write that is also reported as a failure; with Torn set it models
	// a lying disk: Keep bytes land, the rest vanish, and the call
	// reports success. Ignored by non-write operations.
	Keep int
	// Torn makes a WriteFile silently truncate at Keep bytes while
	// reporting success — the classic torn write that only a later
	// checksum can catch.
	Torn bool
}

// EIO returns a Fault that fails the operation outright with ErrInjected.
func EIO() Fault { return Fault{Err: ErrInjected} }

// TornWrite returns a Fault that keeps the first k bytes of a write and
// reports success.
func TornWrite(k int) Fault { return Fault{Torn: true, Keep: k} }

// ShortWrite returns a Fault that keeps the first k bytes of a write and
// reports ErrInjected — the crash-during-write shape.
func ShortWrite(k int) Fault { return Fault{Err: ErrInjected, Keep: k} }

// FaultFS wraps an inner FS and consults Decide before every operation.
// Decide runs under the FaultFS lock, so injector state (op counters,
// crash points) needs no extra synchronisation. A nil Decide passes
// everything through.
//
// Crash points are expressed in Decide itself: after a chosen operation
// count, return EIO() for every subsequent op — from the Store's point
// of view the disk has died, which is indistinguishable from the process
// dying mid-save with respect to what lands on disk.
type FaultFS struct {
	Inner FS

	mu     sync.Mutex
	decide func(op Op, path string) Fault
	faults int
}

// NewFaultFS wraps inner (the OS filesystem when nil) with a fault
// injector.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{Inner: inner}
}

// SetDecide installs the fault policy. Passing nil clears it.
func (f *FaultFS) SetDecide(decide func(op Op, path string) Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.decide = decide
}

// Faults reports how many operations have had a fault injected so far.
func (f *FaultFS) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// check consults the policy for one operation.
func (f *FaultFS) check(op Op, path string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.decide == nil {
		return Fault{}
	}
	v := f.decide(op, path)
	if v.Err != nil || v.Torn {
		f.faults++
	}
	return v
}

// wrap ties an injected error to ErrInjected and the op it hit.
func wrapFault(op Op, path string, err error) error {
	if errors.Is(err, ErrInjected) {
		return fmt.Errorf("%s %s: %w", op, path, err)
	}
	return fmt.Errorf("%s %s: %w (%v)", op, path, ErrInjected, err)
}

func (f *FaultFS) MkdirAll(dir string) error {
	if v := f.check(OpMkdirAll, dir); v.Err != nil {
		return wrapFault(OpMkdirAll, dir, v.Err)
	}
	return f.Inner.MkdirAll(dir)
}

func (f *FaultFS) WriteFile(name string, data []byte) error {
	v := f.check(OpWriteFile, name)
	switch {
	case v.Err != nil:
		// Short write: part of the payload lands, then the call fails.
		if v.Keep > 0 && v.Keep < len(data) {
			_ = f.Inner.WriteFile(name, data[:v.Keep])
		}
		return wrapFault(OpWriteFile, name, v.Err)
	case v.Torn:
		keep := v.Keep
		if keep > len(data) {
			keep = len(data)
		}
		return f.Inner.WriteFile(name, data[:keep])
	default:
		return f.Inner.WriteFile(name, data)
	}
}

func (f *FaultFS) Sync(name string) error {
	if v := f.check(OpSync, name); v.Err != nil {
		return wrapFault(OpSync, name, v.Err)
	}
	return f.Inner.Sync(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if v := f.check(OpSyncDir, dir); v.Err != nil {
		return wrapFault(OpSyncDir, dir, v.Err)
	}
	return f.Inner.SyncDir(dir)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if v := f.check(OpRename, oldname); v.Err != nil {
		return wrapFault(OpRename, oldname, v.Err)
	}
	return f.Inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if v := f.check(OpRemove, name); v.Err != nil {
		return wrapFault(OpRemove, name, v.Err)
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if v := f.check(OpReadFile, name); v.Err != nil {
		return nil, wrapFault(OpReadFile, name, v.Err)
	}
	return f.Inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if v := f.check(OpReadDir, dir); v.Err != nil {
		return nil, wrapFault(OpReadDir, dir, v.Err)
	}
	return f.Inner.ReadDir(dir)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if v := f.check(OpStat, name); v.Err != nil {
		return nil, wrapFault(OpStat, name, v.Err)
	}
	return f.Inner.Stat(name)
}
