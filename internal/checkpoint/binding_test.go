package checkpoint

import (
	"testing"

	"repro/internal/interval"
)

// TestBindingRoundTrip: the sub-farmer's upstream binding survives the
// save/load cycle, bound and unbound alike, and its absence is a clean
// "not bound" rather than an error (first start).
func TestBindingRoundTrip(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := store.LoadBinding(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v, want absent and nil", ok, err)
	}

	want := Binding{Bound: true, ID: 42<<40 | 7, Interval: interval.FromInt64(1000, 9999)}
	if err := store.SaveBinding(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.LoadBinding()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !got.Bound || got.ID != want.ID || !got.Interval.Equal(want.Interval) {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	// Unbinding persists too: a retired binding must not resurrect on
	// restart.
	if err := store.SaveBinding(Binding{}); err != nil {
		t.Fatal(err)
	}
	got, ok, err = store.LoadBinding()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Bound {
		t.Fatalf("unbound save loaded as bound: %+v", got)
	}
}
