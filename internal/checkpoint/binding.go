package checkpoint

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"strings"

	"repro/internal/interval"
)

// Binding is the upstream half of a sub-farmer's persistent state: which
// parent-side interval it holds and the bounds it last knew for it. It
// lives in a third file next to the paper's two — the two-file snapshot
// stays exactly the §4.1 INTERVALS/SOLUTION story at this tier, while the
// binding lets a restarted sub-farmer resume its parent session instead of
// presenting as a stranger (the parent then sees a lease blip, not a
// failure). A missing binding file simply means "not bound": the sub-farmer
// re-requests work from the parent and the parent's lease mechanism
// recovers whatever the previous incarnation held.
type Binding struct {
	// Bound reports whether an upstream interval is held at all.
	Bound bool
	// ID is the parent-side interval id (epoch-qualified by the parent).
	ID int64
	// Interval is the parent's copy as last learned from a reply.
	Interval interval.Interval
}

// bindingFile is the sub-farmer's upstream-session file.
const bindingFile = "upstream.ckpt"

// SaveBinding persists the upstream binding durably (same footer, fsync
// and rotation discipline as the two snapshot files).
func (s *Store) SaveBinding(b Binding) error {
	return s.SaveBindings([]Binding{b})
}

// SaveBindings persists every held upstream binding, one "bound" line per
// entry — the multi-binding extension (a sub-farmer in a low-water episode
// holds more than one parent copy, DESIGN.md §12).
func (s *Store) SaveBindings(bs []Binding) error {
	var sb strings.Builder
	records := 0
	for _, b := range bs {
		if !b.Bound {
			continue
		}
		text, err := b.Interval.MarshalText()
		if err != nil {
			return fmt.Errorf("checkpoint: marshal binding interval: %w", err)
		}
		fmt.Fprintf(&sb, "bound %d %s\n", b.ID, text)
		records++
	}
	return s.writeSnapshotFile(bindingFile, "upstream", sb.String(), records)
}

// LoadBinding reads the primary upstream binding. ok is false when no
// binding file exists (a first start, or a store written by a flat farmer).
func (s *Store) LoadBinding() (Binding, bool, error) {
	bs, ok, err := s.LoadBindings()
	if err != nil || !ok || len(bs) == 0 {
		return Binding{}, ok, err
	}
	return bs[0], true, nil
}

// LoadBindings reads every persisted upstream binding, in file order (the
// primary binding first). ok is false when no binding file exists; an
// existing file with no bound lines returns ok with an empty slice.
//
// Unlike Load, a corrupt binding never fails the caller: losing a binding
// is a designed-for state (the parent's lease mechanism recovers the
// interval), so a corrupt current generation falls back to *.prev — a
// stale binding is safe, the parent rejects retired ids — and if every
// generation is corrupt the sub-farmer simply starts unbound. The corrupt
// files are quarantined and counted either way.
func (s *Store) LoadBindings() ([]Binding, bool, error) {
	var bs []Binding
	fromPrev, err := s.loadGeneration(bindingFile, "upstream", func(lines []string) error {
		parsed, err := parseBindingLines(lines)
		if err != nil {
			return err
		}
		bs = parsed
		return nil
	})
	switch {
	case err == nil:
		if fromPrev {
			s.stats.fallback.Add(1)
		}
		return bs, true, nil
	case errors.Is(err, iofs.ErrNotExist):
		return nil, false, nil
	default:
		// Corrupt beyond recovery: degrade to unbound.
		return nil, false, nil
	}
}

func parseBindingLines(lines []string) ([]Binding, error) {
	bs := []Binding{}
	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case "bound":
			if len(fields) != 4 {
				return nil, fmt.Errorf("checkpoint: bad bound line %q", line)
			}
			var b Binding
			if _, err := fmt.Sscanf(fields[1], "%d", &b.ID); err != nil {
				return nil, fmt.Errorf("checkpoint: bad binding id %q: %w", fields[1], err)
			}
			if err := b.Interval.UnmarshalText([]byte(fields[2] + " " + fields[3])); err != nil {
				return nil, fmt.Errorf("checkpoint: %w", err)
			}
			b.Bound = true
			bs = append(bs, b)
		default:
			return nil, fmt.Errorf("checkpoint: unknown record %q", fields[0])
		}
	}
	return bs, nil
}
