package interval

import (
	"math/big"
	"testing"
	"testing/quick"
)

func iv(a, b int64) Interval { return FromInt64(a, b) }

// TestEmptiness covers the §4.3 rule: an interval is empty exactly when its
// beginning is not below its end, and the zero value is empty.
func TestEmptiness(t *testing.T) {
	cases := []struct {
		iv    Interval
		empty bool
	}{
		{Interval{}, true},
		{iv(0, 0), true},
		{iv(5, 5), true},
		{iv(7, 3), true},
		{iv(0, 1), false},
		{iv(-3, -1), false},
	}
	for _, c := range cases {
		if got := c.iv.IsEmpty(); got != c.empty {
			t.Errorf("IsEmpty(%v) = %v, want %v", c.iv, got, c.empty)
		}
	}
}

// TestLen: length is B-A clamped at zero.
func TestLen(t *testing.T) {
	if got := iv(3, 10).Len().Int64(); got != 7 {
		t.Errorf("len = %d, want 7", got)
	}
	if got := iv(10, 3).Len().Int64(); got != 0 {
		t.Errorf("len of reversed = %d, want 0", got)
	}
}

// TestIntersectPaperExamples checks eq. (14) on the situations §4.1–4.2
// describe: holder shrunk by load balancing, duplicate advanced by a peer.
func TestIntersectPaperExamples(t *testing.T) {
	// Worker explores [A,B) and advanced A; coordinator cut B' for a
	// requester: intersection keeps [max, min).
	got := iv(100, 1000).Intersect(iv(0, 750))
	if !got.Equal(iv(100, 750)) {
		t.Errorf("intersect = %v, want [100,750)", got)
	}
	// Disjoint pieces give an empty result.
	if !iv(0, 5).Intersect(iv(7, 9)).IsEmpty() {
		t.Error("disjoint intersection not empty")
	}
}

// TestIntersectProperties: commutative, idempotent, never larger than
// either operand (property-based).
func TestIntersectProperties(t *testing.T) {
	gen := func(a, b int16) Interval { return iv(int64(a), int64(b)) }
	f := func(a1, b1, a2, b2 int16) bool {
		x, y := gen(a1, b1), gen(a2, b2)
		xy := x.Intersect(y)
		yx := y.Intersect(x)
		if !xy.Equal(yx) {
			return false
		}
		if !xy.Equal(xy.Intersect(x)) {
			return false
		}
		if xy.Len().Cmp(x.Len()) > 0 || xy.Len().Cmp(y.Len()) > 0 {
			return false
		}
		// Every member of the intersection is in both operands.
		if !xy.IsEmpty() {
			if !x.ContainsInterval(xy) || !y.ContainsInterval(xy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitTiles: SplitAt always tiles the original interval, clamping out-
// of-range cut points (property-based).
func TestSplitTiles(t *testing.T) {
	f := func(a, b, c int16) bool {
		x := iv(int64(a), int64(b))
		holder, donated := x.SplitAt(big.NewInt(int64(c)))
		// Lengths add up.
		sum := new(big.Int).Add(holder.Len(), donated.Len())
		if sum.Cmp(x.Len()) != 0 {
			return false
		}
		// Pieces stay inside the original.
		if !x.ContainsInterval(holder) || !x.ContainsInterval(donated) {
			return false
		}
		// Pieces abut (or one is empty).
		if !holder.IsEmpty() && !donated.IsEmpty() {
			return holder.B().Cmp(donated.A()) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitProportional covers the §4.2 partitioning rules.
func TestSplitProportional(t *testing.T) {
	x := iv(0, 1000)
	holder, donated := x.SplitProportional(30, 10)
	if !holder.Equal(iv(0, 750)) || !donated.Equal(iv(750, 1000)) {
		t.Fatalf("30:10 split = %v / %v", holder, donated)
	}
	// Orphan (null-power virtual process): everything donated.
	holder, donated = x.SplitProportional(0, 10)
	if !holder.IsEmpty() || !donated.Equal(x) {
		t.Fatalf("orphan split = %v / %v", holder, donated)
	}
	// Zero-power requester gets nothing.
	holder, donated = x.SplitProportional(10, 0)
	if !holder.Equal(x) || !donated.IsEmpty() {
		t.Fatalf("powerless requester split = %v / %v", holder, donated)
	}
	// Both zero: treated as orphan.
	holder, donated = x.SplitProportional(0, 0)
	if !holder.IsEmpty() || !donated.Equal(x) {
		t.Fatalf("0:0 split = %v / %v", holder, donated)
	}
	// Negative powers are clamped.
	holder, donated = x.SplitProportional(-5, 10)
	if !donated.Equal(x) {
		t.Fatalf("negative holder power split = %v / %v", holder, donated)
	}
}

// TestSplitProportionalShares: the holder's share is proportional within
// one unit of rounding (property-based).
func TestSplitProportionalShares(t *testing.T) {
	f := func(hp, rp uint8) bool {
		x := iv(0, 10000)
		h, r := int64(hp)+1, int64(rp)+1
		holder, _ := x.SplitProportional(h, r)
		want := 10000 * h / (h + r)
		return holder.Len().Int64() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestContains covers boundary semantics of the half-open interval.
func TestContains(t *testing.T) {
	x := iv(3, 7)
	for n, want := range map[int64]bool{2: false, 3: true, 6: true, 7: false} {
		if got := x.Contains(big.NewInt(n)); got != want {
			t.Errorf("Contains(%d) = %v, want %v", n, got, want)
		}
	}
	if (Interval{}).Contains(big.NewInt(0)) {
		t.Error("empty interval contains 0")
	}
}

// TestContainsInterval: the empty interval is a subset of everything; no
// non-empty interval fits into an empty one.
func TestContainsInterval(t *testing.T) {
	if !iv(0, 10).ContainsInterval(iv(5, 5)) {
		t.Error("empty not contained")
	}
	if !iv(5, 5).ContainsInterval(iv(9, 9)) {
		t.Error("empty not contained in empty")
	}
	if iv(5, 5).ContainsInterval(iv(5, 6)) {
		t.Error("non-empty contained in empty")
	}
	if !iv(0, 10).ContainsInterval(iv(0, 10)) {
		t.Error("interval not contained in itself")
	}
	if iv(0, 10).ContainsInterval(iv(0, 11)) {
		t.Error("superset contained")
	}
}

// TestOverlaps is the disjointness test of the unfold elimination rule.
func TestOverlaps(t *testing.T) {
	cases := []struct {
		x, y Interval
		want bool
	}{
		{iv(0, 5), iv(5, 10), false}, // abutting half-open intervals are disjoint
		{iv(0, 6), iv(5, 10), true},
		{iv(0, 5), iv(7, 7), false},
		{iv(3, 3), iv(0, 10), false},
	}
	for _, c := range cases {
		if got := c.x.Overlaps(c.y); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
		if got := c.y.Overlaps(c.x); got != c.want {
			t.Errorf("Overlaps not symmetric on (%v,%v)", c.y, c.x)
		}
	}
}

// TestMarshalRoundTrip: the wire form survives numbers far beyond uint64
// (Ta056's 50! scale), including through gob.
func TestMarshalRoundTrip(t *testing.T) {
	big50, _ := new(big.Int).SetString("30414093201713378043612608166064768844377641568960512000000000000", 10) // 50!
	x := New(big.NewInt(12345), big50)
	text, err := x.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var y Interval
	if err := y.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(y) {
		t.Fatalf("text round trip: %v != %v", x, y)
	}
	gobBytes, err := x.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var z Interval
	if err := z.GobDecode(gobBytes); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(z) {
		t.Fatalf("gob round trip: %v != %v", x, z)
	}
}

// TestUnmarshalRejectsGarbage: malformed wire forms error cleanly.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "12", "a b", "1 2 3", "1 x"} {
		var y Interval
		if err := y.UnmarshalText([]byte(s)); err == nil {
			t.Errorf("UnmarshalText(%q) accepted", s)
		}
	}
}

// TestAccessorsAreCopies: mutating what A()/B() return must not corrupt the
// interval — aliasing bugs here would silently corrupt work accounting.
func TestAccessorsAreCopies(t *testing.T) {
	x := iv(1, 2)
	x.A().SetInt64(999)
	x.B().SetInt64(999)
	if !x.Equal(iv(1, 2)) {
		t.Fatalf("accessor aliased internal state: %v", x)
	}
	// Constructor must copy its arguments too.
	a, b := big.NewInt(1), big.NewInt(2)
	y := New(a, b)
	a.SetInt64(999)
	if !y.Equal(iv(1, 2)) {
		t.Fatalf("constructor aliased arguments: %v", y)
	}
}

// TestUnion covers the hull semantics and gap detection.
func TestUnion(t *testing.T) {
	hull, ok := Union(iv(0, 5), iv(5, 9))
	if !ok || !hull.Equal(iv(0, 9)) {
		t.Errorf("union of abutting = %v (ok=%v)", hull, ok)
	}
	hull, ok = Union(iv(0, 3), iv(7, 9))
	if ok {
		t.Error("gap not detected")
	}
	if !hull.Equal(iv(0, 9)) {
		t.Errorf("hull over gap = %v", hull)
	}
	hull, ok = Union(iv(4, 4), iv(1, 2))
	if !ok || !hull.Equal(iv(1, 2)) {
		t.Errorf("union with empty = %v (ok=%v)", hull, ok)
	}
}

// TestCmpOrdering: intervals order by beginning then end.
func TestCmpOrdering(t *testing.T) {
	if iv(1, 5).Cmp(iv(2, 3)) >= 0 {
		t.Error("order by beginning failed")
	}
	if iv(1, 5).Cmp(iv(1, 6)) >= 0 {
		t.Error("order by end failed")
	}
	if iv(1, 5).Cmp(iv(1, 5)) != 0 {
		t.Error("self comparison nonzero")
	}
}

// TestString covers the diagnostic rendering.
func TestString(t *testing.T) {
	if got := iv(3, 9).String(); got != "[3,9)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Interval{}).String(); got != "[0,0)" {
		t.Errorf("zero String() = %q", got)
	}
}

// TestBorrowAccessors: the allocation-free accessors agree with their
// cloning counterparts, including on the zero interval.
func TestBorrowAccessors(t *testing.T) {
	x := iv(3, 9)
	scratch := new(big.Int)
	if x.CmpA(big.NewInt(2)) <= 0 || x.CmpA(big.NewInt(3)) != 0 || x.CmpA(big.NewInt(4)) >= 0 {
		t.Error("CmpA ordering wrong")
	}
	if x.CmpB(big.NewInt(8)) <= 0 || x.CmpB(big.NewInt(9)) != 0 || x.CmpB(big.NewInt(10)) >= 0 {
		t.Error("CmpB ordering wrong")
	}
	if x.AInto(scratch).Cmp(x.A()) != 0 {
		t.Errorf("AInto = %v, A = %v", scratch, x.A())
	}
	if x.BInto(scratch).Cmp(x.B()) != 0 {
		t.Errorf("BInto = %v, B = %v", scratch, x.B())
	}
	if x.LenInto(scratch).Cmp(x.Len()) != 0 {
		t.Errorf("LenInto = %v, Len = %v", scratch, x.Len())
	}
	if got := iv(7, 2).LenInto(scratch); got.Sign() != 0 {
		t.Errorf("LenInto of empty = %v, want 0", got)
	}
	var zero Interval
	if zero.CmpA(new(big.Int)) != 0 || zero.CmpB(new(big.Int)) != 0 {
		t.Error("zero interval borrow accessors should compare as 0")
	}
	if zero.AInto(scratch).Sign() != 0 || zero.BInto(scratch).Sign() != 0 {
		t.Error("zero interval AInto/BInto should yield 0")
	}
	// Mutating the copied-out value must not touch the interval.
	x.AInto(scratch).SetInt64(99)
	if x.CmpA(big.NewInt(3)) != 0 {
		t.Error("AInto leaked internal state")
	}
}

// TestIntersectInPlace: the mutating intersection matches Intersect on
// overlapping, nested, disjoint and empty operands.
func TestIntersectInPlace(t *testing.T) {
	cases := [][2]Interval{
		{iv(0, 10), iv(5, 20)},
		{iv(5, 20), iv(0, 10)},
		{iv(0, 10), iv(2, 8)},
		{iv(2, 8), iv(0, 10)},
		{iv(0, 5), iv(7, 9)},
		{iv(0, 5), iv(5, 9)},
		{iv(3, 3), iv(0, 10)},
		{iv(0, 10), {}},
	}
	for _, c := range cases {
		want := c[0].Intersect(c[1])
		got := c[0].Clone()
		got.IntersectInPlace(c[1])
		if !got.Equal(want) {
			t.Errorf("IntersectInPlace(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
	// The zero interval denotes ∅, and ∅ absorbs: intersecting either
	// way yields an empty interval (the old nil-means-no-constraint
	// reading silently handed the whole root range to empty explorers).
	var zero Interval
	zero.IntersectInPlace(iv(1, 5))
	if !zero.IsEmpty() {
		t.Errorf("zero ∩ [1,5) = %v, want empty", zero)
	}
	if got := iv(1, 5).Intersect(Interval{}); !got.IsEmpty() {
		t.Errorf("[1,5) ∩ zero = %v, want empty", got)
	}
}
