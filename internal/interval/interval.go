// Package interval implements the work-unit algebra of the paper
// (Mezmaz, Melab, Talbi; INRIA RR-5945, §3–4): half-open intervals of node
// numbers [A, B) over arbitrary-precision integers, the intersection
// operator used by the fault-tolerance mechanism (eq. 14), and the
// partitioning operator used by the load-balancing mechanism (§4.2).
//
// Node numbers grow factorially with problem size (50 jobs means numbers up
// to 50! ≈ 3·10^64), so all arithmetic uses math/big. Intervals are the only
// representation that crosses process boundaries; the exponentially larger
// active-node lists they encode never leave a worker (paper §3).
package interval

import (
	"fmt"
	"math/big"
	"strings"
)

// Interval is a half-open interval [A, B) of node numbers. The zero value is
// the empty interval [0, 0). Interval values own their big.Int fields:
// constructors copy their arguments and accessors return copies, so callers
// can never alias internal state.
type Interval struct {
	a, b *big.Int
}

// New returns the interval [a, b). The arguments are copied.
func New(a, b *big.Int) Interval {
	return Interval{a: cloneOrZero(a), b: cloneOrZero(b)}
}

// FromInt64 returns the interval [a, b) from machine integers, a convenience
// for tests and small trees.
func FromInt64(a, b int64) Interval {
	return Interval{a: big.NewInt(a), b: big.NewInt(b)}
}

func cloneOrZero(x *big.Int) *big.Int {
	if x == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(x)
}

// A returns a copy of the interval's beginning.
func (iv Interval) A() *big.Int { return cloneOrZero(iv.a) }

// B returns a copy of the interval's end.
func (iv Interval) B() *big.Int { return cloneOrZero(iv.b) }

// zero is the implicit bound of an Interval with nil fields (the zero value
// is [0, 0)). It is only ever read.
var zero = new(big.Int)

func orZero(x *big.Int) *big.Int {
	if x == nil {
		return zero
	}
	return x
}

// Borrow-style accessors. A() and B() clone so callers can never alias
// internal state, which is the right default for values that cross
// goroutines and process boundaries — but it puts two heap allocations on
// every inspection, and the coordination hot paths (Explorer.Restrict, the
// farmer's per-checkpoint message handling) inspect intervals thousands of
// times per second. The methods below compare against or copy into
// caller-owned big.Ints instead, so steady-state coordination rounds
// allocate nothing. None of them retain or expose the interval's internals.

// CmpA compares the interval's beginning with x: -1 if A < x, 0 if equal,
// +1 if A > x.
func (iv Interval) CmpA(x *big.Int) int { return orZero(iv.a).Cmp(x) }

// MaxBitLen returns the larger bit length of the interval's two bounds.
// It is the cheap size probe a coordinator boundary uses to reject
// hostile megabyte bignums before any O(n) comparison touches them: gob
// decoding accepts arbitrary-precision integers, so the shape of an
// inbound interval is attacker-controlled. Nil bounds (the zero value)
// report zero.
func (iv Interval) MaxBitLen() int {
	a, b := orZero(iv.a).BitLen(), orZero(iv.b).BitLen()
	if a > b {
		return a
	}
	return b
}

// CmpB compares the interval's end with x.
func (iv Interval) CmpB(x *big.Int) int { return orZero(iv.b).Cmp(x) }

// AInto copies the interval's beginning into dst and returns dst.
func (iv Interval) AInto(dst *big.Int) *big.Int { return dst.Set(orZero(iv.a)) }

// BInto copies the interval's end into dst and returns dst.
func (iv Interval) BInto(dst *big.Int) *big.Int { return dst.Set(orZero(iv.b)) }

// LenInto computes Len (B-A clamped at zero) into dst and returns dst.
func (iv Interval) LenInto(dst *big.Int) *big.Int {
	if iv.IsEmpty() {
		return dst.SetInt64(0)
	}
	return dst.Sub(iv.b, iv.a)
}

// IntersectInPlace narrows iv to iv ∩ other (eq. 14) without allocating
// fresh bounds in the steady state: the receiver's own big.Ints are
// overwritten. It is the mutating twin of Intersect for owners of
// long-lived intervals (the farmer's INTERVALS entries) and agrees with it
// on every input (up to Equal): intersecting with an empty interval —
// including the zero value — empties the receiver.
func (iv *Interval) IntersectInPlace(other Interval) {
	if iv.a == nil {
		iv.a = new(big.Int)
	}
	if iv.b == nil {
		iv.b = new(big.Int)
	}
	if other.IsEmpty() {
		iv.b.Set(iv.a)
		return
	}
	if other.a.Cmp(iv.a) > 0 {
		iv.a.Set(other.a)
	}
	if other.b.Cmp(iv.b) < 0 {
		iv.b.Set(other.b)
	}
}

// Clone returns a deep copy of the interval.
func (iv Interval) Clone() Interval { return Interval{a: iv.A(), b: iv.B()} }

// IsEmpty reports whether the interval contains no numbers, i.e. A >= B.
// The paper removes such intervals from INTERVALS automatically (§4.3).
func (iv Interval) IsEmpty() bool {
	if iv.a == nil || iv.b == nil {
		return true
	}
	return iv.a.Cmp(iv.b) >= 0
}

// Len returns B-A if positive and zero otherwise: the number of not-yet
// explored leaf numbers the interval represents (the paper's interval
// "length", §4.2).
func (iv Interval) Len() *big.Int {
	if iv.IsEmpty() {
		return new(big.Int)
	}
	return new(big.Int).Sub(iv.b, iv.a)
}

// Contains reports whether the number x lies in [A, B).
func (iv Interval) Contains(x *big.Int) bool {
	if iv.IsEmpty() {
		return false
	}
	return iv.a.Cmp(x) <= 0 && x.Cmp(iv.b) < 0
}

// ContainsInterval reports whether other ⊆ iv. The empty interval is
// contained in every interval, matching the set-theoretic convention the
// unfold elimination rule relies on (eq. 12).
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.a.Cmp(other.a) <= 0 && other.b.Cmp(iv.b) <= 0
}

// Overlaps reports whether iv and other share at least one number.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return false
	}
	return iv.a.Cmp(other.b) < 0 && other.a.Cmp(iv.b) < 0
}

// Intersect implements the paper's intersection operator (eq. 14):
//
//	[A, B) ∩ [A', B') = [max(A, A'), min(B, B'))
//
// It is how a B&B process reconciles its locally explored interval with the
// coordinator's copy after load balancing shrank one of them (§4.1).
// Intersection with an empty interval — including the zero value, which
// denotes ∅ everywhere in this package — is empty; an early version treated
// the zero value's nil bounds as "no constraint", which silently handed the
// whole root range to explorers constructed with no work at all.
func (iv Interval) Intersect(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Interval{a: new(big.Int), b: new(big.Int)}
	}
	a := maxBig(iv.a, other.a)
	b := minBig(iv.b, other.b)
	return Interval{a: cloneOrZero(a), b: cloneOrZero(b)}
}

func maxBig(x, y *big.Int) *big.Int {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

func minBig(x, y *big.Int) *big.Int {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// SplitAt implements the partitioning operator (§4.2): it divides [A, B)
// into the holder part [A, C) and the donated part [C, B). The point c is
// clamped into [A, B] so the two parts always tile the original interval.
func (iv Interval) SplitAt(c *big.Int) (holder, donated Interval) {
	cc := cloneOrZero(c)
	if iv.IsEmpty() {
		return Interval{a: iv.A(), b: iv.A()}, Interval{a: iv.A(), b: iv.A()}
	}
	if cc.Cmp(iv.a) < 0 {
		cc.Set(iv.a)
	}
	if cc.Cmp(iv.b) > 0 {
		cc.Set(iv.b)
	}
	return Interval{a: iv.A(), b: new(big.Int).Set(cc)},
		Interval{a: cc, b: iv.B()}
}

// SplitProportional splits the interval so that the holder keeps a share of
// holderPower/(holderPower+requesterPower) of its length, the paper's rule
// for heterogeneous, non-dedicated hosts (§4.2): "the lengths of the two
// intervals must be proportional to the participation of each one in the
// calculation". A holder power of zero models the virtual null-power process
// that owns orphaned intervals, so the requester receives everything.
// Negative powers are treated as zero. If both powers are zero the split is
// at A (the whole interval is donated), matching the orphan rule.
func (iv Interval) SplitProportional(holderPower, requesterPower int64) (holder, donated Interval) {
	if iv.IsEmpty() {
		return iv.SplitAt(iv.a)
	}
	if holderPower < 0 {
		holderPower = 0
	}
	if requesterPower < 0 {
		requesterPower = 0
	}
	total := holderPower + requesterPower
	if total == 0 {
		return iv.SplitAt(iv.a)
	}
	// C = A + len * holderPower/total, rounded down so ties favour the
	// requester (the process known to be alive and asking for work).
	c := iv.Len()
	c.Mul(c, big.NewInt(holderPower))
	c.Quo(c, big.NewInt(total))
	c.Add(c, iv.a)
	return iv.SplitAt(c)
}

// Equal reports whether the two intervals denote the same set of numbers.
// All empty intervals are equal regardless of their bounds.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() && other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() != other.IsEmpty() {
		return false
	}
	return iv.a.Cmp(other.a) == 0 && iv.b.Cmp(other.b) == 0
}

// Cmp orders intervals by beginning, then by end; empty intervals order by
// their raw bounds. It gives the canonical ascending order of work units.
func (iv Interval) Cmp(other Interval) int {
	if c := cloneOrZero(iv.a).Cmp(cloneOrZero(other.a)); c != 0 {
		return c
	}
	return cloneOrZero(iv.b).Cmp(cloneOrZero(other.b))
}

// String renders the interval as "[A,B)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%s,%s)", cloneOrZero(iv.a), cloneOrZero(iv.b))
}

// MarshalText encodes the interval as "A B" in base 10; it is the wire and
// checkpoint representation, deliberately tiny compared to the active-node
// lists it stands for (paper abstract: "a special coding of the work units
// ... allows to optimize the involved communications").
func (iv Interval) MarshalText() ([]byte, error) {
	return []byte(cloneOrZero(iv.a).Text(10) + " " + cloneOrZero(iv.b).Text(10)), nil
}

// UnmarshalText decodes the "A B" form produced by MarshalText.
func (iv *Interval) UnmarshalText(text []byte) error {
	fields := strings.Fields(string(text))
	if len(fields) != 2 {
		return fmt.Errorf("interval: expected \"A B\", got %q", string(text))
	}
	a, ok := new(big.Int).SetString(fields[0], 10)
	if !ok {
		return fmt.Errorf("interval: bad beginning %q", fields[0])
	}
	b, ok := new(big.Int).SetString(fields[1], 10)
	if !ok {
		return fmt.Errorf("interval: bad end %q", fields[1])
	}
	iv.a, iv.b = a, b
	return nil
}

// GobEncode implements gob.GobEncoder via the text form, so intervals can
// cross process boundaries in RPC messages and checkpoint files.
func (iv Interval) GobEncode() ([]byte, error) { return iv.MarshalText() }

// GobDecode implements gob.GobDecoder.
func (iv *Interval) GobDecode(data []byte) error { return iv.UnmarshalText(data) }

// Union returns the smallest interval containing both operands. It is only
// meaningful for adjacent or overlapping intervals, which is exactly the
// situation of a depth-first active list (eq. 9: consecutive ranges abut);
// ok is false when the operands leave a gap, in which case the hull is still
// returned for diagnostic purposes.
func Union(x, y Interval) (hull Interval, ok bool) {
	if x.IsEmpty() {
		return y.Clone(), true
	}
	if y.IsEmpty() {
		return x.Clone(), true
	}
	a := minBig(x.a, y.a)
	b := maxBig(x.b, y.b)
	hull = Interval{a: cloneOrZero(a), b: cloneOrZero(b)}
	// A gap exists when one interval ends strictly before the other begins.
	if x.b.Cmp(y.a) < 0 || y.b.Cmp(x.a) < 0 {
		return hull, false
	}
	return hull, true
}
