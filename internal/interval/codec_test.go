package interval

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/big"
	"testing"
)

// mustRoundTrip encodes iv against ref and decodes it back, asserting
// bound-exact equality (not just set equality: empty intervals must keep
// their bounds so the codec agrees with the text form byte for byte).
func mustRoundTrip(t *testing.T, iv, ref Interval) []byte {
	t.Helper()
	enc := iv.AppendDelta(nil, ref)
	got, n, err := DecodeDelta(enc, ref, 0)
	if err != nil {
		t.Fatalf("DecodeDelta(%s vs ref %s): %v", iv, ref, err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if got.A().Cmp(iv.A()) != 0 || got.B().Cmp(iv.B()) != 0 {
		t.Fatalf("round trip %s vs ref %s: got %s", iv, ref, got)
	}
	return enc
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	huge := new(big.Int).Lsh(big.NewInt(1), 214) // Ta056-scale bound
	ref := New(big.NewInt(0), huge)
	cases := []Interval{
		{},                                   // zero value
		FromInt64(0, 0),                      // explicit empty at zero
		FromInt64(5, 5),                      // empty with non-zero bounds
		FromInt64(7, 3),                      // inverted (empty) bounds
		FromInt64(0, 100),                    // prefix of the reference
		FromInt64(-40, -3),                   // entirely below the reference
		New(big.NewInt(123), huge),           // end pinned at ref end
		New(huge, new(big.Int).Lsh(huge, 1)), // entirely above the reference
		ref,                                  // the reference itself
		New(big.NewInt(1), new(big.Int).Sub(huge, big.NewInt(1))),
	}
	for _, iv := range cases {
		mustRoundTrip(t, iv, ref)
		mustRoundTrip(t, iv, Interval{})      // zero reference: absolute bounds
		mustRoundTrip(t, iv, FromInt64(9, 4)) // empty, non-zero reference
	}
}

func TestDeltaCodecCompactness(t *testing.T) {
	huge := new(big.Int).Lsh(big.NewInt(1), 214)
	ref := New(big.NewInt(0), huge)

	// The reference itself: both deltas are zero, two bytes total.
	if enc := ref.AppendDelta(nil, ref); len(enc) != 2 {
		t.Fatalf("ref vs itself: %d bytes, want 2", len(enc))
	}
	// A steady-state fold [mid, ref.B): one magnitude plus a zero delta —
	// and far smaller than the ~130-byte decimal text form.
	mid := new(big.Int).Rsh(huge, 1)
	fold := New(mid, huge)
	enc := fold.AppendDelta(nil, ref)
	text, _ := fold.MarshalText()
	if len(enc) >= len(text)/3 {
		t.Fatalf("fold encodes to %d bytes, text is %d — expected >3x smaller", len(enc), len(text))
	}
	// Appending extends, never clobbers.
	pre := []byte{0xAA, 0xBB}
	out := fold.AppendDelta(pre, ref)
	if !bytes.Equal(out[:2], pre) {
		t.Fatal("AppendDelta clobbered the prefix")
	}
}

func TestDeltaCodecWidthCap(t *testing.T) {
	ref := FromInt64(0, 1000)
	big1 := new(big.Int).Lsh(big.NewInt(1), 4096)
	iv := New(big1, new(big.Int).Add(big1, big.NewInt(5)))
	enc := iv.AppendDelta(nil, ref)
	// Generous cap: accepted.
	if _, _, err := DecodeDelta(enc, ref, 1<<13); err != nil {
		t.Fatalf("within cap: %v", err)
	}
	// Tight cap: rejected from the header, before the magnitude is read.
	if _, _, err := DecodeDelta(enc, ref, 1024); err == nil {
		t.Fatal("4096-bit delta passed a 1024-bit cap")
	}
	// A header claiming a magnitude far beyond the buffer must fail on the
	// cap (or truncation) without allocating: encode the header by hand.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F} // uvarint ~2^34: ~2^33 bytes claimed
	if _, _, err := DecodeDelta(hostile, ref, 0); err == nil {
		t.Fatal("absurd magnitude claim decoded")
	}
}

// TestDeltaCodecHeaderOverflow: a header claiming ~2^63 magnitude bytes
// must be rejected from the header alone. Converting the claim to int
// first would wrap it negative, slipping past both the width cap and the
// truncation check into a panicking slice expression — a 10-byte frame
// killing the decoding process.
func TestDeltaCodecHeaderOverflow(t *testing.T) {
	ref := FromInt64(0, 1000)
	for _, h := range []uint64{math.MaxUint64, 1 << 63, (1 << 63) + 2} {
		hostile := binary.AppendUvarint(nil, h)
		if _, _, err := DecodeDelta(hostile, ref, 0); err == nil {
			t.Fatalf("overflowing header %#x decoded", h)
		}
	}
}

func TestDeltaCodecRejectsNonCanonical(t *testing.T) {
	ref := FromInt64(0, 10)
	// Negative zero: header 0x01 (zero bytes, sign bit set) twice.
	if _, _, err := DecodeDelta([]byte{0x01, 0x00}, ref, 0); err == nil {
		t.Fatal("negative-zero delta decoded")
	}
	// Truncated magnitude.
	if _, _, err := DecodeDelta([]byte{0x04, 0x01}, ref, 0); err == nil {
		t.Fatal("truncated magnitude decoded")
	}
	// Empty input.
	if _, _, err := DecodeDelta(nil, ref, 0); err == nil {
		t.Fatal("empty input decoded")
	}
}
