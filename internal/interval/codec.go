// The compact binary codec of the wire layer (DESIGN.md §11): intervals
// delta-coded against a reference range. The text form ("A B" in base 10,
// MarshalText) spends ~2.4 bits per bit of bound plus two full magnitudes
// per interval; this codec spends one byte-aligned magnitude per *delta*
// from the reference — and the protocol's intervals hug their references.
// A fold's end is pinned at the coordinator's copy end (often the root
// end), a retire is [B, B), a reply usually echoes the request — so the
// common deltas are zero and encode in one byte.
//
// The encoding of one interval [A, B) against a reference [RA, RB) is two
// signed bignums, dA = A - RA and dB = RB - B, each as a uvarint header
// (magnitude byte count shifted left once, sign in the low bit) followed
// by the big-endian magnitude. The header-first layout is what lets a
// decoder enforce a width cap BEFORE allocating or reading a single
// magnitude byte — the same reject-before-materialize discipline as the
// coordinator boundary's MaxIntervalBits check.
//
// Any interval round-trips against any reference, bound for bound — empty
// intervals keep their exact (unequal-but-empty) bounds, negative deltas
// cover intervals outside the reference — so the codec agrees with the
// text form on every input, not merely up to set equality.
package interval

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// MaxDeltaBits is the default width cap of DecodeDelta: the largest bit
// length either decoded bound's delta may claim before the decoder rejects
// the input unread. Node numbers grow factorially — 500! is ~3700 bits —
// so a mebibit of headroom accepts any plausible instance while refusing
// to materialize a hostile multi-megabyte bignum.
const MaxDeltaBits = 1 << 20

// AppendDelta appends the compact binary encoding of iv, delta-coded
// against the reference interval ref, and returns the extended slice. The
// encoding is two signed bignums, A-ref.A and ref.B-B; an interval equal
// to its reference is two bytes. Decode with DecodeDelta under the same
// reference. ref is typically the root interval both ends of a connection
// pinned at negotiation time; any reference (including the zero interval,
// which encodes absolute bounds) round-trips every interval exactly.
func (iv Interval) AppendDelta(dst []byte, ref Interval) []byte {
	var d big.Int
	d.Sub(orZero(iv.a), orZero(ref.a))
	dst = appendSignedBig(dst, &d)
	d.Sub(orZero(ref.b), orZero(iv.b))
	return appendSignedBig(dst, &d)
}

// DecodeDelta decodes an interval produced by AppendDelta under the same
// reference, returning the interval and the number of bytes consumed.
// maxBits caps the bit width of either bound's delta — a claim beyond it
// is rejected from the header alone, before any magnitude is read or
// allocated; zero or negative means MaxDeltaBits.
func DecodeDelta(data []byte, ref Interval, maxBits int) (Interval, int, error) {
	if maxBits <= 0 {
		maxBits = MaxDeltaBits
	}
	da, n, err := decodeSignedBig(data, maxBits)
	if err != nil {
		return Interval{}, 0, fmt.Errorf("interval: delta beginning: %w", err)
	}
	db, m, err := decodeSignedBig(data[n:], maxBits)
	if err != nil {
		return Interval{}, 0, fmt.Errorf("interval: delta end: %w", err)
	}
	a := da.Add(da, orZero(ref.a))
	b := db.Sub(orZero(ref.b), db)
	return Interval{a: a, b: b}, n + m, nil
}

// appendSignedBig appends x as uvarint(byteLen<<1 | sign) + magnitude
// bytes (big-endian, minimal). Zero is the single byte 0x00.
func appendSignedBig(dst []byte, x *big.Int) []byte {
	n := (x.BitLen() + 7) / 8
	h := uint64(n) << 1
	if x.Sign() < 0 {
		h |= 1
	}
	dst = binary.AppendUvarint(dst, h)
	if n == 0 {
		return dst
	}
	start := len(dst)
	dst = append(dst, make([]byte, n)...)
	x.FillBytes(dst[start:])
	return dst
}

// decodeSignedBig reverses appendSignedBig, rejecting headers whose
// claimed magnitude exceeds maxBits before touching the magnitude.
func decodeSignedBig(data []byte, maxBits int) (*big.Int, int, error) {
	h, hn := binary.Uvarint(data)
	if hn <= 0 {
		return nil, 0, fmt.Errorf("truncated or oversized header")
	}
	// Vet the claimed byte count in uint64 space: converting first would
	// let a 2^63-scale claim wrap negative and slip past both checks.
	if h>>1 > (uint64(maxBits)+7)/8 {
		return nil, 0, fmt.Errorf("magnitude of %d bytes exceeds %d bits", h>>1, maxBits)
	}
	n := int(h >> 1)
	if len(data)-hn < n {
		return nil, 0, fmt.Errorf("truncated magnitude: want %d bytes, have %d", n, len(data)-hn)
	}
	x := new(big.Int).SetBytes(data[hn : hn+n])
	if h&1 != 0 {
		if x.Sign() == 0 {
			return nil, 0, fmt.Errorf("negative zero")
		}
		x.Neg(x)
	}
	return x, hn + n, nil
}
