// Sharding operators: the donation algebra the peer-to-peer runtime
// introduced (steal-by-halving) and the tiling operator the intra-worker
// multicore engine is built on, extracted here so every runtime that moves
// work between explorers shares one audited implementation. Both are pure
// functions of the interval bounds; the fuzz suite pins their conservation
// laws (pieces tile the input exactly, never overlap, empties stay
// absorbing) against the brute-force model.
package interval

import "math/big"

// Halve is the donation operator: it splits iv at its midpoint into the
// part the holder keeps ([A, mid), the region its depth-first walk is
// already inside) and the part it donates ([mid, B)). An interval too short
// to share — fewer than two numbers, including every empty interval — is
// kept whole: keep echoes iv and give is empty, so donation chains absorb
// empties instead of manufacturing work from them.
func Halve(iv Interval) (keep, give Interval) {
	two := big.NewInt(2)
	if iv.IsEmpty() || iv.Len().Cmp(two) < 0 {
		return iv.Clone(), Interval{a: new(big.Int), b: new(big.Int)}
	}
	mid := new(big.Int).Add(iv.a, iv.b)
	mid.Rsh(mid, 1)
	return iv.SplitAt(mid)
}

// SplitEven tiles iv into n contiguous pieces of near-equal length (the
// first Len mod n pieces get one extra number), in ascending order. The
// pieces always tile iv exactly; when iv holds fewer than n numbers the
// trailing pieces are empty. It is the initial shard layout of the
// multicore worker engine: one piece per shard explorer, which then
// rebalance among themselves with Halve-based stealing. n < 1 is treated
// as 1.
func SplitEven(iv Interval, n int) []Interval {
	if n < 1 {
		n = 1
	}
	out := make([]Interval, n)
	if iv.IsEmpty() {
		for i := range out {
			out[i] = Interval{a: new(big.Int), b: new(big.Int)}
		}
		return out
	}
	length := iv.Len()
	quo, rem := new(big.Int).QuoRem(length, big.NewInt(int64(n)), new(big.Int))
	cut := new(big.Int).Set(iv.a)
	one := big.NewInt(1)
	for i := 0; i < n; i++ {
		a := new(big.Int).Set(cut)
		cut.Add(cut, quo)
		if int64(i) < rem.Int64() {
			cut.Add(cut, one)
		}
		out[i] = Interval{a: a, b: new(big.Int).Set(cut)}
	}
	return out
}
