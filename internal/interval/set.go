// Interval sets: finite unions of disjoint half-open intervals, with exact
// big.Int measure accounting. The conformance layer of internal/harness uses
// them to state the paper's invariants mechanically — "the completed regions
// plus the checkpointed remainders partition the root range" is a Set
// equation — and the farmer-side INTERVALS content is itself such a set.
package interval

import (
	"math/big"
	"strings"
)

// Set is a union of disjoint, non-adjacent, ascending half-open intervals.
// The zero value is the empty set. Sets own their big.Ints: inputs are
// copied on the way in and outputs on the way out, like Interval itself.
// A Set is not safe for concurrent use.
type Set struct {
	ivs []Interval // sorted by A; pairwise disjoint with gaps between
}

// NewSet returns a set holding the given intervals (empties are ignored,
// overlaps merged).
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{ivs: make([]Interval, len(s.ivs))}
	for i, iv := range s.ivs {
		c.ivs[i] = iv.Clone()
	}
	return c
}

// Count returns the number of disjoint runs in the set.
func (s *Set) Count() int { return len(s.ivs) }

// IsEmpty reports whether the set has zero measure.
func (s *Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns the runs in ascending order, as copies.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	for i, iv := range s.ivs {
		out[i] = iv.Clone()
	}
	return out
}

// Total returns the measure of the set: the sum of the run lengths.
func (s *Set) Total() *big.Int {
	t := new(big.Int)
	tmp := new(big.Int)
	for _, iv := range s.ivs {
		t.Add(t, iv.LenInto(tmp))
	}
	return t
}

// Add unions iv into the set and returns the measure of iv ∩ s before the
// call — the amount of re-covered ground, which is exactly the redundant
// work the paper's fault-tolerance mechanism trades for checkpoint sparsity.
// Adding an empty interval is a no-op returning zero.
func (s *Set) Add(iv Interval) *big.Int {
	overlap := new(big.Int)
	if iv.IsEmpty() {
		return overlap
	}
	a, b := iv.A(), iv.B()
	// Find the insertion window: runs strictly before a stay; runs that
	// overlap or touch [a,b) are merged into it.
	lo := 0
	for lo < len(s.ivs) && s.ivs[lo].b.Cmp(a) < 0 {
		lo++
	}
	hi := lo
	tmp := new(big.Int)
	for hi < len(s.ivs) && s.ivs[hi].a.Cmp(b) <= 0 {
		run := s.ivs[hi]
		// Overlap measure of [a,b) ∩ run.
		oa := maxBig(a, run.a)
		ob := minBig(b, run.b)
		if oa.Cmp(ob) < 0 {
			overlap.Add(overlap, tmp.Sub(ob, oa))
		}
		if run.a.Cmp(a) < 0 {
			a.Set(run.a)
		}
		if run.b.Cmp(b) > 0 {
			b.Set(run.b)
		}
		hi++
	}
	merged := Interval{a: a, b: b}
	s.ivs = append(s.ivs[:lo], append([]Interval{merged}, s.ivs[hi:]...)...)
	return overlap
}

// Sub removes iv from the set and returns the measure actually removed
// (the measure of iv ∩ s before the call).
func (s *Set) Sub(iv Interval) *big.Int {
	removed := new(big.Int)
	if iv.IsEmpty() || len(s.ivs) == 0 {
		return removed
	}
	out := s.ivs[:0:0]
	tmp := new(big.Int)
	for _, run := range s.ivs {
		if run.b.Cmp(iv.a) <= 0 || run.a.Cmp(iv.b) >= 0 {
			out = append(out, run)
			continue
		}
		oa := maxBig(iv.a, run.a)
		ob := minBig(iv.b, run.b)
		removed.Add(removed, tmp.Sub(ob, oa))
		if run.a.Cmp(oa) < 0 {
			out = append(out, Interval{a: run.a, b: new(big.Int).Set(oa)})
		}
		if ob.Cmp(run.b) < 0 {
			out = append(out, Interval{a: new(big.Int).Set(ob), b: run.b})
		}
	}
	s.ivs = out
	return removed
}

// Covers reports whether iv ⊆ s. The empty interval is covered by any set.
func (s *Set) Covers(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	for _, run := range s.ivs {
		if run.a.Cmp(iv.a) <= 0 && iv.b.Cmp(run.b) <= 0 {
			return true
		}
	}
	return false
}

// Gaps returns universe ∖ s: the uncovered runs inside the universe, in
// ascending order. A non-empty result is, for the harness, a hole in the
// work accounting — leaf numbers no worker and no checkpoint owns.
func (s *Set) Gaps(universe Interval) []Interval {
	var gaps []Interval
	if universe.IsEmpty() {
		return gaps
	}
	cursor := universe.A()
	end := universe.B()
	for _, run := range s.ivs {
		if run.b.Cmp(cursor) <= 0 {
			continue
		}
		if run.a.Cmp(end) >= 0 {
			break
		}
		if run.a.Cmp(cursor) > 0 {
			gaps = append(gaps, Interval{a: new(big.Int).Set(cursor), b: new(big.Int).Set(minBig(run.a, end))})
		}
		if run.b.Cmp(cursor) > 0 {
			cursor.Set(run.b)
		}
		if cursor.Cmp(end) >= 0 {
			return gaps
		}
	}
	if cursor.Cmp(end) < 0 {
		gaps = append(gaps, Interval{a: cursor, b: end})
	}
	return gaps
}

// Equal reports whether the two sets denote the same set of numbers.
func (s *Set) Equal(o *Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if !s.ivs[i].Equal(o.ivs[i]) {
			return false
		}
	}
	return true
}

// String renders the set as "{[a,b) [c,d) ...}" for traces and failures.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(iv.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// SetDiff returns a ∖ b as a fresh set.
func SetDiff(a, b *Set) *Set {
	d := a.Clone()
	for _, iv := range b.ivs {
		d.Sub(iv)
	}
	return d
}
