package interval

import (
	"math/big"
	"math/rand"
	"testing"
)

// Randomized torture tests of the work-unit algebra, in the style of
// core/explorer_fuzz_test.go: thousands of seeded random cases checked
// against brute-force models over a small universe, so every algebraic
// identity the runtime leans on (eq. 10/14 and the Set conservation laws
// the harness asserts) is pinned mechanically.

const fuzzUniverse = 64

func randIv(rng *rand.Rand) Interval {
	a := rng.Int63n(fuzzUniverse + 1)
	b := rng.Int63n(fuzzUniverse + 1)
	if rng.Intn(8) == 0 {
		return Interval{} // the zero value joins the party
	}
	return FromInt64(a, b) // may be empty (a >= b): that is the point
}

// model is the brute-force reference: one bool per number.
type model [fuzzUniverse]bool

func (m *model) add(iv Interval) (overlap int64) {
	for i := int64(0); i < fuzzUniverse; i++ {
		if iv.Contains(big.NewInt(i)) {
			if m[i] {
				overlap++
			}
			m[i] = true
		}
	}
	return overlap
}

func (m *model) sub(iv Interval) (removed int64) {
	for i := int64(0); i < fuzzUniverse; i++ {
		if iv.Contains(big.NewInt(i)) && m[i] {
			removed++
			m[i] = false
		}
	}
	return removed
}

func (m *model) contains(s *Set) bool {
	for i := int64(0); i < fuzzUniverse; i++ {
		if m[i] != s.Covers(FromInt64(i, i+1)) {
			return false
		}
	}
	return true
}

func (m *model) total() int64 {
	var n int64
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

// TestFuzzIntersectInPlaceMatchesIntersect: the mutating twin must agree
// with the pure operator on every input, including zero-value operands —
// this is the identity the farmer's per-checkpoint hot path relies on.
func TestFuzzIntersectInPlaceMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5000; trial++ {
		x, y := randIv(rng), randIv(rng)
		pure := x.Intersect(y)
		mut := x.Clone()
		mut.IntersectInPlace(y)
		if !mut.Equal(pure) {
			t.Fatalf("trial %d: %v ∩ %v: in-place %v, pure %v", trial, x, y, mut, pure)
		}
		// Commutativity up to Equal (empties may differ in bounds).
		if !y.Intersect(x).Equal(pure) {
			t.Fatalf("trial %d: intersection not commutative for %v, %v", trial, x, y)
		}
		// Membership law against the model.
		for i := int64(0); i < fuzzUniverse; i++ {
			n := big.NewInt(i)
			if pure.Contains(n) != (x.Contains(n) && y.Contains(n)) {
				t.Fatalf("trial %d: %d membership wrong in %v ∩ %v = %v", trial, i, x, y, pure)
			}
		}
	}
}

// TestFuzzSplitsTile: both partitioning operators produce two pieces that
// tile the original exactly — the §4.2 guarantee the load balancer and the
// p2p donate path depend on for work conservation.
func TestFuzzSplitsTile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		iv := randIv(rng)
		var holder, donated Interval
		if rng.Intn(2) == 0 {
			holder, donated = iv.SplitAt(big.NewInt(rng.Int63n(fuzzUniverse + 1)))
		} else {
			holder, donated = iv.SplitProportional(rng.Int63n(5), rng.Int63n(5))
		}
		sum := new(big.Int).Add(holder.Len(), donated.Len())
		if sum.Cmp(iv.Len()) != 0 {
			t.Fatalf("trial %d: split of %v lost measure: %v + %v", trial, iv, holder, donated)
		}
		if holder.Overlaps(donated) {
			t.Fatalf("trial %d: split pieces overlap: %v, %v", trial, holder, donated)
		}
		for i := int64(0); i < fuzzUniverse; i++ {
			n := big.NewInt(i)
			if iv.Contains(n) != (holder.Contains(n) || donated.Contains(n)) {
				t.Fatalf("trial %d: number %d misplaced by split of %v", trial, i, iv)
			}
		}
	}
}

// TestFuzzHalveTiles: the extracted donation operator — kept + donated
// exactly tile the victim's interval, the pieces never overlap, and
// too-short intervals (including every empty one, zero value included) are
// absorbing: the victim keeps everything and the donation is empty. This
// is the conservation law the p2p steals and the multicore shard engine's
// internal rebalancing both lean on.
func TestFuzzHalveTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 5000; trial++ {
		iv := randIv(rng)
		keep, give := Halve(iv)
		sum := new(big.Int).Add(keep.Len(), give.Len())
		if sum.Cmp(iv.Len()) != 0 {
			t.Fatalf("trial %d: Halve(%v) lost measure: %v + %v", trial, iv, keep, give)
		}
		if keep.Overlaps(give) {
			t.Fatalf("trial %d: Halve(%v) pieces overlap: %v, %v", trial, iv, keep, give)
		}
		for i := int64(0); i < fuzzUniverse; i++ {
			n := big.NewInt(i)
			if iv.Contains(n) != (keep.Contains(n) || give.Contains(n)) {
				t.Fatalf("trial %d: number %d misplaced by Halve(%v)", trial, i, iv)
			}
		}
		if iv.Len().Cmp(big.NewInt(2)) < 0 {
			if !give.IsEmpty() {
				t.Fatalf("trial %d: Halve(%v) donated %v from a too-short interval", trial, iv, give)
			}
			if !keep.Equal(iv) {
				t.Fatalf("trial %d: Halve(%v) did not keep the whole interval: %v", trial, iv, keep)
			}
		} else {
			// A real split: both halves non-empty and near-equal, so
			// repeated halving actually spreads work.
			if keep.IsEmpty() || give.IsEmpty() {
				t.Fatalf("trial %d: Halve(%v) produced an empty half: %v, %v", trial, iv, keep, give)
			}
			diff := new(big.Int).Sub(keep.Len(), give.Len())
			if diff.CmpAbs(big.NewInt(1)) > 0 {
				t.Fatalf("trial %d: Halve(%v) unbalanced: %v vs %v", trial, iv, keep, give)
			}
		}
	}
}

// TestFuzzSplitEvenTiles: the shard tiling operator produces exactly n
// ascending, pairwise-disjoint pieces whose union is the input — the
// multicore engine's initial shard layout is a partition, whatever the
// interval length (shorter-than-n intervals leave trailing empties).
func TestFuzzSplitEvenTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 5000; trial++ {
		iv := randIv(rng)
		n := 1 + rng.Intn(8)
		parts := SplitEven(iv, n)
		if len(parts) != n {
			t.Fatalf("trial %d: SplitEven(%v, %d) returned %d pieces", trial, iv, n, len(parts))
		}
		total := new(big.Int)
		set := NewSet()
		maxLen, minLen := new(big.Int), new(big.Int)
		for i, p := range parts {
			total.Add(total, p.Len())
			if ov := set.Add(p); ov.Sign() != 0 {
				t.Fatalf("trial %d: SplitEven(%v, %d) pieces overlap by %s", trial, iv, n, ov)
			}
			if !iv.ContainsInterval(p) {
				t.Fatalf("trial %d: piece %v outside %v", trial, p, iv)
			}
			if i > 0 && !p.IsEmpty() && !parts[i-1].IsEmpty() && parts[i-1].B().Cmp(p.A()) != 0 {
				t.Fatalf("trial %d: pieces %v, %v not contiguous", trial, parts[i-1], p)
			}
			l := p.Len()
			if i == 0 {
				maxLen.Set(l)
				minLen.Set(l)
			} else {
				if l.Cmp(maxLen) > 0 {
					maxLen.Set(l)
				}
				if l.Cmp(minLen) < 0 {
					minLen.Set(l)
				}
			}
		}
		if total.Cmp(iv.Len()) != 0 {
			t.Fatalf("trial %d: SplitEven(%v, %d) measure %s != %s", trial, iv, n, total, iv.Len())
		}
		if spread := new(big.Int).Sub(maxLen, minLen); spread.Cmp(big.NewInt(1)) > 0 {
			t.Fatalf("trial %d: SplitEven(%v, %d) uneven: min %s max %s", trial, iv, n, minLen, maxLen)
		}
		for i := int64(0); i < fuzzUniverse; i++ {
			x := big.NewInt(i)
			in := false
			for _, p := range parts {
				if p.Contains(x) {
					in = true
					break
				}
			}
			if in != iv.Contains(x) {
				t.Fatalf("trial %d: number %d misplaced by SplitEven(%v, %d)", trial, i, iv, n)
			}
		}
	}
}

// TestFuzzMarshalRoundTrip: the wire form is lossless — checkpoint files
// and RPC messages reconstruct the exact interval.
func TestFuzzMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 2000; trial++ {
		iv := randIv(rng)
		text, err := iv.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Interval
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		// Bounds round-trip exactly (not just up to Equal): the
		// checkpoint format preserves positions of empty intervals.
		if back.A().Cmp(iv.A()) != 0 || back.B().Cmp(iv.B()) != 0 {
			t.Fatalf("trial %d: %v round-tripped to %v", trial, iv, back)
		}
	}
}

// TestFuzzSetAgainstModel: a long random walk of Add/Sub over the Set,
// checked step by step against the brute-force bitset — measures, overlap
// and removal accounting, coverage queries, gaps and normalization.
func TestFuzzSetAgainstModel(t *testing.T) {
	universe := FromInt64(0, fuzzUniverse)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		s := NewSet()
		var m model
		for step := 0; step < 400; step++ {
			iv := randIv(rng)
			if rng.Intn(3) == 0 {
				got, want := s.Sub(iv), m.sub(iv)
				if got.Int64() != want {
					t.Fatalf("seed %d step %d: Sub(%v) removed %s, model %d", seed, step, iv, got, want)
				}
			} else {
				got, want := s.Add(iv), m.add(iv)
				if got.Int64() != want {
					t.Fatalf("seed %d step %d: Add(%v) overlap %s, model %d", seed, step, iv, got, want)
				}
			}
			if s.Total().Int64() != m.total() {
				t.Fatalf("seed %d step %d: total %s, model %d", seed, step, s.Total(), m.total())
			}
			if !m.contains(s) {
				t.Fatalf("seed %d step %d: membership mismatch: %s", seed, step, s)
			}
			// The runs are normalized: disjoint, non-adjacent, sorted.
			runs := s.Intervals()
			for i := 1; i < len(runs); i++ {
				if runs[i-1].B().Cmp(runs[i].A()) >= 0 {
					t.Fatalf("seed %d step %d: runs not normalized: %s", seed, step, s)
				}
			}
			// Gaps ∪ set = universe, and gaps are disjoint from the set.
			gapMeasure := new(big.Int)
			for _, gap := range s.Gaps(universe) {
				gapMeasure.Add(gapMeasure, gap.Len())
				if s.Covers(gap) || s.Add(gap.Clone()).Sign() != 0 {
					t.Fatalf("seed %d step %d: gap %v overlaps the set", seed, step, gap)
				}
				s.Sub(gap) // restore
			}
			wantGaps := fuzzUniverse - m.total()
			if gapMeasure.Int64() != wantGaps {
				t.Fatalf("seed %d step %d: gap measure %s, model %d", seed, step, gapMeasure, wantGaps)
			}
		}
	}
}

// TestFuzzSetDiff: SetDiff is true set difference.
func TestFuzzSetDiff(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		a, b := NewSet(), NewSet()
		var ma, mb model
		for i := 0; i < 12; i++ {
			iv := randIv(rng)
			a.Add(iv)
			ma.add(iv)
			iv = randIv(rng)
			b.Add(iv)
			mb.add(iv)
		}
		d := SetDiff(a, b)
		for i := int64(0); i < fuzzUniverse; i++ {
			want := ma[i] && !mb[i]
			if d.Covers(FromInt64(i, i+1)) != want {
				t.Fatalf("seed %d: diff wrong at %d: %s \\ %s = %s", seed, i, a, b, d)
			}
		}
	}
}
