package interval

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzDeltaCodec mirrors FuzzCoordinatorBoundary's discipline for the wire
// codec: arbitrary interval/reference bound pairs must round-trip bound
// for bound and agree with the text form, and arbitrary decoder input must
// never panic or accept a magnitude beyond the width cap.
func FuzzDeltaCodec(f *testing.F) {
	huge := new(big.Int).Lsh(big.NewInt(1), 214).Bytes()
	f.Add([]byte{}, []byte{}, []byte{}, []byte{}, false, false)
	f.Add([]byte{5}, []byte{9}, []byte{0}, huge, false, false)
	f.Add(huge, huge, huge, huge, true, false)
	f.Add([]byte{1, 2, 3}, []byte{4}, []byte{7}, []byte{1, 0, 0}, false, true)
	f.Fuzz(func(t *testing.T, aB, bB, raB, rbB []byte, negA, negB bool) {
		if len(aB) > 64 || len(bB) > 64 || len(raB) > 64 || len(rbB) > 64 {
			return
		}
		a, b := new(big.Int).SetBytes(aB), new(big.Int).SetBytes(bB)
		if negA {
			a.Neg(a)
		}
		if negB {
			b.Neg(b)
		}
		iv := New(a, b)
		ref := New(new(big.Int).SetBytes(raB), new(big.Int).SetBytes(rbB))

		enc := iv.AppendDelta(nil, ref)
		got, n, err := DecodeDelta(enc, ref, 0)
		if err != nil {
			t.Fatalf("decode own encoding of %s vs %s: %v", iv, ref, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		// Bound-exact agreement with the text form: marshal both through
		// MarshalText and compare the bytes, so the binary codec can never
		// drift from the canonical representation, empties included.
		wantText, _ := iv.MarshalText()
		gotText, _ := got.MarshalText()
		if !bytes.Equal(wantText, gotText) {
			t.Fatalf("codec disagrees with text form: %q vs %q", gotText, wantText)
		}
		// Re-encoding the decoded value is byte-identical (canonical form).
		if re := got.AppendDelta(nil, ref); !bytes.Equal(re, enc) {
			t.Fatalf("re-encoding differs: %x vs %x", re, enc)
		}
	})
}

// FuzzDeltaDecode feeds raw bytes to the decoder: it must never panic, and
// every accepted decode must re-encode within the cap.
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte{0x00, 0x00}, int64(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F}, int64(128))
	f.Add([]byte{0x04, 0xDE, 0xAD, 0x02, 0xBE}, int64(1<<20))
	f.Fuzz(func(t *testing.T, data []byte, maxBits int64) {
		if maxBits < 0 || maxBits > 1<<22 {
			return
		}
		ref := FromInt64(3, 1<<40)
		iv, n, err := DecodeDelta(data, ref, int(maxBits))
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("claimed %d consumed bytes of %d", n, len(data))
		}
		cap := int(maxBits)
		if cap == 0 {
			cap = MaxDeltaBits
		}
		// The accepted deltas must honor the cap the decoder was given.
		var d big.Int
		if d.Sub(iv.A(), ref.A()); d.BitLen() > cap+8 {
			t.Fatalf("decoded delta of %d bits under a %d-bit cap", d.BitLen(), cap)
		}
	})
}
