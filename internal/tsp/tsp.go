// Package tsp implements the symmetric traveling salesman problem as a
// second permutation-tree domain for the grid B&B. The paper's interval
// coding is problem-independent (§3 defines it for any regular tree); this
// package demonstrates that the whole stack — numbering, fold/unfold,
// farmer–worker runtime — runs unchanged on a different problem, and it
// supplies the TSP rows of the paper's Table 3 narrative (the famous
// Sw24978/D15112/Usa13509 resolutions were TSPs).
package tsp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bb"
	"repro/internal/tree"
)

// Instance is a symmetric TSP instance given by a full distance matrix.
type Instance struct {
	// Name identifies the instance.
	Name string
	// N is the number of cities.
	N int
	// Dist is the symmetric distance matrix; Dist[i][i] must be 0.
	Dist [][]int64
}

// NewInstance validates and wraps a distance matrix.
func NewInstance(name string, dist [][]int64) (*Instance, error) {
	n := len(dist)
	if n < 3 {
		return nil, fmt.Errorf("tsp: instance %q needs at least 3 cities, got %d", name, n)
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("tsp: instance %q row %d has %d entries, want %d", name, i, len(row), n)
		}
		if row[i] != 0 {
			return nil, fmt.Errorf("tsp: instance %q has nonzero self-distance at %d", name, i)
		}
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("tsp: negative distance at (%d,%d)", i, j)
			}
			if dist[j][i] != d {
				return nil, fmt.Errorf("tsp: asymmetric distance at (%d,%d)", i, j)
			}
		}
	}
	return &Instance{Name: name, N: n, Dist: dist}, nil
}

// RandomEuclidean generates n cities uniformly in a size×size square and
// rounds pairwise Euclidean distances to integers. Deterministic per seed.
func RandomEuclidean(n int, size int64, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * float64(size)
		ys[i] = rng.Float64() * float64(size)
	}
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d := int64(math.Sqrt(dx*dx+dy*dy) + 0.5)
			dist[i][j], dist[j][i] = d, d
		}
	}
	return &Instance{Name: fmt.Sprintf("euclid-%d-seed%d", n, seed), N: n, Dist: dist}
}

// TourLength evaluates the closed tour 0 → tour[0] → ... → tour[n-2] → 0,
// where tour is a permutation of cities 1..N-1.
func (ins *Instance) TourLength(tour []int) int64 {
	if len(tour) != ins.N-1 {
		panic(fmt.Sprintf("tsp: tour of length %d for %d cities", len(tour), ins.N))
	}
	var total int64
	cur := 0
	for _, c := range tour {
		total += ins.Dist[cur][c]
		cur = c
	}
	return total + ins.Dist[cur][0]
}

// Problem adapts the instance to bb.Problem. City 0 is fixed as the start
// of the tour (eliminating rotational symmetry), so the tree is the
// permutation tree of the other N-1 cities: rank r at depth d visits the
// r-th smallest unvisited city next.
type Problem struct {
	ins *Instance

	depth     int
	remaining []int // unvisited cities (ascending)
	chosen    []int
	ranks     []int
	pathLen   []int64 // cumulative length per depth
	current   []int   // current city per depth (current[0] = 0)
	minEdge   []int64 // cheapest incident edge per city (bound table)
	sumMin    int64   // sum of minEdge over remaining cities
}

// NewProblem builds the B&B adapter.
func NewProblem(ins *Instance) *Problem {
	p := &Problem{
		ins:       ins,
		remaining: make([]int, 0, ins.N-1),
		chosen:    make([]int, ins.N-1),
		ranks:     make([]int, ins.N-1),
		pathLen:   make([]int64, ins.N),
		current:   make([]int, ins.N),
		minEdge:   make([]int64, ins.N),
	}
	for c := 0; c < ins.N; c++ {
		m := int64(1) << 62
		for o := 0; o < ins.N; o++ {
			if o != c && ins.Dist[c][o] < m {
				m = ins.Dist[c][o]
			}
		}
		p.minEdge[c] = m
	}
	p.Reset()
	return p
}

// Instance returns the instance being solved.
func (p *Problem) Instance() *Instance { return p.ins }

// Shape implements bb.Problem.
func (p *Problem) Shape() tree.Shape { return tree.Permutation{N: p.ins.N - 1} }

// Reset implements bb.Problem.
func (p *Problem) Reset() {
	p.depth = 0
	p.remaining = p.remaining[:0]
	p.sumMin = 0
	for c := 1; c < p.ins.N; c++ {
		p.remaining = append(p.remaining, c)
		p.sumMin += p.minEdge[c]
	}
	p.pathLen[0] = 0
	p.current[0] = 0
}

// Descend implements bb.Problem.
func (p *Problem) Descend(rank int) {
	city := p.remaining[rank]
	copy(p.remaining[rank:], p.remaining[rank+1:])
	p.remaining = p.remaining[:len(p.remaining)-1]
	p.chosen[p.depth] = city
	p.ranks[p.depth] = rank
	p.pathLen[p.depth+1] = p.pathLen[p.depth] + p.ins.Dist[p.current[p.depth]][city]
	p.current[p.depth+1] = city
	p.sumMin -= p.minEdge[city]
	p.depth++
}

// Ascend implements bb.Problem.
func (p *Problem) Ascend() {
	p.depth--
	city := p.chosen[p.depth]
	rank := p.ranks[p.depth]
	p.remaining = p.remaining[:len(p.remaining)+1]
	copy(p.remaining[rank+1:], p.remaining[rank:])
	p.remaining[rank] = city
	p.sumMin += p.minEdge[city]
}

// Bound implements bb.Problem: path length so far, plus the cheapest
// possible departure from the current city, plus — for every unvisited city
// — the cheapest edge incident to it. The remaining tour must leave the
// current city once and each unvisited city once, so the bound is
// admissible. The computation is O(1) on incrementally maintained sums, so
// the cutoff offers nothing to skip; the exact bound is always returned.
func (p *Problem) Bound(int64) int64 {
	return p.pathLen[p.depth] + p.minEdge[p.current[p.depth]] + p.sumMin
}

// Cost implements bb.Problem: the closed tour length.
func (p *Problem) Cost() int64 {
	return p.pathLen[p.depth] + p.ins.Dist[p.current[p.depth]][0]
}

// DecodePath implements bb.Decoder.
func (p *Problem) DecodePath(ranks []int) string {
	tour, err := TourOfPath(p.ins.N, ranks)
	if err != nil {
		return fmt.Sprintf("<invalid path: %v>", err)
	}
	return fmt.Sprint(append([]int{0}, tour...))
}

// TourOfPath converts a rank path into the visiting order of cities 1..N-1.
func TourOfPath(n int, ranks []int) ([]int, error) {
	if len(ranks) > n-1 {
		return nil, fmt.Errorf("tsp: path of length %d for %d cities", len(ranks), n)
	}
	remaining := make([]int, 0, n-1)
	for c := 1; c < n; c++ {
		remaining = append(remaining, c)
	}
	tour := make([]int, 0, len(ranks))
	for d, r := range ranks {
		if r < 0 || r >= len(remaining) {
			return nil, fmt.Errorf("tsp: rank %d out of range at depth %d", r, d)
		}
		tour = append(tour, remaining[r])
		remaining = append(remaining[:r], remaining[r+1:]...)
	}
	return tour, nil
}

var _ bb.Problem = (*Problem)(nil)
var _ bb.Decoder = (*Problem)(nil)
