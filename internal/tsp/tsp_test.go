package tsp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bb"
	"repro/internal/core"
)

// bruteBest enumerates all tours.
func bruteBest(ins *Instance) int64 {
	cities := make([]int, 0, ins.N-1)
	for c := 1; c < ins.N; c++ {
		cities = append(cities, c)
	}
	best := int64(1) << 62
	var walk func(k int)
	walk = func(k int) {
		if k == len(cities) {
			if l := ins.TourLength(cities); l < best {
				best = l
			}
			return
		}
		for i := k; i < len(cities); i++ {
			cities[k], cities[i] = cities[i], cities[k]
			walk(k + 1)
			cities[k], cities[i] = cities[i], cities[k]
		}
	}
	walk(0)
	return best
}

// TestSolveMatchesBruteForce on random Euclidean instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ins := RandomEuclidean(8, 100, seed)
		want := bruteBest(ins)
		sol, _ := bb.Solve(NewProblem(ins), bb.Infinity)
		if sol.Cost != want {
			t.Fatalf("seed %d: B&B %d, brute force %d", seed, sol.Cost, want)
		}
		nb := core.NewNumbering(NewProblem(ins).Shape())
		e := core.NewExplorer(NewProblem(ins), nb, nb.RootRange(), bb.Infinity)
		esol, _ := e.Run(1 << 12)
		if esol.Cost != want {
			t.Fatalf("seed %d: explorer %d, brute force %d", seed, esol.Cost, want)
		}
	}
}

// TestTourLengthByHand on a unit square: the optimal cycle is the
// perimeter.
func TestTourLengthByHand(t *testing.T) {
	// Cities at square corners, side 10: distances 10 (sides) and 14
	// (diagonals, rounded).
	dist := [][]int64{
		{0, 10, 14, 10},
		{10, 0, 10, 14},
		{14, 10, 0, 10},
		{10, 14, 10, 0},
	}
	ins, err := NewInstance("square", dist)
	if err != nil {
		t.Fatal(err)
	}
	if got := ins.TourLength([]int{1, 2, 3}); got != 40 {
		t.Fatalf("perimeter tour = %d, want 40", got)
	}
	if got := ins.TourLength([]int{2, 1, 3}); got != 48 {
		t.Fatalf("crossing tour = %d, want 48", got)
	}
	sol, _ := bb.Solve(NewProblem(ins), bb.Infinity)
	if sol.Cost != 40 {
		t.Fatalf("optimum = %d, want the perimeter 40", sol.Cost)
	}
}

// TestBoundAdmissible: the bound never exceeds the best completion
// (property over random partial tours).
func TestBoundAdmissible(t *testing.T) {
	ins := RandomEuclidean(8, 100, 3)
	p := NewProblem(ins)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p.Reset()
		depth := rng.Intn(ins.N - 1)
		for d := 0; d < depth; d++ {
			p.Descend(rng.Intn(ins.N - 1 - d))
		}
		lb := p.Bound(bb.Infinity)
		best := bb.Infinity
		var walk func(d int)
		walk = func(d int) {
			if d == ins.N-1 {
				if c := p.Cost(); c < best {
					best = c
				}
				return
			}
			for r := 0; r < ins.N-1-d; r++ {
				p.Descend(r)
				walk(d + 1)
				p.Ascend()
			}
		}
		walk(depth)
		return lb <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestValidation rejects malformed matrices.
func TestValidation(t *testing.T) {
	if _, err := NewInstance("x", [][]int64{{0, 1}, {1, 0}}); err == nil {
		t.Error("2-city instance accepted")
	}
	if _, err := NewInstance("x", [][]int64{{0, 1, 2}, {1, 0, 3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewInstance("x", [][]int64{{0, 1, 2}, {1, 0, 3}, {2, 9, 0}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := NewInstance("x", [][]int64{{1, 1, 2}, {1, 0, 3}, {2, 3, 0}}); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, err := NewInstance("x", [][]int64{{0, -1, 2}, {-1, 0, 3}, {2, 3, 0}}); err == nil {
		t.Error("negative distance accepted")
	}
}

// TestTourLengthPanicsOnBadTour guards the evaluator.
func TestTourLengthPanicsOnBadTour(t *testing.T) {
	ins := RandomEuclidean(5, 50, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short tour")
		}
	}()
	ins.TourLength([]int{1, 2})
}

// TestTourOfPath decodes rank paths, rejecting malformed ones.
func TestTourOfPath(t *testing.T) {
	tour, err := TourOfPath(5, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("tour = %v, want %v", tour, want)
		}
	}
	if _, err := TourOfPath(5, []int{9}); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := TourOfPath(3, []int{0, 0, 0}); err == nil {
		t.Error("overlong path accepted")
	}
}

// TestDecodePath covers the bb.Decoder implementation.
func TestDecodePath(t *testing.T) {
	ins := RandomEuclidean(5, 50, 2)
	p := NewProblem(ins)
	out := p.DecodePath([]int{3, 0, 0, 0})
	if !strings.Contains(out, "[0 4 1 2 3]") {
		t.Errorf("DecodePath = %q", out)
	}
	if !strings.Contains(p.DecodePath([]int{9}), "invalid") {
		t.Error("bad path not flagged")
	}
}

// TestRandomEuclideanSymmetric: generated instances satisfy the symmetric
// TSP contract by construction.
func TestRandomEuclideanSymmetric(t *testing.T) {
	ins := RandomEuclidean(12, 1000, 9)
	for i := 0; i < ins.N; i++ {
		if ins.Dist[i][i] != 0 {
			t.Fatalf("nonzero diagonal at %d", i)
		}
		for j := 0; j < ins.N; j++ {
			if ins.Dist[i][j] != ins.Dist[j][i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}
