package farmer

import (
	"fmt"
	"math/big"
)

// Test-only hooks. SelectOracleForTest is the RETAINED SEED SELECTION SCAN
// (PR 1–3 behavior, verbatim): the index in index.go must return
// byte-identical decisions, which index_oracle_test.go pins by running both
// over the same live state.

// SelectOracleForTest runs the seed linear scan over the current INTERVALS
// and returns the decision it would take for a requester of the given
// power: the chosen interval id and the donated length that won. It
// mutates nothing (callers sync the pre-request expiry/clean explicitly).
func (f *Farmer) SelectOracleForTest(power int64) (id int64, donated *big.Int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var chosen *tracked
	bestDonated := new(big.Int)
	for _, t := range f.intervals {
		d := f.donatedLength(f.scrA, t.iv, t.holderPower(), power)
		if chosen == nil || d.Cmp(bestDonated) > 0 ||
			(d.Cmp(bestDonated) == 0 && t.id < chosen.id) {
			chosen = t
			bestDonated.Set(d)
		}
	}
	if chosen == nil {
		return 0, nil, false
	}
	return chosen.id, bestDonated, true
}

// SelectIndexForTest answers the same question through the selection index
// and also returns the winning donated length the index computed.
func (f *Farmer) SelectIndexForTest(power int64) (id int64, donated *big.Int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id, ok = f.idx.selectBest(power)
	if !ok {
		return 0, nil, false
	}
	return id, new(big.Int).Set(f.idx.scrBest), true
}

// CleanForTest drains pending empty intervals, mirroring the sweep
// RequestWork performs before selecting.
func (f *Farmer) CleanForTest() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cleanLocked()
}

// TrackedCountForTest returns the INTERVALS cardinality without the
// Size() big.Int copy.
func (f *Farmer) TrackedCountForTest() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.intervals)
}

// CheckIndexInvariantsForTest verifies the selection index is a faithful
// mirror of INTERVALS: every tracked entry indexed exactly once under its
// live (length, holder power) key, every treap ordered by (len, id) with
// the max-heap priority property and correct min-id augmentation, and the
// incremental total equal to the re-summed table.
func (f *Farmer) CheckIndexInvariantsForTest() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[int64]bool)
	total := new(big.Int)
	for hp, root := range f.groupRootsLocked() {
		if root == nil {
			return fmt.Errorf("group %d has a nil root", hp)
		}
		if err := f.checkTreapLocked(root, hp, seen, total); err != nil {
			return err
		}
	}
	if len(seen) != len(f.intervals) {
		return fmt.Errorf("index holds %d entries, INTERVALS holds %d", len(seen), len(f.intervals))
	}
	if total.Cmp(f.idx.total) != 0 {
		return fmt.Errorf("incremental total %s, re-summed table %s", f.idx.total, total)
	}
	var powerSum int64
	for _, t := range f.intervals {
		powerSum += t.holderPower()
	}
	if powerSum != f.idx.powerSum {
		return fmt.Errorf("incremental power sum %d, re-summed table %d", f.idx.powerSum, powerSum)
	}
	return nil
}

// FleetPowerForTest re-exports the incremental fleet power.
func (f *Farmer) FleetPowerForTest() int64 { return f.FleetPower() }

func (f *Farmer) groupRootsLocked() map[int64]*selNode { return f.idx.groups }

func (f *Farmer) checkTreapLocked(n *selNode, hp int64, seen map[int64]bool, total *big.Int) error {
	if n == nil {
		return nil
	}
	t := n.t
	if seen[t.id] {
		return fmt.Errorf("interval %d indexed twice", t.id)
	}
	seen[t.id] = true
	live, ok := f.intervals[t.id]
	if !ok || live != t {
		return fmt.Errorf("index entry %d is not (or not the same as) the INTERVALS entry", t.id)
	}
	if t.idxHP != hp {
		return fmt.Errorf("interval %d filed under power %d but cached %d", t.id, hp, t.idxHP)
	}
	if t.holderPower() != hp {
		return fmt.Errorf("interval %d filed under power %d but its owners sum to %d", t.id, hp, t.holderPower())
	}
	if t.iv.LenInto(new(big.Int)).Cmp(t.idxLen) != 0 {
		return fmt.Errorf("interval %d cached length %s, live length %s", t.id, t.idxLen, t.iv.Len())
	}
	total.Add(total, t.idxLen)
	minID := t.id
	for _, c := range []*selNode{n.left, n.right} {
		if c == nil {
			continue
		}
		if c.pri > n.pri {
			return fmt.Errorf("treap priority inversion at interval %d", t.id)
		}
		if c.minID < minID {
			minID = c.minID
		}
	}
	if n.left != nil && cmpKey(n.left.t.idxLen, n.left.t.id, n) >= 0 {
		return fmt.Errorf("treap order violated left of interval %d", t.id)
	}
	if n.right != nil && cmpKey(n.right.t.idxLen, n.right.t.id, n) <= 0 {
		return fmt.Errorf("treap order violated right of interval %d", t.id)
	}
	if n.minID != minID {
		return fmt.Errorf("stale min-id augmentation at interval %d: cached %d, actual %d", t.id, n.minID, minID)
	}
	if err := f.checkTreapLocked(n.left, hp, seen, total); err != nil {
		return err
	}
	return f.checkTreapLocked(n.right, hp, seen, total)
}
