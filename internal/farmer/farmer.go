// Package farmer implements the coordinator of the paper's farmer–worker
// architecture (§4): it owns INTERVALS (the copies of all not-yet-explored
// intervals) and SOLUTION (the global best), serves the pull-model worker
// protocol of internal/transport, and realizes the four mechanisms the
// paper builds on the interval coding — load balancing (selection +
// partitioning operators, §4.2), fault tolerance (intersection updates and
// two-file checkpoints, §4.1), implicit termination detection (INTERVALS
// empty, §4.3) and solution sharing (§4.4).
package farmer

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// Counters aggregates the farmer-observable statistics of the paper's
// Table 2. Times and exploitation rates are owned by the runtime driving
// the farmer (real clock or discrete-event simulator).
type Counters struct {
	// WorkRequests counts all RequestWork calls, whatever the reply.
	WorkRequests int64
	// WorkAllocations counts RequestWork calls answered with an interval
	// ("Work allocations" row, 129,958 in the paper).
	WorkAllocations int64
	// WorkerCheckpoints counts UpdateInterval calls: every one is a
	// worker-side checkpoint ("Checkpoint operations" row, 4,094,176).
	WorkerCheckpoints int64
	// FarmerCheckpoints counts coordinator file snapshots (every 30
	// minutes in the paper).
	FarmerCheckpoints int64
	// SolutionReports and SolutionImprovements count ReportSolution
	// calls and the ones that improved SOLUTION.
	SolutionReports, SolutionImprovements int64
	// ExploredNodes, PrunedNodes, EvaluatedLeaves accumulate the deltas
	// workers attach to updates ("Explored nodes" row, 6.5e12).
	ExploredNodes, PrunedNodes, EvaluatedLeaves int64
	// Duplications counts threshold-triggered interval duplications, the
	// paper's source of redundant exploration.
	Duplications int64
	// EndgameDuplications counts the subset of Duplications triggered by
	// the endgame rule (WithEndgameThreshold): the tracked total, not the
	// chosen interval, fell under a threshold, so the crumb was shared
	// across subtrees instead of split (DESIGN.md §12).
	EndgameDuplications int64
	// GapCarves counts vouched explored gaps materialized as cuts: an
	// edge-clamped gap trimmed off a copy at fold time, or an interior
	// gap the partitioning operator split at — the requester took the
	// live upper fragment and the explored hole left INTERVALS entirely.
	// Each carve moves the tracked total closer to the truly-unexplored
	// total (DESIGN.md §12).
	GapCarves int64
	// Expiry counts owners dropped by the lease mechanism (worker
	// failures, real or presumed).
	ExpiredOwners int64
	// HandedOffOrphans counts orphaned intervals given to new workers.
	HandedOffOrphans int64
	// RecoveredTails counts tail regions carved back into INTERVALS when
	// a worker re-registered a remainder shorter than the coordinator's
	// copy — which only happens when the copy is stale, i.e. restored
	// from a checkpoint that predates a partition (farmer restart, §4.1).
	RecoveredTails int64
	// RejectedPowers counts work requests refused for a non-positive
	// power claim; IgnoredPowers counts non-positive power claims on
	// interval updates, which are processed but do not refresh the
	// speed estimate (the checkpoint is too valuable to reject);
	// ClampedPowers counts claims capped at MaxPower in either
	// direction. Together they are the coordinator-boundary hardening
	// against workers (or sub-farmers) reporting garbage speeds that
	// would skew the proportional partitioning operator for the whole
	// grid.
	RejectedPowers, IgnoredPowers, ClampedPowers int64
	// RejectedIntervals counts UpdateInterval requests refused at the
	// boundary (out-of-root or oversize intervals, negative progress
	// deltas, oversize worker ids); RejectedReports counts ReportSolution
	// requests refused there (oversize or negative-rank paths, oversize
	// worker ids). Rejected messages mutate nothing beyond these
	// counters.
	RejectedIntervals, RejectedReports int64
	// OversizeMessages counts boundary rejections whose cause was a size
	// bound specifically (interval bit length, path length, worker id
	// length) — the fields gob decodes at attacker-chosen sizes within
	// the transport's whole-message byte budget. It overlaps the two
	// rejection counters above: an oversize update charges both.
	OversizeMessages int64
	// CorruptSnapshots and FallbackLoads mirror the checkpoint store's
	// self-healing counters (checkpoint.Stats): snapshot files found
	// corrupt and quarantined, and loads served from the previous
	// generation. Zero when no store is attached. A nonzero fallback
	// means the last restore cost up to one checkpoint period of rework;
	// a corruption with no fallback left surfaces as a Restore error,
	// never as silent state.
	CorruptSnapshots, FallbackLoads int64
}

// RedundancyStats measures duplicated work in leaf-number units, the
// currency of the interval coding. The paper reports node-level redundancy
// (0.39 %); leaf units are the farmer-observable proxy — see DESIGN.md.
type RedundancyStats struct {
	// ConsumedUnits is the total leaf-number progress reported by all
	// workers.
	ConsumedUnits *big.Int
	// RedundantUnits is the progress reported over regions some other
	// worker had already covered (duplicated intervals, restarts).
	RedundantUnits *big.Int
}

// Rate returns RedundantUnits/ConsumedUnits, or 0 when nothing was
// consumed.
func (r RedundancyStats) Rate() float64 {
	if r.ConsumedUnits == nil || r.ConsumedUnits.Sign() == 0 {
		return 0
	}
	num := new(big.Float).SetInt(r.RedundantUnits)
	den := new(big.Float).SetInt(r.ConsumedUnits)
	v, _ := new(big.Float).Quo(num, den).Float64()
	return v
}

// owner is a worker currently exploring (a copy of) a tracked interval.
type owner struct {
	power    int64
	lastSeen int64    // clock nanoseconds
	lastA    *big.Int // last reported beginning, for redundancy accounting
}

// tracked is one INTERVALS entry with its exploration metadata.
type tracked struct {
	id        int64
	iv        interval.Interval
	owners    map[transport.WorkerID]*owner
	coveredTo *big.Int // high watermark of reported beginnings

	// gapA/gapB, when non-nil, bound the largest fully-explored hole
	// strictly interior to iv that the holder vouched for in a gap-carving
	// fold (DESIGN.md §12). The gap is advisory metadata, not a cut: the
	// holder keeps working both sides, and the hole only materializes when
	// the partitioning operator next splits this entry — at the gap, so
	// the donated part is real work and the explored padding between the
	// fragments leaves INTERVALS entirely.
	gapA, gapB *big.Int

	// content, when non-nil, is the holder's own count of unexplored
	// ground behind this copy (a content-honest fold): a sub-farmer's hull
	// can overstate its fragmented table by orders of magnitude, and the
	// true total keeps size accounting honest. Advisory like the gap; it
	// never moves work by itself.
	content *big.Int

	// slack caches this entry's contribution to f.slack: hull length
	// minus vouched content, floored by the stored gap length (nil when
	// zero). reslackLocked keeps it and the aggregate in sync after every
	// change to iv, gapA/gapB, or content.
	slack *big.Int

	// Selection-index key cache (see index.go): the length and holder
	// power this entry is currently filed under. Only the index touches
	// these; they may lag iv/owners between a mutation and its fix.
	idxLen *big.Int
	idxHP  int64
}

func (t *tracked) holderPower() int64 {
	var p int64
	for _, o := range t.owners {
		p += o.power
	}
	return p
}

// Farmer is the coordinator. It is a monitor: every operation takes the
// single mutex, which is realistic — the paper's farmer is one process and
// its low exploitation rate (1.7 %) is precisely the scalability claim the
// interval coding enables.
type Farmer struct {
	mu sync.Mutex

	// ckptMu serializes Checkpoint callers end to end. The snapshot is
	// taken under mu but written outside it (a slow disk must not block
	// the workers); without this second lock two concurrent checkpoints
	// — the periodic ticker racing a final snapshot — could interleave
	// writes to the same temp file, or rename an older snapshot over a
	// newer one.
	ckptMu sync.Mutex

	intervals map[int64]*tracked
	// idx answers the selection operator in O(groups·log W) and keeps the
	// INTERVALS length total incrementally; lease schedules owner expiry
	// on a deadline min-heap so the request path pays one peek instead of
	// a full owner sweep; empties lists the (rare) intervals born empty by
	// the partitioning operator, drained where the seed re-scanned the
	// whole table. See index.go and DESIGN.md §8.
	idx     *selIndex
	lease   leaseHeap
	empties []int64
	// Interval ids are epoch-qualified: id = epoch<<epochShift | seq.
	// The epoch is bumped on every restore from checkpoint, so an id
	// allocated after the snapshot was taken (and therefore lost in the
	// crash) can never be re-issued to a different interval — a late
	// update from its pre-crash owner is recognizably stale instead of
	// silently intersecting an unrelated interval.
	epoch  int64
	nextID int64

	bestCost int64
	bestPath []int

	threshold  *big.Int
	clock      func() int64
	leaseTTL   int64
	store      *checkpoint.Store
	equalSplit bool

	// hints makes fold replies carry a StealHint (WithStealHints);
	// endgame, when non-nil, is the tracked-total threshold under which
	// the partitioning operator duplicates instead of splitting even
	// above the per-interval threshold (WithEndgameThreshold). Both are
	// tree-root features; flat farmers leave them off.
	hints   bool
	endgame *big.Int

	// front, when frontier tracking is enabled, is a lazy min-heap over
	// the beginnings of all tracked intervals: its valid top is the fold
	// frontier a sub-farmer reports upstream (min A over INTERVALS). Flat
	// farmers never read it, so they never pay for it either — pushes are
	// gated on trackFront.
	front      frontierHeap
	trackFront bool

	// rootLo/rootHi are the root range the boundary pins inbound
	// intervals inside (boundary.go). Nil when the farmer was created
	// over an empty root (a sub-farmer's inner table, which grows by
	// upstream grants): then only structural checks apply.
	rootLo, rootHi *big.Int

	counters   Counters
	redundancy RedundancyStats

	// busyNanos accumulates time spent inside farmer operations, the
	// numerator of the farmer exploitation rate. The runtime measures it
	// with the same clock it measures wall time with.
	busyNanos int64

	// slack is the sum of all per-entry slacks: ground inside INTERVALS
	// hulls that holders vouched is explored, via gap-carving folds and
	// content-honest folds. Honest totals (Size, endgame, steal hints)
	// subtract it; reslackLocked keeps it current.
	slack *big.Int

	// Scratch big.Ints reused across protocol calls (guarded by mu), so
	// the steady-state message loop — one UpdateInterval per worker
	// checkpoint — does not allocate per call.
	scrA, scrLen, scrMul, scrHint, scrGap *big.Int
}

// Option customizes a Farmer.
type Option func(*Farmer)

// WithThreshold sets the minimum length below which the partitioning
// operator duplicates instead of splitting (§4.2: "An interval which has a
// length lower than this threshold is duplicated instead of being
// divided"). The default is 2.
func WithThreshold(t *big.Int) Option {
	return func(f *Farmer) { f.threshold = new(big.Int).Set(t) }
}

// WithClock injects a nanosecond clock; the discrete-event simulator uses a
// virtual one. The default is the wall clock.
func WithClock(clock func() int64) Option {
	return func(f *Farmer) { f.clock = clock }
}

// WithLeaseTTL sets how long a worker may stay silent before it is presumed
// dead and its interval orphaned (§4.1 worker failures). Zero disables
// expiry. The default is one minute.
func WithLeaseTTL(d time.Duration) Option {
	return func(f *Farmer) { f.leaseTTL = int64(d) }
}

// WithCheckpointStore attaches the two-file persistent store of §4.1.
func WithCheckpointStore(store *checkpoint.Store) Option {
	return func(f *Farmer) { f.store = store }
}

// WithEqualSplit makes the partitioning operator ignore the holder's and
// requester's powers and always split in the middle. It exists for the
// ablation study of the paper's proportional rule (§4.2) — on heterogeneous
// pools equal splits leave fast hosts starving while slow hosts sit on huge
// intervals.
func WithEqualSplit(equal bool) Option {
	return func(f *Farmer) { f.equalSplit = equal }
}

// WithFrontierTracking makes the farmer maintain the lazy frontier heap so
// Frontier (the fold a sub-farmer reports upstream) is O(log W) amortized.
// Off by default: a flat farmer never folds, and the heap would otherwise
// grow with every allocation for nothing.
func WithFrontierTracking() Option {
	return func(f *Farmer) { f.trackFront = true }
}

// WithStealHints makes every fold reply carry a transport.StealHint — a
// summary of the work the farmer still tracks beyond the updated copy —
// so a draining sub-farmer can refill before its table runs dry
// (DESIGN.md §12). Off by default: the hint is only meaningful from a
// tree root to its sub-farmers, and old peers ignore it anyway.
func WithStealHints() Option {
	return func(f *Farmer) { f.hints = true }
}

// WithEndgameThreshold arms the endgame duplication rule: when the total
// tracked length falls under t, the partitioning operator duplicates
// actively-held intervals instead of splitting them — the paper's §4.2
// minimum-size rule lifted from one interval to the whole table. At that
// point every split would mint crumbs anyway; sharing the survivors across
// subtrees restores the global mixing a pull-only tree loses at the end of
// a resolution. Off (nil) by default.
func WithEndgameThreshold(t *big.Int) Option {
	return func(f *Farmer) { f.endgame = new(big.Int).Set(t) }
}

// WithInitialBest primes SOLUTION with an externally known solution — the
// paper initializes its Ta056 runs with the best known makespans 3681 and
// 3680 (§5.3). The path may be nil when only the cost is known.
func WithInitialBest(cost int64, path []int) Option {
	return func(f *Farmer) {
		f.bestCost = cost
		if path != nil {
			f.bestPath = append([]int(nil), path...)
		}
	}
}

// New creates a farmer whose INTERVALS is initialized with the root
// interval of the search tree (§4.3: "INTERVALS is initialized by the range
// of the root node").
func New(root interval.Interval, opts ...Option) *Farmer {
	f := &Farmer{
		intervals: make(map[int64]*tracked),
		idx:       newSelIndex(),
		bestCost:  bb.Infinity,
		threshold: big.NewInt(2),
		clock:     func() int64 { return time.Now().UnixNano() },
		leaseTTL:  int64(time.Minute),
		slack:     new(big.Int),
		scrA:      new(big.Int),
		scrLen:    new(big.Int),
		scrMul:    new(big.Int),
		scrHint:   new(big.Int),
		scrGap:    new(big.Int),
	}
	for _, opt := range opts {
		opt(f)
	}
	f.redundancy = RedundancyStats{ConsumedUnits: new(big.Int), RedundantUnits: new(big.Int)}
	if !root.IsEmpty() {
		f.rootLo, f.rootHi = root.A(), root.B()
		f.addTracked(root)
	}
	return f
}

// Restore creates a farmer from the latest checkpoint in store, falling
// back to a fresh one over root if no checkpoint exists (first start).
func Restore(root interval.Interval, store *checkpoint.Store, opts ...Option) (*Farmer, error) {
	opts = append(opts, WithCheckpointStore(store))
	if !store.Exists() {
		return New(root, opts...), nil
	}
	snap, err := store.Load()
	if err != nil {
		return nil, err
	}
	f := New(interval.Interval{}, opts...)
	f.mu.Lock()
	defer f.mu.Unlock()
	if !root.IsEmpty() {
		// The restored table must honour the same boundary as a fresh
		// one: the root range is a property of the instance, not of the
		// snapshot.
		f.rootLo, f.rootHi = root.A(), root.B()
	}
	// A fresh epoch: every id allocated by this incarnation is distinct
	// from every id any previous incarnation ever issued, including the
	// ones issued after the snapshot (which the snapshot cannot know).
	f.epoch = snap.Epoch + 1
	f.nextID = 0
	for _, rec := range snap.Intervals {
		if rec.Interval.IsEmpty() {
			continue
		}
		t := &tracked{
			id:        rec.ID,
			iv:        rec.Interval.Clone(),
			owners:    make(map[transport.WorkerID]*owner),
			coveredTo: rec.Interval.A(),
		}
		f.intervals[rec.ID] = t
		f.idx.insert(t)
		f.pushFrontier(t)
	}
	f.bestCost = snap.BestCost
	f.bestPath = snap.BestPath
	return f, nil
}

// epochShift positions the restore epoch in the high bits of interval ids;
// 2^40 allocations per incarnation and 2^23 restarts are both out of reach.
const epochShift = 40

// addTracked registers a new orphan interval and returns it. Caller holds
// no lock (construction) or the lock (runtime paths handle locking).
func (f *Farmer) addTracked(iv interval.Interval) *tracked {
	return f.addTrackedFor(iv, "", nil)
}

// addTrackedFor registers a new interval already owned by w (the donated
// part of a split), so the index files it under its owner's power class in
// one insert instead of an orphan insert plus a re-key. A nil owner
// registers an orphan.
func (f *Farmer) addTrackedFor(iv interval.Interval, w transport.WorkerID, o *owner) *tracked {
	t := &tracked{
		id:        f.epoch<<epochShift | f.nextID,
		iv:        iv.Clone(),
		owners:    make(map[transport.WorkerID]*owner),
		coveredTo: iv.A(),
	}
	if o != nil {
		t.owners[w] = o
	}
	f.nextID++
	f.intervals[t.id] = t
	f.idx.insert(t)
	f.pushFrontier(t)
	if o != nil {
		f.pushLease(t, w, o)
	}
	if t.iv.IsEmpty() {
		// Only the partitioning operator can mint an empty entry (a
		// zero-power requester's donated part); remember it for the next
		// cleanLocked, which the seed answered with a full-table scan.
		f.empties = append(f.empties, t.id)
	}
	return t
}

// expireLocked drops owners that have been silent longer than the lease.
// Their intervals remain in INTERVALS as orphans: "the last copy of its
// interval is either entirely given to another B&B process, or shared
// between several B&B processes" (§4.1) — both happen through the normal
// allocation path afterwards.
// The sweep runs off the lease heap: the top deadline is the next-expiry
// watermark, so the common case — nobody near expiry — is one comparison
// instead of the seed's O(W·owners) scan per request. Entries are lazy: an
// owner that reported since its entry was pushed is re-pushed at its newer
// deadline; an owner dropped, replaced or retired with its interval is
// detected by pointer identity and discarded.
func (f *Farmer) expireLocked(now int64) {
	if f.leaseTTL <= 0 {
		return
	}
	for len(f.lease) > 0 && f.lease[0].deadline < now {
		e := f.lease.pop()
		t, ok := f.intervals[e.t.id]
		if !ok || t != e.t {
			continue // interval retired: stale entry
		}
		o, ok := t.owners[e.w]
		if !ok || o != e.o {
			continue // owner dropped or replaced: stale entry
		}
		if now-o.lastSeen > f.leaseTTL {
			delete(t.owners, e.w)
			f.counters.ExpiredOwners++
			f.idx.fix(t) // the holder-power class changed
		} else {
			f.pushLease(t, e.w, o) // reported since: re-arm
		}
	}
}

// cleanLocked removes empty intervals (§4.3: "Any empty interval of
// INTERVALS is automatically removed"). Every runtime mutation point
// retires an interval the moment it empties; the only entries that reach
// this sweep are the ones born empty at the partitioning operator, listed
// in f.empties — so the seed's full-table scan is now O(#empties), almost
// always zero.
func (f *Farmer) cleanLocked() {
	if len(f.empties) == 0 {
		return
	}
	for _, id := range f.empties {
		if t, ok := f.intervals[id]; ok && t.iv.IsEmpty() {
			f.idx.remove(t)
			delete(f.intervals, id)
		}
	}
	f.empties = f.empties[:0]
}

// MaxPower caps the exploration speed a coordinator believes (nodes per
// second, in whatever fixed-point scale the deployment uses). The paper's
// fastest hosts explored a few million nodes per second; 2^40 leaves three
// orders of magnitude of headroom for fixed-point scaling and fleet-power
// sums while keeping a hostile claim from monopolizing the partitioning
// operator (a 2^63 power would make every split donate essentially the
// whole interval to the liar).
const MaxPower = int64(1) << 40

// clampPower caps a positive power claim at MaxPower, counting the clamp.
// Callers reject or ignore non-positive claims before calling.
func (f *Farmer) clampPower(p int64) int64 {
	if p > MaxPower {
		f.counters.ClampedPowers++
		return MaxPower
	}
	return p
}

// RequestWork implements transport.Coordinator: the selection and
// partitioning operators of §4.2.
func (f *Farmer) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock()
	defer f.accountBusy(now)
	f.counters.WorkRequests++
	if reason := f.vetWorkerLocked(req.Worker); reason != "" {
		return transport.WorkReply{}, fmt.Errorf("farmer: rejected request from %q: %s", truncID(req.Worker), reason)
	}
	f.expireLocked(now)
	f.cleanLocked()
	if len(f.intervals) == 0 {
		return transport.WorkReply{Status: transport.WorkFinished, BestCost: f.bestCost}, nil
	}
	if req.Power <= 0 {
		// The partitioning operator splits proportionally to powers; a
		// zero or negative claim is either a broken worker or an attempt
		// to game the split. Reject at the boundary (§4.2 hardening).
		f.counters.RejectedPowers++
		return transport.WorkReply{}, fmt.Errorf("farmer: non-positive power %d from %q", req.Power, req.Worker)
	}
	req.Power = f.clampPower(req.Power)

	// Selection operator: pick the interval producing the greatest
	// donated part [C,B) given the requester's power (§4.2: "The
	// selection operator does not choose the greatest interval [A,B[ of
	// INTERVALS, but the one which produces the greatest possible
	// interval [C,B["). The index answers in O(classes·log W) with
	// decisions byte-identical to the seed linear scan (index.go; the
	// oracle test pins the equivalence).
	chosenID, ok := f.idx.selectBest(req.Power)
	if !ok {
		return transport.WorkReply{}, fmt.Errorf("farmer: selection index empty with %d tracked intervals", len(f.intervals))
	}
	chosen := f.intervals[chosenID]

	reply := transport.WorkReply{Status: transport.WorkAssigned, BestCost: f.bestCost}
	if chosen.owners[req.Worker] != nil {
		// The requester already co-owns the chosen copy (an earlier
		// duplication, or its own abandoned interval after a lease
		// blip). Splitting or gap-carving it would mint a NEW id over
		// ground the requester's local table already covers — one tier
		// down that surfaces as overlapping INTERVALS entries and the
		// same fleet exploring the same ground twice. Hand the same
		// copy back instead: the requester recognizes the id and
		// adopts the authoritative bounds without injecting (§4.2: one
		// copy per duplicated interval).
		o := &owner{power: req.Power, lastSeen: now, lastA: chosen.iv.A()}
		chosen.owners[req.Worker] = o
		f.idx.fix(chosen) // the holder-power class may have changed
		f.pushLease(chosen, req.Worker, o)
		f.counters.Duplications++
		f.counters.WorkAllocations++
		reply.IntervalID = chosen.id
		reply.Interval = chosen.iv.Clone()
		reply.Duplicated = true
		return reply, nil
	}
	if nt, ok := f.splitAtGapLocked(chosen, req.Worker, req.Power, now); ok {
		reply.IntervalID = nt.id
		reply.Interval = nt.iv.Clone()
		return reply, nil
	}
	holderPower := chosen.holderPower()
	belowThreshold := chosen.iv.LenInto(f.scrLen).Cmp(f.threshold) < 0
	// Endgame rule (WithEndgameThreshold): once the TOTAL tracked length
	// is crumb-scale, splitting only mints smaller crumbs — share held
	// intervals across requesters instead (DESIGN.md §12). Orphans
	// (holderPower == 0) still hand off whole below.
	endgame := !belowThreshold && f.endgame != nil &&
		f.scrMul.Sub(f.idx.total, f.slack).Cmp(f.endgame) < 0
	if (belowThreshold || endgame) && holderPower > 0 {
		// Partitioning operator, duplication rule: the interval is
		// below the threshold and actively explored — share it rather
		// than splitting crumbs. "The coordinator keeps only one copy
		// of a duplicated interval, even if it is assigned to several
		// processes" (§4.2).
		o := &owner{power: req.Power, lastSeen: now, lastA: chosen.iv.A()}
		chosen.owners[req.Worker] = o
		f.idx.fix(chosen) // the holder-power class changed
		f.pushLease(chosen, req.Worker, o)
		f.counters.Duplications++
		if endgame {
			f.counters.EndgameDuplications++
		}
		f.counters.WorkAllocations++
		reply.IntervalID = chosen.id
		reply.Interval = chosen.iv.Clone()
		reply.Duplicated = true
		return reply, nil
	}

	splitHolderPower, splitReqPower := holderPower, req.Power
	if f.equalSplit && holderPower > 0 && req.Power > 0 {
		splitHolderPower, splitReqPower = 1, 1
	}
	holder, donated := chosen.iv.SplitProportional(splitHolderPower, splitReqPower)
	if holderPower == 0 {
		f.counters.HandedOffOrphans++
	}
	if holder.IsEmpty() {
		// Whole interval handed over (orphans: the virtual null-power
		// process rule). Retire the old copy; the new owner gets a
		// fresh id so any late update from a presumed-dead previous
		// owner is recognizably stale.
		f.forgetSlackLocked(chosen)
		f.idx.remove(chosen)
		delete(f.intervals, chosen.id)
	} else {
		chosen.iv = holder
		chosen.content = nil // the split invalidates the vouched count
		f.reslackLocked(chosen)
		f.idx.fix(chosen) // the kept part is shorter: re-key
		// The holder keeps exploring [A,C) and learns of the shrink
		// at its next update (§4.2: "After a certain time, the holder
		// process is also informed to limit its exploration").
	}
	nt := f.addTrackedFor(donated, req.Worker,
		&owner{power: req.Power, lastSeen: now, lastA: donated.A()})
	f.counters.WorkAllocations++
	reply.IntervalID = nt.id
	reply.Interval = donated.Clone()
	return reply, nil
}

// splitAtGapLocked is the partitioning operator's gap-aware cut
// (DESIGN.md §12): when the chosen entry carries a vouched explored gap,
// split THERE instead of proportionally. The holder keeps the fragment
// below the gap, the requester gets the fragment above it, and the
// explored padding in between leaves INTERVALS entirely — the cut lands
// on ground nobody needs to re-explore, where a proportional midpoint
// would land inside the padding and grant mostly-explored work. This
// also pre-empts the duplication rule: sharing a gapped hull would make
// the second worker re-walk the vouched-explored hole, while the gap
// split hands it live work. Returns ok=false (after dropping any
// invalid gap) when the entry carries no usable gap.
func (f *Farmer) splitAtGapLocked(t *tracked, w transport.WorkerID, power int64, now int64) (*tracked, bool) {
	if t.gapA == nil {
		return nil, false
	}
	if t.iv.CmpA(t.gapA) >= 0 || t.iv.CmpB(t.gapB) <= 0 {
		// The entry shrank since the gap was stored (defensive — every
		// shrink revalidates); a gap no longer strictly interior cannot
		// anchor a two-sided cut.
		f.clearGapLocked(t)
		return nil, false
	}
	donated := interval.New(t.gapB, t.iv.B())
	t.iv.IntersectInPlace(interval.New(t.iv.A(), t.gapA))
	if t.coveredTo.Cmp(t.gapA) > 0 {
		t.coveredTo.Set(t.gapA)
	}
	// The holder's vouched content spanned the whole hull; neither
	// fragment knows its share, so the kept copy falls back to hull
	// semantics until the next fold re-reports.
	t.content = nil
	f.clearGapLocked(t)
	f.idx.fix(t)
	nt := f.addTrackedFor(donated, w,
		&owner{power: power, lastSeen: now, lastA: donated.A()})
	f.counters.GapCarves++
	f.counters.WorkAllocations++
	return nt, true
}

// donatedLength computes len([C,B)) for a hypothetical split of iv between
// a holder of power hp and a requester of power rp, into dst. Only the
// farmer's own scratch big.Ints are used; nothing is allocated.
func (f *Farmer) donatedLength(dst *big.Int, iv interval.Interval, hp, rp int64) *big.Int {
	l := iv.LenInto(f.scrLen)
	if hp <= 0 {
		return dst.Set(l)
	}
	if rp <= 0 {
		return dst.SetInt64(0)
	}
	dst.Mul(l, f.scrMul.SetInt64(rp))
	dst.Quo(dst, f.scrMul.SetInt64(hp+rp))
	return dst
}

// UpdateInterval implements transport.Coordinator: the intersection
// operator (eq. 14) plus progress and redundancy accounting.
func (f *Farmer) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock()
	defer f.accountBusy(now)
	// Boundary validation runs before anything — counter accumulation
	// included — so a rejected update leaves no trace beyond the
	// rejection counters (boundary.go).
	if reason := f.vetUpdateLocked(req); reason != "" {
		f.counters.RejectedIntervals++
		return transport.UpdateReply{}, fmt.Errorf("farmer: rejected update from %q: %s", truncID(req.Worker), reason)
	}
	f.counters.WorkerCheckpoints++
	f.counters.ExploredNodes += req.ExploredDelta
	f.counters.PrunedNodes += req.PrunedDelta
	f.counters.EvaluatedLeaves += req.LeavesDelta

	t, ok := f.intervals[req.IntervalID]
	if !ok {
		// Completed or reassigned after presumed death: the worker
		// should drop its copy and request fresh work.
		f.cleanLocked()
		return transport.UpdateReply{
			Known:    false,
			Finished: len(f.intervals) == 0,
			BestCost: f.bestCost,
			Hint:     f.stealHintLocked(req.IntervalID),
		}, nil
	}
	// Boundary hardening: a non-positive power claim never overwrites the
	// last credible estimate (re-admissions fall back to 1), and absurd
	// claims are clamped at MaxPower — same rules as RequestWork, except
	// an update is never rejected outright: losing the checkpoint would
	// hurt the honest majority more than the one liar.
	power := req.Power
	if power <= 0 {
		f.counters.IgnoredPowers++
		power = 0
	} else {
		power = f.clampPower(power)
	}
	o, isOwner := t.owners[req.Worker]
	if !isOwner {
		// A lease-expired owner resurfaced while its interval still
		// exists (it was shared, not handed off). Re-admit it: it is
		// evidently alive, and the paper explicitly allows an
		// interval to be "shared between several B&B processes".
		// The holder-power change is picked up by the single index fix
		// at the end of the update.
		admitted := power
		if admitted <= 0 {
			admitted = 1
		}
		o = &owner{power: admitted, lastSeen: now, lastA: t.iv.A()}
		t.owners[req.Worker] = o
		f.pushLease(t, req.Worker, o)
	}
	o.lastSeen = now
	if power > 0 {
		o.power = power
	}

	// Redundancy accounting in leaf units: progress over a region some
	// other owner had already reported is redundant. All arithmetic runs
	// on the farmer's scratch and the tracked entries' own big.Ints: a
	// checkpoint round allocates nothing here.
	reportedA := req.Remaining.AInto(f.scrA)
	if reportedA.Cmp(o.lastA) > 0 {
		consumed := f.scrLen.Sub(reportedA, o.lastA)
		f.redundancy.ConsumedUnits.Add(f.redundancy.ConsumedUnits, consumed)
		if o.lastA.Cmp(t.coveredTo) < 0 {
			overlapEnd := reportedA
			if t.coveredTo.Cmp(overlapEnd) < 0 {
				overlapEnd = t.coveredTo
			}
			redundant := f.scrLen.Sub(overlapEnd, o.lastA)
			f.redundancy.RedundantUnits.Add(f.redundancy.RedundantUnits, redundant)
		}
		if reportedA.Cmp(t.coveredTo) > 0 {
			t.coveredTo.Set(reportedA)
		}
		o.lastA.Set(reportedA)
	}

	// Stale-copy reconciliation (farmer restart, §4.1). In normal
	// operation a worker's remaining end never falls short of the
	// coordinator's copy: the worker's end bound only ever shrinks
	// through replies this coordinator issued. A shorter end therefore
	// means the copy is stale — restored from a snapshot taken before a
	// partition whose donated tail lived on only in assignments the crash
	// orphaned. Blindly intersecting would discard that tail as if it had
	// been explored; instead it is carved back into INTERVALS as a fresh
	// orphan so the allocation path re-issues it.
	remB := req.Remaining.BInto(f.scrMul)
	if t.iv.CmpB(remB) > 0 {
		if t.iv.CmpA(remB) < 0 {
			f.addTracked(interval.New(remB, t.iv.B()))
			f.counters.RecoveredTails++
		} else {
			// The worker's whole view lies before the copy: it brings
			// no progress over this copy, and intersecting would
			// wrongly empty it. The worker cannot adopt the copy either
			// — its explorer only ever narrows (eq. 14), so a reply
			// carrying a disjoint interval would make it finish and
			// drop the work while this farmer kept it as a leased
			// owner, stalling recovery for a full lease TTL. Drop the
			// ownership and send the worker back for fresh work.
			delete(t.owners, req.Worker)
			f.idx.fix(t) // owner set (and maybe power) changed above
			f.cleanLocked()
			return transport.UpdateReply{
				Known:    false,
				BestCost: f.bestCost,
				Finished: len(f.intervals) == 0,
				Hint:     f.stealHintLocked(req.IntervalID),
			}, nil
		}
	}

	// Intersection operator (eq. 14): reconcile the worker's view with
	// the coordinator's copy in place. Only the reply's interval is a
	// fresh copy — it escapes to the worker.
	t.iv.IntersectInPlace(req.Remaining)
	if t.iv.IsEmpty() {
		f.forgetSlackLocked(t)
	} else {
		if req.Content != nil && req.Content.Sign() >= 0 {
			// Content-honest fold: adopt the holder's own count of
			// unexplored ground behind this hull (ownership transfers;
			// decoders and sub-farmers hand over a fresh value).
			t.content = req.Content
		}
		if req.HasGap {
			f.noteGapLocked(t, req.Gap)
		} else {
			f.revalidateGapLocked(t)
		}
		f.reslackLocked(t)
	}
	reply := transport.UpdateReply{Known: true, BestCost: f.bestCost, Interval: t.iv.Clone()}
	if t.iv.IsEmpty() {
		f.idx.remove(t)
		delete(f.intervals, t.id)
	} else {
		// One re-key covers everything this update changed: the
		// intersected length, a re-admitted owner, a power update.
		f.idx.fix(t)
	}
	f.cleanLocked()
	reply.Finished = len(f.intervals) == 0
	reply.Hint = f.stealHintLocked(req.IntervalID)
	return reply, nil
}

// noteGapLocked honours a fold's gap declaration (DESIGN.md §12): the
// reporter vouches that gap holds no unexplored ground. A sub-farmer's
// [C,B) hull fold overstates its fragmented table, and without gap
// knowledge every steal from that hull re-issues mostly-explored padding
// as if it were fresh work — the engine of the tree's redundant-
// exploration tail. Crucially the gap is NOT carved out here: both sides
// of the hole hold the reporter's live fragments, so an eager carve would
// evict live work on every fold and churn it around the tree. Instead the
// gap is remembered on the entry and materializes only when the
// partitioning operator next cuts it (splitAtGapLocked) — exactly when
// work was going to move anyway. Advisory and fail-safe: a dishonest gap
// costs exactly what a dishonest fold frontier already could, because the
// protocol trusts reporters about what they explored at every tier.
func (f *Farmer) noteGapLocked(t *tracked, gap interval.Interval) {
	if gap.IsEmpty() {
		return
	}
	f.applyGapLocked(t, gap.A(), gap.B())
}

// revalidateGapLocked re-clamps a stored gap after the entry's interval
// changed; a no-op for the (overwhelmingly common) gapless entry.
func (f *Farmer) revalidateGapLocked(t *tracked) {
	if t.gapA == nil {
		return
	}
	ga, gb := t.gapA, t.gapB
	t.gapA, t.gapB = nil, nil
	f.applyGapLocked(t, ga, gb)
}

// applyGapLocked reconciles a vouched explored gap with the entry's
// current bounds, taking ownership of ga/gb. A gap clamped to an edge of
// the copy is free precision — the explored prefix or suffix is trimmed
// off on the spot, no work moves, and the shrink reaches the holder
// through the ordinary reply verdict. Only a strictly interior remainder
// is stored for the partitioning operator.
func (f *Farmer) applyGapLocked(t *tracked, ga, gb *big.Int) {
	if t.iv.CmpA(ga) > 0 {
		ga.Set(t.iv.AInto(f.scrGap))
	}
	if t.iv.CmpB(gb) < 0 {
		gb.Set(t.iv.BInto(f.scrGap))
	}
	if ga.Cmp(gb) >= 0 {
		f.clearGapLocked(t)
		return
	}
	aEdge := t.iv.CmpA(ga) == 0
	bEdge := t.iv.CmpB(gb) == 0
	switch {
	case aEdge && bEdge:
		// The whole copy vouched explored: emptying it is the reply
		// path's decision, not this accounting helper's. Drop the gap and
		// leave the copy alone (defensive — no reporter vouches its own
		// whole hull, the gap floor forbids it).
		f.clearGapLocked(t)
	case aEdge:
		// Explored prefix: trim it off now.
		t.iv.IntersectInPlace(interval.New(gb, t.iv.B()))
		f.clearGapLocked(t)
		f.counters.GapCarves++
	case bEdge:
		// Explored suffix: trim, keeping the redundancy watermark inside
		// the shrunk bounds so overlap accounting stays conservative.
		t.iv.IntersectInPlace(interval.New(t.iv.A(), ga))
		if t.coveredTo.Cmp(ga) > 0 {
			t.coveredTo.Set(ga)
		}
		f.clearGapLocked(t)
		f.counters.GapCarves++
	default:
		f.setGapLocked(t, ga, gb)
	}
}

func (f *Farmer) setGapLocked(t *tracked, ga, gb *big.Int) {
	t.gapA, t.gapB = ga, gb
	f.reslackLocked(t)
}

func (f *Farmer) clearGapLocked(t *tracked) {
	if t.gapA == nil && t.slack == nil {
		return
	}
	t.gapA, t.gapB = nil, nil
	f.reslackLocked(t)
}

// reslackLocked recomputes the entry's slack — hull length minus vouched
// content, floored by the stored gap length, clamped to [0, hull] — and
// folds the change into the farmer-wide aggregate. Call it after any
// change to t.iv, t.gapA/gapB, or t.content; it is idempotent.
func (f *Farmer) reslackLocked(t *tracked) {
	if t.slack != nil {
		f.slack.Sub(f.slack, t.slack)
	}
	if t.content == nil && t.gapA == nil {
		t.slack = nil
		return
	}
	if t.slack == nil {
		t.slack = new(big.Int)
	}
	hull := t.iv.LenInto(f.scrGap)
	if t.content != nil {
		t.slack.Sub(hull, t.content)
		if t.slack.Sign() < 0 {
			t.slack.SetInt64(0)
		}
	} else {
		t.slack.SetInt64(0)
	}
	if t.gapA != nil {
		// The gap is positional evidence the content count must cover.
		if g := new(big.Int).Sub(t.gapB, t.gapA); t.slack.Cmp(g) < 0 {
			t.slack.Set(g)
		}
	}
	if t.slack.Cmp(hull) > 0 {
		t.slack.Set(hull)
	}
	f.slack.Add(f.slack, t.slack)
}

// forgetSlackLocked removes the entry's slack contribution and drops its
// advisory metadata. Call it before retiring the entry from INTERVALS.
func (f *Farmer) forgetSlackLocked(t *tracked) {
	if t.slack != nil {
		f.slack.Sub(f.slack, t.slack)
		t.slack = nil
	}
	t.gapA, t.gapB = nil, nil
	t.content = nil
}

// LargestGapWithin reports the largest hole strictly inside iv covered by
// no tracked interval — fully-explored ground a [C,B) hull fold would
// misreport as remaining. A sub-farmer calls it on its embedded farmer at
// fold time to build the gap-carving declaration. ok is false when fewer
// than two tracked fragments intersect iv: then no interior hole exists
// and the hull is already exact.
func (f *Farmer) LargestGapWithin(iv interval.Interval) (a, b *big.Int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	type span struct{ a, b *big.Int }
	spans := make([]span, 0, len(f.intervals))
	for _, t := range f.intervals {
		if t.iv.IsEmpty() || !t.iv.Overlaps(iv) {
			continue
		}
		sa, sb := t.iv.A(), t.iv.B()
		if iv.CmpA(sa) > 0 {
			sa = iv.A()
		}
		if iv.CmpB(sb) < 0 {
			sb = iv.B()
		}
		spans = append(spans, span{a: sa, b: sb})
	}
	if len(spans) < 2 {
		return nil, nil, false
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].a.Cmp(spans[j].a) < 0 })
	cover := new(big.Int).Set(spans[0].b)
	bestLen := new(big.Int)
	scratch := new(big.Int)
	for _, s := range spans[1:] {
		if s.a.Cmp(cover) > 0 {
			scratch.Sub(s.a, cover)
			if scratch.Cmp(bestLen) > 0 {
				a, b = new(big.Int).Set(cover), s.a
				bestLen.Set(scratch)
			}
		}
		if s.b.Cmp(cover) > 0 {
			cover.Set(s.b)
		}
	}
	return a, b, a != nil
}

// ContentWithin sums the lengths of all tracked intervals inside iv — the
// true unexplored content behind a [C,B) hull fold whose fragmented table
// iv hulls over. A sub-farmer calls it on its embedded farmer at fold time
// to build the content-honest declaration. O(cardinality).
func (f *Farmer) ContentWithin(iv interval.Interval) *big.Int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := new(big.Int)
	scratch := new(big.Int)
	for _, t := range f.intervals {
		if t.iv.IsEmpty() || !t.iv.Overlaps(iv) {
			continue
		}
		clipped := t.iv.Intersect(iv)
		total.Add(total, clipped.LenInto(scratch))
	}
	return total
}

// stealHintLocked summarizes what the farmer tracks beyond the copy with
// id excludeID: how many other entries, and the bit length of their total
// remaining length. Nil unless WithStealHints armed it. The exclusion
// keeps the hint honest for the requester — its own copy is not stealable
// work — and costs one subtraction on scratch.
func (f *Farmer) stealHintLocked(excludeID int64) *transport.StealHint {
	if !f.hints {
		return nil
	}
	others := int64(len(f.intervals))
	rem := f.scrHint.Sub(f.idx.total, f.slack)
	if t, ok := f.intervals[excludeID]; ok {
		others--
		rem.Sub(rem, t.iv.LenInto(f.scrLen))
		if t.slack != nil {
			// The aggregate already discounted this entry's slack; restore
			// it so the exclusion does not subtract it twice.
			rem.Add(rem, t.slack)
		}
	}
	if others < 0 {
		others = 0
	}
	return &transport.StealHint{Others: others, RichestBits: int64(rem.BitLen())}
}

// ReportSolution implements transport.Coordinator (§4.4 rule 2).
func (f *Farmer) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock()
	defer f.accountBusy(now)
	if reason := f.vetReportLocked(req); reason != "" {
		f.counters.RejectedReports++
		return transport.SolutionAck{}, fmt.Errorf("farmer: rejected report from %q: %s", truncID(req.Worker), reason)
	}
	f.counters.SolutionReports++
	ack := transport.SolutionAck{}
	if req.Cost < f.bestCost {
		f.bestCost = req.Cost
		f.bestPath = append([]int(nil), req.Path...)
		f.counters.SolutionImprovements++
		ack.Accepted = true
	}
	ack.BestCost = f.bestCost
	return ack, nil
}

// accountBusy charges the elapsed time since start to the farmer's busy
// counter. Under a virtual clock the charge is zero here and the simulator
// accounts message costs itself.
func (f *Farmer) accountBusy(start int64) {
	f.busyNanos += f.clock() - start
}

// BusyNanos returns the cumulative time spent serving requests.
func (f *Farmer) BusyNanos() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.busyNanos
}

// AddBusyNanos lets a simulator charge virtual per-message costs.
func (f *Farmer) AddBusyNanos(n int64) {
	f.mu.Lock()
	f.busyNanos += n
	f.mu.Unlock()
}

// Done reports whether INTERVALS is empty — the paper's implicit
// termination criterion (§4.3).
func (f *Farmer) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cleanLocked()
	return len(f.intervals) == 0
}

// Best returns the current SOLUTION.
func (f *Farmer) Best() bb.Solution {
	f.mu.Lock()
	defer f.mu.Unlock()
	return bb.Solution{Cost: f.bestCost, Path: append([]int(nil), f.bestPath...)}
}

// BestCost returns SOLUTION's cost without copying the path — the
// accessor for reply hot paths that only ever forward the bound.
func (f *Farmer) BestCost() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bestCost
}

// Counters returns a snapshot of the protocol counters.
func (f *Farmer) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.counters
	if f.store != nil {
		st := f.store.Stats()
		c.CorruptSnapshots = st.CorruptSnapshots
		c.FallbackLoads = st.FallbackLoads
	}
	return c
}

// Redundancy returns a snapshot of the redundancy accounting.
func (f *Farmer) Redundancy() RedundancyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return RedundancyStats{
		ConsumedUnits:  new(big.Int).Set(f.redundancy.ConsumedUnits),
		RedundantUnits: new(big.Int).Set(f.redundancy.RedundantUnits),
	}
}

// IntervalsSnapshot returns the current INTERVALS content, ordered by id —
// the Figure 5 view of the system.
func (f *Farmer) IntervalsSnapshot() []checkpoint.IntervalRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]checkpoint.IntervalRecord, 0, len(f.intervals))
	for _, t := range f.intervals {
		out = append(out, checkpoint.IntervalRecord{ID: t.id, Interval: t.iv.Clone()})
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []checkpoint.IntervalRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}

// Size returns the cardinality of INTERVALS and the total remaining length
// (§4.3: cardinality ≈ number of B&B processes; size = not-yet-explored
// solutions, monotonically decreasing). The total is maintained
// incrementally by the selection index — no full-table big.Int
// re-summation however large the grid.
func (f *Farmer) Size() (cardinality int, totalLen *big.Int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.intervals), new(big.Int).Sub(f.idx.total, f.slack)
}

// FleetPower returns the total power of all live owners across INTERVALS
// — the compute currently attached to this resolution. Maintained
// incrementally by the selection index at its three mutation points, so
// the multi-tenant fair-share rule (internal/jobs) can read every job's
// share per request without a table sweep. A worker owning several copies
// counts once per copy; in the one-interval-per-worker steady state the
// sum is exactly the fleet's power.
func (f *Farmer) FleetPower() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.idx.powerSum
}

// Checkpoint persists INTERVALS and SOLUTION through the attached store
// (§4.1). It errors if no store is attached. Concurrent callers are
// serialized in snapshot order; workers are only blocked for the in-memory
// snapshot, never for the file write.
func (f *Farmer) Checkpoint() error {
	f.ckptMu.Lock()
	defer f.ckptMu.Unlock()
	f.mu.Lock()
	if f.store == nil {
		f.mu.Unlock()
		return fmt.Errorf("farmer: no checkpoint store attached")
	}
	snap := checkpoint.Snapshot{
		Epoch:    f.epoch,
		NextID:   f.nextID,
		BestCost: f.bestCost,
		// The incremental total (lingering empty entries contribute
		// zero, matching the records below which skip them); Load
		// cross-checks it against the record sum.
		TotalLen: new(big.Int).Set(f.idx.total),
	}
	if f.bestPath != nil {
		snap.BestPath = append([]int(nil), f.bestPath...)
	}
	for _, t := range f.intervals {
		if t.iv.IsEmpty() {
			continue
		}
		snap.Intervals = append(snap.Intervals, checkpoint.IntervalRecord{ID: t.id, Interval: t.iv.Clone()})
	}
	store := f.store
	f.counters.FarmerCheckpoints++
	f.mu.Unlock()
	// The sort and the file write happen outside the lock: snap is
	// private by now, and a slow disk (or a big table) must not block the
	// workers — the farmer's low exploitation rate is the scalability
	// claim.
	sortRecords(snap.Intervals)
	return store.Save(snap)
}

// ExpireNow forces a lease sweep with the current clock; tests and the
// simulator use it to make failure handling deterministic.
func (f *Farmer) ExpireNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.expireLocked(f.clock())
}

// Inject registers a fresh orphan interval at runtime: the refill path of a
// sub-farmer seeding a sub-range the root just donated into its own
// INTERVALS. Empty intervals are ignored. The injected interval gets a
// fresh epoch-qualified id and is handed out through the normal allocation
// path (the virtual null-power process rule: first requester takes it all
// or splits it).
func (f *Farmer) Inject(iv interval.Interval) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if iv.IsEmpty() {
		return
	}
	f.addTracked(iv)
}

// RestrictTo intersects every tracked interval with iv (eq. 14 applied
// table-wide), retiring entries that empty. It is the downward half of the
// hierarchical protocol: when the tier above shrinks a sub-farmer's
// authoritative copy — a tail donated to another subtree, or ground below
// the reported frontier — the sub-farmer restricts its whole table to the
// new bounds. Everything removed here is accounted for elsewhere: above
// the cut it is tracked by the parent under another subtree's copy, below
// it it was already reported consumed. Workers holding removed or narrowed
// copies learn at their next checkpoint, exactly like the paper's lazy
// "after a certain time, the holder process is also informed" rule.
func (f *Farmer) RestrictTo(iv interval.Interval) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, t := range f.intervals {
		t.iv.IntersectInPlace(iv)
		if t.iv.IsEmpty() {
			f.forgetSlackLocked(t)
			f.idx.remove(t)
			delete(f.intervals, id)
		} else {
			f.revalidateGapLocked(t)
			f.reslackLocked(t)
			f.idx.fix(t)
		}
	}
}

// RestrictToUnion intersects every tracked interval with the union of ivs,
// retiring entries that empty — RestrictTo generalized to a sub-farmer
// holding several upstream bindings at once (DESIGN.md §12). The bindings
// a caller passes are pairwise disjoint (they are distinct copies of the
// tier above's partition), and every local interval descends from exactly
// one of them, so the union intersection resolves to at most one member
// per entry.
func (f *Farmer) RestrictToUnion(ivs []interval.Interval) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, t := range f.intervals {
		hit := false
		for _, iv := range ivs {
			if t.iv.Overlaps(iv) {
				t.iv.IntersectInPlace(iv)
				hit = true
				break
			}
		}
		if !hit || t.iv.IsEmpty() {
			f.forgetSlackLocked(t)
			f.idx.remove(t)
			delete(f.intervals, id)
		} else {
			f.revalidateGapLocked(t)
			f.reslackLocked(t)
			f.idx.fix(t)
		}
	}
}

// AdoptBest lowers SOLUTION's cost when cost improves it. The path is
// unknown (a cost learned from the tier above travels without its leaf —
// the root keeps the authoritative path, pushed up with every improving
// report); local workers only ever need the cost, for pruning and for the
// solution-sharing replies.
func (f *Farmer) AdoptBest(cost int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cost < f.bestCost {
		f.bestCost = cost
		f.bestPath = nil
	}
}

// FrontierInto writes the smallest beginning among all tracked intervals
// into dst — the fold frontier a sub-farmer reports upstream: INTERVALS is
// always a subset of [frontier, assigned end). It reports false when the
// table is empty or frontier tracking is disabled (WithFrontierTracking).
func (f *Farmer) FrontierInto(dst *big.Int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frontierLocked(dst)
}

// FrontierWithinInto writes the smallest beginning among tracked intervals
// overlapping iv into dst, reporting false when none does. It is the
// per-binding frontier of a multi-binding sub-farmer: each upstream fold
// covers one binding's range, not the whole table. The scan is O(W) —
// acceptable because a sub-farmer holds more than one binding only in
// low-water episodes, and folds run once per cadence, not per message.
func (f *Farmer) FrontierWithinInto(dst *big.Int, iv interval.Interval) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	found := false
	for _, t := range f.intervals {
		if t.iv.IsEmpty() || !t.iv.Overlaps(iv) {
			continue
		}
		if !found || t.iv.CmpA(dst) < 0 {
			t.iv.AInto(dst)
			found = true
		}
	}
	return found
}

var _ transport.Coordinator = (*Farmer)(nil)
