// The sub-farmer role of the hierarchical farmer tree (DESIGN.md §9). A
// SubFarmer is simultaneously both sides of the paper's protocol:
//
//   - to its own fleet it is a Coordinator — it embeds a full Farmer over
//     the sub-range it was assigned and serves RequestWork/UpdateInterval/
//     ReportSolution exactly as a flat farmer would;
//   - to the tier above it is a worker — its INTERVALS folds to one
//     interval [frontier, B) per upstream binding (the same fold a
//     multicore worker reports for its shards), its power is the fleet
//     power sum, its checkpoint cadence keeps the parent lease alive, and
//     it asks the parent for a fresh sub-range when its local table runs
//     dry — or, when the parent hints there is work elsewhere, shortly
//     before (the work-conserving low-water rule, DESIGN.md §12).
//
// Nothing in internal/transport changes: the three messages carry the tree
// because the interval algebra composes — a sub-farmer's INTERVALS is
// itself a partition of its assigned intervals, so one fold per binding
// is to the root exactly what one fold per worker is to a sub-farmer.
package farmer

import (
	"errors"
	"math/big"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// SubCounters aggregates the sub-farmer's upstream protocol statistics.
// The fleet-facing statistics live in the embedded farmer's Counters.
type SubCounters struct {
	// UpstreamRequests/Updates/Reports count protocol operations
	// DELIVERED to the parent — coalesced legs included, so the
	// trajectory of these counters is comparable whether or not batching
	// engaged. An exchange that failed in transit counts under
	// UpstreamLost only: its legs were not delivered and will be retried.
	UpstreamRequests, UpstreamUpdates, UpstreamReports int64
	// UpstreamBatches counts coalesced Exchange round-trips; each one
	// carried one fold plus whatever legs rode along, so
	// (UpstreamUpdates+UpstreamRequests+UpstreamReports) −
	// round-trips-saved is visible from these counters alone.
	UpstreamBatches int64
	// UpstreamLost counts upstream exchanges that failed at the
	// transport; every one is retried by a later exchange (the pull
	// model's retry-safety composes up the tree).
	UpstreamLost int64
	// UpstreamTimeouts counts the subset of UpstreamLost whose failure
	// was a call deadline (transport.ErrDeadline): the black-holed-root
	// case a transport.Policy turns from an upstream goroutine pinned
	// forever into a counted, retried loss.
	UpstreamTimeouts int64
	// Refills counts sub-ranges obtained from the parent: the first
	// assignment plus every inter-subtree rebalance toward this subtree.
	Refills int64
	// LowWaterRefills counts the subset of Refills adopted while another
	// live binding was still held — the work-conserving steals the
	// low-water rule pulled in before the table ran dry.
	LowWaterRefills int64
	// Restricts counts table-wide restrictions applied because the
	// parent shrank the authoritative copy (rebalances away from this
	// subtree, or post-restart reconciliation).
	Restricts int64
	// DroppedTables counts live local ranges discarded because the
	// parent no longer tracked their binding (lease expired during a
	// long outage and the range was re-issued elsewhere).
	DroppedTables int64
	// CorruptSnapshots and FallbackLoads mirror the checkpoint store's
	// self-healing counters (checkpoint.Stats) for this sub-farmer's
	// store: corrupt files quarantined (snapshot or upstream binding)
	// and loads served from the previous generation. A corrupt binding
	// never fails a restore — the sub-farmer starts unbound and the
	// parent's lease mechanism recovers the interval — but it is counted
	// here.
	CorruptSnapshots, FallbackLoads int64
}

// SubConfig parameterizes a sub-farmer.
type SubConfig struct {
	// ID identifies this sub-farmer to the parent.
	ID transport.WorkerID
	// UpdateEvery is how many fleet messages to serve between two
	// upstream folds (the piggyback cadence). Default 16.
	UpdateEvery int64
	// UpdatePeriod is the time cadence of upstream folds, enforced by
	// Pulse — it must stay well under the parent's lease TTL so a quiet
	// fleet does not get its sub-range orphaned. Default 30s.
	UpdatePeriod time.Duration
	// FleetTTL is how long a silent fleet worker keeps contributing to
	// the reported fleet power. Default one minute.
	FleetTTL time.Duration
	// LowWater, when set, arms the work-conserving refill rule: a fold
	// cadence that finds the local remaining length under this mark —
	// and the parent's last StealHint promising tracked work elsewhere —
	// requests a second sub-range BEFORE the table runs dry, so the
	// subtree never idles a WAN round-trip waiting for the retire-and-
	// refill pair. Nil (default) keeps the strict refill-on-dry rule;
	// the rule also stays dormant under a parent that never hints (an
	// old root), so mixed-version trees behave exactly like before.
	LowWater *big.Int
	// Clock injects a nanosecond clock (virtual in the simulator and the
	// chaos harness). Default wall clock.
	Clock func() int64
	// Store, when set, is the sub-farmer's own checkpoint store: the
	// §4.1 two-file snapshot of its local INTERVALS/SOLUTION plus the
	// upstream binding file. A sub-farmer restart replays the §4.1
	// mechanics at its tier; the parent only sees a lease blip.
	Store *checkpoint.Store
	// InnerOptions are passed to the embedded farmer (threshold, lease
	// TTL for the fleet, equal-split ablation...). Clock and Store from
	// this config are appended automatically.
	InnerOptions []Option
}

func (c *SubConfig) fillDefaults() {
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = 16
	}
	if c.UpdatePeriod <= 0 {
		c.UpdatePeriod = 30 * time.Second
	}
	if c.FleetTTL <= 0 {
		c.FleetTTL = time.Minute
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
}

// fleetEntry is one fleet worker's contribution to the power sum.
type fleetEntry struct {
	power    int64
	lastSeen int64
}

// upBinding is one parent-side copy this subtree is exploring. Bindings
// are pairwise disjoint — they are distinct copies of the parent's
// partition — so every local interval descends from exactly one of them.
type upBinding struct {
	id int64
	iv interval.Interval
}

// maxBindings caps how many parent copies a sub-farmer holds at once: the
// live range plus a few pre-fetched by the low-water rule. Four keeps the
// per-binding fold fan-out bounded while letting a draining subtree soak up
// enough foreign ground per cadence to matter at fleet scale.
const maxBindings = 4

// SubFarmer is the mid-tier coordinator. Like the Farmer it wraps, it is a
// monitor — every operation takes the single mutex — with one deliberate
// exception: the mutex is released around blocking parent RPCs (upCall),
// serialized instead by the upBusy token, so the fleet keeps being served
// while a fold crosses the WAN. Lock order is always SubFarmer → embedded
// Farmer and SubFarmer → parent, never the reverse (the parent never calls
// down — the protocol is pull-model at every tier).
type SubFarmer struct {
	mu    sync.Mutex
	cfg   SubConfig
	up    transport.Coordinator
	inner *Farmer

	// Upstream bindings: the parent-side copies this subtree is
	// exploring, primary first. Usually one; a second appears during a
	// low-water episode (or when the parent's endgame rule duplicates a
	// crumb here) and retires through the same per-binding fold.
	bindings []upBinding

	// lastBoundID remembers the most recent binding id even after the
	// binding retired — the stale id the post-termination statistics
	// flush rides (the parent accumulates deltas before the id lookup).
	lastBoundID int64

	// lastHint is the parent's latest StealHint (nil until one arrives;
	// permanently nil under an old parent, which keeps the low-water
	// rule dormant in mixed-version trees).
	lastHint *transport.StealHint

	// upBusy is the upstream-exchange token: the holder may release mu
	// around the blocking parent RPC (upCall) while keeping exclusive
	// ownership of the bindings, bestSentUp, the sent-stats watermarks
	// and the scratch big.Ints. Fleet messages keep being served during
	// an in-flight exchange — one slow or hung parent round-trip must not
	// freeze the whole subtree — and any cadence that finds the token
	// taken simply skips; the next cadence retries, which is the
	// protocol's normal loss discipline anyway.
	upBusy bool

	// finished latches the parent's global termination verdict; local
	// dryness is never surfaced to the fleet as termination.
	finished bool

	// noBatch latches the discovery that the parent predates the batch
	// Exchange frame (its rpc server answered "can't find method"); every
	// later cadence speaks the three-call protocol directly instead of
	// re-probing. The discovering cadence itself replays its legs over
	// the three calls immediately (replayCadenceLocked) — the probe must
	// not cost the tree a cadence of folds.
	noBatch bool

	fleet map[transport.WorkerID]*fleetEntry

	// bestSentUp is the solution cost the parent is known to have; a
	// lower local best is (re-)pushed on every upstream exchange until
	// one succeeds, so a dropped report is healed, not fatal.
	bestSentUp int64

	// sinceMsgs and lastFoldNanos drive the two fold cadences.
	sinceMsgs     int64
	lastFoldNanos int64

	// sentStats tracks the exploration deltas already shipped upstream,
	// so the root's Table 2 counters aggregate the whole tree.
	sentExplored, sentPruned, sentLeaves int64

	counters SubCounters

	// Scratch big.Ints for the fold path (guarded by mu).
	scrFront, scrB *big.Int
}

// NewSubFarmer creates a sub-farmer with an empty local table. The first
// fleet request triggers the first refill from the parent.
func NewSubFarmer(cfg SubConfig, up transport.Coordinator) *SubFarmer {
	cfg.fillDefaults()
	s := &SubFarmer{
		cfg:        cfg,
		up:         up,
		fleet:      make(map[transport.WorkerID]*fleetEntry),
		bestSentUp: bb.Infinity,
		scrFront:   new(big.Int),
		scrB:       new(big.Int),
	}
	s.inner = New(interval.Interval{}, s.innerOptions()...)
	return s
}

// RestoreSubFarmer creates a sub-farmer from its checkpoint store: the
// local table from the two-file snapshot (§4.1 replayed at this tier) and
// the parent session from the binding file. With no checkpoint on disk it
// degenerates to NewSubFarmer.
func RestoreSubFarmer(cfg SubConfig, up transport.Coordinator) (*SubFarmer, error) {
	cfg.fillDefaults()
	if cfg.Store == nil || !cfg.Store.Exists() {
		return NewSubFarmer(cfg, up), nil
	}
	s := &SubFarmer{
		cfg:        cfg,
		up:         up,
		fleet:      make(map[transport.WorkerID]*fleetEntry),
		bestSentUp: bb.Infinity,
		scrFront:   new(big.Int),
		scrB:       new(big.Int),
	}
	inner, err := Restore(interval.Interval{}, cfg.Store, s.innerOptions()...)
	if err != nil {
		return nil, err
	}
	s.inner = inner
	bs, ok, err := cfg.Store.LoadBindings()
	if err != nil {
		return nil, err
	}
	if ok {
		for _, b := range bs {
			if !b.Bound || len(s.bindings) >= maxBindings {
				continue
			}
			s.bindings = append(s.bindings, upBinding{id: b.ID, iv: b.Interval.Clone()})
		}
		if len(s.bindings) > 0 {
			s.lastBoundID = s.bindings[0].id
		}
	}
	return s, nil
}

func (s *SubFarmer) innerOptions() []Option {
	opts := append([]Option{}, s.cfg.InnerOptions...)
	opts = append(opts, WithClock(s.cfg.Clock), WithFrontierTracking())
	if s.cfg.Store != nil {
		opts = append(opts, WithCheckpointStore(s.cfg.Store))
	}
	return opts
}

// ID returns the sub-farmer's upstream identity.
func (s *SubFarmer) ID() transport.WorkerID { return s.cfg.ID }

// Inner exposes the embedded farmer (statistics, Size, Best) — read-only
// use; all mutations must go through the protocol.
func (s *SubFarmer) Inner() *Farmer { return s.inner }

// Counters returns a snapshot of the upstream protocol counters.
func (s *SubFarmer) Counters() SubCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		c.CorruptSnapshots = st.CorruptSnapshots
		c.FallbackLoads = st.FallbackLoads
	}
	return c
}

// noteUpstreamErrLocked accounts one failed upstream exchange, splitting
// out deadline failures: a lost message and a black-holed root are retried
// the same way, but an operator watching the counters needs to tell a
// flaky link from a stalled coordinator.
func (s *SubFarmer) noteUpstreamErrLocked(err error) {
	s.counters.UpstreamLost++
	if errors.Is(err, transport.ErrDeadline) {
		s.counters.UpstreamTimeouts++
	}
}

// Finished reports whether the parent declared the resolution over.
func (s *SubFarmer) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// Bound reports whether the sub-farmer currently holds a parent interval,
// and its (primary) id.
func (s *SubFarmer) Bound() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bindings) == 0 {
		return s.lastBoundID, false
	}
	return s.bindings[0].id, true
}

// Bindings returns the ids of every held upstream binding, primary first —
// observability for tests and the harness; usually one entry, two during a
// low-water episode.
func (s *SubFarmer) Bindings() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int64, len(s.bindings))
	for i, b := range s.bindings {
		ids[i] = b.id
	}
	return ids
}

// IntervalsSnapshot exposes the local INTERVALS content — the tier view the
// nested conformance harness audits.
func (s *SubFarmer) IntervalsSnapshot() []checkpoint.IntervalRecord {
	return s.inner.IntervalsSnapshot()
}

// noteFleetLocked refreshes the fleet power ledger with a sanitized claim.
func (s *SubFarmer) noteFleetLocked(w transport.WorkerID, power, now int64) {
	if power <= 0 {
		return
	}
	if power > MaxPower {
		power = MaxPower
	}
	e, ok := s.fleet[w]
	if !ok {
		e = &fleetEntry{}
		s.fleet[w] = e
	}
	e.power, e.lastSeen = power, now
}

// fleetPowerLocked sums the live fleet powers, pruning silent entries, and
// clamps the sum into the parent's accepted range. An empty fleet reports
// 1: the sub-farmer itself is alive, and the parent rejects non-positive
// claims.
func (s *SubFarmer) fleetPowerLocked(now int64) int64 {
	ttl := int64(s.cfg.FleetTTL)
	var sum int64
	for w, e := range s.fleet {
		if now-e.lastSeen > ttl {
			delete(s.fleet, w)
			continue
		}
		sum += e.power
		if sum >= MaxPower || sum < 0 { // saturate on overflow
			sum = MaxPower
			break
		}
	}
	if sum < 1 {
		sum = 1
	}
	return sum
}

// RequestWork implements transport.Coordinator for the fleet. When the
// local table is dry it refills from the parent first — the reactive half
// of the tier-above load balancing (the proactive half is the low-water
// rule riding the fold cadence).
func (s *SubFarmer) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	s.noteFleetLocked(req.Worker, req.Power, now)
	// Two passes: a dry table refills once, then the inner allocation is
	// retried; a second dry verdict (refill failed or yielded nothing)
	// is surfaced as wait/finished.
	for attempt := 0; attempt < 2; attempt++ {
		if s.finished {
			return transport.WorkReply{Status: transport.WorkFinished, BestCost: s.inner.BestCost()}, nil
		}
		reply, err := s.inner.RequestWork(req)
		if err != nil {
			return reply, err
		}
		if reply.Status == transport.WorkAssigned {
			s.tickCadenceLocked(now)
			return reply, nil
		}
		// Inner says finished ⇒ the local table is dry, which at this
		// tier means "go ask the parent", never "stop the fleet".
		if !s.refillLocked(now) {
			break
		}
	}
	if s.finished {
		return transport.WorkReply{Status: transport.WorkFinished, BestCost: s.inner.BestCost()}, nil
	}
	return transport.WorkReply{Status: transport.WorkWait, BestCost: s.inner.BestCost()}, nil
}

// UpdateInterval implements transport.Coordinator for the fleet: the inner
// farmer applies eq. 14 locally, and the sub-farmer folds upstream on its
// cadence. A local-dry verdict triggers the upstream retire-and-refill
// inline so the fleet never stalls on a drained subtree.
func (s *SubFarmer) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	s.noteFleetLocked(req.Worker, req.Power, now)
	reply, err := s.inner.UpdateInterval(req)
	if err != nil {
		return reply, err
	}
	if reply.Finished {
		// Local table dry: retire the upstream copies (everything they
		// still covered is genuinely explored — see foldOneLocked) and
		// try to pull a fresh sub-range immediately.
		s.refillLocked(now)
	} else {
		s.tickCadenceLocked(now)
	}
	reply.Finished = s.finished
	reply.BestCost = s.inner.BestCost()
	return reply, nil
}

// ReportSolution implements transport.Coordinator for the fleet: rule 2 of
// solution sharing composes up the tree — improvements are pushed to the
// parent immediately, with their leaf path, and the parent's (possibly
// better) verdict is adopted locally so fleet replies always carry the
// global best.
func (s *SubFarmer) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ack, err := s.inner.ReportSolution(req)
	if err != nil {
		return ack, err
	}
	s.pushBestUpLocked()
	ack.BestCost = s.inner.BestCost()
	return ack, nil
}

// Pulse drives the time-based upstream cadence: the runtime (a ticker
// goroutine, the simulator's tick loop, the chaos harness) calls it
// periodically so a quiet fleet still keeps the parent lease alive. After
// global termination it flushes any straggler statistics instead (fleet
// checkpoints that landed after the final fold), so the root's Table 2
// counters converge on the whole tree's totals.
func (s *SubFarmer) Pulse() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	if s.finished {
		s.flushStatsLocked(now)
		return
	}
	if len(s.bindings) > 0 && now-s.lastFoldNanos >= int64(s.cfg.UpdatePeriod) {
		s.foldUpLocked(now)
	}
}

// upCall runs one parent exchange with the fleet mutex released. Caller
// holds s.mu and has verified the upBusy token is free; upCall returns
// with s.mu re-held. State owned by the token (bindings, bestSentUp,
// sent-stats, scratch) is stable across the window; the local table is
// not, and callers must treat pre-call table snapshots accordingly.
func (s *SubFarmer) upCall(f func(up transport.Coordinator)) {
	s.upBusy = true
	s.mu.Unlock()
	f(s.up)
	s.mu.Lock()
	s.upBusy = false
}

// flushStatsLocked ships exploration deltas that accrued after the final
// fold. The bindings are gone by now, so the update rides the last (stale)
// id: the parent accumulates statistics deltas before the id lookup, and
// the Known=false verdict is exactly what we expect back. No-op while an
// exchange is in flight or when nothing is pending.
func (s *SubFarmer) flushStatsLocked(now int64) {
	if s.upBusy {
		return
	}
	ec, pc, lc := s.innerStatsLocked()
	if ec == s.sentExplored && pc == s.sentPruned && lc == s.sentLeaves {
		return
	}
	req := transport.UpdateRequest{
		Worker:        s.cfg.ID,
		IntervalID:    s.lastBoundID,
		Power:         s.fleetPowerLocked(now),
		ExploredDelta: ec - s.sentExplored,
		PrunedDelta:   pc - s.sentPruned,
		LeavesDelta:   lc - s.sentLeaves,
	}
	var err error
	s.upCall(func(up transport.Coordinator) {
		_, err = up.UpdateInterval(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return
	}
	s.counters.UpstreamUpdates++
	s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
}

// Checkpoint persists the local two-file snapshot and the upstream
// bindings.
func (s *SubFarmer) Checkpoint() error {
	if err := s.inner.Checkpoint(); err != nil {
		return err
	}
	s.mu.Lock()
	bs := make([]checkpoint.Binding, 0, len(s.bindings))
	for _, b := range s.bindings {
		bs = append(bs, checkpoint.Binding{Bound: true, ID: b.id, Interval: b.iv.Clone()})
	}
	store := s.cfg.Store
	s.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.SaveBindings(bs)
}

// tickCadenceLocked counts a served fleet message and folds upstream when
// either cadence (message count or time) is due.
func (s *SubFarmer) tickCadenceLocked(now int64) {
	if len(s.bindings) == 0 {
		return
	}
	s.sinceMsgs++
	if s.sinceMsgs >= s.cfg.UpdateEvery || now-s.lastFoldNanos >= int64(s.cfg.UpdatePeriod) {
		s.foldUpLocked(now)
	}
}

// bindingIdx locates a binding by parent-side id; -1 when not held.
func (s *SubFarmer) bindingIdx(id int64) int {
	for i, b := range s.bindings {
		if b.id == id {
			return i
		}
	}
	return -1
}

// bindingIvsLocked snapshots the authoritative intervals of every held
// binding, for table-wide restriction to their union.
func (s *SubFarmer) bindingIvsLocked() []interval.Interval {
	ivs := make([]interval.Interval, len(s.bindings))
	for i, b := range s.bindings {
		ivs[i] = b.iv
	}
	return ivs
}

// frontierForLocked writes binding b's fold frontier into scrFront,
// reporting false when no tracked interval remains under it. The common
// single-binding case reads the O(log W) frontier heap; only a low-water
// episode (two bindings) pays the O(W) per-range scan.
func (s *SubFarmer) frontierForLocked(b upBinding) bool {
	if len(s.bindings) == 1 {
		return s.inner.FrontierInto(s.scrFront)
	}
	return s.inner.FrontierWithinInto(s.scrFront, b.iv)
}

// gapForFoldLocked builds the gap-carving declaration for binding b's
// fold: the largest fully-explored hole interior to the local table's
// share of the binding, offered when it is worth carving — at least 1/64
// of the hull whose bounds the caller just wrote into scrFront/scrB. The
// declaration is gated on having seen a parent hint: hints prove a parent
// new enough to honour the gap field, so under an old root the fold stays
// byte-for-byte the plain hull it always was. The gap is computed before
// the mutex is released for the RPC, and stays valid across the flight:
// explored ground never un-explores, and no refill can inject work into
// the hole while the upBusy token is held.
func (s *SubFarmer) gapForFoldLocked(b upBinding, rangeLive bool) (interval.Interval, bool) {
	if s.lastHint == nil || !rangeLive {
		return interval.Interval{}, false
	}
	ga, gb, ok := s.inner.LargestGapWithin(b.iv)
	if !ok {
		return interval.Interval{}, false
	}
	gapLen := new(big.Int).Sub(gb, ga)
	hullLen := new(big.Int).Sub(s.scrB, s.scrFront)
	if gapLen.Lsh(gapLen, 6).Cmp(hullLen) < 0 {
		return interval.Interval{}, false
	}
	return interval.New(ga, gb), true
}

// contentForFoldLocked builds the content declaration for binding b's fold:
// the true tracked length (in leaf units) behind the hull, so the parent can
// value a fragmented table honestly instead of by its hull. Gated exactly
// like the gap declaration — on having seen a parent hint, proving a parent
// new enough to honour the field — so under an old root the fold stays
// byte-for-byte the plain hull it always was. Unlike the gap there is no
// worth-it floor: honest valuation is useful at any size. The value is a
// snapshot taken before the RPC flight; it can only overstate the ground
// left when the reply lands (exploration is monotone), which keeps the
// parent's discount conservative.
func (s *SubFarmer) contentForFoldLocked(b upBinding, rangeLive bool) *big.Int {
	if s.lastHint == nil || !rangeLive {
		return nil
	}
	return s.inner.ContentWithin(b.iv)
}

// foldUpLocked sends the worker-side checkpoint of this tier: the fold
// [frontier, B) of each binding's share of the local INTERVALS, the fleet
// power, and the exploration deltas. The parent's reply is authoritative
// (eq. 14): the local table is restricted to it, which is how
// inter-subtree rebalancing decisions propagate down. When the parent's
// last hint promises tracked work elsewhere and the local remainder is
// under the low-water mark, the cadence also pulls a fresh sub-range in
// the same round-trip (batch) or an extra one (three-call) — refilling
// BEFORE the table runs dry instead of idling the retire-refill gap.
//
// The fold is sound in both directions. Its end is pinned at the last
// known copy end, which never undershoots the parent's (the parent's end
// only shrinks, and every shrink this sub-farmer has seen is reflected
// here), so the parent's stale-copy carve — the farmer-restart repair —
// never misfires on a live subtree. Its beginning is the minimum beginning
// over the binding's share of the local table: everything below it was
// reported consumed by fleet workers, so the parent crediting
// [old A, frontier) as explored is exact.
func (s *SubFarmer) foldUpLocked(now int64) {
	if len(s.bindings) == 0 || s.upBusy {
		return
	}
	if bc, ok := s.batchUpstreamLocked(); ok {
		want := s.wantMoreLocked()
		// Snapshot the secondary ids before the exchange: the verdict may
		// reshuffle the slice (retire the primary, promote a secondary).
		var secondaries []int64
		for _, b := range s.bindings[1:] {
			secondaries = append(secondaries, b.id)
		}
		reply, ok, _ := s.exchangeUpLocked(bc, now, want)
		if !ok {
			// A lost batch retries next cadence; the noBatch discovery
			// already replayed every leg (including the secondaries'
			// folds) over the three-call path.
			return
		}
		if want && reply.HasWork {
			s.adoptWorkReplyLocked(transport.WorkReply{
				Status:     reply.Status,
				IntervalID: reply.IntervalID,
				Interval:   reply.WorkInterval,
				BestCost:   reply.BestCost,
				Duplicated: reply.Duplicated,
			}, now)
		}
		for _, id := range secondaries {
			if s.finished {
				break
			}
			s.foldOneLocked(id, now, false)
		}
		return
	}
	s.pushBestUpLocked()
	s.foldAllLocked(now)
	if s.wantMoreLocked() {
		s.requestMoreLocked(now)
	}
}

// foldAllLocked folds every held binding upstream over the three-call
// protocol. The first fold to succeed carries the exploration deltas (the
// parent accumulates them before the id lookup, so any binding's id is a
// valid vehicle); the rest fold with zero deltas. A successful cadence —
// any fold delivered — resets both fold cadences.
func (s *SubFarmer) foldAllLocked(now int64) {
	ids := make([]int64, 0, maxBindings)
	for _, b := range s.bindings {
		ids = append(ids, b.id)
	}
	withDeltas := true
	any := false
	for _, id := range ids {
		if s.finished {
			break
		}
		if s.foldOneLocked(id, now, withDeltas) {
			withDeltas = false
			any = true
		}
	}
	if any {
		s.sinceMsgs = 0
		s.lastFoldNanos = now
	}
}

// foldOneLocked folds one binding upstream over UpdateInterval. Counters
// and watermarks move only on success: a lost fold is retried by a later
// cadence with nothing double-counted. Reports whether the fold was
// delivered.
func (s *SubFarmer) foldOneLocked(id int64, now int64, withDeltas bool) bool {
	bi := s.bindingIdx(id)
	if bi < 0 {
		return false
	}
	b := s.bindings[bi]
	// rangeLive is a snapshot: the fleet keeps updating while the RPC is
	// in flight, so the range may drain before the reply lands. The drop
	// branches in the verdict stay correct either way (restricting an
	// already empty range is a no-op).
	rangeLive := s.frontierForLocked(b)
	if !rangeLive {
		// An empty range folds to the empty interval [B, B): the parent
		// retires the copy, completing this sub-range.
		b.iv.BInto(s.scrFront)
	}
	fold := interval.New(s.scrFront, b.iv.BInto(s.scrB))
	req := transport.UpdateRequest{
		Worker:     s.cfg.ID,
		IntervalID: id,
		Remaining:  fold,
		Power:      s.fleetPowerLocked(now),
	}
	if g, withGap := s.gapForFoldLocked(b, rangeLive); withGap {
		req.HasGap, req.Gap = true, g
	}
	req.Content = s.contentForFoldLocked(b, rangeLive)
	var ec, pc, lc int64
	if withDeltas {
		ec, pc, lc = s.innerStatsLocked()
		req.ExploredDelta = ec - s.sentExplored
		req.PrunedDelta = pc - s.sentPruned
		req.LeavesDelta = lc - s.sentLeaves
	}
	var (
		reply transport.UpdateReply
		err   error
	)
	s.upCall(func(up transport.Coordinator) {
		reply, err = up.UpdateInterval(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return false
	}
	s.counters.UpstreamUpdates++
	if withDeltas {
		s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
	}
	s.adoptUpstreamBestLocked(reply.BestCost)
	if reply.Hint != nil {
		s.lastHint = reply.Hint
	}
	s.applyFoldVerdictLocked(id, reply, rangeLive)
	return true
}

// batchUpstreamLocked reports whether upstream exchanges should coalesce:
// the parent leg implements the batch frame and has not answered "can't
// find method". In-process parents (a *Farmer, the harness interceptor)
// never implement BatchCoordinator — a batch over a function call saves
// nothing — so flat and simulated deployments keep the three-call path
// and its traces unchanged.
func (s *SubFarmer) batchUpstreamLocked() (transport.BatchCoordinator, bool) {
	if s.noBatch {
		return nil, false
	}
	bc, ok := s.up.(transport.BatchCoordinator)
	return bc, ok
}

// isNoBatchErr recognizes an old parent: its rpc server rejects the
// Exchange method by name. Every other error is an ordinary loss.
func isNoBatchErr(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), "can't find")
}

// exchangeUpLocked is the fold cadence over the coalesced batch frame: one
// round-trip carries the primary binding's fold, the fleet power, any
// unsent best solution, and — when wantWork is set — the refill request
// that would otherwise be a separate exchange. Caller holds mu, owns the
// upBusy token window, and has verified bindings exist. Returns the reply,
// whether the exchange was delivered, and — only when the parent turned
// out to predate the batch frame — whether the three-call replay left the
// table ready for another allocation attempt.
func (s *SubFarmer) exchangeUpLocked(bc transport.BatchCoordinator, now int64, wantWork bool) (transport.BatchReply, bool, bool) {
	b := s.bindings[0]
	rangeLive := s.frontierForLocked(b)
	if !rangeLive {
		b.iv.BInto(s.scrFront)
	}
	fold := interval.New(s.scrFront, b.iv.BInto(s.scrB))
	ec, pc, lc := s.innerStatsLocked()
	req := transport.BatchRequest{
		Worker:        s.cfg.ID,
		Power:         s.fleetPowerLocked(now),
		HasFold:       true,
		FoldID:        b.id,
		Remaining:     fold,
		ExploredDelta: ec - s.sentExplored,
		PrunedDelta:   pc - s.sentPruned,
		LeavesDelta:   lc - s.sentLeaves,
		WantWork:      wantWork,
	}
	if g, withGap := s.gapForFoldLocked(b, rangeLive); withGap {
		req.HasFoldGap, req.FoldGap = true, g
	}
	req.FoldContent = s.contentForFoldLocked(b, rangeLive)
	if best := s.inner.Best(); best.Cost < s.bestSentUp {
		req.HasReport, req.Cost, req.Path = true, best.Cost, best.Path
	}
	var (
		reply transport.BatchReply
		err   error
	)
	s.upCall(func(transport.Coordinator) {
		reply, err = bc.Exchange(req)
	})
	if err != nil {
		if isNoBatchErr(err) {
			// An old parent rejecting the batch frame is a dialect
			// discovery, not an upstream loss: none of the legs were
			// delivered, so replay them over the three-call protocol in
			// THIS cadence instead of idling until the next one, and
			// count nothing for the undelivered batch.
			s.noBatch = true
			return reply, false, s.replayCadenceLocked(now, wantWork)
		}
		s.noteUpstreamErrLocked(err)
		return reply, false, false
	}
	s.counters.UpstreamBatches++
	s.counters.UpstreamUpdates++
	if req.HasReport {
		s.counters.UpstreamReports++
		if req.Cost < s.bestSentUp {
			s.bestSentUp = req.Cost
		}
	}
	if wantWork {
		s.counters.UpstreamRequests++
	}
	s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
	s.sinceMsgs = 0
	s.lastFoldNanos = now
	s.adoptUpstreamBestLocked(reply.BestCost)
	if reply.Hint != nil {
		s.lastHint = reply.Hint
	}
	s.applyFoldVerdictLocked(b.id, transport.UpdateReply{
		Finished: reply.Finished,
		Known:    reply.Known,
		Interval: reply.Interval,
	}, rangeLive)
	return reply, true, false
}

// replayCadenceLocked re-runs the legs an undelivered batch probe meant to
// carry, over the three-call protocol, within the same cadence: best
// report, every binding's fold, and — when the caller wanted work and the
// folds left the table entitled to it — the refill request. Reports
// whether the table is ready for another allocation attempt.
func (s *SubFarmer) replayCadenceLocked(now int64, wantWork bool) bool {
	s.pushBestUpLocked()
	s.foldAllLocked(now)
	if !wantWork || s.finished {
		return false
	}
	if len(s.bindings) == 0 || s.wantMoreLocked() {
		return s.requestMoreLocked(now)
	}
	// A retire fold lost in transit left the binding in place; the next
	// cadence retries it. Do not stack another refill on this message.
	return false
}

// wantMoreLocked is the work-conserving low-water rule: ask the parent for
// a second sub-range when the local remainder is under the mark, the
// parent's last hint promises tracked work elsewhere, and there is a free
// binding slot. Dormant without a LowWater mark or under a parent that
// never hints (an old root) — then refill stays strictly on-dry.
func (s *SubFarmer) wantMoreLocked() bool {
	if s.cfg.LowWater == nil || s.finished || s.lastHint == nil {
		return false
	}
	if len(s.bindings) == 0 || len(s.bindings) >= maxBindings {
		return false
	}
	if s.lastHint.Others <= 0 || s.lastHint.RichestBits <= 0 {
		return false
	}
	_, total := s.inner.Size()
	return total.Cmp(s.cfg.LowWater) < 0
}

// requestMoreLocked asks the parent for a sub-range over the three-call
// protocol and adopts the grant. Reports whether the table is ready for
// another allocation attempt.
func (s *SubFarmer) requestMoreLocked(now int64) bool {
	req := transport.WorkRequest{
		Worker: s.cfg.ID,
		Power:  s.fleetPowerLocked(now),
	}
	var (
		reply transport.WorkReply
		err   error
	)
	s.upCall(func(up transport.Coordinator) {
		reply, err = up.RequestWork(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return false
	}
	s.counters.UpstreamRequests++
	return s.adoptWorkReplyLocked(reply, now)
}

// applyFoldVerdictLocked applies the parent's authoritative fold reply for
// one binding — shared by the three-call and batch paths, so the
// drop/restrict semantics cannot drift between dialects. Caller still owns
// the fold scratch (scrFront/scrB hold the fold bounds just sent).
func (s *SubFarmer) applyFoldVerdictLocked(id int64, reply transport.UpdateReply, rangeLive bool) {
	if s.finished = s.finished || reply.Finished; s.finished {
		// Global termination: whatever remains locally is duplicated
		// residue of ground another subtree already proved (the root's
		// union is empty, so every leaf is accounted for). Drop it so
		// the fleet stops instead of re-proving it.
		s.bindings = nil
		s.inner.RestrictTo(interval.Interval{})
		return
	}
	bi := s.bindingIdx(id)
	if bi < 0 {
		return
	}
	if !reply.Known || reply.Interval.IsEmpty() {
		// Known=false: the parent no longer tracks the binding. For an
		// empty range that is just the retire racing a completed copy;
		// for a live one it means the lease expired during an outage and
		// the range lives on under other owners — keeping it would
		// duplicate their work leaf for leaf. An empty authoritative
		// copy means the same from the other side: our own retire fold,
		// or the parent saw everything we still plan consumed elsewhere.
		// Either way the binding retires and any live residue under it
		// is cut away (the union restriction spares the other binding).
		s.bindings = append(s.bindings[:bi], s.bindings[bi+1:]...)
		if rangeLive {
			s.inner.RestrictToUnion(s.bindingIvsLocked())
			s.counters.DroppedTables++
		}
		return
	}
	// Restrict the binding's share of the local table to the
	// authoritative copy when it actually cuts something: a tail donated
	// to another subtree, or — after a restart from checkpoint — ground
	// below the frontier the previous incarnation had already reported
	// consumed.
	cut := reply.Interval.CmpA(s.scrFront) > 0 || reply.Interval.CmpB(s.scrB) < 0
	s.bindings[bi].iv = reply.Interval.Clone()
	if cut {
		if len(s.bindings) == 1 {
			s.inner.RestrictTo(reply.Interval)
		} else {
			s.inner.RestrictToUnion(s.bindingIvsLocked())
		}
		s.counters.Restricts++
	}
}

// refillLocked handles the dry-table moment: fold the (empty) table up so
// the parent retires the finished copies, then request a fresh sub-range
// with the fleet's aggregate power. Reports whether the local table is
// ready for another allocation attempt.
func (s *SubFarmer) refillLocked(now int64) bool {
	if s.upBusy {
		// Another worker's message is already mid-exchange with the
		// parent; this one waits its turn (WorkWait → retry).
		return false
	}
	if bc, ok := s.batchUpstreamLocked(); ok && len(s.bindings) > 0 {
		// Coalesced: retire fold and refill in ONE round-trip instead of
		// the fold-then-request pair below.
		reply, ok, workReady := s.exchangeUpLocked(bc, now, true)
		if !ok {
			// workReady carries the three-call replay's verdict when the
			// parent turned out to predate the batch frame; an ordinary
			// lost batch reports false and the next fleet message
			// retries.
			return workReady
		}
		if s.finished || !reply.HasWork {
			return false
		}
		return s.adoptWorkReplyLocked(transport.WorkReply{
			Status:     reply.Status,
			IntervalID: reply.IntervalID,
			Interval:   reply.WorkInterval,
			BestCost:   reply.BestCost,
			Duplicated: reply.Duplicated,
		}, now)
	}
	if len(s.bindings) > 0 {
		s.pushBestUpLocked()
		s.foldAllLocked(now)
		if len(s.bindings) > 0 {
			// A retire fold was lost in transit; the next cadence
			// retries it. Do not stack a second upstream exchange on
			// this fleet message.
			return false
		}
	}
	if s.finished {
		return false
	}
	return s.requestMoreLocked(now)
}

// adoptWorkReplyLocked applies the parent's work assignment — shared by
// the three-call and batch refill paths. Reports whether the local table
// is ready for another allocation attempt.
func (s *SubFarmer) adoptWorkReplyLocked(reply transport.WorkReply, now int64) bool {
	s.adoptUpstreamBestLocked(reply.BestCost)
	switch reply.Status {
	case transport.WorkFinished:
		s.finished = true
		return false
	case transport.WorkAssigned:
		if bi := s.bindingIdx(reply.IntervalID); bi >= 0 {
			// The parent handed our own copy back — the endgame
			// duplication rule keeps one copy per interval and may pick
			// the requester's (§4.2). The table already covers it;
			// adopt the authoritative bounds and inject nothing, or the
			// subtree would re-explore its own remainder.
			s.bindings[bi].iv = reply.Interval.Clone()
			return false
		}
		if len(s.bindings) >= maxBindings {
			// No free slot (a racing refill filled it): fold the grant
			// straight back so the parent retires or re-issues it.
			s.bindings = append(s.bindings, upBinding{id: reply.IntervalID, iv: reply.Interval.Clone()})
			s.lastBoundID = reply.IntervalID
			s.foldOneLocked(reply.IntervalID, now, false)
			return false
		}
		if reply.Interval.IsEmpty() {
			// A crumb split can donate the empty interval; hand it
			// straight back so the parent retires it.
			s.bindings = append(s.bindings, upBinding{id: reply.IntervalID, iv: reply.Interval.Clone()})
			s.lastBoundID = reply.IntervalID
			s.foldOneLocked(reply.IntervalID, now, false)
			return false
		}
		if len(s.bindings) > 0 {
			s.counters.LowWaterRefills++
		}
		s.bindings = append(s.bindings, upBinding{id: reply.IntervalID, iv: reply.Interval.Clone()})
		s.lastBoundID = reply.IntervalID
		s.inner.Inject(reply.Interval)
		s.sinceMsgs = 0
		s.lastFoldNanos = now
		s.counters.Refills++
		return true
	default:
		return false
	}
}

// pushBestUpLocked ships the local best upstream if the parent has not
// seen it yet, and adopts the parent's verdict. Lost pushes retry on the
// next upstream exchange because bestSentUp only moves on success, and a
// push that finds the token taken skips for the same reason.
func (s *SubFarmer) pushBestUpLocked() {
	if s.upBusy {
		return
	}
	best := s.inner.Best()
	if best.Cost >= s.bestSentUp {
		return
	}
	req := transport.SolutionReport{
		Worker: s.cfg.ID,
		Cost:   best.Cost,
		Path:   best.Path,
	}
	var (
		ack transport.SolutionAck
		err error
	)
	s.upCall(func(up transport.Coordinator) {
		ack, err = up.ReportSolution(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return
	}
	s.counters.UpstreamReports++
	if best.Cost < s.bestSentUp {
		s.bestSentUp = best.Cost
	}
	s.adoptUpstreamBestLocked(ack.BestCost)
}

// adoptUpstreamBestLocked folds a cost learned from the parent into the
// local SOLUTION (rule 3 of solution sharing, composed down the tree). A
// cost the parent already has never needs re-sending.
func (s *SubFarmer) adoptUpstreamBestLocked(cost int64) {
	if cost < s.bestSentUp {
		s.bestSentUp = cost
	}
	s.inner.AdoptBest(cost)
}

// innerStatsLocked reads the fleet's cumulative exploration counters from
// the embedded farmer.
func (s *SubFarmer) innerStatsLocked() (explored, pruned, leaves int64) {
	c := s.inner.Counters()
	return c.ExploredNodes, c.PrunedNodes, c.EvaluatedLeaves
}

var _ transport.Coordinator = (*SubFarmer)(nil)
