// The sub-farmer role of the hierarchical farmer tree (DESIGN.md §9). A
// SubFarmer is simultaneously both sides of the paper's protocol:
//
//   - to its own fleet it is a Coordinator — it embeds a full Farmer over
//     the sub-range it was assigned and serves RequestWork/UpdateInterval/
//     ReportSolution exactly as a flat farmer would;
//   - to the tier above it is a worker — its INTERVALS folds to one
//     interval [frontier, B) (the same fold a multicore worker reports for
//     its shards), its power is the fleet power sum, its checkpoint
//     cadence keeps the parent lease alive, and it asks the parent for a
//     fresh sub-range only when its local table runs dry.
//
// Nothing in internal/transport changes: the three messages carry the tree
// because the interval algebra composes — a sub-farmer's INTERVALS is
// itself a partition of its assigned interval, so one fold per sub-farmer
// is to the root exactly what one fold per worker is to a sub-farmer.
package farmer

import (
	"errors"
	"math/big"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// SubCounters aggregates the sub-farmer's upstream protocol statistics.
// The fleet-facing statistics live in the embedded farmer's Counters.
type SubCounters struct {
	// UpstreamRequests/Updates/Reports count protocol operations sent to
	// the parent — coalesced legs included, so the trajectory of these
	// counters is comparable whether or not batching engaged.
	UpstreamRequests, UpstreamUpdates, UpstreamReports int64
	// UpstreamBatches counts coalesced Exchange round-trips; each one
	// carried one fold plus whatever legs rode along, so
	// (UpstreamUpdates+UpstreamRequests+UpstreamReports) −
	// round-trips-saved is visible from these counters alone.
	UpstreamBatches int64
	// UpstreamLost counts upstream exchanges that failed at the
	// transport; every one is retried by a later exchange (the pull
	// model's retry-safety composes up the tree).
	UpstreamLost int64
	// UpstreamTimeouts counts the subset of UpstreamLost whose failure
	// was a call deadline (transport.ErrDeadline): the black-holed-root
	// case a transport.Policy turns from an upstream goroutine pinned
	// forever into a counted, retried loss.
	UpstreamTimeouts int64
	// Refills counts sub-ranges obtained from the parent: the first
	// assignment plus every inter-subtree rebalance toward this subtree.
	Refills int64
	// Restricts counts table-wide restrictions applied because the
	// parent shrank the authoritative copy (rebalances away from this
	// subtree, or post-restart reconciliation).
	Restricts int64
	// DroppedTables counts local tables discarded because the parent no
	// longer tracked the binding (lease expired during a long outage and
	// the range was re-issued elsewhere).
	DroppedTables int64
}

// SubConfig parameterizes a sub-farmer.
type SubConfig struct {
	// ID identifies this sub-farmer to the parent.
	ID transport.WorkerID
	// UpdateEvery is how many fleet messages to serve between two
	// upstream folds (the piggyback cadence). Default 16.
	UpdateEvery int64
	// UpdatePeriod is the time cadence of upstream folds, enforced by
	// Pulse — it must stay well under the parent's lease TTL so a quiet
	// fleet does not get its sub-range orphaned. Default 30s.
	UpdatePeriod time.Duration
	// FleetTTL is how long a silent fleet worker keeps contributing to
	// the reported fleet power. Default one minute.
	FleetTTL time.Duration
	// Clock injects a nanosecond clock (virtual in the simulator and the
	// chaos harness). Default wall clock.
	Clock func() int64
	// Store, when set, is the sub-farmer's own checkpoint store: the
	// §4.1 two-file snapshot of its local INTERVALS/SOLUTION plus the
	// upstream binding file. A sub-farmer restart replays the §4.1
	// mechanics at its tier; the parent only sees a lease blip.
	Store *checkpoint.Store
	// InnerOptions are passed to the embedded farmer (threshold, lease
	// TTL for the fleet, equal-split ablation...). Clock and Store from
	// this config are appended automatically.
	InnerOptions []Option
}

func (c *SubConfig) fillDefaults() {
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = 16
	}
	if c.UpdatePeriod <= 0 {
		c.UpdatePeriod = 30 * time.Second
	}
	if c.FleetTTL <= 0 {
		c.FleetTTL = time.Minute
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
}

// fleetEntry is one fleet worker's contribution to the power sum.
type fleetEntry struct {
	power    int64
	lastSeen int64
}

// SubFarmer is the mid-tier coordinator. Like the Farmer it wraps, it is a
// monitor — every operation takes the single mutex — with one deliberate
// exception: the mutex is released around blocking parent RPCs (upCall),
// serialized instead by the upBusy token, so the fleet keeps being served
// while a fold crosses the WAN. Lock order is always SubFarmer → embedded
// Farmer and SubFarmer → parent, never the reverse (the parent never calls
// down — the protocol is pull-model at every tier).
type SubFarmer struct {
	mu    sync.Mutex
	cfg   SubConfig
	up    transport.Coordinator
	inner *Farmer

	// Upstream binding: the parent-side copy this subtree is exploring.
	bound bool
	upID  int64
	upIV  interval.Interval

	// upBusy is the upstream-exchange token: the holder may release mu
	// around the blocking parent RPC (upCall) while keeping exclusive
	// ownership of the binding, bestSentUp, the sent-stats watermarks and
	// the scratch big.Ints. Fleet messages keep being served during an
	// in-flight exchange — one slow or hung parent round-trip must not
	// freeze the whole subtree — and any cadence that finds the token
	// taken simply skips; the next cadence retries, which is the
	// protocol's normal loss discipline anyway.
	upBusy bool

	// finished latches the parent's global termination verdict; local
	// dryness is never surfaced to the fleet as termination.
	finished bool

	// noBatch latches the discovery that the parent predates the batch
	// Exchange frame (its rpc server answered "can't find method"); every
	// later cadence speaks the three-call protocol directly instead of
	// re-probing.
	noBatch bool

	fleet map[transport.WorkerID]*fleetEntry

	// bestSentUp is the solution cost the parent is known to have; a
	// lower local best is (re-)pushed on every upstream exchange until
	// one succeeds, so a dropped report is healed, not fatal.
	bestSentUp int64

	// sinceMsgs and lastFoldNanos drive the two fold cadences.
	sinceMsgs     int64
	lastFoldNanos int64

	// sentStats tracks the exploration deltas already shipped upstream,
	// so the root's Table 2 counters aggregate the whole tree.
	sentExplored, sentPruned, sentLeaves int64

	counters SubCounters

	// Scratch big.Ints for the fold path (guarded by mu).
	scrFront, scrB *big.Int
}

// NewSubFarmer creates a sub-farmer with an empty local table. The first
// fleet request triggers the first refill from the parent.
func NewSubFarmer(cfg SubConfig, up transport.Coordinator) *SubFarmer {
	cfg.fillDefaults()
	s := &SubFarmer{
		cfg:        cfg,
		up:         up,
		fleet:      make(map[transport.WorkerID]*fleetEntry),
		bestSentUp: bb.Infinity,
		scrFront:   new(big.Int),
		scrB:       new(big.Int),
	}
	s.inner = New(interval.Interval{}, s.innerOptions()...)
	return s
}

// RestoreSubFarmer creates a sub-farmer from its checkpoint store: the
// local table from the two-file snapshot (§4.1 replayed at this tier) and
// the parent session from the binding file. With no checkpoint on disk it
// degenerates to NewSubFarmer.
func RestoreSubFarmer(cfg SubConfig, up transport.Coordinator) (*SubFarmer, error) {
	cfg.fillDefaults()
	if cfg.Store == nil || !cfg.Store.Exists() {
		return NewSubFarmer(cfg, up), nil
	}
	s := &SubFarmer{
		cfg:        cfg,
		up:         up,
		fleet:      make(map[transport.WorkerID]*fleetEntry),
		bestSentUp: bb.Infinity,
		scrFront:   new(big.Int),
		scrB:       new(big.Int),
	}
	inner, err := Restore(interval.Interval{}, cfg.Store, s.innerOptions()...)
	if err != nil {
		return nil, err
	}
	s.inner = inner
	b, ok, err := cfg.Store.LoadBinding()
	if err != nil {
		return nil, err
	}
	if ok && b.Bound {
		s.bound, s.upID, s.upIV = true, b.ID, b.Interval.Clone()
	}
	return s, nil
}

func (s *SubFarmer) innerOptions() []Option {
	opts := append([]Option{}, s.cfg.InnerOptions...)
	opts = append(opts, WithClock(s.cfg.Clock), WithFrontierTracking())
	if s.cfg.Store != nil {
		opts = append(opts, WithCheckpointStore(s.cfg.Store))
	}
	return opts
}

// ID returns the sub-farmer's upstream identity.
func (s *SubFarmer) ID() transport.WorkerID { return s.cfg.ID }

// Inner exposes the embedded farmer (statistics, Size, Best) — read-only
// use; all mutations must go through the protocol.
func (s *SubFarmer) Inner() *Farmer { return s.inner }

// Counters returns a snapshot of the upstream protocol counters.
func (s *SubFarmer) Counters() SubCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// noteUpstreamErrLocked accounts one failed upstream exchange, splitting
// out deadline failures: a lost message and a black-holed root are retried
// the same way, but an operator watching the counters needs to tell a
// flaky link from a stalled coordinator.
func (s *SubFarmer) noteUpstreamErrLocked(err error) {
	s.counters.UpstreamLost++
	if errors.Is(err, transport.ErrDeadline) {
		s.counters.UpstreamTimeouts++
	}
}

// Finished reports whether the parent declared the resolution over.
func (s *SubFarmer) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// Bound reports whether the sub-farmer currently holds a parent interval,
// and its id.
func (s *SubFarmer) Bound() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.upID, s.bound
}

// IntervalsSnapshot exposes the local INTERVALS content — the tier view the
// nested conformance harness audits.
func (s *SubFarmer) IntervalsSnapshot() []checkpoint.IntervalRecord {
	return s.inner.IntervalsSnapshot()
}

// noteFleetLocked refreshes the fleet power ledger with a sanitized claim.
func (s *SubFarmer) noteFleetLocked(w transport.WorkerID, power, now int64) {
	if power <= 0 {
		return
	}
	if power > MaxPower {
		power = MaxPower
	}
	e, ok := s.fleet[w]
	if !ok {
		e = &fleetEntry{}
		s.fleet[w] = e
	}
	e.power, e.lastSeen = power, now
}

// fleetPowerLocked sums the live fleet powers, pruning silent entries, and
// clamps the sum into the parent's accepted range. An empty fleet reports
// 1: the sub-farmer itself is alive, and the parent rejects non-positive
// claims.
func (s *SubFarmer) fleetPowerLocked(now int64) int64 {
	ttl := int64(s.cfg.FleetTTL)
	var sum int64
	for w, e := range s.fleet {
		if now-e.lastSeen > ttl {
			delete(s.fleet, w)
			continue
		}
		sum += e.power
		if sum >= MaxPower || sum < 0 { // saturate on overflow
			sum = MaxPower
			break
		}
	}
	if sum < 1 {
		sum = 1
	}
	return sum
}

// RequestWork implements transport.Coordinator for the fleet. When the
// local table is dry it refills from the parent first — the only moment a
// subtree asks the tier above for load balancing.
func (s *SubFarmer) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	s.noteFleetLocked(req.Worker, req.Power, now)
	// Two passes: a dry table refills once, then the inner allocation is
	// retried; a second dry verdict (refill failed or yielded nothing)
	// is surfaced as wait/finished.
	for attempt := 0; attempt < 2; attempt++ {
		if s.finished {
			return transport.WorkReply{Status: transport.WorkFinished, BestCost: s.inner.BestCost()}, nil
		}
		reply, err := s.inner.RequestWork(req)
		if err != nil {
			return reply, err
		}
		if reply.Status == transport.WorkAssigned {
			s.tickCadenceLocked(now)
			return reply, nil
		}
		// Inner says finished ⇒ the local table is dry, which at this
		// tier means "go ask the parent", never "stop the fleet".
		if !s.refillLocked(now) {
			break
		}
	}
	if s.finished {
		return transport.WorkReply{Status: transport.WorkFinished, BestCost: s.inner.BestCost()}, nil
	}
	return transport.WorkReply{Status: transport.WorkWait, BestCost: s.inner.BestCost()}, nil
}

// UpdateInterval implements transport.Coordinator for the fleet: the inner
// farmer applies eq. 14 locally, and the sub-farmer folds upstream on its
// cadence. A local-dry verdict triggers the upstream retire-and-refill
// inline so the fleet never stalls on a drained subtree.
func (s *SubFarmer) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	s.noteFleetLocked(req.Worker, req.Power, now)
	reply, err := s.inner.UpdateInterval(req)
	if err != nil {
		return reply, err
	}
	if reply.Finished {
		// Local table dry: retire the upstream copy (everything it
		// still covered is genuinely explored — see foldUpLocked) and
		// try to pull a fresh sub-range immediately.
		s.refillLocked(now)
	} else {
		s.tickCadenceLocked(now)
	}
	reply.Finished = s.finished
	reply.BestCost = s.inner.BestCost()
	return reply, nil
}

// ReportSolution implements transport.Coordinator for the fleet: rule 2 of
// solution sharing composes up the tree — improvements are pushed to the
// parent immediately, with their leaf path, and the parent's (possibly
// better) verdict is adopted locally so fleet replies always carry the
// global best.
func (s *SubFarmer) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ack, err := s.inner.ReportSolution(req)
	if err != nil {
		return ack, err
	}
	s.pushBestUpLocked()
	ack.BestCost = s.inner.BestCost()
	return ack, nil
}

// Pulse drives the time-based upstream cadence: the runtime (a ticker
// goroutine, the simulator's tick loop, the chaos harness) calls it
// periodically so a quiet fleet still keeps the parent lease alive. After
// global termination it flushes any straggler statistics instead (fleet
// checkpoints that landed after the final fold), so the root's Table 2
// counters converge on the whole tree's totals.
func (s *SubFarmer) Pulse() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	if s.finished {
		s.flushStatsLocked(now)
		return
	}
	if s.bound && now-s.lastFoldNanos >= int64(s.cfg.UpdatePeriod) {
		s.foldUpLocked(now)
	}
}

// upCall runs one parent exchange with the fleet mutex released. Caller
// holds s.mu and has verified the upBusy token is free; upCall returns
// with s.mu re-held. State owned by the token (binding, bestSentUp,
// sent-stats, scratch) is stable across the window; the local table is
// not, and callers must treat pre-call table snapshots accordingly.
func (s *SubFarmer) upCall(f func(up transport.Coordinator)) {
	s.upBusy = true
	s.mu.Unlock()
	f(s.up)
	s.mu.Lock()
	s.upBusy = false
}

// flushStatsLocked ships exploration deltas that accrued after the final
// fold. The binding is gone by now, so the update rides the last (stale)
// id: the parent accumulates statistics deltas before the id lookup, and
// the Known=false verdict is exactly what we expect back. No-op while an
// exchange is in flight or when nothing is pending.
func (s *SubFarmer) flushStatsLocked(now int64) {
	if s.upBusy {
		return
	}
	ec, pc, lc := s.innerStatsLocked()
	if ec == s.sentExplored && pc == s.sentPruned && lc == s.sentLeaves {
		return
	}
	req := transport.UpdateRequest{
		Worker:        s.cfg.ID,
		IntervalID:    s.upID,
		Power:         s.fleetPowerLocked(now),
		ExploredDelta: ec - s.sentExplored,
		PrunedDelta:   pc - s.sentPruned,
		LeavesDelta:   lc - s.sentLeaves,
	}
	s.counters.UpstreamUpdates++
	var err error
	s.upCall(func(up transport.Coordinator) {
		_, err = up.UpdateInterval(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return
	}
	s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
}

// Checkpoint persists the local two-file snapshot and the upstream binding.
func (s *SubFarmer) Checkpoint() error {
	if err := s.inner.Checkpoint(); err != nil {
		return err
	}
	s.mu.Lock()
	b := checkpoint.Binding{Bound: s.bound, ID: s.upID}
	if s.bound {
		b.Interval = s.upIV.Clone()
	}
	store := s.cfg.Store
	s.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.SaveBinding(b)
}

// tickCadenceLocked counts a served fleet message and folds upstream when
// either cadence (message count or time) is due.
func (s *SubFarmer) tickCadenceLocked(now int64) {
	if !s.bound {
		return
	}
	s.sinceMsgs++
	if s.sinceMsgs >= s.cfg.UpdateEvery || now-s.lastFoldNanos >= int64(s.cfg.UpdatePeriod) {
		s.foldUpLocked(now)
	}
}

// foldUpLocked sends the worker-side checkpoint of this tier: the fold
// [frontier, B) of the local INTERVALS, the fleet power, and the
// exploration deltas. The parent's reply is authoritative (eq. 14): the
// local table is restricted to it, which is how inter-subtree rebalancing
// decisions propagate down.
//
// The fold is sound in both directions. Its end is pinned at the last
// known copy end, which never undershoots the parent's (the parent's end
// only shrinks, and every shrink this sub-farmer has seen is reflected
// here), so the parent's stale-copy carve — the farmer-restart repair —
// never misfires on a live subtree. Its beginning is the minimum beginning
// over the local table: everything below it was reported consumed by fleet
// workers, so the parent crediting [old A, frontier) as explored is exact.
func (s *SubFarmer) foldUpLocked(now int64) {
	if !s.bound || s.upBusy {
		return
	}
	if bc, ok := s.batchUpstreamLocked(); ok {
		s.exchangeUpLocked(bc, now, false)
		return
	}
	s.pushBestUpLocked()
	// tableLive is a snapshot: the fleet keeps updating while the RPC is
	// in flight, so the table may drain before the reply lands. The drop
	// branches below stay correct either way (restricting an already
	// empty table is a no-op).
	tableLive := s.inner.FrontierInto(s.scrFront)
	if !tableLive {
		// Empty local table folds to the empty interval [B, B): the
		// parent retires the copy, completing this sub-range.
		s.upIV.BInto(s.scrFront)
	}
	fold := interval.New(s.scrFront, s.upIV.BInto(s.scrB))
	ec, pc, lc := s.innerStatsLocked()
	s.counters.UpstreamUpdates++
	req := transport.UpdateRequest{
		Worker:        s.cfg.ID,
		IntervalID:    s.upID,
		Remaining:     fold,
		Power:         s.fleetPowerLocked(now),
		ExploredDelta: ec - s.sentExplored,
		PrunedDelta:   pc - s.sentPruned,
		LeavesDelta:   lc - s.sentLeaves,
	}
	var (
		reply transport.UpdateReply
		err   error
	)
	s.upCall(func(up transport.Coordinator) {
		reply, err = up.UpdateInterval(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return
	}
	s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
	s.sinceMsgs = 0
	s.lastFoldNanos = now
	s.adoptUpstreamBestLocked(reply.BestCost)
	s.applyFoldVerdictLocked(reply, tableLive)
}

// batchUpstreamLocked reports whether upstream exchanges should coalesce:
// the parent leg implements the batch frame and has not answered "can't
// find method". In-process parents (a *Farmer, the harness interceptor)
// never implement BatchCoordinator — a batch over a function call saves
// nothing — so flat and simulated deployments keep the three-call path
// and its traces unchanged.
func (s *SubFarmer) batchUpstreamLocked() (transport.BatchCoordinator, bool) {
	if s.noBatch {
		return nil, false
	}
	bc, ok := s.up.(transport.BatchCoordinator)
	return bc, ok
}

// isNoBatchErr recognizes an old parent: its rpc server rejects the
// Exchange method by name. Every other error is an ordinary loss.
func isNoBatchErr(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), "can't find")
}

// exchangeUpLocked is foldUpLocked over the coalesced batch frame: one
// round-trip carries the fold, the fleet power, any unsent best solution,
// and — when wantWork is set — the refill request that would otherwise be
// a separate exchange after the retire. Caller holds mu, owns the upBusy
// token window, and has verified s.bound. Returns the reply and whether
// the exchange succeeded.
func (s *SubFarmer) exchangeUpLocked(bc transport.BatchCoordinator, now int64, wantWork bool) (transport.BatchReply, bool) {
	tableLive := s.inner.FrontierInto(s.scrFront)
	if !tableLive {
		s.upIV.BInto(s.scrFront)
	}
	fold := interval.New(s.scrFront, s.upIV.BInto(s.scrB))
	ec, pc, lc := s.innerStatsLocked()
	req := transport.BatchRequest{
		Worker:        s.cfg.ID,
		Power:         s.fleetPowerLocked(now),
		HasFold:       true,
		FoldID:        s.upID,
		Remaining:     fold,
		ExploredDelta: ec - s.sentExplored,
		PrunedDelta:   pc - s.sentPruned,
		LeavesDelta:   lc - s.sentLeaves,
		WantWork:      wantWork,
	}
	if best := s.inner.Best(); best.Cost < s.bestSentUp {
		req.HasReport, req.Cost, req.Path = true, best.Cost, best.Path
		s.counters.UpstreamReports++
	}
	s.counters.UpstreamUpdates++
	if wantWork {
		s.counters.UpstreamRequests++
	}
	s.counters.UpstreamBatches++
	var (
		reply transport.BatchReply
		err   error
	)
	s.upCall(func(transport.Coordinator) {
		reply, err = bc.Exchange(req)
	})
	if err != nil {
		if isNoBatchErr(err) {
			s.noBatch = true
		}
		s.noteUpstreamErrLocked(err)
		return reply, false
	}
	if req.HasReport && req.Cost < s.bestSentUp {
		s.bestSentUp = req.Cost
	}
	s.sentExplored, s.sentPruned, s.sentLeaves = ec, pc, lc
	s.sinceMsgs = 0
	s.lastFoldNanos = now
	s.adoptUpstreamBestLocked(reply.BestCost)
	s.applyFoldVerdictLocked(transport.UpdateReply{
		Finished: reply.Finished,
		Known:    reply.Known,
		Interval: reply.Interval,
	}, tableLive)
	return reply, true
}

// applyFoldVerdictLocked applies the parent's authoritative fold reply —
// shared by the three-call and batch paths, so the drop/restrict
// semantics cannot drift between dialects. Caller still owns the fold
// scratch (scrFront/scrB hold the fold bounds just sent).
func (s *SubFarmer) applyFoldVerdictLocked(reply transport.UpdateReply, tableLive bool) {
	if s.finished = s.finished || reply.Finished; s.finished {
		// Global termination: whatever remains locally is duplicated
		// residue of ground another subtree already proved (the root's
		// union is empty, so every leaf is accounted for). Drop it so
		// the fleet stops instead of re-proving it.
		s.bound = false
		if tableLive {
			s.inner.RestrictTo(interval.Interval{})
		}
		return
	}
	if !reply.Known {
		// The parent no longer tracks the binding. For an empty table
		// that is just the retire racing a completed copy; for a live
		// one it means the lease expired during an outage and the
		// range lives on under other owners — keeping the table would
		// duplicate their work leaf for leaf, so drop it and rejoin
		// through the refill path.
		s.bound = false
		if tableLive {
			s.inner.RestrictTo(interval.Interval{})
			s.counters.DroppedTables++
		}
		return
	}
	if reply.Interval.IsEmpty() {
		// The copy emptied: the normal case is our own retire fold
		// ([B,B) on a drained table); with a live table it means the
		// parent already saw everything we still plan consumed under
		// other owners — duplicated residue, dropped like above.
		s.bound = false
		if tableLive {
			s.inner.RestrictTo(interval.Interval{})
			s.counters.DroppedTables++
		}
		return
	}
	// Restrict the local table to the authoritative copy when it
	// actually cuts something: a tail donated to another subtree, or —
	// after a restart from checkpoint — ground below the frontier the
	// previous incarnation had already reported consumed.
	if reply.Interval.CmpA(s.scrFront) > 0 || reply.Interval.CmpB(s.scrB) < 0 {
		s.inner.RestrictTo(reply.Interval)
		s.counters.Restricts++
	}
	s.upIV = reply.Interval.Clone()
}

// refillLocked handles the dry-table moment: fold the (empty) table up so
// the parent retires the finished copy, then request a fresh sub-range
// with the fleet's aggregate power. Reports whether the local table is
// ready for another allocation attempt.
func (s *SubFarmer) refillLocked(now int64) bool {
	if s.upBusy {
		// Another worker's message is already mid-exchange with the
		// parent; this one waits its turn (WorkWait → retry).
		return false
	}
	if bc, ok := s.batchUpstreamLocked(); ok && s.bound {
		// Coalesced: retire fold and refill in ONE round-trip instead of
		// the fold-then-request pair below.
		reply, ok := s.exchangeUpLocked(bc, now, true)
		if !ok || s.finished || !reply.HasWork {
			// A lost batch, global termination, or a fold verdict that
			// suppressed the work leg; the next fleet message retries.
			return false
		}
		return s.adoptWorkReplyLocked(transport.WorkReply{
			Status:     reply.Status,
			IntervalID: reply.IntervalID,
			Interval:   reply.WorkInterval,
			BestCost:   reply.BestCost,
			Duplicated: reply.Duplicated,
		}, now)
	}
	if s.bound {
		s.foldUpLocked(now)
		if s.bound {
			// The retire fold was lost in transit; the next cadence
			// retries it. Do not stack a second upstream exchange on
			// this fleet message.
			return false
		}
	}
	if s.finished {
		return false
	}
	s.counters.UpstreamRequests++
	req := transport.WorkRequest{
		Worker: s.cfg.ID,
		Power:  s.fleetPowerLocked(now),
	}
	var (
		reply transport.WorkReply
		err   error
	)
	s.upCall(func(up transport.Coordinator) {
		reply, err = up.RequestWork(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return false
	}
	return s.adoptWorkReplyLocked(reply, now)
}

// adoptWorkReplyLocked applies the parent's work assignment — shared by
// the three-call and batch refill paths. Reports whether the local table
// is ready for another allocation attempt.
func (s *SubFarmer) adoptWorkReplyLocked(reply transport.WorkReply, now int64) bool {
	s.adoptUpstreamBestLocked(reply.BestCost)
	switch reply.Status {
	case transport.WorkFinished:
		s.finished = true
		return false
	case transport.WorkAssigned:
		if reply.Interval.IsEmpty() {
			// A crumb split can donate the empty interval; hand it
			// straight back so the parent retires it.
			s.bound, s.upID, s.upIV = true, reply.IntervalID, reply.Interval.Clone()
			s.foldUpLocked(now)
			return false
		}
		s.bound, s.upID, s.upIV = true, reply.IntervalID, reply.Interval.Clone()
		s.inner.Inject(reply.Interval)
		s.sinceMsgs = 0
		s.lastFoldNanos = now
		s.counters.Refills++
		return true
	default:
		return false
	}
}

// pushBestUpLocked ships the local best upstream if the parent has not
// seen it yet, and adopts the parent's verdict. Lost pushes retry on the
// next upstream exchange because bestSentUp only moves on success, and a
// push that finds the token taken skips for the same reason.
func (s *SubFarmer) pushBestUpLocked() {
	if s.upBusy {
		return
	}
	best := s.inner.Best()
	if best.Cost >= s.bestSentUp {
		return
	}
	s.counters.UpstreamReports++
	req := transport.SolutionReport{
		Worker: s.cfg.ID,
		Cost:   best.Cost,
		Path:   best.Path,
	}
	var (
		ack transport.SolutionAck
		err error
	)
	s.upCall(func(up transport.Coordinator) {
		ack, err = up.ReportSolution(req)
	})
	if err != nil {
		s.noteUpstreamErrLocked(err)
		return
	}
	if best.Cost < s.bestSentUp {
		s.bestSentUp = best.Cost
	}
	s.adoptUpstreamBestLocked(ack.BestCost)
}

// adoptUpstreamBestLocked folds a cost learned from the parent into the
// local SOLUTION (rule 3 of solution sharing, composed down the tree). A
// cost the parent already has never needs re-sending.
func (s *SubFarmer) adoptUpstreamBestLocked(cost int64) {
	if cost < s.bestSentUp {
		s.bestSentUp = cost
	}
	s.inner.AdoptBest(cost)
}

// innerStatsLocked reads the fleet's cumulative exploration counters from
// the embedded farmer.
func (s *SubFarmer) innerStatsLocked() (explored, pruned, leaves int64) {
	c := s.inner.Counters()
	return c.ExploredNodes, c.PrunedNodes, c.EvaluatedLeaves
}

var _ transport.Coordinator = (*SubFarmer)(nil)
