package farmer

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// fixedClock is an injectable virtual clock.
type fixedClock struct{ now int64 }

func (c *fixedClock) fn() func() int64 { return func() int64 { return c.now } }

func newTestFarmer(totalLeaves int64, opts ...Option) (*Farmer, *fixedClock) {
	clk := &fixedClock{}
	opts = append(opts, WithClock(clk.fn()))
	return New(interval.FromInt64(0, totalLeaves), opts...), clk
}

// TestInitialAllocationGivesWholeTree: the first requester receives the
// entire root interval (orphans split at A, §4.2).
func TestInitialAllocationGivesWholeTree(t *testing.T) {
	f, _ := newTestFarmer(720)
	reply, err := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != transport.WorkAssigned {
		t.Fatalf("status = %v", reply.Status)
	}
	if !reply.Interval.Equal(interval.FromInt64(0, 720)) {
		t.Fatalf("assigned %v, want [0,720)", reply.Interval)
	}
	if c := f.Counters(); c.WorkAllocations != 1 || c.HandedOffOrphans != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestProportionalPartitioning: a second requester receives a share
// proportional to its power relative to the holder (§4.2).
func TestProportionalPartitioning(t *testing.T) {
	f, _ := newTestFarmer(1000)
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 30})
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Holder power 30, requester 10: holder keeps 3/4 = [0,750),
	// requester gets [750,1000).
	if !r2.Interval.Equal(interval.FromInt64(750, 1000)) {
		t.Fatalf("w2 assigned %v, want [750,1000)", r2.Interval)
	}
	// Holder learns of the shrink at its next update.
	up, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(100, 1000), Power: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Known {
		t.Fatal("holder interval unknown")
	}
	if !up.Interval.Equal(interval.FromInt64(100, 750)) {
		t.Fatalf("holder reconciled to %v, want [100,750)", up.Interval)
	}
}

// TestSelectionPicksLargestDonation: with two candidate intervals the
// selection operator picks the one producing the largest donated part, not
// the largest interval.
func TestSelectionPicksLargestDonation(t *testing.T) {
	f, _ := newTestFarmer(1000)
	// w1 holds [0,1000) with huge power; after w2 takes its share, we
	// have two intervals with different holder powers.
	f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 90})
	f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10}) // gets [900,1000)
	// Candidates for w3 (power 10): interval A = [0,900) holder power 90
	// → donated 900·10/100 = 90; interval B = [900,1000) holder power 10
	// → donated 100·10/20 = 50. A wins despite the bigger holder power.
	r3, err := f.RequestWork(transport.WorkRequest{Worker: "w3", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.Interval.Len().Int64(); got != 90 {
		t.Fatalf("w3 received %v (len %d), want a 90-unit donation", r3.Interval, got)
	}
}

// TestThresholdDuplication: intervals below the threshold are duplicated,
// not split, and the coordinator keeps a single copy (§4.2).
func TestThresholdDuplication(t *testing.T) {
	f, _ := newTestFarmer(100, WithThreshold(big.NewInt(1000)))
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Duplicated {
		t.Fatal("expected duplication below threshold")
	}
	if r2.IntervalID != r1.IntervalID {
		t.Fatalf("duplicate got id %d, holder id %d: must share one copy", r2.IntervalID, r1.IntervalID)
	}
	if !r2.Interval.Equal(r1.Interval) {
		t.Fatalf("duplicate interval %v != original %v", r2.Interval, r1.Interval)
	}
	if card, _ := f.Size(); card != 1 {
		t.Fatalf("INTERVALS cardinality = %d, want 1 (single copy)", card)
	}
	if c := f.Counters(); c.Duplications != 1 {
		t.Fatalf("duplications = %d", c.Duplications)
	}
}

// TestIntersectionAdvancesDuplicates: when one duplicate owner is ahead,
// the lagging owner's update jumps it forward (eq. 14 with A' > A), and the
// overlap is accounted as redundant.
func TestIntersectionAdvancesDuplicates(t *testing.T) {
	f, _ := newTestFarmer(100, WithThreshold(big.NewInt(1000)))
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	// w1 advances to 60.
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(60, 100), Power: 10})
	// w2 reports only 40: its copy must be advanced to 60.
	up, err := f.UpdateInterval(transport.UpdateRequest{Worker: "w2", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(40, 100), Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Interval.Equal(interval.FromInt64(60, 100)) {
		t.Fatalf("lagging duplicate reconciled to %v, want [60,100)", up.Interval)
	}
	red := f.Redundancy()
	if red.RedundantUnits.Int64() != 40 {
		t.Fatalf("redundant units = %s, want 40 (w2 re-covered [0,40))", red.RedundantUnits)
	}
	if red.ConsumedUnits.Int64() != 100 {
		t.Fatalf("consumed units = %s, want 100", red.ConsumedUnits)
	}
}

// TestTerminationDetection: INTERVALS empties exactly when all work is
// reported done, and subsequent requests see Finished (§4.3).
func TestTerminationDetection(t *testing.T) {
	f, _ := newTestFarmer(500)
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	if f.Done() {
		t.Fatal("done before exploration")
	}
	up, _ := f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(500, 500), Power: 10})
	if !up.Finished {
		t.Fatal("update of exhausted interval did not signal finish")
	}
	if !f.Done() {
		t.Fatal("farmer not done after all intervals explored")
	}
	r2, _ := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if r2.Status != transport.WorkFinished {
		t.Fatalf("post-termination request status = %v", r2.Status)
	}
}

// TestSolutionSharing: reports update SOLUTION monotonically and acks carry
// the global best (§4.4).
func TestSolutionSharing(t *testing.T) {
	f, _ := newTestFarmer(100, WithInitialBest(50, nil))
	ack, _ := f.ReportSolution(transport.SolutionReport{Worker: "w1", Cost: 60})
	if ack.Accepted || ack.BestCost != 50 {
		t.Fatalf("worse report ack = %+v", ack)
	}
	ack, _ = f.ReportSolution(transport.SolutionReport{Worker: "w2", Cost: 40, Path: []int{1, 2}})
	if !ack.Accepted || ack.BestCost != 40 {
		t.Fatalf("improving report ack = %+v", ack)
	}
	best := f.Best()
	if best.Cost != 40 || len(best.Path) != 2 {
		t.Fatalf("best = %+v", best)
	}
	if c := f.Counters(); c.SolutionReports != 2 || c.SolutionImprovements != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestWorkerFailureOrphansInterval: a silent worker's interval is orphaned
// after the lease TTL and handed entirely to the next requester with its
// last checkpointed beginning (§4.1).
func TestWorkerFailureOrphansInterval(t *testing.T) {
	f, clk := newTestFarmer(1000, WithLeaseTTL(time.Second))
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	// w1 checkpoints progress to 200, then dies.
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(200, 1000), Power: 10})
	clk.now += int64(2 * time.Second)
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Interval.Equal(interval.FromInt64(200, 1000)) {
		t.Fatalf("w2 received %v, want the orphan [200,1000)", r2.Interval)
	}
	if c := f.Counters(); c.ExpiredOwners != 1 {
		t.Fatalf("expired owners = %d", c.ExpiredOwners)
	}
	// A late update from the resurrected w1 must be rejected as stale.
	up, _ := f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(300, 1000), Power: 10})
	if up.Known {
		t.Fatal("stale interval id accepted after handoff")
	}
}

// TestCheckpointRoundTrip: a farmer snapshot restores INTERVALS and
// SOLUTION exactly (§4.1 farmer failures), with owners cleared (orphans).
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := newTestFarmer(1000, WithCheckpointStore(store), WithInitialBest(77, []int{3, 1, 4}))
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})
	f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(123, 500), Power: 10})
	if err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	g, err := Restore(interval.FromInt64(0, 1000), store, WithClock(func() int64 { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	wantCard, wantLen := f.Size()
	gotCard, gotLen := g.Size()
	if gotCard != wantCard || gotLen.Cmp(wantLen) != 0 {
		t.Fatalf("restored size = (%d,%s), want (%d,%s)", gotCard, gotLen, wantCard, wantLen)
	}
	best := g.Best()
	if best.Cost != 77 || len(best.Path) != 3 {
		t.Fatalf("restored best = %+v", best)
	}
	// Restored intervals are orphans: first requester takes one whole.
	r, _ := g.RequestWork(transport.WorkRequest{Worker: "w9", Power: 5})
	if r.Status != transport.WorkAssigned {
		t.Fatalf("restored farmer cannot assign: %v", r.Status)
	}
}

// TestRestoreWithoutCheckpoint falls back to a fresh farmer.
func TestRestoreWithoutCheckpoint(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := Restore(interval.FromInt64(0, 42), store)
	if err != nil {
		t.Fatal(err)
	}
	if card, total := f.Size(); card != 1 || total.Int64() != 42 {
		t.Fatalf("fresh fallback size = (%d,%s)", card, total)
	}
}

// TestUpdateUnknownInterval: updates for a completed interval report
// Known=false so the worker re-requests.
func TestUpdateUnknownInterval(t *testing.T) {
	f, _ := newTestFarmer(100)
	up, err := f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: 999,
		Remaining: interval.FromInt64(0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if up.Known {
		t.Fatal("unknown interval id accepted")
	}
	if up.Finished {
		t.Fatal("resolution not finished: root interval still present")
	}
}

// TestStatsDeltasAccumulate: explored/pruned/leaf deltas sum into the
// farmer counters (the Table 2 "Explored nodes" row).
func TestStatsDeltasAccumulate(t *testing.T) {
	f, _ := newTestFarmer(100)
	r, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1})
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(10, 100), ExploredDelta: 500, PrunedDelta: 20, LeavesDelta: 30})
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(20, 100), ExploredDelta: 300, PrunedDelta: 5, LeavesDelta: 10})
	c := f.Counters()
	if c.ExploredNodes != 800 || c.PrunedNodes != 25 || c.EvaluatedLeaves != 40 {
		t.Fatalf("counters = %+v", c)
	}
	if c.WorkerCheckpoints != 2 {
		t.Fatalf("worker checkpoints = %d", c.WorkerCheckpoints)
	}
}

// TestInitialBestInfinity: a farmer with no initial bound reports Infinity
// until a solution arrives.
func TestInitialBestInfinity(t *testing.T) {
	f, _ := newTestFarmer(10)
	if f.Best().Cost != bb.Infinity {
		t.Fatalf("initial best = %d", f.Best().Cost)
	}
}

// TestEqualSplitAblation: with WithEqualSplit the partitioning ignores
// powers and cuts in the middle.
func TestEqualSplitAblation(t *testing.T) {
	f, _ := newTestFarmer(1000, WithEqualSplit(true))
	f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 90})
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Interval.Equal(interval.FromInt64(500, 1000)) {
		t.Fatalf("equal split gave %v, want [500,1000)", r2.Interval)
	}
	// Orphan handoff is unaffected: the first request still takes all.
	g, _ := newTestFarmer(100, WithEqualSplit(true))
	r, _ := g.RequestWork(transport.WorkRequest{Worker: "w", Power: 5})
	if !r.Interval.Equal(interval.FromInt64(0, 100)) {
		t.Fatalf("orphan handoff under equal split = %v", r.Interval)
	}
}

// TestWorkRequestsCounter counts every request, assigned or finished.
func TestWorkRequestsCounter(t *testing.T) {
	f, _ := newTestFarmer(10)
	r, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1})
	f.UpdateInterval(transport.UpdateRequest{Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(10, 10), Power: 1})
	f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1}) // finished now
	if c := f.Counters(); c.WorkRequests != 2 || c.WorkAllocations != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestIntervalsSnapshotOrdered: the Figure 5 view lists intervals by id.
func TestIntervalsSnapshotOrdered(t *testing.T) {
	f, _ := newTestFarmer(1000)
	f.RequestWork(transport.WorkRequest{Worker: "a", Power: 1})
	f.RequestWork(transport.WorkRequest{Worker: "b", Power: 1})
	f.RequestWork(transport.WorkRequest{Worker: "c", Power: 1})
	recs := f.IntervalsSnapshot()
	if len(recs) != 3 {
		t.Fatalf("snapshot has %d entries", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ID <= recs[i-1].ID {
			t.Fatalf("snapshot unordered: %v", recs)
		}
	}
}

// TestNegativePowerRejected: the protocol guards its input.
func TestNegativePowerRejected(t *testing.T) {
	f, _ := newTestFarmer(10)
	if _, err := f.RequestWork(transport.WorkRequest{Worker: "w", Power: -1}); err == nil {
		t.Fatal("negative power accepted")
	}
}

// TestCheckpointWithoutStore errors loudly instead of silently dropping
// the paper's fault-tolerance guarantee.
func TestCheckpointWithoutStore(t *testing.T) {
	f, _ := newTestFarmer(10)
	if err := f.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a store accepted")
	}
}

// TestUpdateIntervalAllocationBudget guards the alloc-free checkpoint loop:
// one full update round — request construction, the farmer's redundancy
// accounting and in-place intersection, and the escaping reply copy — must
// stay within a small constant allocation budget. Before the borrow-style
// interval accessors the farmer alone allocated roughly a dozen big.Ints
// per checkpoint; now the only per-round allocations left are the wire
// values that genuinely escape (the request's Remaining and the reply's
// intersected copy).
func TestUpdateIntervalAllocationBudget(t *testing.T) {
	root := interval.New(new(big.Int), big.NewInt(1<<40))
	f := New(root)
	reply, err := f.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	cur := reply.Interval
	a := cur.A()
	step := big.NewInt(1000)
	allocs := testing.AllocsPerRun(200, func() {
		a.Add(a, step)
		rem := interval.New(a, cur.B())
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: reply.IntervalID, Remaining: rem, Power: 1, ExploredDelta: 100,
		}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("allocations per checkpoint round = %v, want <= 10", allocs)
	}
}
