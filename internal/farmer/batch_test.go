package farmer_test

import (
	"net"
	"net/rpc"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/transport"
	"repro/internal/worker"
)

// legacyCoordinator re-creates the PR-6 service surface for the
// mixed-version matrix: the three-call protocol over plain text-gob,
// no Exchange method, no dialect sniff.
type legacyCoordinator struct{ coord transport.Coordinator }

func (l *legacyCoordinator) RequestWork(req *transport.WorkRequest, reply *transport.WorkReply) error {
	r, err := l.coord.RequestWork(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

func (l *legacyCoordinator) UpdateInterval(req *transport.UpdateRequest, reply *transport.UpdateReply) error {
	r, err := l.coord.UpdateInterval(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

func (l *legacyCoordinator) ReportSolution(req *transport.SolutionReport, reply *transport.SolutionAck) error {
	r, err := l.coord.ReportSolution(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

func legacyServe(t *testing.T, coord transport.Coordinator) string {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName("GridBB", &legacyCoordinator{coord}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(c)
		}
	}()
	return ln.Addr().String()
}

// tcpRunResult is everything a mixed-version run must reproduce exactly.
type tcpRunResult struct {
	cost     int64
	explored int64
	counters farmer.SubCounters
}

// runSubtreeOverTCP resolves one instance with a compact-dialect
// sub-farmer whose root speaks either the current wire (compact +
// Exchange) or the PR-6 text-gob three-call protocol. The fleet is driven
// on one goroutine under a virtual clock, so two identical runs must
// produce identical results and identical protocol counter trails.
func runSubtreeOverTCP(t *testing.T, legacyRoot bool) tcpRunResult {
	t.Helper()
	ins := flowshop.Taillard(10, 6, 13)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	nb := core.NewNumbering(factory().Shape())
	root := farmer.New(nb.RootRange())

	var addr string
	if legacyRoot {
		addr = legacyServe(t, root)
	} else {
		srv, err := transport.ServeWith(root, "127.0.0.1:0", transport.ServerOptions{WireRef: nb.RootRange()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addr = srv.Addr()
	}

	up := transport.NewRedialWith(addr, transport.DialOptions{
		Compact: true,
		Policy:  transport.Policy{Timeout: 30 * time.Second},
	})
	t.Cleanup(func() { up.Close() })

	var now int64
	sub := farmer.NewSubFarmer(farmer.SubConfig{
		ID:           "sub",
		UpdateEvery:  4,
		UpdatePeriod: time.Hour, // the message cadence drives all folds
		FleetTTL:     time.Hour,
		Clock:        func() int64 { return now },
	}, up)

	sessions := []*worker.Session{
		worker.NewSession(worker.Config{ID: "w0", Power: 3, UpdatePeriodNodes: 64}, sub, factory()),
		worker.NewSession(worker.Config{ID: "w1", Power: 5, UpdatePeriodNodes: 96}, sub, factory()),
	}
	const maxSteps = 200_000
	for step := 0; step < maxSteps && !sub.Finished(); step++ {
		now += int64(time.Second)
		if _, _, err := sessions[step%len(sessions)].Advance(128); err != nil {
			t.Fatal(err)
		}
	}
	if !sub.Finished() {
		t.Fatalf("subtree did not finish within %d steps", maxSteps)
	}
	return tcpRunResult{
		cost:     root.Best().Cost,
		explored: root.Counters().ExploredNodes,
		counters: sub.Counters(),
	}
}

// TestSubFarmerBatchesUpstreamOverTCP: against a current root, the
// sub-farmer's folds coalesce into Exchange round-trips — the batch
// counter moves, round-trips stay well under the legs they carried, and
// the resolution still proves the sequential optimum.
func TestSubFarmerBatchesUpstreamOverTCP(t *testing.T) {
	want, _ := bb.Solve(flowshop.NewProblem(flowshop.Taillard(10, 6, 13), flowshop.BoundOneMachine, flowshop.PairsAll), bb.Infinity)
	res := runSubtreeOverTCP(t, false)
	if res.cost != want.Cost {
		t.Fatalf("batched subtree proved %d, sequential optimum is %d", res.cost, want.Cost)
	}
	c := res.counters
	if c.UpstreamBatches == 0 {
		t.Fatal("no Exchange round-trips against a batch-capable root")
	}
	legs := c.UpstreamUpdates + c.UpstreamRequests + c.UpstreamReports
	if c.UpstreamBatches >= legs {
		t.Fatalf("batching saved nothing: %d round-trips for %d legs (%+v)", c.UpstreamBatches, legs, c)
	}
	if c.UpstreamLost != 0 {
		t.Fatalf("lost %d upstream exchanges on loopback (%+v)", c.UpstreamLost, c)
	}
}

// TestSubFarmerFallsBackUnderLegacyRoot is the mixed-version scenario of
// DESIGN.md §11: a compact-codec sub-farmer under a text-gob PR-6 root.
// The dial falls back to gob, the first Exchange probe is answered with
// the can't-find error, latches the three-call path, AND replays its legs
// over the three calls in the same cadence — the probe is a dialect
// discovery, not a loss, so it shows up in neither UpstreamBatches nor
// UpstreamLost and costs the tree no fold. Run twice: the driver is
// single-threaded under a virtual clock, so the two runs must match
// result for result and counter for counter.
func TestSubFarmerFallsBackUnderLegacyRoot(t *testing.T) {
	want, _ := bb.Solve(flowshop.NewProblem(flowshop.Taillard(10, 6, 13), flowshop.BoundOneMachine, flowshop.PairsAll), bb.Infinity)
	first := runSubtreeOverTCP(t, true)
	if first.cost != want.Cost {
		t.Fatalf("legacy-root subtree proved %d, sequential optimum is %d", first.cost, want.Cost)
	}
	c := first.counters
	if c.UpstreamBatches != 0 {
		t.Fatalf("the rejected Exchange probe must not count as a delivered batch, saw %d (%+v)", c.UpstreamBatches, c)
	}
	if c.UpstreamLost != 0 {
		t.Fatalf("the rejected probe is a dialect discovery, not a loss, saw %d (%+v)", c.UpstreamLost, c)
	}

	second := runSubtreeOverTCP(t, true)
	if first != second {
		t.Fatalf("mixed-version run is not reproducible:\n first: %+v\nsecond: %+v", first, second)
	}
}
