// The coordinator boundary: shape validation of every inbound protocol
// message, following PR 5's power-claim discipline — enforce at the
// boundary, reject-and-count, never store. The transport layer already
// bounds whole messages in bytes; this layer bounds the fields gob will
// happily decode within that budget (a quarter-megabyte bignum interval, a
// hundred-thousand-element path, a worker id used as a storage channel)
// and, when the farmer knows its root range, pins every inbound interval
// inside it.
//
// What this layer deliberately does NOT defend: progress honesty. A peer
// that presents a valid interval id is trusted as that interval's owner,
// and an owner's report of its remaining interval is taken at face value —
// that trust is the paper's model (§4.1), and identity is the TLS layer's
// job. The boundary bounds message shape, not truthfulness.
package farmer

import (
	"fmt"
	"math/big"

	"repro/internal/interval"
	"repro/internal/transport"
)

const (
	// MaxWorkerIDBytes bounds the worker-chosen identifier. Hostnames,
	// pids and indices fit in a fraction of this; anything longer is a
	// peer using the id as a payload channel.
	MaxWorkerIDBytes = 128
	// MaxPathLen bounds a solution path's rank count. Tree depth equals
	// path length, and no instance the coding targets is thousands of
	// levels deep.
	MaxPathLen = 1 << 12
	// MaxIntervalBits bounds the bit length of an inbound interval's
	// bounds. Node numbers grow with the factorial of the tree depth —
	// 500! is about 3700 bits — so 2^16 bits of headroom accepts any
	// plausible instance while rejecting megabyte bignums long before a
	// comparison walks them.
	MaxIntervalBits = 1 << 16
)

// bigZero is the read-only lower bound of every valid node number.
var bigZero = new(big.Int)

// truncID renders a worker id for error messages without echoing a
// hostile payload back at full length.
func truncID(w transport.WorkerID) string {
	if len(w) > 32 {
		return string(w[:32]) + "..."
	}
	return string(w)
}

// vetWorkerLocked bounds the worker identifier; it returns a non-empty
// reason on rejection and charges OversizeMessages. The per-operation
// rejection counter is the call site's responsibility.
func (f *Farmer) vetWorkerLocked(w transport.WorkerID) string {
	if len(w) > MaxWorkerIDBytes {
		f.counters.OversizeMessages++
		return fmt.Sprintf("worker id of %d bytes exceeds %d", len(w), MaxWorkerIDBytes)
	}
	return ""
}

// vetIntervalLocked checks one inbound interval's shape: bounded bit
// length always; when the farmer knows its root range (rootLo/rootHi set),
// non-empty intervals must lie within it. Empty intervals pass on content
// — an empty remainder is the normal "I finished" checkpoint, and
// sub-farmer stat flushes carry zero-value intervals by design. Error
// messages carry sizes, never the hostile values themselves.
func (f *Farmer) vetIntervalLocked(iv interval.Interval) string {
	if iv.MaxBitLen() > MaxIntervalBits {
		f.counters.OversizeMessages++
		return fmt.Sprintf("interval bounds of %d bits exceed %d", iv.MaxBitLen(), MaxIntervalBits)
	}
	if iv.IsEmpty() {
		return ""
	}
	if f.rootLo != nil && f.rootHi != nil {
		if iv.CmpA(f.rootLo) < 0 || iv.CmpB(f.rootHi) > 0 {
			return "interval outside the root range"
		}
		return ""
	}
	// No root knowledge (a sub-farmer's inner table grows by upstream
	// grants): structural checks only.
	if iv.CmpA(bigZero) < 0 {
		return "negative interval beginning"
	}
	return ""
}

// vetUpdateLocked validates an UpdateRequest before any of its fields
// reach farmer state. Stats deltas are accumulated into global counters,
// so a negative delta is a hostile attempt to unwind them.
func (f *Farmer) vetUpdateLocked(req transport.UpdateRequest) string {
	if reason := f.vetWorkerLocked(req.Worker); reason != "" {
		return reason
	}
	if req.ExploredDelta < 0 || req.PrunedDelta < 0 || req.LeavesDelta < 0 {
		return "negative progress delta"
	}
	return f.vetIntervalLocked(req.Remaining)
}

// vetReportLocked validates a SolutionReport before it can touch SOLUTION.
func (f *Farmer) vetReportLocked(req transport.SolutionReport) string {
	if reason := f.vetWorkerLocked(req.Worker); reason != "" {
		return reason
	}
	if len(req.Path) > MaxPathLen {
		f.counters.OversizeMessages++
		return fmt.Sprintf("path of %d ranks exceeds %d", len(req.Path), MaxPathLen)
	}
	for _, r := range req.Path {
		if r < 0 {
			return "negative rank in path"
		}
	}
	return ""
}
