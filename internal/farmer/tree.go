// The 2-level farmer tree (DESIGN.md §9): a root farmer whose "workers"
// are sub-farmers, each serving its own fleet over the unchanged protocol.
// Tree is the in-process wiring used by gridbb.Solve, the grid simulator
// and the benchmarks; multi-process deployments wire the same pieces over
// TCP with cmd/farmer (root) and cmd/subfarmer (mid tier) instead.
package farmer

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// TreeConfig parameterizes a 2-level farmer tree.
type TreeConfig struct {
	// Subtrees is the number of sub-farmers. Minimum 1 (a degenerate
	// tree, useful mainly in tests).
	Subtrees int
	// SubUpdateEvery and SubUpdatePeriod set the sub→root fold cadences
	// (see SubConfig).
	SubUpdateEvery  int64
	SubUpdatePeriod time.Duration
	// FleetTTL is the sub-farmers' fleet power TTL.
	FleetTTL time.Duration
	// SubLowWater arms each sub-farmer's work-conserving refill rule
	// (SubConfig.LowWater): refill before the local table runs dry when
	// the root's steal hints promise work elsewhere. Nil keeps the
	// strict refill-on-dry rule. Pair it with WithStealHints (and
	// optionally WithEndgameThreshold) in RootOptions — without hints
	// the rule stays dormant.
	SubLowWater *big.Int
	// Clock is shared by the root and every sub-farmer. Default wall
	// clock.
	Clock func() int64
	// RootOptions configure the root farmer; InnerOptions every
	// sub-farmer's embedded farmer. The clock is appended automatically.
	RootOptions, InnerOptions []Option
	// StoreFor, when set, supplies each sub-farmer's checkpoint store.
	StoreFor func(i int) *checkpoint.Store
	// Upstream, when set, wraps the root as seen by the sub-farmers —
	// the hook the chaos harness uses to interpose fault injection and
	// conformance tracking on the coordinator-to-coordinator legs.
	// Default: the sub-farmers call the root directly.
	Upstream func(root *Farmer) transport.Coordinator
}

// Tree is a root farmer plus its sub-farmers.
type Tree struct {
	Root *Farmer
	Subs []*SubFarmer
}

// NewTree builds the tree over the root interval. Sub-farmers start with
// empty tables; the first fleet request on each pulls its first sub-range
// from the root, and from then on the root only arbitrates inter-subtree
// rebalancing — its per-request cost depends on the subtree count, never
// on the fleet size.
func NewTree(root interval.Interval, cfg TreeConfig) *Tree {
	if cfg.Subtrees < 1 {
		cfg.Subtrees = 1
	}
	rootOpts := append([]Option{}, cfg.RootOptions...)
	if cfg.Clock != nil {
		rootOpts = append(rootOpts, WithClock(cfg.Clock))
	}
	t := &Tree{Root: New(root, rootOpts...)}
	var up transport.Coordinator = t.Root
	if cfg.Upstream != nil {
		up = cfg.Upstream(t.Root)
	}
	for i := 0; i < cfg.Subtrees; i++ {
		sc := SubConfig{
			ID:           transport.WorkerID(fmt.Sprintf("sub-%d", i)),
			UpdateEvery:  cfg.SubUpdateEvery,
			UpdatePeriod: cfg.SubUpdatePeriod,
			FleetTTL:     cfg.FleetTTL,
			LowWater:     cfg.SubLowWater,
			Clock:        cfg.Clock,
			InnerOptions: cfg.InnerOptions,
		}
		if cfg.StoreFor != nil {
			sc.Store = cfg.StoreFor(i)
		}
		t.Subs = append(t.Subs, NewSubFarmer(sc, up))
	}
	return t
}

// Sub returns the i-th sub-farmer's fleet-facing coordinator; workers are
// attached round-robin (or by domain) across subs.
func (t *Tree) Sub(i int) *SubFarmer { return t.Subs[i%len(t.Subs)] }

// Pulse drives every sub-farmer's time-based upstream cadence once.
func (t *Tree) Pulse() {
	for _, s := range t.Subs {
		s.Pulse()
	}
}

// Done reports global termination: the root's INTERVALS is empty (§4.3,
// unchanged — sub-farmer tables drain into their root copies first).
func (t *Tree) Done() bool { return t.Root.Done() }

// Best returns the root SOLUTION — cost and leaf path, since improvements
// are pushed up with their paths.
func (t *Tree) Best() bb.Solution { return t.Root.Best() }
