package farmer

import (
	"encoding/binary"
	"math/big"
	"testing"

	"repro/internal/interval"
	"repro/internal/transport"
)

// FuzzCoordinatorBoundary throws an adversarial message stream at a live
// farmer: interleaved honest protocol rounds and hostile
// WorkRequest/UpdateRequest/SolutionReport shapes — out-of-root and
// reversed intervals, huge bignums, negative ids and deltas, oversize
// paths and worker ids — all derived from the fuzz input. After every
// message the INTERVALS table must still be a partition fragment (pairwise
// disjoint, inside the root), the farmer must never panic, and the
// provably hostile probes must land in the rejection counters.
func FuzzCoordinatorBoundary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("hostile-peer-stream-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Add(binary.BigEndian.AppendUint64(nil, 1<<63-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		const rootEnd = 1_000_000_000
		root := interval.FromInt64(0, rootEnd)
		var now int64
		fm := New(root, WithClock(func() int64 { now += 1e6; return now }))

		// next pulls bytes off the stream; exhausted input yields zeros,
		// so every prefix is a valid (if quiet) scenario.
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		nextInt64 := func() int64 {
			var v uint64
			for i := 0; i < 8; i++ {
				v = v<<8 | uint64(next())
			}
			return int64(v)
		}

		// Interval ids observed from honest assignments: hostile updates
		// reuse them half the time, so the deep paths (intersection,
		// stale-tail carve, re-admission) stay reachable.
		var ids []int64
		knownBad := 0

		checkInvariant := func() {
			t.Helper()
			set := interval.NewSet()
			for _, rec := range fm.IntervalsSnapshot() {
				if rec.Interval.IsEmpty() {
					continue
				}
				if !root.ContainsInterval(rec.Interval) {
					t.Fatalf("tracked interval %v escaped the root", rec.Interval)
				}
				if ov := set.Add(rec.Interval); ov.Sign() != 0 {
					t.Fatalf("tracked intervals overlap by %s units", ov)
				}
			}
		}

		steps := 64
		for s := 0; s < steps; s++ {
			op := next() % 8
			switch op {
			case 0, 1: // honest request
				r, err := fm.RequestWork(transport.WorkRequest{
					Worker: transport.WorkerID([]byte{'h', next() % 4}),
					Power:  1 + int64(next()%16),
				})
				if err == nil && r.Status == transport.WorkAssigned {
					ids = append(ids, r.IntervalID)
				}
			case 2, 3: // hostile-ish update
				id := nextInt64()
				if len(ids) > 0 && next()%2 == 0 {
					id = ids[int(next())%len(ids)]
				}
				lo, hi := nextInt64()%(2*rootEnd), nextInt64()%(2*rootEnd)
				rem := interval.New(big.NewInt(lo), big.NewInt(hi))
				if next()%8 == 0 {
					// A megabyte bignum bound: always rejected.
					rem = interval.New(big.NewInt(0), new(big.Int).Lsh(big.NewInt(1), MaxIntervalBits+1))
					knownBad++
				} else if lo >= 0 && lo < hi && hi > rootEnd {
					knownBad++ // non-empty, end beyond the root: always rejected
				}
				fm.UpdateInterval(transport.UpdateRequest{
					Worker:        transport.WorkerID([]byte{'h', next() % 4}),
					IntervalID:    id,
					Remaining:     rem,
					Power:         nextInt64() % 100,
					ExploredDelta: int64(next()),
				})
			case 4: // hostile report
				path := make([]int, int(next())%8)
				for i := range path {
					path[i] = int(int8(next()))
				}
				if next()%4 == 0 {
					path = make([]int, MaxPathLen+1)
					knownBad++
				}
				fm.ReportSolution(transport.SolutionReport{
					Worker: transport.WorkerID([]byte{'r', next() % 4}),
					Cost:   nextInt64(),
					Path:   path,
				})
			case 5: // negative-delta update: always rejected
				fm.UpdateInterval(transport.UpdateRequest{
					Worker:        "neg",
					IntervalID:    nextInt64(),
					ExploredDelta: -1 - int64(next()),
				})
				knownBad++
			case 6: // oversize worker id: always rejected
				long := make([]byte, MaxWorkerIDBytes+1+int(next()))
				fm.RequestWork(transport.WorkRequest{Worker: transport.WorkerID(long), Power: 1})
				knownBad++
			case 7: // hostile request power
				fm.RequestWork(transport.WorkRequest{
					Worker: transport.WorkerID([]byte{'p', next() % 4}),
					Power:  -nextInt64(),
				})
			}
			checkInvariant()
		}

		c := fm.Counters()
		rejected := c.RejectedIntervals + c.RejectedReports + c.OversizeMessages
		if knownBad > 0 && rejected == 0 {
			t.Fatalf("%d provably hostile probes sent, rejection counters never advanced", knownBad)
		}
	})
}
