package farmer

import (
	"math"
	"math/big"

	"repro/internal/transport"
)

// This file is the farmer's scalability layer (DESIGN.md §8): the selection
// index answering the §4.2 selection operator in O(G·log W) instead of a
// full O(W) scan over INTERVALS (W tracked intervals, G distinct holder
// powers — a handful on a real pool, where host speeds come in classes),
// and the lease heap answering "is any owner expirable?" with one peek
// instead of an O(W·owners) sweep per request. Both preserve the seed
// semantics exactly — selection decisions are byte-identical to the linear
// scan, pinned by the oracle test in index_oracle_test.go.
//
// Why the index is grouped by holder power: the donated length
//
//	donated(len, hp, rp) = ⌊len·rp/(hp+rp)⌋   (len when hp ≤ 0)
//
// depends on the requester power rp, which differs per request, so no
// single static order over INTERVALS ranks candidates for every rp (two
// intervals can swap order as rp grows). Within one holder-power class,
// though, donated is non-decreasing in len for every rp, so the class
// winner is always a maximum-length entry — an O(log W) treap lookup — and
// only one donated evaluation per class is needed. Ties are the delicate
// part: ⌊·⌋ collapses a whole run of lengths onto the same donated value,
// and the seed scan breaks such ties by smallest id across ALL of
// INTERVALS. The treap is therefore keyed (len, id) and augmented with the
// subtree-minimum id, so "smallest id among entries of length ≥ L" — the
// exact achiever set of the class maximum, L = ⌈D·(hp+rp)/rp⌉ — is one
// O(log W) descent.

// selNode is one treap entry. The treap is keyed by (t.idxLen, t.id)
// ascending and heap-ordered by pri; minID is the smallest tracked id in
// the subtree, maintained by every rotation and merge.
type selNode struct {
	t           *tracked
	left, right *selNode
	pri         uint64
	minID       int64
}

// update recomputes the minID augmentation from the children.
func (n *selNode) update() {
	m := n.t.id
	if n.left != nil && n.left.minID < m {
		m = n.left.minID
	}
	if n.right != nil && n.right.minID < m {
		m = n.right.minID
	}
	n.minID = m
}

// cmpKey orders the search key (length, id) against a node's key.
func cmpKey(length *big.Int, id int64, n *selNode) int {
	if c := length.Cmp(n.t.idxLen); c != 0 {
		return c
	}
	switch {
	case id < n.t.id:
		return -1
	case id > n.t.id:
		return 1
	}
	return 0
}

func rotateRight(n *selNode) *selNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft(n *selNode) *selNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// insertNode inserts n (its key fields already set) and returns the new
// root. n is always a fresh or freshly detached node: its children are
// overwritten.
func insertNode(root, n *selNode) *selNode {
	if root == nil {
		n.left, n.right = nil, nil
		n.update()
		return n
	}
	if cmpKey(n.t.idxLen, n.t.id, root) < 0 {
		root.left = insertNode(root.left, n)
		if root.left.pri > root.pri {
			root = rotateRight(root)
		} else {
			root.update()
		}
	} else {
		root.right = insertNode(root.right, n)
		if root.right.pri > root.pri {
			root = rotateLeft(root)
		} else {
			root.update()
		}
	}
	return root
}

// deleteNode removes the node with the given key and returns the new root
// and the detached node (nil if absent). The detached node is returned so
// re-keying reuses it — the steady-state checkpoint loop allocates nothing.
func deleteNode(root *selNode, length *big.Int, id int64) (*selNode, *selNode) {
	if root == nil {
		return nil, nil
	}
	var removed *selNode
	switch c := cmpKey(length, id, root); {
	case c < 0:
		root.left, removed = deleteNode(root.left, length, id)
	case c > 0:
		root.right, removed = deleteNode(root.right, length, id)
	default:
		return mergeNodes(root.left, root.right), root
	}
	root.update()
	return root, removed
}

// mergeNodes joins two treaps where every key of l precedes every key of r.
func mergeNodes(l, r *selNode) *selNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.pri > r.pri {
		l.right = mergeNodes(l.right, r)
		l.update()
		return l
	}
	r.left = mergeNodes(l, r.left)
	r.update()
	return r
}

// maxNode returns the rightmost node: the class's longest interval (largest
// id among equals — irrelevant, only its length is read).
func maxNode(root *selNode) *selNode {
	for root.right != nil {
		root = root.right
	}
	return root
}

// minIDAtLeast returns the smallest tracked id among entries with length ≥
// minLen. In key order those entries form a suffix: a node below the bound
// sends the walk right; a node at or above it contributes itself and its
// whole right subtree (one augmented read) and sends the walk left.
func minIDAtLeast(root *selNode, minLen *big.Int) (int64, bool) {
	var best int64
	found := false
	take := func(id int64) {
		if !found || id < best {
			best, found = id, true
		}
	}
	for n := root; n != nil; {
		if n.t.idxLen.Cmp(minLen) < 0 {
			n = n.right
			continue
		}
		take(n.t.id)
		if n.right != nil {
			take(n.right.minID)
		}
		n = n.left
	}
	return best, found
}

// selIndex indexes the tracked intervals for the selection operator and
// keeps the INTERVALS length total incrementally (the farmer's Size and
// checkpoint totals never re-sum the table).
type selIndex struct {
	groups map[int64]*selNode // holder power → treap over (len, id)
	total  *big.Int           // Σ len of all indexed intervals
	// powerSum is Σ idxHP over all indexed intervals: the fleet power
	// currently attached to this table, maintained at the same three
	// mutation points as total. The multi-tenant fair-share rule reads it
	// per request (jobs.Table), so it must be O(1), not a table sweep.
	// Holder powers are clamped at MaxPower and the entry count is
	// bounded by tracked intervals, so the sum stays far from overflow.
	powerSum int64

	rng uint64 // deterministic treap priorities (splitmix64)

	// Scratch big.Ints: selection runs entirely on these, allocating
	// nothing per request.
	scrLen, scrBest, scrCand, scrBound, scrW *big.Int
}

func newSelIndex() *selIndex {
	return &selIndex{
		groups:   make(map[int64]*selNode),
		total:    new(big.Int),
		rng:      0x9e3779b97f4a7c15,
		scrLen:   new(big.Int),
		scrBest:  new(big.Int),
		scrCand:  new(big.Int),
		scrBound: new(big.Int),
		scrW:     new(big.Int),
	}
}

// nextPri draws the next deterministic treap priority (splitmix64; the
// fixed seed keeps runs reproducible — the shape only affects speed, never
// decisions).
func (x *selIndex) nextPri() uint64 {
	x.rng += 0x9e3779b97f4a7c15
	z := x.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// setRoot writes a group's new root back, dropping the class when it
// drained.
func (x *selIndex) setRoot(hp int64, root *selNode) {
	if root == nil {
		delete(x.groups, hp)
		return
	}
	x.groups[hp] = root
}

// insert indexes a freshly tracked interval, caching its key (length,
// holder power) on the tracked entry itself so later removals and re-keys
// can find it whatever has mutated since.
func (x *selIndex) insert(t *tracked) {
	t.idxLen = t.iv.Len()
	t.idxHP = t.holderPower()
	x.setRoot(t.idxHP, insertNode(x.groups[t.idxHP], &selNode{t: t, pri: x.nextPri()}))
	x.total.Add(x.total, t.idxLen)
	x.powerSum += t.idxHP
}

// remove unindexes a retired interval.
func (x *selIndex) remove(t *tracked) {
	root, _ := deleteNode(x.groups[t.idxHP], t.idxLen, t.id)
	x.setRoot(t.idxHP, root)
	x.total.Sub(x.total, t.idxLen)
	x.powerSum -= t.idxHP
}

// fix re-keys t after any mutation that may have changed its length (the
// intersection operator, the partitioning operator) or its holder power
// (owner added, expired, re-admitted or re-weighted). Callers may batch
// several mutations under one fix: the node is located by the cached key,
// not the current state. No-ops when the key is unchanged, which keeps the
// steady-state update path at one O(log W) re-key for the length shrink.
func (x *selIndex) fix(t *tracked) {
	hp := t.holderPower()
	t.iv.LenInto(x.scrLen)
	if hp == t.idxHP && x.scrLen.Cmp(t.idxLen) == 0 {
		return
	}
	root, n := deleteNode(x.groups[t.idxHP], t.idxLen, t.id)
	x.setRoot(t.idxHP, root)
	x.total.Sub(x.total, t.idxLen)
	x.powerSum += hp - t.idxHP
	t.idxLen.Set(x.scrLen)
	t.idxHP = hp
	if n == nil {
		// Defensive: a tracked entry that was never indexed (cannot
		// happen through the farmer's mutation points).
		n = &selNode{t: t}
	}
	n.pri = x.nextPri()
	x.setRoot(hp, insertNode(x.groups[hp], n))
	x.total.Add(x.total, t.idxLen)
}

// donatedInto mirrors Farmer.donatedLength on a cached length: the donated
// part a requester of power rp would receive from a holder class of power
// hp, floor semantics and all.
func (x *selIndex) donatedInto(dst, length *big.Int, hp, rp int64) *big.Int {
	if hp <= 0 {
		return dst.Set(length)
	}
	if rp <= 0 {
		return dst.SetInt64(0)
	}
	dst.Mul(length, x.scrW.SetInt64(rp))
	return dst.Quo(dst, x.scrW.SetInt64(hp+rp))
}

// classWinner returns the smallest id in the class achieving donated d (the
// class maximum, computed from its longest entry).
func (x *selIndex) classWinner(root *selNode, hp, rp int64, d *big.Int) (int64, bool) {
	var minLen *big.Int
	switch {
	case hp <= 0:
		// donated == len exactly: achievers are the maximum-length run.
		minLen = d
	case rp <= 0:
		// Every entry donates 0: the whole class ties.
		minLen = x.scrBound.SetInt64(0)
	default:
		// donated(len) == d ⇔ len·rp ≥ d·(hp+rp) ⇔ len ≥ ⌈d·(hp+rp)/rp⌉
		// (the upper end is free: d is the class maximum).
		x.scrBound.Mul(d, x.scrW.SetInt64(hp+rp))
		x.scrBound.Add(x.scrBound, x.scrW.SetInt64(rp-1))
		x.scrBound.Quo(x.scrBound, x.scrW.SetInt64(rp))
		minLen = x.scrBound
	}
	return minIDAtLeast(root, minLen)
}

// selectBest answers the selection operator for a requester of power rp:
// the id of the tracked interval with the greatest donated length, ties
// broken by smallest id — byte-identical to the seed linear scan. One
// donated evaluation and at most one augmented descent per holder-power
// class; the map iteration order is irrelevant because max-then-min-id is
// order-free.
func (x *selIndex) selectBest(rp int64) (int64, bool) {
	found := false
	var bestID int64
	for hp, root := range x.groups {
		d := x.donatedInto(x.scrCand, maxNode(root).t.idxLen, hp, rp)
		c := 1
		if found {
			c = d.Cmp(x.scrBest)
		}
		if c < 0 {
			continue
		}
		id, ok := x.classWinner(root, hp, rp, d)
		if !ok {
			continue
		}
		if c > 0 {
			x.scrBest.Set(d)
			bestID = id
			found = true
		} else if id < bestID {
			bestID = id
		}
	}
	return bestID, found
}

// leaseEntry is one scheduled owner-expiry check. Entries are lazy: the
// owner may have reported since the push (re-push at its newer deadline) or
// been dropped, replaced, or retired with its interval (pointer identity
// mismatch — discard). No heap operation happens on the per-checkpoint
// message path; owners pay one push at admission and amortized one
// pop+push per lease period.
type leaseEntry struct {
	deadline int64
	t        *tracked
	w        transport.WorkerID
	o        *owner
}

// leaseHeap is a plain min-heap on deadline. The top is the farmer's
// next-expiry watermark: when it has not passed, the whole expiry sweep is
// one comparison.
type leaseHeap []leaseEntry

func (h *leaseHeap) push(e leaseEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].deadline <= s[i].deadline {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *leaseHeap) pop() leaseEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = leaseEntry{} // release the pointers
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].deadline < s[m].deadline {
			m = l
		}
		if r < n && s[r].deadline < s[m].deadline {
			m = r
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// pushLease schedules the owner's next possible expiry. A zero lease TTL
// disables the mechanism entirely, exactly like the seed sweep.
func (f *Farmer) pushLease(t *tracked, w transport.WorkerID, o *owner) {
	if f.leaseTTL <= 0 {
		return
	}
	deadline := o.lastSeen + f.leaseTTL
	if deadline < o.lastSeen { // saturate on overflow
		deadline = math.MaxInt64
	}
	f.lease.push(leaseEntry{deadline: deadline, t: t, w: w, o: o})
}
