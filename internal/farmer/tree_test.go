package farmer_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/transport"
	"repro/internal/tsp"
	"repro/internal/worker"
)

// treeDomains is the Table 3 matrix the tree must prove optima on.
var treeDomains = []struct {
	name    string
	factory func() bb.Problem
}{
	{"flowshop", func() bb.Problem {
		return flowshop.NewProblem(flowshop.Taillard(10, 6, 13), flowshop.BoundOneMachine, flowshop.PairsAll)
	}},
	{"tsp", func() bb.Problem { return tsp.NewProblem(tsp.RandomEuclidean(9, 150, 6)) }},
	{"qap", func() bb.Problem { return qap.NewProblem(qap.Random(7, 12, 5)) }},
	{"knapsack", func() bb.Problem { return knapsack.NewProblem(knapsack.Random(16, 11)) }},
}

// TestTreePartitionComposition is the fuzz/oracle of the hierarchical
// farmer: for random tree shapes over all four domains, the interval
// algebra must compose across tiers —
//
//   - each tier's INTERVALS entries are pairwise disjoint at every
//     observation point (overlap inside a tier double-counts work);
//   - the root union only ever shrinks (work is consumed, never
//     conjured), so root union ∪ consumed ground tiles the root interval
//     at all times;
//   - every sub-farmer's table stays inside the root interval, and after
//     the termination folds every table reconciles to empty: the union of
//     all sub-farmer INTERVALS plus consumed ground tiles the root
//     interval exactly. (Mid-run a lagging subtree may briefly cover
//     ground the root already re-issued and saw consumed elsewhere — the
//     paper's duplicated-interval semantics under lazy propagation — so
//     residue is legal only until the sub's next fold, never after.)
//
// and the 2-level run must prove the same optimum as the sequential
// bb.Solve, with a real leaf path surviving the climb to the root.
func TestTreePartitionComposition(t *testing.T) {
	var totalRefills, totalSubs int64
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			dom := treeDomains[trial%len(treeDomains)]
			subtrees := 2 + rng.Intn(3)
			perSub := 1 + rng.Intn(3)

			want, _ := bb.Solve(dom.factory(), bb.Infinity)

			var now int64
			nb := core.NewNumbering(dom.factory().Shape())
			root := nb.RootRange()
			tree := farmer.NewTree(root, farmer.TreeConfig{
				Subtrees:        subtrees,
				SubUpdateEvery:  int64(2 + rng.Intn(5)),
				SubUpdatePeriod: 2 * time.Second,
				Clock:           func() int64 { return now },
			})

			var sessions []*worker.Session
			for si := 0; si < subtrees; si++ {
				for wi := 0; wi < perSub; wi++ {
					sessions = append(sessions, worker.NewSession(worker.Config{
						ID:                transport.WorkerID(fmt.Sprintf("t%d-s%d-w%d", trial, si, wi)),
						Power:             int64(1+si+wi) * 3,
						UpdatePeriodNodes: 64,
					}, tree.Sub(si), dom.factory()))
				}
			}

			rootSet := interval.NewSet(root)
			prevRoot := interval.NewSet(root)
			check := func(step int) {
				rootU := unionOf(t, step, "root", tree.Root.IntervalsSnapshot())
				if grown := interval.SetDiff(rootU, prevRoot); !grown.IsEmpty() {
					t.Fatalf("step %d: root INTERVALS grew by %s", step, grown)
				}
				prevRoot = rootU
				for si, sub := range tree.Subs {
					subU := unionOf(t, step, fmt.Sprintf("sub-%d", si), sub.IntervalsSnapshot())
					if stray := interval.SetDiff(subU, rootSet); !stray.IsEmpty() {
						t.Fatalf("step %d: sub-%d plans %s outside the root interval", step, si, stray)
					}
				}
			}

			const maxSteps = 300_000
			done := false
			for step := 0; step < maxSteps && !done; step++ {
				now += int64(time.Second)
				s := sessions[step%len(sessions)]
				if _, fin, err := s.Advance(64 + int64(rng.Intn(192))); err != nil {
					t.Fatal(err)
				} else if fin {
					done = tree.Done()
				}
				if step%len(sessions) == 0 {
					tree.Pulse()
				}
				if step%64 == 0 {
					check(step)
				}
				if tree.Done() {
					done = true
				}
			}
			if !done {
				t.Fatalf("tree did not finish within %d steps", maxSteps)
			}
			check(maxSteps)

			// Termination folds: give every sub-farmer one fold past its
			// update period so lagging subtrees learn the verdict and
			// reconcile. After that, every local table must be empty —
			// the union of sub INTERVALS plus consumed ground is exactly
			// the root interval, with zero sub residue.
			now += int64(time.Minute)
			tree.Pulse()
			for si, sub := range tree.Subs {
				if card, totalLen := sub.Inner().Size(); card != 0 {
					t.Fatalf("after termination folds, sub-%d still plans %d intervals (%s units)", si, card, totalLen)
				}
				// A fleet request after global termination must come back
				// as the §4.3 stop verdict, whatever state the subtree
				// was in when the root drained.
				probe, err := sub.RequestWork(transport.WorkRequest{Worker: "probe", Power: 1})
				if err != nil {
					t.Fatal(err)
				}
				if probe.Status != transport.WorkFinished {
					t.Errorf("sub-%d replies %v to a post-termination request, want finished", si, probe.Status)
				}
				if !sub.Finished() {
					t.Errorf("sub-%d never learned of global termination", si)
				}
			}

			best := tree.Best()
			if best.Cost != want.Cost {
				t.Fatalf("tree proved %d, sequential optimum is %d", best.Cost, want.Cost)
			}
			if !best.Valid() {
				t.Fatalf("optimum cost without a leaf path at the root")
			}
			if cost := evalLeaf(t, dom.factory(), best.Path); cost != best.Cost {
				t.Fatalf("root path evaluates to %d, claimed %d", cost, best.Cost)
			}

			var refills int64
			for _, sub := range tree.Subs {
				refills += sub.Counters().Refills
			}
			if refills < 1 {
				t.Errorf("no refills at all — no subtree ever drew work")
			}
			totalRefills += refills
			totalSubs += int64(subtrees)
		})
	}
	if totalRefills <= totalSubs {
		t.Errorf("refills (%d) never exceeded first fills (%d): inter-subtree rebalancing went unexercised", totalRefills, totalSubs)
	}
}

// unionOf folds a snapshot into a Set, failing on overlapping entries —
// overlap inside one tier would double-count work.
func unionOf(t *testing.T, step int, tier string, recs []checkpoint.IntervalRecord) *interval.Set {
	t.Helper()
	s := interval.NewSet()
	for _, rec := range recs {
		if ov := s.Add(rec.Interval); ov.Sign() != 0 {
			t.Fatalf("step %d: %s INTERVALS overlap at id %d by %s units", step, tier, rec.ID, ov)
		}
	}
	return s
}

// evalLeaf prices the leaf at the end of a rank path.
func evalLeaf(t *testing.T, p bb.Problem, path []int) int64 {
	t.Helper()
	depth := p.Shape().Depth()
	if len(path) != depth {
		t.Fatalf("path length %d != depth %d", len(path), depth)
	}
	p.Reset()
	for d, r := range path {
		if r < 0 || r >= p.Shape().Branching(d) {
			t.Fatalf("rank %d out of range at depth %d", r, d)
		}
		p.Descend(r)
	}
	return p.Cost()
}
