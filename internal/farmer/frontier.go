package farmer

import "math/big"

// The frontier heap answers "what is the smallest beginning among all
// tracked intervals?" — the fold a sub-farmer reports upstream — in
// amortized O(log W) instead of an O(W) table scan per fold. It follows the
// lease heap's lazy discipline: one entry is pushed when an interval is
// tracked, and staleness is resolved at read time. An entry is stale when
// its interval was retired (discard) or when the interval's beginning has
// advanced past the recorded one (re-file at the current beginning; a
// beginning only ever advances, so the re-filed entry is correctly placed
// and the old position was a valid lower bound all along).

// frontierEntry is one scheduled frontier candidate. a is owned by the
// entry and re-used when the entry is re-filed.
type frontierEntry struct {
	a *big.Int
	t *tracked
}

// frontierHeap is a plain min-heap on a.
type frontierHeap []frontierEntry

func (h *frontierHeap) push(e frontierEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].a.Cmp(s[i].a) <= 0 {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *frontierHeap) pop() frontierEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = frontierEntry{} // release the pointers
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].a.Cmp(s[m].a) < 0 {
			m = l
		}
		if r < n && s[r].a.Cmp(s[m].a) < 0 {
			m = r
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// pushFrontier files a freshly tracked interval in the frontier heap. A
// no-op unless frontier tracking is enabled: flat farmers never read the
// frontier, so they must not accumulate heap entries either.
func (f *Farmer) pushFrontier(t *tracked) {
	if !f.trackFront {
		return
	}
	f.front.push(frontierEntry{a: t.iv.A(), t: t})
}

// frontierLocked resolves the heap top to the current minimum beginning and
// writes it into dst, discarding or re-filing stale entries on the way. It
// reports false when the table is empty (or tracking is off). Caller holds
// f.mu.
func (f *Farmer) frontierLocked(dst *big.Int) bool {
	for len(f.front) > 0 {
		e := f.front[0]
		t, ok := f.intervals[e.t.id]
		if !ok || t != e.t || t.iv.IsEmpty() {
			f.front.pop()
			continue
		}
		if t.iv.CmpA(e.a) != 0 {
			// The beginning advanced since filing: re-file at the
			// current position (reusing the entry's big.Int).
			e = f.front.pop()
			t.iv.AInto(e.a)
			f.front.push(e)
			continue
		}
		dst.Set(e.a)
		return true
	}
	return false
}
