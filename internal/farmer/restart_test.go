package farmer

import (
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// restartFixture builds a farmer over [0,1000) with a real store, lets w1
// take the whole interval, checkpoints, and then lets w2 split off the
// right half — so the snapshot predates the partition, the exact situation
// a farmer crash turns into trouble.
func restartFixture(t *testing.T) (f1 *Farmer, store *checkpoint.Store, w1ID, w2ID int64) {
	t.Helper()
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fixedClock{}
	f1 = New(interval.FromInt64(0, 1000), WithClock(clk.fn()), WithCheckpointStore(store))
	r1, err := f1.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r2, err := f1.RequestWork(transport.WorkRequest{Worker: "w2", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.IntervalID == r1.IntervalID {
		t.Fatalf("split reused the holder id %d", r1.IntervalID)
	}
	return f1, store, r1.IntervalID, r2.IntervalID
}

// TestRestartIDsNeverCollide: ids issued after a restore live in a fresh
// epoch, so an id allocated after the snapshot (and lost in the crash) is
// recognizably stale — it can never alias a new allocation. Before the
// epoch mechanism, the restored farmer re-issued the post-snapshot id and a
// late update from its presumed-dead owner silently intersected an
// unrelated interval, which could erase unexplored work.
func TestRestartIDsNeverCollide(t *testing.T) {
	_, store, id1, id2 := restartFixture(t)

	f2, err := Restore(interval.FromInt64(0, 1000), store)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := f2.RequestWork(transport.WorkRequest{Worker: "w3", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r3.IntervalID == id1 || r3.IntervalID == id2 {
		t.Fatalf("restored farmer re-issued pre-crash id %d (pre-crash ids %d, %d)", r3.IntervalID, id1, id2)
	}

	// The post-snapshot id must be reported unknown, not intersected.
	up, err := f2.UpdateInterval(transport.UpdateRequest{
		Worker: "w2", IntervalID: id2, Remaining: interval.FromInt64(600, 1000), Power: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if up.Known {
		t.Fatalf("update for post-snapshot id %d accepted by the restored farmer", id2)
	}
}

// TestRestartEpochPersists: each incarnation checkpoints its own epoch, so
// the id space stays fresh across any number of crashes.
func TestRestartEpochPersists(t *testing.T) {
	_, store, _, _ := restartFixture(t)
	for want := int64(1); want <= 3; want++ {
		f, err := Restore(interval.FromInt64(0, 1000), store)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		snap, err := store.Load()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch != want {
			t.Fatalf("after %d restores the snapshot carries epoch %d", want, snap.Epoch)
		}
	}
}

// TestRestartRecoversStaleTail: after a restore, the coordinator's copy may
// predate a partition — it is wider than the surviving holder's view. The
// holder's re-registration must not discard the tail the lost sibling was
// exploring: it is carved back into INTERVALS and re-issued.
func TestRestartRecoversStaleTail(t *testing.T) {
	_, store, id1, _ := restartFixture(t)

	f2, err := Restore(interval.FromInt64(0, 1000), store)
	if err != nil {
		t.Fatal(err)
	}
	// w1 survived the crash. Pre-crash it was restricted to [0,500) by
	// the split and has advanced to 100; its id is in the snapshot.
	up, err := f2.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: id1, Remaining: interval.FromInt64(100, 500), Power: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Known {
		t.Fatal("snapshot id unknown after restore")
	}
	if !up.Interval.Equal(interval.FromInt64(100, 500)) {
		t.Fatalf("holder reconciled to %v, want [100,500)", up.Interval)
	}
	if c := f2.Counters(); c.RecoveredTails != 1 {
		t.Fatalf("RecoveredTails = %d, want 1", c.RecoveredTails)
	}
	// Nothing was lost: INTERVALS must still cover [100,1000) exactly.
	total := interval.NewSet()
	for _, rec := range f2.IntervalsSnapshot() {
		if ov := total.Add(rec.Interval); ov.Sign() != 0 {
			t.Fatalf("INTERVALS overlap by %s", ov)
		}
	}
	if gaps := total.Gaps(interval.FromInt64(100, 1000)); len(gaps) > 0 {
		t.Fatalf("stale-tail recovery left gaps %v", gaps)
	}
}

// TestUpdateEntirelyBehindKeepsCopy: a worker whose whole view lies before
// the coordinator's copy (a stale duplicate owner) contributes no progress.
// The copy must survive untouched instead of being intersected to empty,
// and the worker must be sent back for fresh work (Known=false) rather
// than re-admitted as an owner of an interval it can never adopt — an
// explorer only narrows, so it would silently drop the copy while its
// lease stalled recovery.
func TestUpdateEntirelyBehindKeepsCopy(t *testing.T) {
	f, _ := newTestFarmer(100)
	r, err := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	// w1 advances the copy to [60,100).
	if _, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID, Remaining: interval.FromInt64(60, 100), Power: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A stale view [10,50) arrives for the same id.
	up, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w2", IntervalID: r.IntervalID, Remaining: interval.FromInt64(10, 50), Power: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if up.Known {
		t.Fatalf("stale update got %+v, want Known=false (drop and re-request)", up)
	}
	if f.Done() {
		t.Fatal("stale update emptied INTERVALS")
	}
	// The stale worker must not linger as a leased owner: only w1 counts
	// as a holder, so an equal-power requester gets exactly half of
	// [60,100). A phantom w2 would shrink the donation to a third.
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w3", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Interval.Equal(interval.FromInt64(80, 100)) {
		t.Fatalf("w3 got %v, want the half [80,100) — a phantom owner is inflating holder power", r2.Interval)
	}
}

// TestConcurrentCheckpointsSerialize: the periodic snapshotter racing a
// final snapshot (the gridbb.Solve shutdown pattern) must never corrupt the
// store. Run under -race this also audits the snapshot bookkeeping.
func TestConcurrentCheckpointsSerialize(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := newTestFarmer(1000, WithCheckpointStore(store))
	r, err := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := f.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for a := int64(0); a < 1000; a += 40 {
			if _, err := f.UpdateInterval(transport.UpdateRequest{
				Worker: "w1", IntervalID: r.IntervalID,
				Remaining: interval.FromInt64(a, 1000), Power: 1,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := store.Load(); err != nil {
		t.Fatalf("store corrupted by concurrent checkpoints: %v", err)
	}
}
