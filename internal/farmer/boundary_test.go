package farmer

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// TestBoundaryValidation pins the coordinator-boundary message validation
// (boundary.go): hostile shapes are rejected-and-counted and mutate
// nothing; the legitimate shapes the protocol depends on — empty folds,
// stale-id stat flushes — keep passing.
func TestBoundaryValidation(t *testing.T) {
	newFarmer := func() *Farmer {
		return New(interval.FromInt64(0, 1_000_000), WithClock(func() int64 { return 0 }))
	}
	assign := func(t *testing.T, f *Farmer, w transport.WorkerID) transport.WorkReply {
		t.Helper()
		r, err := f.RequestWork(transport.WorkRequest{Worker: w, Power: 10})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	t.Run("update rejects out-of-root intervals", func(t *testing.T) {
		f := newFarmer()
		r := assign(t, f, "w")
		for _, rem := range []interval.Interval{
			interval.FromInt64(500_000, 2_000_000),                     // end beyond root
			interval.FromInt64(-5, 10),                                 // negative beginning
			interval.New(big.NewInt(1_000_001), big.NewInt(1_000_002)), // fully outside
		} {
			if _, err := f.UpdateInterval(transport.UpdateRequest{
				Worker: "w", IntervalID: r.IntervalID, Remaining: rem, Power: 10,
			}); err == nil {
				t.Errorf("out-of-root remaining %v accepted", rem)
			}
		}
		c := f.Counters()
		if c.RejectedIntervals != 3 {
			t.Errorf("RejectedIntervals = %d, want 3", c.RejectedIntervals)
		}
		if c.WorkerCheckpoints != 0 {
			t.Errorf("rejected updates still counted %d checkpoints", c.WorkerCheckpoints)
		}
		// The tracked copy must be untouched: a legitimate update still
		// sees the full assignment.
		up, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID, Remaining: r.Interval, Power: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !up.Known || !up.Interval.Equal(r.Interval) {
			t.Errorf("tracked copy corrupted by rejected updates: %v", up.Interval)
		}
	})

	t.Run("update rejects oversize bignums without comparing them", func(t *testing.T) {
		f := newFarmer()
		r := assign(t, f, "w")
		huge := new(big.Int).Lsh(big.NewInt(1), MaxIntervalBits+1)
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID,
			Remaining: interval.New(big.NewInt(0), huge), Power: 10,
		}); err == nil {
			t.Fatal("oversize bignum interval accepted")
		}
		c := f.Counters()
		if c.RejectedIntervals != 1 || c.OversizeMessages != 1 {
			t.Errorf("RejectedIntervals = %d, OversizeMessages = %d, want 1, 1",
				c.RejectedIntervals, c.OversizeMessages)
		}
	})

	t.Run("update rejects negative progress deltas", func(t *testing.T) {
		f := newFarmer()
		r := assign(t, f, "w")
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID, Remaining: r.Interval,
			Power: 10, ExploredDelta: -1_000_000,
		}); err == nil {
			t.Fatal("negative delta accepted")
		}
		if c := f.Counters(); c.ExploredNodes != 0 || c.RejectedIntervals != 1 {
			t.Errorf("ExploredNodes = %d, RejectedIntervals = %d after a negative delta",
				c.ExploredNodes, c.RejectedIntervals)
		}
	})

	t.Run("oversize worker ids rejected on all three ops", func(t *testing.T) {
		f := newFarmer()
		long := transport.WorkerID(strings.Repeat("x", MaxWorkerIDBytes+1))
		if _, err := f.RequestWork(transport.WorkRequest{Worker: long, Power: 1}); err == nil {
			t.Error("oversize id accepted by RequestWork")
		}
		if _, err := f.UpdateInterval(transport.UpdateRequest{Worker: long}); err == nil {
			t.Error("oversize id accepted by UpdateInterval")
		}
		if _, err := f.ReportSolution(transport.SolutionReport{Worker: long, Cost: 1}); err == nil {
			t.Error("oversize id accepted by ReportSolution")
		}
		if c := f.Counters().OversizeMessages; c != 3 {
			t.Errorf("OversizeMessages = %d, want 3", c)
		}
	})

	t.Run("report rejects hostile paths", func(t *testing.T) {
		f := newFarmer()
		if _, err := f.ReportSolution(transport.SolutionReport{
			Worker: "w", Cost: 1, Path: make([]int, MaxPathLen+1),
		}); err == nil {
			t.Error("oversize path accepted")
		}
		if _, err := f.ReportSolution(transport.SolutionReport{
			Worker: "w", Cost: 1, Path: []int{3, -1, 2},
		}); err == nil {
			t.Error("negative rank accepted")
		}
		c := f.Counters()
		if c.RejectedReports != 2 {
			t.Errorf("RejectedReports = %d, want 2", c.RejectedReports)
		}
		if c.SolutionImprovements != 0 {
			t.Error("a rejected report improved SOLUTION")
		}
		if f.Best().Cost == 1 {
			t.Error("hostile cost stored as SOLUTION")
		}
	})

	t.Run("empty folds and stale-id flushes keep passing", func(t *testing.T) {
		f := newFarmer()
		r := assign(t, f, "w")
		// The "I finished" checkpoint: empty remaining at the end bound.
		up, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID,
			Remaining: interval.New(r.Interval.B(), r.Interval.B()), Power: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !up.Finished {
			t.Error("finishing fold did not finish the resolution")
		}
		// A sub-farmer stat flush after its binding died: zero-value
		// interval, stale id. Must be answered Known=false, not rejected.
		up, err = f.UpdateInterval(transport.UpdateRequest{
			Worker: "sub-0", IntervalID: 999, ExploredDelta: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if up.Known {
			t.Error("stale id reported as known")
		}
		if c := f.Counters(); c.RejectedIntervals != 0 || c.ExploredNodes != 42 {
			t.Errorf("stat flush mishandled: RejectedIntervals=%d ExploredNodes=%d",
				c.RejectedIntervals, c.ExploredNodes)
		}
	})

	t.Run("rootless farmer applies structural checks only", func(t *testing.T) {
		// A sub-farmer's inner table is created over an empty root and
		// grows by upstream grants: it cannot know a root range, but it
		// still rejects negative beginnings and oversize bignums.
		f := New(interval.Interval{}, WithClock(func() int64 { return 0 }))
		f.Inject(interval.FromInt64(0, 1000))
		r, err := f.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID,
			Remaining: interval.FromInt64(-1, 500), Power: 1,
		}); err == nil {
			t.Error("negative beginning accepted by rootless farmer")
		}
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID,
			Remaining: interval.FromInt64(200, 500), Power: 1,
		}); err != nil {
			t.Errorf("in-range update rejected by rootless farmer: %v", err)
		}
	})

	t.Run("restored farmer keeps the boundary", func(t *testing.T) {
		root := interval.FromInt64(0, 1_000_000)
		store, err := checkpoint.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f := New(root, WithClock(func() int64 { return 0 }), WithCheckpointStore(store))
		r := assign(t, f, "w")
		if err := f.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		f2, err := Restore(root, store, WithClock(func() int64 { return 0 }))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f2.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID,
			Remaining: interval.FromInt64(0, 2_000_000), Power: 10,
		}); err == nil {
			t.Error("restored farmer accepted an out-of-root interval")
		}
		if c := f2.Counters().RejectedIntervals; c != 1 {
			t.Errorf("RejectedIntervals = %d after restore, want 1", c)
		}
	})
}
