package farmer

import (
	"math/big"
	"testing"

	"repro/internal/interval"
	"repro/internal/transport"
)

// The DESIGN.md §12 fold extensions, pinned at the public Coordinator
// boundary: gap declarations (edge trims and the deferred interior cut)
// and content-honest size accounting. Everything here drives the farmer
// exactly as a sub-farmer's fold would — no internal hooks.

// TestGapEdgeTrimsAtFoldTime: a gap clamped to an edge of the copy is
// free precision, trimmed off on the spot with no work movement.
func TestGapEdgeTrimsAtFoldTime(t *testing.T) {
	f, _ := newTestFarmer(1000)
	r, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})

	// Vouch the prefix [0,200) explored via a gap clamped to the A edge.
	up, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		HasGap: true, Gap: interval.FromInt64(0, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Interval.Equal(interval.FromInt64(200, 1000)) {
		t.Fatalf("after prefix trim: %v, want [200,1000)", up.Interval)
	}
	// And the suffix [900,1000) via a gap clamped to the B edge.
	up, err = f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(200, 1000), Power: 10,
		HasGap: true, Gap: interval.FromInt64(900, 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Interval.Equal(interval.FromInt64(200, 900)) {
		t.Fatalf("after suffix trim: %v, want [200,900)", up.Interval)
	}
	if c := f.Counters(); c.GapCarves != 2 {
		t.Fatalf("GapCarves = %d, want 2 (one per edge trim)", c.GapCarves)
	}
}

// TestInteriorGapSplitsAtNextAllocation: a strictly interior gap is NOT
// carved at fold time (both sides hold the reporter's live fragments) but
// discounts Size immediately, and the next allocation cuts at the gap —
// the requester takes the live far side, the explored hole leaves
// INTERVALS entirely.
func TestInteriorGapSplitsAtNextAllocation(t *testing.T) {
	f, _ := newTestFarmer(1000)
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})

	up, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		HasGap: true, Gap: interval.FromInt64(400, 700),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hull is untouched at fold time...
	if !up.Interval.Equal(interval.FromInt64(0, 1000)) {
		t.Fatalf("interior gap carved eagerly: %v", up.Interval)
	}
	// ...but the vouched hole is already discounted from the size.
	if _, total := f.Size(); total.Cmp(big.NewInt(700)) != 0 {
		t.Fatalf("Size total = %s, want 700 (1000 hull - 300 gap)", total)
	}

	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Interval.Equal(interval.FromInt64(700, 1000)) {
		t.Fatalf("w2 assigned %v, want the far side [700,1000)", r2.Interval)
	}
	// The holder keeps [0,400): the hole [400,700) is gone from the table.
	up, err = f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r1.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Interval.Equal(interval.FromInt64(0, 400)) {
		t.Fatalf("holder reconciled to %v, want [0,400)", up.Interval)
	}
	if _, total := f.Size(); total.Cmp(big.NewInt(700)) != 0 {
		t.Fatalf("Size total after the cut = %s, want 700", total)
	}
	if c := f.Counters(); c.GapCarves != 1 {
		t.Fatalf("GapCarves = %d, want 1", c.GapCarves)
	}
}

// TestContentDiscountsSize: a content-honest fold values the copy by the
// reporter's own count of unexplored ground, not the hull length, and the
// discount is clamped so a nonsense declaration cannot go negative.
func TestContentDiscountsSize(t *testing.T) {
	f, _ := newTestFarmer(1000)
	r, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})

	if _, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		Content: big.NewInt(150),
	}); err != nil {
		t.Fatal(err)
	}
	if _, total := f.Size(); total.Cmp(big.NewInt(150)) != 0 {
		t.Fatalf("Size total = %s, want the vouched 150", total)
	}
	// Content above the hull claims negative slack: clamp to the hull.
	if _, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		Content: big.NewInt(5000),
	}); err != nil {
		t.Fatal(err)
	}
	if _, total := f.Size(); total.Cmp(big.NewInt(1000)) != 0 {
		t.Fatalf("Size total = %s, want clamped to the 1000 hull", total)
	}
}

// TestGapFloorsContentSlack: when a fold carries both, the slack floor is
// the gap length — the gap is a vouched HOLE the partitioning operator
// may cut at, so the discount can never fall below it even if the content
// declaration is stale or absent on a later fold.
func TestGapFloorsContentSlack(t *testing.T) {
	f, _ := newTestFarmer(1000)
	r, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})

	if _, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w1", IntervalID: r.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		HasGap: true, Gap: interval.FromInt64(400, 700),
		Content: big.NewInt(900), // claims only 100 slack, below the 300-unit gap
	}); err != nil {
		t.Fatal(err)
	}
	if _, total := f.Size(); total.Cmp(big.NewInt(700)) != 0 {
		t.Fatalf("Size total = %s, want 700 (gap floors the discount)", total)
	}
}

// TestCoOwnerRegrantKeepsOneCopy: a requester that already co-owns the
// selected interval (an earlier duplication, or its own abandoned copy
// after a lease blip) gets the SAME copy back — never a split-off or
// gap-carved new id, which would hand it ground its local table already
// covers and make a sub-farmer's INTERVALS overlap itself.
func TestCoOwnerRegrantKeepsOneCopy(t *testing.T) {
	f, _ := newTestFarmer(1000, WithEndgameThreshold(big.NewInt(2000)))
	r1, _ := f.RequestWork(transport.WorkRequest{Worker: "w1", Power: 10})

	// Endgame (total 1000 < 2000): w2's request duplicates w1's copy.
	r2, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Duplicated || r2.IntervalID != r1.IntervalID {
		t.Fatalf("expected an endgame duplication of id %d, got id %d dup=%v",
			r1.IntervalID, r2.IntervalID, r2.Duplicated)
	}

	// w2 declares an interior gap on the shared copy; its own next
	// request must NOT gap-split the copy out from under itself.
	if _, err := f.UpdateInterval(transport.UpdateRequest{
		Worker: "w2", IntervalID: r2.IntervalID,
		Remaining: interval.FromInt64(0, 1000), Power: 10,
		HasGap: true, Gap: interval.FromInt64(400, 700),
	}); err != nil {
		t.Fatal(err)
	}
	again, err := f.RequestWork(transport.WorkRequest{Worker: "w2", Power: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Duplicated || again.IntervalID != r2.IntervalID {
		t.Fatalf("co-owner re-grant: got id %d dup=%v, want the held id %d back",
			again.IntervalID, again.Duplicated, r2.IntervalID)
	}
	if !again.Interval.Equal(interval.FromInt64(0, 1000)) {
		t.Fatalf("co-owner re-grant returned %v, want the whole held hull", again.Interval)
	}
	if card, _ := f.Size(); card != 1 {
		t.Fatalf("%d tracked intervals after the re-grant, want the single shared copy", card)
	}
}
