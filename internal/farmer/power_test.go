package farmer

import (
	"math/big"
	"testing"

	"repro/internal/interval"
	"repro/internal/transport"
)

// TestPowerValidationAtBoundary pins the coordinator-boundary hardening:
// the farmer no longer trusts Power claims blindly. Non-positive request
// powers are rejected, non-positive update powers are ignored (the last
// credible estimate stands), and absurd claims are clamped at MaxPower in
// both directions — a 2^62 claim must not let one liar monopolize the
// partitioning operator.
func TestPowerValidationAtBoundary(t *testing.T) {
	newFarmer := func() *Farmer {
		return New(interval.FromInt64(0, 1_000_000), WithClock(func() int64 { return 0 }))
	}

	t.Run("request rejects non-positive", func(t *testing.T) {
		f := newFarmer()
		for _, p := range []int64{0, -1, -1 << 40} {
			if _, err := f.RequestWork(transport.WorkRequest{Worker: "w", Power: p}); err == nil {
				t.Errorf("power %d accepted, want rejection", p)
			}
		}
		if c := f.Counters().RejectedPowers; c != 3 {
			t.Errorf("RejectedPowers = %d, want 3", c)
		}
		if c := f.Counters().WorkAllocations; c != 0 {
			t.Errorf("rejected requests still allocated %d intervals", c)
		}
	})

	t.Run("request clamps absurd claims", func(t *testing.T) {
		f := newFarmer()
		// An honest holder takes the interval first.
		r1, err := f.RequestWork(transport.WorkRequest{Worker: "honest", Power: 100})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Status != transport.WorkAssigned {
			t.Fatalf("status %v", r1.Status)
		}
		// A liar claiming 2^62 nodes/sec is clamped to MaxPower: the
		// split donates len·MaxPower/(100+MaxPower) — almost all, but
		// never the degenerate everything a raw 2^62 would approach
		// with larger tables, and the clamp is observable.
		r2, err := f.RequestWork(transport.WorkRequest{Worker: "liar", Power: 1 << 62})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Status != transport.WorkAssigned {
			t.Fatalf("status %v", r2.Status)
		}
		if c := f.Counters().ClampedPowers; c != 1 {
			t.Errorf("ClampedPowers = %d, want 1", c)
		}
	})

	t.Run("update ignores non-positive and clamps absurd", func(t *testing.T) {
		f := newFarmer()
		r, err := f.RequestWork(transport.WorkRequest{Worker: "w", Power: 100})
		if err != nil {
			t.Fatal(err)
		}
		remaining := interval.New(big.NewInt(10), r.Interval.B())
		// A zero-power update is processed (losing the checkpoint would
		// hurt the worker) but the power estimate must not change: a
		// second requester's split shows which holder power was used.
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID, Remaining: remaining, Power: 0,
		}); err != nil {
			t.Fatal(err)
		}
		if c := f.Counters().IgnoredPowers; c != 1 {
			t.Errorf("IgnoredPowers = %d, want 1", c)
		}
		if c := f.Counters().RejectedPowers; c != 0 {
			t.Errorf("RejectedPowers = %d on a processed update, want 0 (the counter is for refused requests only)", c)
		}
		r2, err := f.RequestWork(transport.WorkRequest{Worker: "peer", Power: 100})
		if err != nil {
			t.Fatal(err)
		}
		// Equal powers (100 vs the retained 100) split the remainder in
		// half; had the zero overwritten the estimate, the holder power
		// would be 0 and the whole interval would be donated.
		want := new(big.Int).Sub(remaining.B(), remaining.A())
		want.Rsh(want, 1)
		if got := r2.Interval.Len(); got.Cmp(want) != 0 {
			t.Errorf("donated %s, want the even split %s (holder power mutated by a zero-power update?)", got, want)
		}

		// An absurd update claim is clamped, and counted.
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "w", IntervalID: r.IntervalID, Remaining: r2d(f, r.IntervalID), Power: 1 << 61,
		}); err != nil {
			t.Fatal(err)
		}
		if c := f.Counters().ClampedPowers; c != 1 {
			t.Errorf("ClampedPowers = %d, want 1", c)
		}
	})
}

// r2d reads the coordinator's current copy of an interval so an update can
// report "no progress" without fabricating bounds.
func r2d(f *Farmer, id int64) interval.Interval {
	for _, rec := range f.IntervalsSnapshot() {
		if rec.ID == id {
			return rec.Interval
		}
	}
	return interval.Interval{}
}
