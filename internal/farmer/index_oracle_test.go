package farmer

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"repro/internal/interval"
	"repro/internal/transport"
)

// TestSelectionOracleRandomStreams is the acceptance oracle of the indexed
// farmer (DESIGN.md §8): across randomized request/update/expiry streams,
// the index must return byte-identical (interval id, donated length)
// decisions to the retained seed linear scan, on exactly the state the
// seed would have selected over. Trials mix tiny roots (floor ties and the
// duplication rule fire constantly) with Ta056-scale roots (realistic
// lengths), and powers come in a few classes including zero (the orphan
// tie case) so holder-power groups collide and tie.
func TestSelectionOracleRandomStreams(t *testing.T) {
	roots := []*big.Int{
		big.NewInt(40),                       // crumb scale: every decision is a tie-break
		big.NewInt(100_000),                  // mid scale
		new(big.Int).Lsh(big.NewInt(1), 214), // Ta056 scale
	}
	powers := []int64{0, 1, 1, 2, 3, 7, 7, 2200, 3200}
	const ttl = 50 * time.Nanosecond
	for trial := 0; trial < 60; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			root := roots[trial%len(roots)]
			var now int64
			f := New(interval.New(new(big.Int), root),
				WithClock(func() int64 { return now }),
				WithLeaseTTL(ttl),
				WithThreshold(big.NewInt(4)))

			type assignment struct {
				w  transport.WorkerID
				id int64
				iv interval.Interval
			}
			var live []assignment
			decisions := 0
			for step := 0; step < 300; step++ {
				now += int64(rng.Intn(20)) // some steps cross the lease TTL
				switch op := rng.Intn(10); {
				case op < 5: // RequestWork, oracle-checked
					w := transport.WorkerID(fmt.Sprintf("w%d", rng.Intn(12)))
					p := powers[rng.Intn(len(powers))]
					// Sync the pre-selection sweeps so both selectors see
					// the exact state RequestWork will select over.
					f.ExpireNow()
					f.CleanForTest()
					oid, od, ook := f.SelectOracleForTest(p)
					iid, id2, iok := f.SelectIndexForTest(p)
					if ook != iok {
						t.Fatalf("step %d: oracle found=%v, index found=%v", step, ook, iok)
					}
					if ook {
						if oid != iid {
							t.Fatalf("step %d: oracle chose interval %d, index chose %d (power %d)", step, oid, iid, p)
						}
						if od.Cmp(id2) != 0 {
							t.Fatalf("step %d: oracle donated %s, index donated %s (interval %d, power %d)", step, od, id2, oid, p)
						}
						decisions++
					}
					// The boundary rejects non-positive powers since the
					// transport hardening; the selectors' zero-power
					// semantics stay pinned by the probes above, while
					// the state evolution uses a valid claim.
					reply, err := f.RequestWork(transport.WorkRequest{Worker: w, Power: max(p, 1)})
					if err != nil {
						t.Fatal(err)
					}
					if reply.Status == transport.WorkAssigned && !reply.Interval.IsEmpty() {
						live = append(live, assignment{w: w, id: reply.IntervalID, iv: reply.Interval})
					}
				case op < 9: // UpdateInterval: advance, sometimes finish
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					as := &live[i]
					a, b := as.iv.A(), as.iv.B()
					span := new(big.Int).Sub(b, a)
					if span.Sign() <= 0 || rng.Intn(4) == 0 {
						a.Set(b) // finished: report the empty fold [B,B)
					} else {
						a.Add(a, new(big.Int).Rand(rng, span))
					}
					rem := interval.New(a, b)
					reply, err := f.UpdateInterval(transport.UpdateRequest{
						Worker: as.w, IntervalID: as.id, Remaining: rem,
						Power: powers[rng.Intn(len(powers))], ExploredDelta: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reply.Known || reply.Interval.IsEmpty() {
						live = append(live[:i], live[i+1:]...)
					} else {
						as.iv = reply.Interval
					}
				default: // a long silence: leases lapse wholesale
					now += int64(ttl) * 3
				}
				if step%25 == 0 {
					if err := f.CheckIndexInvariantsForTest(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := f.CheckIndexInvariantsForTest(); err != nil {
				t.Fatal(err)
			}
			if decisions == 0 && f.TrackedCountForTest() > 0 {
				t.Fatal("stream made no oracle-checked decisions")
			}
		})
	}
}

// TestSelIndexBruteForce drives the index-level API directly against a
// brute-force scan over synthetic entries, covering churn shapes the
// protocol never produces in one stream (wild power swings, length
// rewrites both ways, interleaved removes).
func TestSelIndexBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		x := newSelIndex()
		byID := make(map[int64]*tracked)
		nextID := int64(0)
		add := func() {
			length := int64(rng.Intn(1000))
			tr := &tracked{
				id: nextID,
				iv: interval.FromInt64(0, length),
			}
			tr.owners = map[transport.WorkerID]*owner{}
			if hp := int64(rng.Intn(5)); hp > 0 {
				tr.owners["h"] = &owner{power: hp}
			}
			nextID++
			byID[tr.id] = tr
			x.insert(tr)
		}
		for i := 0; i < 30; i++ {
			add()
		}
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op == 0:
				add()
			case op == 1 && len(byID) > 1:
				for id, tr := range byID { // first map key: any victim
					x.remove(tr)
					delete(byID, id)
					break
				}
			case op < 6 && len(byID) > 0: // mutate then fix
				for _, tr := range byID {
					tr.iv = interval.FromInt64(0, int64(rng.Intn(1000)))
					if rng.Intn(2) == 0 {
						if hp := int64(rng.Intn(5)); hp > 0 {
							tr.owners["h"] = &owner{power: hp}
						} else {
							delete(tr.owners, "h")
						}
					}
					x.fix(tr)
					break
				}
			default: // select and verify
				rp := int64(rng.Intn(4))
				gotID, gotOK := x.selectBest(rp)
				wantID, wantD, wantOK := bruteSelect(byID, rp)
				if gotOK != wantOK {
					t.Fatalf("trial %d step %d: found=%v, brute=%v", trial, step, gotOK, wantOK)
				}
				if !gotOK {
					continue
				}
				if gotID != wantID {
					t.Fatalf("trial %d step %d: index chose %d, brute force chose %d (rp=%d)", trial, step, gotID, wantID, rp)
				}
				if x.scrBest.Cmp(wantD) != 0 {
					t.Fatalf("trial %d step %d: index donated %s, brute force %s", trial, step, x.scrBest, wantD)
				}
			}
		}
		// The incremental total survives the churn.
		sum := new(big.Int)
		for _, tr := range byID {
			sum.Add(sum, tr.iv.Len())
		}
		if sum.Cmp(x.total) != 0 {
			t.Fatalf("trial %d: incremental total %s, actual %s", trial, x.total, sum)
		}
	}
}

// bruteSelect is the seed decision rule over a plain map.
func bruteSelect(byID map[int64]*tracked, rp int64) (int64, *big.Int, bool) {
	var chosen *tracked
	best := new(big.Int)
	d := new(big.Int)
	for _, t := range byID {
		l := t.iv.Len()
		hp := t.holderPower()
		switch {
		case hp <= 0:
			d.Set(l)
		case rp <= 0:
			d.SetInt64(0)
		default:
			d.Mul(l, big.NewInt(rp))
			d.Quo(d, big.NewInt(hp+rp))
		}
		if chosen == nil || d.Cmp(best) > 0 || (d.Cmp(best) == 0 && t.id < chosen.id) {
			chosen = t
			best.Set(d)
		}
	}
	if chosen == nil {
		return 0, nil, false
	}
	return chosen.id, best, true
}

// TestLeaseHeapOrder: the deadline heap pops in order whatever the push
// order, the base property the lazy expiry sweep rests on.
func TestLeaseHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h leaseHeap
	n := 500
	for i := 0; i < n; i++ {
		h.push(leaseEntry{deadline: int64(rng.Intn(100))})
	}
	last := int64(-1)
	for i := 0; i < n; i++ {
		e := h.pop()
		if e.deadline < last {
			t.Fatalf("pop %d: deadline %d after %d", i, e.deadline, last)
		}
		last = e.deadline
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

// TestExpiryHeapMatchesSeedSemantics pins the lazy sweep to the seed rule
// "expire iff now − lastSeen > TTL": an owner that keeps reporting never
// expires however old its first heap entry, and one that goes silent
// expires on the first request after the deadline passes.
func TestExpiryHeapMatchesSeedSemantics(t *testing.T) {
	var now int64
	f := New(interval.FromInt64(0, 1_000_000),
		WithClock(func() int64 { return now }),
		WithLeaseTTL(100*time.Nanosecond))
	reply, err := f.RequestWork(transport.WorkRequest{Worker: "alive", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Report every 60ns for a while: always inside the lease.
	cur := reply.Interval
	for i := 0; i < 10; i++ {
		now += 60
		a := cur.A()
		a.Add(a, big.NewInt(10))
		up, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "alive", IntervalID: reply.IntervalID, Remaining: interval.New(a, cur.B()),
		})
		if err != nil {
			t.Fatal(err)
		}
		cur = up.Interval
	}
	f.ExpireNow()
	if n := f.Counters().ExpiredOwners; n != 0 {
		t.Fatalf("a worker reporting every 60ns of a 100ns lease expired %d times", n)
	}
	// Exactly at the deadline: not yet expired (strict >).
	now += 100
	f.ExpireNow()
	if n := f.Counters().ExpiredOwners; n != 0 {
		t.Fatalf("owner expired at now-lastSeen == TTL; the seed rule is strict: %d", n)
	}
	now++
	f.ExpireNow()
	if n := f.Counters().ExpiredOwners; n != 1 {
		t.Fatalf("silent owner past its lease not expired: ExpiredOwners=%d", n)
	}
	if err := f.CheckIndexInvariantsForTest(); err != nil {
		t.Fatal(err)
	}
}
