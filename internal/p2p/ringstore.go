// Ring checkpointing: the §4.1 two-file mechanism replayed at the p2p
// tier, closing the fault-tolerance gap the paper's §6 future-work left
// open. Every peer owns a checkpoint namespace ("peer-<i>") holding one
// snapshot: its frontier interval (the folded remainder, eq. 10) and the
// best solution it knows. The write discipline keeps one invariant: a
// peer's snapshot always covers everything only that peer owns.
//
//   - A thief checkpoints twice immediately after a successful steal — so
//     stolen work enters BOTH durable generations before the victim's
//     restriction can make it unreachable from anyone else's. A single
//     save would leave the previous generation pre-steal: a later torn
//     write of the current file would fall back to a frontier that no
//     longer covers the stolen interval once the victim re-checkpoints.
//   - A victim never needs an immediate save: donation and exploration
//     only shrink its remainder, so a stale snapshot over-covers — pure
//     rework on restore, never loss.
//   - Periodic saves (the harness's checkpoint cadence) bound that rework
//     to the work done since the last save, exactly §4.1's guarantee.
//
// Termination stays sound through the Dijkstra–Feijen–van Gasteren rules:
// a restored peer comes back dirty, so any token passing it goes black and
// no white round can complete until a full clean circulation after the
// restore; and a dead peer blocks token delivery entirely, so the ring
// cannot terminate while any peer — and the work its snapshot re-opens —
// is missing.
package p2p

import (
	"fmt"
	"math/big"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/interval"
)

// AttachStore gives every peer a checkpoint namespace under store and
// snapshots the initial state (peer 0 the root range, the rest empty), so
// a kill at any later sweep finds a loadable generation. Call before the
// first Sweep.
func (l *Lockstep) AttachStore(store *checkpoint.Store) error {
	n := len(l.g.peers)
	l.stores = make([]*checkpoint.Store, n)
	l.dead = make([]bool, n)
	l.epochs = make([]int64, n)
	for i := 0; i < n; i++ {
		ns, err := store.Namespace(fmt.Sprintf("peer-%d", i))
		if err != nil {
			return err
		}
		l.stores[i] = ns
	}
	return l.CheckpointAll()
}

// Stores reports whether checkpointing is attached.
func (l *Lockstep) Stores() bool { return l.stores != nil }

// Dead reports whether peer i is currently killed.
func (l *Lockstep) Dead(i int) bool { return l.dead != nil && l.dead[i] }

// StoreErr returns the first checkpoint-save error hit inside a sweep
// (steal-time saves have no error path of their own); nil when healthy.
func (l *Lockstep) StoreErr() error { return l.storeErr }

// CheckpointAll snapshots every live peer — the periodic cadence. A dead
// peer's disk state stays frozen at its crash, exactly like a farmer's.
func (l *Lockstep) CheckpointAll() error {
	if l.stores == nil {
		return nil
	}
	for i := range l.g.peers {
		if l.dead[i] {
			continue
		}
		if err := l.checkpointPeer(i); err != nil {
			return err
		}
	}
	return nil
}

// checkpointPeer writes one peer's two-file snapshot: frontier interval,
// TotalLen cross-check, and the best solution this peer can vouch for.
func (l *Lockstep) checkpointPeer(i int) error {
	p := l.g.peers[i]
	rem := p.ex.Remaining()
	snap := checkpoint.Snapshot{Epoch: l.epochs[i], TotalLen: new(big.Int)}
	if !rem.IsEmpty() {
		snap.Intervals = []checkpoint.IntervalRecord{{ID: l.epochs[i], Interval: rem}}
		snap.TotalLen = rem.Len()
	}
	sol := l.best.solution()
	snap.BestCost, snap.BestPath = sol.Cost, sol.Path
	return l.stores[i].Save(snap)
}

// noteSteal persists the thief's new ownership — twice, so that both
// generations of its snapshot cover the stolen interval and a fallback
// load can never re-open a pre-steal frontier (every other transition a
// peer makes — exploring, donating — only shrinks its remainder, so for
// those the older generation over-covers by construction; a steal is the
// one transition that grows it). Failures latch into StoreErr: the steal
// itself already happened, and a missed save only widens the rework
// window, the same way a failed farmer checkpoint does.
func (l *Lockstep) noteSteal(thief int) {
	if l.stores == nil {
		return
	}
	for k := 0; k < 2; k++ {
		if err := l.checkpointPeer(thief); err != nil {
			if l.storeErr == nil {
				l.storeErr = err
			}
			return
		}
	}
}

// Kill crashes peer i: its in-memory frontier is gone and it neither
// explores, donates, steals, nor passes the token until restored. The
// token never enters a dead peer, so termination is impossible while the
// ring has a hole — the conservative guarantee that makes a lost peer
// cost time, never correctness.
func (l *Lockstep) Kill(i int) {
	if l.stores == nil {
		panic("p2p: Kill without AttachStore")
	}
	if l.dead[i] {
		return
	}
	l.dead[i] = true
	l.record("kill", i, -1, interval.Interval{})
}

// Restore brings a killed peer back from its own snapshot: a fresh
// explorer over the persisted frontier, the persisted best offered to the
// shared incumbent, the epoch bumped, and — crucially — the peer marked
// dirty so the next token round goes black (DFvG safety: the re-opened
// work must be re-proven drained). Returns the re-opened interval so the
// caller can budget the rework it may duplicate.
func (l *Lockstep) Restore(i int) (interval.Interval, error) {
	if l.stores == nil {
		panic("p2p: Restore without AttachStore")
	}
	if !l.dead[i] {
		return interval.Interval{}, fmt.Errorf("p2p: restore of live peer %d", i)
	}
	snap, err := l.stores[i].Load()
	if err != nil {
		return interval.Interval{}, fmt.Errorf("p2p: restore peer %d: %w", i, err)
	}
	var iv interval.Interval
	if len(snap.Intervals) > 0 {
		iv = snap.Intervals[0].Interval
	}
	p := l.g.peers[i]
	nb := core.NewNumbering(l.factory().Shape())
	if snap.BestCost < bb.Infinity && len(snap.BestPath) > 0 {
		l.best.offer(bb.Solution{Cost: snap.BestCost, Path: snap.BestPath})
	}
	p.ex = core.NewExplorer(l.factory(), nb, iv, l.best.get())
	p.ex.OnImprove = func(sol bb.Solution) { l.best.offer(sol) }
	p.dirty = true
	l.epochs[i] = snap.Epoch + 1
	l.dead[i] = false
	l.record("restore", i, -1, iv.Clone())
	// Persist the restored incarnation right away: the epoch bump and the
	// re-opened frontier become durable before any new exploration.
	if err := l.checkpointPeer(i); err != nil {
		return iv, err
	}
	return iv, nil
}
