package p2p

import (
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tsp"
)

// TestLockstepSolvesAllDomains: the deterministic driver proves the
// sequential optimum on every problem family, with guaranteed steals at
// every concurrency level — no scheduling luck involved.
func TestLockstepSolvesAllDomains(t *testing.T) {
	cases := []struct {
		name    string
		factory func() bb.Problem
	}{
		{"flowshop", func() bb.Problem {
			return flowshop.NewProblem(flowshop.Taillard(10, 6, 3), flowshop.BoundOneMachine, flowshop.PairsAll)
		}},
		{"tsp", func() bb.Problem { return tsp.NewProblem(tsp.RandomEuclidean(9, 100, 7)) }},
		{"qap", func() bb.Problem { return qap.NewProblem(qap.Random(7, 15, 9)) }},
		{"knapsack", func() bb.Problem { return knapsack.NewProblem(knapsack.Random(16, 21)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, _ := bb.Solve(tc.factory(), bb.Infinity)
			for _, peers := range []int{2, 4} {
				res, ok := SolveLockstep(tc.factory, Options{Peers: peers, Seed: 5, StepBudget: 300}, 0)
				if !ok {
					t.Fatalf("peers=%d: did not terminate", peers)
				}
				if res.Best.Cost != want.Cost {
					t.Fatalf("peers=%d: best %d, want %d", peers, res.Best.Cost, want.Cost)
				}
				if res.Steals == 0 {
					t.Fatalf("peers=%d: no steals in a lockstep ring", peers)
				}
			}
		})
	}
}

// TestLockstepDeterministic: equal seeds produce identical event traces and
// identical per-peer work; a different seed produces a different trace.
func TestLockstepDeterministic(t *testing.T) {
	factory := func() bb.Problem {
		return flowshop.NewProblem(flowshop.Taillard(10, 6, 3), flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	run := func(seed int64) ([]LockstepEvent, Result) {
		l := NewLockstep(factory, Options{Peers: 4, Seed: seed, StepBudget: 300})
		for !l.Sweep() {
		}
		return l.Events(), l.Result()
	}
	ev1, res1 := run(9)
	ev2, res2 := run(9)
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		a, b := ev1[i], ev2[i]
		if a.Sweep != b.Sweep || a.Kind != b.Kind || a.From != b.From || a.To != b.To || !a.Interval.Equal(b.Interval) {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a, b)
		}
	}
	for i := range res1.PerPeer {
		if res1.PerPeer[i] != res2.PerPeer[i] {
			t.Fatalf("per-peer work differs: %v vs %v", res1.PerPeer, res2.PerPeer)
		}
	}
	ev3, _ := run(10)
	same := len(ev1) == len(ev3)
	if same {
		for i := range ev1 {
			if ev1[i].Kind != ev3[i].Kind || ev1[i].From != ev3[i].From || ev1[i].To != ev3[i].To {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestLockstepSinglePeer degenerates to the sequential engine exactly.
func TestLockstepSinglePeer(t *testing.T) {
	factory := func() bb.Problem { return knapsack.NewProblem(knapsack.Random(14, 3)) }
	want, wantStats := bb.Solve(factory(), bb.Infinity)
	res, ok := SolveLockstep(factory, Options{Peers: 1}, 0)
	if !ok {
		t.Fatal("did not terminate")
	}
	if res.Best.Cost != want.Cost || res.Stats.Explored != wantStats.Explored {
		t.Fatalf("got cost %d / %d nodes, want %d / %d", res.Best.Cost, res.Stats.Explored, want.Cost, wantStats.Explored)
	}
	if res.Steals != 0 || res.StealAttempts != 0 {
		t.Fatalf("single peer stole: %d/%d", res.Steals, res.StealAttempts)
	}
}

// TestLockstepBlockedRingStillTerminates: with every link blocked the ring
// cannot share work or pass the token — but once the hook unblocks (here:
// after peer 0 finishes everything alone) the token must still complete a
// round and terminate. Guards against the partition hook wedging the
// termination protocol permanently.
func TestLockstepBlockedRingStillTerminates(t *testing.T) {
	factory := func() bb.Problem { return knapsack.NewProblem(knapsack.Random(14, 3)) }
	l := NewLockstep(factory, Options{Peers: 3, Seed: 1, StepBudget: 100})
	blocked := true
	l.Blocked = func(a, b int) bool { return blocked }
	for i := 0; i < 1000 && !l.Sweep(); i++ {
		if l.Remaining(0).IsEmpty() {
			blocked = false // partition heals once the work is done
		}
	}
	if !l.Terminated() {
		t.Fatal("ring never terminated after the partition healed")
	}
	res := l.Result()
	want, _ := bb.Solve(factory(), bb.Infinity)
	if res.Best.Cost != want.Cost {
		t.Fatalf("best %d, want %d", res.Best.Cost, want.Cost)
	}
	if res.Steals != 0 {
		t.Fatalf("%d steals crossed a fully blocked ring", res.Steals)
	}
}
