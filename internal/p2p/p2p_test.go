package p2p

import (
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/tsp"
)

// TestP2PSolvesFlowshop: the decentralized runtime proves the sequential
// optimum across several concurrency levels and seeds. Only deterministic
// outcomes are asserted here: steal counts depend on goroutine scheduling
// (a fast host can legitimately finish a small instance solo before any
// thief is served), so distribution properties are pinned on the lockstep
// driver (lockstep_test.go), where the schedule is part of the seed.
func TestP2PSolvesFlowshop(t *testing.T) {
	ins := flowshop.Taillard(12, 10, 5)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := bb.Solve(factory(), bb.Infinity)
	for _, peers := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			res, err := Solve(factory, Options{Peers: peers, Seed: seed, StepBudget: 500})
			if err != nil {
				t.Fatalf("peers=%d seed=%d: %v", peers, seed, err)
			}
			if res.Best.Cost != want.Cost {
				t.Fatalf("peers=%d seed=%d: best %d, want %d", peers, seed, res.Best.Cost, want.Cost)
			}
			if res.TokenRounds == 0 {
				t.Errorf("peers=%d seed=%d: termination without token rounds", peers, seed)
			}
		}
	}
}

// TestP2PSinglePeer degenerates to sequential exploration.
func TestP2PSinglePeer(t *testing.T) {
	ins := knapsack.Random(14, 3)
	factory := func() bb.Problem { return knapsack.NewProblem(ins) }
	want, wantStats := bb.Solve(factory(), bb.Infinity)
	res, err := Solve(factory, Options{Peers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("best %d, want %d", res.Best.Cost, want.Cost)
	}
	if res.Stats.Explored != wantStats.Explored {
		t.Fatalf("explored %d, sequential %d", res.Stats.Explored, wantStats.Explored)
	}
	if res.Steals != 0 || res.StealAttempts != 0 {
		t.Fatalf("single peer stole: %d/%d", res.Steals, res.StealAttempts)
	}
}

// TestP2PTSP: problem independence.
func TestP2PTSP(t *testing.T) {
	ins := tsp.RandomEuclidean(10, 200, 8)
	factory := func() bb.Problem { return tsp.NewProblem(ins) }
	want, _ := bb.Solve(factory(), bb.Infinity)
	res, err := Solve(factory, Options{Peers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestP2PWithInitialUpper: priming at the optimum leaves no improving leaf;
// priming above recovers the solution.
func TestP2PWithInitialUpper(t *testing.T) {
	ins := flowshop.Taillard(10, 6, 21)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := bb.Solve(factory(), bb.Infinity)
	res, err := Solve(factory, Options{Peers: 4, InitialUpper: want.Cost + 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("primed best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestP2PWorkDistribution: with enough peers and a real workload, more
// than one peer ends up exploring (the steal mechanism spreads work). The
// lockstep driver makes this deterministic — under the goroutine runtime
// the same property is a coin flip on a loaded single-core host.
func TestP2PWorkDistribution(t *testing.T) {
	ins := flowshop.Taillard(12, 10, 5)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	res, ok := SolveLockstep(factory, Options{Peers: 4, Seed: 11, StepBudget: 200}, 0)
	if !ok {
		t.Fatal("lockstep ring did not terminate")
	}
	if res.Steals == 0 {
		t.Fatalf("no steals happened: %v", res.PerPeer)
	}
	working := 0
	for _, n := range res.PerPeer {
		if n > 0 {
			working++
		}
	}
	if working < 2 {
		t.Fatalf("only %d peers explored anything: %v", working, res.PerPeer)
	}
}

// TestP2PTerminatesPromptly guards against termination-protocol hangs.
func TestP2PTerminatesPromptly(t *testing.T) {
	ins := flowshop.Taillard(9, 5, 2)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Solve(factory, Options{Peers: 6, Seed: 5}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("p2p resolution hung")
	}
}
