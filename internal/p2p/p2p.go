// Package p2p implements the peer-to-peer paradigm the paper announces as
// future work (§6: "It is also planned to use the approach with a peer to
// peer paradigm. This paradigm makes it possible to push far the
// scalability limits of the method.").
//
// The interval coding carries over unchanged: a work unit is still an
// interval, but instead of a farmer partitioning a central INTERVALS set,
// hungry peers steal directly from randomly chosen victims — the victim
// folds its remaining work, splits it in half, restricts its own explorer
// to the left part and hands the right part over. No central copy of the
// work exists, so the farmer bottleneck disappears; what must be rebuilt is
// termination detection, which the farmer got for free (§4.3). This
// package uses the Dijkstra–Feijen–van Gasteren ring-token algorithm with
// conservative blackening: any peer that donated work since the last token
// pass taints the token, forcing another round.
//
// Solution sharing degenerates to a shared incumbent cell: peers publish
// improvements immediately and adopt the global cost between steps —
// rules (2) and (3) of §4.4 without the coordinator in the middle.
package p2p

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
)

// Options parameterizes a peer-to-peer resolution.
type Options struct {
	// Peers is the number of concurrent B&B processes. Default 4.
	Peers int
	// InitialUpper primes the shared incumbent (0 → Infinity).
	InitialUpper int64
	// StepBudget is the engine slice between protocol interactions.
	// Default 4096.
	StepBudget int64
	// Seed drives victim selection. Runs are concurrent, so equal seeds
	// do not make runs identical; the seed only pins the victim
	// sequence per peer.
	Seed int64
}

// Result summarizes a resolution.
type Result struct {
	// Best is the proven optimum.
	Best bb.Solution
	// Stats aggregates all peers' engine counters.
	Stats bb.Stats
	// Steals counts successful work transfers; StealAttempts all tries.
	Steals, StealAttempts int64
	// TokenRounds counts full circulations of the termination token.
	TokenRounds int64
	// PerPeer are the per-peer explored-node counts.
	PerPeer []int64
}

// sharedBest is the decentralized SOLUTION: an incumbent cell all peers
// read and write. A mutex (not atomics) keeps cost and path consistent;
// contention is negligible next to exploration.
type sharedBest struct {
	mu   sync.Mutex
	cost int64
	path []int
}

func (b *sharedBest) get() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cost
}

func (b *sharedBest) offer(sol bb.Solution) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sol.Cost < b.cost {
		b.cost = sol.Cost
		b.path = append(b.path[:0], sol.Path...)
	}
}

func (b *sharedBest) solution() bb.Solution {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.path == nil {
		return bb.Solution{Cost: b.cost}
	}
	return bb.Solution{Cost: b.cost, Path: append([]int(nil), b.path...)}
}

// stealRequest asks a victim for work; the reply is an interval (empty =
// nothing to give).
type stealRequest struct {
	reply chan interval.Interval
}

// token is the termination-detection message.
type token struct {
	black  bool
	rounds int64
}

// peer is one B&B process.
type peer struct {
	idx   int
	ex    *core.Explorer
	rng   *rand.Rand
	best  *sharedBest
	group *group

	steals chan stealRequest
	tokens chan token

	// dirty marks "donated work since last token pass" (conservative
	// blackening).
	dirty bool

	stats struct {
		steals, attempts int64
	}
}

// group is the shared wiring of a resolution.
type group struct {
	peers []*peer
	done  chan struct{} // closed on termination
	once  sync.Once

	mu          sync.Mutex
	tokenRounds int64
}

func (g *group) terminate(rounds int64) {
	g.once.Do(func() {
		g.mu.Lock()
		g.tokenRounds = rounds
		g.mu.Unlock()
		close(g.done)
	})
}

// fillDefaults normalizes the options in place.
func (opt *Options) fillDefaults() {
	if opt.Peers <= 0 {
		opt.Peers = 4
	}
	if opt.StepBudget <= 0 {
		opt.StepBudget = 4096
	}
	if opt.InitialUpper <= 0 {
		opt.InitialUpper = bb.Infinity
	}
}

// newGroup wires a ring of peers over fresh problems: peer 0 starts with
// the whole tree, the others start empty and steal their first interval —
// exactly how grid workers join an ongoing computation. Shared by the
// goroutine runtime (Solve) and the deterministic lockstep driver.
func newGroup(factory func() bb.Problem, opt Options) (*group, *sharedBest) {
	nb := core.NewNumbering(factory().Shape())
	best := &sharedBest{cost: opt.InitialUpper}
	g := &group{done: make(chan struct{})}
	for i := 0; i < opt.Peers; i++ {
		p := &peer{
			idx:    i,
			rng:    rand.New(rand.NewSource(opt.Seed + int64(i)*7919)),
			best:   best,
			group:  g,
			steals: make(chan stealRequest, opt.Peers),
			tokens: make(chan token, 1),
		}
		iv := interval.Interval{}
		if i == 0 {
			iv = nb.RootRange()
		}
		p.ex = core.NewExplorer(factory(), nb, iv, opt.InitialUpper)
		p.ex.OnImprove = func(sol bb.Solution) { best.offer(sol) }
		g.peers = append(g.peers, p)
	}
	return g, best
}

// result assembles the common Result block from the group's final state.
func (g *group) result(best *sharedBest) Result {
	res := Result{Best: best.solution(), PerPeer: make([]int64, len(g.peers))}
	for i, p := range g.peers {
		st := p.ex.Stats()
		res.Stats.Add(st)
		res.PerPeer[i] = st.Explored
		res.Steals += p.stats.steals
		res.StealAttempts += p.stats.attempts
	}
	g.mu.Lock()
	res.TokenRounds = g.tokenRounds
	g.mu.Unlock()
	return res
}

// Solve runs the peer-to-peer resolution to completion and returns the
// proven optimum. factory must return a fresh Problem per call.
func Solve(factory func() bb.Problem, opt Options) (Result, error) {
	opt.fillDefaults()
	upper := opt.InitialUpper
	g, best := newGroup(factory, opt)

	var wg sync.WaitGroup
	for _, p := range g.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			p.run(opt.StepBudget)
		}(p)
	}
	// Peer 0 initiates the termination token once; it circulates
	// forever, held by busy peers, until a white round completes.
	g.peers[0].tokens <- token{}
	wg.Wait()

	res := g.result(best)
	if res.Best.Cost < upper && !res.Best.Valid() {
		return res, fmt.Errorf("p2p: inconsistent incumbent (cost %d without a path)", res.Best.Cost)
	}
	return res, nil
}

// run is the peer's main loop.
func (p *peer) run(stepBudget int64) {
	for {
		select {
		case <-p.group.done:
			return
		default:
		}
		p.serveSteals()
		p.serveToken()
		if p.ex.Done() {
			if !p.trySteal() {
				// Idle: wait for work, the token, or the end.
				if !p.idleWait() {
					return
				}
			}
			continue
		}
		p.ex.AdoptBest(p.best.get())
		p.ex.Step(stepBudget)
	}
}

// serveSteals answers pending steal requests without blocking. A victim
// with work folds its remainder (eq. 10), splits at the midpoint, restricts
// itself to the left half (the part it is already exploring, §4.2) and
// donates the right half.
func (p *peer) serveSteals() {
	for {
		select {
		case req := <-p.steals:
			req.reply <- p.donate()
		default:
			return
		}
	}
}

// donate carves off half of the remaining interval via the shared donation
// operator (core.Donate / interval.Halve — the same algebra the multicore
// shard engine steals with), or returns an empty interval when there is
// nothing worth giving.
func (p *peer) donate() interval.Interval {
	give := core.Donate(p.ex)
	if !give.IsEmpty() {
		p.dirty = true
	}
	return give
}

// serveToken forwards the termination token if this peer is idle; busy
// peers hold it (they are living proof the computation is not over).
func (p *peer) serveToken() {
	if !p.ex.Done() {
		return
	}
	select {
	case t := <-p.tokens:
		p.forwardToken(t)
	default:
	}
}

// advanceToken applies the Dijkstra–Feijen–van Gasteren counting rules at
// this peer and reports whether a white round completed (termination). It
// is a pure state transition — delivery to the successor is the caller's
// business — so the goroutine runtime and the deterministic lockstep driver
// share the exact same termination logic.
func (p *peer) advanceToken(t token) (token, bool) {
	if p.dirty {
		t.black = true
		p.dirty = false
	}
	if p.idx == 0 {
		t.rounds++
		if !t.black && t.rounds > 1 {
			// A full circulation of a white token over idle
			// peers: no work anywhere, nothing in flight.
			return t, true
		}
		t.black = false // start a fresh round
	}
	return t, false
}

// forwardToken applies the Dijkstra–Feijen–van Gasteren rules and passes
// the token along the ring.
func (p *peer) forwardToken(t token) {
	t, terminated := p.advanceToken(t)
	if terminated {
		p.group.terminate(t.rounds)
		return
	}
	n := len(p.group.peers)
	next := p.group.peers[(p.idx+1)%n]
	select {
	case next.tokens <- t:
	case <-p.group.done:
	}
}

// trySteal probes the other peers for work in seeded random order until
// one donates (most peers are empty early on: a single random probe would
// routinely miss the few holders). While waiting for a reply it keeps
// serving its own steal queue, so two peers stealing from each other
// cannot deadlock.
func (p *peer) trySteal() bool {
	n := len(p.group.peers)
	if n == 1 {
		return false
	}
	for _, off := range p.rng.Perm(n - 1) {
		victimIdx := off
		if victimIdx >= p.idx {
			victimIdx++
		}
		if p.stealFrom(p.group.peers[victimIdx]) {
			return true
		}
		select {
		case <-p.group.done:
			return false
		default:
		}
	}
	return false
}

// stealFrom asks one victim for work and waits for the reply.
func (p *peer) stealFrom(victim *peer) bool {
	p.stats.attempts++
	req := stealRequest{reply: make(chan interval.Interval, 1)}
	select {
	case victim.steals <- req:
	case <-p.group.done:
		return false
	}
	for {
		select {
		case iv := <-req.reply:
			if iv.IsEmpty() {
				return false
			}
			p.ex.Reassign(iv)
			p.ex.AdoptBest(p.best.get())
			p.stats.steals++
			return true
		case other := <-p.steals:
			other.reply <- interval.Interval{} // nothing to give while hungry
		case t := <-p.tokens:
			p.forwardToken(t)
		case <-p.group.done:
			return false
		}
	}
}

// idleWait blocks until a steal request, the token or termination arrives.
// It returns false when the resolution is over.
func (p *peer) idleWait() bool {
	select {
	case req := <-p.steals:
		req.reply <- interval.Interval{}
		return true
	case t := <-p.tokens:
		p.forwardToken(t)
		return true
	case <-p.group.done:
		return false
	}
}
