// Lockstep is the deterministic twin of Solve: the same peers, the same
// steal-by-halving donation, the same shared incumbent and the same
// Dijkstra–Feijen–van Gasteren termination rules, driven round-robin by a
// single goroutine instead of one goroutine per peer. Channel exchanges
// collapse into direct calls (a steal is victim.donate(), a token pass is a
// field move), which removes the scheduler from the trace: equal seeds give
// byte-identical event sequences. internal/harness uses it to put the p2p
// runtime under chaos (ring partitions, delayed tokens) while still being
// able to assert exact work-conservation invariants.
package p2p

import (
	"math/rand"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
)

// LockstepEvent is one entry of the deterministic event trace.
type LockstepEvent struct {
	// Sweep is the round-robin pass the event happened in.
	Sweep int
	// Kind is one of "steal", "steal-empty", "steal-blocked",
	// "token", "token-blocked", "terminate", "kill", "restore".
	Kind string
	// From and To are peer indices (steal: thief ← victim; token:
	// holder → successor). -1 when not applicable.
	From, To int
	// Interval carries the moved work for "steal" events.
	Interval interval.Interval
}

// Lockstep drives a peer ring deterministically. Create with NewLockstep,
// advance with Sweep until it reports termination. Not safe for concurrent
// use — single-threadedness is its entire point.
type Lockstep struct {
	g       *group
	best    *sharedBest
	opt     Options
	rng     *rand.Rand
	factory func() bb.Problem // retained for Restore's fresh explorers

	// Blocked, when non-nil, vetoes communication between two peers —
	// the chaos hook. A blocked pair can neither steal nor pass the
	// token; a partition of the ring is Blocked returning true across
	// the cut. Termination stays correct under any Blocked function:
	// the token simply waits out the partition, it is never lost.
	Blocked func(a, b int) bool

	token      token
	tokenAt    int
	terminated bool

	// Ring checkpointing (ringstore.go): per-peer snapshot namespaces,
	// crash flags and restore epochs, nil/absent until AttachStore.
	stores   []*checkpoint.Store
	dead     []bool
	epochs   []int64
	storeErr error

	events []LockstepEvent
	sweeps int
}

// NewLockstep builds a deterministic ring. factory must return a fresh
// Problem per call.
func NewLockstep(factory func() bb.Problem, opt Options) *Lockstep {
	opt.fillDefaults()
	g, best := newGroup(factory, opt)
	return &Lockstep{
		g:       g,
		best:    best,
		opt:     opt,
		factory: factory,
		// A ring-level rng (not the per-peer ones): victim choices are
		// drawn in deterministic visit order.
		rng: rand.New(rand.NewSource(opt.Seed ^ 0x5bd1e995)),
	}
}

// Peers returns the ring size.
func (l *Lockstep) Peers() int { return len(l.g.peers) }

// Terminated reports whether the white-token round completed.
func (l *Lockstep) Terminated() bool { return l.terminated }

// Events returns the accumulated deterministic trace.
func (l *Lockstep) Events() []LockstepEvent { return l.events }

// Remaining returns peer i's current folded remainder (eq. 10).
func (l *Lockstep) Remaining(i int) interval.Interval {
	return l.g.peers[i].ex.Remaining()
}

// blocked consults the chaos hook.
func (l *Lockstep) blocked(a, b int) bool {
	return l.Blocked != nil && l.Blocked(a, b)
}

// record appends a trace event.
func (l *Lockstep) record(kind string, from, to int, iv interval.Interval) {
	l.events = append(l.events, LockstepEvent{Sweep: l.sweeps, Kind: kind, From: from, To: to, Interval: iv})
}

// Sweep performs one round-robin pass: every peer, in ring order, either
// explores one budget slice or — when idle — tries one steal and serves the
// token. It returns true when the resolution terminated.
func (l *Lockstep) Sweep() bool {
	if l.terminated {
		return true
	}
	l.sweeps++
	for _, p := range l.g.peers {
		if l.Dead(p.idx) {
			// A crashed peer does nothing — and because the token is
			// never delivered into it (serveToken), the ring cannot
			// declare termination while its work is unaccounted for.
			continue
		}
		if !p.ex.Done() {
			p.ex.AdoptBest(l.best.get())
			p.ex.Step(l.opt.StepBudget)
			continue
		}
		l.trySteal(p)
		l.serveToken(p)
		if l.terminated {
			return true
		}
	}
	return l.terminated
}

// trySteal probes the other peers in seeded random order until one donates
// half of its remainder — the synchronous form of the concurrent trySteal.
func (l *Lockstep) trySteal(p *peer) {
	n := len(l.g.peers)
	if n == 1 {
		return
	}
	for _, off := range l.rng.Perm(n - 1) {
		victimIdx := off
		if victimIdx >= p.idx {
			victimIdx++
		}
		p.stats.attempts++
		if l.blocked(p.idx, victimIdx) || l.Dead(victimIdx) {
			// A dead victim is indistinguishable from a partitioned
			// one: the request goes unanswered.
			l.record("steal-blocked", p.idx, victimIdx, interval.Interval{})
			continue
		}
		victim := l.g.peers[victimIdx]
		iv := victim.donate()
		if iv.IsEmpty() {
			l.record("steal-empty", p.idx, victimIdx, interval.Interval{})
			continue
		}
		p.ex.Reassign(iv)
		p.ex.AdoptBest(l.best.get())
		p.stats.steals++
		l.record("steal", p.idx, victimIdx, iv.Clone())
		// Ownership moved: the stolen interval must enter the thief's
		// snapshot now, before the victim's restriction makes it
		// unreachable from any other peer's checkpoint.
		l.noteSteal(p.idx)
		return
	}
}

// serveToken advances the termination token if this idle peer holds it.
// Busy peers hold the token in the concurrent runtime; here "busy" can only
// be observed between sweeps, so the token moves at most one hop per visit.
func (l *Lockstep) serveToken(p *peer) {
	if l.tokenAt != p.idx || !p.ex.Done() {
		return
	}
	next := (p.idx + 1) % len(l.g.peers)
	if l.blocked(p.idx, next) || l.Dead(next) {
		// The partition (or the successor's crash) holds the token; no
		// round can complete until it heals — conservative, like any
		// lost-message delay.
		l.record("token-blocked", p.idx, next, interval.Interval{})
		return
	}
	t, terminated := p.advanceToken(l.token)
	if terminated {
		l.g.terminate(t.rounds)
		l.terminated = true
		l.record("terminate", p.idx, -1, interval.Interval{})
		return
	}
	l.token = t
	l.tokenAt = next
	l.record("token", p.idx, next, interval.Interval{})
}

// Result assembles the final summary; call after termination.
func (l *Lockstep) Result() Result {
	return l.g.result(l.best)
}

// SolveLockstep runs a lockstep ring to completion (maxSweeps bounds
// runaway configurations; ≤ 0 means a generous default) and returns the
// result plus whether it actually terminated.
func SolveLockstep(factory func() bb.Problem, opt Options, maxSweeps int) (Result, bool) {
	l := NewLockstep(factory, opt)
	if maxSweeps <= 0 {
		maxSweeps = 1 << 20
	}
	for i := 0; i < maxSweeps; i++ {
		if l.Sweep() {
			return l.Result(), true
		}
	}
	return l.Result(), false
}
