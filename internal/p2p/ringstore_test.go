package p2p

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/knapsack"
)

func ringFactory() bb.Problem { return knapsack.NewProblem(knapsack.Random(16, 21)) }

// attachRing builds a lockstep ring with per-peer checkpointing over a
// fresh store rooted at dir.
func attachRing(t *testing.T, dir string, peers int, seed int64) (*Lockstep, *checkpoint.Store) {
	t.Helper()
	l := NewLockstep(ringFactory, Options{Peers: peers, Seed: seed, StepBudget: 300})
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	return l, store
}

// runToEnd sweeps until termination or the bound, failing on a wedged ring.
func runToEnd(t *testing.T, l *Lockstep, maxSweeps int) {
	t.Helper()
	for i := 0; i < maxSweeps; i++ {
		if l.Sweep() {
			return
		}
	}
	t.Fatalf("ring did not terminate within %d sweeps", maxSweeps)
}

// TestRingKillRestoreTerminatesAtOptimum: a peer is killed right after it
// stole work — with no explicit checkpoint call in between, so the only
// durable record of its interval is the steal-time save — then restored
// from its own snapshot. The ring must still terminate at the sequential
// optimum: the re-opened frontier covers everything the dead peer owned.
func TestRingKillRestoreTerminatesAtOptimum(t *testing.T) {
	want, _ := bb.Solve(ringFactory(), bb.Infinity)
	l, _ := attachRing(t, t.TempDir(), 4, 5)
	const victim = 1
	killedAt := -1
	for s := 0; !l.Sweep(); s++ {
		if killedAt < 0 && !l.Remaining(victim).IsEmpty() {
			l.Kill(victim)
			killedAt = s
		}
		if killedAt >= 0 && s == killedAt+5 {
			iv, err := l.Restore(victim)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if iv.IsEmpty() {
				t.Fatal("restore re-opened an empty frontier for a peer killed with work")
			}
			if !l.g.peers[victim].dirty {
				t.Fatal("restored peer is not dirty: the next token round could wrongly stay white")
			}
		}
		if s > 200000 {
			t.Fatal("no termination")
		}
	}
	if killedAt < 0 {
		t.Fatal("victim never held work; test exercised nothing")
	}
	if err := l.StoreErr(); err != nil {
		t.Fatalf("checkpoint error during run: %v", err)
	}
	res := l.Result()
	if res.Best.Cost != want.Cost {
		t.Fatalf("best %d after kill/restore, want %d", res.Best.Cost, want.Cost)
	}
	kills, restores := 0, 0
	for _, ev := range l.Events() {
		switch ev.Kind {
		case "kill":
			kills++
		case "restore":
			restores++
		}
	}
	if kills != 1 || restores != 1 {
		t.Fatalf("trace has %d kills / %d restores, want 1/1", kills, restores)
	}
}

// TestRingDeadPeerBlocksTermination: while any peer is down, the token
// cannot complete a round, so the ring must not terminate — even after
// every live peer drains. Only the restore unblocks it, and the result is
// still the optimum: the dead peer's work was re-opened, not forgotten.
func TestRingDeadPeerBlocksTermination(t *testing.T) {
	want, _ := bb.Solve(ringFactory(), bb.Infinity)
	l, _ := attachRing(t, t.TempDir(), 3, 1)
	const victim = 2
	killed := false
	for s := 0; s < 200000 && !killed; s++ {
		if !l.Remaining(victim).IsEmpty() {
			l.Kill(victim)
			killed = true
			break
		}
		if l.Sweep() {
			t.Fatal("terminated before the kill could happen")
		}
	}
	if !killed {
		t.Fatal("victim never held work")
	}
	for i := 0; i < 2000; i++ {
		if l.Sweep() {
			t.Fatalf("ring terminated at sweep %d with peer %d dead and its work lost", i, victim)
		}
	}
	if _, err := l.Restore(victim); err != nil {
		t.Fatalf("restore: %v", err)
	}
	runToEnd(t, l, 200000)
	if res := l.Result(); res.Best.Cost != want.Cost {
		t.Fatalf("best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestRingRestoreFallsBackToPrevGeneration: a torn current snapshot does
// not strand a dead peer — Restore falls back to the previous generation
// (which the steal-time double save guarantees also covers the stolen
// work) and the ring still proves the optimum.
func TestRingRestoreFallsBackToPrevGeneration(t *testing.T) {
	want, _ := bb.Solve(ringFactory(), bb.Infinity)
	dir := t.TempDir()
	l, store := attachRing(t, dir, 4, 5)
	const victim = 1
	for s := 0; l.Remaining(victim).IsEmpty(); s++ {
		if l.Sweep() {
			t.Fatal("terminated before the victim got work")
		}
		if s > 200000 {
			t.Fatal("victim never held work")
		}
	}
	l.Kill(victim)
	// Tear the current intervals file; the .prev generation (written by
	// the same steal's double save) stays intact.
	path := filepath.Join(dir, "peer-1", "intervals.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	iv, err := l.Restore(victim)
	if err != nil {
		t.Fatalf("restore with torn current generation: %v", err)
	}
	if iv.IsEmpty() {
		t.Fatal("fallback restore re-opened an empty frontier")
	}
	st := store.Stats()
	if st.FallbackLoads == 0 || st.CorruptSnapshots == 0 {
		t.Fatalf("stats %+v: fallback restore left no trace", st)
	}
	runToEnd(t, l, 200000)
	if res := l.Result(); res.Best.Cost != want.Cost {
		t.Fatalf("best %d after fallback restore, want %d", res.Best.Cost, want.Cost)
	}
}

// TestRingRestoreBumpsEpoch: each restore advances the persisted epoch, so
// incarnations are totally ordered on disk just like farmer restarts.
func TestRingRestoreBumpsEpoch(t *testing.T) {
	l, store := attachRing(t, t.TempDir(), 2, 3)
	ns, err := store.Namespace("peer-0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		l.Kill(0)
		if _, err := l.Restore(0); err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		snap, err := ns.Load()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch != int64(i) {
			t.Fatalf("epoch %d after %d restores", snap.Epoch, i)
		}
	}
}

// TestRingRestoreOfLivePeerRefused: Restore is only meaningful for a
// crashed peer; restoring a live one would clobber in-memory progress.
func TestRingRestoreOfLivePeerRefused(t *testing.T) {
	l, _ := attachRing(t, t.TempDir(), 2, 3)
	if _, err := l.Restore(0); err == nil {
		t.Fatal("restore of a live peer succeeded")
	}
	if l.Dead(0) {
		t.Fatal("failed restore marked the peer dead")
	}
}

// TestRingCheckpointAllSkipsDead: the periodic cadence must not overwrite
// a dead peer's snapshot with its (stale, in-memory) explorer state — the
// disk image is frozen at the crash, exactly like a farmer's.
func TestRingCheckpointAllSkipsDead(t *testing.T) {
	dir := t.TempDir()
	l, _ := attachRing(t, dir, 2, 3)
	l.Kill(0)
	before, err := os.ReadFile(filepath.Join(dir, "peer-0", "intervals.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "peer-0", "intervals.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("CheckpointAll rewrote a dead peer's snapshot")
	}
}
