package tree

import (
	"math/big"
	"testing"
	"testing/quick"
)

// TestPermutationShape checks the §3.1 permutation-tree structure: N-d
// children at depth d, leaves at depth N, and condition (4):
// |sons(n)| = |sons(father(n))| - 1.
func TestPermutationShape(t *testing.T) {
	p := Permutation{N: 5}
	if p.Depth() != 5 {
		t.Fatalf("depth = %d", p.Depth())
	}
	for d := 0; d < 5; d++ {
		if got := p.Branching(d); got != 5-d {
			t.Errorf("branching(%d) = %d, want %d", d, got, 5-d)
		}
		if d > 0 && p.Branching(d) != p.Branching(d-1)-1 {
			t.Errorf("condition (4) violated at depth %d", d)
		}
	}
}

// TestPermutationWeights checks eq. (3): weight(depth) = (N-depth)!.
func TestPermutationWeights(t *testing.T) {
	w := Weights(Permutation{N: 6})
	want := []int64{720, 120, 24, 6, 2, 1, 1}
	for d, x := range want {
		if w[d].Int64() != x {
			t.Errorf("weight(%d) = %s, want %d", d, w[d], x)
		}
	}
}

// TestBinaryWeights checks eq. (2): weight(depth) = 2^(P-depth).
func TestBinaryWeights(t *testing.T) {
	w := Weights(Binary{P: 8})
	for d := 0; d <= 8; d++ {
		if want := int64(1) << (8 - d); w[d].Int64() != want {
			t.Errorf("weight(%d) = %s, want %d", d, w[d], want)
		}
	}
}

// TestUniformWeights: K^(P-depth).
func TestUniformWeights(t *testing.T) {
	w := Weights(Uniform{P: 4, K: 3})
	want := []int64{81, 27, 9, 3, 1}
	for d, x := range want {
		if w[d].Int64() != x {
			t.Errorf("weight(%d) = %s, want %d", d, w[d], x)
		}
	}
}

// TestWeightRecurrence is eq. (1) as a property: the weight of a node
// equals the sum of its children's weights, for every shape and depth.
func TestWeightRecurrence(t *testing.T) {
	shapes := []Shape{Permutation{N: 9}, Binary{P: 12}, Uniform{P: 6, K: 4}}
	for _, s := range shapes {
		w := Weights(s)
		for d := 0; d < s.Depth(); d++ {
			sum := new(big.Int).Mul(w[d+1], big.NewInt(int64(s.Branching(d))))
			if sum.Cmp(w[d]) != 0 {
				t.Errorf("%s: weight(%d)=%s but %d children of weight %s", s.Name(), d, w[d], s.Branching(d), w[d+1])
			}
		}
	}
}

// TestLeafCountFiftyFactorial pins the Ta056 scale: the 50-job tree has
// exactly 50! leaves, a 65-digit number.
func TestLeafCountFiftyFactorial(t *testing.T) {
	want, ok := new(big.Int).SetString("30414093201713378043612608166064768844377641568960512000000000000", 10)
	if !ok {
		t.Fatal("bad literal")
	}
	if got := LeafCount(Permutation{N: 50}); got.Cmp(want) != 0 {
		t.Fatalf("50! = %s, want %s", got, want)
	}
}

// TestWeightsPanicOnBadShape: malformed shapes are programming errors.
func TestWeightsPanicOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive branching")
		}
	}()
	Weights(Uniform{P: 3, K: 0})
}

// TestValidate covers the rank-path guard.
func TestValidate(t *testing.T) {
	s := Permutation{N: 4}
	if err := Validate(s, []int{3, 2, 1, 0}); err != nil {
		t.Errorf("valid deepest path rejected: %v", err)
	}
	if err := Validate(s, nil); err != nil {
		t.Errorf("root rejected: %v", err)
	}
	if err := Validate(s, []int{4}); err == nil {
		t.Error("rank == branching accepted")
	}
	if err := Validate(s, []int{0, -1}); err == nil {
		t.Error("negative rank accepted")
	}
	if err := Validate(s, []int{0, 0, 0, 0, 0}); err == nil {
		t.Error("path deeper than tree accepted")
	}
}

// TestValidateProperty: any rank vector within the branching limits passes.
func TestValidateProperty(t *testing.T) {
	s := Binary{P: 16}
	f := func(bits uint16, length uint8) bool {
		l := int(length) % 17
		ranks := make([]int, l)
		for i := range ranks {
			ranks[i] = int((bits >> i) & 1)
		}
		return Validate(s, ranks) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNamesAndMaxPath covers the descriptive helpers.
func TestNamesAndMaxPath(t *testing.T) {
	if (Permutation{N: 3}).Name() != "permutation(3)" {
		t.Error("permutation name")
	}
	if (Binary{P: 4}).Name() != "binary(4)" {
		t.Error("binary name")
	}
	if (Uniform{P: 2, K: 5}).Name() != "uniform(5^2)" {
		t.Error("uniform name")
	}
	if MaxPath(Permutation{N: 7}) != 8 {
		t.Error("max path")
	}
}
