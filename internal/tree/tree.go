// Package tree models the regular search trees over which the paper's
// interval coding is defined (Mezmaz, Melab, Talbi; INRIA RR-5945, §3).
//
// A tree is regular when every node at the same depth has the same number of
// children. For such trees the weight of a node — the number of leaves of the
// subtree rooted at it (eq. 1) — depends only on the node's depth, so a single
// per-depth weight vector computed once at startup replaces per-node weights
// (paper §3.1, Figure 1).
package tree

import (
	"fmt"
	"math/big"
)

// Shape describes a regular search tree. The root is at depth 0 and every
// leaf is at depth Depth(). Branching(d) reports how many children a node at
// depth d has; it must be positive for every d in [0, Depth()).
type Shape interface {
	// Depth returns P, the depth shared by all leaves.
	Depth() int
	// Branching returns the number of children of a node at the given
	// depth. It is only defined for depths in [0, Depth()).
	Branching(depth int) int
	// Name returns a short human-readable description of the shape.
	Name() string
}

// Permutation is the shape of the tree associated with problems whose
// solutions are permutations of N elements (paper §3.1): a node at depth d
// has N-d children, leaves live at depth N, and the weight of a node at
// depth d is (N-d)! (eq. 3).
type Permutation struct {
	// N is the number of elements being permuted.
	N int
}

// Depth returns N: a leaf fixes all N elements.
func (p Permutation) Depth() int { return p.N }

// Branching returns N-depth, the number of elements still free.
func (p Permutation) Branching(depth int) int { return p.N - depth }

// Name implements Shape.
func (p Permutation) Name() string { return fmt.Sprintf("permutation(%d)", p.N) }

// Binary is the shape of a complete binary tree of depth P. The weight of a
// node at depth d is 2^(P-d) (eq. 2).
type Binary struct {
	// P is the depth of the leaves.
	P int
}

// Depth implements Shape.
func (b Binary) Depth() int { return b.P }

// Branching implements Shape: every internal node has two children.
func (b Binary) Branching(int) int { return 2 }

// Name implements Shape.
func (b Binary) Name() string { return fmt.Sprintf("binary(%d)", b.P) }

// Uniform is the shape of a complete K-ary tree of depth P. The weight of a
// node at depth d is K^(P-d).
type Uniform struct {
	// P is the depth of the leaves.
	P int
	// K is the branching factor of every internal node.
	K int
}

// Depth implements Shape.
func (u Uniform) Depth() int { return u.P }

// Branching implements Shape.
func (u Uniform) Branching(int) int { return u.K }

// Name implements Shape.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d^%d)", u.K, u.P) }

// Weights returns the per-depth weight vector of the shape: Weights(s)[d] is
// the number of leaves of the subtree rooted at any node of depth d
// (paper §3.1, Figure 1). The returned slice has Depth()+1 entries; entry
// Depth() is always 1 (a leaf is its own single leaf, eq. 1).
//
// Weights validates the shape and panics if any branching factor is not
// positive, since a malformed shape would silently corrupt the number coding
// built on top of it.
func Weights(s Shape) []*big.Int {
	p := s.Depth()
	if p < 0 {
		panic(fmt.Sprintf("tree: shape %s has negative depth %d", s.Name(), p))
	}
	w := make([]*big.Int, p+1)
	w[p] = big.NewInt(1)
	for d := p - 1; d >= 0; d-- {
		k := s.Branching(d)
		if k <= 0 {
			panic(fmt.Sprintf("tree: shape %s has non-positive branching %d at depth %d", s.Name(), k, d))
		}
		w[d] = new(big.Int).Mul(w[d+1], big.NewInt(int64(k)))
	}
	return w
}

// LeafCount returns the total number of leaves of the tree, i.e. the weight
// of the root. It equals Weights(s)[0].
func LeafCount(s Shape) *big.Int {
	return Weights(s)[0]
}

// MaxPath returns the maximum number of nodes on a root-to-leaf path
// (Depth()+1), a convenient sizing hint for path-indexed buffers.
func MaxPath(s Shape) int { return s.Depth() + 1 }

// Validate checks that the rank path is a well-formed node address in the
// shape: every rank must satisfy 0 <= ranks[d] < Branching(d) and the path
// must not be longer than Depth(). It returns a descriptive error otherwise.
func Validate(s Shape, ranks []int) error {
	if len(ranks) > s.Depth() {
		return fmt.Errorf("tree: path of length %d exceeds depth %d of %s", len(ranks), s.Depth(), s.Name())
	}
	for d, r := range ranks {
		if k := s.Branching(d); r < 0 || r >= k {
			return fmt.Errorf("tree: rank %d at depth %d out of range [0,%d) in %s", r, d, k, s.Name())
		}
	}
	return nil
}
