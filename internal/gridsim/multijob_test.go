package gridsim

import (
	"testing"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
)

// multiTenantOracles solves every job of the scenario sequentially.
func multiTenantOracles(t *testing.T, cfg MultiJobConfig) map[string]bb.Solution {
	t.Helper()
	out := make(map[string]bb.Solution, len(cfg.Jobs))
	for _, sj := range cfg.Jobs {
		factory, err := sj.Spec.Factory()
		if err != nil {
			t.Fatal(err)
		}
		out[sj.ID], _ = bb.Solve(factory(), bb.Infinity)
	}
	return out
}

// TestMultiTenantGridScenario is the multi-tenant acceptance run: 8
// concurrent mixed-domain jobs over one simulated volatile fleet — hosts
// join, leave and crash on the availability model — must all terminate at
// their sequentially proven optima, with every tracked interval staying
// inside its own job's root the whole run (zero cross-job leakage), and
// the whole simulation must be deterministic per seed.
func TestMultiTenantGridScenario(t *testing.T) {
	cfg := MultiTenantScenario(42)
	oracles := multiTenantOracles(t, cfg)

	roots := make(map[string]interval.Interval, len(cfg.Jobs))
	for _, sj := range cfg.Jobs {
		factory, _ := sj.Spec.Factory()
		roots[sj.ID] = core.NewNumbering(factory().Shape()).RootRange()
	}

	sim, err := NewMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaks := 0
	sim.onTick = func(tick int) {
		if tick%25 != 0 {
			return
		}
		for id, root := range roots {
			fm := sim.Table().Farmer(id)
			if fm == nil {
				continue
			}
			for _, rec := range fm.IntervalsSnapshot() {
				if !rec.Interval.IsEmpty() && !root.ContainsInterval(rec.Interval) {
					leaks++
					t.Errorf("tick %d: job %s tracks %v outside its root", tick, id, rec.Interval)
				}
			}
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("service did not drain in %d ticks", res.Ticks)
	}
	if leaks > 0 {
		t.Fatalf("%d cross-job leaks observed", leaks)
	}
	if len(res.Jobs) != len(cfg.Jobs) {
		t.Fatalf("%d job results, submitted %d", len(res.Jobs), len(cfg.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.State != "done" {
			t.Errorf("job %s: state %s, want done", jr.ID, jr.State)
			continue
		}
		if jr.Best.Cost != oracles[jr.ID].Cost {
			t.Errorf("job %s: grid optimum %d, sequential %d", jr.ID, jr.Best.Cost, oracles[jr.ID].Cost)
		}
		if jr.Explored == 0 {
			t.Errorf("job %s: zero explored nodes accounted", jr.ID)
		}
	}
	if res.Table.FairShareAssignments == 0 {
		t.Error("no fair-share assignments — the fleet never multiplexed")
	}
	if res.Crashes == 0 && res.Leaves == 0 {
		t.Error("no churn events — the availability model never engaged")
	}

	// Determinism: an identically seeded service reproduces the run.
	again, err := NewMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := again.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Ticks != res.Ticks || res2.Joins != res.Joins || res2.Crashes != res.Crashes {
		t.Errorf("determinism: ticks/joins/crashes %d/%d/%d vs %d/%d/%d",
			res.Ticks, res.Joins, res.Crashes, res2.Ticks, res2.Joins, res2.Crashes)
	}
	for i := range res.Jobs {
		if res2.Jobs[i].Explored != res.Jobs[i].Explored {
			t.Errorf("determinism: job %s explored %d vs %d",
				res.Jobs[i].ID, res.Jobs[i].Explored, res2.Jobs[i].Explored)
		}
	}

	t.Logf("multi-tenant: ticks=%d joins=%d leaves=%d crashes=%d fair-share=%d resumed=%d",
		res.Ticks, res.Joins, res.Leaves, res.Crashes,
		res.Table.FairShareAssignments, res.Table.Resumed)
}

// TestMultiTenantServiceRestart kills the whole service mid-run and
// rebuilds it over the same checkpoint directory: every job must resume
// from its namespaced snapshot (not restart from scratch) and still
// terminate at its proven optimum.
func TestMultiTenantServiceRestart(t *testing.T) {
	cfg := MultiTenantScenario(7)
	cfg.CheckpointDir = t.TempDir()
	oracles := multiTenantOracles(t, cfg)

	// Phase 1: run long enough for several table checkpoints, then stop
	// as if the service host died.
	cfg.MaxTicks = 100
	sim, err := NewMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Fatalf("phase 1 finished in %d ticks — instance sizes too small to interrupt", res.Ticks)
	}

	// Phase 2: a fresh service over the same store and job list.
	cfg.MaxTicks = 0 // back to the default ceiling
	sim2, err := NewMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Finished {
		t.Fatalf("restarted service did not drain in %d ticks", res2.Ticks)
	}
	if res2.Table.Resumed == 0 {
		t.Error("no job resumed from its checkpoint namespace")
	}
	for _, jr := range res2.Jobs {
		if jr.State != "done" {
			t.Errorf("job %s: state %s after restart, want done", jr.ID, jr.State)
			continue
		}
		if jr.Best.Cost != oracles[jr.ID].Cost {
			t.Errorf("job %s: post-restart optimum %d, sequential %d", jr.ID, jr.Best.Cost, oracles[jr.ID].Cost)
		}
	}
	t.Logf("restart: phase1 ticks=%d, phase2 ticks=%d resumed=%d",
		res.Ticks, res2.Ticks, res2.Table.Resumed)
}

// TestMultiTenantFairShareWeights checks the scheduler's currency on the
// simulated fleet: the weight-3 flowshop job must, integrated over every
// tick where it coexists with the weight-1 tsp job, hold strictly more
// fleet power — discrete assignments make any single tick noisy, but the
// time integral must track the 3:1 entitlement ordering.
func TestMultiTenantFairShareWeights(t *testing.T) {
	cfg := MultiTenantScenario(99)
	sim, err := NewMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var heavySum, lightSum int64
	var window int
	sim.onTick = func(tick int) {
		var heavy, light int64
		var heavyLive, lightLive bool
		for _, p := range sim.Table().List() {
			if p.State != "running" {
				continue
			}
			switch p.ID {
			case "fs10x5a":
				heavy, heavyLive = p.FleetPower, true
			case "tsp9":
				light, lightLive = p.FleetPower, true
			}
		}
		if heavyLive && lightLive {
			heavySum += heavy
			lightSum += light
			window++
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if window < 20 {
		t.Fatalf("jobs coexisted for only %d ticks; scenario no longer exercises contention", window)
	}
	if heavySum <= lightSum {
		t.Errorf("weight-3 job integrated fleet power %d over %d ticks, weight-1 job %d — fair share ignored weights",
			heavySum, window, lightSum)
	}
	t.Logf("fair share: weight-3 power-integral %d vs weight-1 %d over %d shared ticks", heavySum, lightSum, window)
}
