package gridsim

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
)

func TestPaperScaleTrial(t *testing.T) {
	if os.Getenv("GRIDSIM_PAPER_SCALE") == "" {
		t.Skip("set GRIDSIM_PAPER_SCALE=1 to run the ~10 minute paper-scale replay (cmd/gridsim runs it on demand)")
	}
	ins := flowshop.Taillard(14, 8, 5) // ~430k nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	m := DefaultAvailability()
	rate := CalibrateRate(Table1Pool(), m, 750_000, 25*86400)
	seq, _ := bb.Solve(factory(), bb.Infinity)
	cfg := Config{
		Pool:                 Table1Pool(),
		Availability:         m,
		Seed:                 1,
		TickSeconds:          60,
		NodesPerGHzPerSecond: rate,
		MaxTicks:             80000,
		InitialUpper:         seq.Cost + 1, // run-2 protocol: primed one above the optimum
	}
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("finished=%v ticks=%d joins=%d leaves=%d crashes=%d\n", res.Finished, res.Ticks, res.Joins, res.Leaves, res.Crashes)
	fmt.Println(res.Table2.RenderComparison())
	avg, max := TraceStats(res.Trace)
	fmt.Printf("trace avg=%.0f max=%d\n", avg, max)
}
