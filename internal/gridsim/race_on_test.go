//go:build race

package gridsim

// raceEnabled reports that this binary was built with -race; the
// 10k-processor flat-vs-tree comparison skips itself there (the simulator
// is single-threaded — one goroutine driving every session — so the race
// detector has nothing to check and only multiplies a ~minute of
// instrumented big.Int arithmetic; the concurrent tree paths are
// race-covered by gridbb.TestSolveTreeCoordination and the harness
// scenarios).
const raceEnabled = true
