//go:build !race

package gridsim

// raceEnabled: see race_on_test.go.
const raceEnabled = false
