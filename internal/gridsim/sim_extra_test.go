package gridsim

import (
	"math/big"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
)

// TestSimulationEqualSplitStillCorrect: the ablation knob changes load
// balancing, never correctness.
func TestSimulationEqualSplitStillCorrect(t *testing.T) {
	cfg, factory, want := fastConfig(17)
	cfg.EqualSplit = true
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Best.Cost != want.Cost {
		t.Fatalf("equal-split run: finished=%v best=%d want=%d", res.Finished, res.Best.Cost, want.Cost)
	}
}

// TestSimulationWritesCheckpoints: with a directory configured the farmer
// leaves real, loadable two-file snapshots on its cadence.
func TestSimulationWritesCheckpoints(t *testing.T) {
	cfg, factory, _ := fastConfig(19)
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg.CheckpointDir = dir
	cfg.FarmerCheckpointSeconds = 30 // several snapshots over the run
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.FarmerCheckpoints == 0 {
		t.Fatal("no farmer checkpoints recorded")
	}
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Exists() {
		t.Fatal("no snapshot files on disk")
	}
	if _, err := store.Load(); err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
}

// TestSimulationAbsoluteThreshold: an enormous absolute threshold forces
// duplication on every allocation after the first, and the run still
// completes correctly — the stress test of the §4.2 duplication rule.
func TestSimulationAbsoluteThreshold(t *testing.T) {
	cfg, factory, want := fastConfig(23)
	cfg.Threshold = int64(1) << 62 // everything is "below threshold"
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Best.Cost != want.Cost {
		t.Fatalf("all-duplicate run: finished=%v best=%d want=%d", res.Finished, res.Best.Cost, want.Cost)
	}
	if res.Counters.Duplications == 0 {
		t.Fatal("threshold never triggered duplication")
	}
	// Heavy duplication must show up as redundancy, and the run must
	// still finish — the paper accepts bounded redundancy as the price
	// of never starving the endgame.
	if res.Table2.RedundantRate <= 0 {
		t.Error("massive duplication produced zero measured redundancy")
	}
}

// TestHumanDuration covers the Table 2 formatting helper across scales.
func TestHumanDuration(t *testing.T) {
	cases := map[float64]string{
		30:                  "30.0 seconds",
		300:                 "5.0 minutes",
		2 * 3600:            "2.0 hours",
		25 * 86400:          "25.0 days",
		22 * 365.25 * 86400: "22.0 years",
	}
	for secs, want := range cases {
		if got := humanDuration(secs); got != want {
			t.Errorf("humanDuration(%v) = %q, want %q", secs, got, want)
		}
	}
}

// TestRenderTraceEdgeCases: empty traces and degenerate dimensions render
// without panicking.
func TestRenderTraceEdgeCases(t *testing.T) {
	if out := RenderTrace(nil, 10, 5); out == "" {
		t.Error("empty trace renders nothing")
	}
	trace := []TracePoint{{0, 0}, {1, 0}}
	if out := RenderTrace(trace, 10, 3); out == "" {
		t.Error("all-zero trace renders nothing")
	}
	if out := RenderTrace(trace, 0, 0); out == "" {
		t.Error("zero dims render nothing")
	}
}

// TestCPUSpecString covers the Table 1 row rendering.
func TestCPUSpecString(t *testing.T) {
	s := CPUSpec{Model: "P4", GHz: 2.8, Domain: "IUT-A (Lille1)", Count: 45}
	out := s.String()
	for _, want := range []string{"P4", "2.80", "IUT-A", "45"} {
		if !contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestSmallPool: the helper always returns the requested size across a
// range of inputs, with positive speeds.
func TestSmallPool(t *testing.T) {
	for _, n := range []int{1, 3, 7, 30, 100} {
		pool := SmallPool(n)
		want := n
		if want < 3 {
			want = 3
		}
		if got := PoolSize(pool); got != want {
			t.Errorf("SmallPool(%d) size = %d, want %d", n, got, want)
		}
		for _, s := range pool {
			if s.GHz <= 0 {
				t.Errorf("SmallPool(%d) has non-positive GHz", n)
			}
		}
	}
}

// TestCalibrateRateDegenerate: zero pools and walls fall back to a sane
// positive rate.
func TestCalibrateRateDegenerate(t *testing.T) {
	if r := CalibrateRate(nil, DefaultAvailability(), 1000, 60); r != 1 {
		t.Errorf("empty pool rate = %f, want fallback 1", r)
	}
	if r := CalibrateRate(Table1Pool(), DefaultAvailability(), 1000, 0); r != 1 {
		t.Errorf("zero wall rate = %f, want fallback 1", r)
	}
}

// TestFractionShape: the availability profile is non-negative, peaks once
// per day, and respects Base/Amplitude.
func TestFractionShape(t *testing.T) {
	m := DefaultAvailability()
	day := m.DaySeconds
	min, max := 1.0, 0.0
	for i := 0; i < 1000; i++ {
		f := m.Fraction(0, day*float64(i)/1000)
		if f < 0 {
			t.Fatalf("negative fraction at %d", i)
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if min < m.BaseFraction-1e-9 || min > m.BaseFraction+1e-9 {
		t.Errorf("floor = %f, want base %f", min, m.BaseFraction)
	}
	if max > m.BaseFraction+m.Amplitude+1e-9 {
		t.Errorf("peak = %f exceeds base+amplitude", max)
	}
	if max < m.BaseFraction+m.Amplitude*0.95 {
		t.Errorf("peak = %f never approaches base+amplitude %f", max, m.BaseFraction+m.Amplitude)
	}
}

// TestThresholdFractionComputation: the big.Int threshold derived from the
// fraction scales with the tree.
func TestThresholdFractionComputation(t *testing.T) {
	cfg, factory, _ := fastConfig(29)
	cfg.ThresholdFraction = 0.5
	cfg.Threshold = 0
	sim := New(cfg, factory)
	// 12! = 479001600; half of it.
	_, total := sim.Farmer().Size()
	if total.Cmp(big.NewInt(479001600)) != 0 {
		t.Fatalf("root size = %s", total)
	}
}

// TestSimulationMulticorePoolScales: a pool of 4-core hosts runs the real
// shard engine per worker and finishes the same workload in fewer virtual
// ticks than the single-core pool, still proving the optimum — the
// "power scales with cores" contract of the multicore engine (DESIGN.md §7).
func TestSimulationMulticorePoolScales(t *testing.T) {
	cfg, factory, want := fastConfig(29)
	single, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg2, _, _ := fastConfig(29)
	cfg2.Pool = MulticorePool(30, 4)
	multi, err := New(cfg2, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !single.Finished || !multi.Finished {
		t.Fatalf("runs did not finish: single=%v multi=%v", single.Finished, multi.Finished)
	}
	if multi.Best.Cost != want.Cost || single.Best.Cost != want.Cost {
		t.Fatalf("optima: single=%d multi=%d want=%d", single.Best.Cost, multi.Best.Cost, want.Cost)
	}
	if multi.Ticks >= single.Ticks {
		t.Fatalf("4-core pool took %d ticks, single-core %d — cores did not speed up the grid",
			multi.Ticks, single.Ticks)
	}
}
