package gridsim

// Scenario presets. The same two configurations are used by cmd/gridsim,
// cmd/experiments and the examples; keeping them here makes the replay
// parameters part of the library's contract rather than copy-pasted
// literals.

// PaperScenario returns the configuration replaying the paper's experiment:
// the Table 1 pool under the Figure 7 availability model, with the
// exploration rate calibrated so a workload of expectedNodes spans
// wallDays virtual days. Runs take a few real minutes; the statistics land
// on the paper's Table 2 (see EXPERIMENTS.md).
func PaperScenario(seed int64, expectedNodes int64, wallDays float64) Config {
	m := DefaultAvailability()
	return Config{
		Pool:                 Table1Pool(),
		Availability:         m,
		Seed:                 seed,
		TickSeconds:          60,
		NodesPerGHzPerSecond: CalibrateRate(Table1Pool(), m, expectedNodes, wallDays*86400),
	}
}

// FastScenario returns a compressed configuration — a 60-processor pool,
// 20-minute "days", 1-second ticks — that reproduces the qualitative
// Table 2 / Figure 7 shape in a few real seconds. expectedNodes calibrates
// the rate so the run spans roughly wallDays compressed days (each 1200
// virtual seconds).
func FastScenario(seed int64, expectedNodes int64, wallDays float64) Config {
	m := AvailabilityModel{
		BaseFraction: 0.2, Amplitude: 0.6, NoiseFraction: 0.08,
		NoisePeriodSeconds: 60, DaySeconds: 1200, CrashShare: 0.25,
		RampSeconds: 60, PhaseJitterRadians: 0.3, HostLoadFraction: 0.025,
	}
	pool := SmallPool(60)
	return Config{
		Pool:                 pool,
		Availability:         m,
		Seed:                 seed,
		TickSeconds:          1,
		UpdatePeriodSeconds:  10,
		LeaseTTLSeconds:      60,
		NodesPerGHzPerSecond: CalibrateRate(pool, m, expectedNodes, wallDays*1200),
	}
}
