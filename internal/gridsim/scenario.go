package gridsim

// Scenario presets. The same two configurations are used by cmd/gridsim,
// cmd/experiments and the examples; keeping them here makes the replay
// parameters part of the library's contract rather than copy-pasted
// literals.

// PaperScenario returns the configuration replaying the paper's experiment:
// the Table 1 pool under the Figure 7 availability model, with the
// exploration rate calibrated so a workload of expectedNodes spans
// wallDays virtual days. Runs take a few real minutes; the statistics land
// on the paper's Table 2 (see EXPERIMENTS.md).
func PaperScenario(seed int64, expectedNodes int64, wallDays float64) Config {
	m := DefaultAvailability()
	return Config{
		Pool:                 Table1Pool(),
		Availability:         m,
		Seed:                 seed,
		TickSeconds:          60,
		NodesPerGHzPerSecond: CalibrateRate(Table1Pool(), m, expectedNodes, wallDays*86400),
	}
}

// MassiveScenario returns the massive-grid configuration: the paper's full
// Table 1 pool topped up to ~2000 processors (MassivePool) under the
// Figure 7 availability model with compressed 20-minute "days". It exists
// to reproduce the paper's farmer-exploitation claim at full fleet size —
// one coordinator serving the whole grid while staying almost idle —
// which is only an honest claim when serving a request does not degrade
// with the number of tracked intervals (the selection index, DESIGN.md
// §8; before it, a run at this scale spent most of its wall clock inside
// the farmer's O(W) scans). expectedNodes calibrates the exploration rate
// so the resolution spans roughly wallDays compressed days.
func MassiveScenario(seed int64, expectedNodes int64, wallDays float64) Config {
	m := AvailabilityModel{
		BaseFraction: 0.2, Amplitude: 0.6, NoiseFraction: 0.08,
		NoisePeriodSeconds: 60, DaySeconds: 1200, CrashShare: 0.25,
		RampSeconds: 60, PhaseJitterRadians: 0.3, HostLoadFraction: 0.025,
	}
	pool := MassivePool(2000)
	return Config{
		Pool:                 pool,
		Availability:         m,
		Seed:                 seed,
		TickSeconds:          1,
		UpdatePeriodSeconds:  180,
		LeaseTTLSeconds:      360,
		NodesPerGHzPerSecond: CalibrateRate(pool, m, expectedNodes, wallDays*1200),
	}
}

// MassiveTreeScenario returns the 10k-processor hierarchical-farmer
// configuration (DESIGN.md §9): the paper's Table 1 pool topped up to
// `workers` processors under the compressed Figure 7 availability model,
// coordinated by a 2-level tree of `subtrees` sub-farmers. It exists to
// measure the coordination claim one order of magnitude past the indexed
// flat farmer: at 10k workers the flat coordinator's per-wall-second
// message pressure pushes its exploitation rate toward saturation, while
// the tree's root serves only sub-farmer folds and refills — per-request
// cost flat in the subtree count, aggregate coordination throughput scaling
// with the number of sub-farmers. Pass subtrees = 0 for the flat control at
// the same load.
func MassiveTreeScenario(seed int64, expectedNodes int64, wallDays float64, workers, subtrees int) Config {
	m := AvailabilityModel{
		BaseFraction: 0.2, Amplitude: 0.6, NoiseFraction: 0.08,
		NoisePeriodSeconds: 60, DaySeconds: 1200, CrashShare: 0.25,
		RampSeconds: 60, PhaseJitterRadians: 0.3, HostLoadFraction: 0.025,
	}
	pool := MassivePool(workers)
	return Config{
		Pool:                pool,
		Availability:        m,
		Seed:                seed,
		TickSeconds:         1,
		UpdatePeriodSeconds: 180,
		LeaseTTLSeconds:     360,
		Subtrees:            subtrees,
		// Sub-farmers fold up every virtual minute: rebalancing
		// decisions (tail donations, drops) propagate within a fold, so
		// a faster cadence shortens the duplicated-work window at a
		// cost of 3 messages per sub-farmer-minute at the root — noise
		// against the fleet's tens of thousands.
		SubUpdatePeriodSeconds: 60,
		// The endgame trio (steal hints, low-water refill, crumb
		// duplication) is on: without it the tree pays a ~2.2× virtual-
		// time tail over the flat control once only crumbs remain
		// (BENCH_pr5.json); with it the ratio is pinned ≤ 1.4× by
		// TestMassiveTreeGridScenario.
		Endgame:              true,
		NodesPerGHzPerSecond: CalibrateRate(pool, m, expectedNodes, wallDays*1200),
	}
}

// FastScenario returns a compressed configuration — a 60-processor pool,
// 20-minute "days", 1-second ticks — that reproduces the qualitative
// Table 2 / Figure 7 shape in a few real seconds. expectedNodes calibrates
// the rate so the run spans roughly wallDays compressed days (each 1200
// virtual seconds).
func FastScenario(seed int64, expectedNodes int64, wallDays float64) Config {
	m := AvailabilityModel{
		BaseFraction: 0.2, Amplitude: 0.6, NoiseFraction: 0.08,
		NoisePeriodSeconds: 60, DaySeconds: 1200, CrashShare: 0.25,
		RampSeconds: 60, PhaseJitterRadians: 0.3, HostLoadFraction: 0.025,
	}
	pool := SmallPool(60)
	return Config{
		Pool:                 pool,
		Availability:         m,
		Seed:                 seed,
		TickSeconds:          1,
		UpdatePeriodSeconds:  10,
		LeaseTTLSeconds:      60,
		NodesPerGHzPerSecond: CalibrateRate(pool, m, expectedNodes, wallDays*1200),
	}
}
