package gridsim

import "math"

// AvailabilityModel drives the number of participating processors over
// time: the paper's workers run under a cycle-stealing model on
// non-dedicated, volatile hosts, so participation oscillates with the
// working day and never reaches the pool size (Figure 7: average 328 of
// 1889, peak 1195).
type AvailabilityModel struct {
	// BaseFraction is the fraction of a domain's processors available at
	// the quietest moment.
	BaseFraction float64
	// Amplitude is the extra fraction available at the daily peak.
	Amplitude float64
	// NoiseFraction is the magnitude of the slowly varying random
	// component of a domain's availability (machines claimed or released
	// by their owners for reasons unrelated to the time of day).
	NoiseFraction float64
	// NoisePeriodSeconds is how often the random component is redrawn.
	// Hosts come and go on the scale of tens of minutes, not per
	// scheduler tick; the default is 900.
	NoisePeriodSeconds float64
	// DaySeconds is the period of the daily cycle (virtual).
	DaySeconds float64
	// CrashShare is the probability that a departing host crashes
	// (dropping work since its last checkpoint) rather than leaving
	// gracefully (checkpointing first).
	CrashShare float64
	// RampSeconds bounds how fast a domain's participation may change:
	// at most its full size per RampSeconds. Zero means instant.
	RampSeconds float64
	// PhaseJitterRadians spreads the domains' daily phases. The paper's
	// nine domains are all in France — one timezone — so their working
	// days largely coincide, which is what lets Figure 7 peak at 1195 of
	// 1889; a small jitter keeps them from being perfectly synchronous.
	PhaseJitterRadians float64
	// HostLoadFraction is the share of an available host's CPU consumed
	// by its own user: the machines are non-dedicated desktops and the
	// B&B process steals idle cycles. It lowers both throughput and the
	// measured worker exploitation.
	HostLoadFraction float64
}

// DefaultAvailability is calibrated against the paper's Figure 7 and
// Table 2: with the Table 1 pool it yields an average participation around
// 330 processors, peaks above 1100 of 1889, and session lifetimes (hence
// work-allocation counts) of the paper's order.
func DefaultAvailability() AvailabilityModel {
	return AvailabilityModel{
		BaseFraction:       0.05,
		Amplitude:          0.58,
		NoiseFraction:      0.06,
		NoisePeriodSeconds: 900,
		DaySeconds:         24 * 3600,
		CrashShare:         0.25,
		RampSeconds:        2 * 3600,
		PhaseJitterRadians: 0.5,
		HostLoadFraction:   0.025,
	}
}

// Fraction returns the deterministic availability fraction of a domain at
// virtual time t (before noise): a half-wave rectified sinusoid squared — a
// sharp working-day bump and a long quiet night, matching the spiky
// Figure 7 profile far better than a plain sine.
func (m AvailabilityModel) Fraction(phase, t float64) float64 {
	day := m.DaySeconds
	if day <= 0 {
		day = 24 * 3600
	}
	s := math.Sin(2*math.Pi*t/day + phase)
	if s < 0 {
		s = 0
	}
	return m.BaseFraction + m.Amplitude*s*s
}
