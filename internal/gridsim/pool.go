// Package gridsim is the computational-grid substrate of this reproduction:
// a deterministic discrete-event simulator standing in for the paper's
// ≈1900 physical processors spread over 9 administrative domains (Table 1,
// Figure 6). It drives the real farmer and real worker sessions under a
// virtual clock, models heterogeneous CPU speeds, non-dedicated hosts
// (cycle stealing: machines join and leave), and hard failures, and
// produces the paper's Table 2 execution statistics and the Figure 7
// availability trace.
//
// Substitution note (see DESIGN.md): the paper's statistics depend on the
// protocol and on the relative speeds and volatility of the pool — not on
// physical hardware. The simulator keeps all of those and replaces only the
// physics: exploration rates are scaled so a laptop-size instance plays the
// role of Ta056 at the paper's 25-day wall-clock scale.
package gridsim

import "fmt"

// CPUSpec is one row of the paper's Table 1: a homogeneous batch of
// processors inside one administrative domain.
type CPUSpec struct {
	// Model is the CPU model label ("P4", "AMD", "Celeron", "Xeon",
	// "P3").
	Model string
	// GHz is the clock frequency, the paper's only speed indicator; the
	// simulator makes exploration rate proportional to it.
	GHz float64
	// Domain is the administrative domain (cluster).
	Domain string
	// Count is the number of processors of this spec.
	Count int
	// Cores is the number of cores per processor slot. The paper's 2007
	// pool is single-core (zero means 1); a modern pool sets it higher
	// and each simulated host runs the real multicore shard engine: its
	// exploration rate and reported power both scale with Cores while the
	// farmer still sees one worker per host.
	Cores int
}

// String renders a Table 1-style row.
func (c CPUSpec) String() string {
	return fmt.Sprintf("%-8s %.2f GHz  %-22s %4d", c.Model, c.GHz, c.Domain, c.Count)
}

// Table1Pool returns the paper's computational pool verbatim: 24 specs, 9
// domains, 1889 processors in total (Grid5000 machines are bi-processor;
// Table 1 lists them as 2×N and we store the processor count).
func Table1Pool() []CPUSpec {
	return []CPUSpec{
		{"P4", 1.70, "IEEA-FIL (Lille1)", 24, 1},
		{"P4", 2.40, "IEEA-FIL (Lille1)", 48, 1},
		{"P4", 2.80, "IEEA-FIL (Lille1)", 59, 1},
		{"P4", 3.00, "IEEA-FIL (Lille1)", 27, 1},
		{"AMD", 1.30, "Polytech'Lille (Lille1)", 14, 1},
		{"Celeron", 2.40, "Polytech'Lille (Lille1)", 35, 1},
		{"Celeron", 0.80, "Polytech'Lille (Lille1)", 14, 1},
		{"Celeron", 2.00, "Polytech'Lille (Lille1)", 13, 1},
		{"Celeron", 2.20, "Polytech'Lille (Lille1)", 28, 1},
		{"P3", 1.20, "Polytech'Lille (Lille1)", 12, 1},
		{"P4", 3.20, "Polytech'Lille (Lille1)", 12, 1},
		{"P4", 1.60, "IUT-A (Lille1)", 22, 1},
		{"P4", 2.00, "IUT-A (Lille1)", 18, 1},
		{"P4", 2.80, "IUT-A (Lille1)", 45, 1},
		{"P4", 2.66, "IUT-A (Lille1)", 57, 1},
		{"P4", 3.00, "IUT-A (Lille1)", 41, 1},
		{"AMD", 2.20, "Bordeaux (Grid5000)", 2 * 47, 1},
		{"AMD", 2.20, "Lille (Grid5000)", 2 * 54, 1},
		{"Xeon", 2.40, "Rennes (Grid5000)", 2 * 64, 1},
		{"AMD", 2.20, "Rennes (Grid5000)", 2 * 64, 1},
		{"AMD", 2.00, "Sophia (Grid5000)", 2 * 100, 1},
		{"AMD", 2.00, "Sophia (Grid5000)", 2 * 107, 1},
		{"AMD", 2.20, "Toulouse (Grid5000)", 2 * 58, 1},
		{"AMD", 2.00, "Orsay (Grid5000)", 2 * 216, 1},
	}
}

// Table1Total is the paper's processor count.
const Table1Total = 1889

// PoolSize sums the processor counts of a pool.
func PoolSize(pool []CPUSpec) int {
	n := 0
	for _, s := range pool {
		n += s.Count
	}
	return n
}

// PoolDomains returns the distinct administrative domains in pool order.
func PoolDomains(pool []CPUSpec) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range pool {
		if !seen[s.Domain] {
			seen[s.Domain] = true
			out = append(out, s.Domain)
		}
	}
	return out
}

// SmallPool returns a reduced heterogeneous pool for tests and quick runs:
// three domains, mixed speeds, n processors total (n >= 3).
func SmallPool(n int) []CPUSpec {
	if n < 3 {
		n = 3
	}
	a := n / 3
	b := n / 3
	c := n - a - b
	return []CPUSpec{
		{"P4", 3.00, "alpha", a, 1},
		{"AMD", 2.20, "beta", b, 1},
		{"Celeron", 1.00, "gamma", c, 1},
	}
}

// MassivePool returns the paper's Table 1 pool topped up with an extra
// burst domain to exactly n processors (n ≥ Table1Total): the 2007 campus
// and Grid5000 domains verbatim, plus the cloud capacity a modern rerun
// would lease on top. It is the pool of the massive-grid scenario, sized
// so the farmer tracks roughly two thousand concurrent workers.
func MassivePool(n int) []CPUSpec {
	pool := Table1Pool()
	if extra := n - Table1Total; extra > 0 {
		pool = append(pool, CPUSpec{"Xeon", 2.40, "Cloud (burst)", extra, 1})
	}
	return pool
}

// MulticorePool returns a modern pool: the same three domains as SmallPool
// but every host has cores cores, so each simulated worker runs the shard
// engine and reports a cores-scaled power.
func MulticorePool(n, cores int) []CPUSpec {
	pool := SmallPool(n)
	for i := range pool {
		pool[i].Cores = cores
	}
	return pool
}
