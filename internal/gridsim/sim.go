package gridsim

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/transport"
	"repro/internal/worker"
)

// Config parameterizes a simulated resolution.
type Config struct {
	// Pool is the processor inventory (Table1Pool for the paper's grid).
	Pool []CPUSpec
	// Availability drives joins/leaves/crashes.
	Availability AvailabilityModel
	// Seed makes the whole simulation deterministic.
	Seed int64
	// TickSeconds is the virtual duration of one simulation step.
	// Default 60.
	TickSeconds float64
	// NodesPerGHzPerSecond calibrates exploration speed. The default
	// (see CalibrateRate) scales the instance so the resolution spans
	// roughly the paper's 25 days on the paper's pool.
	NodesPerGHzPerSecond float64
	// UpdatePeriodSeconds is the worker checkpoint cadence. The paper's
	// workers averaged one checkpoint every ~3 minutes
	// (4,094,176 ops / 25 days / 328 workers). Default 180.
	UpdatePeriodSeconds float64
	// FarmerCheckpointSeconds is the coordinator snapshot period; the
	// paper's coordinator saves every 30 minutes. Default 1800.
	FarmerCheckpointSeconds float64
	// LeaseTTLSeconds is how long a silent worker keeps its interval.
	// Default 3600.
	LeaseTTLSeconds float64
	// FarmerCostPerMessageSeconds is the farmer CPU time charged per
	// processed message (the numerator of its exploitation rate).
	// Default 0.008.
	FarmerCostPerMessageSeconds float64
	// WorkerRTTSeconds stalls a worker per protocol exchange (pull-model
	// synchronous round trip across the WAN). Default 0.5.
	WorkerRTTSeconds float64
	// Threshold is an absolute duplication threshold in leaf units.
	// When zero, ThresholdFraction applies instead.
	Threshold int64
	// ThresholdFraction expresses the duplication threshold as a
	// fraction of the root interval's length — the natural scale, since
	// interval lengths count leaves of a factorially large tree, not
	// remaining work. Default 1e-6.
	ThresholdFraction float64
	// InitialUpper primes SOLUTION (0 means unknown/Infinity).
	InitialUpper int64
	// MaxTicks aborts a runaway simulation. Default 200_000.
	MaxTicks int
	// CheckpointDir, when set, makes the farmer write real two-file
	// snapshots on its cadence.
	CheckpointDir string
	// EqualSplit disables power-proportional partitioning (ablation).
	EqualSplit bool
	// Subtrees ≥ 2 coordinates the pool through a 2-level farmer tree
	// (DESIGN.md §9): hosts attach to sub-farmers round-robin by slot,
	// each sub-farmer aggregates its fleet into one fold and one power,
	// and the root only arbitrates inter-subtree rebalancing. Result
	// counters and the farmer-exploitation rate are the ROOT's — the
	// per-message pressure the tree removes from the single coordinator
	// is exactly what the massive-tree scenario measures.
	Subtrees int
	// SubUpdatePeriodSeconds is the sub→root fold cadence. Default:
	// UpdatePeriodSeconds (the same cadence a worker checkpoints at).
	SubUpdatePeriodSeconds float64
	// Endgame arms the tree's crumb-endgame trio (DESIGN.md §12) in tree
	// mode: the root piggybacks steal hints on fold replies, sub-farmers
	// refill before their tables run dry (low-water rule), and the root
	// duplicates the survivors across subtrees once its tracked total is
	// crumb-scale. No effect when Subtrees < 2.
	Endgame bool
	// EndgameFactor and LowWaterFactor scale the two endgame thresholds
	// as multiples of the duplication threshold: the root's endgame
	// duplication arms under EndgameFactor×threshold of tracked total,
	// and a sub-farmer pre-fetches under LowWaterFactor×threshold of
	// local remainder. Defaults 512 and 1024: the threshold is
	// leaf-units scale (a handful of tree nodes), while the endgame is
	// governed by fleet-scale quantities — a starving subtree needs
	// several cadences of fleet throughput pre-fetched to stay busy
	// across the refill RTT, and the root must start duplicating the
	// survivors while there is still enough tail left for every
	// subtree's fleet to chew in parallel.
	EndgameFactor, LowWaterFactor int64
}

func (c *Config) fillDefaults() {
	if len(c.Pool) == 0 {
		c.Pool = Table1Pool()
	}
	if c.Availability == (AvailabilityModel{}) {
		c.Availability = DefaultAvailability()
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 60
	}
	if c.UpdatePeriodSeconds <= 0 {
		c.UpdatePeriodSeconds = 180
	}
	if c.FarmerCheckpointSeconds <= 0 {
		c.FarmerCheckpointSeconds = 1800
	}
	if c.LeaseTTLSeconds <= 0 {
		c.LeaseTTLSeconds = 3600
	}
	if c.FarmerCostPerMessageSeconds <= 0 {
		c.FarmerCostPerMessageSeconds = 0.008
	}
	if c.WorkerRTTSeconds <= 0 {
		c.WorkerRTTSeconds = 0.5
	}
	if c.Threshold <= 0 && c.ThresholdFraction <= 0 {
		c.ThresholdFraction = 1e-6
	}
	if c.InitialUpper <= 0 {
		c.InitialUpper = bb.Infinity
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 200_000
	}
	if c.EndgameFactor <= 0 {
		c.EndgameFactor = 64
	}
	if c.LowWaterFactor <= 0 {
		c.LowWaterFactor = 1024
	}
}

// CalibrateRate returns the NodesPerGHzPerSecond that makes a workload of
// expectedNodes take wantWallSeconds on the given pool under the given
// availability model (using its mean participation). It is how a reduced
// instance plays Ta056 at the 25-day scale.
func CalibrateRate(pool []CPUSpec, m AvailabilityModel, expectedNodes int64, wantWallSeconds float64) float64 {
	var ghzTotal float64
	for _, s := range pool {
		ghzTotal += s.GHz * float64(s.Count)
	}
	// Mean of the half-wave rectified sin² availability profile is
	// Base + Amplitude/4.
	meanFrac := m.BaseFraction + m.Amplitude/4
	activeGHz := ghzTotal * meanFrac
	if activeGHz <= 0 || wantWallSeconds <= 0 {
		return 1
	}
	return float64(expectedNodes) / (activeGHz * wantWallSeconds)
}

// TracePoint is one Figure 7 sample.
type TracePoint struct {
	// TimeSeconds is the virtual timestamp.
	TimeSeconds float64
	// Active is the number of participating processors.
	Active int
}

// Result summarizes a simulated resolution.
type Result struct {
	// Best is the proven optimum.
	Best bb.Solution
	// Table2 is the paper-style statistics block.
	Table2 Table2
	// Trace is the Figure 7 availability series (one point per tick).
	Trace []TracePoint
	// Counters are the raw farmer counters.
	Counters farmer.Counters
	// Redundancy is the duplicated-work accounting.
	Redundancy farmer.RedundancyStats
	// Ticks is the number of simulation steps executed.
	Ticks int
	// Finished reports whether the resolution completed (false: MaxTicks
	// hit first).
	Finished bool
	// Joins and Leaves and Crashes count churn events.
	Joins, Leaves, Crashes int64
	// Store reports the checkpoint store's self-healing events (corrupt
	// generations quarantined, fallback loads, stale temp files swept) —
	// all zero on a healthy disk. Zero-valued with no CheckpointDir.
	Store checkpoint.Stats
}

// simWorker is one active processor hosting a B&B process.
type simWorker struct {
	id      transport.WorkerID
	session *worker.Session
	rate    float64 // nodes per virtual second

	presentSecs float64
	exploreSecs float64
	commSecs    float64
	pendingComm float64 // stall carried into the next tick
	credit      float64 // fractional node budget

	lastMsgs        int64
	lastUpdateCount int64   // session updates seen so far
	lastUpdateSecs  float64 // virtual time of the last update
}

func (w *simWorker) msgs() int64 {
	return w.session.Messages.Requests + w.session.Messages.Updates + w.session.Messages.Reports
}

// domainState groups the slots of one administrative domain.
type domainState struct {
	name      string
	slots     []int
	phase     float64
	noise     float64 // slowly varying availability offset
	nextNoise float64 // when to redraw it
}

// layoutPool expands a pool into per-slot speeds and cores plus domain
// groups, drawing each domain's availability phase from rng.
func layoutPool(pool []CPUSpec, phaseJitter float64, rng *rand.Rand) ([]float64, []int, []domainState) {
	var slots []float64
	var cores []int
	var domains []domainState
	domIdx := make(map[string]int)
	for _, spec := range pool {
		di, ok := domIdx[spec.Domain]
		if !ok {
			di = len(domains)
			domIdx[spec.Domain] = di
			domains = append(domains, domainState{
				name:  spec.Domain,
				phase: (rng.Float64()*2 - 1) * phaseJitter,
			})
		}
		slotCores := spec.Cores
		if slotCores < 1 {
			slotCores = 1
		}
		for i := 0; i < spec.Count; i++ {
			domains[di].slots = append(domains[di].slots, len(slots))
			slots = append(slots, spec.GHz)
			cores = append(cores, slotCores)
		}
	}
	return slots, cores, domains
}

// Sim runs one simulated resolution. Create with New, drive with Run.
type Sim struct {
	cfg     Config
	factory func() bb.Problem
	rng     *rand.Rand

	farmer  *farmer.Farmer
	store   *checkpoint.Store
	subs    []*farmer.SubFarmer // tree mode: mid-tier coordinators
	slots   []float64           // GHz per processor slot
	cores   []int               // cores per processor slot (>= 1)
	domains []domainState
	active  []*simWorker // per slot, nil = idle host

	nowSecs   float64
	nextID    int64 // worker id sequence
	retired   []*simWorker
	lostNodes int64 // explored but never reported before a crash
	result    Result

	// onTick, when set (tests), observes the state after every step.
	onTick func(tick int)
}

// New builds a simulation. factory must return a fresh Problem per call
// (every simulated processor hosts its own B&B process, like the paper's
// one-process-per-processor deployment).
func New(cfg Config, factory func() bb.Problem) *Sim {
	cfg.fillDefaults()
	s := &Sim{cfg: cfg, factory: factory, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.slots, s.cores, s.domains = layoutPool(cfg.Pool, cfg.Availability.PhaseJitterRadians, s.rng)
	s.active = make([]*simWorker, len(s.slots))

	nb := core.NewNumbering(factory().Shape())
	thr := big.NewInt(cfg.Threshold)
	if cfg.Threshold <= 0 {
		f := new(big.Float).SetInt(nb.RootRange().Len())
		f.Mul(f, big.NewFloat(cfg.ThresholdFraction))
		thr, _ = f.Int(nil)
		if thr.Sign() <= 0 {
			thr = big.NewInt(2)
		}
	}
	fopts := []farmer.Option{
		farmer.WithClock(func() int64 { return int64(s.nowSecs * 1e9) }),
		farmer.WithLeaseTTL(time.Duration(cfg.LeaseTTLSeconds * 1e9)),
		farmer.WithThreshold(thr),
		farmer.WithInitialBest(cfg.InitialUpper, nil),
		farmer.WithEqualSplit(cfg.EqualSplit),
	}
	if cfg.CheckpointDir != "" {
		if store, err := checkpoint.NewStore(cfg.CheckpointDir); err == nil {
			s.store = store
			fopts = append(fopts, farmer.WithCheckpointStore(store))
		}
	}
	var lowWater *big.Int
	// An inner farmer serves a fleet 1/Subtrees the size of the grid over
	// a table that is itself a slice of the root's, so its no-split
	// threshold scales down with the tree's fan-out: duplicating a
	// root-scale "crumb" (thousands of unit-dense deep leaves) to every
	// idle worker of a subtree is the dominant redundancy of tree mode.
	innerThr := thr
	if cfg.Endgame && cfg.Subtrees >= 2 {
		endgame := new(big.Int).Mul(thr, big.NewInt(cfg.EndgameFactor))
		lowWater = new(big.Int).Mul(thr, big.NewInt(cfg.LowWaterFactor))
		fopts = append(fopts, farmer.WithStealHints(), farmer.WithEndgameThreshold(endgame))
		innerThr = new(big.Int).Div(thr, big.NewInt(int64(cfg.Subtrees)*8))
		if innerThr.Sign() <= 0 {
			innerThr = big.NewInt(1)
		}
	}
	s.farmer = farmer.New(nb.RootRange(), fopts...)
	if cfg.Subtrees >= 2 {
		subPeriod := cfg.SubUpdatePeriodSeconds
		if subPeriod <= 0 {
			subPeriod = cfg.UpdatePeriodSeconds
		}
		for i := 0; i < cfg.Subtrees; i++ {
			s.subs = append(s.subs, farmer.NewSubFarmer(farmer.SubConfig{
				ID:           transport.WorkerID(fmt.Sprintf("sub-%d", i)),
				UpdateEvery:  64,
				UpdatePeriod: time.Duration(subPeriod * 1e9),
				FleetTTL:     time.Duration(cfg.LeaseTTLSeconds * 1e9),
				LowWater:     lowWater,
				Clock:        func() int64 { return int64(s.nowSecs * 1e9) },
				InnerOptions: []farmer.Option{
					farmer.WithLeaseTTL(time.Duration(cfg.LeaseTTLSeconds * 1e9)),
					farmer.WithThreshold(innerThr),
					farmer.WithEqualSplit(cfg.EqualSplit),
				},
			}, s.farmer))
		}
	}
	return s
}

// coordFor returns the coordinator a host on the slot pulls on: the root
// farmer, or — under a tree — its slot's sub-farmer.
func (s *Sim) coordFor(slot int) transport.Coordinator {
	if len(s.subs) == 0 {
		return s.farmer
	}
	return s.subs[slot%len(s.subs)]
}

// Farmer exposes the coordinator (e.g. for mid-run inspection in tests).
func (s *Sim) Farmer() *farmer.Farmer { return s.farmer }

// Run executes the simulation to termination (or MaxTicks) and returns the
// result. The default rate, when the config left NodesPerGHzPerSecond at
// zero, targets a 25-day wall clock using a rough sequential node estimate;
// prefer setting it explicitly via CalibrateRate with a measured node count.
func (s *Sim) Run() (Result, error) {
	cfg := &s.cfg
	if cfg.NodesPerGHzPerSecond <= 0 {
		return Result{}, fmt.Errorf("gridsim: NodesPerGHzPerSecond must be set (use CalibrateRate)")
	}
	dt := cfg.TickSeconds
	nextFarmerCkpt := cfg.FarmerCheckpointSeconds
	var sumActive int64
	for tick := 0; tick < cfg.MaxTicks; tick++ {
		s.nowSecs = float64(tick) * dt
		s.adjustAvailability()

		activeCount := 0
		finished := false
		for _, w := range s.active {
			if w == nil {
				continue
			}
			activeCount++
			w.presentSecs += dt
			explTime := dt
			if w.pendingComm > 0 {
				if w.pendingComm >= explTime {
					w.pendingComm -= explTime
					w.commSecs += explTime
					continue
				}
				explTime -= w.pendingComm
				w.commSecs += w.pendingComm
				w.pendingComm = 0
			}
			ourShare := 1 - cfg.Availability.HostLoadFraction
			w.credit += w.rate * explTime
			budget := int64(w.credit)
			if budget <= 0 {
				// Not enough credit for a whole node yet. Still
				// acquire work if idle (a request costs no
				// exploration budget), keep the periodic
				// time-based checkpoint alive, and count banked
				// mid-node crunching as busy time.
				if !w.session.HasWork() {
					if _, done, err := w.session.Advance(0); err != nil {
						return s.result, fmt.Errorf("gridsim: worker %s: %w", w.id, err)
					} else if done {
						finished = true
					}
				}
				if w.session.HasWork() {
					w.exploreSecs += explTime * ourShare
					if err := s.maybeCheckpoint(w); err != nil {
						return s.result, err
					}
				}
				msgs := w.msgs()
				w.pendingComm += float64(msgs-w.lastMsgs) * cfg.WorkerRTTSeconds
				w.lastMsgs = msgs
				continue
			}
			n, done, err := w.session.Advance(budget)
			if err != nil {
				return s.result, fmt.Errorf("gridsim: worker %s: %w", w.id, err)
			}
			w.credit -= float64(n)
			if done {
				finished = true
			}
			if n == budget || w.session.HasWork() {
				// The whole slice went into exploration (possibly
				// mid-node on the leftover credit).
				w.exploreSecs += explTime * ourShare
			} else {
				// Starved partway through the slice: only the
				// explored nodes were real work; drop the rest.
				w.exploreSecs += float64(n) / w.rate * ourShare
				w.credit = 0
			}
			if w.session.HasWork() {
				if err := s.maybeCheckpoint(w); err != nil {
					return s.result, err
				}
			}
			msgs := w.msgs()
			w.pendingComm += float64(msgs-w.lastMsgs) * cfg.WorkerRTTSeconds
			w.lastMsgs = msgs
		}
		// Tree mode: drive the sub→root fold cadence so quiet fleets
		// keep their leases alive and rebalancing decisions propagate.
		for _, sub := range s.subs {
			sub.Pulse()
		}
		if s.onTick != nil {
			s.onTick(tick)
		}
		s.result.Trace = append(s.result.Trace, TracePoint{TimeSeconds: s.nowSecs, Active: activeCount})
		sumActive += int64(activeCount)
		if activeCount > s.result.Table2.MaxWorkers {
			s.result.Table2.MaxWorkers = activeCount
		}
		if cfg.CheckpointDir != "" && s.nowSecs >= nextFarmerCkpt {
			if err := s.farmer.Checkpoint(); err != nil {
				return s.result, err
			}
			nextFarmerCkpt += cfg.FarmerCheckpointSeconds
		}
		s.result.Ticks = tick + 1
		if finished || s.farmer.Done() {
			s.result.Finished = true
			break
		}
	}
	// Final pulse round: sub-farmers flush straggler statistics so the
	// root counters in the result cover the whole tree.
	for _, sub := range s.subs {
		sub.Pulse()
	}
	s.finalize(sumActive)
	return s.result, nil
}

// adjustAvailability moves each domain toward its availability target,
// creating and retiring workers.
func (s *Sim) adjustAvailability() {
	driveChurn(&s.cfg.Availability, s.cfg.TickSeconds, s.nowSecs, s.rng, s.domains,
		func(slot int) bool { return s.active[slot] != nil }, s.join, s.leave)
}

// driveChurn moves each domain toward its availability target, invoking
// join on idle slots and leave on occupied ones. The random component of
// the target is redrawn only every NoisePeriodSeconds — hosts are claimed
// and released by their owners on the scale of tens of minutes, not per
// scheduler tick — and a small deadband avoids churning workers over
// one-host wobbles. Shared between the single-resolution Sim and the
// multi-tenant MultiJobSim, which differ only in what a worker runs.
func driveChurn(m *AvailabilityModel, tickSeconds, nowSecs float64, rng *rand.Rand,
	domains []domainState, occupied func(int) bool, join, leave func(int)) {
	for di := range domains {
		d := &domains[di]
		if nowSecs >= d.nextNoise {
			d.noise = (rng.Float64()*2 - 1) * m.NoiseFraction
			period := m.NoisePeriodSeconds
			if period <= 0 {
				period = 1800
			}
			d.nextNoise = nowSecs + period
		}
		frac := m.Fraction(d.phase, nowSecs) + d.noise
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		target := int(frac * float64(len(d.slots)))
		active := 0
		for _, slot := range d.slots {
			if occupied(slot) {
				active++
			}
		}
		deadband := len(d.slots) / 100
		if diff := active - target; diff >= -deadband && diff <= deadband {
			continue
		}
		maxDelta := len(d.slots)
		if m.RampSeconds > 0 {
			maxDelta = int(math.Ceil(float64(len(d.slots)) * tickSeconds / m.RampSeconds))
			if maxDelta < 1 {
				maxDelta = 1
			}
		}
		switch {
		case active < target:
			need := target - active
			if need > maxDelta {
				need = maxDelta
			}
			for _, slot := range d.slots {
				if need == 0 {
					break
				}
				if !occupied(slot) {
					join(slot)
					need--
				}
			}
		case active > target:
			drop := active - target
			if drop > maxDelta {
				drop = maxDelta
			}
			for _, slot := range d.slots {
				if drop == 0 {
					break
				}
				if occupied(slot) {
					leave(slot)
					drop--
				}
			}
		}
	}
}

// join starts a fresh B&B process on the slot. A multicore slot hosts the
// real shard engine (stepped deterministically inside the session) and both
// its exploration rate and its reported power scale with the core count.
func (s *Sim) join(slot int) {
	s.nextID++
	id := transport.WorkerID(fmt.Sprintf("sim-%d-s%d", s.nextID, slot))
	cores := s.cores[slot]
	rate := s.slots[slot] * float64(cores) * s.cfg.NodesPerGHzPerSecond * (1 - s.cfg.Availability.HostLoadFraction)
	power := int64(rate * 1000) // fixed-point so slow hosts stay > 0
	if power < 1 {
		power = 1
	}
	updateNodes := int64(rate * s.cfg.UpdatePeriodSeconds)
	if updateNodes < 1 {
		updateNodes = 1
	}
	sess := worker.NewShardedSession(worker.Config{
		ID:                id,
		Power:             power,
		UpdatePeriodNodes: updateNodes,
		Cores:             cores,
	}, s.coordFor(slot), s.factory)
	s.active[slot] = &simWorker{id: id, session: sess, rate: rate, lastUpdateSecs: s.nowSecs}
	s.result.Joins++
}

// leave retires the slot's worker: gracefully (a final checkpoint — the
// cycle-stealing owner reclaimed the host and the process saved its state)
// or by crash (no checkpoint; the lease mechanism will orphan its interval).
func (s *Sim) leave(slot int) {
	w := s.active[slot]
	if w == nil {
		return
	}
	if s.rng.Float64() < s.cfg.Availability.CrashShare {
		// The work since the last checkpoint dies with the host and
		// will be re-explored by whoever inherits the interval: it is
		// redundant by construction (the paper's "redundant nodes").
		s.lostNodes += w.session.Stats().Explored - w.session.Reported().Explored
		s.result.Crashes++
	} else {
		// Best-effort final checkpoint; a failing farmer here would
		// just look like a crash.
		if err := w.session.Checkpoint(); err == nil {
			s.result.Leaves++
		} else {
			s.result.Crashes++
		}
	}
	s.active[slot] = nil
	s.retired = append(s.retired, w)
}

// maybeCheckpoint triggers the worker's periodic time-based interval
// update: even a host too slow to finish a node within a period must
// re-register its fold — it keeps the lease alive and bounds the work lost
// to a crash (§4.1).
func (s *Sim) maybeCheckpoint(w *simWorker) error {
	if u := w.session.Messages.Updates; u > w.lastUpdateCount {
		// The session updated on its own (node-count cadence).
		w.lastUpdateCount = u
		w.lastUpdateSecs = s.nowSecs
		return nil
	}
	if s.nowSecs-w.lastUpdateSecs < s.cfg.UpdatePeriodSeconds {
		return nil
	}
	if err := w.session.Checkpoint(); err != nil {
		return fmt.Errorf("gridsim: worker %s checkpoint: %w", w.id, err)
	}
	w.lastUpdateCount = w.session.Messages.Updates
	w.lastUpdateSecs = s.nowSecs
	return nil
}

// finalize assembles the Table 2 block.
func (s *Sim) finalize(sumActive int64) {
	cfg := &s.cfg
	t2 := &s.result.Table2
	t2.WallClockSeconds = float64(s.result.Ticks) * cfg.TickSeconds
	var present, explore float64
	consider := func(w *simWorker) {
		present += w.presentSecs
		explore += w.exploreSecs
	}
	for _, w := range s.retired {
		consider(w)
	}
	for _, w := range s.active {
		if w != nil {
			consider(w)
		}
	}
	t2.TotalCPUSeconds = present
	if s.result.Ticks > 0 {
		t2.AvgWorkers = float64(sumActive) / float64(s.result.Ticks)
	}
	if present > 0 {
		t2.WorkerExploitation = explore / present
	}
	c := s.farmer.Counters()
	s.result.Counters = c
	s.result.Redundancy = s.farmer.Redundancy()
	if s.store != nil {
		s.result.Store = s.store.Stats()
	}
	totalMsgs := c.WorkRequests + c.WorkerCheckpoints + c.SolutionReports
	if t2.WallClockSeconds > 0 {
		t2.FarmerExploitation = float64(totalMsgs) * cfg.FarmerCostPerMessageSeconds / t2.WallClockSeconds
	}
	t2.CheckpointOps = c.WorkerCheckpoints + c.FarmerCheckpoints
	t2.WorkAllocations = c.WorkAllocations
	// Ground-truth node count: every session's engine counter, including
	// work that died unreported in a crash. The redundant rate combines
	// crash re-exploration (node units) with duplicated-interval overlap
	// (leaf units, a rate over the same total work).
	var gt int64
	for _, w := range s.retired {
		gt += w.session.Stats().Explored
	}
	for _, w := range s.active {
		if w != nil {
			gt += w.session.Stats().Explored
		}
	}
	t2.ExploredNodes = gt
	if gt > 0 {
		t2.RedundantRate = float64(s.lostNodes)/float64(gt) + s.result.Redundancy.Rate()
	}
	s.result.Best = s.farmer.Best()
}
