package gridsim

import (
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
)

// TestMassiveGridScenario runs the massive-grid scenario: the full Table 1
// pool topped up to 2000 processors under availability churn, driven
// through the real farmer and real worker sessions. It is the fleet-size
// end of the paper's scalability claim — one coordinator serving ~1600
// concurrent workers while the workers, not the farmer, do essentially all
// the work — and it is only tractable as a unit test because the selection
// index answers each of the tens of thousands of requests in O(log W)
// (before PR 4 this exact run spent most of its real wall clock inside the
// farmer's O(W) scans; see BENCH_pr4.json).
//
// The farmer-exploitation bound is looser than the paper's 1.7 % because
// the replay compresses 25 days into two 20-minute "days": per unit of
// work the message structure is the same, but the per-wall-second message
// rate — the numerator of the rate — is ~40× the paper's. What the
// assertion pins is the structural claim: even at full fleet size and 40×
// the paper's message pressure, the coordinator stays far from
// saturation.
func TestMassiveGridScenario(t *testing.T) {
	ins := flowshop.Taillard(12, 10, 5) // ~130k sequential nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)

	cfg := MassiveScenario(1, 130_000, 2.0)
	cfg.InitialUpper = seq.Cost + 1 // run-2 protocol: primed one above the optimum
	cfg.MaxTicks = 30_000
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("massive grid did not finish in %d ticks", res.Ticks)
	}
	if res.Best.Cost != seq.Cost {
		t.Fatalf("massive grid proved %d, sequential optimum is %d", res.Best.Cost, seq.Cost)
	}
	if res.Table2.MaxWorkers < 1500 {
		t.Errorf("peak concurrency %d, want ≥ 1500 (the scenario exists for fleet scale)", res.Table2.MaxWorkers)
	}
	if res.Table2.AvgWorkers < 500 {
		t.Errorf("average concurrency %.0f, want ≥ 500", res.Table2.AvgWorkers)
	}
	if res.Table2.FarmerExploitation >= 0.10 {
		t.Errorf("farmer exploitation %.1f%%, want < 10%% at full fleet (paper: 1.7%% at 1/40 the message pressure)",
			res.Table2.FarmerExploitation*100)
	}
	if res.Table2.WorkerExploitation <= 0.90 {
		t.Errorf("worker exploitation %.1f%%, want > 90%%", res.Table2.WorkerExploitation*100)
	}
	if res.Table2.RedundantRate >= 0.15 {
		t.Errorf("redundant rate %.1f%%, want < 15%%", res.Table2.RedundantRate*100)
	}
	t.Logf("ticks=%d maxW=%d avgW=%.0f farmer=%.2f%% worker=%.2f%% allocations=%d redundant=%.2f%%",
		res.Ticks, res.Table2.MaxWorkers, res.Table2.AvgWorkers,
		res.Table2.FarmerExploitation*100, res.Table2.WorkerExploitation*100,
		res.Table2.WorkAllocations, res.Table2.RedundantRate*100)
}

// TestMassiveTreeGridScenario is the order-of-magnitude step past the
// indexed farmer: the Table 1 pool topped up to 10,000 processors, run
// twice at equal load — once under the flat single farmer, once under a
// 2-level tree of 8 sub-farmers. Both must prove the optimum; the
// comparison pins the PR's coordination claim: the tree's root serves only
// sub-farmer folds and refills, so its exploitation rate must land far
// below the flat farmer's, which at 10k workers and ~40× the paper's
// per-wall-second message pressure is pushed toward saturation. (The flat
// run is the control — the claim is relative, at identical pool, seed,
// availability and calibration.)
func TestMassiveTreeGridScenario(t *testing.T) {
	if raceEnabled {
		t.Skip("single-threaded simulator at 10k scale: nothing for the race detector, minutes of instrumented bignum arithmetic (see race_on_test.go)")
	}
	ins := flowshop.Taillard(13, 10, 3) // ~285k sequential nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)

	run := func(subtrees int) Result {
		t.Helper()
		cfg := MassiveTreeScenario(1, 285_000, 1.5, 10_000, subtrees)
		cfg.InitialUpper = seq.Cost + 1 // run-2 protocol: primed one above the optimum
		cfg.MaxTicks = 30_000
		res, err := New(cfg, factory).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished {
			t.Fatalf("subtrees=%d: did not finish in %d ticks", subtrees, res.Ticks)
		}
		if res.Best.Cost != seq.Cost {
			t.Fatalf("subtrees=%d: proved %d, sequential optimum is %d", subtrees, res.Best.Cost, seq.Cost)
		}
		return res
	}

	tree := run(8)
	flat := run(0)

	if tree.Table2.MaxWorkers < 6000 {
		t.Errorf("tree peak concurrency %d, want ≥ 6000 (the scenario exists for 10k-fleet scale)", tree.Table2.MaxWorkers)
	}
	if tree.Table2.FarmerExploitation >= flat.Table2.FarmerExploitation {
		t.Errorf("tree root exploitation %.2f%% not below the flat farmer's %.2f%% at equal load",
			tree.Table2.FarmerExploitation*100, flat.Table2.FarmerExploitation*100)
	}
	// Absolute root-utilization ceiling. 10% rather than the pre-PR-8 5%:
	// the endgame protocol (steal hints, low-water refills, crumb
	// duplication) is deliberately chattier at the root, and the whole run
	// is now ~4× shorter, so the fixed per-message cost divides by a much
	// smaller wall clock. The measured value (~7%) is still ~5× below the
	// flat farmer's, which the relative assertion above pins.
	if tree.Table2.FarmerExploitation >= 0.10 {
		t.Errorf("tree root exploitation %.2f%%, want < 10%% — the root must stay far from saturation at 10k workers",
			tree.Table2.FarmerExploitation*100)
	}
	if tree.Table2.WorkerExploitation <= 0.90 {
		t.Errorf("tree worker exploitation %.1f%%, want > 90%%", tree.Table2.WorkerExploitation*100)
	}
	// The PR-8 endgame acceptance gate: the tree's virtual resolution time
	// must be within 1.4× the flat farmer's at equal load (it was ~2.2×
	// before the crumb-endgame work; see BENCH_pr8.json for the recorded
	// run). The tree historically lost the tail twice over — every refill
	// re-descended from the tree root on the workers' dime, and root-scale
	// crumbs were duplicated across whole sub-fleets.
	if limit := flat.Ticks * 14 / 10; tree.Ticks > limit {
		t.Errorf("tree resolved in %d ticks vs flat %d (%.2fx), want ≤ 1.4x",
			tree.Ticks, flat.Ticks, float64(tree.Ticks)/float64(flat.Ticks))
	}
	t.Logf("tree: ticks=%d maxW=%d avgW=%.0f root=%.3f%% worker=%.2f%% redundant=%.2f%%",
		tree.Ticks, tree.Table2.MaxWorkers, tree.Table2.AvgWorkers,
		tree.Table2.FarmerExploitation*100, tree.Table2.WorkerExploitation*100, tree.Table2.RedundantRate*100)
	t.Logf("flat: ticks=%d maxW=%d avgW=%.0f farmer=%.3f%% worker=%.2f%% redundant=%.2f%%",
		flat.Ticks, flat.Table2.MaxWorkers, flat.Table2.AvgWorkers,
		flat.Table2.FarmerExploitation*100, flat.Table2.WorkerExploitation*100, flat.Table2.RedundantRate*100)
}
