package gridsim

import (
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
)

// TestMassiveGridScenario runs the massive-grid scenario: the full Table 1
// pool topped up to 2000 processors under availability churn, driven
// through the real farmer and real worker sessions. It is the fleet-size
// end of the paper's scalability claim — one coordinator serving ~1600
// concurrent workers while the workers, not the farmer, do essentially all
// the work — and it is only tractable as a unit test because the selection
// index answers each of the tens of thousands of requests in O(log W)
// (before PR 4 this exact run spent most of its real wall clock inside the
// farmer's O(W) scans; see BENCH_pr4.json).
//
// The farmer-exploitation bound is looser than the paper's 1.7 % because
// the replay compresses 25 days into two 20-minute "days": per unit of
// work the message structure is the same, but the per-wall-second message
// rate — the numerator of the rate — is ~40× the paper's. What the
// assertion pins is the structural claim: even at full fleet size and 40×
// the paper's message pressure, the coordinator stays far from
// saturation.
func TestMassiveGridScenario(t *testing.T) {
	ins := flowshop.Taillard(12, 10, 5) // ~130k sequential nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)

	cfg := MassiveScenario(1, 130_000, 2.0)
	cfg.InitialUpper = seq.Cost + 1 // run-2 protocol: primed one above the optimum
	cfg.MaxTicks = 30_000
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("massive grid did not finish in %d ticks", res.Ticks)
	}
	if res.Best.Cost != seq.Cost {
		t.Fatalf("massive grid proved %d, sequential optimum is %d", res.Best.Cost, seq.Cost)
	}
	if res.Table2.MaxWorkers < 1500 {
		t.Errorf("peak concurrency %d, want ≥ 1500 (the scenario exists for fleet scale)", res.Table2.MaxWorkers)
	}
	if res.Table2.AvgWorkers < 500 {
		t.Errorf("average concurrency %.0f, want ≥ 500", res.Table2.AvgWorkers)
	}
	if res.Table2.FarmerExploitation >= 0.10 {
		t.Errorf("farmer exploitation %.1f%%, want < 10%% at full fleet (paper: 1.7%% at 1/40 the message pressure)",
			res.Table2.FarmerExploitation*100)
	}
	if res.Table2.WorkerExploitation <= 0.90 {
		t.Errorf("worker exploitation %.1f%%, want > 90%%", res.Table2.WorkerExploitation*100)
	}
	if res.Table2.RedundantRate >= 0.15 {
		t.Errorf("redundant rate %.1f%%, want < 15%%", res.Table2.RedundantRate*100)
	}
	t.Logf("ticks=%d maxW=%d avgW=%.0f farmer=%.2f%% worker=%.2f%% allocations=%d redundant=%.2f%%",
		res.Ticks, res.Table2.MaxWorkers, res.Table2.AvgWorkers,
		res.Table2.FarmerExploitation*100, res.Table2.WorkerExploitation*100,
		res.Table2.WorkAllocations, res.Table2.RedundantRate*100)
}
