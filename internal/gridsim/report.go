package gridsim

import (
	"fmt"
	"strings"
)

// Table2 is the execution-statistics block of the paper's Table 2. Fields
// are in base units (seconds, counts, rates in [0,1]).
type Table2 struct {
	// WallClockSeconds is the virtual duration of the resolution
	// ("Running wall clock time: 25 days").
	WallClockSeconds float64
	// TotalCPUSeconds is the cumulative presence time of all workers
	// ("Total cpu time: 22 years").
	TotalCPUSeconds float64
	// AvgWorkers and MaxWorkers describe participation ("Average number
	// of workers: 328", "Maximum number of workers: 1,195").
	AvgWorkers float64
	MaxWorkers int
	// WorkerExploitation is exploration time over presence time
	// ("Worker CPU exploitation: 97%").
	WorkerExploitation float64
	// FarmerExploitation is farmer busy time over wall clock
	// ("Coordinator CPU exploitation: 1.7%").
	FarmerExploitation float64
	// CheckpointOps counts worker updates plus farmer snapshots
	// ("Checkpoint operations: 4,094,176").
	CheckpointOps int64
	// WorkAllocations counts assignments ("Work allocations: 129,958").
	WorkAllocations int64
	// ExploredNodes is the total node count ("Explored nodes: 6.5e12").
	ExploredNodes int64
	// RedundantRate is the share of duplicated work
	// ("Redundant nodes: 0.39%").
	RedundantRate float64
}

// PaperTable2 holds the values published in the paper for side-by-side
// comparison. Times are converted to seconds (25 days; 22 years).
var PaperTable2 = Table2{
	WallClockSeconds:   25 * 86400,
	TotalCPUSeconds:    22 * 365.25 * 86400,
	AvgWorkers:         328,
	MaxWorkers:         1195,
	WorkerExploitation: 0.97,
	FarmerExploitation: 0.017,
	CheckpointOps:      4_094_176,
	WorkAllocations:    129_958,
	ExploredNodes:      6_508_740_000_000, // "6,50874 e+12"
	RedundantRate:      0.0039,
}

// humanDuration renders seconds at the paper's granularity (years / days /
// hours / minutes).
func humanDuration(secs float64) string {
	switch {
	case secs >= 2*365.25*86400:
		return fmt.Sprintf("%.1f years", secs/(365.25*86400))
	case secs >= 2*86400:
		return fmt.Sprintf("%.1f days", secs/86400)
	case secs >= 2*3600:
		return fmt.Sprintf("%.1f hours", secs/3600)
	case secs >= 120:
		return fmt.Sprintf("%.1f minutes", secs/60)
	default:
		return fmt.Sprintf("%.1f seconds", secs)
	}
}

// rows returns the ten Table 2 rows as label/value pairs.
func (t Table2) rows() [][2]string {
	return [][2]string{
		{"Running wall clock time", humanDuration(t.WallClockSeconds)},
		{"Total cpu time", humanDuration(t.TotalCPUSeconds)},
		{"Average number of workers", fmt.Sprintf("%.0f", t.AvgWorkers)},
		{"Maximum number of workers", fmt.Sprintf("%d", t.MaxWorkers)},
		{"Worker CPU exploitation", fmt.Sprintf("%.1f%%", 100*t.WorkerExploitation)},
		{"Coordinator CPU exploitation", fmt.Sprintf("%.2f%%", 100*t.FarmerExploitation)},
		{"Checkpoint operations", fmt.Sprintf("%d", t.CheckpointOps)},
		{"Work allocations", fmt.Sprintf("%d", t.WorkAllocations)},
		{"Explored nodes", fmt.Sprintf("%d", t.ExploredNodes)},
		{"Redundant nodes", fmt.Sprintf("%.2f%%", 100*t.RedundantRate)},
	}
}

// Render prints the block in the paper's Table 2 layout.
func (t Table2) Render() string {
	var b strings.Builder
	for _, row := range t.rows() {
		fmt.Fprintf(&b, "%-30s %s\n", row[0], row[1])
	}
	return b.String()
}

// RenderComparison prints measured values side by side with the paper's.
func (t Table2) RenderComparison() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-18s %s\n", "Statistic", "Measured (sim)", "Paper (Ta056 run 2)")
	mine := t.rows()
	paper := PaperTable2.rows()
	for i := range mine {
		fmt.Fprintf(&b, "%-30s %-18s %s\n", mine[i][0], mine[i][1], paper[i][1])
	}
	return b.String()
}

// Table3Row is one line of the paper's Table 3, the ranking of famous exact
// resolutions by computational power.
type Table3Row struct {
	Order       int
	Problem     string
	Instance    string
	Description string
	Power       string
}

// Table3 returns the paper's ranking with our measured cumulative CPU time
// substituted into the Ta056 row (the paper reports 22 years there). Pass a
// negative value to keep the paper's figure.
func Table3(measuredCPUSeconds float64) []Table3Row {
	ta056Power := "22 years"
	if measuredCPUSeconds >= 0 {
		ta056Power = humanDuration(measuredCPUSeconds) + " (simulated)"
	}
	return []Table3Row{
		{1, "TSP", "Sw24978", "24,978 towns of Sweden", "84 years/Intel Xeon 2.8 GHz"},
		{2, "Flow-Shop", "Ta056", "50 jobs on 20 machines", ta056Power},
		{3, "TSP", "D15112", "15,112 towns of Germany", "22 years/Compaq Alpha 500 MHz"},
		{4, "QAP", "Nug30", "", "7 years/HP-C3000 400MHz"},
		{5, "TSP", "Usa13509", "13,509 towns of USA", "4 years"},
	}
}

// RenderTable3 prints the ranking in the paper's layout.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-10s %-10s %-26s %s\n", "Order", "Problem", "Instance", "Description", "Computation power")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-10s %-10s %-26s %s\n", r.Order, r.Problem, r.Instance, r.Description, r.Power)
	}
	return b.String()
}

// RenderTrace prints a Figure 7-style ASCII chart of the availability
// series: time on the horizontal axis, active processors on the vertical
// axis, downsampled to at most width columns.
func RenderTrace(trace []TracePoint, width, height int) string {
	if len(trace) == 0 || width <= 0 || height <= 0 {
		return "(empty trace)\n"
	}
	if width > len(trace) {
		width = len(trace)
	}
	// Downsample by max within each bucket (peaks matter in Figure 7).
	buckets := make([]int, width)
	for i, p := range trace {
		b := i * width / len(trace)
		if p.Active > buckets[b] {
			buckets[b] = p.Active
		}
	}
	peak := 0
	for _, v := range buckets {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		lo := peak * (row - 1) / height
		fmt.Fprintf(&b, "%6d |", peak*row/height)
		for _, v := range buckets {
			if v > lo {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%6s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%6s  0%*s\n", "", width-1, humanDuration(trace[len(trace)-1].TimeSeconds))
	return b.String()
}

// TraceStats summarizes a Figure 7 series.
func TraceStats(trace []TracePoint) (avg float64, max int) {
	if len(trace) == 0 {
		return 0, 0
	}
	var sum int64
	for _, p := range trace {
		sum += int64(p.Active)
		if p.Active > max {
			max = p.Active
		}
	}
	return float64(sum) / float64(len(trace)), max
}
