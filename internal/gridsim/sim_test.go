package gridsim

import (
	"strings"
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
)

// fastConfig returns a small deterministic scenario completing in a few
// hundred ticks.
func fastConfig(seed int64) (Config, func() bb.Problem, bb.Solution) {
	ins := flowshop.Taillard(12, 10, 5) // ~130k nodes sequentially
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := bb.Solve(factory(), bb.Infinity)
	cfg := Config{
		Pool: SmallPool(30),
		Availability: AvailabilityModel{
			BaseFraction: 0.3, Amplitude: 0.5, NoiseFraction: 0.1,
			NoisePeriodSeconds: 20, DaySeconds: 600, CrashShare: 0.3,
			RampSeconds: 30, PhaseJitterRadians: 0.3, HostLoadFraction: 0.02,
		},
		Seed:                 seed,
		TickSeconds:          1,
		NodesPerGHzPerSecond: 20,
		UpdatePeriodSeconds:  5,
		LeaseTTLSeconds:      30,
		WorkerRTTSeconds:     0.05,
		MaxTicks:             20_000,
	}
	return cfg, factory, want
}

// TestSimulationSolvesToOptimum: the simulated grid — heterogeneous speeds,
// churn, crashes — still proves the sequential optimum. This is the
// strongest end-to-end check of the fault-tolerance design: whatever the
// availability trace does, no part of the tree is lost.
func TestSimulationSolvesToOptimum(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg, factory, want := fastConfig(seed)
		res, err := New(cfg, factory).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Finished {
			t.Fatalf("seed %d: simulation hit MaxTicks (%d ticks, %d nodes explored)",
				seed, res.Ticks, res.Counters.ExploredNodes)
		}
		if res.Best.Cost != want.Cost {
			t.Fatalf("seed %d: simulated best %d, want %d", seed, res.Best.Cost, want.Cost)
		}
	}
}

// TestSimulationDeterminism: identical seeds give identical runs.
func TestSimulationDeterminism(t *testing.T) {
	cfg, factory, _ := fastConfig(7)
	r1, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ticks != r2.Ticks || r1.Counters != r2.Counters || r1.Joins != r2.Joins ||
		r1.Crashes != r2.Crashes || r1.Best.Cost != r2.Best.Cost {
		t.Fatalf("non-deterministic simulation:\n%+v\nvs\n%+v", r1.Counters, r2.Counters)
	}
}

// TestSimulationStatisticsShape: the Table 2 block has the paper's
// qualitative shape — workers busy most of the time, farmer nearly idle,
// bounded redundancy, real churn.
func TestSimulationStatisticsShape(t *testing.T) {
	cfg, factory, _ := fastConfig(11)
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	t2 := res.Table2
	if t2.WorkerExploitation <= 0.5 || t2.WorkerExploitation > 1.0001 {
		t.Errorf("worker exploitation = %.3f, want in (0.5, 1]", t2.WorkerExploitation)
	}
	if t2.FarmerExploitation >= 0.5 {
		t.Errorf("farmer exploitation = %.3f, want well below worker level", t2.FarmerExploitation)
	}
	if t2.AvgWorkers <= 0 || t2.MaxWorkers > PoolSize(cfg.Pool) {
		t.Errorf("participation avg %.1f max %d out of range (pool %d)", t2.AvgWorkers, t2.MaxWorkers, PoolSize(cfg.Pool))
	}
	if t2.ExploredNodes <= 0 {
		t.Error("no nodes explored")
	}
	if t2.RedundantRate < 0 || t2.RedundantRate > 0.5 {
		t.Errorf("redundant rate = %.4f, want small", t2.RedundantRate)
	}
	if res.Joins == 0 || res.Crashes == 0 {
		t.Errorf("expected churn: joins=%d crashes=%d", res.Joins, res.Crashes)
	}
	if t2.WorkAllocations <= 1 {
		t.Errorf("allocations = %d: no load balancing happened", t2.WorkAllocations)
	}
	if t2.CheckpointOps == 0 {
		t.Error("no checkpoint operations recorded")
	}
	// Total CPU time must exceed wall clock with >1 avg workers.
	if t2.AvgWorkers > 1 && t2.TotalCPUSeconds <= t2.WallClockSeconds {
		t.Errorf("total CPU %.0fs <= wall %.0fs despite %.1f avg workers",
			t2.TotalCPUSeconds, t2.WallClockSeconds, t2.AvgWorkers)
	}
}

// TestSimulationWithInitialUpper: priming SOLUTION with the optimum (the
// paper's run 2 protocol) completes faster and still reports it.
func TestSimulationWithInitialUpper(t *testing.T) {
	cfg, factory, want := fastConfig(5)
	cold, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitialUpper = want.Cost + 1 // like run 2: one above the optimum
	primed, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if primed.Best.Cost != want.Cost {
		t.Fatalf("primed best %d, want %d", primed.Best.Cost, want.Cost)
	}
	if primed.Counters.ExploredNodes > cold.Counters.ExploredNodes {
		t.Fatalf("primed run explored %d > cold %d", primed.Counters.ExploredNodes, cold.Counters.ExploredNodes)
	}
}

// TestFigure7TraceShape: the availability series oscillates between a quiet
// floor and busy peaks like the paper's Figure 7.
func TestFigure7TraceShape(t *testing.T) {
	cfg, factory, _ := fastConfig(13)
	res, err := New(cfg, factory).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Ticks {
		t.Fatalf("trace has %d points for %d ticks", len(res.Trace), res.Ticks)
	}
	avg, max := TraceStats(res.Trace)
	if max <= int(avg) {
		t.Fatalf("flat trace: avg %.1f max %d", avg, max)
	}
	if max > PoolSize(cfg.Pool) {
		t.Fatalf("max %d exceeds pool %d", max, PoolSize(cfg.Pool))
	}
	chart := RenderTrace(res.Trace, 60, 8)
	if !strings.Contains(chart, "#") {
		t.Fatal("trace chart is empty")
	}
}

// TestTable1PoolMatchesPaper: the encoded pool is the paper's, 1889
// processors in 9 administrative domains.
func TestTable1PoolMatchesPaper(t *testing.T) {
	pool := Table1Pool()
	if got := PoolSize(pool); got != Table1Total {
		t.Fatalf("pool size = %d, want %d", got, Table1Total)
	}
	if got := len(PoolDomains(pool)); got != 9 {
		t.Fatalf("domains = %d, want 9", got)
	}
	if len(pool) != 24 {
		t.Fatalf("specs = %d, want 24 rows", len(pool))
	}
	for _, s := range pool {
		if s.GHz <= 0 || s.Count <= 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
}

// TestTable2Render covers both layouts.
func TestTable2Render(t *testing.T) {
	out := PaperTable2.Render()
	for _, want := range []string{"25.0 days", "22.0 years", "328", "1195", "97.0%", "1.70%", "4094176", "129958", "0.39%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q in:\n%s", want, out)
		}
	}
	cmp := PaperTable2.RenderComparison()
	if !strings.Contains(cmp, "Paper (Ta056 run 2)") {
		t.Error("comparison header missing")
	}
}

// TestTable3Rendering: Ta056 ranks second; the measured figure lands in its
// row.
func TestTable3Rendering(t *testing.T) {
	rows := Table3(3600 * 24 * 400)
	if rows[1].Instance != "Ta056" || rows[1].Order != 2 {
		t.Fatalf("Ta056 row = %+v", rows[1])
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Sw24978") || !strings.Contains(out, "simulated") {
		t.Fatalf("table 3 rendering:\n%s", out)
	}
	if got := Table3(-1)[1].Power; got != "22 years" {
		t.Fatalf("paper figure row = %q", got)
	}
}

// TestCalibrateRate: the calibrated rate reproduces the requested wall
// clock within the model's accuracy on its own assumptions.
func TestCalibrateRate(t *testing.T) {
	pool := Table1Pool()
	m := DefaultAvailability()
	rate := CalibrateRate(pool, m, 1_000_000, 86400)
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
	// Doubling the workload doubles the rate needed for the same wall.
	rate2 := CalibrateRate(pool, m, 2_000_000, 86400)
	if rate2 <= rate {
		t.Fatalf("rate not monotonic in workload: %f vs %f", rate, rate2)
	}
}
