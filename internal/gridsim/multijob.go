// Multi-tenant grid simulation: the same volatile processor pool and
// availability physics as Sim, but the coordinator is a jobs.Table holding
// several concurrent resolutions and every simulated host runs the
// multiplexing jobs.WorkerSession — one machine serves whichever tenant
// fair share routes it to, switching trees between work units. This is the
// acceptance substrate for the multi-tenant service: many jobs of mixed
// domains sharing one fleet, each terminating at its proven optimum,
// resumable per job from its namespaced checkpoint.
package gridsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/jobs"
	"repro/internal/transport"
)

// SubmittedJob is one tenant of a multi-job simulation.
type SubmittedJob struct {
	// ID keys the job and its checkpoint namespace.
	ID string
	// Spec describes the instance (weight included).
	Spec jobs.Spec
}

// MultiJobConfig parameterizes a simulated multi-tenant service. The
// fields shared with Config mean exactly what they mean there.
type MultiJobConfig struct {
	Pool         []CPUSpec
	Availability AvailabilityModel
	Seed         int64
	TickSeconds  float64
	// NodesPerGHzPerSecond calibrates exploration speed (required).
	NodesPerGHzPerSecond float64
	UpdatePeriodSeconds  float64
	// TableCheckpointSeconds is the service snapshot cadence: every
	// running job's farmer writes its namespaced two-file checkpoint.
	// Default 1800. Effective only with CheckpointDir set.
	TableCheckpointSeconds float64
	LeaseTTLSeconds        float64
	MaxTicks               int
	// CheckpointDir, when set, backs the table with a namespaced store —
	// jobs resume from it on resubmission (crash recovery of the whole
	// service: build a new sim over the same dir and the same job list).
	CheckpointDir string
	// MaxActive bounds concurrently running jobs (0: all submitted).
	MaxActive int
	// Jobs is the tenant list, submitted in order before the first tick.
	Jobs []SubmittedJob
}

func (c *MultiJobConfig) fillDefaults() {
	if len(c.Pool) == 0 {
		c.Pool = SmallPool(24)
	}
	if c.Availability == (AvailabilityModel{}) {
		c.Availability = DefaultAvailability()
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 60
	}
	if c.UpdatePeriodSeconds <= 0 {
		c.UpdatePeriodSeconds = 180
	}
	if c.TableCheckpointSeconds <= 0 {
		c.TableCheckpointSeconds = 1800
	}
	if c.LeaseTTLSeconds <= 0 {
		c.LeaseTTLSeconds = 3600
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 200_000
	}
	if c.MaxActive <= 0 {
		c.MaxActive = len(c.Jobs)
	}
}

// JobSimResult is one tenant's outcome.
type JobSimResult struct {
	ID    string
	State string
	// Best is the job's final incumbent (the proven optimum when State
	// is "done").
	Best bb.Solution
	// Explored is the job's farmer-accounted node total.
	Explored int64
}

// MultiJobResult summarizes a multi-tenant simulation.
type MultiJobResult struct {
	// Jobs holds per-tenant outcomes in submission order.
	Jobs []JobSimResult
	// Table carries the service-level tallies (fair-share assignments,
	// resumes, rejections).
	Table jobs.Counters
	// Trace is the availability series (one point per tick).
	Trace []TracePoint
	Ticks int
	// Finished reports whether every job reached a terminal state
	// (false: MaxTicks hit first — the resume path picks up from the
	// last table checkpoint).
	Finished               bool
	Joins, Leaves, Crashes int64
	// Store reports the checkpoint store's self-healing events across
	// every job namespace (namespaced sub-stores share their parent's
	// counters). Zero-valued with no CheckpointDir.
	Store checkpoint.Stats
}

// mjSimWorker is one active processor hosting a multi-job session.
type mjSimWorker struct {
	id      transport.WorkerID
	session *jobs.WorkerSession
	rate    float64 // nodes per virtual second
	credit  float64 // fractional node budget

	lastUpdateCount int64
	lastUpdateSecs  float64
}

// MultiJobSim runs one multi-tenant service over a volatile pool. Create
// with NewMultiJob, drive with Run.
type MultiJobSim struct {
	cfg       MultiJobConfig
	rng       *rand.Rand
	table     *jobs.Table
	store     *checkpoint.Store
	factories jobs.Factories

	slots   []float64
	cores   []int
	domains []domainState
	active  []*mjSimWorker

	nowSecs   float64
	nextID    int64
	lostNodes int64
	result    MultiJobResult

	// onTick, when set (tests), observes the state after every step.
	onTick func(tick int)
}

// NewMultiJob builds a multi-tenant simulation and submits every
// configured job. With CheckpointDir set, jobs whose namespace already
// holds a snapshot resume from it — the service-restart story.
func NewMultiJob(cfg MultiJobConfig) (*MultiJobSim, error) {
	cfg.fillDefaults()
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("gridsim: no jobs configured")
	}
	s := &MultiJobSim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.slots, s.cores, s.domains = layoutPool(cfg.Pool, cfg.Availability.PhaseJitterRadians, s.rng)
	s.active = make([]*mjSimWorker, len(s.slots))

	var store *checkpoint.Store
	if cfg.CheckpointDir != "" {
		var err error
		store, err = checkpoint.NewStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	s.table = jobs.NewTable(jobs.Config{
		MaxActive: cfg.MaxActive,
		Store:     store,
		Clock:     func() int64 { return int64(s.nowSecs * 1e9) },
		LeaseTTL:  time.Duration(cfg.LeaseTTLSeconds * 1e9),
	})
	specs := make(map[string]jobs.Spec, len(cfg.Jobs))
	for _, sj := range cfg.Jobs {
		if err := s.table.Submit(sj.ID, sj.Spec); err != nil {
			return nil, err
		}
		specs[sj.ID] = sj.Spec
	}
	s.factories = jobs.SpecFactories(specs)
	return s, nil
}

// Table exposes the job table (mid-run progress queries in tests and
// tooling — the same surface cmd/jobd serves over HTTP).
func (s *MultiJobSim) Table() *jobs.Table { return s.table }

// Run executes the simulation until every job terminates (or MaxTicks).
func (s *MultiJobSim) Run() (MultiJobResult, error) {
	cfg := &s.cfg
	if cfg.NodesPerGHzPerSecond <= 0 {
		return MultiJobResult{}, fmt.Errorf("gridsim: NodesPerGHzPerSecond must be set")
	}
	dt := cfg.TickSeconds
	nextCkpt := cfg.TableCheckpointSeconds
	for tick := 0; tick < cfg.MaxTicks; tick++ {
		s.nowSecs = float64(tick) * dt
		driveChurn(&cfg.Availability, dt, s.nowSecs, s.rng, s.domains,
			func(slot int) bool { return s.active[slot] != nil }, s.join, s.leave)

		activeCount := 0
		for _, w := range s.active {
			if w == nil {
				continue
			}
			activeCount++
			w.credit += w.rate * dt
			budget := int64(w.credit)
			if budget <= 0 {
				// Not enough credit for a whole node yet: still acquire
				// work if idle and keep the time-based checkpoint alive.
				if !w.session.HasWork() {
					if _, _, err := w.session.Advance(0); err != nil {
						return s.result, fmt.Errorf("gridsim: worker %s: %w", w.id, err)
					}
				}
				if err := s.maybeCheckpoint(w); err != nil {
					return s.result, err
				}
				continue
			}
			n, _, err := w.session.Advance(budget)
			if err != nil {
				return s.result, fmt.Errorf("gridsim: worker %s: %w", w.id, err)
			}
			w.credit -= float64(n)
			if n < budget && !w.session.HasWork() {
				// Starved partway through the slice; drop the rest.
				w.credit = 0
			}
			if err := s.maybeCheckpoint(w); err != nil {
				return s.result, err
			}
		}
		if s.onTick != nil {
			s.onTick(tick)
		}
		s.result.Trace = append(s.result.Trace, TracePoint{TimeSeconds: s.nowSecs, Active: activeCount})
		if cfg.CheckpointDir != "" && s.nowSecs >= nextCkpt {
			if err := s.table.Checkpoint(); err != nil {
				return s.result, err
			}
			nextCkpt += cfg.TableCheckpointSeconds
		}
		s.result.Ticks = tick + 1
		if s.table.Done() {
			s.result.Finished = true
			break
		}
	}
	for _, p := range s.table.List() {
		s.result.Jobs = append(s.result.Jobs, JobSimResult{
			ID:       p.ID,
			State:    p.State,
			Best:     bb.Solution{Cost: p.BestCost, Path: p.BestPath},
			Explored: p.Counters.ExploredNodes,
		})
	}
	s.result.Table = s.table.Counters()
	if s.store != nil {
		s.result.Store = s.store.Stats()
	}
	return s.result, nil
}

// join starts a fresh multi-job session on the slot.
func (s *MultiJobSim) join(slot int) {
	s.nextID++
	id := transport.WorkerID(fmt.Sprintf("mj-%d-s%d", s.nextID, slot))
	cores := s.cores[slot]
	rate := s.slots[slot] * float64(cores) * s.cfg.NodesPerGHzPerSecond * (1 - s.cfg.Availability.HostLoadFraction)
	power := int64(rate * 1000) // fixed-point so slow hosts stay > 0
	if power < 1 {
		power = 1
	}
	updateNodes := int64(rate * s.cfg.UpdatePeriodSeconds)
	if updateNodes < 1 {
		updateNodes = 1
	}
	sess := jobs.NewWorkerSession(jobs.WorkerConfig{
		ID:                id,
		Power:             power,
		UpdatePeriodNodes: updateNodes,
	}, s.table, s.factories)
	s.active[slot] = &mjSimWorker{id: id, session: sess, rate: rate, lastUpdateSecs: s.nowSecs}
	s.result.Joins++
}

// leave retires the slot's worker, gracefully (final per-engine
// checkpoint) or by crash (the lease mechanism orphans its intervals).
func (s *MultiJobSim) leave(slot int) {
	w := s.active[slot]
	if w == nil {
		return
	}
	if s.rng.Float64() < s.cfg.Availability.CrashShare {
		s.lostNodes += w.session.Stats().Explored - w.session.Reported().Explored
		s.result.Crashes++
	} else {
		if err := w.session.Checkpoint(); err == nil {
			s.result.Leaves++
		} else {
			s.result.Crashes++
		}
	}
	s.active[slot] = nil
}

// maybeCheckpoint triggers the time-based interval update for hosts too
// slow to hit the node-count cadence — it keeps their leases alive across
// every job they hold (§4.1, per tenant).
func (s *MultiJobSim) maybeCheckpoint(w *mjSimWorker) error {
	if u := w.session.Messages.Updates; u > w.lastUpdateCount {
		w.lastUpdateCount = u
		w.lastUpdateSecs = s.nowSecs
		return nil
	}
	if s.nowSecs-w.lastUpdateSecs < s.cfg.UpdatePeriodSeconds {
		return nil
	}
	if err := w.session.Checkpoint(); err != nil {
		return fmt.Errorf("gridsim: worker %s checkpoint: %w", w.id, err)
	}
	w.lastUpdateCount = w.session.Messages.Updates
	w.lastUpdateSecs = s.nowSecs
	return nil
}

// MultiTenantScenario returns the 8-job acceptance configuration: two
// instances each of the four problem domains — mixed tree shapes and
// weights — on the compressed 60-processor pool with 20-minute "days".
// Every job must terminate at its proven optimum with zero cross-job
// leakage; with a checkpoint dir the whole service survives a restart.
func MultiTenantScenario(seed int64) MultiJobConfig {
	m := AvailabilityModel{
		BaseFraction: 0.2, Amplitude: 0.6, NoiseFraction: 0.08,
		NoisePeriodSeconds: 60, DaySeconds: 1200, CrashShare: 0.25,
		RampSeconds: 60, PhaseJitterRadians: 0.3, HostLoadFraction: 0.025,
	}
	return MultiJobConfig{
		Pool:                   SmallPool(60),
		Availability:           m,
		Seed:                   seed,
		TickSeconds:            1,
		NodesPerGHzPerSecond:   3,
		UpdatePeriodSeconds:    10,
		TableCheckpointSeconds: 30,
		LeaseTTLSeconds:        60,
		Jobs: []SubmittedJob{
			{ID: "fs10x5a", Spec: jobs.Spec{Domain: "flowshop", Jobs: 10, Machines: 5, Seed: 2, Weight: 3}},
			{ID: "fs10x5b", Spec: jobs.Spec{Domain: "flowshop", Jobs: 10, Machines: 5, Seed: 5, Weight: 2}},
			{ID: "tsp9", Spec: jobs.Spec{Domain: "tsp", N: 9, Seed: 5}},
			{ID: "tsp8", Spec: jobs.Spec{Domain: "tsp", N: 8, Seed: 3}},
			{ID: "qap7a", Spec: jobs.Spec{Domain: "qap", N: 7, Seed: 1}},
			{ID: "qap7b", Spec: jobs.Spec{Domain: "qap", N: 7, Seed: 5}},
			{ID: "knap24", Spec: jobs.Spec{Domain: "knapsack", N: 24, Seed: 5}},
			{ID: "knap20", Spec: jobs.Spec{Domain: "knapsack", N: 20, Seed: 1}},
		},
	}
}
