// Package knapsack implements the 0/1 knapsack problem over a binary
// search tree. It exists to exercise the binary-tree weight formula of the
// paper (eq. 2: weight(n) = 2^(P-depth)) in the interval coding — the other
// domains in this repository are permutation trees (eq. 3) — and to show
// that maximization problems plug into the minimizing engines by negating
// their objective.
package knapsack

import (
	"fmt"
	"math/rand"

	"repro/internal/bb"
	"repro/internal/tree"
)

// Instance is a 0/1 knapsack instance. Items are stored in decreasing
// value-density order (the branching order that makes the greedy bound
// tight); the Order field maps internal positions back to the caller's
// original item indices.
type Instance struct {
	// Name identifies the instance.
	Name string
	// Capacity is the weight budget.
	Capacity int64
	// Values and Weights are indexed by internal position.
	Values, Weights []int64
	// Order maps internal position to the original item index.
	Order []int
}

// NewInstance validates items and sorts them by decreasing density.
func NewInstance(name string, capacity int64, values, weights []int64) (*Instance, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("knapsack: %d values vs %d weights", len(values), len(weights))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("knapsack: instance %q has no items", name)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("knapsack: negative capacity %d", capacity)
	}
	n := len(values)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("knapsack: non-positive weight %d", w)
		}
	}
	for _, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("knapsack: negative value %d", v)
		}
	}
	// Sort by decreasing v/w using cross multiplication to stay integral.
	sortByDensity(order, values, weights)
	ins := &Instance{Name: name, Capacity: capacity, Order: order,
		Values: make([]int64, n), Weights: make([]int64, n)}
	for pos, i := range order {
		ins.Values[pos] = values[i]
		ins.Weights[pos] = weights[i]
	}
	return ins, nil
}

func sortByDensity(order []int, values, weights []int64) {
	// Insertion sort keeps this dependency-free and stable; instances are
	// small (the binary tree has 2^n leaves, so n stays modest anyway).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			// density(a) < density(b) ⟺ v_a·w_b < v_b·w_a.
			if values[a]*weights[b] < values[b]*weights[a] {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
}

// Random generates a correlated random instance: weights uniform in
// [1, 100], values = weight + uniform [1, 20], capacity = half the total
// weight. Deterministic per seed.
func Random(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	values := make([]int64, n)
	weights := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		weights[i] = 1 + rng.Int63n(100)
		values[i] = weights[i] + 1 + rng.Int63n(20)
		total += weights[i]
	}
	ins, err := NewInstance(fmt.Sprintf("knap-%d-seed%d", n, seed), total/2, values, weights)
	if err != nil {
		panic(err) // generated inputs are valid by construction
	}
	return ins
}

// Best returns the value of the best subset denoted by a rank path of the
// problem tree (rank 0 = take, rank 1 = skip), or an error on a bad path.
func (ins *Instance) ValueOfPath(ranks []int) (value, weight int64, err error) {
	if len(ranks) != len(ins.Values) {
		return 0, 0, fmt.Errorf("knapsack: path of length %d for %d items", len(ranks), len(ins.Values))
	}
	for pos, r := range ranks {
		switch r {
		case 0:
			value += ins.Values[pos]
			weight += ins.Weights[pos]
		case 1:
		default:
			return 0, 0, fmt.Errorf("knapsack: rank %d at depth %d", r, pos)
		}
	}
	return value, weight, nil
}

// Problem adapts the instance to bb.Problem over a binary tree: depth d
// decides item d (in density order), rank 0 takes it, rank 1 skips it.
// Costs are negated values so the minimizing engines maximize value;
// infeasible subtrees (weight over capacity) bound to bb.Infinity.
type Problem struct {
	ins   *Instance
	depth int
	value []int64 // cumulative value per depth
	load  []int64 // cumulative weight per depth
	// suffix greedy tables for the fractional bound
}

// NewProblem builds the adapter.
func NewProblem(ins *Instance) *Problem {
	n := len(ins.Values)
	p := &Problem{
		ins:   ins,
		value: make([]int64, n+1),
		load:  make([]int64, n+1),
	}
	return p
}

// Instance returns the instance being solved.
func (p *Problem) Instance() *Instance { return p.ins }

// Shape implements bb.Problem: a complete binary tree of depth n.
func (p *Problem) Shape() tree.Shape { return tree.Binary{P: len(p.ins.Values)} }

// Reset implements bb.Problem.
func (p *Problem) Reset() {
	p.depth = 0
	p.value[0] = 0
	p.load[0] = 0
}

// Descend implements bb.Problem.
func (p *Problem) Descend(rank int) {
	v, w := p.value[p.depth], p.load[p.depth]
	if rank == 0 {
		v += p.ins.Values[p.depth]
		w += p.ins.Weights[p.depth]
	}
	p.depth++
	p.value[p.depth] = v
	p.load[p.depth] = w
}

// Ascend implements bb.Problem.
func (p *Problem) Ascend() { p.depth-- }

// Bound implements bb.Problem: the negated linear-relaxation upper bound.
// Items after the current depth are taken greedily in density order; the
// first one that does not fit contributes its fractional value, floored —
// valid because the integer optimum below this node is at most the LP
// optimum, and being integral, at most its floor.
//
// The greedy accumulation only drives the (negated) bound down, so there is
// no sound prune-side shortcut mid-scan; the cutoff is accepted for the
// bb.Problem contract and the exact bound is always returned (the scan is
// already short: it stops at the first item that does not fit).
func (p *Problem) Bound(int64) int64 {
	if p.load[p.depth] > p.ins.Capacity {
		return bb.Infinity
	}
	capLeft := p.ins.Capacity - p.load[p.depth]
	ub := p.value[p.depth]
	for i := p.depth; i < len(p.ins.Values); i++ {
		if p.ins.Weights[i] <= capLeft {
			capLeft -= p.ins.Weights[i]
			ub += p.ins.Values[i]
			continue
		}
		ub += capLeft * p.ins.Values[i] / p.ins.Weights[i]
		break
	}
	return -ub
}

// Cost implements bb.Problem.
func (p *Problem) Cost() int64 {
	if p.load[p.depth] > p.ins.Capacity {
		return bb.Infinity
	}
	return -p.value[p.depth]
}

// DecodePath implements bb.Decoder: lists the taken original item indices.
func (p *Problem) DecodePath(ranks []int) string {
	var taken []int
	for pos, r := range ranks {
		if pos < len(p.ins.Order) && r == 0 {
			taken = append(taken, p.ins.Order[pos])
		}
	}
	return fmt.Sprint(taken)
}

var _ bb.Problem = (*Problem)(nil)
var _ bb.Decoder = (*Problem)(nil)
