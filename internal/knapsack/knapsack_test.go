package knapsack

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/tree"
)

// bruteBest enumerates all subsets; the ground truth for small instances.
func bruteBest(values, weights []int64, capacity int64) int64 {
	n := len(values)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var v, w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

// TestSolveMatchesBruteForce on random instances (both the sequential
// engine and the interval explorer).
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		values := make([]int64, n)
		weights := make([]int64, n)
		var total int64
		for i := range values {
			weights[i] = 1 + rng.Int63n(30)
			values[i] = 1 + rng.Int63n(50)
			total += weights[i]
		}
		capacity := rng.Int63n(total + 1)
		want := bruteBest(values, weights, capacity)
		ins, err := NewInstance("t", capacity, values, weights)
		if err != nil {
			t.Fatal(err)
		}
		sol, _ := bb.Solve(NewProblem(ins), bb.Infinity)
		if -sol.Cost != want {
			t.Fatalf("trial %d: B&B value %d, brute force %d", trial, -sol.Cost, want)
		}
		nb := core.NewNumbering(tree.Binary{P: n})
		e := core.NewExplorer(NewProblem(ins), nb, nb.RootRange(), bb.Infinity)
		esol, _ := e.Run(1 << 12)
		if -esol.Cost != want {
			t.Fatalf("trial %d: explorer value %d, brute force %d", trial, -esol.Cost, want)
		}
	}
}

// TestBoundIsRelaxation: the negated bound never underestimates the best
// achievable value below a node (property over random positions).
func TestBoundIsRelaxation(t *testing.T) {
	ins := Random(12, 9)
	p := NewProblem(ins)
	f := func(path uint16, depthSeed uint8) bool {
		p.Reset()
		depth := int(depthSeed) % 12
		for d := 0; d < depth; d++ {
			p.Descend(int(path>>d) & 1)
		}
		lb := p.Bound(bb.Infinity)
		// Brute-force the best completion below this node.
		best := bb.Infinity
		var walk func(d int)
		walk = func(d int) {
			if d == 12 {
				if c := p.Cost(); c < best {
					best = c
				}
				return
			}
			for r := 0; r < 2; r++ {
				p.Descend(r)
				walk(d + 1)
				p.Ascend()
			}
		}
		walk(depth)
		return lb <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDensityOrdering: the internal item order is by non-increasing
// value density.
func TestDensityOrdering(t *testing.T) {
	ins, err := NewInstance("d", 100,
		[]int64{10, 30, 20}, []int64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Densities 1, 3, 2 → order positions must map to items 1, 2, 0.
	want := []int{1, 2, 0}
	for pos, item := range want {
		if ins.Order[pos] != item {
			t.Fatalf("order = %v, want %v", ins.Order, want)
		}
	}
	for pos := 1; pos < len(ins.Values); pos++ {
		if ins.Values[pos-1]*ins.Weights[pos] < ins.Values[pos]*ins.Weights[pos-1] {
			t.Fatalf("density not non-increasing at %d", pos)
		}
	}
}

// TestInfeasibleBranchesPruned: over-capacity nodes bound to Infinity and
// over-capacity leaves cost Infinity — the regular binary tree is kept
// intact, infeasibility is expressed through the bound as the bb.Problem
// contract requires.
func TestInfeasibleBranchesPruned(t *testing.T) {
	ins, err := NewInstance("tiny", 5, []int64{10, 10}, []int64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(ins)
	p.Reset()
	p.Descend(0) // take item of weight 6 > capacity 5
	if p.Bound(bb.Infinity) != bb.Infinity {
		t.Fatalf("bound of infeasible node = %d", p.Bound(bb.Infinity))
	}
	p.Descend(0)
	if p.Cost() != bb.Infinity {
		t.Fatalf("cost of infeasible leaf = %d", p.Cost())
	}
	p.Ascend()
	p.Ascend()
	// The whole instance still solves: the only feasible subsets are
	// empty or nothing, value 0.
	sol, _ := bb.Solve(NewProblem(ins), bb.Infinity)
	if sol.Cost != 0 {
		t.Fatalf("optimum = %d, want 0 (empty subset)", sol.Cost)
	}
}

// TestValidation rejects malformed instances.
func TestValidation(t *testing.T) {
	if _, err := NewInstance("x", 10, []int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewInstance("x", 10, nil, nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := NewInstance("x", -1, []int64{1}, []int64{1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewInstance("x", 10, []int64{1}, []int64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewInstance("x", 10, []int64{-1}, []int64{1}); err == nil {
		t.Error("negative value accepted")
	}
}

// TestValueOfPath evaluates rank paths directly.
func TestValueOfPath(t *testing.T) {
	ins, err := NewInstance("v", 100, []int64{5, 7}, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	v, w, err := ins.ValueOfPath([]int{0, 0})
	if err != nil || v != 12 || w != 5 {
		t.Fatalf("take-all = (%d,%d,%v)", v, w, err)
	}
	v, w, err = ins.ValueOfPath([]int{1, 1})
	if err != nil || v != 0 || w != 0 {
		t.Fatalf("take-none = (%d,%d,%v)", v, w, err)
	}
	if _, _, err := ins.ValueOfPath([]int{0}); err == nil {
		t.Error("short path accepted")
	}
	if _, _, err := ins.ValueOfPath([]int{0, 2}); err == nil {
		t.Error("bad rank accepted")
	}
}

// TestDecodePath lists taken original indices.
func TestDecodePath(t *testing.T) {
	ins, err := NewInstance("d", 100, []int64{10, 30, 20}, []int64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(ins)
	// Take positions 0 and 2 → original items 1 and 0.
	out := p.DecodePath([]int{0, 1, 0})
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Errorf("DecodePath = %q", out)
	}
}

// TestRandomDeterministic per seed.
func TestRandomDeterministic(t *testing.T) {
	a, b := Random(10, 5), Random(10, 5)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("Random not deterministic")
		}
	}
}
