package harness

import (
	"testing"
)

// TestMultiJobChurnConformance runs the multi-tenant chaos scenario twice:
// the first run must satisfy every per-job conformance invariant (interval
// partition per job, incumbent optimality per job, zero cross-job leakage)
// and actually exercise its faults; the second must produce a
// byte-identical event trace.
func TestMultiJobChurnConformance(t *testing.T) {
	sc := MultiJobChurn()
	rep, err := RunMultiJob(sc)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s: VIOLATION: %s", rep.Name, v)
	}
	if !rep.Finished {
		t.Fatalf("%s: did not finish (%d ticks)", rep.Name, rep.Ticks)
	}

	// The fault schedule must actually land: kills with rejoins, dropped
	// replies, a mid-run cancel, and checkpoints across all three jobs.
	if rep.Kills < len(sc.Kills) {
		t.Errorf("%d kills, scheduled %d", rep.Kills, len(sc.Kills))
	}
	if rep.Rejoins == 0 {
		t.Errorf("no rejoins")
	}
	if rep.Drops == 0 {
		t.Errorf("no dropped messages despite DropReplyPct=%d", sc.DropReplyPct)
	}
	if rep.Checkpoints == 0 {
		t.Errorf("no checkpoints")
	}
	if rep.DiskFaults == 0 {
		t.Errorf("no checkpoint sweep hit the injected fsync EIO despite DiskFaultEvery=%d", sc.DiskFaultEvery)
	}
	if got := rep.Table.Cancelled; got != 1 {
		t.Errorf("table cancelled %d jobs, want 1", got)
	}
	if rep.Table.FairShareAssignments == 0 {
		t.Errorf("no fair-share assignments — the fleet never multiplexed")
	}

	// Per-job outcomes: the survivors prove their optima, the cancelled
	// job stays cancelled, and every completed job explored a plausible
	// share of its tree.
	states := map[string]string{}
	for _, out := range rep.Jobs {
		states[out.ID] = out.State
		if out.State == "done" && out.Explored == 0 {
			t.Errorf("job %s: done with zero explored nodes", out.ID)
		}
	}
	if states["fs10x5"] != "done" || states["tsp9"] != "done" {
		t.Errorf("surviving jobs not done: %v", states)
	}
	if states["qap7"] != "cancelled" {
		t.Errorf("qap7 state %q, want cancelled", states["qap7"])
	}

	again, err := RunMultiJob(sc)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	assertSameTrace(t, rep.Trace, again.Trace)

	t.Logf("%s: ticks=%d drops=%d kills=%d rejoins=%d ckpts=%d ckpt-faults=%d fair-share=%d",
		rep.Name, rep.Ticks, rep.Drops, rep.Kills, rep.Rejoins,
		rep.Checkpoints, rep.DiskFaults, rep.Table.FairShareAssignments)
}
