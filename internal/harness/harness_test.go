package harness

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/transport"
)

// TestScenarioMatrixConformance runs every named scenario twice: the first
// run must satisfy all three conformance invariants (interval partition,
// incumbent optimality, bounded rework) and actually exercise its faults;
// the second must produce a byte-identical event trace — the determinism
// contract that makes every harness failure reproducible.
func TestScenarioMatrixConformance(t *testing.T) {
	for _, sc := range GridScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			assertConformant(t, rep)

			again, err := Run(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			assertSameTrace(t, rep.Trace, again.Trace)
		})
	}
	for _, sc := range RingScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := RunRing(sc)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			assertConformant(t, rep)
			again, err := RunRing(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			assertSameTrace(t, rep.Trace, again.Trace)
		})
	}
}

func assertConformant(t *testing.T, rep Report) {
	t.Helper()
	for _, v := range rep.Violations {
		t.Errorf("%s: VIOLATION: %s", rep.Name, v)
	}
	if !rep.Finished {
		t.Fatalf("%s: did not finish (%d ticks)", rep.Name, rep.Ticks)
	}
	if rep.Best.Cost != rep.Baseline.Cost {
		t.Fatalf("%s: best %d != baseline %d", rep.Name, rep.Best.Cost, rep.Baseline.Cost)
	}
	t.Logf("%s: ticks=%d best=%d drops=%d dups=%d kills=%d rejoins=%d restarts=%d ckpts=%d overlap=%s rework=%s",
		rep.Name, rep.Ticks, rep.Best.Cost, rep.Drops, rep.Duplicates, rep.Kills,
		rep.Rejoins, rep.Restarts, rep.Checkpoints, rep.OverlapUnits, rep.ReworkBudget)
}

func assertSameTrace(t *testing.T, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestScenariosExerciseTheirFaults guards the scenarios against silently
// degenerating into quiet runs (e.g. after a retuning that makes the
// resolution finish before the first scheduled fault).
func TestScenariosExerciseTheirFaults(t *testing.T) {
	churny, err := Run(ChurnyGrid())
	if err != nil {
		t.Fatal(err)
	}
	if churny.Kills == 0 || churny.Rejoins == 0 {
		t.Errorf("churny-grid: kills=%d rejoins=%d — fault schedule never fired", churny.Kills, churny.Rejoins)
	}
	if churny.Drops == 0 || churny.Duplicates == 0 {
		t.Errorf("churny-grid: drops=%d duplicates=%d — message chaos never fired", churny.Drops, churny.Duplicates)
	}

	failover, err := Run(FarmerFailover())
	if err != nil {
		t.Fatal(err)
	}
	if failover.Restarts != len(FarmerFailover().FarmerRestarts) {
		t.Errorf("farmer-failover: %d restarts, scheduled %d", failover.Restarts, len(FarmerFailover().FarmerRestarts))
	}
	if failover.Checkpoints == 0 {
		t.Errorf("farmer-failover: no farmer checkpoints written")
	}
	if failover.DiskFaults == 0 {
		t.Errorf("farmer-failover: no checkpoint attempt hit the injected fsync EIO")
	}
	if failover.CorruptInjections == 0 {
		t.Errorf("farmer-failover: the on-disk corruption was never injected")
	}
	if failover.Counters.CorruptSnapshots == 0 || failover.Counters.FallbackLoads == 0 {
		t.Errorf("farmer-failover: corrupt=%d fallback=%d — the restart never exercised the *.prev fallback",
			failover.Counters.CorruptSnapshots, failover.Counters.FallbackLoads)
	}

	mc, err := Run(MulticoreChurn())
	if err != nil {
		t.Fatal(err)
	}
	if mc.Kills == 0 || mc.Rejoins == 0 {
		t.Errorf("multicore-churn: kills=%d rejoins=%d — fault schedule never fired", mc.Kills, mc.Rejoins)
	}
	if mc.Drops == 0 {
		t.Errorf("multicore-churn: drops=%d — reply chaos never fired", mc.Drops)
	}

	packed, err := Run(PackedGrid())
	if err != nil {
		t.Fatal(err)
	}
	if packed.Kills == 0 || packed.Rejoins == 0 {
		t.Errorf("packed-grid: kills=%d rejoins=%d — fault schedule never fired", packed.Kills, packed.Rejoins)
	}
	if packed.Drops == 0 {
		t.Errorf("packed-grid: drops=%d — reply chaos never fired", packed.Drops)
	}
	if packed.Counters.ExpiredOwners == 0 {
		t.Errorf("packed-grid: no lease ever expired — the heap sweep went unexercised")
	}
	if packed.Counters.WorkAllocations < 16 {
		t.Errorf("packed-grid: only %d allocations across 16 workers", packed.Counters.WorkAllocations)
	}

	tree, err := Run(TreeChurn())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(TreeChurn().SubRestarts) + len(TreeChurn().FarmerRestarts); tree.Restarts != want {
		t.Errorf("tree-churn: %d restarts, scheduled %d (sub + root)", tree.Restarts, want)
	}
	if tree.Kills == 0 || tree.Rejoins == 0 {
		t.Errorf("tree-churn: kills=%d rejoins=%d — fault schedule never fired", tree.Kills, tree.Rejoins)
	}
	if tree.Drops == 0 {
		t.Errorf("tree-churn: drops=%d — reply chaos never fired", tree.Drops)
	}
	if tree.Refills < int64(TreeChurn().Subtrees) {
		t.Errorf("tree-churn: only %d refills across %d subtrees — the tree never spread work", tree.Refills, TreeChurn().Subtrees)
	}
	if tree.Checkpoints == 0 {
		t.Errorf("tree-churn: no checkpoints written — the sub restarts restored nothing")
	}

	endgame, err := Run(EndgameChurn())
	if err != nil {
		t.Fatal(err)
	}
	if endgame.Refills < int64(EndgameChurn().Subtrees) {
		t.Errorf("endgame-churn: only %d refills across %d subtrees", endgame.Refills, EndgameChurn().Subtrees)
	}
	if endgame.LowWaterRefills == 0 {
		t.Errorf("endgame-churn: no low-water refill — the work-conserving pre-fetch never fired")
	}
	if endgame.Counters.GapCarves == 0 {
		t.Errorf("endgame-churn: no gap carve — no fold ever vouched an explored hole the root cut out")
	}
	if endgame.Counters.Duplications == 0 {
		t.Errorf("endgame-churn: no duplication — the crumb-sharing rule never fired")
	}

	stalled, err := Run(StalledCoordinator())
	if err != nil {
		t.Fatal(err)
	}
	if stalled.Timeouts == 0 {
		t.Errorf("stalled-coordinator: timeouts=%d — no call was ever black-holed", stalled.Timeouts)
	}
	if stalled.UpstreamTimeouts == 0 {
		t.Errorf("stalled-coordinator: the sub→root leg never saw a deadline failure")
	}
	if stalled.Drops != 0 {
		t.Errorf("stalled-coordinator: drops=%d — the scenario must fail only by deadline", stalled.Drops)
	}

	quiet, err := Run(QuietGrid())
	if err != nil {
		t.Fatal(err)
	}
	if quiet.OverlapUnits.Sign() != 0 {
		t.Errorf("quiet-grid: %s units re-covered without any fault", quiet.OverlapUnits)
	}

	ring, err := RunRing(PartitionedRing())
	if err != nil {
		t.Fatal(err)
	}
	var blocked bool
	for _, line := range ring.Trace {
		if strings.Contains(line, "-blocked") {
			blocked = true
			break
		}
	}
	if !blocked {
		t.Errorf("partitioned-ring: the partition window never blocked anything")
	}

	restart, err := RunRing(RingRestart())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(RingRestart().Kills); restart.Restarts != want {
		t.Errorf("ring-restart: %d restores, scheduled %d", restart.Restarts, want)
	}
	if restart.Checkpoints == 0 {
		t.Errorf("ring-restart: the periodic checkpoint cadence never fired")
	}
	if restart.ReworkBudget.Sign() == 0 {
		t.Errorf("ring-restart: every restore re-opened a fresh frontier — the kills landed on idle peers and exercised nothing")
	}
}

// TestDifferentSeedsDiverge: the seed is the only source of variation, and
// it is a real one — two different seeds must produce different traces
// (otherwise the chaos machinery is decorative).
func TestDifferentSeedsDiverge(t *testing.T) {
	a := ChurnyGrid()
	b := ChurnyGrid()
	b.Seed++
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	assertConformant(t, ra)
	assertConformant(t, rb)
	if len(ra.Trace) == len(rb.Trace) {
		same := true
		for i := range ra.Trace {
			if ra.Trace[i] != rb.Trace[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// lossyCoordinator is a deliberately broken coordinator: allocation drops
// half of the handed-out interval from its own bookkeeping (the lost-work
// bug class the stale-tail carve fixed in the farmer), and an update can be
// made to conjure new work out of thin air.
type lossyCoordinator struct {
	intervals []checkpoint.IntervalRecord
	loseOn    bool
	growOn    bool
}

func (c *lossyCoordinator) IntervalsSnapshot() []checkpoint.IntervalRecord {
	out := make([]checkpoint.IntervalRecord, len(c.intervals))
	copy(out, c.intervals)
	return out
}

func (c *lossyCoordinator) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	if c.loseOn && len(c.intervals) > 0 {
		iv := c.intervals[0].Interval
		mid := new(big.Int).Add(iv.A(), iv.B())
		mid.Rsh(mid, 1)
		left, _ := iv.SplitAt(mid)
		c.intervals[0].Interval = left // the right half silently vanishes
	}
	return transport.WorkReply{Status: transport.WorkAssigned, IntervalID: 1}, nil
}

func (c *lossyCoordinator) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	if c.growOn {
		c.intervals = append(c.intervals, checkpoint.IntervalRecord{
			ID: 99, Interval: interval.FromInt64(1000, 2000),
		})
	}
	return transport.UpdateReply{Known: true}, nil
}

func (c *lossyCoordinator) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	return transport.SolutionAck{}, nil
}

// TestTrackerCatchesBrokenCoordinators proves the conformance layer has
// teeth: a coordinator that loses work on allocation, or conjures work on
// update, or terminates with uncovered regions, is flagged.
func TestTrackerCatchesBrokenCoordinators(t *testing.T) {
	root := interval.FromInt64(0, 100)

	lossy := &lossyCoordinator{
		intervals: []checkpoint.IntervalRecord{{ID: 1, Interval: root.Clone()}},
		loseOn:    true,
	}
	tr := newTracker(root)
	tr.attach(lossy)
	tr.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
	if len(tr.violations) == 0 {
		t.Error("tracker accepted an allocation that lost half the interval")
	}

	growing := &lossyCoordinator{
		intervals: []checkpoint.IntervalRecord{{ID: 1, Interval: root.Clone()}},
		growOn:    true,
	}
	tr2 := newTracker(root)
	tr2.attach(growing)
	tr2.UpdateInterval(transport.UpdateRequest{Worker: "w", IntervalID: 1, Remaining: root})
	if len(tr2.violations) == 0 {
		t.Error("tracker accepted an update that grew INTERVALS")
	}

	empty := &lossyCoordinator{}
	tr3 := newTracker(root)
	tr3.attach(empty)
	tr3.covered.Add(interval.FromInt64(0, 40)) // 60 units never covered
	tr3.noteTermination()
	if len(tr3.violations) == 0 {
		t.Error("tracker accepted termination with unexplored gaps")
	}
}

// TestHarnessBaselineAgreement: the harness's sequential baseline matches a
// direct bb.Solve — guarding the oracle itself.
func TestHarnessBaselineAgreement(t *testing.T) {
	sc := QuietGrid()
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bb.Solve(knapsack.NewProblem(knapsack.Random(20, 5)), bb.Infinity)
	if rep.Baseline.Cost != want.Cost {
		t.Fatalf("baseline %d, direct solve %d", rep.Baseline.Cost, want.Cost)
	}
}
