// Multi-job chaos scenarios: the conformance harness for the multi-tenant
// job table (internal/jobs). One fleet of multi-job workers shares one
// table holding several concurrent resolutions while the chaos layer
// kills workers and drops replies and the operator cancels a job mid-run.
//
// Conformance is per job: every job gets its own tracker (the same
// interval-algebra auditor the single-job scenarios use), attached via
// the table's Wrap hook so it sees exactly the messages routed to its
// job. A leak — an interval of job A's tree granted under job B's tag —
// would surface twice: once in the assignment-containment check here, and
// once as a partition violation inside the wronged job's tracker.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/jobs"
	"repro/internal/transport"
)

// MultiJob is one tenant of a multi-job scenario.
type MultiJob struct {
	// ID keys the job (and its checkpoint namespace).
	ID string
	// Spec describes the instance; its Weight is the fair-share weight.
	Spec jobs.Spec
	// CancelAt cancels the job at this tick (0: run to completion).
	CancelAt int
}

// MultiJobScenario drives one fleet over one table of concurrent jobs.
// The knobs shared with Scenario mean exactly what they mean there.
type MultiJobScenario struct {
	Name string
	Seed int64
	Jobs []MultiJob

	Workers           int
	UpdatePeriodNodes int64
	TickBudget        int64
	LeaseTTLTicks     int
	CheckpointEvery   int
	// DiskFaultEvery fails every Nth table checkpoint sweep with injected
	// EIO on every snapshot fsync: all jobs' saves abort uniformly (the
	// table iterates jobs in map order, so a partial fault would save a
	// nondeterministic subset and break trace reproducibility).
	DiskFaultEvery int
	DropRequestPct int
	DropReplyPct   int
	DuplicatePct   int
	BlackholePct   int
	Kills          []KillEvent
	MaxTicks       int
	// MaxActive bounds concurrently running jobs (0: all of them).
	MaxActive int
}

func (sc *MultiJobScenario) fillDefaults() {
	if sc.Workers <= 0 {
		sc.Workers = 3
	}
	if sc.UpdatePeriodNodes <= 0 {
		sc.UpdatePeriodNodes = 256
	}
	if sc.TickBudget <= 0 {
		sc.TickBudget = 512
	}
	if sc.LeaseTTLTicks <= 0 {
		sc.LeaseTTLTicks = 3
	}
	if sc.MaxTicks <= 0 {
		sc.MaxTicks = 5000
	}
	if sc.MaxActive <= 0 {
		sc.MaxActive = len(sc.Jobs)
	}
}

// JobOutcome is one job's verdict in a MultiJobReport.
type JobOutcome struct {
	ID       string
	State    string
	Best     bb.Solution
	Baseline bb.Solution
	// Explored is the job's farmer-accounted node total.
	Explored int64
}

// MultiJobReport is the outcome of a multi-job scenario. Conformant iff
// Violations is empty and Finished is true.
type MultiJobReport struct {
	Name       string
	Trace      []string
	Violations []string
	Jobs       []JobOutcome
	Ticks      int
	Finished   bool

	Drops, Duplicates, Kills, Rejoins, Checkpoints, Timeouts int
	// DiskFaults counts checkpoint sweeps killed by injected I/O errors.
	DiskFaults int
	Table      jobs.Counters
}

// mjSlot is one worker seat, holding a multi-job session instead of a
// single-job one.
type mjSlot struct {
	sess     *jobs.WorkerSession
	id       transport.WorkerID
	gen      int
	rejoinAt int
	finished bool
}

// mjGrid is the running state of one multi-job scenario.
type mjGrid struct {
	sc      MultiJobScenario
	rng     *rand.Rand
	tick    int
	nowNano int64

	table        *jobs.Table
	fs           *checkpoint.FaultFS
	ckptAttempts int
	factories    map[string]func() bb.Problem
	roots        map[string]interval.Interval
	tracks       map[string]*tracker
	chaos        *transport.Interceptor
	slots        []*mjSlot
	trace        []string
	report       *MultiJobReport
	crashed      map[transport.WorkerID]bool

	violations []string
}

func (g *mjGrid) violatef(format string, args ...any) {
	g.violations = append(g.violations, fmt.Sprintf(format, args...))
}

func (g *mjGrid) tracef(format string, args ...any) {
	g.trace = append(g.trace, fmt.Sprintf("t=%04d ", g.tick)+fmt.Sprintf(format, args...))
}

// leakCheck sits between the chaos layer and the table: every assignment
// must name a known job and stay inside that job's root range — the
// cross-job isolation property, checked on the wire where a worker would
// see the breach. (Each job's tracker would also catch a leak, as a
// partition violation; this check names the culprit directly.)
type leakCheck struct {
	g *mjGrid
}

func (c *leakCheck) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	rep, err := c.g.table.RequestWork(req)
	if err == nil && rep.Status == transport.WorkAssigned {
		root, ok := c.g.roots[rep.Job]
		switch {
		case !ok:
			c.g.violatef("assignment to %s names unknown job %q", req.Worker, rep.Job)
		case !root.ContainsInterval(rep.Interval):
			c.g.violatef("cross-job leak: job %s assigned %s outside its root %s",
				rep.Job, rep.Interval.String(), root.String())
		}
	}
	return rep, err
}

func (c *leakCheck) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	return c.g.table.UpdateInterval(req)
}

func (c *leakCheck) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	return c.g.table.ReportSolution(req)
}

// RunMultiJob executes a multi-job scenario to termination and audits it.
func RunMultiJob(sc MultiJobScenario) (MultiJobReport, error) {
	sc.fillDefaults()
	rep := MultiJobReport{Name: sc.Name}

	dir, err := os.MkdirTemp("", "harness-multijob-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	// The store goes through the fault seam; it injects nothing until a
	// DiskFaultEvery sweep arms it.
	faultFS := checkpoint.NewFaultFS(nil)
	store, err := checkpoint.NewStoreFS(faultFS, dir)
	if err != nil {
		return rep, err
	}

	g := &mjGrid{
		sc:        sc,
		fs:        faultFS,
		rng:       rand.New(rand.NewSource(sc.Seed)),
		factories: make(map[string]func() bb.Problem),
		roots:     make(map[string]interval.Interval),
		tracks:    make(map[string]*tracker),
		report:    &rep,
		crashed:   make(map[transport.WorkerID]bool),
	}
	g.table = jobs.NewTable(jobs.Config{
		MaxActive: sc.MaxActive,
		Store:     store,
		Clock:     func() int64 { return g.nowNano },
		LeaseTTL:  time.Duration(sc.LeaseTTLTicks) * time.Second,
		Wrap: func(id string, f *farmer.Farmer) transport.Coordinator {
			tr := newTracker(g.roots[id])
			tr.attach(f)
			g.tracks[id] = tr
			return tr
		},
	})

	// Baselines first (the sequential oracle per job), and the root map —
	// the Wrap hook fires inside Submit and needs the roots populated.
	baselines := make(map[string]bb.Solution, len(sc.Jobs))
	for _, mj := range sc.Jobs {
		factory, err := mj.Spec.Factory()
		if err != nil {
			return rep, err
		}
		g.factories[mj.ID] = factory
		g.roots[mj.ID] = core.NewNumbering(factory().Shape()).RootRange()
		baselines[mj.ID], _ = bb.Solve(factory(), bb.Infinity)
	}
	for _, mj := range sc.Jobs {
		if err := g.table.Submit(mj.ID, mj.Spec); err != nil {
			return rep, err
		}
	}

	g.chaos = transport.NewInterceptor(&leakCheck{g: g}, transport.Hooks{
		Fault: func(op transport.Op, w transport.WorkerID) transport.Fault {
			return g.decideFault(op)
		},
		Observe: func(op transport.Op, w transport.WorkerID, fault transport.Fault, err error) {
			g.observe(op, w, fault)
		},
	})
	for i := 0; i < sc.Workers; i++ {
		g.slots = append(g.slots, &mjSlot{rejoinAt: -1})
		g.join(i)
	}

	if err := g.loop(); err != nil {
		return rep, err
	}

	// Per-job conformance verdicts.
	for _, mj := range sc.Jobs {
		p, err := g.table.Progress(mj.ID)
		if err != nil {
			return rep, err
		}
		out := JobOutcome{
			ID:       mj.ID,
			State:    p.State,
			Best:     bb.Solution{Cost: p.BestCost, Path: p.BestPath},
			Baseline: baselines[mj.ID],
			Explored: p.Counters.ExploredNodes,
		}
		rep.Jobs = append(rep.Jobs, out)
		if mj.CancelAt > 0 {
			// A cancelled job proves nothing; its only obligations are the
			// tracker laws while it ran, collected below.
			if p.State != "cancelled" {
				g.violatef("job %s: state %s, want cancelled", mj.ID, p.State)
			}
			continue
		}
		if p.State != "done" {
			g.violatef("job %s: state %s, want done", mj.ID, p.State)
			continue
		}
		g.tracks[mj.ID].noteTermination()
		if out.Best.Cost != out.Baseline.Cost {
			g.violatef("job %s: incumbent %d != sequential baseline %d",
				mj.ID, out.Best.Cost, out.Baseline.Cost)
		} else if out.Best.Valid() {
			if cost, err := evalPath(g.factories[mj.ID](), out.Best.Path); err != nil {
				g.violatef("job %s: incumbent path invalid: %v", mj.ID, err)
			} else if cost != out.Best.Cost {
				g.violatef("job %s: incumbent path evaluates to %d, claimed %d",
					mj.ID, cost, out.Best.Cost)
			}
		} else if out.Baseline.Valid() {
			g.violatef("job %s: baseline found a solution but the grid has none", mj.ID)
		}
	}
	if !rep.Finished {
		g.violatef("scenario did not terminate within %d ticks", sc.MaxTicks)
	}
	rep.Table = g.table.Counters()
	rep.Trace = g.trace
	for _, mj := range sc.Jobs {
		if tr, ok := g.tracks[mj.ID]; ok {
			rep.Violations = append(rep.Violations, tr.violations...)
		}
	}
	rep.Violations = append(rep.Violations, g.violations...)
	return rep, nil
}

// loop is the virtual-time event loop (the multi-job twin of grid.loop).
func (g *mjGrid) loop() error {
	sc := &g.sc
	for tick := 0; tick < sc.MaxTicks; tick++ {
		g.tick = tick
		g.nowNano = int64(tick) * int64(time.Second)

		for _, mj := range sc.Jobs {
			if mj.CancelAt > 0 && mj.CancelAt == tick {
				if err := g.table.Cancel(mj.ID); err != nil {
					g.tracef("cancel job=%s err=%v", mj.ID, err)
				} else {
					g.tracef("cancel job=%s", mj.ID)
				}
			}
		}
		if sc.CheckpointEvery > 0 && tick > 0 && tick%sc.CheckpointEvery == 0 {
			if err := g.checkpoint(); err != nil {
				return err
			}
		}
		for _, k := range sc.Kills {
			if k.Tick == tick {
				rejoin := -1
				if k.RejoinAfter > 0 {
					rejoin = tick + k.RejoinAfter
				}
				g.kill(k.Slot, rejoin, "scheduled")
			}
		}
		for i, sl := range g.slots {
			if sl.sess == nil && sl.rejoinAt == tick {
				g.join(i)
			}
		}

		for _, si := range g.rng.Perm(len(g.slots)) {
			sl := g.slots[si]
			if sl.sess == nil || sl.finished {
				continue
			}
			budget := sc.TickBudget/2 + g.rng.Int63n(sc.TickBudget)
			n, finished, err := sl.sess.Advance(budget)
			g.tracef("adv w=%s n=%d fin=%v", sl.id, n, finished)
			if err != nil {
				if !errors.Is(err, transport.ErrLost) && !errors.Is(err, transport.ErrDeadline) {
					return fmt.Errorf("harness: worker %s: %w", sl.id, err)
				}
				// Same lost-message policy as the flat grid: only a lost
				// (or timed-out) solution report kills the worker.
				if g.crashed[sl.id] {
					delete(g.crashed, sl.id)
					g.kill(si, tick+sc.LeaseTTLTicks+1, "lost-report")
				}
				continue
			}
			if finished {
				sl.finished = true
			}
		}

		if g.table.Done() {
			g.report.Finished = true
			g.report.Ticks = tick + 1
			g.tracef("done")
			return nil
		}
	}
	g.report.Ticks = g.sc.MaxTicks
	return nil
}

// checkpoint runs one table-wide snapshot sweep, arming the disk-fault
// seam on every DiskFaultEvery'th one. The fault hits EVERY snapshot fsync
// during the sweep — the table visits jobs in map order, so a partial
// fault would persist a nondeterministic subset of jobs and two equal
// seeds would diverge. No job's generation rotates on a failed save, so
// skipping all the per-job noteCheckpoint calls keeps every tracker in
// step with its job's disk.
func (g *mjGrid) checkpoint() error {
	g.ckptAttempts++
	faulty := g.sc.DiskFaultEvery > 0 && g.ckptAttempts%g.sc.DiskFaultEvery == 0
	if faulty {
		g.fs.SetDecide(func(op checkpoint.Op, path string) checkpoint.Fault {
			if op == checkpoint.OpSync {
				return checkpoint.EIO()
			}
			return checkpoint.Fault{}
		})
		defer g.fs.SetDecide(nil)
	}
	err := g.table.Checkpoint()
	if faulty {
		if err == nil {
			g.violatef("tick %d: table checkpoint survived an injected fsync EIO", g.tick)
		} else if !errors.Is(err, checkpoint.ErrInjected) {
			return err
		}
		g.report.DiskFaults++
		g.tracef("ckpt-fault n=%d", g.report.DiskFaults)
		return nil
	}
	if err != nil {
		return err
	}
	for _, p := range g.table.List() {
		if p.State == "running" {
			g.tracks[p.ID].noteCheckpoint()
		}
	}
	g.report.Checkpoints++
	g.tracef("ckpt n=%d", g.report.Checkpoints)
	return nil
}

// join seats a fresh multi-job session on the slot.
func (g *mjGrid) join(i int) {
	sl := g.slots[i]
	sl.gen++
	sl.id = transport.WorkerID(fmt.Sprintf("s%d-g%d", i, sl.gen))
	sl.sess = jobs.NewWorkerSession(jobs.WorkerConfig{
		ID:                sl.id,
		Power:             1 + int64(i), // heterogeneous by construction
		UpdatePeriodNodes: g.sc.UpdatePeriodNodes,
	}, g.chaos, func(jobID string) (func() bb.Problem, bool) {
		f, ok := g.factories[jobID]
		return f, ok
	})
	sl.rejoinAt = -1
	sl.finished = false
	if sl.gen > 1 {
		g.report.Rejoins++
	}
	g.tracef("join slot=%d w=%s", i, sl.id)
}

// kill crashes the slot's session with the bounded-rework audit. A
// multi-job session can carry one mid-period engine plus a pending retry
// on another job, so the bound is two update periods (the flat grid's
// single-engine bound is one).
func (g *mjGrid) kill(i, rejoinAt int, why string) {
	sl := g.slots[i]
	if sl.sess == nil {
		g.tracef("kill-skipped slot=%d why=%s", i, why)
		if rejoinAt >= 0 && (sl.rejoinAt < 0 || rejoinAt < sl.rejoinAt) {
			sl.rejoinAt = rejoinAt
		}
		return
	}
	unreported := sl.sess.Stats().Explored - sl.sess.Reported().Explored
	if unreported > 2*g.sc.UpdatePeriodNodes {
		g.violatef("worker %s died with %d unreported nodes, more than twice the %d-node update period",
			sl.id, unreported, g.sc.UpdatePeriodNodes)
	}
	g.tracef("kill slot=%d w=%s why=%s unreported=%d", i, sl.id, why, unreported)
	delete(g.crashed, sl.id)
	sl.sess = nil
	sl.rejoinAt = rejoinAt
	g.report.Kills++
}

// decideFault is the seeded chaos policy, identical to the flat grid's.
func (g *mjGrid) decideFault(op transport.Op) transport.Fault {
	sc := &g.sc
	total := sc.DropRequestPct + sc.DropReplyPct + sc.DuplicatePct + sc.BlackholePct
	if total == 0 {
		return transport.FaultNone
	}
	r := g.rng.Intn(100)
	switch {
	case r < sc.DropRequestPct:
		return transport.FaultDropRequest
	case r < sc.DropRequestPct+sc.DropReplyPct:
		return transport.FaultDropReply
	case r < sc.DropRequestPct+sc.DropReplyPct+sc.DuplicatePct:
		return transport.FaultDuplicate
	case r < total:
		return transport.FaultBlackhole
	default:
		return transport.FaultNone
	}
}

func (g *mjGrid) observe(op transport.Op, w transport.WorkerID, fault transport.Fault) {
	if fault == transport.FaultNone {
		return
	}
	g.tracef("msg %s w=%s fault=%s", op, w, fault)
	switch fault {
	case transport.FaultDropRequest, transport.FaultDropReply:
		g.report.Drops++
		if op == transport.OpReportSolution {
			g.crashed[w] = true
		}
	case transport.FaultBlackhole:
		g.report.Timeouts++
		if op == transport.OpReportSolution {
			g.crashed[w] = true
		}
	case transport.FaultDuplicate:
		g.report.Duplicates++
	}
}

// MultiJobChurn is the canonical multi-tenant chaos story: three jobs of
// three different domains (flowshop ~8k sequential nodes, TSP ~6k, QAP
// ~3k) share one five-worker fleet while workers die and rejoin, replies
// drop, and the operator cancels the QAP job mid-run. The two surviving
// jobs must prove their sequential optima with zero cross-job leakage;
// the flowshop job carries double fair-share weight.
func MultiJobChurn() MultiJobScenario {
	return MultiJobScenario{
		Name: "multi-job-churn",
		Seed: 17,
		Jobs: []MultiJob{
			{ID: "fs10x5", Spec: jobs.Spec{Domain: "flowshop", Jobs: 10, Machines: 5, Seed: 2, Weight: 2}},
			{ID: "tsp9", Spec: jobs.Spec{Domain: "tsp", N: 9, Seed: 1}},
			{ID: "qap7", Spec: jobs.Spec{Domain: "qap", N: 7, Seed: 2}, CancelAt: 6},
		},
		Workers:           5,
		UpdatePeriodNodes: 256,
		TickBudget:        256,
		LeaseTTLTicks:     3,
		CheckpointEvery:   3,
		DiskFaultEvery:    2,
		DropReplyPct:      6,
		Kills: []KillEvent{
			{Tick: 4, Slot: 1, RejoinAfter: 3},
			{Tick: 8, Slot: 3, RejoinAfter: 4},
		},
	}
}
