package harness

import (
	"fmt"
	"math/big"
	"os"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/p2p"
)

// RingScenario puts the decentralized p2p runtime under chaos: the ring is
// driven by the deterministic lockstep driver and a partition window blocks
// all communication (steals and the termination token) across a cut for a
// range of sweeps. The conformance layer tracks every region's owner
// through the steal events and holds the ring to an *exact* partition
// invariant — work stealing moves intervals, it never loses or duplicates
// a single leaf number, and the Dijkstra–Feijen–van Gasteren token must
// never declare termination while the partition is up.
type RingScenario struct {
	// Name identifies the scenario.
	Name string
	// Seed drives victim selection; equal seeds reproduce the run.
	Seed int64
	// Factory returns a fresh Problem per call.
	Factory func() bb.Problem
	// Peers is the ring size. Default 4.
	Peers int
	// StepBudget is the per-peer slice per sweep. Default 512.
	StepBudget int64
	// PartitionFrom / PartitionUntil delimit the sweep window during
	// which the ring is cut; PartitionCut splits peers [0,cut) from
	// [cut,n).
	PartitionFrom, PartitionUntil, PartitionCut int
	// Kills schedules peer crashes; any kill (or CheckpointEvery > 0)
	// arms the §6 ring checkpointing: every peer gets its own two-file
	// snapshot store and a killed peer restarts from its own snapshot.
	Kills []RingKill
	// CheckpointEvery snapshots every live peer every so many sweeps
	// (0 with kills: only the attach-time and steal-time saves).
	CheckpointEvery int
	// MaxSweeps aborts a stuck scenario. Default 20000.
	MaxSweeps int
}

// RingKill schedules one peer crash: the peer on Peer dies before sweep
// Sweep runs — its in-memory frontier is gone — and restarts from its own
// checkpoint RestoreAfter sweeps later. RestoreAfter must be > 0: the
// DFvG token cannot complete a round through a hole in the ring, so a
// never-restored peer wedges the scenario by design.
type RingKill struct {
	Sweep, Peer, RestoreAfter int
}

func (s *RingScenario) fillDefaults() {
	if s.Peers <= 0 {
		s.Peers = 4
	}
	if s.StepBudget <= 0 {
		s.StepBudget = 512
	}
	if s.MaxSweeps <= 0 {
		s.MaxSweeps = 20000
	}
}

// view is the conformance layer's model of one peer's owned interval.
type view struct {
	a, b   *big.Int
	active bool
}

// RunRing executes one p2p scenario and returns its report.
func RunRing(sc RingScenario) (Report, error) {
	sc.fillDefaults()
	rep := Report{Name: sc.Name, OverlapUnits: new(big.Int), ReworkBudget: new(big.Int)}
	rep.Baseline, _ = bb.Solve(sc.Factory(), bb.Infinity)

	nb := core.NewNumbering(sc.Factory().Shape())
	root := nb.RootRange()
	l := p2p.NewLockstep(sc.Factory, p2p.Options{Peers: sc.Peers, StepBudget: sc.StepBudget, Seed: sc.Seed})

	sweep := 0
	l.Blocked = func(a, b int) bool {
		if sweep < sc.PartitionFrom || sweep >= sc.PartitionUntil {
			return false
		}
		return (a < sc.PartitionCut) != (b < sc.PartitionCut)
	}

	var violations []string
	violatef := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Peer crashes arm the §6 ring checkpointing: each peer gets its own
	// two-file snapshot namespace and restarts from it alone.
	reworkAllowed := len(sc.Kills) > 0
	if reworkAllowed || sc.CheckpointEvery > 0 {
		dir, err := os.MkdirTemp("", "harness-ring-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
		store, err := checkpoint.NewStore(dir)
		if err != nil {
			return rep, err
		}
		if err := l.AttachStore(store); err != nil {
			return rep, err
		}
	}

	covered := interval.NewSet()
	overlap := new(big.Int)
	cover := func(a, b *big.Int, who int) {
		if a.Cmp(b) >= 0 {
			return
		}
		if ov := covered.Add(interval.New(a, b)); ov.Sign() != 0 {
			overlap.Add(overlap, ov)
			// With kills in the schedule, re-covering is legitimate
			// rework (bounded below); without them it is a violation
			// outright — steals alone never duplicate work.
			if !reworkAllowed {
				violatef("peer %d re-covered %s units in [%s,%s)", who, ov, a, b)
			}
		}
	}

	views := make([]view, sc.Peers)
	views[0] = view{a: root.A(), b: root.B(), active: true}
	dead := make([]bool, sc.Peers)
	// intersect measures |[a1,b1) ∩ [a2,b2)| — the rework a restore may
	// legitimately duplicate against another live peer's region.
	intersect := func(a1, b1, a2, b2 *big.Int) *big.Int {
		lo := a1
		if a2.Cmp(lo) > 0 {
			lo = a2
		}
		hi := b1
		if b2.Cmp(hi) < 0 {
			hi = b2
		}
		if lo.Cmp(hi) >= 0 {
			return new(big.Int)
		}
		return new(big.Int).Sub(hi, lo)
	}

	processed := 0
	trace := []string{}
	reconcile := func() {
		events := l.Events()
		for ; processed < len(events); processed++ {
			ev := events[processed]
			trace = append(trace, fmt.Sprintf("s=%04d %s %d<-%d %s", ev.Sweep, ev.Kind, ev.From, ev.To, ev.Interval))
			switch ev.Kind {
			case "steal":
				thief, victim := ev.From, ev.To
				iv := ev.Interval
				v := &views[victim]
				if !v.active {
					violatef("sweep %d: steal from inactive peer %d", ev.Sweep, victim)
					continue
				}
				if v.b.Cmp(iv.B()) != 0 {
					violatef("sweep %d: peer %d donated [%s,%s) but owns up to %s", ev.Sweep, victim, iv.A(), iv.B(), v.b)
				}
				v.b = iv.A() // the victim restricted itself to the left part
				t := &views[thief]
				if t.active {
					// The thief was idle: its old region is done.
					cover(t.a, t.b, thief)
				}
				*t = view{a: iv.A(), b: iv.B(), active: true}
			case "kill":
				dead[ev.From] = true
			case "restore":
				i := ev.From
				dead[i] = false
				v := &views[i]
				riv := ev.Interval
				if riv.IsEmpty() {
					if v.active {
						violatef("sweep %d: restore of peer %d re-opened nothing but it owned [%s,%s)",
							ev.Sweep, i, v.a, v.b)
					}
					views[i] = view{}
					continue
				}
				// The wrong-search-space guard: the re-opened frontier
				// must cover everything the dead peer exclusively owned.
				if v.active && (riv.A().Cmp(v.a) > 0 || riv.B().Cmp(v.b) < 0) {
					violatef("sweep %d: restore of peer %d re-opened [%s,%s), losing part of its owned [%s,%s)",
						ev.Sweep, i, riv.A(), riv.B(), v.a, v.b)
				}
				// Rework budget: the snapshot's staleness. Ground already
				// covered is removed from the covered set (it will be
				// cleanly re-covered, the tracker idiom), and ground
				// concurrently owned by another live peer may end up
				// explored by both — both bounded by this restore event.
				budget := covered.Sub(riv)
				for j := range views {
					if j == i || !views[j].active || dead[j] {
						continue
					}
					budget.Add(budget, intersect(riv.A(), riv.B(), views[j].a, views[j].b))
				}
				rep.ReworkBudget.Add(rep.ReworkBudget, budget)
				views[i] = view{a: riv.A(), b: riv.B(), active: true}
				rep.Restarts++
			case "terminate":
				if ev.Sweep >= sc.PartitionFrom && ev.Sweep < sc.PartitionUntil {
					violatef("sweep %d: termination declared while the ring was partitioned", ev.Sweep)
				}
				for i := range dead {
					if dead[i] {
						violatef("sweep %d: termination declared while peer %d was dead", ev.Sweep, i)
					}
				}
			}
		}
		// Progress audit: each active peer's fold must advance
		// monotonically inside its owned region. Dead peers are skipped —
		// their explorer state is the crash leftover, not ownership.
		for i := range views {
			if dead[i] {
				continue
			}
			v := &views[i]
			rem := l.Remaining(i)
			if !v.active {
				if !rem.IsEmpty() {
					violatef("sweep %d: peer %d reports work %s but owns nothing", sweep, i, rem)
				}
				continue
			}
			if rem.IsEmpty() {
				cover(v.a, v.b, i)
				v.active = false
				continue
			}
			ra, rb := rem.A(), rem.B()
			if rb.Cmp(v.b) != 0 {
				violatef("sweep %d: peer %d remaining end %s != owned end %s", sweep, i, rb, v.b)
			}
			if ra.Cmp(v.a) < 0 {
				violatef("sweep %d: peer %d fold moved backwards %s < %s", sweep, i, ra, v.a)
				continue
			}
			cover(v.a, ra, i)
			v.a = ra
		}
	}

	restoreAt := make(map[int][]int)
	terminated := false
	for sweep = 1; sweep <= sc.MaxSweeps; sweep++ {
		for _, p := range restoreAt[sweep] {
			if _, err := l.Restore(p); err != nil {
				violatef("sweep %d: restore of peer %d failed: %v", sweep, p, err)
			}
		}
		for _, k := range sc.Kills {
			if k.Sweep == sweep {
				l.Kill(k.Peer)
				restoreAt[sweep+k.RestoreAfter] = append(restoreAt[sweep+k.RestoreAfter], k.Peer)
			}
		}
		if sc.CheckpointEvery > 0 && sweep%sc.CheckpointEvery == 0 {
			if err := l.CheckpointAll(); err != nil {
				violatef("sweep %d: checkpoint failed: %v", sweep, err)
			}
			rep.Checkpoints++
		}
		done := l.Sweep()
		reconcile()
		if done {
			terminated = true
			break
		}
	}
	rep.Ticks = sweep
	rep.Finished = terminated
	if !terminated {
		violatef("ring did not terminate within %d sweeps", sc.MaxSweeps)
	}

	// Exact partition: stealing moves work, it never loses or duplicates
	// any — the covered set must be precisely the root range with zero
	// overlap (the farmer scenarios tolerate fault-justified rework; the
	// p2p ring has no faults to justify any).
	for i := range views {
		if views[i].active {
			violatef("peer %d still owns [%s,%s) after termination", i, views[i].a, views[i].b)
		}
	}
	if gaps := covered.Gaps(root); len(gaps) > 0 {
		violatef("termination with unexplored gaps %v", gaps)
	}
	if covered.Total().Cmp(root.Len()) != 0 {
		violatef("covered measure %s != root measure %s", covered.Total(), root.Len())
	}
	if !reworkAllowed {
		if overlap.Sign() != 0 {
			violatef("p2p re-covered %s units; steals must never duplicate work", overlap)
		}
	} else if overlap.Cmp(rep.ReworkBudget) > 0 {
		violatef("p2p re-covered %s units but restore events justify only %s", overlap, rep.ReworkBudget)
	}
	if err := l.StoreErr(); err != nil {
		violatef("ring checkpointing failed mid-run: %v", err)
	}

	res := l.Result()
	rep.Best = res.Best
	if rep.Best.Cost != rep.Baseline.Cost {
		violatef("incumbent %d != sequential baseline %d", rep.Best.Cost, rep.Baseline.Cost)
	} else if rep.Best.Valid() {
		if cost, err := evalPath(sc.Factory(), rep.Best.Path); err != nil {
			violatef("incumbent path invalid: %v", err)
		} else if cost != rep.Best.Cost {
			violatef("incumbent path evaluates to %d, claimed %d", cost, rep.Best.Cost)
		}
	}
	trace = append(trace, fmt.Sprintf("end sweeps=%d best=%d steals=%d rounds=%d", sweep, res.Best.Cost, res.Steals, res.TokenRounds))
	rep.Trace = trace
	rep.Violations = violations
	rep.OverlapUnits.Set(overlap)
	return rep, nil
}
