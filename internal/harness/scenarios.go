package harness

import (
	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tsp"
)

// The scenario matrix: four named fault schedules, one per problem domain,
// covering the grid situations the paper's mechanisms exist for. Each is
// fully deterministic — same seed, same event trace — and every run is held
// to the three conformance invariants (interval partition, incumbent
// optimality, bounded rework). Future PRs extend the matrix by appending
// constructors here; see DESIGN.md §5. Instance sizes are chosen so the
// fault schedules land mid-resolution (the sequential node counts are in
// the constructors' comments — re-probe before retuning).

// QuietGrid is the control: a small pool, no faults, on the knapsack's
// binary tree (~356 sequential nodes; the budgets are scaled down to
// stretch the run over several protocol rounds). Every invariant must hold
// with zero rework — if this scenario reports overlap, the runtime
// duplicates work even in fair weather.
func QuietGrid() Scenario {
	ins := knapsack.Random(20, 5)
	return Scenario{
		Name:              "quiet-grid",
		Seed:              1,
		Factory:           func() bb.Problem { return knapsack.NewProblem(ins) },
		Workers:           3,
		UpdatePeriodNodes: 48,
		TickBudget:        48,
		CheckpointEvery:   2,
	}
}

// ChurnyGrid is the paper's worker-failure story (§4.1) pushed hard on a
// flowshop instance (~60k sequential nodes): messages drop in both
// directions and retransmit, workers crash without goodbye and rejoin,
// leases expire and orphaned intervals are re-issued.
func ChurnyGrid() Scenario {
	ins := flowshop.Taillard(12, 5, 7)
	return Scenario{
		Name: "churny-grid",
		Seed: 2,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           4,
		UpdatePeriodNodes: 256,
		TickBudget:        480,
		LeaseTTLTicks:     2,
		CheckpointEvery:   3,
		DropRequestPct:    8,
		DropReplyPct:      8,
		DuplicatePct:      6,
		Kills: []KillEvent{
			{Tick: 4, Slot: 1, RejoinAfter: 3},
			{Tick: 9, Slot: 2, RejoinAfter: 4},
			{Tick: 14, Slot: 0, RejoinAfter: 3},
		},
	}
}

// FarmerFailover is the coordinator-failure story (§4.1) on a TSP instance
// (~42k sequential nodes): the farmer dies twice mid-resolution and
// restores from its two checkpoint files while the workers keep hammering
// it. The restart path exercises the epoch-id and stale-tail mechanics; the
// bounded-rework invariant pins the cost of each crash to the work covered
// since the last snapshot.
func FarmerFailover() Scenario {
	ins := tsp.RandomEuclidean(10, 100, 4)
	return Scenario{
		Name:              "farmer-failover",
		Seed:              3,
		Factory:           func() bb.Problem { return tsp.NewProblem(ins) },
		Workers:           3,
		UpdatePeriodNodes: 256,
		TickBudget:        450,
		LeaseTTLTicks:     2,
		CheckpointEvery:   3,
		FarmerRestarts:    []int{7, 15},
		DiskFaultEvery:    2,
		CorruptTicks:      []int{13},
		DropReplyPct:      4,
	}
}

// MulticoreChurn is the intra-worker multicore story (DESIGN.md §7) under
// the §4.1 failure model, on a flowshop instance (~60k sequential nodes):
// every worker runs 4 shard explorers over a tiling of its interval —
// internally rebalanced by halving steals — while replies drop and workers
// crash without goodbye and rejoin. The farmer sees only single-worker
// folds, so all three conformance invariants apply unchanged; the shard
// merge is stepped deterministically inside the session, so two runs must
// still produce byte-identical traces.
func MulticoreChurn() Scenario {
	ins := flowshop.Taillard(12, 5, 19)
	return Scenario{
		Name: "multicore-churn",
		Seed: 5,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           3,
		Cores:             4,
		UpdatePeriodNodes: 256,
		TickBudget:        768,
		LeaseTTLTicks:     2,
		CheckpointEvery:   3,
		DropReplyPct:      10,
		Kills: []KillEvent{
			{Tick: 4, Slot: 1, RejoinAfter: 3},
			{Tick: 9, Slot: 2, RejoinAfter: 4},
			{Tick: 15, Slot: 0, RejoinAfter: 3},
		},
	}
}

// PackedGrid is the fleet-size story of the indexed farmer (DESIGN.md §8)
// on a flowshop instance (~60k sequential nodes): 16 workers — the widest
// scenario of the matrix — whose powers are all distinct by the harness's
// heterogeneity rule, so the selection index carries 16 holder-power
// classes whose treaps churn on every allocation, lease expiry and
// re-admission, while replies drop and workers crash without goodbye. The
// three conformance invariants hold the indexed selection and the heap
// expiry to the same machine-checked properties as the seed scan, and the
// double run must stay byte-identical (the index is deterministic by
// construction: decisions depend only on INTERVALS, never on treap shape).
func PackedGrid() Scenario {
	ins := flowshop.Taillard(12, 5, 23)
	return Scenario{
		Name: "packed-grid",
		Seed: 6,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           16,
		UpdatePeriodNodes: 192,
		TickBudget:        96,
		LeaseTTLTicks:     2,
		CheckpointEvery:   4,
		DropReplyPct:      6,
		DuplicatePct:      4,
		Kills: []KillEvent{
			{Tick: 3, Slot: 5, RejoinAfter: 3},
			{Tick: 6, Slot: 11, RejoinAfter: 4},
			{Tick: 9, Slot: 2, RejoinAfter: 3},
			{Tick: 12, Slot: 14, RejoinAfter: 5},
		},
	}
}

// TreeChurn is the hierarchical-farmer story (DESIGN.md §9) under the
// §4.1 failure model, on a flowshop instance (~60k sequential nodes): six
// workers spread over three sub-farmers, replies dropping on both the
// worker and the coordinator-to-coordinator legs, workers crashing without
// goodbye and rejoining, and two sub-farmers crashing mid-resolution and
// restoring from their own two-file snapshots plus binding file — the root
// sees only a lease blip. Conformance is audited at both tiers (the root's
// §5 invariants and the sub-tier growth laws of tree.go), and the double
// run must stay byte-identical.
func TreeChurn() Scenario {
	ins := flowshop.Taillard(12, 5, 31)
	return Scenario{
		Name: "tree-churn",
		Seed: 8,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           6,
		Subtrees:          3,
		SubUpdateEvery:    4,
		UpdatePeriodNodes: 256,
		TickBudget:        256,
		LeaseTTLTicks:     3,
		CheckpointEvery:   3,
		DropReplyPct:      6,
		Kills: []KillEvent{
			{Tick: 4, Slot: 1, RejoinAfter: 3},
			{Tick: 9, Slot: 4, RejoinAfter: 4},
		},
		SubRestarts: []SubRestart{
			{Tick: 5, Sub: 1},
			{Tick: 10, Sub: 0},
		},
		// Root restarts compose with sub restarts: tick 7 lands between
		// the two sub restarts, one checkpoint after the first.
		FarmerRestarts: []int{7},
	}
}

// EndgameChurn is the crumb-endgame story (DESIGN.md §12) under the §4.1
// failure model, on a flowshop instance (~60k sequential nodes): a
// two-tier tree with the full endgame machinery armed — steal hints on
// fold replies, work-conserving low-water pre-fetch, endgame crumb
// duplication at the root, gap-carving and content-honest folds from the
// subs, and the fan-out-scaled inner threshold — while replies drop on
// both legs, workers crash without goodbye, and a sub-farmer dies and
// restores mid-run with low-water bindings in flight. The conformance
// stakes are higher than TreeChurn's: hints and pre-fetch move intervals
// between subtrees aggressively, and gap folds shrink the root table by
// interior carves, so the §5 invariants (partition at the root, growth
// only at refills below) audit exactly the paths the 10k-fleet scenario
// relies on for its resolution-time claim — and the double run must stay
// byte-identical with all of it armed.
func EndgameChurn() Scenario {
	ins := flowshop.Taillard(12, 5, 41)
	return Scenario{
		Name: "endgame-churn",
		Seed: 13,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           6,
		Subtrees:          3,
		SubUpdateEvery:    4,
		UpdatePeriodNodes: 256,
		TickBudget:        256,
		LeaseTTLTicks:     3,
		CheckpointEvery:   3,
		DropReplyPct:      6,
		Endgame:           true,
		Kills: []KillEvent{
			{Tick: 5, Slot: 2, RejoinAfter: 3},
			{Tick: 11, Slot: 0, RejoinAfter: 4},
		},
		SubRestarts: []SubRestart{
			{Tick: 8, Sub: 2},
		},
	}
}

// StalledCoordinator is the hostile-WAN liveness story (DESIGN.md §10) on
// a flowshop instance (~60k sequential nodes): a two-tier tree where a
// slice of the calls on BOTH legs is black-holed — the coordinator never
// sees them and the caller, who against the unhardened transport would
// block forever, gets transport.ErrDeadline from its call deadline. The
// run must prove the deadline discipline suffices for liveness: workers
// absorb the timeout and re-issue on their own cadence, sub-farmers count
// it (UpstreamTimeouts) and retry on the next fold, a timed-out solution
// report kills the worker process exactly like a lost one, and the
// resolution still terminates with the proven optimum, byte-identical over
// double runs.
func StalledCoordinator() Scenario {
	ins := flowshop.Taillard(12, 5, 37)
	return Scenario{
		Name: "stalled-coordinator",
		Seed: 11,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           6,
		Subtrees:          3,
		SubUpdateEvery:    4,
		UpdatePeriodNodes: 256,
		TickBudget:        256,
		LeaseTTLTicks:     3,
		CheckpointEvery:   3,
		BlackholePct:      12,
	}
}

// PartitionedRing is the p2p future-work story (§6) under a network
// partition on a QAP instance (~13k sequential nodes): the ring is cut in
// half from the very first sweep — while peers 2 and 3 are still starved,
// their only work sources on the far side — so no steals and no
// termination token cross the cut for the window; the ring must neither
// lose work nor declare termination early, and the starved half must catch
// up once the partition heals.
func PartitionedRing() RingScenario {
	ins := qap.Random(8, 15, 9)
	return RingScenario{
		Name:           "partitioned-ring",
		Seed:           4,
		Factory:        func() bb.Problem { return qap.NewProblem(ins) },
		Peers:          4,
		StepBudget:     256,
		PartitionFrom:  1,
		PartitionUntil: 6,
		PartitionCut:   2,
	}
}

// RingRestart is the §6 ring-checkpointing story: peer crashes composed
// with a partition window on a QAP instance (~13k sequential nodes). Every
// peer owns a two-file snapshot (saved at attach, on every steal, and on a
// periodic cadence); two peers die mid-resolution — one of them while the
// ring is still partitioned — and restart from their own snapshots with
// the DFvG token tainted. The conformance layer holds every restore to the
// wrong-search-space guard (the re-opened frontier must cover everything
// the dead peer owned), bounds all re-covered ground by the restore
// events' staleness, forbids termination while any peer is down, and the
// double run must stay byte-identical.
func RingRestart() RingScenario {
	ins := qap.Random(8, 15, 21)
	return RingScenario{
		Name:            "ring-restart",
		Seed:            7,
		Factory:         func() bb.Problem { return qap.NewProblem(ins) },
		Peers:           4,
		StepBudget:      256,
		PartitionFrom:   2,
		PartitionUntil:  5,
		PartitionCut:    2,
		CheckpointEvery: 4,
		Kills: []RingKill{
			{Sweep: 4, Peer: 1, RestoreAfter: 3},
			{Sweep: 10, Peer: 3, RestoreAfter: 4},
		},
	}
}

// GridScenarios returns the farmer-based scenario matrix.
func GridScenarios() []Scenario {
	return []Scenario{QuietGrid(), ChurnyGrid(), FarmerFailover(), MulticoreChurn(), PackedGrid(), TreeChurn(), EndgameChurn(), StalledCoordinator()}
}

// RingScenarios returns the p2p scenario matrix.
func RingScenarios() []RingScenario {
	return []RingScenario{PartitionedRing(), RingRestart()}
}
