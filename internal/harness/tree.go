// The hierarchical-farmer chaos runner: the tree analog of harness.go's
// flat grid. A scenario with Subtrees ≥ 2 composes the real root farmer,
// real sub-farmers (each with its own checkpoint store) and real worker
// sessions into a 2-level tree, injects seeded faults on both the
// worker↔sub-farmer and sub-farmer↔root legs, crashes and restores
// sub-farmers from their snapshots, and audits the paper's interval
// algebra at both tiers:
//
//   - root tier: the unchanged conformance tracker — allocation conserves
//     the root union, folds only shrink it and the removals are covered
//     work, termination covers the root range exactly (§5 invariants);
//   - sub tier (per sub-farmer): INTERVALS entries stay pairwise
//     disjoint; fleet messages never grow the local table except at a
//     refill, and refill growth must be ground the root simultaneously
//     tracks (work enters a subtree only from the tier above, never from
//     thin air); a restore must reproduce the last local snapshot.
//
// Mid-run a lagging subtree may legitimately cover ground the root
// already saw consumed elsewhere — the duplicated-interval semantics
// under lazy propagation — which is why sub-tier coverage is audited
// through growth/shrink deltas rather than naive containment.
package harness

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/transport"
	"repro/internal/worker"
)

// SubRestart schedules a sub-farmer crash-and-restore at Tick.
type SubRestart struct {
	Tick, Sub int
}

// subTracker is the sub-tier conformance layer: a Coordinator middleware
// between a sub-farmer's fleet (behind the chaos interceptor) and the
// sub-farmer itself.
type subTracker struct {
	g    *treeGrid
	name string
	sub  *farmer.SubFarmer
	// lastCkpt is the local INTERVALS content at the last sub snapshot;
	// a restore must reproduce it exactly (§4.1 at this tier).
	lastCkpt *interval.Set
}

func newSubTracker(g *treeGrid, name string, sub *farmer.SubFarmer) *subTracker {
	return &subTracker{g: g, name: name, sub: sub, lastCkpt: interval.NewSet()}
}

// union reads the sub-farmer's table, checking pairwise disjointness.
func (t *subTracker) union() *interval.Set {
	s := interval.NewSet()
	for _, rec := range t.sub.IntervalsSnapshot() {
		if ov := s.Add(rec.Interval); ov.Sign() != 0 {
			t.g.violatef("%s: INTERVALS entries overlap at id %d by %s units", t.name, rec.ID, ov)
		}
	}
	return s
}

// audit wraps one fleet-facing delivery with the sub-tier growth law: the
// local table may only grow during a refill, and what it gains must be
// ground the root tracks at that same moment.
func (t *subTracker) audit(op string, call func() error) error {
	before := t.union()
	refillsBefore := t.sub.Counters().Refills
	err := call()
	after := t.union()
	if grown := interval.SetDiff(after, before); !grown.IsEmpty() {
		if t.sub.Counters().Refills == refillsBefore {
			t.g.violatef("%s: %s grew the local table by %s without a refill", t.name, op, grown)
		} else if stray := interval.SetDiff(grown, t.g.rootTrack.union()); !stray.IsEmpty() {
			t.g.violatef("%s: refill gained %s that the root does not track", t.name, stray)
		}
	}
	return err
}

func (t *subTracker) RequestWork(req transport.WorkRequest) (reply transport.WorkReply, err error) {
	err = t.audit("RequestWork", func() (e error) {
		reply, e = t.sub.RequestWork(req)
		return e
	})
	return reply, err
}

func (t *subTracker) UpdateInterval(req transport.UpdateRequest) (reply transport.UpdateReply, err error) {
	err = t.audit("UpdateInterval", func() (e error) {
		reply, e = t.sub.UpdateInterval(req)
		return e
	})
	return reply, err
}

func (t *subTracker) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	before := t.union()
	ack, err := t.sub.ReportSolution(req)
	if after := t.union(); !after.Equal(before) {
		t.g.violatef("%s: ReportSolution changed the local table", t.name)
	}
	return ack, err
}

// noteCheckpoint records the table content saved by the sub snapshot.
func (t *subTracker) noteCheckpoint() { t.lastCkpt = t.union() }

// noteRestart points the tracker at the restored incarnation and audits
// the §4.1 restore at this tier: the local table must be exactly the last
// snapshot (the binding may lag — that is the parent's lease story).
func (t *subTracker) noteRestart(sub *farmer.SubFarmer) {
	t.sub = sub
	if restored := t.union(); !restored.Equal(t.lastCkpt) {
		t.g.violatef("%s: restore disagrees with last checkpoint: %s != %s", t.name, restored, t.lastCkpt)
	}
}

var _ transport.Coordinator = (*subTracker)(nil)

// treeGrid is the running state of one tree scenario.
type treeGrid struct {
	sc      Scenario
	rng     *rand.Rand
	tick    int
	nowNano int64

	nb        *core.Numbering
	root      *farmer.Farmer
	rootStore *checkpoint.Store
	rootOpts  []farmer.Option
	rootTrack *tracker
	subs      []*farmer.SubFarmer
	subTracks []*subTracker
	subChaos  []*transport.Interceptor
	upChaos   *transport.Interceptor
	subStores []*checkpoint.Store

	// Endgame-mode thresholds (nil when Scenario.Endgame is off),
	// derived once so restarted sub-farmers get the same configuration.
	endgameLowWater *big.Int
	endgameInnerThr *big.Int

	slots   []*slot
	trace   []string
	report  *Report
	crashed map[transport.WorkerID]bool

	violations []string
}

func (g *treeGrid) violatef(format string, args ...any) {
	g.violations = append(g.violations, fmt.Sprintf(format, args...))
}

func (g *treeGrid) tracef(format string, args ...any) {
	g.trace = append(g.trace, fmt.Sprintf("t=%04d ", g.tick)+fmt.Sprintf(format, args...))
}

func (sc *Scenario) fillTreeDefaults() {
	if sc.SubUpdateEvery <= 0 {
		sc.SubUpdateEvery = 4
	}
}

// runTree executes a tree-mode scenario (dispatched from Run).
func runTree(sc Scenario) (Report, error) {
	sc.fillTreeDefaults()
	rep := Report{Name: sc.Name, OverlapUnits: new(big.Int), ReworkBudget: new(big.Int)}

	dir := sc.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "harness-tree-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	baseProb := sc.Factory()
	rep.Baseline, _ = bb.Solve(baseProb, sc.InitialUpper)

	nb := core.NewNumbering(baseProb.Shape())
	root := nb.RootRange()
	g := &treeGrid{
		sc:      sc,
		rng:     rand.New(rand.NewSource(sc.Seed)),
		nb:      nb,
		report:  &rep,
		crashed: make(map[transport.WorkerID]bool),
	}

	// Root tier: farmer + classic tracker + chaos on the sub→root legs.
	rootStore, err := checkpoint.NewStore(filepath.Join(dir, "root"))
	if err != nil {
		return rep, err
	}
	rootOpts := []farmer.Option{
		farmer.WithClock(func() int64 { return g.nowNano }),
		farmer.WithLeaseTTL(time.Duration(sc.LeaseTTLTicks) * time.Second),
		farmer.WithCheckpointStore(rootStore),
	}
	if sc.InitialUpper < bb.Infinity {
		rootOpts = append(rootOpts, farmer.WithInitialBest(sc.InitialUpper, nil))
	}
	if sc.Endgame {
		// Same derivation as gridsim.New: threshold 1e-6 of the root
		// range, endgame at 64×, low water at 1024×, inner threshold
		// divided by 8× the fan-out (see DESIGN.md §12).
		thr := new(big.Int).Div(root.Len(), big.NewInt(1_000_000))
		if thr.Sign() <= 0 {
			thr = big.NewInt(2)
		}
		g.endgameLowWater = new(big.Int).Mul(thr, big.NewInt(1024))
		g.endgameInnerThr = new(big.Int).Div(thr, big.NewInt(int64(sc.Subtrees)*8))
		if g.endgameInnerThr.Sign() <= 0 {
			g.endgameInnerThr = big.NewInt(1)
		}
		rootOpts = append(rootOpts,
			farmer.WithThreshold(thr),
			farmer.WithStealHints(),
			farmer.WithEndgameThreshold(new(big.Int).Mul(thr, big.NewInt(64))))
	}
	g.rootStore, g.rootOpts = rootStore, rootOpts
	g.root = farmer.New(root, rootOpts...)
	g.rootTrack = newTracker(root)
	g.rootTrack.attach(g.root)
	g.upChaos = transport.NewInterceptor(g.rootTrack, transport.Hooks{
		Fault: func(op transport.Op, w transport.WorkerID) transport.Fault {
			return g.decideFault(op)
		},
		Observe: func(op transport.Op, w transport.WorkerID, fault transport.Fault, err error) {
			g.observe("up", op, w, fault)
		},
	})

	// Sub tier: sub-farmers + per-sub trackers + chaos on the worker legs.
	for i := 0; i < sc.Subtrees; i++ {
		store, err := checkpoint.NewStore(filepath.Join(dir, fmt.Sprintf("sub-%d", i)))
		if err != nil {
			return rep, err
		}
		g.subStores = append(g.subStores, store)
		sub := farmer.NewSubFarmer(g.subCfg(i), g.upChaos)
		g.subs = append(g.subs, sub)
		g.subTracks = append(g.subTracks, newSubTracker(g, fmt.Sprintf("sub-%d", i), sub))
		g.subChaos = append(g.subChaos, transport.NewInterceptor(g.subTracks[i], transport.Hooks{
			Fault: func(op transport.Op, w transport.WorkerID) transport.Fault {
				return g.decideFault(op)
			},
			Observe: func(op transport.Op, w transport.WorkerID, fault transport.Fault, err error) {
				g.observe("w", op, w, fault)
			},
		}))
	}

	for i := 0; i < sc.Workers; i++ {
		g.slots = append(g.slots, &slot{rejoinAt: -1})
		g.join(i)
	}

	if err := g.loop(); err != nil {
		return rep, err
	}

	// Termination folds: pulse every subtree past its period so each one
	// reconciles and learns the verdict. A few rounds, because the chaos
	// layer may drop a fold's reply — the retry-on-next-cadence rule is
	// exactly the protocol's answer to that.
	for round := 0; round < 4; round++ {
		g.nowNano += int64(time.Minute)
		for _, sub := range g.subs {
			sub.Pulse()
		}
	}
	for i, sub := range g.subs {
		if card, totalLen := sub.Inner().Size(); card != 0 {
			g.violatef("sub-%d: %d intervals (%s units) left after the termination folds", i, card, totalLen)
		}
	}
	g.rootTrack.noteTermination()
	if !rep.Finished {
		g.violatef("scenario did not terminate within %d ticks", sc.MaxTicks)
	}
	for _, sub := range g.subs {
		rep.Refills += sub.Counters().Refills
		rep.LowWaterRefills += sub.Counters().LowWaterRefills
		rep.UpstreamTimeouts += sub.Counters().UpstreamTimeouts
	}
	rep.Best = g.root.Best()
	g.checkOptimality()
	rep.Counters = g.root.Counters()
	rep.Trace = g.trace
	rep.Violations = append(g.rootTrack.violations, g.violations...)
	rep.OverlapUnits.Set(g.rootTrack.overlap)
	rep.ReworkBudget.Set(g.rootTrack.reworkBudget)
	return rep, nil
}

// subCfg builds the (restart-stable) configuration of sub-farmer i.
func (g *treeGrid) subCfg(i int) farmer.SubConfig {
	inner := []farmer.Option{
		farmer.WithLeaseTTL(time.Duration(g.sc.LeaseTTLTicks) * time.Second),
	}
	if g.endgameInnerThr != nil {
		inner = append(inner, farmer.WithThreshold(g.endgameInnerThr))
	}
	return farmer.SubConfig{
		ID:           transport.WorkerID(fmt.Sprintf("sub-%d", i)),
		UpdateEvery:  g.sc.SubUpdateEvery,
		UpdatePeriod: time.Second, // one virtual tick
		FleetTTL:     time.Duration(g.sc.LeaseTTLTicks) * time.Second,
		LowWater:     g.endgameLowWater,
		Clock:        func() int64 { return g.nowNano },
		Store:        g.subStores[i],
		InnerOptions: inner,
	}
}

// loop is the virtual-time event loop (the tree twin of grid.loop).
func (g *treeGrid) loop() error {
	sc := &g.sc
	for tick := 0; tick < sc.MaxTicks; tick++ {
		g.tick = tick
		g.nowNano = int64(tick) * int64(time.Second)

		for _, rt := range sc.FarmerRestarts {
			if rt == tick {
				if err := g.restartRoot(); err != nil {
					return err
				}
			}
		}
		for _, r := range sc.SubRestarts {
			if r.Tick == tick {
				if err := g.restartSub(r.Sub); err != nil {
					return err
				}
			}
		}
		if sc.CheckpointEvery > 0 && tick > 0 && tick%sc.CheckpointEvery == 0 {
			if err := g.root.Checkpoint(); err != nil {
				return err
			}
			g.rootTrack.noteCheckpoint()
			for i, sub := range g.subs {
				if err := sub.Checkpoint(); err != nil {
					return err
				}
				g.subTracks[i].noteCheckpoint()
			}
			g.report.Checkpoints++
			g.tracef("ckpt n=%d", g.report.Checkpoints)
		}
		for _, k := range sc.Kills {
			if k.Tick == tick {
				rejoin := -1
				if k.RejoinAfter > 0 {
					rejoin = tick + k.RejoinAfter
				}
				g.kill(k.Slot, rejoin, "scheduled")
			}
		}
		for i, sl := range g.slots {
			if sl.sess == nil && sl.rejoinAt == tick {
				g.join(i)
			}
		}

		for _, si := range g.rng.Perm(len(g.slots)) {
			sl := g.slots[si]
			if sl.sess == nil || sl.finished {
				continue
			}
			budget := sc.TickBudget/2 + g.rng.Int63n(sc.TickBudget)
			n, finished, err := sl.sess.Advance(budget)
			g.tracef("adv w=%s n=%d fin=%v", sl.id, n, finished)
			if err != nil {
				if !errors.Is(err, transport.ErrLost) && !errors.Is(err, transport.ErrDeadline) {
					return fmt.Errorf("harness: worker %s: %w", sl.id, err)
				}
				// Same lost-message policy as the flat grid: only a
				// lost (or timed-out) solution report kills the worker
				// process.
				if g.crashed[sl.id] {
					delete(g.crashed, sl.id)
					g.kill(si, tick+sc.LeaseTTLTicks+1, "lost-report")
				}
				continue
			}
			if finished {
				sl.finished = true
			}
		}

		for _, sub := range g.subs {
			sub.Pulse()
		}

		if g.root.Done() {
			g.report.Finished = true
			g.report.Ticks = tick + 1
			g.tracef("done best=%d", g.root.Best().Cost)
			return nil
		}
	}
	g.report.Ticks = g.sc.MaxTicks
	return nil
}

// join seats a fresh session on the slot, attached to its subtree's
// endpoint (slot i → sub i mod Subtrees).
func (g *treeGrid) join(i int) {
	sl := g.slots[i]
	sl.gen++
	sl.id = transport.WorkerID(fmt.Sprintf("s%d-g%d", i, sl.gen))
	sl.sess = worker.NewShardedSession(worker.Config{
		ID:                sl.id,
		Power:             (1 + int64(i)) * int64(max(g.sc.Cores, 1)), // heterogeneous by construction, scaled by cores
		UpdatePeriodNodes: g.sc.UpdatePeriodNodes,
		Cores:             g.sc.Cores,
	}, g.subChaos[i%len(g.subChaos)], g.sc.Factory)
	sl.rejoinAt = -1
	sl.finished = false
	if sl.gen > 1 {
		g.report.Rejoins++
	}
	g.tracef("join slot=%d sub=%d w=%s", i, i%len(g.subChaos), sl.id)
}

// kill crashes the slot's session with the flat grid's bounded-rework
// audit.
func (g *treeGrid) kill(i, rejoinAt int, why string) {
	sl := g.slots[i]
	if sl.sess == nil {
		g.tracef("kill-skipped slot=%d why=%s", i, why)
		if rejoinAt >= 0 && (sl.rejoinAt < 0 || rejoinAt < sl.rejoinAt) {
			sl.rejoinAt = rejoinAt
		}
		return
	}
	unreported := sl.sess.Stats().Explored - sl.sess.Reported().Explored
	if unreported > g.sc.UpdatePeriodNodes {
		g.violatef("worker %s died with %d unreported nodes, more than the %d-node checkpoint period",
			sl.id, unreported, g.sc.UpdatePeriodNodes)
	}
	g.tracef("kill slot=%d w=%s why=%s unreported=%d", i, sl.id, why, unreported)
	delete(g.crashed, sl.id)
	sl.sess = nil
	sl.rejoinAt = rejoinAt
	g.report.Kills++
}

// restartSub crashes sub-farmer i and restores it from its own store —
// the §4.1 mechanics replayed one tier up. The fleet keeps its endpoint
// (the chaos interceptor and tracker), exactly like real workers keep the
// address of a restarted coordinator.
// restartRoot kills the root farmer and restores it from its latest
// snapshot, exactly as the flat grid does. The sub-farmers keep their
// endpoint (the chaos interceptor wraps the tracker, and the tracker
// re-attaches to the restored incarnation), so their next folds hit the
// new epoch, collect Known:false verdicts for stale bindings, and refill
// — the §4.1 composition of root restarts with live subtrees.
func (g *treeGrid) restartRoot() error {
	before := g.rootStore.Stats().FallbackLoads
	f, err := farmer.Restore(g.nb.RootRange(), g.rootStore, g.rootOpts...)
	if err != nil {
		return err
	}
	g.root = f
	g.rootTrack.attach(f)
	g.rootTrack.noteRestart(g.rootStore.Stats().FallbackLoads > before)
	g.report.Restarts++
	g.tracef("root-restart n=%d", g.report.Restarts)
	return nil
}

func (g *treeGrid) restartSub(i int) error {
	sub, err := farmer.RestoreSubFarmer(g.subCfg(i), g.upChaos)
	if err != nil {
		return err
	}
	g.subs[i] = sub
	g.subTracks[i].noteRestart(sub)
	g.report.Restarts++
	g.tracef("sub-restart sub=%d n=%d", i, g.report.Restarts)
	return nil
}

// decideFault is the seeded chaos policy, shared by both legs: one draw
// per message, in delivery order, so traces reproduce byte for byte.
func (g *treeGrid) decideFault(op transport.Op) transport.Fault {
	sc := &g.sc
	total := sc.DropRequestPct + sc.DropReplyPct + sc.DuplicatePct + sc.BlackholePct
	if total == 0 {
		return transport.FaultNone
	}
	r := g.rng.Intn(100)
	switch {
	case r < sc.DropRequestPct:
		return transport.FaultDropRequest
	case r < sc.DropRequestPct+sc.DropReplyPct:
		return transport.FaultDropReply
	case r < sc.DropRequestPct+sc.DropReplyPct+sc.DuplicatePct:
		return transport.FaultDuplicate
	case r < total:
		return transport.FaultBlackhole
	default:
		return transport.FaultNone
	}
}

// observe logs every faulted message, earmarking lost worker solution
// reports for the crash-on-lost-report policy. Sub-farmers shrug lost
// upstream messages off by design (bestSentUp only advances on success),
// so the policy applies to the worker legs only.
func (g *treeGrid) observe(leg string, op transport.Op, w transport.WorkerID, fault transport.Fault) {
	if fault == transport.FaultNone {
		return
	}
	g.tracef("msg leg=%s %s w=%s fault=%s", leg, op, w, fault)
	switch fault {
	case transport.FaultDropRequest, transport.FaultDropReply:
		g.report.Drops++
		if leg == "w" && op == transport.OpReportSolution {
			g.crashed[w] = true
		}
	case transport.FaultBlackhole:
		// A black-holed call surfaces as ErrDeadline: same protocol
		// consequences as a drop. On the up leg the sub-farmer absorbs
		// it (counted as UpstreamTimeouts); on the worker leg a
		// timed-out solution report kills the worker process, exactly
		// like a lost one.
		g.report.Timeouts++
		if leg == "w" && op == transport.OpReportSolution {
			g.crashed[w] = true
		}
	case transport.FaultDuplicate:
		g.report.Duplicates++
	}
}

// checkOptimality holds the root incumbent to the sequential baseline.
func (g *treeGrid) checkOptimality() {
	best, base := g.report.Best, g.report.Baseline
	if best.Cost != base.Cost {
		g.violatef("incumbent %d != sequential baseline %d", best.Cost, base.Cost)
		return
	}
	if !best.Valid() {
		if base.Valid() {
			g.violatef("baseline found a solution but the tree has none at the root")
		}
		return
	}
	if cost, err := evalPath(g.sc.Factory(), best.Path); err != nil {
		g.violatef("incumbent path invalid: %v", err)
	} else if cost != best.Cost {
		g.violatef("incumbent path evaluates to %d, claimed %d", cost, best.Cost)
	}
}
