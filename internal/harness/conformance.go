package harness

import (
	"fmt"
	"math/big"

	"repro/internal/checkpoint"
	"repro/internal/interval"
	"repro/internal/transport"
)

// auditedCoordinator is what the tracker wraps: the three protocol
// endpoints plus a view of the INTERVALS content. The farmer satisfies it;
// tests substitute deliberately broken implementations to prove the
// tracker's checks have teeth.
type auditedCoordinator interface {
	transport.Coordinator
	IntervalsSnapshot() []checkpoint.IntervalRecord
}

// tracker is the conformance layer of the farmer scenarios: a Coordinator
// middleware sitting between the chaos interceptor and the real farmer. It
// observes the INTERVALS multiset around every delivered message and holds
// the runtime to the paper's interval algebra, stated as three mechanical
// conservation laws:
//
//   - allocation (RequestWork) and solution sharing (ReportSolution) leave
//     the union of INTERVALS exactly unchanged — the partitioning operator
//     tiles, it never creates or destroys work (§4.2). One amendment since
//     PR 8: a gap-carving split (DESIGN.md §12) may shrink the union at
//     allocation time, but only by ground some reporter has explicitly
//     vouched as explored in a prior fold's gap declaration — that ground
//     is credited to the covered set exactly like a fold removal;
//   - a checkpoint update (UpdateInterval) only ever shrinks the union
//     (eq. 14 intersections), and whatever it removes is credited to the
//     workers' covered set — eq. 10: consumed leaf numbers leave INTERVALS
//     only by being explored;
//   - a farmer restart re-opens exactly the regions covered since the last
//     snapshot, never more — the §4.1 claim that lost work is bounded by
//     the checkpoint period.
//
// At termination the covered set must equal the root range: the union of
// completed intervals plus checkpointed remainders partitions the initial
// work unit at every observation point in between.
type tracker struct {
	f    auditedCoordinator
	root interval.Interval

	// covered accumulates regions removed from INTERVALS by updates.
	covered *interval.Set
	// declaredGaps accumulates every gap region a fold has vouched as
	// explored (UpdateRequest.Gap). A vouch is permanent — explored is
	// explored — and it is the ONLY license for an allocation-time union
	// shrink: the gap-carving split hands out the far side of a declared
	// hole and retires the hole itself.
	declaredGaps *interval.Set
	// overlap is the total re-covered measure (redundant exploration).
	overlap *big.Int
	// reworkBudget is how much overlap the observed fault events justify.
	reworkBudget *big.Int
	// coveredSinceCkpt measures removals since the last farmer snapshot;
	// a restart may re-open at most this much.
	coveredSinceCkpt *big.Int
	// lastCkpt is the INTERVALS union at the last snapshot (the root
	// range before any snapshot: a restart with no checkpoint restarts
	// the whole resolution).
	lastCkpt *interval.Set
	// prevCkpt / coveredSincePrev mirror lastCkpt / coveredSinceCkpt one
	// generation back: the store keeps the previous snapshot as *.prev,
	// so a restart whose current generation is corrupt legitimately
	// restores this older state — re-opening at most what was covered
	// since THAT snapshot.
	prevCkpt         *interval.Set
	coveredSincePrev *big.Int

	violations []string
}

func newTracker(root interval.Interval) *tracker {
	return &tracker{
		root:             root.Clone(),
		covered:          interval.NewSet(),
		declaredGaps:     interval.NewSet(),
		overlap:          new(big.Int),
		reworkBudget:     new(big.Int),
		coveredSinceCkpt: new(big.Int),
		lastCkpt:         interval.NewSet(root),
		prevCkpt:         interval.NewSet(root),
		coveredSincePrev: new(big.Int),
	}
}

// attach points the tracker at a (possibly freshly restored) coordinator.
func (t *tracker) attach(f auditedCoordinator) { t.f = f }

func (t *tracker) violatef(format string, args ...any) {
	t.violations = append(t.violations, fmt.Sprintf(format, args...))
}

// union reads the current INTERVALS content as a set, checking on the way
// that the farmer's copies are pairwise disjoint — overlapping coordinator
// copies would double-count work.
func (t *tracker) union() *interval.Set {
	s := interval.NewSet()
	for _, rec := range t.f.IntervalsSnapshot() {
		if ov := s.Add(rec.Interval); ov.Sign() != 0 {
			t.violatef("INTERVALS entries overlap at id %d by %s units", rec.ID, ov)
		}
	}
	return s
}

// RequestWork implements transport.Coordinator: allocation conserves the
// union exactly, except that a gap-carving split may retire ground a
// reporter has vouched as explored — which is then covered work.
func (t *tracker) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	before := t.union()
	reply, err := t.f.RequestWork(req)
	after := t.union()
	if grown := interval.SetDiff(after, before); !grown.IsEmpty() {
		t.violatef("RequestWork(%s) grew the INTERVALS union by %s", req.Worker, grown)
	}
	removed := interval.SetDiff(before, after)
	if stray := interval.SetDiff(removed, t.declaredGaps); !stray.IsEmpty() {
		t.violatef("RequestWork(%s) shrank the INTERVALS union by %s, which no fold vouched as an explored gap", req.Worker, stray)
	}
	for _, iv := range removed.Intervals() {
		t.overlap.Add(t.overlap, t.covered.Add(iv))
		t.coveredSinceCkpt.Add(t.coveredSinceCkpt, iv.Len())
	}
	return reply, err
}

// UpdateInterval implements transport.Coordinator: updates only shrink the
// union, and every removed region is covered work.
func (t *tracker) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	before := t.union()
	reply, err := t.f.UpdateInterval(req)
	after := t.union()
	if req.HasGap && err == nil && reply.Known {
		t.declaredGaps.Add(req.Gap)
	}
	if grown := interval.SetDiff(after, before); !grown.IsEmpty() {
		t.violatef("UpdateInterval(%s id=%d) grew INTERVALS by %s", req.Worker, req.IntervalID, grown)
	}
	removed := interval.SetDiff(before, after)
	for _, iv := range removed.Intervals() {
		t.overlap.Add(t.overlap, t.covered.Add(iv))
		t.coveredSinceCkpt.Add(t.coveredSinceCkpt, iv.Len())
	}
	return reply, err
}

// ReportSolution implements transport.Coordinator: sharing never touches
// INTERVALS.
func (t *tracker) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	before := t.union()
	ack, err := t.f.ReportSolution(req)
	if after := t.union(); !before.Equal(after) {
		t.violatef("ReportSolution(%s) changed the INTERVALS union", req.Worker)
	}
	return ack, err
}

// noteCheckpoint records a farmer snapshot and checks the partition
// invariant at this observation point: covered ∪ INTERVALS ⊇ root — no
// leaf number is unaccounted for. The store rotates the old current
// generation to *.prev on every successful save, so the generation
// bookkeeping shifts in step.
func (t *tracker) noteCheckpoint() {
	t.prevCkpt = t.lastCkpt
	t.coveredSincePrev = new(big.Int).Set(t.coveredSinceCkpt)
	t.lastCkpt = t.union()
	t.coveredSinceCkpt.SetInt64(0)
	all := t.covered.Clone()
	for _, iv := range t.lastCkpt.Intervals() {
		all.Add(iv)
	}
	if gaps := all.Gaps(t.root); len(gaps) > 0 {
		t.violatef("checkpoint leaves uncovered gaps %v", gaps)
	}
}

// noteRestart audits a farmer restored from a snapshot: the restored
// INTERVALS must equal what was saved — the last generation normally, the
// previous one when the load fell back past a corrupt current — and the
// re-opened (to-be-re-explored) measure must not exceed what was covered
// since the restored snapshot.
func (t *tracker) noteRestart(fellBack bool) {
	restored := t.union()
	want, allowed := t.lastCkpt, new(big.Int).Set(t.coveredSinceCkpt)
	if fellBack {
		want = t.prevCkpt
		allowed.Add(allowed, t.coveredSincePrev)
	}
	if !restored.Equal(want) {
		t.violatef("restore disagrees with its checkpoint generation: %s != %s", restored, want)
	}
	reopened := new(big.Int)
	for _, iv := range restored.Intervals() {
		reopened.Add(reopened, t.covered.Sub(iv))
	}
	if reopened.Cmp(allowed) > 0 {
		t.violatef("restart re-opened %s units, more than the %s covered since the restored checkpoint", reopened, allowed)
	}
	t.reworkBudget.Add(t.reworkBudget, reopened)
	t.coveredSinceCkpt.SetInt64(0)
	if fellBack {
		// The previous generation is now the live one: the corrupt
		// current was quarantined, so the next save writes a fresh
		// current while *.prev stays this very generation on disk.
		t.lastCkpt = restored
		t.coveredSincePrev.SetInt64(0)
	}
}

// noteTermination runs the end-of-resolution checks: exact partition (the
// covered set IS the root range) and bounded rework (all re-covered ground
// is justified by restart events).
func (t *tracker) noteTermination() {
	if gaps := t.covered.Gaps(t.root); len(gaps) > 0 {
		t.violatef("termination with unexplored gaps %v", gaps)
	}
	if t.covered.Total().Cmp(t.root.Len()) != 0 {
		t.violatef("covered measure %s != root measure %s", t.covered.Total(), t.root.Len())
	}
	if t.overlap.Cmp(t.reworkBudget) > 0 {
		t.violatef("re-covered %s units but fault events justify only %s", t.overlap, t.reworkBudget)
	}
}

var _ transport.Coordinator = (*tracker)(nil)
