// Package harness is a deterministic in-process grid: it composes the real
// farmer, real worker sessions, the real two-file checkpoint store and the
// real p2p ring over an instrumented transport with seeded fault injection
// (message drop/duplication, worker kill-and-rejoin, farmer restart from
// its checkpoint files), and holds every run to the paper's invariants as
// machine-checked conformance properties (see conformance.go and
// DESIGN.md §5).
//
// Everything runs in one goroutine under a virtual clock: worker sessions
// are advanced in seeded-shuffled order with seeded budgets, every fault is
// drawn from the scenario's rng, and every event is appended to a trace —
// equal seeds give byte-identical traces, so every failure reproduces.
// The statistics and the failures are produced by the real protocol code,
// not a model of it: the chaos layer is transport.Interceptor middleware
// and the conformance layer is itself a transport.Coordinator.
package harness

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/transport"
	"repro/internal/worker"
)

// KillEvent schedules a worker crash: the session on Slot dies at Tick
// without any goodbye (no final checkpoint — the §4.1 worker failure), and
// a fresh session joins on the same slot RejoinAfter ticks later (0: the
// slot stays empty for good).
type KillEvent struct {
	Tick, Slot, RejoinAfter int
}

// Scenario is one named fault schedule over one problem instance.
type Scenario struct {
	// Name identifies the scenario in reports and test names.
	Name string
	// Seed drives every random decision; equal seeds reproduce the run
	// event for event.
	Seed int64
	// Factory returns a fresh Problem per call (one per worker and one
	// for the sequential baseline).
	Factory func() bb.Problem
	// Workers is the number of slots. Default 3.
	Workers int
	// Cores makes every worker a multicore one: Cores shard explorers
	// over a tiling of its interval, stepped deterministically inside the
	// session (the shard engine's step-driven form), so chaos runs with
	// multicore workers still produce byte-identical traces. Zero or one
	// keeps the paper's single-explorer worker.
	Cores int
	// UpdatePeriodNodes is the worker checkpoint period. Default 256.
	UpdatePeriodNodes int64
	// TickBudget is the mean node budget per worker per tick (each tick
	// draws a jittered value around it — hosts are heterogeneous).
	// Default 512.
	TickBudget int64
	// LeaseTTLTicks is the farmer lease in virtual ticks (1 tick = 1
	// virtual second). Default 3.
	LeaseTTLTicks int
	// CheckpointEvery snapshots the farmer every so many ticks (0: only
	// the implicit initial state).
	CheckpointEvery int
	// FarmerRestarts lists ticks at which the farmer process is killed
	// and restored from its latest snapshot.
	FarmerRestarts []int
	// DiskFaultEvery fails every Nth farmer checkpoint attempt with an
	// injected EIO on the snapshot file's fsync (flat grid only): the
	// save aborts cleanly before any rename, the on-disk generations
	// stay whole, and the next restart simply re-opens a larger window.
	DiskFaultEvery int
	// CorruptTicks lists ticks at which a byte of the current intervals
	// snapshot is flipped on disk (flat grid only): a later restart must
	// quarantine the corrupt generation and fall back to *.prev.
	CorruptTicks []int
	// Kills schedules worker crashes.
	Kills []KillEvent
	// DropRequestPct / DropReplyPct / DuplicatePct are per-message fault
	// percentages (0..100, cumulative must stay ≤ 100).
	DropRequestPct, DropReplyPct, DuplicatePct int
	// BlackholePct black-holes messages: the coordinator never sees
	// them and the caller gets transport.ErrDeadline, modelling a
	// stalled peer behind the hardened transport's call deadline. It
	// joins the other fault percentages in the ≤ 100 cumulative budget
	// and applies to both tree legs.
	BlackholePct int
	// InitialUpper primes SOLUTION (0: Infinity).
	InitialUpper int64
	// MaxTicks aborts a stuck scenario. Default 5000.
	MaxTicks int
	// Dir, when set, hosts the checkpoint store; empty uses a private
	// temporary directory removed at the end of the run.
	Dir string
	// Subtrees ≥ 2 runs the scenario as a 2-level farmer tree (tree.go):
	// workers attach to sub-farmers round-robin, sub-farmers speak the
	// unchanged protocol to the root, and the conformance layer audits
	// both tiers. FarmerRestarts restarts the root farmer, composing
	// with SubRestarts.
	Subtrees int
	// SubUpdateEvery is the sub→root fold cadence in fleet messages
	// (tree mode). Default 4.
	SubUpdateEvery int64
	// SubRestarts schedules sub-farmer crashes (tree mode): the
	// sub-farmer on Sub dies at Tick and is restored from its own
	// checkpoint store, binding file included, while its fleet keeps
	// hammering the same endpoint.
	SubRestarts []SubRestart
	// Endgame arms the crumb-endgame machinery (tree mode, DESIGN.md
	// §12): steal hints and endgame crumb duplication at the root,
	// low-water pre-fetch and gap/content-honest folds at the subs, and
	// the fan-out-scaled inner threshold. The thresholds are derived
	// from the root range exactly as the grid simulator derives them,
	// so the chaos matrix exercises the same code paths the 10k-fleet
	// scenario measures.
	Endgame bool
}

func (s *Scenario) fillDefaults() {
	if s.Workers <= 0 {
		s.Workers = 3
	}
	if s.UpdatePeriodNodes <= 0 {
		s.UpdatePeriodNodes = 256
	}
	if s.TickBudget <= 0 {
		s.TickBudget = 512
	}
	if s.LeaseTTLTicks <= 0 {
		s.LeaseTTLTicks = 3
	}
	if s.InitialUpper <= 0 {
		s.InitialUpper = bb.Infinity
	}
	if s.MaxTicks <= 0 {
		s.MaxTicks = 5000
	}
}

// Report is the outcome of a scenario run. A run is conformant iff
// Violations is empty and Finished is true.
type Report struct {
	// Name echoes the scenario.
	Name string
	// Trace is the deterministic event log (same seed ⇒ same trace).
	Trace []string
	// Violations lists every conformance breach, empty on a clean run.
	Violations []string
	// Best is the resolution's answer; Baseline the sequential oracle's.
	Best, Baseline bb.Solution
	// Ticks is the virtual duration; Finished whether INTERVALS emptied.
	Ticks    int
	Finished bool
	// Fault bookkeeping. In tree mode Restarts counts sub-farmer
	// restarts and Refills the sub-ranges pulled from the root (the
	// first fill of each subtree plus every inter-subtree rebalance).
	Drops, Duplicates, Kills, Rejoins, Restarts, Checkpoints int
	// DiskFaults counts checkpoint attempts killed by injected I/O
	// errors; CorruptInjections the snapshot bytes flipped on disk.
	DiskFaults, CorruptInjections int
	// Timeouts counts black-holed calls that surfaced as ErrDeadline to
	// a worker; in tree mode UpstreamTimeouts aggregates the deadline
	// failures the sub-farmers saw on their root leg.
	Timeouts         int
	UpstreamTimeouts int64
	Refills          int64
	// LowWaterRefills aggregates the subset of Refills the sub-farmers
	// adopted while still holding live bindings — the work-conserving
	// pre-fetch of the endgame machinery (tree mode, Endgame scenarios).
	LowWaterRefills int64
	// OverlapUnits is the re-covered leaf measure; ReworkBudget what the
	// fault events justify.
	OverlapUnits, ReworkBudget *big.Int
	// Counters are the final farmer counters.
	Counters farmer.Counters
}

// slot is one worker seat of the grid.
type slot struct {
	sess     *worker.Session
	id       transport.WorkerID
	gen      int // incarnation count, for unique ids across rejoins
	rejoinAt int // tick to rejoin at; -1 = stay empty
	finished bool
}

// grid is the running state of one scenario.
type grid struct {
	sc      Scenario
	rng     *rand.Rand
	tick    int
	nowNano int64

	nb           *core.Numbering
	dir          string
	fs           *checkpoint.FaultFS
	store        *checkpoint.Store
	farmer       *farmer.Farmer
	track        *tracker
	chaos        *transport.Interceptor
	slots        []*slot
	trace        []string
	report       *Report
	ckptAttempts int
	crashed      map[transport.WorkerID]bool // lost-report verdicts pending a kill
}

func (g *grid) tracef(format string, args ...any) {
	g.trace = append(g.trace, fmt.Sprintf("t=%04d ", g.tick)+fmt.Sprintf(format, args...))
}

// Run executes one scenario to termination and returns its report. The
// error is reserved for harness misuse (unexpected protocol errors bubble
// up as violations, not errors).
func Run(sc Scenario) (Report, error) {
	sc.fillDefaults()
	if sc.Subtrees >= 2 {
		return runTree(sc)
	}
	rep := Report{Name: sc.Name, OverlapUnits: new(big.Int), ReworkBudget: new(big.Int)}

	dir := sc.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "harness-ckpt-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	// The store always goes through the fault seam; it injects nothing
	// until a DiskFaultEvery tick arms it.
	faultFS := checkpoint.NewFaultFS(nil)
	store, err := checkpoint.NewStoreFS(faultFS, dir)
	if err != nil {
		return rep, err
	}

	baseProb := sc.Factory()
	rep.Baseline, _ = bb.Solve(baseProb, sc.InitialUpper)

	nb := core.NewNumbering(baseProb.Shape())
	root := nb.RootRange()
	g := &grid{
		sc:      sc,
		rng:     rand.New(rand.NewSource(sc.Seed)),
		nb:      nb,
		dir:     dir,
		fs:      faultFS,
		store:   store,
		track:   newTracker(root),
		report:  &rep,
		crashed: make(map[transport.WorkerID]bool),
	}
	g.farmer = farmer.New(root, g.farmerOpts()...)
	g.track.attach(g.farmer)
	g.chaos = transport.NewInterceptor(g.track, transport.Hooks{
		Fault:   g.decideFault,
		Observe: g.observe,
	})
	for i := 0; i < sc.Workers; i++ {
		g.slots = append(g.slots, &slot{rejoinAt: -1})
		g.join(i)
	}

	if err := g.loop(); err != nil {
		return rep, err
	}

	// Conformance verdicts.
	g.track.noteTermination()
	if !rep.Finished {
		g.track.violatef("scenario did not terminate within %d ticks", sc.MaxTicks)
	}
	rep.Best = g.farmer.Best()
	g.checkOptimality()
	rep.Counters = g.farmer.Counters()
	rep.Trace = g.trace
	rep.Violations = g.track.violations
	rep.OverlapUnits.Set(g.track.overlap)
	rep.ReworkBudget.Set(g.track.reworkBudget)
	return rep, nil
}

// farmerOpts builds the option set shared by the initial farmer and every
// restored incarnation: the virtual clock, the scenario lease and the
// checkpoint store.
func (g *grid) farmerOpts() []farmer.Option {
	opts := []farmer.Option{
		farmer.WithClock(func() int64 { return g.nowNano }),
		farmer.WithLeaseTTL(time.Duration(g.sc.LeaseTTLTicks) * time.Second),
		farmer.WithCheckpointStore(g.store),
	}
	if g.sc.InitialUpper < bb.Infinity {
		opts = append(opts, farmer.WithInitialBest(g.sc.InitialUpper, nil))
	}
	return opts
}

// loop is the virtual-time event loop.
func (g *grid) loop() error {
	sc := &g.sc
	restarts := make(map[int]bool, len(sc.FarmerRestarts))
	for _, t := range sc.FarmerRestarts {
		restarts[t] = true
	}
	for tick := 0; tick < sc.MaxTicks; tick++ {
		g.tick = tick
		g.nowNano = int64(tick) * int64(time.Second)

		if restarts[tick] {
			if err := g.restartFarmer(); err != nil {
				return err
			}
		}
		for _, ct := range sc.CorruptTicks {
			if ct == tick {
				g.corruptIntervals()
			}
		}
		if sc.CheckpointEvery > 0 && tick > 0 && tick%sc.CheckpointEvery == 0 {
			if err := g.checkpoint(); err != nil {
				return err
			}
		}
		for _, k := range sc.Kills {
			if k.Tick == tick {
				rejoin := -1
				if k.RejoinAfter > 0 {
					rejoin = tick + k.RejoinAfter
				}
				g.kill(k.Slot, rejoin, "scheduled")
			}
		}
		for i, sl := range g.slots {
			if sl.sess == nil && sl.rejoinAt == tick {
				g.join(i)
			}
		}

		for _, si := range g.rng.Perm(len(g.slots)) {
			sl := g.slots[si]
			if sl.sess == nil || sl.finished {
				continue
			}
			budget := sc.TickBudget/2 + g.rng.Int63n(sc.TickBudget)
			n, finished, err := sl.sess.Advance(budget)
			g.tracef("adv w=%s n=%d fin=%v", sl.id, n, finished)
			if err != nil {
				if !errors.Is(err, transport.ErrLost) && !errors.Is(err, transport.ErrDeadline) {
					return fmt.Errorf("harness: worker %s: %w", sl.id, err)
				}
				// A lost or timed-out message is a transient network
				// failure the pull-model protocol retries safely —
				// except a lost solution report, which the protocol
				// never resends: the real worker process dies on the
				// RPC error and the solution's region is re-explored
				// from the last reported fold. Model exactly that.
				if g.crashed[sl.id] {
					delete(g.crashed, sl.id)
					g.kill(si, tick+sc.LeaseTTLTicks+1, "lost-report")
				}
				continue
			}
			if finished {
				sl.finished = true
			}
		}

		if g.farmer.Done() {
			g.report.Finished = true
			g.report.Ticks = tick + 1
			g.tracef("done best=%d", g.farmer.Best().Cost)
			return nil
		}
	}
	g.report.Ticks = g.sc.MaxTicks
	return nil
}

// join seats a fresh session on the slot.
func (g *grid) join(i int) {
	sl := g.slots[i]
	sl.gen++
	sl.id = transport.WorkerID(fmt.Sprintf("s%d-g%d", i, sl.gen))
	sl.sess = worker.NewShardedSession(worker.Config{
		ID:                sl.id,
		Power:             (1 + int64(i)) * int64(max(g.sc.Cores, 1)), // heterogeneous by construction, scaled by cores
		UpdatePeriodNodes: g.sc.UpdatePeriodNodes,
		Cores:             g.sc.Cores,
	}, g.chaos, g.sc.Factory)
	sl.rejoinAt = -1
	sl.finished = false
	if sl.gen > 1 {
		g.report.Rejoins++
	}
	g.tracef("join slot=%d w=%s", i, sl.id)
}

// kill crashes the slot's session, checking the bounded-rework property on
// the way out: a worker can never die with more unreported nodes than one
// checkpoint period. A scheduled kill landing on a slot already emptied by
// a chaos crash is traced (so the schedule's coverage stays auditable) and
// its rejoin still honoured if it is the earlier one.
func (g *grid) kill(i, rejoinAt int, why string) {
	sl := g.slots[i]
	if sl.sess == nil {
		g.tracef("kill-skipped slot=%d why=%s", i, why)
		if rejoinAt >= 0 && (sl.rejoinAt < 0 || rejoinAt < sl.rejoinAt) {
			sl.rejoinAt = rejoinAt
		}
		return
	}
	unreported := sl.sess.Stats().Explored - sl.sess.Reported().Explored
	if unreported > g.sc.UpdatePeriodNodes {
		g.track.violatef("worker %s died with %d unreported nodes, more than the %d-node checkpoint period",
			sl.id, unreported, g.sc.UpdatePeriodNodes)
	}
	g.tracef("kill slot=%d w=%s why=%s unreported=%d", i, sl.id, why, unreported)
	delete(g.crashed, sl.id)
	sl.sess = nil
	sl.rejoinAt = rejoinAt
	g.report.Kills++
}

// checkpoint runs one farmer snapshot attempt, arming the disk-fault seam
// on every DiskFaultEvery'th one: the injected EIO lands on the snapshot
// file's fsync, so the save aborts before any rename touches the
// generations and the only cost is a wider re-exploration window at the
// next restart — which is exactly what the tracker then holds it to, by
// NOT advancing its generation bookkeeping for the failed attempt.
func (g *grid) checkpoint() error {
	g.ckptAttempts++
	faulty := g.sc.DiskFaultEvery > 0 && g.ckptAttempts%g.sc.DiskFaultEvery == 0
	if faulty {
		g.fs.SetDecide(func(op checkpoint.Op, path string) checkpoint.Fault {
			if op == checkpoint.OpSync {
				return checkpoint.EIO()
			}
			return checkpoint.Fault{}
		})
		defer g.fs.SetDecide(nil)
	}
	err := g.farmer.Checkpoint()
	if faulty {
		if err == nil {
			g.track.violatef("tick %d: checkpoint survived an injected fsync EIO", g.tick)
		} else if !errors.Is(err, checkpoint.ErrInjected) {
			return err
		}
		g.report.DiskFaults++
		g.tracef("ckpt-fault n=%d", g.report.DiskFaults)
		return nil
	}
	if err != nil {
		return err
	}
	g.track.noteCheckpoint()
	g.report.Checkpoints++
	g.tracef("ckpt n=%d", g.report.Checkpoints)
	return nil
}

// corruptIntervals flips one byte in the middle of the current intervals
// snapshot — the silent on-disk corruption the CRC footer exists to catch.
func (g *grid) corruptIntervals() {
	path := filepath.Join(g.dir, "intervals.ckpt")
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		g.tracef("disk-corrupt-skipped err=%v", err)
		return
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		g.tracef("disk-corrupt-skipped err=%v", err)
		return
	}
	g.report.CorruptInjections++
	g.tracef("disk-corrupt n=%d", g.report.CorruptInjections)
}

// restartFarmer kills the coordinator and restores it from the latest
// snapshot — or from scratch when none exists. The workers keep their
// connection object (the interceptor) exactly like real workers reconnect
// to a restarted coordinator address. A restore that had to fall back past
// a corrupt current generation is audited against the previous one.
func (g *grid) restartFarmer() error {
	before := g.store.Stats().FallbackLoads
	f, err := farmer.Restore(g.nb.RootRange(), g.store, g.farmerOpts()...)
	if err != nil {
		return err
	}
	fellBack := g.store.Stats().FallbackLoads > before
	g.farmer = f
	g.track.attach(f)
	g.track.noteRestart(fellBack)
	g.report.Restarts++
	g.tracef("farmer-restart n=%d fallback=%v", g.report.Restarts, fellBack)
	return nil
}

// decideFault is the seeded chaos policy: one draw per message.
func (g *grid) decideFault(op transport.Op, w transport.WorkerID) transport.Fault {
	sc := &g.sc
	total := sc.DropRequestPct + sc.DropReplyPct + sc.DuplicatePct + sc.BlackholePct
	if total == 0 {
		return transport.FaultNone
	}
	r := g.rng.Intn(100)
	switch {
	case r < sc.DropRequestPct:
		return transport.FaultDropRequest
	case r < sc.DropRequestPct+sc.DropReplyPct:
		return transport.FaultDropReply
	case r < sc.DropRequestPct+sc.DropReplyPct+sc.DuplicatePct:
		return transport.FaultDuplicate
	case r < total:
		return transport.FaultBlackhole
	default:
		return transport.FaultNone
	}
}

// observe logs every message and earmarks lost solution reports for the
// crash-on-lost-report policy (see loop).
func (g *grid) observe(op transport.Op, w transport.WorkerID, fault transport.Fault, err error) {
	if fault != transport.FaultNone {
		g.tracef("msg %s w=%s fault=%s", op, w, fault)
		switch fault {
		case transport.FaultDropRequest, transport.FaultDropReply:
			g.report.Drops++
			if op == transport.OpReportSolution {
				g.crashed[w] = true
			}
		case transport.FaultBlackhole:
			// A timed-out call is a loss the deadline had to prove; the
			// protocol consequences are identical to a drop, including
			// the worker dying on a timed-out solution report (the real
			// process restarts on the RPC error).
			g.report.Timeouts++
			if op == transport.OpReportSolution {
				g.crashed[w] = true
			}
		case transport.FaultDuplicate:
			g.report.Duplicates++
		}
	}
}

// checkOptimality holds the final incumbent to the sequential baseline:
// equal cost, and — when a path exists — a real leaf of that cost.
func (g *grid) checkOptimality() {
	best, base := g.report.Best, g.report.Baseline
	if best.Cost != base.Cost {
		g.track.violatef("incumbent %d != sequential baseline %d", best.Cost, base.Cost)
		return
	}
	if !best.Valid() {
		if base.Valid() {
			g.track.violatef("baseline found a solution but the grid has none")
		}
		return
	}
	if cost, err := evalPath(g.sc.Factory(), best.Path); err != nil {
		g.track.violatef("incumbent path invalid: %v", err)
	} else if cost != best.Cost {
		g.track.violatef("incumbent path evaluates to %d, claimed %d", cost, best.Cost)
	}
}

// evalPath walks the problem down the rank path and prices the leaf.
func evalPath(p bb.Problem, path []int) (int64, error) {
	depth := p.Shape().Depth()
	if len(path) != depth {
		return 0, fmt.Errorf("path length %d != tree depth %d", len(path), depth)
	}
	p.Reset()
	for d, r := range path {
		if r < 0 || r >= p.Shape().Branching(d) {
			return 0, fmt.Errorf("rank %d out of range at depth %d", r, d)
		}
		p.Descend(r)
	}
	return p.Cost(), nil
}
