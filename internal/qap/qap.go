// Package qap implements the quadratic assignment problem, the fourth
// domain of this reproduction and the problem behind the Nug30 row of the
// paper's Table 3 (Nug30 was the previous generation's famous grid
// resolution, 7 CPU-years on Condor). Assign N facilities to N locations,
// one each, minimizing Σ flow[i][j]·dist[loc(i)][loc(j)].
//
// The search tree is again a permutation tree — facility d gets the rank-th
// smallest free location at depth d — so the interval coding, the farmer
// and the peers all run unchanged. The bound is a Gilmore–Lawler-style
// relaxation without the Hungarian step: fixed–fixed costs exactly,
// fixed–free interactions by per-facility minima over free locations, and
// free–free interactions by the rearrangement inequality (smallest flows ×
// largest distances); each relaxation only drops constraints, so the bound
// is admissible.
package qap

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bb"
	"repro/internal/tree"
)

// Instance is a QAP instance with flow and distance matrices.
type Instance struct {
	// Name identifies the instance.
	Name string
	// N is the number of facilities (= locations).
	N int
	// Flow[i][j] is the traffic from facility i to facility j.
	Flow [][]int64
	// Dist[a][b] is the distance from location a to location b.
	Dist [][]int64
}

// NewInstance validates and wraps the matrices.
func NewInstance(name string, flow, dist [][]int64) (*Instance, error) {
	n := len(flow)
	if n < 2 {
		return nil, fmt.Errorf("qap: instance %q needs at least 2 facilities", name)
	}
	if len(dist) != n {
		return nil, fmt.Errorf("qap: flow is %d×, dist is %d×", n, len(dist))
	}
	for i := 0; i < n; i++ {
		if len(flow[i]) != n || len(dist[i]) != n {
			return nil, fmt.Errorf("qap: ragged matrix at row %d", i)
		}
		for j := 0; j < n; j++ {
			if flow[i][j] < 0 || dist[i][j] < 0 {
				return nil, fmt.Errorf("qap: negative entry at (%d,%d)", i, j)
			}
		}
	}
	return &Instance{Name: name, N: n, Flow: flow, Dist: dist}, nil
}

// Random generates a symmetric random instance with entries in [0, max],
// zero diagonals. Deterministic per seed.
func Random(n int, max int64, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	gen := func() [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Int63n(max + 1)
				m[i][j], m[j][i] = v, v
			}
		}
		return m
	}
	ins, err := NewInstance(fmt.Sprintf("qap-%d-seed%d", n, seed), gen(), gen())
	if err != nil {
		panic(err) // generated inputs are valid by construction
	}
	return ins
}

// Cost evaluates a complete assignment: loc[i] is facility i's location.
func (ins *Instance) Cost(loc []int) int64 {
	if len(loc) != ins.N {
		panic(fmt.Sprintf("qap: assignment of length %d for %d facilities", len(loc), ins.N))
	}
	var total int64
	for i := 0; i < ins.N; i++ {
		for j := 0; j < ins.N; j++ {
			total += ins.Flow[i][j] * ins.Dist[loc[i]][loc[j]]
		}
	}
	return total
}

// Problem adapts the instance to bb.Problem: depth d assigns facility d,
// rank r picks the r-th smallest free location.
type Problem struct {
	ins *Instance

	depth   int
	loc     []int // loc[i] for i < depth
	free    []int // free locations, ascending
	chosen  []int // location chosen per depth
	ranks   []int
	fixed   []int64 // fixed-fixed cost per depth (prefix sums)
	scratch []int64
	flowsLo []int64 // scratch for the rearrangement bound
	distsHi []int64
}

// NewProblem builds the adapter.
func NewProblem(ins *Instance) *Problem {
	p := &Problem{
		ins:     ins,
		loc:     make([]int, ins.N),
		free:    make([]int, 0, ins.N),
		chosen:  make([]int, ins.N),
		ranks:   make([]int, ins.N),
		fixed:   make([]int64, ins.N+1),
		scratch: make([]int64, ins.N),
		flowsLo: make([]int64, 0, ins.N*ins.N),
		distsHi: make([]int64, 0, ins.N*ins.N),
	}
	p.Reset()
	return p
}

// Instance returns the instance being solved.
func (p *Problem) Instance() *Instance { return p.ins }

// Shape implements bb.Problem.
func (p *Problem) Shape() tree.Shape { return tree.Permutation{N: p.ins.N} }

// Reset implements bb.Problem.
func (p *Problem) Reset() {
	p.depth = 0
	p.free = p.free[:0]
	for l := 0; l < p.ins.N; l++ {
		p.free = append(p.free, l)
	}
	p.fixed[0] = 0
}

// Descend implements bb.Problem.
func (p *Problem) Descend(rank int) {
	l := p.free[rank]
	copy(p.free[rank:], p.free[rank+1:])
	p.free = p.free[:len(p.free)-1]
	f := p.depth // the facility being placed
	// Incremental fixed-fixed cost: interactions of the new facility
	// with the already placed ones (both directions) plus its self-loop.
	delta := p.ins.Flow[f][f] * p.ins.Dist[l][l]
	for i := 0; i < p.depth; i++ {
		delta += p.ins.Flow[f][i]*p.ins.Dist[l][p.loc[i]] +
			p.ins.Flow[i][f]*p.ins.Dist[p.loc[i]][l]
	}
	p.loc[f] = l
	p.chosen[p.depth] = l
	p.ranks[p.depth] = rank
	p.fixed[p.depth+1] = p.fixed[p.depth] + delta
	p.depth++
}

// Ascend implements bb.Problem.
func (p *Problem) Ascend() {
	p.depth--
	l := p.chosen[p.depth]
	rank := p.ranks[p.depth]
	p.free = p.free[:len(p.free)+1]
	copy(p.free[rank+1:], p.free[rank:])
	p.free[rank] = l
}

// Cost implements bb.Problem.
func (p *Problem) Cost() int64 { return p.fixed[p.depth] }

// Bound implements bb.Problem: fixed cost + fixed–free minima + free–free
// rearrangement bound. Every term added is non-negative, so the running sum
// is itself an admissible lower bound at every step; per the cutoff contract
// the evaluation returns the moment it reaches cutoff, which skips the
// per-facility location scans and — most importantly — the two sorts of the
// rearrangement stage for the bulk of the pruned nodes.
func (p *Problem) Bound(cutoff int64) int64 {
	lb := p.fixed[p.depth]
	if lb >= cutoff {
		return lb
	}
	n := p.ins.N
	// Fixed–free: each unplaced facility f interacts with every placed
	// facility; whatever location f ends on, it pays at least the
	// minimum over free locations. Summing per-facility minima relaxes
	// the all-different constraint, which only lowers the bound.
	for f := p.depth; f < n; f++ {
		min := int64(1) << 62
		for _, l := range p.free {
			var c int64
			for i := 0; i < p.depth; i++ {
				c += p.ins.Flow[f][i]*p.ins.Dist[l][p.loc[i]] +
					p.ins.Flow[i][f]*p.ins.Dist[p.loc[i]][l]
			}
			c += p.ins.Flow[f][f] * p.ins.Dist[l][l]
			if c < min {
				min = c
			}
		}
		if min < (int64(1) << 62) {
			lb += min
			if lb >= cutoff {
				return lb
			}
		}
	}
	// Free–free: the off-diagonal flows among unplaced facilities will
	// be matched one-to-one with off-diagonal distances among free
	// locations. By the rearrangement inequality the cheapest conceivable
	// matching pairs ascending flows with descending distances.
	p.flowsLo = p.flowsLo[:0]
	p.distsHi = p.distsHi[:0]
	for a := p.depth; a < n; a++ {
		for bIdx := p.depth; bIdx < n; bIdx++ {
			if a != bIdx {
				p.flowsLo = append(p.flowsLo, p.ins.Flow[a][bIdx])
			}
		}
	}
	for ai := range p.free {
		for bi := range p.free {
			if ai != bi {
				p.distsHi = append(p.distsHi, p.ins.Dist[p.free[ai]][p.free[bi]])
			}
		}
	}
	sort.Slice(p.flowsLo, func(i, j int) bool { return p.flowsLo[i] < p.flowsLo[j] })
	sort.Slice(p.distsHi, func(i, j int) bool { return p.distsHi[i] > p.distsHi[j] })
	for i := range p.flowsLo {
		lb += p.flowsLo[i] * p.distsHi[i]
	}
	return lb
}

// DecodePath implements bb.Decoder: facility → location list.
func (p *Problem) DecodePath(ranks []int) string {
	loc, err := AssignmentOfPath(p.ins.N, ranks)
	if err != nil {
		return fmt.Sprintf("<invalid path: %v>", err)
	}
	return fmt.Sprint(loc)
}

// AssignmentOfPath converts a rank path into the location of each facility.
func AssignmentOfPath(n int, ranks []int) ([]int, error) {
	if len(ranks) > n {
		return nil, fmt.Errorf("qap: path of length %d for %d facilities", len(ranks), n)
	}
	free := make([]int, n)
	for l := range free {
		free[l] = l
	}
	loc := make([]int, 0, len(ranks))
	for d, r := range ranks {
		if r < 0 || r >= len(free) {
			return nil, fmt.Errorf("qap: rank %d out of range at depth %d", r, d)
		}
		loc = append(loc, free[r])
		free = append(free[:r], free[r+1:]...)
	}
	return loc, nil
}

var _ bb.Problem = (*Problem)(nil)
var _ bb.Decoder = (*Problem)(nil)
