package qap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bb"
	"repro/internal/core"
)

// bruteBest enumerates all assignments.
func bruteBest(ins *Instance) int64 {
	loc := make([]int, ins.N)
	for i := range loc {
		loc[i] = i
	}
	best := int64(1) << 62
	var walk func(k int)
	walk = func(k int) {
		if k == ins.N {
			if c := ins.Cost(loc); c < best {
				best = c
			}
			return
		}
		for i := k; i < ins.N; i++ {
			loc[k], loc[i] = loc[i], loc[k]
			walk(k + 1)
			loc[k], loc[i] = loc[i], loc[k]
		}
	}
	walk(0)
	return best
}

// TestSolveMatchesBruteForce on random instances, via both engines.
func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ins := Random(7, 20, seed)
		want := bruteBest(ins)
		sol, _ := bb.Solve(NewProblem(ins), bb.Infinity)
		if sol.Cost != want {
			t.Fatalf("seed %d: B&B %d, brute force %d", seed, sol.Cost, want)
		}
		nb := core.NewNumbering(NewProblem(ins).Shape())
		e := core.NewExplorer(NewProblem(ins), nb, nb.RootRange(), bb.Infinity)
		esol, _ := e.Run(1 << 12)
		if esol.Cost != want {
			t.Fatalf("seed %d: explorer %d, brute force %d", seed, esol.Cost, want)
		}
		loc, err := AssignmentOfPath(ins.N, sol.Path)
		if err != nil {
			t.Fatal(err)
		}
		if ins.Cost(loc) != want {
			t.Fatalf("seed %d: decoded assignment costs %d, want %d", seed, ins.Cost(loc), want)
		}
	}
}

// TestCostByHand verifies the objective on a tiny hand-checked case.
func TestCostByHand(t *testing.T) {
	// Two facilities, flow 0-1 = 3 (symmetric); locations 5 apart.
	flow := [][]int64{{0, 3}, {3, 0}}
	dist := [][]int64{{0, 5}, {5, 0}}
	ins, err := NewInstance("hand", flow, dist)
	if err != nil {
		t.Fatal(err)
	}
	// Either assignment costs 3·5 + 3·5 = 30.
	if got := ins.Cost([]int{0, 1}); got != 30 {
		t.Fatalf("cost(0,1) = %d, want 30", got)
	}
	if got := ins.Cost([]int{1, 0}); got != 30 {
		t.Fatalf("cost(1,0) = %d, want 30", got)
	}
}

// TestBoundAdmissible: the Gilmore–Lawler-style bound never exceeds the
// best completion (property over random partial assignments).
func TestBoundAdmissible(t *testing.T) {
	ins := Random(7, 15, 11)
	p := NewProblem(ins)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p.Reset()
		depth := rng.Intn(ins.N)
		for d := 0; d < depth; d++ {
			p.Descend(rng.Intn(ins.N - d))
		}
		lb := p.Bound(bb.Infinity)
		best := bb.Infinity
		var walk func(d int)
		walk = func(d int) {
			if d == ins.N {
				if c := p.Cost(); c < best {
					best = c
				}
				return
			}
			for r := 0; r < ins.N-d; r++ {
				p.Descend(r)
				walk(d + 1)
				p.Ascend()
			}
		}
		walk(depth)
		return lb <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDescendAscendInverse: the state machine restores exactly.
func TestDescendAscendInverse(t *testing.T) {
	ins := Random(6, 10, 3)
	p := NewProblem(ins)
	p.Descend(2)
	p.Descend(0)
	b1 := p.Bound(bb.Infinity)
	p.Descend(1)
	p.Ascend()
	if got := p.Bound(bb.Infinity); got != b1 {
		t.Fatalf("bound after descend+ascend = %d, want %d", got, b1)
	}
	p.Ascend()
	p.Ascend()
	p.Descend(2)
	p.Descend(0)
	if got := p.Bound(bb.Infinity); got != b1 {
		t.Fatalf("bound after full rewind = %d, want %d", got, b1)
	}
}

// TestValidation rejects malformed matrices.
func TestValidation(t *testing.T) {
	ok := [][]int64{{0, 1}, {1, 0}}
	if _, err := NewInstance("x", ok, ok); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := NewInstance("x", [][]int64{{0}}, [][]int64{{0}}); err == nil {
		t.Error("1-facility instance accepted")
	}
	if _, err := NewInstance("x", ok, [][]int64{{0, 1}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewInstance("x", [][]int64{{0, -1}, {1, 0}}, ok); err == nil {
		t.Error("negative flow accepted")
	}
}

// TestAssignmentOfPath rejects malformed paths.
func TestAssignmentOfPath(t *testing.T) {
	loc, err := AssignmentOfPath(4, []int{3, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2}
	for i := range want {
		if loc[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", loc, want)
		}
	}
	if _, err := AssignmentOfPath(3, []int{0, 0, 0, 0}); err == nil {
		t.Error("overlong path accepted")
	}
	if _, err := AssignmentOfPath(3, []int{7}); err == nil {
		t.Error("bad rank accepted")
	}
}

// TestDecodePath covers the bb.Decoder implementation.
func TestDecodePath(t *testing.T) {
	ins := Random(4, 9, 1)
	p := NewProblem(ins)
	if out := p.DecodePath([]int{1, 0, 0, 0}); !strings.Contains(out, "[1 0 2 3]") {
		t.Errorf("DecodePath = %q", out)
	}
	if !strings.Contains(p.DecodePath([]int{9}), "invalid") {
		t.Error("bad path not flagged")
	}
}

// TestCostPanicsOnBadAssignment guards the evaluator.
func TestCostPanicsOnBadAssignment(t *testing.T) {
	ins := Random(4, 9, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ins.Cost([]int{0, 1})
}
