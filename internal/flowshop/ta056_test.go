package flowshop

import "testing"

// TestTa056PaperScheduleMakespan is the end-to-end cross-check of the
// instance generator and the makespan evaluator against the paper: the
// printed optimal schedule of §5.3 must evaluate on the regenerated Ta056
// instance to within one unit of the claimed optimum. (It lands exactly at
// 3680: the printed sequence carries a one-unit transcription artifact —
// see the Ta056PaperPermutation doc comment. A wrong generator or evaluator
// would be off by hundreds, not one.)
func TestTa056PaperScheduleMakespan(t *testing.T) {
	ins := Ta056()
	if ins.Jobs != 50 || ins.Machines != 20 {
		t.Fatalf("Ta056 dimensions = %dx%d, want 50x20", ins.Jobs, ins.Machines)
	}
	got := ins.Makespan(Ta056PaperPermutation)
	if got != Ta056PaperPermutationMakespan {
		t.Fatalf("makespan of the paper's printed schedule = %d, want %d", got, Ta056PaperPermutationMakespan)
	}
	if diff := got - Ta056Optimum; diff < 0 || diff > 1 {
		t.Fatalf("printed schedule at %d is not within one unit above the optimum %d", got, Ta056Optimum)
	}
}

// TestTa001GeneratorExactness pins the generator to the published benchmark
// data: the first machine row of ta001 is reproduced in dozens of
// independent codebases and acts as a golden value for the LCG, the seed
// table and the machine-major drawing order.
func TestTa001GeneratorExactness(t *testing.T) {
	ins, err := TaillardNamed("ta001")
	if err != nil {
		t.Fatal(err)
	}
	wantM0 := []int64{54, 83, 15, 71, 77, 36, 53, 38, 27, 87, 76, 91, 14, 29, 12, 77, 32, 87, 68, 94}
	wantM1 := []int64{79, 3, 11, 99, 56, 70, 99, 60, 5, 56, 3, 61, 73, 75, 47, 14, 21, 86, 5, 77}
	for j := 0; j < ins.Jobs; j++ {
		if ins.Proc[j][0] != wantM0[j] {
			t.Fatalf("ta001 machine 0 job %d = %d, want %d", j, ins.Proc[j][0], wantM0[j])
		}
		if ins.Proc[j][1] != wantM1[j] {
			t.Fatalf("ta001 machine 1 job %d = %d, want %d", j, ins.Proc[j][1], wantM1[j])
		}
	}
}

// TestTa056PreviousBestIsWorse sanity-checks the paper's narrative: the
// pre-existing best known cost was 3681 > 3679.
func TestTa056PreviousBestIsWorse(t *testing.T) {
	if Ta056PreviousBest <= Ta056Optimum {
		t.Fatalf("previous best %d should exceed the optimum %d", Ta056PreviousBest, Ta056Optimum)
	}
}
