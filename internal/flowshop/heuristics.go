package flowshop

import (
	"math"
	"math/rand"
	"sort"
)

// NEH runs the Nawaz–Enscore–Ham constructive heuristic: jobs sorted by
// decreasing total processing time are inserted one by one at the best
// position of the partial sequence. It returns the schedule and its
// makespan. NEH is the standard initial upper bound for flowshop B&B and
// the seed of the iterated-greedy metaheuristic below.
//
// Insertion positions are evaluated with Taillard's acceleration: for a
// partial sequence of length k all k+1 insertions of one job cost O(k·M)
// total instead of O(k²·M).
func NEH(ins *Instance) ([]int, int64) {
	order := make([]int, ins.Jobs)
	for j := range order {
		order[j] = j
	}
	totals := make([]int64, ins.Jobs)
	for j := 0; j < ins.Jobs; j++ {
		var s int64
		for m := 0; m < ins.Machines; m++ {
			s += ins.Proc[j][m]
		}
		totals[j] = s
	}
	sort.Slice(order, func(x, y int) bool {
		if totals[order[x]] != totals[order[y]] {
			return totals[order[x]] > totals[order[y]]
		}
		return order[x] < order[y]
	})
	seq := make([]int, 0, ins.Jobs)
	for _, j := range order {
		seq = insertBest(ins, seq, j)
	}
	return seq, ins.Makespan(seq)
}

// insertBest returns seq with job inserted at a makespan-minimizing
// position (ties to the earliest position, Taillard's convention).
func insertBest(ins *Instance, seq []int, job int) []int {
	k := len(seq)
	M := ins.Machines
	if k == 0 {
		return append(seq, job)
	}
	// Taillard acceleration. e[i][m]: completion of seq[:i] (earliest
	// heads); q[i][m]: tail — time from start of seq[i:] on machine m to
	// the end of the schedule; f[i][m]: completion of job inserted at
	// position i on machine m.
	e := make([][]int64, k+1)
	q := make([][]int64, k+1)
	f := make([][]int64, k+1)
	for i := range e {
		e[i] = make([]int64, M)
		q[i] = make([]int64, M)
		f[i] = make([]int64, M)
	}
	for i := 1; i <= k; i++ {
		row := ins.Proc[seq[i-1]]
		c := e[i-1][0] + row[0]
		e[i][0] = c
		for m := 1; m < M; m++ {
			if c < e[i-1][m] {
				c = e[i-1][m]
			}
			c += row[m]
			e[i][m] = c
		}
	}
	for i := k - 1; i >= 0; i-- {
		row := ins.Proc[seq[i]]
		c := q[i+1][M-1] + row[M-1]
		q[i][M-1] = c
		for m := M - 2; m >= 0; m-- {
			if c < q[i+1][m] {
				c = q[i+1][m]
			}
			c += row[m]
			q[i][m] = c
		}
	}
	row := ins.Proc[job]
	bestPos, bestC := 0, int64(1)<<62
	for i := 0; i <= k; i++ {
		c := e[i][0] + row[0]
		f[i][0] = c
		for m := 1; m < M; m++ {
			if c < e[i][m] {
				c = e[i][m]
			}
			c += row[m]
			f[i][m] = c
		}
		var cmax int64
		for m := 0; m < M; m++ {
			v := f[i][m] + q[i][m]
			if v > cmax {
				cmax = v
			}
		}
		if cmax < bestC {
			bestC, bestPos = cmax, i
		}
	}
	seq = append(seq, 0)
	copy(seq[bestPos+1:], seq[bestPos:])
	seq[bestPos] = job
	return seq
}

// IGOptions parameterizes the iterated-greedy metaheuristic.
type IGOptions struct {
	// Iterations is the number of destruction–construction cycles.
	Iterations int
	// DestructSize is the number of jobs removed per cycle (Ruiz and
	// Stützle recommend 4).
	DestructSize int
	// TemperatureFactor scales the constant acceptance temperature
	// T = factor · ΣΣ p / (N·M·10); 0.4 in the original paper.
	TemperatureFactor float64
	// LocalSearch enables the iterative-improvement insertion phase
	// after each construction — the full IG_RS variant of Ruiz and
	// Stützle, markedly stronger and proportionally slower.
	LocalSearch bool
	// Seed makes the run deterministic.
	Seed int64
}

// DefaultIGOptions returns the parameterization of Ruiz and Stützle (2004),
// the metaheuristic that held the previous best known solution of Ta056
// (cost 3681, paper §5.1).
func DefaultIGOptions() IGOptions {
	return IGOptions{Iterations: 2000, DestructSize: 4, TemperatureFactor: 0.4, LocalSearch: true, Seed: 1}
}

// localSearchInsertion runs the iterative-improvement insertion
// neighborhood of IG_RS: repeatedly remove a random-order job and reinsert
// it at its best position, until a full pass yields no improvement. seq is
// improved in place and its final makespan returned.
func localSearchInsertion(ins *Instance, seq []int, rng *rand.Rand) int64 {
	cur := ins.Makespan(seq)
	improved := true
	order := make([]int, len(seq))
	tmp := make([]int, 0, len(seq))
	for improved {
		improved = false
		for i := range order {
			order[i] = i
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pick := range order {
			// Find the picked job's current position (it moves as
			// the pass progresses).
			job := seq[pick%len(seq)]
			pos := -1
			for i, j := range seq {
				if j == job {
					pos = i
					break
				}
			}
			tmp = append(tmp[:0], seq[:pos]...)
			tmp = append(tmp, seq[pos+1:]...)
			cand := insertBest(ins, tmp, job)
			if c := ins.Makespan(cand); c < cur {
				copy(seq, cand)
				cur = c
				improved = true
			}
		}
	}
	return cur
}

// IteratedGreedy runs the IG_RS metaheuristic of Ruiz and Stützle: NEH
// seed, then repeated destruction (random job removal) and construction
// (greedy best-position reinsertion) with a simulated-annealing-like
// constant-temperature acceptance criterion. It returns the best schedule
// found and its makespan. It is this repository's upper-bound provider,
// standing in for the paper's initialization of the grid runs with the best
// known solutions (3681, then 3680).
func IteratedGreedy(ins *Instance, opt IGOptions) ([]int, int64) {
	if opt.Iterations <= 0 {
		opt = DefaultIGOptions()
	}
	if opt.DestructSize <= 0 {
		opt.DestructSize = 4
	}
	if opt.DestructSize > ins.Jobs {
		opt.DestructSize = ins.Jobs
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cur, curC := NEH(ins)
	if opt.LocalSearch {
		curC = localSearchInsertion(ins, cur, rng)
	}
	best := append([]int(nil), cur...)
	bestC := curC
	temp := opt.TemperatureFactor * float64(ins.TotalWork()) / float64(ins.Jobs*ins.Machines*10)
	work := make([]int, ins.Jobs)
	removed := make([]int, 0, opt.DestructSize)
	for it := 0; it < opt.Iterations; it++ {
		// Destruction: remove DestructSize distinct random positions.
		work = work[:0]
		work = append(work, cur...)
		removed = removed[:0]
		for d := 0; d < opt.DestructSize; d++ {
			pos := rng.Intn(len(work))
			removed = append(removed, work[pos])
			work = append(work[:pos], work[pos+1:]...)
		}
		// Construction: greedy reinsertion in removal order.
		for _, j := range removed {
			work = insertBest(ins, work, j)
		}
		cand := work
		candC := ins.Makespan(cand)
		if opt.LocalSearch {
			candC = localSearchInsertion(ins, cand, rng)
		}
		accept := candC <= curC
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-float64(candC-curC)/temp)
		}
		if accept {
			cur = append(cur[:0], cand...)
			curC = candC
			if curC < bestC {
				bestC = curC
				best = append(best[:0], cur...)
			}
		}
	}
	return best, bestC
}
