package flowshop

import (
	"fmt"
	"sort"
	"strings"
)

// TaillardRNG is the exact portable pseudo-random generator of Taillard
// (1993), "Benchmarks for basic scheduling problems", EJOR 64:278–285 —
// a Lehmer/Park-Miller linear congruential generator with Schrage's
// decomposition (a=16807, m=2^31-1). Reproducing it bit-exactly is what
// makes the generated instances identical to the published benchmark set,
// including the paper's Ta056.
type TaillardRNG struct {
	seed int64
}

// NewTaillardRNG seeds the generator. Valid seeds are 1..2^31-2; Taillard's
// published seeds all lie in that range.
func NewTaillardRNG(seed int64) *TaillardRNG {
	return &TaillardRNG{seed: seed}
}

// Unif draws a uniform integer in [low, high], advancing the generator,
// exactly as Taillard's unif() procedure.
func (r *TaillardRNG) Unif(low, high int64) int64 {
	const (
		m = 2147483647
		a = 16807
		b = 127773
		c = 2836
	)
	k := r.seed / b
	r.seed = a*(r.seed%b) - k*c
	if r.seed < 0 {
		r.seed += m
	}
	u := float64(r.seed) / float64(m)
	return low + int64(u*float64(high-low+1))
}

// Taillard generates a flowshop instance with the given dimensions and time
// seed using Taillard's procedure: processing times are drawn uniformly in
// [1, 99], machine-major (for each machine, for each job), then stored
// job-major here.
func Taillard(jobs, machines int, timeSeed int64) *Instance {
	rng := NewTaillardRNG(timeSeed)
	proc := make([][]int64, jobs)
	for j := range proc {
		proc[j] = make([]int64, machines)
	}
	for m := 0; m < machines; m++ {
		for j := 0; j < jobs; j++ {
			proc[j][m] = rng.Unif(1, 99)
		}
	}
	return &Instance{
		Name:     fmt.Sprintf("taillard-%dx%d-seed%d", jobs, machines, timeSeed),
		Jobs:     jobs,
		Machines: machines,
		Proc:     proc,
	}
}

// taGroup describes one published benchmark group: ten instances sharing
// dimensions, with their time seeds in instance order.
type taGroup struct {
	jobs, machines int
	first          int // index of the group's first instance (1-based, "taNNN")
	seeds          [10]int64
}

// taGroups is Taillard's published time-seed table for the flowshop
// benchmark sets Ta001–Ta120. The paper's instance Ta056 is the sixth
// 50x20 instance, time seed 1923497586 (§5.1: "the sixth instance generated
// for problems of 50 jobs on 20 machines").
var taGroups = []taGroup{
	{20, 5, 1, [10]int64{873654221, 379008056, 1866992158, 216771124, 495070989, 402959317, 1369363414, 2021925980, 573109518, 88325120}},
	{20, 10, 11, [10]int64{587595453, 1401007982, 873136276, 268827376, 1634173168, 691823909, 73807235, 1273398721, 2065119309, 1672900551}},
	{20, 20, 21, [10]int64{479340445, 268827376, 1958948863, 918272953, 555010963, 2010851491, 1519833303, 1748670931, 1923497586, 1829909967}},
	{50, 5, 31, [10]int64{1328042058, 200382020, 496319842, 1203030903, 1730708564, 450926852, 1303135678, 1273398721, 587288402, 248421594}},
	{50, 10, 41, [10]int64{1958948863, 575633267, 655816003, 1977864101, 93805469, 1803345551, 49612559, 1899802599, 2013025619, 578962478}},
	{50, 20, 51, [10]int64{1539989115, 691823909, 655816003, 1315102446, 1949668355, 1923497586, 1805594913, 1861070898, 715643788, 464843328}},
	{100, 5, 61, [10]int64{896678084, 1179439976, 1122278347, 416756875, 267829958, 1835213917, 1328833962, 1418570761, 161033112, 304212574}},
	{100, 10, 71, [10]int64{1539989115, 655816003, 960914243, 1915696806, 2013025619, 1168140026, 1923497586, 167698528, 1528387973, 993794175}},
	{100, 20, 81, [10]int64{450926852, 1462772409, 1021685265, 83696007, 508154254, 1861070898, 26482542, 444956424, 2115448041, 118254244}},
	{200, 10, 91, [10]int64{471503978, 1215892992, 135346136, 1602504050, 160037322, 551454346, 519485142, 383947510, 1968171878, 540872513}},
	{200, 20, 101, [10]int64{2013025619, 475051709, 914834335, 810642687, 1019331795, 2056065863, 1342855162, 1325809384, 1988803007, 765656702}},
	{500, 20, 111, [10]int64{1368624604, 450181436, 1927888393, 1759567256, 606425239, 19268348, 1298201670, 2041736264, 379756761, 28837162}},
}

// TaillardNamed returns the published benchmark instance with the given name
// ("ta001" .. "ta120", case-insensitive, leading zeros optional).
func TaillardNamed(name string) (*Instance, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.TrimPrefix(n, "ta")
	var idx int
	if _, err := fmt.Sscanf(n, "%d", &idx); err != nil {
		return nil, fmt.Errorf("flowshop: bad Taillard instance name %q", name)
	}
	return TaillardByIndex(idx)
}

// TaillardByIndex returns published instance number idx (1..120).
func TaillardByIndex(idx int) (*Instance, error) {
	for _, g := range taGroups {
		if idx >= g.first && idx < g.first+10 {
			ins := Taillard(g.jobs, g.machines, g.seeds[idx-g.first])
			ins.Name = fmt.Sprintf("ta%03d", idx)
			return ins, nil
		}
	}
	return nil, fmt.Errorf("flowshop: Taillard instance index %d out of range [1,120]", idx)
}

// TaillardIndices lists the published instance indices in ascending order,
// for enumeration tools.
func TaillardIndices() []int {
	var out []int
	for _, g := range taGroups {
		for i := 0; i < 10; i++ {
			out = append(out, g.first+i)
		}
	}
	sort.Ints(out)
	return out
}

// Reduced returns a new instance keeping only the first `jobs` jobs and the
// first `machines` machines of ins. It is the scaling tool of this
// reproduction: exact resolution of Ta056 itself needs 22 CPU-years
// (paper Table 2), so experiments run on reduced prefixes of the very same
// published data, preserving its processing-time distribution.
func (ins *Instance) Reduced(jobs, machines int) (*Instance, error) {
	if jobs <= 0 || jobs > ins.Jobs || machines <= 0 || machines > ins.Machines {
		return nil, fmt.Errorf("flowshop: cannot reduce %s to %dx%d", ins, jobs, machines)
	}
	proc := make([][]int64, jobs)
	for j := 0; j < jobs; j++ {
		proc[j] = append([]int64(nil), ins.Proc[j][:machines]...)
	}
	return &Instance{
		Name:     fmt.Sprintf("%s-reduced-%dx%d", ins.Name, jobs, machines),
		Jobs:     jobs,
		Machines: machines,
		Proc:     proc,
	}, nil
}
