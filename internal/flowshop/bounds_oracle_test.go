package flowshop

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bb"
)

// This file pins the cutoff-aware Bound rework to the seed implementation:
// referenceBounder is a faithful port of the original stateless bound (one
// full minima pass per call, no cutoff, no early exits). The randomized
// oracle asserts, over hundreds of instances × prefixes × cutoffs, that
//
//   - Bound(bb.Infinity) equals the reference exactly (the full bound);
//   - Bound(cutoff) >= cutoff exactly when reference >= cutoff (identical
//     pruning decisions, hence identical engine statistics);
//   - Bound(cutoff) never exceeds the reference (every early return is
//     itself an admissible lower bound).

// referenceBounder is the seed bound implementation, retained verbatim in
// spirit: precomputed tails/cum tables, per-call minima scan, full
// one-machine and Johnson evaluations.
type referenceBounder struct {
	ins   *Instance
	kind  BoundKind
	tails [][]int64
	cum   [][]int64
	pairs []refPair
}

type refPair struct {
	u, v  int
	order []int
}

func newReferenceBounder(ins *Instance, kind BoundKind, ps PairStrategy) *referenceBounder {
	b := &referenceBounder{
		ins:   ins,
		kind:  kind,
		tails: make([][]int64, ins.Jobs),
		cum:   make([][]int64, ins.Jobs),
	}
	for j := 0; j < ins.Jobs; j++ {
		b.tails[j] = make([]int64, ins.Machines)
		b.cum[j] = make([]int64, ins.Machines)
		var t int64
		for m := ins.Machines - 2; m >= 0; m-- {
			t += ins.Proc[j][m+1]
			b.tails[j][m] = t
		}
		var c int64
		for m := 1; m < ins.Machines; m++ {
			c += ins.Proc[j][m-1]
			b.cum[j][m] = c
		}
	}
	if kind == BoundTwoMachine || kind == BoundCombined {
		b.buildPairs(ps)
	}
	return b
}

func (b *referenceBounder) lag(j, u, v int) int64 {
	return b.cum[j][v] - b.cum[j][u+1]
}

func (b *referenceBounder) buildPairs(ps PairStrategy) {
	M := b.ins.Machines
	add := func(u, v int) {
		if u < 0 || v >= M || u >= v {
			return
		}
		b.pairs = append(b.pairs, b.makePair(u, v))
	}
	switch ps {
	case PairsAll:
		for u := 0; u < M; u++ {
			for v := u + 1; v < M; v++ {
				add(u, v)
			}
		}
	case PairsAdjacent:
		for u := 0; u+1 < M; u++ {
			add(u, u+1)
		}
	case PairsFirstLast:
		for v := 1; v < M; v++ {
			add(0, v)
		}
		for u := 1; u < M-1; u++ {
			add(u, M-1)
		}
	}
}

func (b *referenceBounder) makePair(u, v int) refPair {
	ins := b.ins
	order := make([]int, ins.Jobs)
	for j := range order {
		order[j] = j
	}
	type key struct {
		groupB bool
		k      int64
		j      int
	}
	keys := make([]key, ins.Jobs)
	for j := 0; j < ins.Jobs; j++ {
		l := b.lag(j, u, v)
		a := ins.Proc[j][u] + l
		bb := l + ins.Proc[j][v]
		if a <= bb {
			keys[j] = key{groupB: false, k: a, j: j}
		} else {
			keys[j] = key{groupB: true, k: -bb, j: j}
		}
	}
	sort.Slice(order, func(x, y int) bool {
		kx, ky := keys[order[x]], keys[order[y]]
		if kx.groupB != ky.groupB {
			return !kx.groupB
		}
		if kx.k != ky.k {
			return kx.k < ky.k
		}
		return kx.j < ky.j
	})
	return refPair{u: u, v: v, order: order}
}

// bound evaluates the seed bound for the partial schedule `prefix`.
func (b *referenceBounder) bound(prefix []int) int64 {
	ins := b.ins
	M := ins.Machines
	heads := make([]int64, M)
	for _, j := range prefix {
		c := heads[0] + ins.Proc[j][0]
		heads[0] = c
		for m := 1; m < M; m++ {
			if c < heads[m] {
				c = heads[m]
			}
			c += ins.Proc[j][m]
			heads[m] = c
		}
	}
	inRemaining := make([]bool, ins.Jobs)
	for j := range inRemaining {
		inRemaining[j] = true
	}
	for _, j := range prefix {
		inRemaining[j] = false
	}
	var remaining []int
	sumRem := make([]int64, M)
	for j := 0; j < ins.Jobs; j++ {
		if !inRemaining[j] {
			continue
		}
		remaining = append(remaining, j)
		for m := 0; m < M; m++ {
			sumRem[m] += ins.Proc[j][m]
		}
	}
	if len(remaining) == 0 {
		return heads[M-1]
	}
	minTail := make([]int64, M)
	minCum := make([]int64, M)
	for m := 0; m < M; m++ {
		minTail[m] = int64(1) << 62
		minCum[m] = int64(1) << 62
	}
	for _, j := range remaining {
		for m := 0; m < M; m++ {
			if b.tails[j][m] < minTail[m] {
				minTail[m] = b.tails[j][m]
			}
			if b.cum[j][m] < minCum[m] {
				minCum[m] = b.cum[j][m]
			}
		}
	}
	var lb int64
	if b.kind == BoundOneMachine || b.kind == BoundCombined {
		for m := 0; m < M; m++ {
			rel := heads[m]
			if r := heads[0] + minCum[m]; r > rel {
				rel = r
			}
			if v := rel + sumRem[m] + minTail[m]; v > lb {
				lb = v
			}
		}
	}
	if b.kind == BoundTwoMachine || b.kind == BoundCombined {
		for i := range b.pairs {
			p := &b.pairs[i]
			relU := heads[p.u]
			if r := heads[0] + minCum[p.u]; r > relU {
				relU = r
			}
			c1, c2 := relU, heads[p.v]
			for _, j := range p.order {
				if !inRemaining[j] {
					continue
				}
				c1 += b.ins.Proc[j][p.u]
				t := c1 + b.lag(j, p.u, p.v)
				if c2 < t {
					c2 = t
				}
				c2 += b.ins.Proc[j][p.v]
			}
			if v := c2 + minTail[p.v]; v > lb {
				lb = v
			}
		}
	}
	return lb
}

// TestBoundCutoffOracle is the randomized equivalence oracle of the
// cutoff-aware bound rework.
func TestBoundCutoffOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	kinds := []BoundKind{BoundOneMachine, BoundTwoMachine, BoundCombined}
	strategies := []PairStrategy{PairsAll, PairsAdjacent, PairsFirstLast}
	for trial := 0; trial < 200; trial++ {
		jobs := 3 + rng.Intn(7)
		machines := 2 + rng.Intn(5)
		ins := Taillard(jobs, machines, int64(trial+1))
		kind := kinds[trial%len(kinds)]
		ps := strategies[rng.Intn(len(strategies))]
		p := NewProblem(ins, kind, ps)
		ref := newReferenceBounder(ins, kind, ps)
		for probe := 0; probe < 8; probe++ {
			prefixLen := rng.Intn(jobs) // Bound is never called on leaves
			prefix := rng.Perm(jobs)[:prefixLen]
			p.Reset()
			ranks, err := PathOfPermutation(jobs, prefix)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range ranks {
				p.Descend(r)
			}
			want := ref.bound(prefix)
			if got := p.Bound(bb.Infinity); got != want {
				t.Fatalf("trial %d (%s, kind %d, ps %d) prefix %v: Bound(Infinity) = %d, reference = %d",
					trial, ins.Name, kind, ps, prefix, got, want)
			}
			cutoffs := []int64{1, want - 7, want - 1, want, want + 1, want + 7,
				want/2 + 1, 2*want + 1, want + rng.Int63n(50)}
			for _, c := range cutoffs {
				got := p.Bound(c)
				if (got >= c) != (want >= c) {
					t.Fatalf("trial %d (%s, kind %d, ps %d) prefix %v cutoff %d: Bound = %d prunes=%v, reference %d prunes=%v",
						trial, ins.Name, kind, ps, prefix, c, got, got >= c, want, want >= c)
				}
				if got > want {
					t.Fatalf("trial %d (%s, kind %d, ps %d) prefix %v cutoff %d: Bound = %d exceeds the exact bound %d (not admissible)",
						trial, ins.Name, kind, ps, prefix, c, got, want)
				}
			}
		}
	}
}
