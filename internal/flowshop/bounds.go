package flowshop

import "sort"

// BoundKind selects the lower-bound family used by the B&B bounding
// operator. The paper does not spell out its bound; the DOLPHIN team's
// flowshop B&B traditionally combines the one-machine bound with the
// two-machine (Johnson) bound of Lageweg et al., both implemented here.
type BoundKind int

const (
	// BoundOneMachine is the classical single-machine relaxation: for
	// every machine m, every remaining job must run on m after the
	// prefix's completion time, and the last one still needs its minimal
	// tail to exit the shop. Cheap (O(N·M) per node) and reasonably
	// tight.
	BoundOneMachine BoundKind = iota
	// BoundTwoMachine is the two-machine relaxation with time lags:
	// for machine pairs (u,v) the remaining jobs form an F2|l_j|Cmax
	// instance solved exactly by Johnson's rule (with Mitten's lag
	// extension); orders are precomputed per pair so evaluation is
	// O(pairs·N) per node. Dominates the one-machine bound on the pairs
	// it inspects, at a higher per-node cost.
	BoundTwoMachine
	// BoundCombined takes the max of both families.
	BoundCombined
)

// PairStrategy selects which machine pairs the two-machine bound inspects.
type PairStrategy int

const (
	// PairsAll inspects all M(M-1)/2 ordered pairs: the tightest and the
	// most expensive.
	PairsAll PairStrategy = iota
	// PairsAdjacent inspects only (m, m+1): M-1 pairs.
	PairsAdjacent
	// PairsFirstLast inspects (0, m) and (m, M-1): about 2M pairs,
	// a common compromise.
	PairsFirstLast
)

// Bounder computes lower bounds for partial flowshop schedules. It owns all
// precomputed tables and scratch space; it is not safe for concurrent use
// (each worker builds its own, mirroring one B&B process per processor in
// the paper).
//
// Bound is cutoff-aware (see bb.Problem): evaluation is staged from cheapest
// to most expensive component and returns as soon as any stage proves the
// bound >= cutoff, so the hopeless nodes that dominate a B&B run mostly pay
// the scan-free first stage only.
//
// The per-machine minima over the remaining jobs (minTail, minCum) that both
// bound families consume are not rescanned per node: the owner keeps the
// Bounder synchronized with the search path through Push/Pop (counter
// updates, nothing else), and the minima row for the current depth is
// materialized lazily, only when a Bound call survives the scan-free first
// stage. Materialization jumps from the nearest still-valid ancestor row
// with argmin tracking — a machine's minimum carries over as long as its
// argmin job is still unscheduled, so the expected cost is O(M) with only
// the occasional O(remaining) single-machine rescan, instead of the O(N·M)
// full scan a stateless bound pays on every surviving node. Nodes that
// prune at stage one (the vast majority deep in the tree) touch none of it.
type Bounder struct {
	ins  *Instance
	kind BoundKind

	// tails[j][m] = sum of p[j][k] for k > m: time job j still needs
	// after finishing machine m.
	tails [][]int64
	// cum[j][m] = sum of p[j][k] for k < m: time job j needs before
	// reaching machine m.
	cum [][]int64
	// tailsT and cumT are the transposed tables ([m][j]), so the
	// single-machine rescans triggered by an argmin removal walk
	// contiguous memory.
	tailsT [][]int64
	cumT   [][]int64
	// gMinTail and gMinCum are the per-machine minima over ALL jobs:
	// constant lower bounds of the remaining-set minima (which are minima
	// over a subset), letting the scan-free first bound stage approximate
	// the full one-machine bound without knowing which jobs remain.
	gMinTail []int64
	gMinCum  []int64

	pairs []johnsonPair

	// Minima stack, one row per search depth; row sDepth describes the
	// current remaining set when valid[sDepth] holds, and is rebuilt
	// lazily otherwise. arg*S[d][m] is a remaining job achieving the
	// minimum (-1 when no job remains).
	sDepth   int
	valid    []bool
	minTailS [][]int64
	minCumS  [][]int64
	argTailS [][]int
	argCumS  [][]int
}

// johnsonPair holds the precomputed Johnson order for the two-machine
// relaxation on machines (u, v), u < v, with lags l_j = sum of p[j][k] for
// u < k < v. The per-job terms of the F2|l_j|Cmax recurrence are flattened
// into slices aligned with the Johnson order, so the per-node evaluation
// walks three flat arrays instead of chasing the 2-D processing and
// cumulative tables.
type johnsonPair struct {
	u, v  int
	order []int   // all jobs, Johnson-sorted; evaluation skips scheduled ones
	pu    []int64 // pu[i] = Proc[order[i]][u]
	lag   []int64 // lag[i] = Mitten lag of order[i] between u and v
	pv    []int64 // pv[i] = Proc[order[i]][v]
}

// NewBounder builds a bounder of the given kind. The pair strategy is only
// consulted for the two-machine kinds.
func NewBounder(ins *Instance, kind BoundKind, ps PairStrategy) *Bounder {
	b := &Bounder{
		ins:      ins,
		kind:     kind,
		tails:    make([][]int64, ins.Jobs),
		cum:      make([][]int64, ins.Jobs),
		tailsT:   make([][]int64, ins.Machines),
		cumT:     make([][]int64, ins.Machines),
		minTailS: make([][]int64, ins.Jobs+1),
		minCumS:  make([][]int64, ins.Jobs+1),
		argTailS: make([][]int, ins.Jobs+1),
		argCumS:  make([][]int, ins.Jobs+1),
	}
	for m := 0; m < ins.Machines; m++ {
		b.tailsT[m] = make([]int64, ins.Jobs)
		b.cumT[m] = make([]int64, ins.Jobs)
	}
	for j := 0; j < ins.Jobs; j++ {
		b.tails[j] = make([]int64, ins.Machines)
		b.cum[j] = make([]int64, ins.Machines)
		var t int64
		for m := ins.Machines - 2; m >= 0; m-- {
			t += ins.Proc[j][m+1]
			b.tails[j][m] = t
		}
		var c int64
		for m := 1; m < ins.Machines; m++ {
			c += ins.Proc[j][m-1]
			b.cum[j][m] = c
		}
		for m := 0; m < ins.Machines; m++ {
			b.tailsT[m][j] = b.tails[j][m]
			b.cumT[m][j] = b.cum[j][m]
		}
	}
	b.gMinTail = make([]int64, ins.Machines)
	b.gMinCum = make([]int64, ins.Machines)
	all := make([]int, ins.Jobs)
	for j := range all {
		all[j] = j
	}
	for m := 0; m < ins.Machines; m++ {
		b.gMinTail[m], _ = scanMin(b.tailsT[m], all)
		b.gMinCum[m], _ = scanMin(b.cumT[m], all)
	}
	b.valid = make([]bool, ins.Jobs+1)
	for d := 0; d <= ins.Jobs; d++ {
		b.minTailS[d] = make([]int64, ins.Machines)
		b.minCumS[d] = make([]int64, ins.Machines)
		b.argTailS[d] = make([]int, ins.Machines)
		b.argCumS[d] = make([]int, ins.Machines)
	}
	if kind == BoundTwoMachine || kind == BoundCombined {
		b.buildPairs(ps)
	}
	return b
}

// ResetStack (re)initializes the minima stack for the full remaining set.
// The owner calls it whenever the search path returns to the root (see
// Problem.Reset); remaining must list every job.
func (b *Bounder) ResetStack(remaining []int) {
	b.sDepth = 0
	for d := range b.valid {
		b.valid[d] = false
	}
	for m := 0; m < b.ins.Machines; m++ {
		b.minTailS[0][m], b.argTailS[0][m] = scanMin(b.tailsT[m], remaining)
		b.minCumS[0][m], b.argCumS[0][m] = scanMin(b.cumT[m], remaining)
	}
	b.valid[0] = true
}

// scanMin finds the minimum of table over the given jobs and a job
// achieving it (-1 when jobs is empty).
func scanMin(table []int64, jobs []int) (int64, int) {
	min, arg := int64(1)<<62, -1
	for _, j := range jobs {
		if table[j] < min {
			min, arg = table[j], j
		}
	}
	return min, arg
}

// Push descends one level: one more job left the remaining set, so the row
// for the new depth — whatever a previous visit left there — no longer
// describes it. Deliberately O(1): nodes whose Bound call never gets past
// the scan-free first stage (and leaves, whose Bound is never called) must
// not pay for minima bookkeeping they do not use.
func (b *Bounder) Push() {
	b.sDepth++
	b.valid[b.sDepth] = false
}

// Pop ascends one level, restoring the minima of the re-grown remaining set
// (rows below the top are never clobbered, so this is a counter decrement;
// an ancestor row stays valid until a Push overwrites its depth again).
func (b *Bounder) Pop() {
	b.sDepth--
}

// topMinima returns the minTail/minCum rows for the current depth,
// materializing them if the walk moved since they were last built. The jump
// starts from the nearest valid ancestor row: its minima are over a superset
// of the current remaining set, so wherever the recorded argmin job is still
// remaining the value is carried as-is, and only the machines whose argmin
// has since been scheduled rescan their (contiguous, transposed) column.
func (b *Bounder) topMinima(remaining []int, inRemaining []bool) (minTail, minCum []int64) {
	d := b.sDepth
	if !b.valid[d] {
		v := d - 1
		for !b.valid[v] {
			v--
		}
		M := b.ins.Machines
		st, sc := b.minTailS[v][:M], b.minCumS[v][:M]
		sat, sac := b.argTailS[v][:M], b.argCumS[v][:M]
		nt, nc := b.minTailS[d][:M], b.minCumS[d][:M]
		nat, nac := b.argTailS[d][:M], b.argCumS[d][:M]
		for m := 0; m < M; m++ {
			if a := sat[m]; a >= 0 && inRemaining[a] {
				nt[m], nat[m] = st[m], a
			} else {
				nt[m], nat[m] = scanMin(b.tailsT[m], remaining)
			}
			if a := sac[m]; a >= 0 && inRemaining[a] {
				nc[m], nac[m] = sc[m], a
			} else {
				nc[m], nac[m] = scanMin(b.cumT[m], remaining)
			}
		}
		b.valid[d] = true
	}
	return b.minTailS[d], b.minCumS[d]
}

func (b *Bounder) buildPairs(ps PairStrategy) {
	M := b.ins.Machines
	add := func(u, v int) {
		if u < 0 || v >= M || u >= v {
			return
		}
		b.pairs = append(b.pairs, b.makePair(u, v))
	}
	switch ps {
	case PairsAll:
		for u := 0; u < M; u++ {
			for v := u + 1; v < M; v++ {
				add(u, v)
			}
		}
	case PairsAdjacent:
		for u := 0; u+1 < M; u++ {
			add(u, u+1)
		}
	case PairsFirstLast:
		for v := 1; v < M; v++ {
			add(0, v)
		}
		for u := 1; u < M-1; u++ {
			add(u, M-1)
		}
	}
}

// lag returns the Mitten time lag of job j between machines u and v.
func (b *Bounder) lag(j, u, v int) int64 {
	return b.cum[j][v] - b.cum[j][u+1]
}

func (b *Bounder) makePair(u, v int) johnsonPair {
	ins := b.ins
	order := make([]int, ins.Jobs)
	for j := range order {
		order[j] = j
	}
	// Johnson's rule on the modified times a = p_u + lag, b = lag + p_v
	// (Mitten): group A = {a <= b} by ascending a, then group B by
	// descending b. Ties broken by job index for determinism.
	type key struct {
		groupB bool
		k      int64
		j      int
	}
	keys := make([]key, ins.Jobs)
	for j := 0; j < ins.Jobs; j++ {
		l := b.lag(j, u, v)
		a := ins.Proc[j][u] + l
		bb := l + ins.Proc[j][v]
		if a <= bb {
			keys[j] = key{groupB: false, k: a, j: j}
		} else {
			keys[j] = key{groupB: true, k: -bb, j: j}
		}
	}
	sort.Slice(order, func(x, y int) bool {
		kx, ky := keys[order[x]], keys[order[y]]
		if kx.groupB != ky.groupB {
			return !kx.groupB
		}
		if kx.k != ky.k {
			return kx.k < ky.k
		}
		return kx.j < ky.j
	})
	p := johnsonPair{
		u: u, v: v, order: order,
		pu:  make([]int64, ins.Jobs),
		lag: make([]int64, ins.Jobs),
		pv:  make([]int64, ins.Jobs),
	}
	for i, j := range order {
		p.pu[i] = ins.Proc[j][u]
		p.lag[i] = b.lag(j, u, v)
		p.pv[i] = ins.Proc[j][v]
	}
	return p
}

// Bound returns a lower bound on the makespan of every completion of the
// partial schedule described by:
//
//   - heads: completion time of the prefix on each machine;
//   - remaining: the unscheduled jobs (any order);
//   - inRemaining: membership mask over job ids (len = Jobs);
//   - sumRem: per-machine total processing time of the remaining jobs.
//
// The caller maintains those incrementally (see problem.go). When no job
// remains the bound is exactly the prefix makespan.
//
// Bound follows the cutoff contract of bb.Problem: the result is an
// admissible lower bound, it is exact when below cutoff, and evaluation
// stops at the first stage whose partial value reaches cutoff. Stages, in
// order of cost:
//
//  1. machine-load bound max_m(heads[m] + sumRem[m]) — no scan at all, the
//     incremental sums suffice (one-machine family only);
//  2. the full one-machine bound, reading the incrementally maintained
//     per-machine minTail/minCum minima (see Push) — O(M), no scan;
//  3. the Johnson pairs, each evaluation abandoned the moment its running
//     completion time plus the minimal tail reaches cutoff (the running
//     value is itself admissible, so returning it early is sound).
//
// The caller must have kept the minima stack synchronized through
// Push/Pop/ResetStack: sDepth must equal Jobs - len(remaining).
func (b *Bounder) Bound(heads []int64, remaining []int, inRemaining []bool, sumRem []int64, cutoff int64) int64 {
	M := b.ins.Machines
	if len(remaining) == 0 {
		return heads[M-1]
	}
	oneEnabled := b.kind == BoundOneMachine || b.kind == BoundCombined
	var lb int64
	if oneEnabled {
		// Stage 1: the one-machine bound with the constant whole-instance
		// minima standing in for the remaining-set ones. Every term is a
		// lower bound of its stage-2 counterpart (gMin* <= min over any
		// remaining subset), so the value is admissible and the early
		// exit prunes only where the full bound would have — at the cost
		// of one machine sweep over data that is already in registers or
		// L1, with no per-remaining-job work at all. The sweep runs from
		// the last machine down because the accumulated heads make late
		// machines the usual bottleneck: pruned nodes — the common case
		// deep in the tree — mostly exit within the first iterations.
		h0 := heads[0]
		gc, gt := b.gMinCum, b.gMinTail
		for m := M - 1; m >= 0; m-- {
			rel := heads[m]
			if r := h0 + gc[m]; r > rel {
				rel = r
			}
			if v := rel + sumRem[m] + gt[m]; v > lb {
				if v >= cutoff {
					return v
				}
				lb = v
			}
		}
	}
	minTail, minCum := b.topMinima(remaining, inRemaining)
	if oneEnabled {
		// Stage 2: the full one-machine bound — for each machine m,
		// release(m) + sumRem[m] + minTail[m], where release(m) =
		// max(heads[m], heads[0] + minCum[m]): machine m is busy until
		// heads[m], no remaining job can reach it before passing
		// machines 0..m-1 (which cannot start before heads[0]), and the
		// last job still needs its minimal tail to exit the shop. Same
		// bottleneck-first sweep and in-loop exit as stage 1.
		h0 := heads[0]
		for m := M - 1; m >= 0; m-- {
			rel := heads[m]
			if r := h0 + minCum[m]; r > rel {
				rel = r
			}
			if v := rel + sumRem[m] + minTail[m]; v > lb {
				if v >= cutoff {
					return v
				}
				lb = v
			}
		}
	}
	if b.kind == BoundTwoMachine || b.kind == BoundCombined {
		// Stage 3: the Johnson pairs.
		if v := b.twoMachine(heads, inRemaining, cutoff, minTail, minCum); v > lb {
			lb = v
		}
	}
	return lb
}

// twoMachine: LB = max over precomputed pairs (u,v) of
//
//	Johnson makespan of the remaining jobs on (u,v) with lags,
//	started at the machines' release times, plus the minimal tail
//	after v.
//
// The completion time c2 never decreases as jobs are appended, so the
// moment c2 + minTail[v] reaches cutoff the pair — and the whole bound —
// is already proved >= cutoff and the partial value is returned: it is a
// lower bound on this pair's final value, hence admissible.
func (b *Bounder) twoMachine(heads []int64, inRemaining []bool, cutoff int64, minTail, minCum []int64) int64 {
	var lb int64
	for i := range b.pairs {
		p := &b.pairs[i]
		relU := heads[p.u]
		if r := heads[0] + minCum[p.u]; r > relU {
			relU = r
		}
		tail := minTail[p.v]
		c1, c2 := relU, heads[p.v]
		for k, j := range p.order {
			if !inRemaining[j] {
				continue
			}
			c1 += p.pu[k]
			if t := c1 + p.lag[k]; c2 < t {
				c2 = t
			}
			c2 += p.pv[k]
			if c2+tail >= cutoff {
				return c2 + tail
			}
		}
		if v := c2 + tail; v > lb {
			lb = v
		}
	}
	return lb
}

// Johnson returns an optimal permutation and its makespan for a two-machine
// instance (Johnson 1954). It errors via panic if the instance has a
// different machine count, which is a programming error. It doubles as an
// independent oracle for two-machine B&B tests.
func Johnson(ins *Instance) ([]int, int64) {
	if ins.Machines != 2 {
		panic("flowshop: Johnson requires exactly 2 machines")
	}
	perm := make([]int, ins.Jobs)
	for j := range perm {
		perm[j] = j
	}
	sort.Slice(perm, func(x, y int) bool {
		jx, jy := perm[x], perm[y]
		ax, bx := ins.Proc[jx][0], ins.Proc[jx][1]
		ay, by := ins.Proc[jy][0], ins.Proc[jy][1]
		gx, gy := ax > bx, ay > by // false = group A (a<=b)
		if gx != gy {
			return !gx
		}
		if !gx {
			if ax != ay {
				return ax < ay
			}
			return jx < jy
		}
		if bx != by {
			return bx > by
		}
		return jx < jy
	})
	return perm, ins.Makespan(perm)
}
