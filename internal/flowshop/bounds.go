package flowshop

import "sort"

// BoundKind selects the lower-bound family used by the B&B bounding
// operator. The paper does not spell out its bound; the DOLPHIN team's
// flowshop B&B traditionally combines the one-machine bound with the
// two-machine (Johnson) bound of Lageweg et al., both implemented here.
type BoundKind int

const (
	// BoundOneMachine is the classical single-machine relaxation: for
	// every machine m, every remaining job must run on m after the
	// prefix's completion time, and the last one still needs its minimal
	// tail to exit the shop. Cheap (O(N·M) per node) and reasonably
	// tight.
	BoundOneMachine BoundKind = iota
	// BoundTwoMachine is the two-machine relaxation with time lags:
	// for machine pairs (u,v) the remaining jobs form an F2|l_j|Cmax
	// instance solved exactly by Johnson's rule (with Mitten's lag
	// extension); orders are precomputed per pair so evaluation is
	// O(pairs·N) per node. Dominates the one-machine bound on the pairs
	// it inspects, at a higher per-node cost.
	BoundTwoMachine
	// BoundCombined takes the max of both families.
	BoundCombined
)

// PairStrategy selects which machine pairs the two-machine bound inspects.
type PairStrategy int

const (
	// PairsAll inspects all M(M-1)/2 ordered pairs: the tightest and the
	// most expensive.
	PairsAll PairStrategy = iota
	// PairsAdjacent inspects only (m, m+1): M-1 pairs.
	PairsAdjacent
	// PairsFirstLast inspects (0, m) and (m, M-1): about 2M pairs,
	// a common compromise.
	PairsFirstLast
)

// Bounder computes lower bounds for partial flowshop schedules. It owns all
// precomputed tables and scratch space; it is not safe for concurrent use
// (each worker builds its own, mirroring one B&B process per processor in
// the paper).
type Bounder struct {
	ins  *Instance
	kind BoundKind

	// tails[j][m] = sum of p[j][k] for k > m: time job j still needs
	// after finishing machine m.
	tails [][]int64
	// cum[j][m] = sum of p[j][k] for k < m: time job j needs before
	// reaching machine m.
	cum [][]int64

	pairs []johnsonPair

	// Scratch, reused across Bound calls.
	minTail []int64
	minCum  []int64
}

// johnsonPair holds the precomputed Johnson order for the two-machine
// relaxation on machines (u, v), u < v, with lags l_j = sum of p[j][k] for
// u < k < v.
type johnsonPair struct {
	u, v  int
	order []int // all jobs, Johnson-sorted; evaluation skips scheduled ones
}

// NewBounder builds a bounder of the given kind. The pair strategy is only
// consulted for the two-machine kinds.
func NewBounder(ins *Instance, kind BoundKind, ps PairStrategy) *Bounder {
	b := &Bounder{
		ins:     ins,
		kind:    kind,
		tails:   make([][]int64, ins.Jobs),
		cum:     make([][]int64, ins.Jobs),
		minTail: make([]int64, ins.Machines),
		minCum:  make([]int64, ins.Machines),
	}
	for j := 0; j < ins.Jobs; j++ {
		b.tails[j] = make([]int64, ins.Machines)
		b.cum[j] = make([]int64, ins.Machines)
		var t int64
		for m := ins.Machines - 2; m >= 0; m-- {
			t += ins.Proc[j][m+1]
			b.tails[j][m] = t
		}
		var c int64
		for m := 1; m < ins.Machines; m++ {
			c += ins.Proc[j][m-1]
			b.cum[j][m] = c
		}
	}
	if kind == BoundTwoMachine || kind == BoundCombined {
		b.buildPairs(ps)
	}
	return b
}

func (b *Bounder) buildPairs(ps PairStrategy) {
	M := b.ins.Machines
	add := func(u, v int) {
		if u < 0 || v >= M || u >= v {
			return
		}
		b.pairs = append(b.pairs, b.makePair(u, v))
	}
	switch ps {
	case PairsAll:
		for u := 0; u < M; u++ {
			for v := u + 1; v < M; v++ {
				add(u, v)
			}
		}
	case PairsAdjacent:
		for u := 0; u+1 < M; u++ {
			add(u, u+1)
		}
	case PairsFirstLast:
		for v := 1; v < M; v++ {
			add(0, v)
		}
		for u := 1; u < M-1; u++ {
			add(u, M-1)
		}
	}
}

// lag returns the Mitten time lag of job j between machines u and v.
func (b *Bounder) lag(j, u, v int) int64 {
	return b.cum[j][v] - b.cum[j][u+1]
}

func (b *Bounder) makePair(u, v int) johnsonPair {
	ins := b.ins
	order := make([]int, ins.Jobs)
	for j := range order {
		order[j] = j
	}
	// Johnson's rule on the modified times a = p_u + lag, b = lag + p_v
	// (Mitten): group A = {a <= b} by ascending a, then group B by
	// descending b. Ties broken by job index for determinism.
	type key struct {
		groupB bool
		k      int64
		j      int
	}
	keys := make([]key, ins.Jobs)
	for j := 0; j < ins.Jobs; j++ {
		l := b.lag(j, u, v)
		a := ins.Proc[j][u] + l
		bb := l + ins.Proc[j][v]
		if a <= bb {
			keys[j] = key{groupB: false, k: a, j: j}
		} else {
			keys[j] = key{groupB: true, k: -bb, j: j}
		}
	}
	sort.Slice(order, func(x, y int) bool {
		kx, ky := keys[order[x]], keys[order[y]]
		if kx.groupB != ky.groupB {
			return !kx.groupB
		}
		if kx.k != ky.k {
			return kx.k < ky.k
		}
		return kx.j < ky.j
	})
	return johnsonPair{u: u, v: v, order: order}
}

// Bound returns a lower bound on the makespan of every completion of the
// partial schedule described by:
//
//   - heads: completion time of the prefix on each machine;
//   - remaining: the unscheduled jobs (any order);
//   - inRemaining: membership mask over job ids (len = Jobs);
//   - sumRem: per-machine total processing time of the remaining jobs.
//
// The caller maintains those incrementally (see problem.go). When no job
// remains the bound is exactly the prefix makespan.
func (b *Bounder) Bound(heads []int64, remaining []int, inRemaining []bool, sumRem []int64) int64 {
	M := b.ins.Machines
	if len(remaining) == 0 {
		return heads[M-1]
	}
	// One pass over remaining jobs fills the per-machine minima used by
	// both bound families.
	for m := 0; m < M; m++ {
		b.minTail[m] = int64(1) << 62
		b.minCum[m] = int64(1) << 62
	}
	for _, j := range remaining {
		tj, cj := b.tails[j], b.cum[j]
		for m := 0; m < M; m++ {
			if tj[m] < b.minTail[m] {
				b.minTail[m] = tj[m]
			}
			if cj[m] < b.minCum[m] {
				b.minCum[m] = cj[m]
			}
		}
	}
	var lb int64
	if b.kind == BoundOneMachine || b.kind == BoundCombined {
		lb = b.oneMachine(heads, sumRem)
	}
	if b.kind == BoundTwoMachine || b.kind == BoundCombined {
		if v := b.twoMachine(heads, inRemaining); v > lb {
			lb = v
		}
	}
	return lb
}

// oneMachine: LB = max over machines m of
//
//	release(m) + sumRem[m] + minTail[m]
//
// where release(m) = max(heads[m], heads[0] + minCum[m]): machine m is busy
// until heads[m], and no remaining job can even reach machine m before
// passing machines 0..m-1, which cannot start before heads[0].
func (b *Bounder) oneMachine(heads []int64, sumRem []int64) int64 {
	var lb int64
	for m := 0; m < b.ins.Machines; m++ {
		rel := heads[m]
		if r := heads[0] + b.minCum[m]; r > rel {
			rel = r
		}
		v := rel + sumRem[m] + b.minTail[m]
		if v > lb {
			lb = v
		}
	}
	return lb
}

// twoMachine: LB = max over precomputed pairs (u,v) of
//
//	Johnson makespan of the remaining jobs on (u,v) with lags,
//	started at the machines' release times, plus the minimal tail
//	after v.
func (b *Bounder) twoMachine(heads []int64, inRemaining []bool) int64 {
	var lb int64
	for i := range b.pairs {
		p := &b.pairs[i]
		relU := heads[p.u]
		if r := heads[0] + b.minCum[p.u]; r > relU {
			relU = r
		}
		relV := heads[p.v]
		c1, c2 := relU, relV
		for _, j := range p.order {
			if !inRemaining[j] {
				continue
			}
			c1 += b.ins.Proc[j][p.u]
			t := c1 + b.lag(j, p.u, p.v)
			if c2 < t {
				c2 = t
			}
			c2 += b.ins.Proc[j][p.v]
		}
		v := c2 + b.minTail[p.v]
		if v > lb {
			lb = v
		}
	}
	return lb
}

// Johnson returns an optimal permutation and its makespan for a two-machine
// instance (Johnson 1954). It errors via panic if the instance has a
// different machine count, which is a programming error. It doubles as an
// independent oracle for two-machine B&B tests.
func Johnson(ins *Instance) ([]int, int64) {
	if ins.Machines != 2 {
		panic("flowshop: Johnson requires exactly 2 machines")
	}
	perm := make([]int, ins.Jobs)
	for j := range perm {
		perm[j] = j
	}
	sort.Slice(perm, func(x, y int) bool {
		jx, jy := perm[x], perm[y]
		ax, bx := ins.Proc[jx][0], ins.Proc[jx][1]
		ay, by := ins.Proc[jy][0], ins.Proc[jy][1]
		gx, gy := ax > bx, ay > by // false = group A (a<=b)
		if gx != gy {
			return !gx
		}
		if !gx {
			if ax != ay {
				return ax < ay
			}
			return jx < jy
		}
		if bx != by {
			return bx > by
		}
		return jx < jy
	})
	return perm, ins.Makespan(perm)
}
