package flowshop

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Problem adapts a flowshop instance to the generic bb.Problem interface:
// the search tree is the permutation tree of the instance's jobs (paper
// §3.1), a node at depth d fixes the first d jobs of the schedule, and the
// canonical child order — hence the node numbering shared by every process —
// is ascending job index among unscheduled jobs.
//
// The state is maintained incrementally and per depth: Descend costs
// O(M + N) (one new machine-completion row, one remaining-sum row, one
// remaining-list deletion); Ascend only restores the remaining list, the
// per-depth rows simply become dead when the depth counter drops. A Problem
// is not safe for concurrent use; create one per worker.
type Problem struct {
	ins     *Instance
	bounder *Bounder

	depth      int
	heads      [][]int64 // heads[d]: machine completion times after d jobs
	remaining  []int     // unscheduled jobs, ascending
	inRem      []bool    // membership mask over job ids
	sumRem     [][]int64 // sumRem[d]: per-machine remaining processing time after d jobs
	chosenJob  []int     // job scheduled at each depth; chosenJob[:depth] is the prefix
	chosenRank []int     // its rank at Descend time, for Ascend
}

// NewProblem builds the B&B adapter with the given bound configuration.
func NewProblem(ins *Instance, kind BoundKind, ps PairStrategy) *Problem {
	p := &Problem{
		ins:        ins,
		bounder:    NewBounder(ins, kind, ps),
		heads:      make([][]int64, ins.Jobs+1),
		remaining:  make([]int, 0, ins.Jobs),
		inRem:      make([]bool, ins.Jobs),
		sumRem:     make([][]int64, ins.Jobs+1),
		chosenJob:  make([]int, ins.Jobs),
		chosenRank: make([]int, ins.Jobs),
	}
	// One contiguous backing array per table: the walk moves between
	// adjacent depth rows every node, so keeping them back-to-back keeps
	// the working set in the same few cache lines.
	headsBack := make([]int64, (ins.Jobs+1)*ins.Machines)
	sumBack := make([]int64, (ins.Jobs+1)*ins.Machines)
	for d := range p.heads {
		p.heads[d] = headsBack[d*ins.Machines : (d+1)*ins.Machines : (d+1)*ins.Machines]
		p.sumRem[d] = sumBack[d*ins.Machines : (d+1)*ins.Machines : (d+1)*ins.Machines]
	}
	p.Reset()
	return p
}

// Instance returns the instance being solved.
func (p *Problem) Instance() *Instance { return p.ins }

// Shape implements bb.Problem: the permutation tree over the jobs.
func (p *Problem) Shape() tree.Shape { return tree.Permutation{N: p.ins.Jobs} }

// Reset implements bb.Problem.
func (p *Problem) Reset() {
	p.depth = 0
	p.remaining = p.remaining[:0]
	for j := 0; j < p.ins.Jobs; j++ {
		p.remaining = append(p.remaining, j)
		p.inRem[j] = true
	}
	for m := 0; m < p.ins.Machines; m++ {
		p.heads[0][m] = 0
		var s int64
		for j := 0; j < p.ins.Jobs; j++ {
			s += p.ins.Proc[j][m]
		}
		p.sumRem[0][m] = s
	}
	p.bounder.ResetStack(p.remaining)
}

// Descend implements bb.Problem: schedule the rank-th smallest unscheduled
// job next.
func (p *Problem) Descend(rank int) {
	job := p.remaining[rank]
	// Hand-rolled shift: the move is a handful of ints, below the size
	// where memmove's call overhead pays for itself.
	rem := p.remaining
	for i := rank; i < len(rem)-1; i++ {
		rem[i] = rem[i+1]
	}
	p.remaining = rem[:len(rem)-1]
	p.inRem[job] = false
	d := p.depth
	M := p.ins.Machines
	// Reslicing to [:M] lets the compiler prove every index below is in
	// range and drop the per-access bounds checks in the hot loop.
	row := p.ins.Proc[job][:M]
	prev, next := p.heads[d][:M], p.heads[d+1][:M]
	sumPrev, sumNext := p.sumRem[d][:M], p.sumRem[d+1][:M]
	c := prev[0] + row[0]
	next[0] = c
	sumNext[0] = sumPrev[0] - row[0]
	for m := 1; m < M; m++ {
		if c < prev[m] {
			c = prev[m]
		}
		c += row[m]
		next[m] = c
		sumNext[m] = sumPrev[m] - row[m]
	}
	p.chosenJob[d] = job
	p.chosenRank[d] = rank
	p.depth = d + 1
	p.bounder.Push()
}

// Ascend implements bb.Problem. The per-depth rows need no restoring — the
// depth counter dropping makes them dead — so only the remaining list is
// repaired.
func (p *Problem) Ascend() {
	p.depth--
	job := p.chosenJob[p.depth]
	rank := p.chosenRank[p.depth]
	rem := p.remaining[:len(p.remaining)+1]
	for i := len(rem) - 1; i > rank; i-- {
		rem[i] = rem[i-1]
	}
	rem[rank] = job
	p.remaining = rem
	p.inRem[job] = true
	p.bounder.Pop()
}

// Bound implements bb.Problem. The cutoff is forwarded to the staged,
// cutoff-aware bounder (see bounds.go).
func (p *Problem) Bound(cutoff int64) int64 {
	return p.bounder.Bound(p.heads[p.depth], p.remaining, p.inRem, p.sumRem[p.depth], cutoff)
}

// Cost implements bb.Problem: the makespan of the complete schedule.
func (p *Problem) Cost() int64 {
	return p.heads[p.depth][p.ins.Machines-1]
}

// Prefix returns a copy of the currently scheduled job prefix, mostly for
// debugging and examples.
func (p *Problem) Prefix() []int { return append([]int(nil), p.chosenJob[:p.depth]...) }

// DecodePath implements bb.Decoder: it renders the job permutation selected
// by a rank path.
func (p *Problem) DecodePath(ranks []int) string {
	perm, err := PermutationOfPath(p.ins.Jobs, ranks)
	if err != nil {
		return fmt.Sprintf("<invalid path: %v>", err)
	}
	return fmt.Sprint(perm)
}

// PermutationOfPath converts a rank path of the permutation tree into the
// job permutation it denotes: rank r at depth d picks the r-th smallest of
// the jobs not yet chosen.
func PermutationOfPath(jobs int, ranks []int) ([]int, error) {
	if len(ranks) > jobs {
		return nil, fmt.Errorf("flowshop: path of length %d for %d jobs", len(ranks), jobs)
	}
	remaining := make([]int, jobs)
	for j := range remaining {
		remaining[j] = j
	}
	perm := make([]int, 0, len(ranks))
	for d, r := range ranks {
		if r < 0 || r >= len(remaining) {
			return nil, fmt.Errorf("flowshop: rank %d out of range at depth %d", r, d)
		}
		perm = append(perm, remaining[r])
		remaining = append(remaining[:r], remaining[r+1:]...)
	}
	return perm, nil
}

// PathOfPermutation is the inverse of PermutationOfPath: it computes the
// rank path of a (possibly partial) job permutation. It is how externally
// found solutions (heuristics, the paper's published schedule) are injected
// into the rank-path world of the engines.
func PathOfPermutation(jobs int, perm []int) ([]int, error) {
	if len(perm) > jobs {
		return nil, fmt.Errorf("flowshop: permutation of length %d for %d jobs", len(perm), jobs)
	}
	remaining := make([]int, jobs)
	for j := range remaining {
		remaining[j] = j
	}
	ranks := make([]int, 0, len(perm))
	for _, job := range perm {
		r := sort.SearchInts(remaining, job)
		if r == len(remaining) || remaining[r] != job {
			return nil, fmt.Errorf("flowshop: job %d repeated or out of range", job)
		}
		ranks = append(ranks, r)
		remaining = append(remaining[:r], remaining[r+1:]...)
	}
	return ranks, nil
}
