package flowshop

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Problem adapts a flowshop instance to the generic bb.Problem interface:
// the search tree is the permutation tree of the instance's jobs (paper
// §3.1), a node at depth d fixes the first d jobs of the schedule, and the
// canonical child order — hence the node numbering shared by every process —
// is ascending job index among unscheduled jobs.
//
// The state is maintained incrementally: Descend costs O(M + N) (one new
// machine-completion row plus a remaining-list deletion) and Ascend is O(N).
// A Problem is not safe for concurrent use; create one per worker.
type Problem struct {
	ins     *Instance
	bounder *Bounder

	depth      int
	heads      [][]int64 // heads[d]: machine completion times after d jobs
	remaining  []int     // unscheduled jobs, ascending
	inRem      []bool    // membership mask over job ids
	sumRem     []int64   // per-machine remaining processing time
	chosenJob  []int     // job scheduled at each depth
	chosenRank []int     // its rank at Descend time, for Ascend
	perm       []int     // scheduled prefix
}

// NewProblem builds the B&B adapter with the given bound configuration.
func NewProblem(ins *Instance, kind BoundKind, ps PairStrategy) *Problem {
	p := &Problem{
		ins:        ins,
		bounder:    NewBounder(ins, kind, ps),
		heads:      make([][]int64, ins.Jobs+1),
		remaining:  make([]int, 0, ins.Jobs),
		inRem:      make([]bool, ins.Jobs),
		sumRem:     make([]int64, ins.Machines),
		chosenJob:  make([]int, ins.Jobs),
		chosenRank: make([]int, ins.Jobs),
		perm:       make([]int, 0, ins.Jobs),
	}
	for d := range p.heads {
		p.heads[d] = make([]int64, ins.Machines)
	}
	p.Reset()
	return p
}

// Instance returns the instance being solved.
func (p *Problem) Instance() *Instance { return p.ins }

// Shape implements bb.Problem: the permutation tree over the jobs.
func (p *Problem) Shape() tree.Shape { return tree.Permutation{N: p.ins.Jobs} }

// Reset implements bb.Problem.
func (p *Problem) Reset() {
	p.depth = 0
	p.perm = p.perm[:0]
	p.remaining = p.remaining[:0]
	for j := 0; j < p.ins.Jobs; j++ {
		p.remaining = append(p.remaining, j)
		p.inRem[j] = true
	}
	for m := 0; m < p.ins.Machines; m++ {
		p.heads[0][m] = 0
		var s int64
		for j := 0; j < p.ins.Jobs; j++ {
			s += p.ins.Proc[j][m]
		}
		p.sumRem[m] = s
	}
}

// Descend implements bb.Problem: schedule the rank-th smallest unscheduled
// job next.
func (p *Problem) Descend(rank int) {
	job := p.remaining[rank]
	copy(p.remaining[rank:], p.remaining[rank+1:])
	p.remaining = p.remaining[:len(p.remaining)-1]
	p.inRem[job] = false
	row := p.ins.Proc[job]
	prev, next := p.heads[p.depth], p.heads[p.depth+1]
	c := prev[0] + row[0]
	next[0] = c
	p.sumRem[0] -= row[0]
	for m := 1; m < p.ins.Machines; m++ {
		if c < prev[m] {
			c = prev[m]
		}
		c += row[m]
		next[m] = c
		p.sumRem[m] -= row[m]
	}
	p.chosenJob[p.depth] = job
	p.chosenRank[p.depth] = rank
	p.perm = append(p.perm, job)
	p.depth++
}

// Ascend implements bb.Problem.
func (p *Problem) Ascend() {
	p.depth--
	job := p.chosenJob[p.depth]
	rank := p.chosenRank[p.depth]
	p.remaining = p.remaining[:len(p.remaining)+1]
	copy(p.remaining[rank+1:], p.remaining[rank:])
	p.remaining[rank] = job
	p.inRem[job] = true
	row := p.ins.Proc[job]
	for m := 0; m < p.ins.Machines; m++ {
		p.sumRem[m] += row[m]
	}
	p.perm = p.perm[:len(p.perm)-1]
}

// Bound implements bb.Problem.
func (p *Problem) Bound() int64 {
	return p.bounder.Bound(p.heads[p.depth], p.remaining, p.inRem, p.sumRem)
}

// Cost implements bb.Problem: the makespan of the complete schedule.
func (p *Problem) Cost() int64 {
	return p.heads[p.depth][p.ins.Machines-1]
}

// Prefix returns a copy of the currently scheduled job prefix, mostly for
// debugging and examples.
func (p *Problem) Prefix() []int { return append([]int(nil), p.perm...) }

// DecodePath implements bb.Decoder: it renders the job permutation selected
// by a rank path.
func (p *Problem) DecodePath(ranks []int) string {
	perm, err := PermutationOfPath(p.ins.Jobs, ranks)
	if err != nil {
		return fmt.Sprintf("<invalid path: %v>", err)
	}
	return fmt.Sprint(perm)
}

// PermutationOfPath converts a rank path of the permutation tree into the
// job permutation it denotes: rank r at depth d picks the r-th smallest of
// the jobs not yet chosen.
func PermutationOfPath(jobs int, ranks []int) ([]int, error) {
	if len(ranks) > jobs {
		return nil, fmt.Errorf("flowshop: path of length %d for %d jobs", len(ranks), jobs)
	}
	remaining := make([]int, jobs)
	for j := range remaining {
		remaining[j] = j
	}
	perm := make([]int, 0, len(ranks))
	for d, r := range ranks {
		if r < 0 || r >= len(remaining) {
			return nil, fmt.Errorf("flowshop: rank %d out of range at depth %d", r, d)
		}
		perm = append(perm, remaining[r])
		remaining = append(remaining[:r], remaining[r+1:]...)
	}
	return perm, nil
}

// PathOfPermutation is the inverse of PermutationOfPath: it computes the
// rank path of a (possibly partial) job permutation. It is how externally
// found solutions (heuristics, the paper's published schedule) are injected
// into the rank-path world of the engines.
func PathOfPermutation(jobs int, perm []int) ([]int, error) {
	if len(perm) > jobs {
		return nil, fmt.Errorf("flowshop: permutation of length %d for %d jobs", len(perm), jobs)
	}
	remaining := make([]int, jobs)
	for j := range remaining {
		remaining[j] = j
	}
	ranks := make([]int, 0, len(perm))
	for _, job := range perm {
		r := sort.SearchInts(remaining, job)
		if r == len(remaining) || remaining[r] != job {
			return nil, fmt.Errorf("flowshop: job %d repeated or out of range", job)
		}
		ranks = append(ranks, r)
		remaining = append(remaining[:r], remaining[r+1:]...)
	}
	return ranks, nil
}
