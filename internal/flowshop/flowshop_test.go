package flowshop

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bb"
)

// permOf returns the identity permutation of n jobs.
func permOf(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestMakespanByHand checks the recurrence on a hand-computed 2x2 case.
func TestMakespanByHand(t *testing.T) {
	ins, err := NewInstance("hand", [][]int64{{3, 2}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Order 0,1: m0 finishes j0 at 3, j1 at 4; m1 starts j0 at 3 ends 5,
	// j1 starts max(4,5)=5 ends 9.
	if got := ins.Makespan([]int{0, 1}); got != 9 {
		t.Fatalf("makespan(0,1) = %d, want 9", got)
	}
	// Order 1,0: m0: j1 at 1, j0 at 4; m1: j1 1->5, j0 max(4,5)=5->7.
	if got := ins.Makespan([]int{1, 0}); got != 7 {
		t.Fatalf("makespan(1,0) = %d, want 7", got)
	}
}

// TestMakespanPanicsOnBadPerm: malformed permutations are programming
// errors and must not be silently mis-evaluated.
func TestMakespanPanicsOnBadPerm(t *testing.T) {
	ins := Taillard(4, 3, 1)
	for _, perm := range [][]int{{0, 1}, {0, 1, 2, 2}, {0, 1, 2, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", perm)
				}
			}()
			ins.Makespan(perm)
		}()
	}
}

// TestPartialMakespanPrefixConsistency: evaluating a full permutation
// incrementally through PartialMakespan agrees with Makespan.
func TestPartialMakespanPrefixConsistency(t *testing.T) {
	ins := Taillard(9, 6, 11)
	perm := permOf(9)
	heads := ins.PartialMakespan(perm, nil)
	if heads[ins.Machines-1] != ins.Makespan(perm) {
		t.Fatalf("partial %d != makespan %d", heads[ins.Machines-1], ins.Makespan(perm))
	}
}

// TestNewInstanceValidation rejects malformed inputs.
func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance("x", nil); err == nil {
		t.Error("no jobs accepted")
	}
	if _, err := NewInstance("x", [][]int64{{}}); err == nil {
		t.Error("no machines accepted")
	}
	if _, err := NewInstance("x", [][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewInstance("x", [][]int64{{1, -2}}); err == nil {
		t.Error("negative time accepted")
	}
}

// TestTaillardDeterminism: the generator is a pure function of its seed.
func TestTaillardDeterminism(t *testing.T) {
	a := Taillard(20, 10, 587595453)
	b := Taillard(20, 10, 587595453)
	for j := 0; j < a.Jobs; j++ {
		for m := 0; m < a.Machines; m++ {
			if a.Proc[j][m] != b.Proc[j][m] {
				t.Fatalf("non-deterministic at (%d,%d)", j, m)
			}
		}
	}
}

// TestTaillardRange: all processing times are in [1, 99] as published.
func TestTaillardRange(t *testing.T) {
	ins := Taillard(100, 20, 450926852)
	for j := 0; j < ins.Jobs; j++ {
		for m := 0; m < ins.Machines; m++ {
			if p := ins.Proc[j][m]; p < 1 || p > 99 {
				t.Fatalf("time %d at (%d,%d) outside [1,99]", p, j, m)
			}
		}
	}
}

// TestTaillardNamedLookup covers the published index.
func TestTaillardNamedLookup(t *testing.T) {
	for name, dims := range map[string][2]int{
		"ta001": {20, 5}, "TA021": {20, 20}, "ta056": {50, 20}, "ta120": {500, 20},
	} {
		ins, err := TaillardNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ins.Jobs != dims[0] || ins.Machines != dims[1] {
			t.Fatalf("%s dims = %dx%d, want %dx%d", name, ins.Jobs, ins.Machines, dims[0], dims[1])
		}
	}
	if _, err := TaillardNamed("ta121"); err == nil {
		t.Error("out-of-range instance accepted")
	}
	if _, err := TaillardNamed("nonsense"); err == nil {
		t.Error("garbage name accepted")
	}
	if got := len(TaillardIndices()); got != 120 {
		t.Fatalf("published instances = %d, want 120", got)
	}
}

// TestReduced: reduction keeps the data prefix bit-exactly.
func TestReduced(t *testing.T) {
	full := Ta056()
	red, err := full.Reduced(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		for m := 0; m < 7; m++ {
			if red.Proc[j][m] != full.Proc[j][m] {
				t.Fatalf("reduced data differs at (%d,%d)", j, m)
			}
		}
	}
	if _, err := full.Reduced(51, 20); err == nil {
		t.Error("oversized reduction accepted")
	}
	if _, err := full.Reduced(0, 5); err == nil {
		t.Error("zero-job reduction accepted")
	}
}

// TestBoundsAdmissible is the soundness property of the bounding operator:
// for random partial schedules, every bound family is a true lower bound on
// the best completion (verified by brute force on small instances).
func TestBoundsAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		jobs := 5 + rng.Intn(3)
		ins := Taillard(jobs, 2+rng.Intn(4), rng.Int63n(1<<30)+1)
		prefixLen := rng.Intn(jobs)
		perm := rng.Perm(jobs)
		prefix := perm[:prefixLen]
		rest := perm[prefixLen:]
		best := bestCompletion(ins, prefix, rest)
		for _, kind := range []BoundKind{BoundOneMachine, BoundTwoMachine, BoundCombined} {
			lb := boundOfPrefix(ins, kind, prefix)
			if lb > best {
				t.Fatalf("%s: bound kind %d of prefix %v = %d exceeds best completion %d",
					ins.Name, kind, prefix, lb, best)
			}
		}
	}
}

// boundOfPrefix drives the Problem state machine to the prefix and bounds.
func boundOfPrefix(ins *Instance, kind BoundKind, prefix []int) int64 {
	p := NewProblem(ins, kind, PairsAll)
	ranks, err := PathOfPermutation(ins.Jobs, prefix)
	if err != nil {
		panic(err)
	}
	for _, r := range ranks {
		p.Descend(r)
	}
	if len(prefix) == ins.Jobs {
		return p.Cost()
	}
	return p.Bound(bb.Infinity)
}

// bestCompletion brute-forces the best makespan over all completions.
func bestCompletion(ins *Instance, prefix, rest []int) int64 {
	perm := append(append([]int(nil), prefix...), rest...)
	best := int64(1) << 62
	n := len(rest)
	var walk func(k int)
	walk = func(k int) {
		if k == n {
			if c := ins.Makespan(perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			tail := perm[len(prefix):]
			tail[k], tail[i] = tail[i], tail[k]
			walk(k + 1)
			tail[k], tail[i] = tail[i], tail[k]
		}
	}
	walk(0)
	return best
}

// TestTwoMachineDominance: on every machine pair it inspects, the Johnson
// bound is at least as strong as the one-machine bound in aggregate — we
// check the weaker, always-true statement that combined >= one-machine.
func TestTwoMachineDominance(t *testing.T) {
	ins := Taillard(10, 6, 77)
	p1 := NewProblem(ins, BoundOneMachine, PairsAll)
	pc := NewProblem(ins, BoundCombined, PairsAll)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		prefix := rng.Perm(10)[:rng.Intn(5)]
		lb1 := boundWith(p1, ins, prefix)
		lbc := boundWith(pc, ins, prefix)
		if lbc < lb1 {
			t.Fatalf("combined bound %d < one-machine %d on prefix %v", lbc, lb1, prefix)
		}
	}
}

func boundWith(p *Problem, ins *Instance, prefix []int) int64 {
	p.Reset()
	ranks, err := PathOfPermutation(ins.Jobs, prefix)
	if err != nil {
		panic(err)
	}
	for _, r := range ranks {
		p.Descend(r)
	}
	return p.Bound(bb.Infinity)
}

// TestJohnsonOptimal: Johnson's rule is optimal for 2 machines — B&B must
// agree exactly.
func TestJohnsonOptimal(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ins := Taillard(8, 2, seed)
		_, johnson := Johnson(ins)
		sol, _ := bb.Solve(NewProblem(ins, BoundOneMachine, PairsAll), bb.Infinity)
		if sol.Cost != johnson {
			t.Fatalf("seed %d: B&B %d != Johnson %d", seed, sol.Cost, johnson)
		}
	}
}

// TestJohnsonPanicsOnWrongMachines: the oracle guards its precondition.
func TestJohnsonPanicsOnWrongMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Johnson(Taillard(5, 3, 1))
}

// TestNEHFeasibleAndDecent: NEH yields a valid permutation whose makespan
// is at least the optimum and not absurdly far from it on small instances.
func TestNEHFeasibleAndDecent(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		ins := Taillard(8, 5, seed)
		seq, cmax := NEH(ins)
		if got := ins.Makespan(seq); got != cmax {
			t.Fatalf("NEH reported %d but schedule evaluates to %d", cmax, got)
		}
		opt, _ := bb.Solve(NewProblem(ins, BoundOneMachine, PairsAll), bb.Infinity)
		if cmax < opt.Cost {
			t.Fatalf("NEH %d below the optimum %d: impossible", cmax, opt.Cost)
		}
		if float64(cmax) > 1.25*float64(opt.Cost) {
			t.Errorf("seed %d: NEH %d more than 25%% above optimum %d", seed, cmax, opt.Cost)
		}
	}
}

// TestIteratedGreedyImproves: IG never does worse than its NEH seed, and
// typically improves it.
func TestIteratedGreedyImproves(t *testing.T) {
	ins := Taillard(20, 5, 873654221) // ta001
	_, neh := NEH(ins)
	_, ig := IteratedGreedy(ins, IGOptions{Iterations: 300, DestructSize: 4, TemperatureFactor: 0.4, Seed: 3})
	if ig > neh {
		t.Fatalf("IG %d worse than its NEH seed %d", ig, neh)
	}
}

// TestIteratedGreedyDeterministic per seed.
func TestIteratedGreedyDeterministic(t *testing.T) {
	ins := Taillard(12, 5, 99)
	opt := IGOptions{Iterations: 100, DestructSize: 4, TemperatureFactor: 0.4, Seed: 7}
	_, a := IteratedGreedy(ins, opt)
	_, b := IteratedGreedy(ins, opt)
	if a != b {
		t.Fatalf("IG non-deterministic: %d vs %d", a, b)
	}
}

// TestProblemDescendAscendInverse: Ascend exactly undoes Descend (property
// over random walks), including the remaining list, the sums and the heads.
func TestProblemDescendAscendInverse(t *testing.T) {
	ins := Taillard(9, 4, 17)
	p := NewProblem(ins, BoundOneMachine, PairsAll)
	f := func(moves []uint8) bool {
		p.Reset()
		ref := NewProblem(ins, BoundOneMachine, PairsAll)
		depth := 0
		for _, mv := range moves {
			if depth < ins.Jobs && mv%2 == 0 {
				rank := int(mv/2) % (ins.Jobs - depth)
				p.Descend(rank)
				depth++
			} else if depth > 0 {
				p.Ascend()
				depth--
			}
		}
		// Rebuild the same position from scratch on ref and compare
		// bounds (a full state fingerprint).
		prefix := p.Prefix()
		ranks, err := PathOfPermutation(ins.Jobs, prefix)
		if err != nil {
			return false
		}
		for _, r := range ranks {
			ref.Descend(r)
		}
		if depth == ins.Jobs {
			return p.Cost() == ref.Cost()
		}
		return p.Bound(bb.Infinity) == ref.Bound(bb.Infinity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPathPermRoundTrip: PathOfPermutation inverts PermutationOfPath.
func TestPathPermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		perm := rng.Perm(n)
		ranks, err := PathOfPermutation(n, perm)
		if err != nil {
			t.Fatal(err)
		}
		back, err := PermutationOfPath(n, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range perm {
			if back[i] != perm[i] {
				t.Fatalf("round trip %v -> %v -> %v", perm, ranks, back)
			}
		}
	}
	if _, err := PathOfPermutation(3, []int{0, 0}); err == nil {
		t.Error("repeated job accepted")
	}
	if _, err := PermutationOfPath(3, []int{5}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestDecodePath covers the bb.Decoder implementation.
func TestDecodePath(t *testing.T) {
	ins := Taillard(4, 2, 1)
	p := NewProblem(ins, BoundOneMachine, PairsAll)
	out := p.DecodePath([]int{3, 0, 0, 0})
	if !strings.Contains(out, "3 0 1 2") {
		t.Errorf("DecodePath = %q", out)
	}
	if !strings.Contains(p.DecodePath([]int{9}), "invalid") {
		t.Error("bad path not flagged")
	}
}

// TestFormatLayout: the benchmark text layout has the header and
// machine-major rows.
func TestFormatLayout(t *testing.T) {
	ins := Taillard(3, 2, 42)
	out := ins.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("format has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "3 2" {
		t.Fatalf("header = %q", lines[0])
	}
}

// TestTotalWork sums the matrix.
func TestTotalWork(t *testing.T) {
	ins, _ := NewInstance("x", [][]int64{{1, 2}, {3, 4}})
	if got := ins.TotalWork(); got != 10 {
		t.Fatalf("total work = %d", got)
	}
}

// TestIGLocalSearchStronger: the full IG_RS (with insertion local search)
// is at least as good as the plain variant on the same budget and seed.
func TestIGLocalSearchStronger(t *testing.T) {
	ins := Taillard(20, 10, 587595453) // ta011
	plain := IGOptions{Iterations: 60, DestructSize: 4, TemperatureFactor: 0.4, Seed: 5}
	full := plain
	full.LocalSearch = true
	_, cPlain := IteratedGreedy(ins, plain)
	_, cFull := IteratedGreedy(ins, full)
	if cFull > cPlain {
		t.Fatalf("IG with local search %d worse than without %d", cFull, cPlain)
	}
}

// TestLocalSearchNeverWorsens: the insertion local search is a descent.
func TestLocalSearchNeverWorsens(t *testing.T) {
	ins := Taillard(15, 5, 7)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		seq := rng.Perm(ins.Jobs)
		before := ins.Makespan(seq)
		after := localSearchInsertion(ins, seq, rng)
		if after > before {
			t.Fatalf("local search worsened %d -> %d", before, after)
		}
		if got := ins.Makespan(seq); got != after {
			t.Fatalf("reported %d but sequence evaluates to %d", after, got)
		}
	}
}
