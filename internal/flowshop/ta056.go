package flowshop

// This file records the published facts about the paper's headline
// experiment: the exact resolution of Taillard instance Ta056 (§5.3).

// Ta056TimeSeed is the Taillard time seed of instance Ta056 (the sixth
// 50x20 instance).
const Ta056TimeSeed int64 = 1923497586

// Ta056Optimum is the optimal makespan of Ta056, found with proof of
// optimality for the first time by the paper's grid B&B (§5.3). It agrees
// with Taillard's published best-known table.
const Ta056Optimum int64 = 3679

// Ta056PreviousBest is the previously best known makespan, found by the
// iterated-greedy metaheuristic of Ruiz and Stützle (paper ref. [9]) and
// used to initialize the paper's first run (§5.3).
const Ta056PreviousBest int64 = 3681

// Ta056PaperPermutation is the optimal schedule printed in §5.3, converted
// from the paper's 1-based job numbers to 0-based indices.
//
// On the canonical Ta056 instance — regenerated bit-exactly here (our ta001
// matrix matches the published benchmark data byte for byte) — this printed
// sequence evaluates to 3680, one unit above the claimed optimum 3679, and
// no single swap or single-job move of it reaches 3679. The printed schedule
// therefore carries a small transcription artifact; we record it verbatim
// together with its measured makespan. See EXPERIMENTS.md.
var Ta056PaperPermutation = []int{
	13, 36, 2, 17, 7, 32, 10, 20, 41, 4,
	12, 48, 49, 19, 27, 44, 42, 40, 45, 14,
	23, 43, 39, 35, 38, 3, 15, 46, 16, 26,
	0, 25, 9, 18, 31, 24, 29, 6, 1, 30,
	22, 5, 47, 21, 28, 33, 8, 34, 37, 11,
}

// Ta056PaperPermutationMakespan is the measured makespan of the printed
// schedule on the canonical instance.
const Ta056PaperPermutationMakespan int64 = 3680

// Ta056 regenerates the paper's instance from its published seed.
func Ta056() *Instance {
	ins := Taillard(50, 20, Ta056TimeSeed)
	ins.Name = "ta056"
	return ins
}
