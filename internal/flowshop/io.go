package flowshop

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Parse reads an instance in the conventional benchmark text layout
// produced by Format: a header line "jobs machines" followed by the
// machine-major processing-time matrix (machine per line, one column per
// job). Blank lines and lines starting with '#' are ignored, so files can
// carry provenance comments.
func Parse(r io.Reader, name string) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var fields []string
	next := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	fields, err := next()
	if err != nil {
		return nil, fmt.Errorf("flowshop: parse %s: missing header: %w", name, err)
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("flowshop: parse %s: header %q needs jobs and machines", name, fields)
	}
	jobs, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("flowshop: parse %s: bad job count %q", name, fields[0])
	}
	machines, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("flowshop: parse %s: bad machine count %q", name, fields[1])
	}
	if jobs <= 0 || machines <= 0 {
		return nil, fmt.Errorf("flowshop: parse %s: non-positive dimensions %dx%d", name, jobs, machines)
	}
	proc := make([][]int64, jobs)
	for j := range proc {
		proc[j] = make([]int64, machines)
	}
	for m := 0; m < machines; m++ {
		fields, err = next()
		if err != nil {
			return nil, fmt.Errorf("flowshop: parse %s: machine %d row missing: %w", name, m, err)
		}
		if len(fields) != jobs {
			return nil, fmt.Errorf("flowshop: parse %s: machine %d row has %d entries, want %d", name, m, len(fields), jobs)
		}
		for j, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("flowshop: parse %s: bad time %q at machine %d job %d", name, f, m, j)
			}
			proc[j][m] = v
		}
	}
	if extra, err := next(); err == nil {
		return nil, fmt.Errorf("flowshop: parse %s: trailing data %q after the matrix", name, extra)
	}
	return NewInstance(name, proc)
}

// ParseFile reads an instance file (see Parse); the file's base name
// becomes the instance name.
func ParseFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flowshop: %w", err)
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return Parse(f, name)
}

// WriteFile saves the instance in the Format layout with a provenance
// comment header.
func (ins *Instance) WriteFile(path string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", ins)
	b.WriteString(ins.Format())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("flowshop: %w", err)
	}
	return nil
}
