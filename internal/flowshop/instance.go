// Package flowshop implements the permutation flowshop scheduling problem —
// the application of the paper's evaluation (§5): N jobs cross M machines in
// the same order, each machine handles one job at a time, and the objective
// is to minimize the makespan Cmax (eq. 15). It provides Taillard's (1993)
// benchmark instance generator (bit-exact, including the published seeds of
// the Ta001–Ta120 sets, so the famous Ta056 instance of the paper is
// reproducible), makespan evaluation, the classical one-machine and
// two-machine (Johnson) lower bounds, the NEH constructive heuristic and a
// Ruiz–Stützle iterated-greedy upper-bound provider (the paper's ref. [9]),
// and the bb.Problem adapter that plugs the whole thing into the grid B&B.
package flowshop

import (
	"fmt"
	"strings"
)

// Instance is a permutation flowshop instance: Proc[j][m] is the processing
// time of job j on machine m. Machines are crossed in index order.
type Instance struct {
	// Name is a human-readable identifier ("ta056", "rand-8x4", ...).
	Name string
	// Jobs is the number of jobs N.
	Jobs int
	// Machines is the number of machines M.
	Machines int
	// Proc holds the processing times, job-major.
	Proc [][]int64
}

// NewInstance validates and wraps raw processing times.
func NewInstance(name string, proc [][]int64) (*Instance, error) {
	if len(proc) == 0 {
		return nil, fmt.Errorf("flowshop: instance %q has no jobs", name)
	}
	m := len(proc[0])
	if m == 0 {
		return nil, fmt.Errorf("flowshop: instance %q has no machines", name)
	}
	for j, row := range proc {
		if len(row) != m {
			return nil, fmt.Errorf("flowshop: instance %q job %d has %d machines, want %d", name, j, len(row), m)
		}
		for mm, p := range row {
			if p < 0 {
				return nil, fmt.Errorf("flowshop: instance %q has negative time %d at job %d machine %d", name, p, j, mm)
			}
		}
	}
	return &Instance{Name: name, Jobs: len(proc), Machines: m, Proc: proc}, nil
}

// Makespan evaluates Cmax of the complete permutation (a slice of 0-based
// job indices covering every job exactly once). It panics on a malformed
// permutation, which always indicates a programming error.
func (ins *Instance) Makespan(perm []int) int64 {
	if len(perm) != ins.Jobs {
		panic(fmt.Sprintf("flowshop: permutation of length %d for %d jobs", len(perm), ins.Jobs))
	}
	c := make([]int64, ins.Machines)
	seen := make([]bool, ins.Jobs)
	for _, j := range perm {
		if j < 0 || j >= ins.Jobs || seen[j] {
			panic(fmt.Sprintf("flowshop: bad permutation entry %d", j))
		}
		seen[j] = true
		row := ins.Proc[j]
		c[0] += row[0]
		for m := 1; m < ins.Machines; m++ {
			if c[m] < c[m-1] {
				c[m] = c[m-1]
			}
			c[m] += row[m]
		}
	}
	return c[ins.Machines-1]
}

// PartialMakespan evaluates the completion time vector of a prefix sequence:
// heads[m] is the time machine m finishes its last prefix job. An empty
// prefix yields the zero vector. It is the building block of both the B&B
// state and the heuristics.
func (ins *Instance) PartialMakespan(prefix []int, heads []int64) []int64 {
	if heads == nil {
		heads = make([]int64, ins.Machines)
	} else {
		for m := range heads {
			heads[m] = 0
		}
	}
	for _, j := range prefix {
		row := ins.Proc[j]
		heads[0] += row[0]
		for m := 1; m < ins.Machines; m++ {
			if heads[m] < heads[m-1] {
				heads[m] = heads[m-1]
			}
			heads[m] += row[m]
		}
	}
	return heads
}

// TotalWork returns the sum of all processing times, used by heuristics for
// temperature calibration and by reports.
func (ins *Instance) TotalWork() int64 {
	var s int64
	for _, row := range ins.Proc {
		for _, p := range row {
			s += p
		}
	}
	return s
}

// String renders a short description.
func (ins *Instance) String() string {
	return fmt.Sprintf("%s (%d jobs x %d machines)", ins.Name, ins.Jobs, ins.Machines)
}

// Format renders the instance in the conventional benchmark text layout:
// a header line "jobs machines" followed by the machine-major matrix.
func (ins *Instance) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", ins.Jobs, ins.Machines)
	for m := 0; m < ins.Machines; m++ {
		for j := 0; j < ins.Jobs; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", ins.Proc[j][m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
