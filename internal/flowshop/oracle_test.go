package flowshop

import (
	"testing"

	"repro/internal/bb"
)

// TestReducedOptimumOracle pins the optimum of the 11x6 reduction used by
// the multi-process integration test (cmd/farmer).
func TestReducedOptimumOracle(t *testing.T) {
	red, err := Ta056().Reduced(11, 6)
	if err != nil {
		t.Fatal(err)
	}
	sol, _ := bb.Solve(NewProblem(red, BoundOneMachine, PairsAll), bb.Infinity)
	if sol.Cost != 842 {
		t.Fatalf("ta056 reduced 11x6 optimum = %d, want 842 (pinned for cmd/farmer's integration test)", sol.Cost)
	}
}
