package worker

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/transport"
	"repro/internal/tsp"
)

func testInstance(jobs, machines int, seed int64) *flowshop.Instance {
	return flowshop.Taillard(jobs, machines, seed)
}

func newFarmerFor(p bb.Problem, opts ...farmer.Option) *farmer.Farmer {
	nb := core.NewNumbering(p.Shape())
	return farmer.New(nb.RootRange(), opts...)
}

// TestSingleWorkerSolves: one session driven by Advance solves a flowshop
// instance to the sequential optimum and terminates.
func TestSingleWorkerSolves(t *testing.T) {
	ins := testInstance(8, 4, 42)
	oracleP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	want, _ := bb.Solve(oracleP, bb.Infinity)

	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	f := newFarmerFor(p)
	s := NewSession(Config{ID: "w1", Power: 10, UpdatePeriodNodes: 500}, f, p)
	for {
		_, finished, err := s.Advance(1000)
		if err != nil {
			t.Fatal(err)
		}
		if finished {
			break
		}
	}
	if got := f.Best(); got.Cost != want.Cost {
		t.Fatalf("grid best %d, sequential optimum %d", got.Cost, want.Cost)
	}
	if !f.Done() {
		t.Fatal("farmer not done after worker finished")
	}
	if s.Messages.Updates == 0 {
		t.Fatal("worker never checkpointed")
	}
}

// TestManyWorkersMatchSequential: several concurrent goroutine workers find
// the sequential optimum, with real load balancing traffic.
func TestManyWorkersMatchSequential(t *testing.T) {
	ins := testInstance(12, 10, 5)
	oracleP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	want, _ := bb.Solve(oracleP, bb.Infinity)

	f := newFarmerFor(oracleP)
	const n = 8
	// Acquire every worker's first interval synchronously before racing:
	// a zero-budget Advance requests work without exploring. Without this
	// barrier the test depends on goroutine scheduling — the engine is
	// fast enough to finish the whole tree before a late-starting peer
	// issues its first request.
	sessions := make([]*Session, n)
	for i := 0; i < n; i++ {
		p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		cfg := Config{
			ID:                transport.WorkerID(string(rune('a' + i))),
			Power:             int64(1 + i%3),
			UpdatePeriodNodes: 200,
			StepSize:          100,
		}
		sessions[i] = NewSession(cfg, f, p)
		if _, _, err := sessions[i].Advance(0); err != nil {
			t.Fatalf("worker %d: first request: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sessions[i]
			for {
				_, finished, err := s.Advance(s.cfg.StepSize)
				if err != nil || finished {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := f.Best(); got.Cost != want.Cost {
		t.Fatalf("grid best %d, sequential optimum %d", got.Cost, want.Cost)
	}
	c := f.Counters()
	if c.WorkAllocations < int64(n) {
		t.Fatalf("allocations = %d, want at least %d", c.WorkAllocations, n)
	}
	// The optimal permutation must decode correctly.
	best := f.Best()
	perm, err := flowshop.PermutationOfPath(ins.Jobs, best.Path)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Makespan(perm) != best.Cost {
		t.Fatalf("decoded permutation cost %d != reported %d", ins.Makespan(perm), best.Cost)
	}
}

// TestWorkerCrashRecovery: workers that die mid-exploration lose nothing —
// the lease mechanism orphans their last checkpointed interval and a
// replacement worker finishes the job; the optimum is still found with
// proof.
func TestWorkerCrashRecovery(t *testing.T) {
	ins := testInstance(12, 10, 5)
	oracleP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	want, _ := bb.Solve(oracleP, bb.Infinity)

	var vnow int64
	clock := func() int64 { return vnow }
	f := newFarmerFor(oracleP, farmer.WithClock(clock), farmer.WithLeaseTTL(time.Second))

	// Crashy worker: explores a bit with frequent checkpoints, then
	// vanishes without deregistering.
	crashP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	crashy := NewSession(Config{ID: "crashy", Power: 5, UpdatePeriodNodes: 50}, f, crashP)
	for i := 0; i < 20; i++ {
		if _, finished, err := crashy.Advance(100); err != nil || finished {
			t.Fatalf("crashy finished prematurely (err=%v)", err)
		}
	}
	// Time passes beyond the lease; the farmer presumes it dead.
	vnow += int64(2 * time.Second)
	f.ExpireNow()

	// A fresh worker completes the resolution.
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	s := NewSession(Config{ID: "rescuer", Power: 5, UpdatePeriodNodes: 500}, f, p)
	for {
		_, finished, err := s.Advance(5000)
		if err != nil {
			t.Fatal(err)
		}
		if finished {
			break
		}
	}
	if got := f.Best(); got.Cost != want.Cost {
		t.Fatalf("after crash recovery best = %d, want %d", got.Cost, want.Cost)
	}
}

// TestSolutionSharingAcrossWorkers: an improvement found by one worker
// prunes in another (the second worker adopts the pushed bound on its next
// exchange).
func TestSolutionSharingAcrossWorkers(t *testing.T) {
	ins := testInstance(12, 10, 5)
	p1 := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	f := newFarmerFor(p1)

	s1 := NewSession(Config{ID: "w1", Power: 1, UpdatePeriodNodes: 100}, f, p1)
	// w1 explores until it has pushed at least one solution.
	for f.Best().Cost == bb.Infinity {
		if _, finished, err := s1.Advance(200); err != nil {
			t.Fatal(err)
		} else if finished {
			break
		}
	}
	shared := f.Best().Cost
	if shared == bb.Infinity {
		t.Fatal("no solution shared")
	}
	// A joining worker is primed with the shared bound at assignment.
	p2 := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	s2 := NewSession(Config{ID: "w2", Power: 1, UpdatePeriodNodes: 100}, f, p2)
	if _, _, err := s2.Advance(1); err != nil {
		t.Fatal(err)
	}
	if got := s2.Best().Cost; got > shared {
		t.Fatalf("joining worker best %d, want <= shared %d", got, shared)
	}
}

// TestRunContextCancel: Run returns promptly on context cancellation.
func TestRunContextCancel(t *testing.T) {
	ins := testInstance(14, 8, 5) // ~430k nodes: does not finish within the cancel window
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	f := newFarmerFor(p)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{ID: "w", Power: 1, StepSize: 100}, f, p)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on cancellation")
	}
}

// TestTSPWorkers: the identical runtime solves a different problem domain
// unchanged (the coding is problem-independent).
func TestTSPWorkers(t *testing.T) {
	ins := tsp.RandomEuclidean(9, 100, 31)
	oracleP := tsp.NewProblem(ins)
	want, _ := bb.Solve(oracleP, bb.Infinity)

	f := newFarmerFor(oracleP)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := tsp.NewProblem(ins)
			cfg := Config{ID: transport.WorkerID(string(rune('A' + i))), Power: 1, UpdatePeriodNodes: 300}
			if _, err := Run(context.Background(), cfg, f, p); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	best := f.Best()
	if best.Cost != want.Cost {
		t.Fatalf("grid TSP best %d, sequential optimum %d", best.Cost, want.Cost)
	}
	tour, err := tsp.TourOfPath(ins.N, best.Path)
	if err != nil {
		t.Fatal(err)
	}
	if ins.TourLength(tour) != best.Cost {
		t.Fatalf("decoded tour length %d != reported %d", ins.TourLength(tour), best.Cost)
	}
}

// TestSetPower: the reported power follows SetPower and rejects
// non-positive values.
func TestSetPower(t *testing.T) {
	ins := testInstance(6, 3, 1)
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	s := NewSession(Config{ID: "w", Power: 5}, newFarmerFor(p), p)
	if s.Power() != 5 {
		t.Fatalf("initial power = %d", s.Power())
	}
	s.SetPower(42)
	if s.Power() != 42 {
		t.Fatalf("power after SetPower = %d", s.Power())
	}
	s.SetPower(0)
	s.SetPower(-3)
	if s.Power() != 42 {
		t.Fatalf("non-positive power accepted: %d", s.Power())
	}
}

// TestAutoPowerRun: Run with AutoPower completes correctly (the calibration
// path must not disturb the protocol).
func TestAutoPowerRun(t *testing.T) {
	ins := testInstance(10, 6, 77)
	oracleP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	want, _ := bb.Solve(oracleP, bb.Infinity)
	f := newFarmerFor(oracleP)
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	res, err := Run(context.Background(), Config{ID: "auto", Power: 1, AutoPower: true, UpdatePeriodNodes: 500}, f, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost && f.Best().Cost != want.Cost {
		t.Fatalf("auto-power run best %d, want %d", f.Best().Cost, want.Cost)
	}
}

// TestCheckpointNoop: forcing a checkpoint without work or after the end is
// a safe no-op.
func TestCheckpointNoop(t *testing.T) {
	ins := testInstance(6, 3, 2)
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	s := NewSession(Config{ID: "w", Power: 1}, newFarmerFor(p), p)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("idle checkpoint: %v", err)
	}
	for {
		if _, finished, err := s.Advance(1 << 20); err != nil {
			t.Fatal(err)
		} else if finished {
			break
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("post-finish checkpoint: %v", err)
	}
}
