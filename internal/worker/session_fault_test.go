package worker

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/transport"
)

// scriptedCoordinator replays canned replies and can inject failures, to
// exercise the worker paths a healthy farmer never triggers.
type scriptedCoordinator struct {
	workReplies []transport.WorkReply
	workErrs    []error
	updateErr   error
	reportErr   error
	updates     int64
}

func (s *scriptedCoordinator) RequestWork(transport.WorkRequest) (transport.WorkReply, error) {
	if len(s.workErrs) > 0 {
		err := s.workErrs[0]
		s.workErrs = s.workErrs[1:]
		if err != nil {
			return transport.WorkReply{}, err
		}
	}
	if len(s.workReplies) == 0 {
		return transport.WorkReply{Status: transport.WorkFinished}, nil
	}
	r := s.workReplies[0]
	s.workReplies = s.workReplies[1:]
	return r, nil
}

func (s *scriptedCoordinator) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	s.updates++
	if s.updateErr != nil {
		return transport.UpdateReply{}, s.updateErr
	}
	return transport.UpdateReply{Known: true, Interval: req.Remaining, BestCost: 1 << 62}, nil
}

func (s *scriptedCoordinator) ReportSolution(transport.SolutionReport) (transport.SolutionAck, error) {
	if s.reportErr != nil {
		return transport.SolutionAck{}, s.reportErr
	}
	return transport.SolutionAck{BestCost: 1 << 62}, nil
}

func sessionProblem() *flowshop.Problem {
	return flowshop.NewProblem(flowshop.Taillard(7, 4, 3), flowshop.BoundOneMachine, flowshop.PairsAll)
}

// TestSessionWaitReply: a Wait reply surfaces as (0, false, nil) so the
// caller can back off — the paper's cycle-stealing worker keeps polling.
func TestSessionWaitReply(t *testing.T) {
	p := sessionProblem()
	nb := core.NewNumbering(p.Shape())
	coord := &scriptedCoordinator{workReplies: []transport.WorkReply{
		{Status: transport.WorkWait},
		{Status: transport.WorkAssigned, IntervalID: 1, Interval: nb.RootRange(), BestCost: 1 << 62},
	}}
	s := NewSession(Config{ID: "w", Power: 1, UpdatePeriodNodes: 1000}, coord, p)
	n, finished, err := s.Advance(100)
	if err != nil || finished || n != 0 {
		t.Fatalf("wait reply: n=%d finished=%v err=%v", n, finished, err)
	}
	if s.HasWork() {
		t.Fatal("session claims work after Wait")
	}
	n, _, err = s.Advance(100)
	if err != nil || n == 0 {
		t.Fatalf("post-wait assignment: n=%d err=%v", n, err)
	}
}

// TestSessionRequestError propagates coordinator failures with context.
func TestSessionRequestError(t *testing.T) {
	coord := &scriptedCoordinator{workErrs: []error{errors.New("network down")}}
	s := NewSession(Config{ID: "w", Power: 1}, coord, sessionProblem())
	if _, _, err := s.Advance(10); err == nil {
		t.Fatal("request error swallowed")
	}
}

// TestSessionUpdateError propagates checkpoint failures.
func TestSessionUpdateError(t *testing.T) {
	p := sessionProblem()
	nb := core.NewNumbering(p.Shape())
	coord := &scriptedCoordinator{
		workReplies: []transport.WorkReply{
			{Status: transport.WorkAssigned, IntervalID: 1, Interval: nb.RootRange(), BestCost: 1 << 62},
		},
		updateErr: errors.New("farmer rebooting"),
	}
	s := NewSession(Config{ID: "w", Power: 1, UpdatePeriodNodes: 10}, coord, p)
	_, _, err := s.Advance(1000)
	if err == nil {
		t.Fatal("update error swallowed")
	}
}

// TestSessionReportError: a failing solution push surfaces on the next
// Advance return (the hook runs inside the engine step).
func TestSessionReportError(t *testing.T) {
	p := sessionProblem()
	nb := core.NewNumbering(p.Shape())
	coord := &scriptedCoordinator{
		workReplies: []transport.WorkReply{
			// Infinity best so the first leaf triggers a report.
			{Status: transport.WorkAssigned, IntervalID: 1, Interval: nb.RootRange(), BestCost: 1 << 62},
		},
		reportErr: errors.New("push refused"),
	}
	s := NewSession(Config{ID: "w", Power: 1, UpdatePeriodNodes: 1 << 20}, coord, p)
	var sawErr bool
	for i := 0; i < 100; i++ {
		if _, _, err := s.Advance(100); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("report error never surfaced")
	}
}

// TestRunBacksOffOnWait: Run sleeps between Wait replies instead of
// hammering the coordinator, then finishes cleanly.
func TestRunBacksOffOnWait(t *testing.T) {
	coord := &scriptedCoordinator{workReplies: []transport.WorkReply{
		{Status: transport.WorkWait},
		{Status: transport.WorkWait},
		{Status: transport.WorkFinished},
	}}
	start := time.Now()
	_, err := Run(context.Background(), Config{ID: "w", Power: 1}, coord, sessionProblem())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("no backoff: finished in %s", elapsed)
	}
}

// TestSessionUnknownStatus: a corrupted reply is an error, not a silent
// retry loop.
func TestSessionUnknownStatus(t *testing.T) {
	coord := &scriptedCoordinator{workReplies: []transport.WorkReply{
		{Status: transport.WorkStatus(99)},
	}}
	s := NewSession(Config{ID: "w", Power: 1}, coord, sessionProblem())
	if _, _, err := s.Advance(10); err == nil {
		t.Fatal("unknown status accepted")
	}
}

// TestSessionDroppedInterval: Known=false makes the session drop its work
// and re-request; interval.Interval{} is accepted by Reassign.
func TestSessionDroppedInterval(t *testing.T) {
	p := sessionProblem()
	nb := core.NewNumbering(p.Shape())
	dropping := &droppingCoordinator{root: nb.RootRange()}
	s := NewSession(Config{ID: "w", Power: 1, UpdatePeriodNodes: 5}, dropping, p)
	for i := 0; i < 50 && !s.Finished(); i++ {
		if _, _, err := s.Advance(100); err != nil {
			t.Fatal(err)
		}
	}
	if dropping.drops == 0 {
		t.Fatal("the drop path never ran")
	}
}

// droppingCoordinator declares the first update's interval unknown, then
// behaves normally and finishes.
type droppingCoordinator struct {
	root    interval.Interval
	granted bool
	drops   int
}

func (d *droppingCoordinator) RequestWork(transport.WorkRequest) (transport.WorkReply, error) {
	if d.granted {
		return transport.WorkReply{Status: transport.WorkFinished}, nil
	}
	d.granted = true
	return transport.WorkReply{Status: transport.WorkAssigned, IntervalID: 7, Interval: d.root, BestCost: 1 << 62}, nil
}

func (d *droppingCoordinator) UpdateInterval(transport.UpdateRequest) (transport.UpdateReply, error) {
	d.drops++
	return transport.UpdateReply{Known: false}, nil
}

func (d *droppingCoordinator) ReportSolution(transport.SolutionReport) (transport.SolutionAck, error) {
	return transport.SolutionAck{BestCost: 1 << 62}, nil
}
