package worker

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/transport"
	"repro/internal/tsp"
)

// checkShardTiling holds the shard engine to its fold contract between two
// Advance calls: the shard remainders are pairwise disjoint, they lie
// inside the registered interval, and the engine's fold is their exact
// covering interval ([min frontier, registered end)). It returns the union
// of the remainders for the caller's monotone-consumption check.
func checkShardTiling(t *testing.T, g *shardEngine) *interval.Set {
	t.Helper()
	registered := interval.New(g.lo, g.hi)
	rems := g.remainders()
	set := interval.NewSet()
	var minA *big.Int
	for _, rem := range rems {
		if ov := set.Add(rem); ov.Sign() != 0 {
			t.Fatalf("shard remainders overlap by %s units: %v", ov, rems)
		}
		if !registered.ContainsInterval(rem) {
			t.Fatalf("shard remainder %v outside registered interval %v", rem, registered)
		}
		if a := rem.A(); minA == nil || a.Cmp(minA) < 0 {
			minA = a
		}
	}
	fold := g.Remaining()
	if minA == nil {
		if !fold.IsEmpty() {
			t.Fatalf("no shard remainders but fold %v is not empty", fold)
		}
		return set
	}
	if fold.A().Cmp(minA) != 0 {
		t.Fatalf("fold %v does not start at the minimum shard frontier %s", fold, minA)
	}
	if fold.B().Cmp(g.hi) != 0 {
		t.Fatalf("fold %v does not end at the registered end %s", fold, g.hi)
	}
	return set
}

// multicoreCase is one (instance, cores, seed) triple of the cross-check.
type multicoreCase struct {
	name    string
	factory func() bb.Problem
	cores   int
	seed    int64
}

// randomCases draws ~n triples across three problem domains.
func randomCases(n int) []multicoreCase {
	rng := rand.New(rand.NewSource(7))
	var out []multicoreCase
	for i := 0; i < n; i++ {
		cores := 2 + rng.Intn(4) // 2..5 shards
		seed := rng.Int63n(1 << 30)
		var factory func() bb.Problem
		var domain string
		switch i % 3 {
		case 0:
			ins := knapsack.Random(12+rng.Intn(7), seed)
			factory = func() bb.Problem { return knapsack.NewProblem(ins) }
			domain = "knapsack"
		case 1:
			ins := flowshop.Taillard(7+rng.Intn(3), 4+rng.Intn(2), seed)
			factory = func() bb.Problem {
				return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
			}
			domain = "flowshop"
		case 2:
			ins := tsp.RandomEuclidean(7+rng.Intn(2), 100, seed)
			factory = func() bb.Problem { return tsp.NewProblem(ins) }
			domain = "tsp"
		}
		out = append(out, multicoreCase{
			name:    fmt.Sprintf("%02d-%s-c%d", i, domain, cores),
			factory: factory,
			cores:   cores,
			seed:    seed,
		})
	}
	return out
}

// TestMulticoreCrossCheck runs ~50 random (instance, cores, seed) triples:
// two sharded sessions share a farmer (so the partitioning operator splits
// and restricts real multicore folds), the final incumbent must equal the
// sequential bb.Solve oracle, and around every protocol step the union of
// shard remainders must tile the registered interval — disjoint shards,
// exact covering fold, and a consumed region that only ever grows within
// one assignment.
func TestMulticoreCrossCheck(t *testing.T) {
	for _, tc := range randomCases(51) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, _ := bb.Solve(tc.factory(), bb.Infinity)
			nb := core.NewNumbering(tc.factory().Shape())
			f := farmer.New(nb.RootRange())
			rng := rand.New(rand.NewSource(tc.seed))
			type tracked struct {
				sess     *Session
				requests int64
				consumed *interval.Set
			}
			var members []*tracked
			for i := 0; i < 2; i++ {
				sess := NewShardedSession(Config{
					ID:                transport.WorkerID(fmt.Sprintf("mc%d", i)),
					Power:             1 + int64(i),
					Cores:             tc.cores,
					UpdatePeriodNodes: 64 + rng.Int63n(256),
				}, f, tc.factory)
				members = append(members, &tracked{sess: sess, requests: -1, consumed: interval.NewSet()})
			}
			for steps := 0; ; steps++ {
				if steps > 1_000_000 {
					t.Fatal("resolution did not terminate")
				}
				allFinished := true
				for _, m := range members {
					if m.sess.Finished() {
						continue
					}
					allFinished = false
					if _, _, err := m.sess.Advance(32 + rng.Int63n(512)); err != nil {
						t.Fatalf("advance: %v", err)
					}
					if m.sess.ex == nil {
						continue // never assigned (resolution may already be over)
					}
					g, ok := m.sess.ex.(*shardEngine)
					if !ok {
						t.Fatalf("session engine is %T, want *shardEngine", m.sess.ex)
					}
					remainders := checkShardTiling(t, g)
					if m.sess.Messages.Requests != m.requests {
						// Fresh assignment: restart the monotone check.
						m.requests = m.sess.Messages.Requests
						m.consumed = interval.NewSet()
					} else {
						// Within one assignment, no remainder may cover
						// ground the engine had already consumed.
						for _, rem := range remainders.Intervals() {
							if regrown := m.consumed.Clone().Sub(rem); regrown.Sign() != 0 {
								t.Fatalf("remainder %v re-grew over %s consumed units", rem, regrown)
							}
						}
					}
					// consumed = registered \ remainders, accumulated (the
					// registered interval itself may shrink through farmer
					// restricts; once consumed, always consumed).
					registered := interval.New(g.lo, g.hi)
					step := interval.NewSet(registered.Clone())
					for _, rem := range remainders.Intervals() {
						step.Sub(rem)
					}
					for _, iv := range step.Intervals() {
						m.consumed.Add(iv)
					}
				}
				if allFinished {
					break
				}
			}
			got := f.Best()
			if got.Cost != want.Cost {
				t.Fatalf("parallel incumbent %d != sequential %d", got.Cost, want.Cost)
			}
			if want.Valid() && !got.Valid() {
				t.Fatal("sequential found a solution but the sharded workers have none")
			}
		})
	}
}

// TestRunParallelMatchesSequential drives the goroutine runtime end to end
// against a real farmer: the concurrent shard engine must prove the same
// optimum as the sequential solver, on several core counts.
func TestRunParallelMatchesSequential(t *testing.T) {
	ins := flowshop.Taillard(9, 5, 11)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := bb.Solve(factory(), bb.Infinity)
	for _, cores := range []int{1, 2, 4} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			nb := core.NewNumbering(factory().Shape())
			f := farmer.New(nb.RootRange())
			res, err := RunParallel(context.Background(), Config{
				ID:                "par",
				Power:             1,
				Cores:             cores,
				UpdatePeriodNodes: 512,
				StepSize:          256,
			}, f, factory)
			if err != nil {
				t.Fatalf("RunParallel: %v", err)
			}
			if best := f.Best(); best.Cost != want.Cost {
				t.Fatalf("cores=%d: incumbent %d != sequential %d", cores, best.Cost, want.Cost)
			}
			if res.Stats.Explored == 0 {
				t.Fatal("no nodes explored")
			}
			if !f.Done() {
				t.Fatal("farmer not done after RunParallel returned")
			}
		})
	}
}

// TestShardEngineStealsRebalance pins the internal load balancer: on a
// lopsided two-shard assignment the dry shard must steal from its sibling
// rather than idle, so both end up contributing explored nodes.
func TestShardEngineStealsRebalance(t *testing.T) {
	ins := knapsack.Random(16, 3)
	factory := func() bb.Problem { return knapsack.NewProblem(ins) }
	nb := core.NewNumbering(factory().Shape())
	root := nb.RootRange()
	g := newShardEngine(factory, nb, 2, 128, root, bb.Infinity)
	// Kill shard 1's tile outright: it must immediately steal from shard 0.
	g.shards[1].Reassign(interval.Interval{})
	for i := 0; i < 1_000_000 && !g.Done(); i++ {
		g.Step(64)
	}
	if !g.Done() {
		t.Fatal("engine did not finish")
	}
	if st := g.shards[1].Stats(); st.Explored == 0 {
		t.Fatal("dry shard never stole any work")
	}
	want, _ := bb.Solve(factory(), bb.Infinity)
	if g.Best().Cost != want.Cost {
		t.Fatalf("engine best %d != sequential %d", g.Best().Cost, want.Cost)
	}
}
