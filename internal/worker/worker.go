// Package worker implements the B&B process of the paper's architecture
// (§4): it hosts one interval-driven explorer (internal/core), speaks the
// pull-model protocol of internal/transport, checkpoints its interval by
// periodically re-registering its fold with the coordinator (§4.1), pushes
// improving solutions immediately and pulls the global best regularly
// (§4.4), and requests a new interval when it joins and whenever it
// finishes one (§4.2).
//
// The protocol logic lives in Session, a step-driven state machine: the
// goroutine runtime (Run) and the discrete-event grid simulator
// (internal/gridsim) drive the same code, so simulated statistics are
// produced by the real protocol, not a model of it.
package worker

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/transport"
)

// Config parameterizes a worker.
type Config struct {
	// ID identifies this process to the coordinator.
	ID transport.WorkerID
	// Power is the self-estimated exploration speed (nodes/second) the
	// partitioning operator splits with (§4.2).
	Power int64
	// AutoPower makes Run measure the real exploration rate and refresh
	// the reported power every few seconds, so heterogeneous hosts are
	// split proportionally without manual calibration ("the choice of
	// the partitioning point C depends on the power and the availability
	// of the processors", §4.2). The initial Power is used until the
	// first measurement.
	AutoPower bool
	// UpdatePeriodNodes is how many nodes to explore between two
	// coordinator updates — the worker-side checkpoint period. The
	// paper's workers performed ~2M checkpoints over 6.5e12 nodes
	// (every few million nodes). Default 1<<16.
	UpdatePeriodNodes int64
	// StepSize is the engine slice used by Run between context checks.
	// Default 1<<12.
	StepSize int64
	// Cores is how many shard explorers this worker runs over a tiling of
	// its assigned interval (the intra-worker multicore engine; see
	// DESIGN.md §7). It only takes effect through the entry points that
	// can supply one Problem instance per shard: NewShardedSession (the
	// deterministic, step-driven form used by the simulator and the chaos
	// harness) and RunParallel (the goroutine runtime used on real
	// multicore hosts, where zero means runtime.GOMAXPROCS). Zero or one
	// keeps the paper's single-explorer worker.
	Cores int
}

func (c *Config) fillDefaults() {
	if c.UpdatePeriodNodes <= 0 {
		c.UpdatePeriodNodes = 1 << 16
	}
	if c.StepSize <= 0 {
		c.StepSize = 1 << 12
	}
	if c.Power <= 0 {
		c.Power = 1
	}
}

// engine abstracts the exploration side of a session: the paper's single
// interval-driven Explorer or the multicore shard engine that presents the
// same fold/restrict surface over a tiling of the interval. Everything the
// protocol state machine needs is here; *core.Explorer satisfies it as-is.
type engine interface {
	Step(budget int64) (explored int64, done bool)
	Remaining() interval.Interval
	Restrict(iv interval.Interval)
	Reassign(iv interval.Interval)
	AdoptBest(cost int64)
	Best() bb.Solution
	Stats() bb.Stats
	Done() bool
}

// Session is the worker's protocol state machine. Drive it with Advance.
// Not safe for concurrent use.
type Session struct {
	cfg   Config
	coord transport.Coordinator
	nb    *core.Numbering
	ex    engine

	// newEngine builds the exploration engine on the first assignment;
	// it decides single-explorer vs sharded and wires the improvement
	// hook back into pushSolution.
	newEngine func(iv interval.Interval, bestCost int64) engine

	intervalID  int64
	haveWork    bool
	finished    bool
	sinceUpdate int64
	reported    bb.Stats // stats already shipped to the coordinator
	pushErr     error

	// Messages counts protocol calls by kind, for tests and statistics.
	Messages struct {
		Requests, Updates, Reports int64
	}
}

// NewSession builds a session over a problem and a coordinator connection.
// The session hosts the paper's single interval-driven explorer; Cores is
// ignored here because one Problem instance can only back one shard — use
// NewShardedSession with a factory for the multicore engine.
func NewSession(cfg Config, coord transport.Coordinator, prob bb.Problem) *Session {
	cfg.fillDefaults()
	s := &Session{cfg: cfg, coord: coord, nb: core.NewNumbering(prob.Shape())}
	s.newEngine = func(iv interval.Interval, bestCost int64) engine {
		e := core.NewExplorer(prob, s.nb, iv, bestCost)
		e.OnImprove = s.pushSolution
		return e
	}
	return s
}

// NewShardedSession builds a session whose exploration engine runs
// cfg.Cores shard explorers over a tiling of the assigned interval, each on
// its own Problem instance from factory. The engine is stepped
// deterministically inside Advance (round-robin shards, richest-victim
// halving steals), so the session stays a single-threaded state machine:
// the grid simulator and the chaos harness drive multicore workers with
// byte-identical traces, while the farmer still sees the paper's exact
// single-worker protocol — one fold, one power, one checkpoint. Cores <= 1
// degenerates to the classic single-explorer session.
func NewShardedSession(cfg Config, coord transport.Coordinator, factory func() bb.Problem) *Session {
	if cfg.Cores <= 1 {
		return NewSession(cfg, coord, factory())
	}
	cfg.fillDefaults()
	probe := factory()
	s := &Session{cfg: cfg, coord: coord, nb: core.NewNumbering(probe.Shape())}
	fac := reuseFirst(probe, factory)
	s.newEngine = func(iv interval.Interval, bestCost int64) engine {
		g := newShardEngine(fac, s.nb, cfg.Cores, cfg.StepSize, iv, bestCost)
		g.onImprove = s.pushSolution
		return g
	}
	return s
}

// reuseFirst wraps factory so the instance already built to read Shape()
// backs the first shard instead of being discarded (Problem construction
// is not free — flowshop builds job matrices and Johnson pair orders).
func reuseFirst(probe bb.Problem, factory func() bb.Problem) func() bb.Problem {
	return func() bb.Problem {
		if p := probe; p != nil {
			probe = nil
			return p
		}
		return factory()
	}
}

// SetPower refreshes the exploration-speed estimate reported to the
// coordinator on subsequent messages.
func (s *Session) SetPower(p int64) {
	if p > 0 {
		s.cfg.Power = p
	}
}

// Power returns the currently reported exploration speed.
func (s *Session) Power() int64 { return s.cfg.Power }

// Finished reports whether the coordinator declared the resolution over.
func (s *Session) Finished() bool { return s.finished }

// HasWork reports whether the session currently holds an interval.
func (s *Session) HasWork() bool { return s.haveWork }

// Stats returns the cumulative exploration counters of the local engine.
func (s *Session) Stats() bb.Stats {
	if s.ex == nil {
		return bb.Stats{}
	}
	return s.ex.Stats()
}

// Best returns the local best solution (which, thanks to sharing, tracks
// the global best cost).
func (s *Session) Best() bb.Solution {
	if s.ex == nil {
		return bb.Solution{Cost: bb.Infinity}
	}
	return s.ex.Best()
}

// Advance explores up to budget nodes, interleaving protocol exchanges as
// they come due. It returns the number of nodes actually explored and
// whether the whole resolution is finished. A (0, false, nil) return means
// the coordinator asked the worker to wait.
func (s *Session) Advance(budget int64) (explored int64, finished bool, err error) {
	if budget <= 0 && !s.haveWork && !s.finished {
		// A zero-budget call still acquires work, so a slow host (in a
		// simulator tick too short to finish a node) asks for its
		// interval immediately instead of idling until it has banked
		// a full node of credit.
		_, err := s.requestWork()
		return 0, s.finished, err
	}
	for explored < budget && !s.finished {
		if !s.haveWork {
			ok, err := s.requestWork()
			if err != nil {
				return explored, s.finished, err
			}
			if !ok {
				return explored, s.finished, nil // wait
			}
			continue
		}
		slice := budget - explored
		if due := s.cfg.UpdatePeriodNodes - s.sinceUpdate; due < slice {
			slice = due
		}
		n, done := s.ex.Step(slice)
		explored += n
		s.sinceUpdate += n
		if s.pushErr != nil {
			err := s.pushErr
			s.pushErr = nil
			return explored, s.finished, err
		}
		if done || s.sinceUpdate >= s.cfg.UpdatePeriodNodes {
			if err := s.update(); err != nil {
				return explored, s.finished, err
			}
		}
	}
	return explored, s.finished, nil
}

// requestWork asks the coordinator for an interval. It returns false with a
// nil error when told to wait.
func (s *Session) requestWork() (bool, error) {
	s.Messages.Requests++
	reply, err := s.coord.RequestWork(transport.WorkRequest{Worker: s.cfg.ID, Power: s.cfg.Power})
	if err != nil {
		return false, fmt.Errorf("worker %s: request work: %w", s.cfg.ID, err)
	}
	switch reply.Status {
	case transport.WorkFinished:
		s.finished = true
		return false, nil
	case transport.WorkWait:
		return false, nil
	case transport.WorkAssigned:
		if s.ex == nil {
			s.ex = s.newEngine(reply.Interval, reply.BestCost)
		} else {
			s.ex.Reassign(reply.Interval)
			s.ex.AdoptBest(reply.BestCost)
		}
		s.intervalID = reply.IntervalID
		s.haveWork = true
		s.sinceUpdate = 0
		return true, nil
	default:
		return false, fmt.Errorf("worker %s: unknown work status %v", s.cfg.ID, reply.Status)
	}
}

// pushSolution implements rule 2 of solution sharing: improvements go to
// the coordinator immediately. It runs inside Explorer.Step; errors are
// stashed and surfaced by Advance.
func (s *Session) pushSolution(sol bb.Solution) {
	s.Messages.Reports++
	ack, err := s.coord.ReportSolution(transport.SolutionReport{
		Worker: s.cfg.ID, Cost: sol.Cost, Path: sol.Path,
	})
	if err != nil {
		s.pushErr = fmt.Errorf("worker %s: report solution: %w", s.cfg.ID, err)
		return
	}
	s.ex.AdoptBest(ack.BestCost)
}

// update re-registers the folded remaining interval (the worker checkpoint
// of §4.1), ships statistics deltas, applies the intersected copy and the
// shared best, and releases the interval when it is finished or was
// retired by the coordinator.
func (s *Session) update() error {
	stats := s.ex.Stats()
	req := transport.UpdateRequest{
		Worker:        s.cfg.ID,
		IntervalID:    s.intervalID,
		Remaining:     s.ex.Remaining(),
		Power:         s.cfg.Power,
		ExploredDelta: stats.Explored - s.reported.Explored,
		PrunedDelta:   stats.Pruned - s.reported.Pruned,
		LeavesDelta:   stats.Leaves - s.reported.Leaves,
	}
	s.Messages.Updates++
	reply, err := s.coord.UpdateInterval(req)
	if err != nil {
		return fmt.Errorf("worker %s: update interval: %w", s.cfg.ID, err)
	}
	s.reported = stats
	s.sinceUpdate = 0
	if !reply.Known {
		// Interval completed elsewhere or reassigned after this worker
		// was presumed dead: drop it.
		s.ex.Reassign(interval.Interval{})
		s.haveWork = false
		s.finished = reply.Finished
		return nil
	}
	s.ex.Restrict(reply.Interval)
	s.ex.AdoptBest(reply.BestCost)
	if s.ex.Done() {
		s.haveWork = false
	}
	s.finished = reply.Finished
	return nil
}

// Reported returns the cumulative statistics already shipped to the
// coordinator. The difference with Stats is the work that would be redone
// if this worker crashed right now — the raw material of the paper's
// redundant-node rate.
func (s *Session) Reported() bb.Stats { return s.reported }

// Checkpoint forces an immediate interval update if the session holds work:
// the graceful-leave path of a cycle-stealing host (the owner reclaims the
// machine, the B&B process checkpoints and dies; nothing is lost). It is a
// no-op without work.
func (s *Session) Checkpoint() error {
	if !s.haveWork || s.finished {
		return nil
	}
	return s.update()
}

// Result summarizes a worker's run.
type Result struct {
	// Best is the worker's local best solution.
	Best bb.Solution
	// Stats are the cumulative engine counters.
	Stats bb.Stats
	// Messages counts protocol calls.
	Requests, Updates, Reports int64
}

// Run drives a session until the resolution finishes or the context is
// cancelled. Wait replies back off with a short sleep (the cycle-stealing
// worker keeps polling; remember the farmer never calls back).
func Run(ctx context.Context, cfg Config, coord transport.Coordinator, prob bb.Problem) (Result, error) {
	cfg.fillDefaults()
	s := NewSession(cfg, coord, prob)
	backoff := 10 * time.Millisecond
	calStart := time.Now()
	var calNodes int64
	for {
		select {
		case <-ctx.Done():
			return s.result(), ctx.Err()
		default:
		}
		n, finished, err := s.Advance(cfg.StepSize)
		if err != nil {
			return s.result(), err
		}
		if finished {
			return s.result(), nil
		}
		if cfg.AutoPower {
			calNodes += n
			if elapsed := time.Since(calStart); elapsed >= 2*time.Second {
				s.SetPower(calNodes * int64(time.Second) / int64(elapsed))
				calStart, calNodes = time.Now(), 0
			}
		}
		if n == 0 && !s.haveWork {
			// Told to wait.
			select {
			case <-ctx.Done():
				return s.result(), ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
		} else {
			backoff = 10 * time.Millisecond
		}
	}
}

func (s *Session) result() Result {
	return Result{
		Best:     s.Best(),
		Stats:    s.Stats(),
		Requests: s.Messages.Requests,
		Updates:  s.Messages.Updates,
		Reports:  s.Messages.Reports,
	}
}
