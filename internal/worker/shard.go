package worker

import (
	"math/big"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
)

// shardEngine is the intra-worker multicore engine in its deterministic,
// step-driven form: P shard explorers over a tiling of the worker's
// assigned interval, advanced round-robin in fixed quanta by the calling
// goroutine. Work balances internally with the same donation algebra the
// p2p ring steals with — an idle shard halves the richest sibling's
// remainder (core.Donate) — and improvements propagate through a shared
// incumbent adopted at the start of every quantum.
//
// To the protocol the engine is indistinguishable from one explorer: its
// fold (Remaining) is the covering interval [min shard frontier, B) of the
// union of shard remainders, which shrinks monotonically because shards
// only ever consume or exchange work inside it — so the farmer's
// intersection updates, the checkpoint format and the conformance
// invariants all carry over unchanged (DESIGN.md §7). Being entirely
// caller-driven, the engine is deterministic: the simulator and the chaos
// harness replay multicore workers byte for byte. The goroutine form of the
// same engine lives in parallel.go.
type shardEngine struct {
	nb     *core.Numbering
	shards []*core.Explorer

	// lo, hi are the bounds of the registered interval: the assignment
	// clamped to the root range, narrowed by every Restrict since. hi is
	// the fold's end — a DFS remainder always ends at the interval end,
	// and pinning the multicore fold there too keeps the farmer from
	// mistaking a finished top shard for a stale copy.
	lo, hi *big.Int

	// quantum is the per-shard slice of the round-robin; turn persists
	// across Step calls so interleaving depends only on the call sequence.
	quantum int64
	turn    int

	// best is the engine-wide incumbent: the best of every shard's
	// discoveries and every externally adopted cost. Shards adopt its
	// cost before each quantum.
	best bb.Solution

	// onImprove fires on engine-wide improvements (wired to the
	// session's immediate solution push).
	onImprove func(bb.Solution)
}

func newShardEngine(factory func() bb.Problem, nb *core.Numbering, cores int, stepSize int64, iv interval.Interval, bestCost int64) *shardEngine {
	g := &shardEngine{
		nb:      nb,
		quantum: stepSize / int64(cores),
		best:    bb.Solution{Cost: bestCost},
		lo:      new(big.Int),
		hi:      new(big.Int),
	}
	if g.quantum < 64 {
		g.quantum = 64
	}
	g.shards = make([]*core.Explorer, cores)
	parts := g.tile(iv)
	for i := range g.shards {
		ex := core.NewExplorer(factory(), nb, parts[i], bestCost)
		ex.OnImprove = g.improve
		g.shards[i] = ex
	}
	return g
}

// tile clamps iv to the root range, records the registered bounds and
// returns one contiguous piece per shard. An empty assignment — including
// the zero value, which Intersect maps to [0,0) — tiles into all-empty
// pieces, the same "idle explorer owns zero leaves" convention as
// clampAssigned in internal/core.
func (g *shardEngine) tile(iv interval.Interval) []interval.Interval {
	clamped := iv.Intersect(g.nb.RootRange())
	clamped.AInto(g.lo)
	clamped.BInto(g.hi)
	return interval.SplitEven(clamped, len(g.shards))
}

// improve lifts a shard's local improvement to the engine incumbent. A
// shard adopts the engine cost before each of its quanta and the engine is
// single-threaded, so a shard-local improvement is always an engine-wide
// one; the guard is belt and braces.
func (g *shardEngine) improve(sol bb.Solution) {
	if sol.Cost >= g.best.Cost {
		return
	}
	g.best = sol
	if g.onImprove != nil {
		g.onImprove(sol.Clone())
	}
}

// Step explores up to budget nodes across the shards, round-robin in
// quantum-sized slices, stealing for idle shards between slices.
func (g *shardEngine) Step(budget int64) (explored int64, done bool) {
	for explored < budget {
		idle := 0
		for range g.shards {
			ex := g.shards[g.turn]
			g.turn = (g.turn + 1) % len(g.shards)
			if ex.Done() && !g.stealFor(ex) {
				idle++
				continue
			}
			ex.AdoptBest(g.best.Cost)
			slice := g.quantum
			if left := budget - explored; left < slice {
				slice = left
			}
			n, _ := ex.Step(slice)
			explored += n
			if explored >= budget {
				break
			}
		}
		if idle == len(g.shards) {
			return explored, true
		}
	}
	return explored, g.Done()
}

// stealFor rebalances work onto an exhausted shard: the richest sibling
// (largest remainder, lowest index on ties — determinism) donates half via
// the shared halving operator. It reports whether the thief got anything.
func (g *shardEngine) stealFor(thief *core.Explorer) bool {
	lens := make([]*big.Int, len(g.shards))
	for i, ex := range g.shards {
		if ex != thief && !ex.Done() {
			lens[i] = ex.Remaining().Len()
		}
	}
	idx := richest(lens)
	if idx < 0 {
		return false
	}
	give := core.Donate(g.shards[idx])
	if give.IsEmpty() {
		return false
	}
	thief.Reassign(give)
	thief.AdoptBest(g.best.Cost)
	return true
}

// foldCover is the multicore fold both engine forms share: the covering
// interval [min remainder frontier, hi) of a set of shard remainders, or
// the empty [hi, hi) when nothing remains. Exactly the shape of a single
// explorer's remainder — a DFS remainder always ends at the interval end —
// so the checkpoint a sharded worker re-registers is indistinguishable
// from the paper's. The already-explored holes above the minimum frontier
// stay inside the fold; they are given up only as the frontier passes
// them, which keeps the fold monotone and the redundancy accounting
// conservative.
func foldCover(rems []interval.Interval, hi *big.Int) interval.Interval {
	var lo *big.Int
	for _, rem := range rems {
		if rem.IsEmpty() {
			continue
		}
		a := rem.A()
		if lo == nil || a.Cmp(lo) < 0 {
			lo = a
		}
	}
	if lo == nil {
		return interval.New(hi, hi)
	}
	return interval.New(lo, hi)
}

// richest picks the steal victim both engine forms share: the index of the
// largest length that is worth splitting (at least 2 numbers; nil marks a
// non-candidate), lowest index on ties, -1 when nobody qualifies.
func richest(lens []*big.Int) int {
	idx := -1
	bestLen := big.NewInt(1)
	for i, l := range lens {
		if l != nil && l.Cmp(bestLen) > 0 {
			idx, bestLen = i, l
		}
	}
	return idx
}

// Remaining folds the union of the shard remainders into its covering
// interval (see foldCover).
func (g *shardEngine) Remaining() interval.Interval {
	rems := make([]interval.Interval, 0, len(g.shards))
	for _, ex := range g.shards {
		if !ex.Done() {
			rems = append(rems, ex.Remaining())
		}
	}
	return foldCover(rems, g.hi)
}

// Restrict narrows the registered interval and every shard to the
// coordinator's copy (eq. 14 applied shard-wise; each shard intersects its
// own tile with the reply).
func (g *shardEngine) Restrict(iv interval.Interval) {
	if iv.IsEmpty() {
		g.Reassign(interval.Interval{})
		return
	}
	if iv.CmpA(g.lo) > 0 {
		iv.AInto(g.lo)
	}
	if iv.CmpB(g.hi) < 0 {
		iv.BInto(g.hi)
	}
	for _, ex := range g.shards {
		ex.Restrict(iv)
	}
}

// Reassign gives the engine a new interval: re-tile, one piece per shard.
func (g *shardEngine) Reassign(iv interval.Interval) {
	parts := g.tile(iv)
	for i, ex := range g.shards {
		ex.Reassign(parts[i])
	}
	g.turn = 0
}

// AdoptBest lowers the engine incumbent to an externally discovered cost;
// shards pick it up at their next quantum.
func (g *shardEngine) AdoptBest(cost int64) {
	if cost < g.best.Cost {
		g.best = bb.Solution{Cost: cost}
	}
}

// Best returns a copy of the engine-wide incumbent.
func (g *shardEngine) Best() bb.Solution { return g.best.Clone() }

// Stats sums the shard counters.
func (g *shardEngine) Stats() bb.Stats {
	var total bb.Stats
	for _, ex := range g.shards {
		total.Add(ex.Stats())
	}
	return total
}

// Done reports whether every shard exhausted its work.
func (g *shardEngine) Done() bool {
	for _, ex := range g.shards {
		if !ex.Done() {
			return false
		}
	}
	return true
}

// remainders returns the current shard remainders (tests use it to check
// the tiling invariant: pairwise disjoint, inside the registered interval,
// with the fold's frontier equal to their minimum).
func (g *shardEngine) remainders() []interval.Interval {
	out := make([]interval.Interval, 0, len(g.shards))
	for _, ex := range g.shards {
		if rem := ex.Remaining(); !rem.IsEmpty() {
			out = append(out, rem)
		}
	}
	return out
}

var _ engine = (*shardEngine)(nil)
