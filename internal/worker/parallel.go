package worker

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/transport"
)

// RunParallel is the goroutine form of the multicore worker: cfg.Cores
// shard explorers (zero means runtime.GOMAXPROCS) run concurrently over a
// tiling of the worker's assigned interval, while the calling goroutine
// owns the protocol — it requests intervals, folds the shard remainders
// into the single covering interval of the paper's checkpoint, and applies
// the coordinator's replies. factory must return a fresh Problem per call
// (one per shard; Problem state machines are single-threaded).
//
// The farmer-visible protocol is byte-for-byte the single-worker protocol:
// one fold, one power, one interval id. Inside, idle shards steal by
// halving the richest sibling's remainder (core.Donate under the victim's
// lock) and improvements go to a shared incumbent cell that also pushes to
// the coordinator immediately, preserving rule 2 of solution sharing.
// Unlike the step-driven shardEngine, this runtime is scheduled by the Go
// runtime and is therefore not deterministic — the simulator and the chaos
// harness use NewShardedSession instead (the determinism boundary,
// DESIGN.md §7).
func RunParallel(ctx context.Context, cfg Config, coord transport.Coordinator, factory func() bb.Problem) (Result, error) {
	cfg.fillDefaults()
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	if cfg.Cores == 1 {
		return Run(ctx, cfg, coord, factory())
	}
	w := newParallelWorker(cfg, coord, factory)
	return w.run(ctx)
}

// pshard is one shard explorer plus the lock that serializes every touch of
// it: its own goroutine's Step slices, the protocol loop's folds and
// restricts, and siblings' donations.
type pshard struct {
	mu sync.Mutex
	ex *core.Explorer
}

// parallelWorker wires the shards, the shared incumbent and the protocol
// state together.
type parallelWorker struct {
	cfg     Config
	coord   transport.Coordinator
	nb      *core.Numbering
	shards  []*pshard
	shardWG sync.WaitGroup

	// stealMu serializes work movement (donations) against whole-engine
	// operations (fold, restrict, reassign): a steal concurrent with a
	// fold could move an interval from a not-yet-collected victim to an
	// already-collected thief and the fold would report it explored —
	// lost work. Shard-local exploration needs no such fence; a fold
	// racing a Step slice merely reports a slightly stale (larger)
	// remainder, which is always safe.
	stealMu sync.Mutex

	// mu guards the incumbent cell, the pending report, the protocol
	// error slot and the message counters. It is never held across a
	// coordinator call: every shard touches it after each step slice, so
	// an RPC under it would stall the whole engine on one slow network
	// round.
	mu       sync.Mutex
	best     bb.Solution
	pending  *bb.Solution // local improvement awaiting its ReportSolution
	pushErr  error
	messages struct{ requests, updates, reports int64 }

	// reportMu serializes ReportSolution RPCs (so a slow report cannot
	// interleave with a faster one mid-flight); the incumbent cell itself
	// stays monotone under mu, and the farmer ignores stale worse
	// reports, so cross-ordering is harmless.
	reportMu sync.Mutex

	// gen/parked implement idle-shard parking: a shard that is done and
	// cannot steal waits for the assignment generation to change.
	genMu   sync.Mutex
	genCond *sync.Cond
	gen     int64
	stopped bool

	// wake coalesces shard→protocol signals (checkpoint due, all idle,
	// push error).
	wake chan struct{}

	// sinceUpdate counts explored nodes since the last interval update
	// (under mu — contention is one add per step slice).
	sinceUpdate int64

	// hi is the end of the registered interval, maintained by the
	// protocol loop (assignment and restricts only).
	hi *big.Int

	reported bb.Stats
}

func newParallelWorker(cfg Config, coord transport.Coordinator, factory func() bb.Problem) *parallelWorker {
	probe := factory()
	w := &parallelWorker{
		cfg:   cfg,
		coord: coord,
		nb:    core.NewNumbering(probe.Shape()),
		best:  bb.Solution{Cost: bb.Infinity},
		wake:  make(chan struct{}, 1),
		hi:    new(big.Int),
	}
	fac := reuseFirst(probe, factory)
	w.genCond = sync.NewCond(&w.genMu)
	for i := 0; i < cfg.Cores; i++ {
		sh := &pshard{ex: core.NewExplorer(fac(), w.nb, interval.Interval{}, bb.Infinity)}
		sh.ex.OnImprove = w.offer
		w.shards = append(w.shards, sh)
	}
	return w
}

func (w *parallelWorker) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// offer records a shard's improvement in the shared cell and marks it for
// pushing. It runs inside Explorer.Step under the shard's own lock, so it
// must not touch the network: fold/steal/stats all need that lock, and an
// RPC under it would freeze every sibling. The discovering shard flushes
// the report the moment its step slice ends (flushReport in runShard) —
// within one slice of the discovery, which is this runtime's "immediately
// informs the coordinator" (rule 2).
func (w *parallelWorker) offer(sol bb.Solution) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if sol.Cost >= w.best.Cost {
		return
	}
	w.best = sol
	w.pending = &sol // OnImprove hands over a private copy
}

// flushReport pushes the latest unreported improvement (if any) to the
// coordinator, outside every shard lock. The coordinator must be safe for
// concurrent use (the farmer monitor and the net/rpc client both are);
// reportMu keeps reports from interleaving mid-flight. Errors are stashed
// for the protocol loop. Improvements raced past by a newer one are never
// reported at all — the farmer would ignore the stale cost anyway.
func (w *parallelWorker) flushReport() {
	w.mu.Lock()
	sol := w.pending
	w.pending = nil
	if sol == nil {
		w.mu.Unlock()
		return
	}
	w.messages.reports++
	w.mu.Unlock()
	w.reportMu.Lock()
	ack, err := w.coord.ReportSolution(transport.SolutionReport{
		Worker: w.cfg.ID, Cost: sol.Cost, Path: sol.Path,
	})
	w.reportMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.pushErr == nil {
			w.pushErr = fmt.Errorf("worker %s: report solution: %w", w.cfg.ID, err)
		}
		w.signal()
		return
	}
	if ack.BestCost < w.best.Cost {
		w.best = bb.Solution{Cost: ack.BestCost}
	}
}

// bestCost reads the shared incumbent cost.
func (w *parallelWorker) bestCost() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.best.Cost
}

// adopt lowers the shared incumbent to an externally learned cost.
func (w *parallelWorker) adopt(cost int64) {
	w.mu.Lock()
	if cost < w.best.Cost {
		w.best = bb.Solution{Cost: cost}
	}
	w.mu.Unlock()
}

// runShard is one shard goroutine: step, steal when dry, park when the
// whole engine is dry.
func (w *parallelWorker) runShard(sh *pshard) {
	defer w.shardWG.Done()
	for {
		gen, stopped := w.generation()
		if stopped {
			return
		}
		cost := w.bestCost()
		sh.mu.Lock()
		sh.ex.AdoptBest(cost)
		n, done := sh.ex.Step(w.cfg.StepSize)
		sh.mu.Unlock()
		w.flushReport()
		if n > 0 {
			w.mu.Lock()
			w.sinceUpdate += n
			due := w.sinceUpdate >= w.cfg.UpdatePeriodNodes
			w.mu.Unlock()
			if due {
				w.signal()
			}
		}
		if done && !w.steal(sh) {
			// Nothing to do until the protocol loop assigns a new
			// interval (or retires the worker). Tell it a shard went
			// idle — if all are, the interval is finished.
			w.signal()
			w.await(gen)
		}
	}
}

// generation reads the assignment generation and the stop flag.
func (w *parallelWorker) generation() (int64, bool) {
	w.genMu.Lock()
	defer w.genMu.Unlock()
	return w.gen, w.stopped
}

// await parks until the assignment generation moves past gen (new work was
// dealt) or the worker stops.
func (w *parallelWorker) await(gen int64) {
	w.genMu.Lock()
	for w.gen == gen && !w.stopped {
		w.genCond.Wait()
	}
	w.genMu.Unlock()
}

// bumpGen wakes parked shards after an assignment (or to re-check the stop
// flag).
func (w *parallelWorker) bumpGen() {
	w.genMu.Lock()
	w.gen++
	w.genCond.Broadcast()
	w.genMu.Unlock()
}

// steal moves half of the richest sibling's remainder onto a dry shard,
// under stealMu so donations never race folds. It reports whether the
// thief has work to do — which includes the case where assign() slipped in
// between the thief going dry and this call and dealt it a fresh tile:
// overwriting that tile with a stolen interval would orphan it (work no
// shard owns, folded away as if explored), so the thief keeps it and the
// "steal" succeeds vacuously.
func (w *parallelWorker) steal(thief *pshard) bool {
	w.stealMu.Lock()
	defer w.stealMu.Unlock()
	thief.mu.Lock()
	hasWork := !thief.ex.Done()
	thief.mu.Unlock()
	if hasWork {
		return true
	}
	// Victims keep exploring under their own locks while we scan, so a
	// chosen victim may have drained by the time it is asked to donate;
	// re-scan until a donation lands or no shard has anything to give.
	for {
		lens := make([]*big.Int, len(w.shards))
		for i, sh := range w.shards {
			if sh == thief {
				continue
			}
			sh.mu.Lock()
			if !sh.ex.Done() {
				lens[i] = sh.ex.Remaining().Len()
			}
			sh.mu.Unlock()
		}
		idx := richest(lens)
		if idx < 0 {
			return false
		}
		victim := w.shards[idx]
		victim.mu.Lock()
		give := core.Donate(victim.ex)
		victim.mu.Unlock()
		if give.IsEmpty() {
			continue // drained in the window; remaining work only shrinks
		}
		thief.mu.Lock()
		thief.ex.Reassign(give)
		thief.ex.AdoptBest(w.bestCost())
		thief.mu.Unlock()
		return true
	}
}

// fold computes the covering interval of the shard remainders (foldCover,
// shared with the deterministic engine) plus the aggregate engine
// counters, under stealMu so no work is mid-flight between shards.
func (w *parallelWorker) fold() (interval.Interval, bb.Stats) {
	w.stealMu.Lock()
	defer w.stealMu.Unlock()
	var stats bb.Stats
	rems := make([]interval.Interval, 0, len(w.shards))
	for _, sh := range w.shards {
		sh.mu.Lock()
		stats.Add(sh.ex.Stats())
		if !sh.ex.Done() {
			rems = append(rems, sh.ex.Remaining())
		}
		sh.mu.Unlock()
	}
	return foldCover(rems, w.hi), stats
}

// restrictAll narrows every shard to the coordinator's copy.
func (w *parallelWorker) restrictAll(iv interval.Interval) {
	w.stealMu.Lock()
	defer w.stealMu.Unlock()
	if iv.CmpB(w.hi) < 0 {
		iv.BInto(w.hi)
	}
	for _, sh := range w.shards {
		sh.mu.Lock()
		sh.ex.Restrict(iv)
		sh.mu.Unlock()
	}
}

// assign tiles a fresh interval over the shards and wakes them.
func (w *parallelWorker) assign(iv interval.Interval, bestCost int64) {
	w.adopt(bestCost)
	w.stealMu.Lock()
	clamped := iv.Intersect(w.nb.RootRange())
	clamped.BInto(w.hi)
	parts := interval.SplitEven(clamped, len(w.shards))
	for i, sh := range w.shards {
		sh.mu.Lock()
		sh.ex.Reassign(parts[i])
		sh.ex.AdoptBest(w.bestCost())
		sh.mu.Unlock()
	}
	w.stealMu.Unlock()
	w.bumpGen()
}

// allDone reports whether every shard is dry.
func (w *parallelWorker) allDone() bool {
	w.stealMu.Lock()
	defer w.stealMu.Unlock()
	for _, sh := range w.shards {
		sh.mu.Lock()
		done := sh.ex.Done()
		sh.mu.Unlock()
		if !done {
			return false
		}
	}
	return true
}

// takePushErr returns and clears a stashed report error.
func (w *parallelWorker) takePushErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.pushErr
	w.pushErr = nil
	return err
}

// run is the protocol loop: the single-worker protocol of Session, driving
// the concurrent engine.
func (w *parallelWorker) run(ctx context.Context) (Result, error) {
	defer func() {
		w.genMu.Lock()
		w.stopped = true
		w.genCond.Broadcast()
		w.genMu.Unlock()
		w.shardWG.Wait()
	}()
	for i := range w.shards {
		w.shardWG.Add(1)
		go w.runShard(w.shards[i])
	}

	var intervalID int64
	haveWork := false
	backoff := 10 * time.Millisecond
	calStart := time.Now()
	var calNodes int64
	for {
		select {
		case <-ctx.Done():
			return w.result(), ctx.Err()
		default:
		}
		if err := w.takePushErr(); err != nil {
			return w.result(), err
		}
		if !haveWork {
			w.mu.Lock()
			w.messages.requests++
			w.mu.Unlock()
			reply, err := w.coord.RequestWork(transport.WorkRequest{Worker: w.cfg.ID, Power: w.cfg.Power})
			if err != nil {
				return w.result(), fmt.Errorf("worker %s: request work: %w", w.cfg.ID, err)
			}
			switch reply.Status {
			case transport.WorkFinished:
				return w.result(), nil
			case transport.WorkWait:
				select {
				case <-ctx.Done():
					return w.result(), ctx.Err()
				case <-time.After(backoff):
				}
				if backoff < time.Second {
					backoff *= 2
				}
				continue
			case transport.WorkAssigned:
				backoff = 10 * time.Millisecond
				intervalID = reply.IntervalID
				w.assign(reply.Interval, reply.BestCost)
				haveWork = true
				continue
			default:
				return w.result(), fmt.Errorf("worker %s: unknown work status %v", w.cfg.ID, reply.Status)
			}
		}
		// Working: wait for a checkpoint to come due, the interval to
		// finish, or an error; the timeout is a safety net for missed
		// signals.
		select {
		case <-ctx.Done():
			return w.result(), ctx.Err()
		case <-w.wake:
		case <-time.After(50 * time.Millisecond):
		}
		w.mu.Lock()
		due := w.sinceUpdate >= w.cfg.UpdatePeriodNodes
		w.mu.Unlock()
		finished := w.allDone()
		if !due && !finished {
			continue
		}
		w.flushReport() // any improvement goes out before its checkpoint
		rem, stats := w.fold()
		if w.cfg.AutoPower {
			if elapsed := time.Since(calStart); elapsed >= 2*time.Second {
				if nodes := stats.Explored - calNodes; nodes > 0 {
					if p := nodes * int64(time.Second) / int64(elapsed); p > 0 {
						w.cfg.Power = p
					}
				}
				calStart, calNodes = time.Now(), stats.Explored
			}
		}
		w.mu.Lock()
		w.messages.updates++
		w.sinceUpdate = 0
		w.mu.Unlock()
		reply, err := w.coord.UpdateInterval(transport.UpdateRequest{
			Worker:        w.cfg.ID,
			IntervalID:    intervalID,
			Remaining:     rem,
			Power:         w.cfg.Power,
			ExploredDelta: stats.Explored - w.reported.Explored,
			PrunedDelta:   stats.Pruned - w.reported.Pruned,
			LeavesDelta:   stats.Leaves - w.reported.Leaves,
		})
		if err != nil {
			return w.result(), fmt.Errorf("worker %s: update interval: %w", w.cfg.ID, err)
		}
		w.reported = stats
		if !reply.Known {
			// Completed elsewhere or reassigned: drop the interval.
			w.restrictAll(interval.Interval{})
			haveWork = false
			if reply.Finished {
				return w.result(), nil
			}
			continue
		}
		w.adopt(reply.BestCost)
		w.restrictAll(reply.Interval)
		if reply.Finished {
			return w.result(), nil
		}
		if rem.IsEmpty() {
			// The farmer saw the empty fold and retired the interval;
			// time to request fresh work. An interval that merely became
			// empty locally (shards finished during the update RPC) is
			// NOT dropped here: the farmer still holds a non-empty copy
			// leased to us, and only the next update's empty fold
			// releases it — dropping early would strand it until the
			// lease expires and re-explore it wholesale.
			haveWork = false
		}
	}
}

// stats aggregates the shard counters.
func (w *parallelWorker) stats() bb.Stats {
	w.stealMu.Lock()
	defer w.stealMu.Unlock()
	var total bb.Stats
	for _, sh := range w.shards {
		sh.mu.Lock()
		total.Add(sh.ex.Stats())
		sh.mu.Unlock()
	}
	return total
}

func (w *parallelWorker) result() Result {
	stats := w.stats()
	w.mu.Lock()
	defer w.mu.Unlock()
	return Result{
		Best:     w.best.Clone(),
		Stats:    stats,
		Requests: w.messages.requests,
		Updates:  w.messages.updates,
		Reports:  w.messages.reports,
	}
}
