// Shared-connection multiplexing (DESIGN.md §11): many worker sessions on
// one host ride one physical connection per coordinator address. net/rpc
// already multiplexes concurrent calls over a connection by sequence
// number, and Redial (whose lock covers only acquisition and teardown,
// never an in-flight call) is safe to share — so "pooling" is just
// refcounting one Redial per (address, options) pair. At the root, 10k
// workers on 500 hosts become 500 sockets instead of 10k, which is what
// makes the MaxConns cap and the per-connection auth work livable at grid
// scale.
//
// The trade-offs of sharing are deliberate and documented: one call's
// deadline expiry closes the shared connection (every in-flight sharer
// fails and the next call re-dials — the same blast radius a one-host
// network blip has anyway), and the coordinator's eviction policy sees
// one connection per host, so evicting it costs every session on that
// host. Both are the WAN-scale bargain the paper's pull model already
// makes: any lost exchange is retried by its sender.
package transport

import (
	"net/rpc"
	"sync"
)

// poolKey identifies a shareable connection: same address, same options.
// DialOptions is comparable (its TLS config and backoff Rng compare by
// pointer identity, which is exactly right — two legs sharing a
// connection must share the actual config, not an equivalent one).
type poolKey struct {
	addr string
	opts DialOptions
}

// pooled is one refcounted shared leg.
type pooled struct {
	r    *Redial
	key  poolKey
	refs int
}

var (
	poolMu sync.Mutex
	pool   = make(map[poolKey]*pooled)
)

// Shared is a handle on a pooled connection. It implements Coordinator
// and BatchCoordinator by delegating to the shared Redial; Close releases
// the reference, and the underlying connection closes when the last
// handle on this process does.
type Shared struct {
	p      *pooled
	closed bool
	mu     sync.Mutex
}

// DialShared returns a Coordinator backed by one shared physical
// connection per (addr, opts) pair in this process. The connection is
// dialed lazily on the first call and re-dialed after failures under
// opts.Policy, like NewRedialWith — because it IS a NewRedialWith, just
// refcounted. Always release with Close.
func DialShared(addr string, opts DialOptions) *Shared {
	if opts.MaxMessageBytes == 0 {
		opts.MaxMessageBytes = DefaultMaxMessageBytes
	}
	key := poolKey{addr: addr, opts: opts}
	poolMu.Lock()
	defer poolMu.Unlock()
	p, ok := pool[key]
	if !ok {
		p = &pooled{r: NewRedialWith(addr, opts), key: key}
		pool[key] = p
	}
	p.refs++
	return &Shared{p: p}
}

// leg returns the shared Redial, or rpc.ErrShutdown once this handle has
// been Closed. The check is what keeps the pool's refcount honest: a
// closed handle already released its reference, so letting it reach the
// Redial could drive calls on — or re-dial — a connection the pool no
// longer accounts for (and, if the key was re-pooled since, a different
// handle's connection than the caller ever dialed).
func (s *Shared) leg() (*Redial, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, rpc.ErrShutdown
	}
	return s.p.r, nil
}

// RequestWork implements Coordinator.
func (s *Shared) RequestWork(req WorkRequest) (WorkReply, error) {
	r, err := s.leg()
	if err != nil {
		return WorkReply{}, err
	}
	return r.RequestWork(req)
}

// UpdateInterval implements Coordinator.
func (s *Shared) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	r, err := s.leg()
	if err != nil {
		return UpdateReply{}, err
	}
	return r.UpdateInterval(req)
}

// ReportSolution implements Coordinator.
func (s *Shared) ReportSolution(req SolutionReport) (SolutionAck, error) {
	r, err := s.leg()
	if err != nil {
		return SolutionAck{}, err
	}
	return r.ReportSolution(req)
}

// Exchange implements BatchCoordinator.
func (s *Shared) Exchange(req BatchRequest) (BatchReply, error) {
	r, err := s.leg()
	if err != nil {
		return BatchReply{}, err
	}
	return r.Exchange(req)
}

// Close releases this handle; the shared connection closes when the last
// handle does. Idempotent per handle.
func (s *Shared) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	poolMu.Lock()
	s.p.refs--
	last := s.p.refs == 0
	if last {
		delete(pool, s.p.key)
	}
	poolMu.Unlock()
	if last {
		return s.p.r.Close()
	}
	return nil
}

var _ Coordinator = (*Shared)(nil)
var _ BatchCoordinator = (*Shared)(nil)
