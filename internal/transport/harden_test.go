package transport_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/transport"
)

// testFarmer returns a live coordinator over a small integer root, enough
// for real protocol rounds without a problem instance.
func testFarmer() *farmer.Farmer {
	return farmer.New(interval.FromInt64(0, 1_000_000))
}

// blackholeListener accepts connections and never responds — the stalled
// coordinator in the flesh. It returns the address and a stop function.
func blackholeListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	var conns []net.Conn
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return ln.Addr().String()
}

// TestClientDeadlineOnStalledCoordinator: the core liveness promise — a
// call at a black-holed endpoint returns ErrDeadline within the policy's
// timeout instead of blocking forever.
func TestClientDeadlineOnStalledCoordinator(t *testing.T) {
	addr := blackholeListener(t)
	c, err := transport.DialWith(addr, transport.DialOptions{
		Policy: transport.Policy{Timeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
	if !errors.Is(err, transport.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestRedialRetriesThenSurfacesDeadline: the retry policy makes 1+Retries
// attempts — each a fresh dial, visible to the accept counter — and still
// surfaces ErrDeadline when all of them stall.
func TestRedialRetriesThenSurfacesDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	var mu sync.Mutex
	var conns []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()

	r := transport.NewRedialWith(ln.Addr().String(), transport.DialOptions{
		Policy: transport.Policy{
			Timeout: 50 * time.Millisecond,
			Retries: 2,
			Backoff: transport.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		},
	})
	defer r.Close()
	_, err = r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
	if !errors.Is(err, transport.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if got := accepts.Load(); got != 3 {
		t.Fatalf("server saw %d dials, want 3 (1 attempt + 2 retries)", got)
	}
}

// TestRedialNeverRetriesServerErrors: a coordinator actively rejecting a
// request (here: the power-claim boundary) must not be hammered with
// retries — the request is wrong, not lost.
func TestRedialNeverRetriesServerErrors(t *testing.T) {
	f := testFarmer()
	srv, err := transport.Serve(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r := transport.NewRedialWith(srv.Addr(), transport.DialOptions{
		Policy: transport.Policy{Timeout: time.Second, Retries: 3},
	})
	defer r.Close()
	if _, err := r.RequestWork(transport.WorkRequest{Worker: "w", Power: -1}); err == nil {
		t.Fatal("negative power accepted")
	}
	if got := f.Counters().RejectedPowers; got != 1 {
		t.Fatalf("farmer saw %d rejected requests, want exactly 1 (no retries)", got)
	}
}

// TestServerKillsOversizeMessages: a hostile report bigger than the
// server's message budget kills the connection and advances the Oversize
// counter; the farmer never sees the message.
func TestServerKillsOversizeMessages(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{
		MaxMessageBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := make([]int, 100_000)
	if _, err := c.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 1, Path: huge}); err == nil {
		t.Fatal("oversize report went through")
	}
	if got := srv.Stats().Oversize; got != 1 {
		t.Fatalf("Oversize = %d, want 1", got)
	}
	if got := f.Counters().SolutionReports; got != 0 {
		t.Fatalf("farmer processed %d reports, want 0", got)
	}
}

// TestServerEvictsForMaxConns: at the connection cap, the most idle
// connection yields its slot to the newcomer.
func TestServerEvictsForMaxConns(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c1, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.RequestWork(transport.WorkRequest{Worker: "w1", Power: 1}); err != nil {
		t.Fatal(err)
	}
	c2, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.ReportSolution(transport.SolutionReport{Worker: "w2", Cost: 9}); err != nil {
		t.Fatalf("newcomer rejected: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Evicted == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().Evicted; got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
	if _, err := c1.ReportSolution(transport.SolutionReport{Worker: "w1", Cost: 8}); err == nil {
		t.Fatal("evicted client still served")
	}
}

// TestServerReadTimeoutDropsSilentPeers: a peer that connects and goes
// silent is disconnected after the idle deadline, freeing the slot.
func TestServerReadTimeoutDropsSilentPeers(t *testing.T) {
	srv, err := transport.ServeWith(testFarmer(), "127.0.0.1:0", transport.ServerOptions{
		ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("silent connection still open after the idle deadline")
	}
}

// TestServerCloseDisconnectsClients: Close tears down tracked connections,
// not just the listener — in-flight clients observe the shutdown instead
// of holding dead sockets forever.
func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, err := transport.Serve(testFarmer(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded against a closed server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call against a closed server hung")
	}
}

// TestTokenAuthentication: the shared-token preamble — right token in,
// wrong token counted and shut out.
func TestTokenAuthentication(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good, err := transport.DialWith(srv.Addr(), transport.DialOptions{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatalf("authenticated call failed: %v", err)
	}

	if _, err := transport.DialWith(srv.Addr(), transport.DialOptions{
		Token:  "wrong",
		Policy: transport.Policy{Timeout: 2 * time.Second},
	}); err == nil {
		t.Fatal("wrong token accepted")
	}
	if got := srv.Stats().AuthFailures; got != 1 {
		t.Fatalf("AuthFailures = %d, want 1", got)
	}

	// A client that skips the preamble entirely: its first call must fail
	// and the farmer must stay untouched.
	bare, err := transport.DialWith(srv.Addr(), transport.DialOptions{
		Policy: transport.Policy{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 1}); err == nil {
		t.Fatal("unauthenticated call accepted")
	}
	if got := f.Counters().SolutionReports; got != 0 {
		t.Fatalf("farmer processed %d reports from unauthenticated peers", got)
	}
}
