package transport_test

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/transport"
)

// testPKI is a self-signed CA with one server and one client certificate,
// generated in memory — the smallest PKI a TLS deployment of the
// coordinator needs.
type testPKI struct {
	caPEM                       []byte
	serverCert, clientCert      tls.Certificate
	serverCertPEM, serverKeyPEM []byte
	clientCertPEM, clientKeyPEM []byte
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "gridbb-test-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		t.Fatal(err)
	}

	leaf := func(cn string, serial int64, server bool) (tls.Certificate, []byte, []byte) {
		key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		usage := x509.ExtKeyUsageClientAuth
		if server {
			usage = x509.ExtKeyUsageServerAuth
		}
		tmpl := &x509.Certificate{
			SerialNumber: big.NewInt(serial),
			Subject:      pkix.Name{CommonName: cn},
			NotBefore:    time.Now().Add(-time.Hour),
			NotAfter:     time.Now().Add(time.Hour),
			KeyUsage:     x509.KeyUsageDigitalSignature,
			ExtKeyUsage:  []x509.ExtKeyUsage{usage},
			IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
		}
		der, err := x509.CreateCertificate(rand.Reader, tmpl, caCert, &key.PublicKey, caKey)
		if err != nil {
			t.Fatal(err)
		}
		keyDER, err := x509.MarshalECPrivateKey(key)
		if err != nil {
			t.Fatal(err)
		}
		certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
		keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
		cert, err := tls.X509KeyPair(certPEM, keyPEM)
		if err != nil {
			t.Fatal(err)
		}
		return cert, certPEM, keyPEM
	}

	p := &testPKI{caPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: caDER})}
	p.serverCert, p.serverCertPEM, p.serverKeyPEM = leaf("gridbb-farmer", 2, true)
	p.clientCert, p.clientCertPEM, p.clientKeyPEM = leaf("gridbb-worker", 3, false)
	return p
}

func (p *testPKI) caPool(t *testing.T) *x509.CertPool {
	t.Helper()
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(p.caPEM) {
		t.Fatal("bad CA PEM")
	}
	return pool
}

// TestTLSRoundTrip: a full protocol call over TLS with server verification
// and shared-token worker authentication — the token mode.
func TestTLSRoundTrip(t *testing.T) {
	pki := newTestPKI(t)
	srv, err := transport.ServeTLS(testFarmer(), "127.0.0.1:0",
		&tls.Config{Certificates: []tls.Certificate{pki.serverCert}, MinVersion: tls.VersionTLS12},
		"fleet-token")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.DialTLS(srv.Addr(),
		&tls.Config{RootCAs: pki.caPool(t), MinVersion: tls.VersionTLS12},
		"fleet-token")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != transport.WorkAssigned {
		t.Fatalf("status = %v", reply.Status)
	}
}

// TestTLSClientCertMode: with a client CA configured, the handshake itself
// authenticates workers — a certificate-less dial is rejected and counted,
// a certified one is served.
func TestTLSClientCertMode(t *testing.T) {
	pki := newTestPKI(t)
	srv, err := transport.ServeTLS(testFarmer(), "127.0.0.1:0", &tls.Config{
		Certificates: []tls.Certificate{pki.serverCert},
		ClientCAs:    pki.caPool(t),
		ClientAuth:   tls.RequireAndVerifyClientCert,
		MinVersion:   tls.VersionTLS12,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	anon, err := transport.DialWith(srv.Addr(), transport.DialOptions{
		TLS:    &tls.Config{RootCAs: pki.caPool(t), MinVersion: tls.VersionTLS12},
		Policy: transport.Policy{Timeout: 2 * time.Second},
	})
	// TLS 1.3 reports a missing client certificate on first read, not at
	// handshake time: accept either a failed dial or a failed first call.
	if err == nil {
		if _, err := anon.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err == nil {
			t.Fatal("certificate-less client served in client-cert mode")
		}
		anon.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().AuthFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().AuthFailures; got == 0 {
		t.Fatal("certificate-less dial not counted as an auth failure")
	}

	c, err := transport.DialTLS(srv.Addr(), &tls.Config{
		RootCAs:      pki.caPool(t),
		Certificates: []tls.Certificate{pki.clientCert},
		MinVersion:   tls.VersionTLS12,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatalf("certified worker rejected: %v", err)
	}
}

// TestLoadTLSHelpers: the PEM-file loaders the cmd binaries use — write
// the test PKI to disk, load both ends, run a call.
func TestLoadTLSHelpers(t *testing.T) {
	pki := newTestPKI(t)
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}
	caFile := write("ca.pem", pki.caPEM)
	serverConf, err := transport.LoadServerTLS(
		write("server.pem", pki.serverCertPEM), write("server.key", pki.serverKeyPEM), caFile)
	if err != nil {
		t.Fatal(err)
	}
	if serverConf.ClientAuth != tls.RequireAndVerifyClientCert {
		t.Fatal("client CA given but client certs not required")
	}
	clientConf, err := transport.LoadClientTLS(caFile,
		write("client.pem", pki.clientCertPEM), write("client.key", pki.clientKeyPEM), "")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ServeTLS(testFarmer(), "127.0.0.1:0", serverConf, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.DialTLS(srv.Addr(), clientConf, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatal(err)
	}
}
