package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/big"
	"testing"

	"repro/internal/interval"
)

// FuzzWireFrame drives arbitrary bytes through the compact dialect's whole
// inbound surface: the length-prefixed frame reader, the server-side
// request header/body decode (every method id, known and unknown), and the
// client-side reply header/body decode — error-flag frames included, and
// elided replies both with and without a stashed request interval. The
// properties are the codec's safety contract: no panic and no allocation
// beyond the vetted frame length on any input, and every malformed body
// surfaced as a wireReader error rather than a partially-filled struct
// being silently accepted where the frame had trailing garbage in a
// mandatory field. Decodable replies must also survive a re-encode →
// re-decode round trip (the fuzzer's check that the optional trailing
// StealHint stays optional: old frames without it and new frames with it
// both land on the same struct).
func FuzzWireFrame(f *testing.F) {
	ref := interval.New(big.NewInt(0), new(big.Int).Lsh(big.NewInt(1), 120))
	someIv := interval.New(big.NewInt(5), new(big.Int).Lsh(big.NewInt(1), 100))

	frame := func(method byte, seq uint64, body []byte) []byte {
		b := []byte{method}
		b = binary.AppendUvarint(b, seq)
		return append(b, body...)
	}
	// Valid request frames, one per method.
	wr, _, _ := appendWireRequestBody(nil, ref, &WorkRequest{Worker: "w", Power: 7})
	f.Add(frame(wireRequestWork, 1, wr))
	ur, _, _ := appendWireRequestBody(nil, ref, &UpdateRequest{Worker: "w", IntervalID: 3, Remaining: someIv, Power: 7, ExploredDelta: 10})
	f.Add(frame(wireUpdateInterval, 2, ur))
	sr, _, _ := appendWireRequestBody(nil, ref, &SolutionReport{Worker: "w", Cost: 42, Path: []int{1, 2, 3}})
	f.Add(frame(wireReportSolution, 3, sr))
	br, _, _ := appendWireRequestBody(nil, ref, &BatchRequest{Worker: "w", Power: 7, HasFold: true, FoldID: 3, Remaining: someIv, HasReport: true, Cost: 42, WantWork: true})
	f.Add(frame(wireExchange, 4, br))
	// Valid reply frames: plain, hinted, elided, and an error frame.
	rb, _ := appendWireReplyBody([]byte{0}, ref, &UpdateReply{Known: true, Interval: someIv, BestCost: 9}, nil)
	f.Add(frame(wireUpdateInterval, 2, rb))
	rh, _ := appendWireReplyBody([]byte{0}, ref, &UpdateReply{Known: true, Interval: someIv, BestCost: 9, Hint: &StealHint{Others: 2, RichestBits: 77}}, nil)
	f.Add(frame(wireUpdateInterval, 2, rh))
	stash := someIv.AppendDelta(nil, ref)
	re, _ := appendWireReplyBody([]byte{0}, ref, &UpdateReply{Known: true, Interval: someIv, BestCost: 9}, stash)
	f.Add(frame(wireUpdateInterval, 2, re))
	bb, _ := appendWireReplyBody([]byte{0}, ref, &BatchReply{HasFold: true, Known: true, Interval: someIv, HasWork: true, Status: WorkAssigned, IntervalID: 5, WorkInterval: someIv, BestCost: 9, Hint: &StealHint{Others: 1, RichestBits: 3}}, nil)
	f.Add(frame(wireExchange, 4, bb))
	f.Add(frame(wireUpdateInterval, 2, append([]byte{wireFlagError}, appendWireStr(nil, "boom")...)))
	f.Add(frame(0x7f, 9, []byte{1, 2, 3})) // unknown method id

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame reader: the input is a frame body; vet the length path.
		framed := binary.AppendUvarint(nil, uint64(len(data)))
		framed = append(framed, data...)
		got, err := readWireFrame(bufio.NewReader(bytes.NewReader(framed)), 1<<20, nil)
		if err != nil {
			t.Fatalf("readWireFrame rejected a well-framed %d-byte body: %v", len(data), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("readWireFrame mangled the body")
		}
		// And the hostile path: the raw input as a frame stream (arbitrary
		// length prefix, possibly oversize or truncated) must error or
		// yield a body, never panic.
		_, _ = readWireFrame(bufio.NewReader(bytes.NewReader(data)), 256, nil)

		// Server side: header then request body, as wireServerCodec does.
		r := wireReader{data: data}
		method := r.byte()
		r.uvarint() // seq
		if r.err == nil {
			var x any
			switch method {
			case wireRequestWork:
				x = new(WorkRequest)
			case wireUpdateInterval:
				x = new(UpdateRequest)
			case wireReportSolution:
				x = new(SolutionReport)
			case wireExchange:
				x = new(BatchRequest)
			default:
				// Unknown id: the codec hands rpc an unfindable method
				// name and the connection survives — nothing to decode.
			}
			if x != nil {
				br := wireReader{data: data[r.pos:]}
				decodeWireRequestBody(&br, ref, x)
			}
		}

		// Client side: reply header then body, with and without a stash.
		rr := wireReader{data: data}
		mid := rr.byte()
		rr.uvarint() // seq
		flags := rr.byte()
		if rr.err != nil {
			return
		}
		if flags&wireFlagError != 0 {
			rr.str()
			return
		}
		body := data[rr.pos:]
		for _, stashed := range [][]byte{nil, stash} {
			var y any
			switch mid {
			case wireRequestWork:
				y = new(WorkReply)
			case wireUpdateInterval:
				y = new(UpdateReply)
			case wireReportSolution:
				y = new(SolutionAck)
			case wireExchange:
				y = new(BatchReply)
			default:
				return
			}
			dr := wireReader{data: body}
			decodeWireReplyBody(&dr, ref, y, stashed)
			if dr.err != nil {
				continue
			}
			// Round trip: a decodable reply re-encodes to a frame that
			// decodes to the same struct — the canonical-form check that
			// keeps the optional hint and the elision flag honest.
			enc, err := appendWireReplyBody(nil, ref, y, nil)
			if err != nil {
				t.Fatalf("re-encode of a decoded %T failed: %v", y, err)
			}
			var z any
			switch y.(type) {
			case *WorkReply:
				z = new(WorkReply)
			case *UpdateReply:
				z = new(UpdateReply)
			case *SolutionAck:
				z = new(SolutionAck)
			case *BatchReply:
				z = new(BatchReply)
			}
			zr := wireReader{data: enc}
			decodeWireReplyBody(&zr, ref, z, nil)
			if zr.err != nil {
				t.Fatalf("re-decode of a re-encoded %T failed: %v", y, zr.err)
			}
			if !replyEqual(y, z) {
				t.Fatalf("round trip drifted:\n first: %+v\nsecond: %+v", y, z)
			}
		}
	})
}

func replyEqual(a, b any) bool {
	switch x := a.(type) {
	case *WorkReply:
		y := b.(*WorkReply)
		return x.Status == y.Status && x.IntervalID == y.IntervalID &&
			x.Interval.Equal(y.Interval) && x.BestCost == y.BestCost && x.Duplicated == y.Duplicated
	case *UpdateReply:
		y := b.(*UpdateReply)
		return x.Finished == y.Finished && x.Known == y.Known &&
			x.Interval.Equal(y.Interval) && x.BestCost == y.BestCost && hintEqual(x.Hint, y.Hint)
	case *SolutionAck:
		y := b.(*SolutionAck)
		return x.BestCost == y.BestCost && x.Accepted == y.Accepted
	case *BatchReply:
		y := b.(*BatchReply)
		return x.HasFold == y.HasFold && x.Finished == y.Finished && x.Known == y.Known &&
			x.Interval.Equal(y.Interval) && x.HasWork == y.HasWork && x.Status == y.Status &&
			x.IntervalID == y.IntervalID && x.WorkInterval.Equal(y.WorkInterval) &&
			x.Duplicated == y.Duplicated && x.BestCost == y.BestCost && hintEqual(x.Hint, y.Hint)
	}
	return false
}

func hintEqual(a, b *StealHint) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Others == b.Others && a.RichestBits == b.RichestBits
}
