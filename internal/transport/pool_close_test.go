package transport_test

import (
	"errors"
	"net/rpc"
	"sync"
	"testing"

	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/transport"
)

// TestSharedClosedHandleFailsFast pins the PR-8 pool bug: a call on a
// Closed Shared handle used to fall through to the shared Redial, which
// would happily re-dial — resurrecting a socket the pool's refcount no
// longer accounted for (and, if the key had been re-pooled since, driving
// a different handle's connection). A closed handle must fail fast with
// rpc.ErrShutdown and leave the wire untouched.
func TestSharedClosedHandleFailsFast(t *testing.T) {
	root := interval.FromInt64(0, 1_000_000)
	f := farmer.New(root)
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{WireRef: root})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := transport.DialOptions{Compact: true, Share: true}
	h := transport.DialShared(srv.Addr(), opts)
	if _, err := h.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the connection to register", func() bool { return srv.Stats().ActiveConns == 1 })
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the last release to close the socket", func() bool { return srv.Stats().ActiveConns == 0 })

	// Every method of the closed handle fails fast — no redial, no socket.
	if _, err := h.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("RequestWork on a closed handle: err=%v, want rpc.ErrShutdown", err)
	}
	if _, err := h.UpdateInterval(transport.UpdateRequest{Worker: "w", IntervalID: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("UpdateInterval on a closed handle: err=%v, want rpc.ErrShutdown", err)
	}
	if _, err := h.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("ReportSolution on a closed handle: err=%v, want rpc.ErrShutdown", err)
	}
	if _, err := h.Exchange(transport.BatchRequest{Worker: "w", Power: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("Exchange on a closed handle: err=%v, want rpc.ErrShutdown", err)
	}
	if got := srv.Stats().ActiveConns; got != 0 {
		t.Fatalf("calls on a closed handle resurrected %d connections", got)
	}

	// A fresh handle on the same key is a NEW pool entry; the stale closed
	// handle still refuses while the fresh one works — no cross-talk.
	h2 := transport.DialShared(srv.Addr(), opts)
	defer h2.Close()
	if _, err := h2.RequestWork(transport.WorkRequest{Worker: "w2", Power: 1}); err != nil {
		t.Fatalf("fresh handle after re-pool: %v", err)
	}
	if _, err := h.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("stale handle after re-pool: err=%v, want rpc.ErrShutdown", err)
	}
}

// TestRedialCloseIsTerminal pins Redial's terminal Close: once Closed, a
// Redial never dials again — later calls fail fast with rpc.ErrShutdown
// even though the server is alive and a re-dial would succeed.
func TestRedialCloseIsTerminal(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := transport.NewRedial(srv.Addr())
	if _, err := r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the connection to close", func() bool { return srv.Stats().ActiveConns == 0 })
	if _, err := r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("call after Close: err=%v, want rpc.ErrShutdown", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := srv.Stats().ActiveConns; got != 0 {
		t.Fatalf("closed Redial re-dialed: %d connections", got)
	}
}

// TestRedialCloseRacesDial drives many concurrent first-calls into Close:
// whichever side of acquire's dial the Close lands on, the fresh socket
// must not outlive the handle — afterwards the server holds zero
// connections and every later call fails fast.
func TestRedialCloseRacesDial(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 20; i++ {
		r := transport.NewRedial(srv.Addr())
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Errors are expected here (ErrShutdown when Close wins the
				// race); the invariant under test is the socket accounting.
				_, _ = r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
			}()
		}
		r.Close()
		wg.Wait()
		if _, err := r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); !errors.Is(err, rpc.ErrShutdown) {
			t.Fatalf("round %d: call after Close: err=%v, want rpc.ErrShutdown", i, err)
		}
	}
	waitFor(t, "all raced sockets to be torn down", func() bool { return srv.Stats().ActiveConns == 0 })
}
