package transport

import (
	"errors"
	"time"
)

// ErrDeadline is returned when a protocol call exceeds its Policy.Timeout.
// It is a transport-level verdict, not a protocol one: the coordinator may
// or may not have processed the message (a black-holed link loses either
// the request or the reply), which is exactly the ambiguity the pull-model
// protocol is built to tolerate — RequestWork and UpdateInterval re-issue
// naturally, and a retried ReportSolution is absorbed by the coordinator's
// monotone-best rule. Callers therefore treat ErrDeadline like ErrLost:
// retry on their own cadence, or through Policy.Retries.
var ErrDeadline = errors.New("transport: call deadline exceeded")

// ErrOversize is returned (and poisons the connection) when a peer ships a
// message larger than the configured byte limit. A hostile peer can encode
// megabyte bignum intervals or gigabyte paths in a few protocol fields;
// the size window kills the connection long before the decoder
// materializes them.
var ErrOversize = errors.New("transport: message exceeds size limit")

// Policy is the liveness discipline of one client leg: how long a single
// protocol call may take, and how failures are retried. The zero value is
// the seed behaviour — no deadline, no retries — so existing callers are
// unchanged until they opt in.
//
// All three protocol operations are idempotent-safe to retry: RequestWork
// and UpdateInterval re-issue naturally (the coordinator's reply is
// authoritative either way), and ReportSolution retries are harmless
// because SOLUTION only ever improves (a duplicate report of a cost the
// coordinator already has is simply not an improvement). Server-side
// errors — the coordinator actively rejecting a request — are never
// retried: the request is wrong, not lost.
type Policy struct {
	// Timeout bounds one call end to end, connection establishment
	// included: a black-holed coordinator returns ErrDeadline instead of
	// pinning the caller forever. Zero disables the deadline.
	Timeout time.Duration
	// Retries is how many extra attempts a Redial client makes after a
	// transport-level failure before surfacing the error. A plain Client
	// cannot retry — its connection is dead after one failure — so the
	// field only acts through Redial.
	Retries int
	// Backoff paces the retry attempts (full-jitter exponential, the
	// shared schedule of every reconnect path). The zero value uses the
	// Backoff defaults (1s base, 1min cap).
	Backoff Backoff
}
