package transport

import (
	"math/big"
	"testing"

	"repro/internal/interval"
)

// This file is the PR-8 mixed-version matrix at the codec layer: the
// steal-hint and gap-carving extensions ride spare flag bits and trailing
// bytes, so an old-vintage peer must parse a new frame identically minus
// the optionals, and a new peer must parse an old frame with the optionals
// absent. The "old vintage" decoders below are frozen copies of the PR-7
// layout — they must never learn the new fields; that they still decode
// every pre-extension field from a new frame IS the compatibility claim.

func mustEqualIv(t *testing.T, name string, got, want interval.Interval) {
	t.Helper()
	if got.IsEmpty() != want.IsEmpty() || (!got.IsEmpty() && (got.CmpA(want.A()) != 0 || got.CmpB(want.B()) != 0)) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

// oldDecodeUpdateRequest is the PR-7 UpdateRequest layout: it ends at
// LeavesDelta and never looks at trailing bytes.
func oldDecodeUpdateRequest(r *wireReader, ref interval.Interval) UpdateRequest {
	var q UpdateRequest
	q.Worker = WorkerID(r.str())
	q.IntervalID = r.varint()
	q.Remaining = r.interval(ref)
	q.Power = r.varint()
	q.ExploredDelta = r.varint()
	q.PrunedDelta = r.varint()
	q.LeavesDelta = r.varint()
	return q
}

// oldDecodeBatchRequest is the PR-7 BatchRequest layout: flag bits 1|2|4
// only, ending after the report leg.
func oldDecodeBatchRequest(r *wireReader, ref interval.Interval) BatchRequest {
	var q BatchRequest
	q.Worker = WorkerID(r.str())
	q.Power = r.varint()
	f := r.byte()
	q.HasFold = f&1 != 0
	q.HasReport = f&2 != 0
	q.WantWork = f&4 != 0
	if q.HasFold {
		q.FoldID = r.varint()
		q.Remaining = r.interval(ref)
		q.ExploredDelta = r.varint()
		q.PrunedDelta = r.varint()
		q.LeavesDelta = r.varint()
	}
	if q.HasReport {
		q.Cost = r.varint()
		q.Path = r.path()
	}
	return q
}

// oldDecodeUpdateReply is the PR-7 UpdateReply layout: flag bits 1|2|4
// only, ending at BestCost.
func oldDecodeUpdateReply(r *wireReader, ref interval.Interval, stashed []byte) UpdateReply {
	var p UpdateReply
	f := r.byte()
	p.Finished = f&1 != 0
	p.Known = f&2 != 0
	if f&4 != 0 {
		iv, _, err := interval.DecodeDelta(stashed, ref, 0)
		if err != nil {
			r.fail("stash: %v", err)
			return p
		}
		p.Interval = iv
	} else {
		p.Interval = r.interval(ref)
	}
	p.BestCost = r.varint()
	return p
}

// oldDecodeBatchReply is the PR-7 BatchReply layout: flag bits up to 16,
// ending at BestCost.
func oldDecodeBatchReply(r *wireReader, ref interval.Interval) BatchReply {
	var p BatchReply
	f := r.byte()
	p.HasFold = f&1 != 0
	p.Finished = f&2 != 0
	p.Known = f&4 != 0
	p.HasWork = f&8 != 0
	p.Duplicated = f&16 != 0
	if p.HasFold {
		p.Interval = r.interval(ref)
	}
	if p.HasWork {
		p.Status = WorkStatus(r.varint())
		p.IntervalID = r.varint()
		p.WorkInterval = r.interval(ref)
	}
	p.BestCost = r.varint()
	return p
}

// TestWireMatrixOldSubReadsHintedReplies: new root → old sub. A reply
// carrying a steal hint must decode on the PR-7 layout with every
// pre-hint field intact; the hint occupies only the spare flag bit and
// trailing bytes the old decoder never reaches.
func TestWireMatrixOldSubReadsHintedReplies(t *testing.T) {
	ref := interval.FromInt64(0, 1_000_000)
	hint := &StealHint{Others: 5, RichestBits: 31}

	up := &UpdateReply{Known: true, Interval: interval.FromInt64(100, 2000), BestCost: 77, Hint: hint}
	enc, err := appendWireReplyBody(nil, ref, up, nil)
	if err != nil {
		t.Fatal(err)
	}
	old := oldDecodeUpdateReply(&wireReader{data: enc}, ref, nil)
	if old.Known != true || old.Finished != false || old.BestCost != 77 {
		t.Fatalf("old decode of hinted UpdateReply = %+v", old)
	}
	mustEqualIv(t, "old UpdateReply.Interval", old.Interval, up.Interval)

	// The same frame round-trips fully on the new decoder.
	var back UpdateReply
	r := &wireReader{data: enc}
	decodeWireReplyBody(r, ref, &back, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if back.Hint == nil || *back.Hint != *hint {
		t.Fatalf("new decode lost the hint: %+v", back.Hint)
	}

	// Elided variant: flag bit 4 plus the stash must still work under the
	// hint bit.
	stash := up.Interval.AppendDelta(nil, ref)
	enc, err = appendWireReplyBody(nil, ref, up, stash)
	if err != nil {
		t.Fatal(err)
	}
	old = oldDecodeUpdateReply(&wireReader{data: enc}, ref, stash)
	mustEqualIv(t, "old elided UpdateReply.Interval", old.Interval, up.Interval)

	br := &BatchReply{
		HasFold: true, Known: true, Interval: interval.FromInt64(50, 600),
		HasWork: true, Status: WorkAssigned, IntervalID: 9,
		WorkInterval: interval.FromInt64(600, 900),
		Duplicated:   true, BestCost: 42, Hint: hint,
	}
	enc, err = appendWireReplyBody(nil, ref, br, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldB := oldDecodeBatchReply(&wireReader{data: enc}, ref)
	if !oldB.HasFold || !oldB.Known || !oldB.HasWork || !oldB.Duplicated || oldB.BestCost != 42 ||
		oldB.Status != WorkAssigned || oldB.IntervalID != 9 {
		t.Fatalf("old decode of hinted BatchReply = %+v", oldB)
	}
	mustEqualIv(t, "old BatchReply.Interval", oldB.Interval, br.Interval)
	mustEqualIv(t, "old BatchReply.WorkInterval", oldB.WorkInterval, br.WorkInterval)

	var backB BatchReply
	r = &wireReader{data: enc}
	decodeWireReplyBody(r, ref, &backB, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if backB.Hint == nil || *backB.Hint != *hint {
		t.Fatalf("new decode lost the batch hint: %+v", backB.Hint)
	}
}

// TestWireMatrixOldRootReadsGappedRequests: new sub → old root. A fold
// carrying a gap declaration must decode on the PR-7 layout with every
// pre-gap field intact — the gap trails the fixed layout (UpdateRequest)
// or rides flag bit 8 plus trailing bytes (BatchRequest), and the old
// server codec never rejects trailing request bytes.
func TestWireMatrixOldRootReadsGappedRequests(t *testing.T) {
	ref := interval.FromInt64(0, 1_000_000)
	gap := interval.FromInt64(40_000, 90_000)

	uq := &UpdateRequest{
		Worker: "sub-1", IntervalID: 12,
		Remaining: interval.FromInt64(10_000, 500_000),
		Power:     640, ExploredDelta: 1000, PrunedDelta: 400, LeavesDelta: 7,
		HasGap: true, Gap: gap,
		Content: big.NewInt(123_456),
	}
	enc, _, err := appendWireRequestBody(nil, ref, uq)
	if err != nil {
		t.Fatal(err)
	}
	r := &wireReader{data: enc}
	old := oldDecodeUpdateRequest(r, ref)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if old.Worker != uq.Worker || old.IntervalID != uq.IntervalID || old.Power != uq.Power ||
		old.ExploredDelta != uq.ExploredDelta || old.PrunedDelta != uq.PrunedDelta || old.LeavesDelta != uq.LeavesDelta {
		t.Fatalf("old decode of gapped UpdateRequest = %+v", old)
	}
	mustEqualIv(t, "old UpdateRequest.Remaining", old.Remaining, uq.Remaining)
	if r.pos >= len(r.data) {
		t.Fatal("gap bytes missing: nothing trails the old layout")
	}

	var back UpdateRequest
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &back)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !back.HasGap {
		t.Fatal("new decode lost the gap")
	}
	mustEqualIv(t, "new UpdateRequest.Gap", back.Gap, gap)
	if back.Content == nil || back.Content.Cmp(uq.Content) != 0 {
		t.Fatalf("new decode lost the content: %v", back.Content)
	}

	// Content without a gap is its own extension shape (ext bit 2 alone).
	cq := &UpdateRequest{
		Worker: "sub-3", IntervalID: 8,
		Remaining: interval.FromInt64(0, 900_000),
		Power:     5, Content: big.NewInt(7),
	}
	encC, _, err := appendWireRequestBody(nil, ref, cq)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: encC}
	oldC := oldDecodeUpdateRequest(r, ref)
	if r.err != nil {
		t.Fatal(r.err)
	}
	mustEqualIv(t, "old UpdateRequest.Remaining (content-only)", oldC.Remaining, cq.Remaining)
	var backC UpdateRequest
	r = &wireReader{data: encC}
	decodeWireRequestBody(r, ref, &backC)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if backC.HasGap {
		t.Fatal("content-only frame decoded a gap")
	}
	if backC.Content == nil || backC.Content.Cmp(cq.Content) != 0 {
		t.Fatalf("content-only decode = %v", backC.Content)
	}

	bq := &BatchRequest{
		Worker: "sub-2", Power: 77,
		HasFold: true, FoldID: 3, Remaining: interval.FromInt64(1000, 800_000),
		ExploredDelta: 5, PrunedDelta: 6, LeavesDelta: 7,
		HasReport: true, Cost: 1109, Path: []int{3, 1, 2},
		WantWork:   true,
		HasFoldGap: true, FoldGap: gap,
		FoldContent: big.NewInt(424_242),
	}
	enc, _, err = appendWireRequestBody(nil, ref, bq)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: enc}
	oldB := oldDecodeBatchRequest(r, ref)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if oldB.Worker != bq.Worker || oldB.Power != bq.Power || !oldB.HasFold || !oldB.HasReport || !oldB.WantWork ||
		oldB.FoldID != bq.FoldID || oldB.Cost != bq.Cost || len(oldB.Path) != 3 {
		t.Fatalf("old decode of gapped BatchRequest = %+v", oldB)
	}
	mustEqualIv(t, "old BatchRequest.Remaining", oldB.Remaining, bq.Remaining)
	if r.pos >= len(r.data) {
		t.Fatal("fold-gap bytes missing: nothing trails the old layout")
	}

	var backB BatchRequest
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &backB)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !backB.HasFoldGap {
		t.Fatal("new decode lost the fold gap")
	}
	mustEqualIv(t, "new BatchRequest.FoldGap", backB.FoldGap, gap)
	if backB.FoldContent == nil || backB.FoldContent.Cmp(bq.FoldContent) != 0 {
		t.Fatalf("new decode lost the fold content: %v", backB.FoldContent)
	}
}

// oldDecodeWorkRequest is the PR-8 WorkRequest layout: worker + power,
// nothing trailing.
func oldDecodeWorkRequest(r *wireReader) WorkRequest {
	var q WorkRequest
	q.Worker = WorkerID(r.str())
	q.Power = r.varint()
	return q
}

// oldDecodeSolutionReport is the PR-8 SolutionReport layout: worker,
// cost, path.
func oldDecodeSolutionReport(r *wireReader) SolutionReport {
	var q SolutionReport
	q.Worker = WorkerID(r.str())
	q.Cost = r.varint()
	q.Path = r.path()
	return q
}

// oldDecodeWorkReply is the PR-8 WorkReply layout, ending at Duplicated.
func oldDecodeWorkReply(r *wireReader, ref interval.Interval) WorkReply {
	var p WorkReply
	p.Status = WorkStatus(r.varint())
	p.IntervalID = r.varint()
	p.Interval = r.interval(ref)
	p.BestCost = r.varint()
	p.Duplicated = r.byte() != 0
	return p
}

// TestWireMatrixJobTags: the PR-9 job extension in all four tagged frames.
// Old decoders must read every pre-job field from a tagged frame (the tag
// trails the frozen layout, or rides the spare ext bit on UpdateRequest);
// new decoders must round-trip the tag, and untagged frames must decode
// with the tag absent and no trailing bytes.
func TestWireMatrixJobTags(t *testing.T) {
	ref := interval.FromInt64(0, 1_000_000)

	wq := &WorkRequest{Worker: "w-1", Power: 640, Job: "job-a"}
	enc, _, err := appendWireRequestBody(nil, ref, wq)
	if err != nil {
		t.Fatal(err)
	}
	r := &wireReader{data: enc}
	oldW := oldDecodeWorkRequest(r)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if oldW.Worker != wq.Worker || oldW.Power != wq.Power {
		t.Fatalf("old decode of tagged WorkRequest = %+v", oldW)
	}
	if r.pos >= len(r.data) {
		t.Fatal("job bytes missing: nothing trails the old WorkRequest layout")
	}
	var backW WorkRequest
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &backW)
	if r.err != nil || backW.Job != "job-a" {
		t.Fatalf("new decode of tagged WorkRequest = %+v (err %v)", backW, r.err)
	}

	uq := &UpdateRequest{
		Worker: "w-2", IntervalID: 7,
		Remaining: interval.FromInt64(10, 900),
		Power:     5, ExploredDelta: 3,
		HasGap: true, Gap: interval.FromInt64(100, 200),
		Content: big.NewInt(55),
		Job:     "job-b",
	}
	enc, _, err = appendWireRequestBody(nil, ref, uq)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: enc}
	oldU := oldDecodeUpdateRequest(r, ref)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if oldU.Worker != uq.Worker || oldU.IntervalID != uq.IntervalID || oldU.ExploredDelta != uq.ExploredDelta {
		t.Fatalf("old decode of tagged UpdateRequest = %+v", oldU)
	}
	var backU UpdateRequest
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &backU)
	if r.err != nil || backU.Job != "job-b" || !backU.HasGap || backU.Content == nil {
		t.Fatalf("new decode of tagged UpdateRequest = %+v (err %v)", backU, r.err)
	}
	mustEqualIv(t, "tagged UpdateRequest.Gap", backU.Gap, uq.Gap)

	// A job tag with no other extension stands alone on ext bit 4.
	lone := &UpdateRequest{Worker: "w-5", IntervalID: 1, Remaining: interval.FromInt64(0, 10), Job: "job-e"}
	enc, _, err = appendWireRequestBody(nil, ref, lone)
	if err != nil {
		t.Fatal(err)
	}
	var backL UpdateRequest
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &backL)
	if r.err != nil || backL.Job != "job-e" || backL.HasGap || backL.Content != nil {
		t.Fatalf("new decode of job-only UpdateRequest = %+v (err %v)", backL, r.err)
	}

	sq := &SolutionReport{Worker: "w-3", Cost: 42, Path: []int{1, 2, 3}, Job: "job-c"}
	enc, _, err = appendWireRequestBody(nil, ref, sq)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: enc}
	oldS := oldDecodeSolutionReport(r)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if oldS.Worker != sq.Worker || oldS.Cost != sq.Cost || len(oldS.Path) != 3 {
		t.Fatalf("old decode of tagged SolutionReport = %+v", oldS)
	}
	if r.pos >= len(r.data) {
		t.Fatal("job bytes missing: nothing trails the old SolutionReport layout")
	}
	var backS SolutionReport
	r = &wireReader{data: enc}
	decodeWireRequestBody(r, ref, &backS)
	if r.err != nil || backS.Job != "job-c" {
		t.Fatalf("new decode of tagged SolutionReport = %+v (err %v)", backS, r.err)
	}

	wp := &WorkReply{
		Status: WorkAssigned, IntervalID: 9,
		Interval: interval.FromInt64(50, 500),
		BestCost: 7, Duplicated: true, Job: "job-d",
	}
	encR, err := appendWireReplyBody(nil, ref, wp, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: encR}
	oldR := oldDecodeWorkReply(r, ref)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if oldR.Status != WorkAssigned || oldR.IntervalID != 9 || oldR.BestCost != 7 || !oldR.Duplicated {
		t.Fatalf("old decode of tagged WorkReply = %+v", oldR)
	}
	mustEqualIv(t, "old WorkReply.Interval", oldR.Interval, wp.Interval)
	if r.pos >= len(r.data) {
		t.Fatal("job bytes missing: nothing trails the old WorkReply layout")
	}
	var backR WorkReply
	r = &wireReader{data: encR}
	decodeWireReplyBody(r, ref, &backR, nil)
	if r.err != nil || backR.Job != "job-d" {
		t.Fatalf("new decode of tagged WorkReply = %+v (err %v)", backR, r.err)
	}

	// Untagged frames — what old peers emit — decode with the tag absent
	// and leave no trailing bytes (the layout is frozen when the tag is
	// off).
	for _, x := range []any{
		&WorkRequest{Worker: "w", Power: 1},
		&SolutionReport{Worker: "w", Cost: 1, Path: []int{1}},
	} {
		enc, _, err := appendWireRequestBody(nil, ref, x)
		if err != nil {
			t.Fatal(err)
		}
		r := &wireReader{data: enc}
		switch x.(type) {
		case *WorkRequest:
			var q WorkRequest
			decodeWireRequestBody(r, ref, &q)
			if q.Job != "" {
				t.Fatalf("untagged WorkRequest decoded job %q", q.Job)
			}
		case *SolutionReport:
			var q SolutionReport
			decodeWireRequestBody(r, ref, &q)
			if q.Job != "" {
				t.Fatalf("untagged SolutionReport decoded job %q", q.Job)
			}
		}
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.pos != len(r.data) {
			t.Fatalf("untagged %T leaves %d trailing bytes", x, len(r.data)-r.pos)
		}
	}
	encP, err := appendWireReplyBody(nil, ref, &WorkReply{Status: WorkWait, Interval: interval.Interval{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: encP}
	var plain WorkReply
	decodeWireReplyBody(r, ref, &plain, nil)
	if r.err != nil || plain.Job != "" {
		t.Fatalf("untagged WorkReply = %+v (err %v)", plain, r.err)
	}
	if r.pos != len(r.data) {
		t.Fatalf("untagged WorkReply leaves %d trailing bytes", len(r.data)-r.pos)
	}
}

// TestWireMatrixNewPeerReadsOldFrames: the reverse direction. Frames
// WITHOUT the extensions — what an old peer emits — must decode on the
// new decoders with the optional fields absent, and must be byte-for-byte
// what the new encoder emits with the optionals off (the layout is
// frozen; the extensions are strictly additive).
func TestWireMatrixNewPeerReadsOldFrames(t *testing.T) {
	ref := interval.FromInt64(0, 1_000_000)

	uq := &UpdateRequest{
		Worker: "w", IntervalID: 4, Remaining: interval.FromInt64(5, 500),
		Power: 9, ExploredDelta: 10, PrunedDelta: 11, LeavesDelta: 12,
	}
	enc, _, err := appendWireRequestBody(nil, ref, uq)
	if err != nil {
		t.Fatal(err)
	}
	r := &wireReader{data: enc}
	var back UpdateRequest
	decodeWireRequestBody(r, ref, &back)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if back.HasGap || !back.Gap.IsEmpty() || back.Content != nil {
		t.Fatalf("gapless frame decoded an extension: %+v", back)
	}
	if r.pos != len(r.data) {
		t.Fatalf("gapless UpdateRequest leaves %d trailing bytes", len(r.data)-r.pos)
	}

	up := &UpdateReply{Known: true, Interval: interval.FromInt64(5, 500), BestCost: 3}
	encR, err := appendWireReplyBody(nil, ref, up, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: encR}
	var backR UpdateReply
	decodeWireReplyBody(r, ref, &backR, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if backR.Hint != nil {
		t.Fatalf("hintless frame decoded a hint: %+v", backR.Hint)
	}
	if r.pos != len(r.data) {
		t.Fatalf("hintless UpdateReply leaves %d trailing bytes", len(r.data)-r.pos)
	}

	bq := &BatchRequest{Worker: "w", Power: 2, WantWork: true}
	encB, _, err := appendWireRequestBody(nil, ref, bq)
	if err != nil {
		t.Fatal(err)
	}
	if f := encB[len(appendWireStr(nil, "w"))+1]; f&8 != 0 {
		t.Fatalf("gapless BatchRequest sets flag bit 8: %#x", f)
	}
	r = &wireReader{data: encB}
	var backB BatchRequest
	decodeWireRequestBody(r, ref, &backB)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if backB.HasFoldGap || backB.FoldContent != nil {
		t.Fatal("gapless batch decoded a fold extension")
	}

	bp := &BatchReply{Known: true, BestCost: 8}
	encBR, err := appendWireReplyBody(nil, ref, bp, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = &wireReader{data: encBR}
	var backBR BatchReply
	decodeWireReplyBody(r, ref, &backBR, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if backBR.Hint != nil {
		t.Fatalf("hintless batch frame decoded a hint: %+v", backBR.Hint)
	}
	if r.pos != len(r.data) {
		t.Fatalf("hintless BatchReply leaves %d trailing bytes", len(r.data)-r.pos)
	}
}
