// Fault injection for the farmer–worker protocol. The Interceptor is a
// Coordinator middleware: every protocol message passes through an
// injectable hook that may drop the request (it never reaches the
// coordinator), drop the reply (the coordinator processes it, the worker
// never learns), or duplicate the request (a retransmission after a lost
// ack). Together with a seeded decision function these reproduce, in a
// single deterministic process, the message-level failures a WAN grid
// inflicts on the paper's architecture (§4.1) — internal/harness builds its
// chaos scenarios on this type.
package transport

import (
	"errors"
	"sync"
)

// Op identifies one of the three pull-model protocol operations.
type Op int

const (
	// OpRequestWork is the load-balancing entry point (§4.2).
	OpRequestWork Op = iota
	// OpUpdateInterval is the worker-side checkpoint (§4.1).
	OpUpdateInterval
	// OpReportSolution is immediate solution sharing (§4.4).
	OpReportSolution
)

// String renders the op for traces.
func (o Op) String() string {
	switch o {
	case OpRequestWork:
		return "request"
	case OpUpdateInterval:
		return "update"
	case OpReportSolution:
		return "report"
	default:
		return "unknown-op"
	}
}

// Fault is a hook's verdict on one message.
type Fault int

const (
	// FaultNone delivers the message normally.
	FaultNone Fault = iota
	// FaultDropRequest loses the message before the coordinator sees it;
	// the caller gets ErrLost and the coordinator state is untouched.
	FaultDropRequest
	// FaultDropReply delivers the message — the coordinator mutates its
	// state — but loses the reply; the caller gets ErrLost. This is the
	// asymmetric failure that creates orphaned allocations and duplicate
	// retransmissions, the hard cases of §4.1.
	FaultDropReply
	// FaultDuplicate delivers the message twice (a retransmission whose
	// original was acknowledged late); the caller sees the second reply.
	FaultDuplicate
	// FaultBlackhole models a stalled coordinator: the message never
	// reaches it and the caller — who in the real transport would block
	// until its Policy.Timeout — gets ErrDeadline. It differs from
	// FaultDropRequest only in the error it surfaces, which is exactly
	// the distinction the hardened transport introduces: a loss the
	// network reported versus a loss a deadline had to prove.
	FaultBlackhole
)

// String renders the fault for traces.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "ok"
	case FaultDropRequest:
		return "drop-request"
	case FaultDropReply:
		return "drop-reply"
	case FaultDuplicate:
		return "duplicate"
	case FaultBlackhole:
		return "blackhole"
	default:
		return "unknown-fault"
	}
}

// ErrLost is returned to the caller when its message or the reply was lost.
// It models a transport-level failure, not a protocol error: callers may
// retry (the protocol is designed so retries are safe) or treat it as their
// own crash, which is what a real RPC error does to a worker process.
var ErrLost = errors.New("transport: message lost")

// Hooks customizes an Interceptor. Both hooks are optional; nil fields
// behave as "no fault, no observation". Hooks run under the interceptor's
// mutex, so implementations may keep plain (e.g. rand.Rand) state — which
// also means calls through one Interceptor are serialized; for the
// deterministic single-threaded harness that is exactly the point.
type Hooks struct {
	// Fault decides the fate of one message before delivery.
	Fault func(op Op, worker WorkerID) Fault
	// Observe is called after the exchange with the delivered request and
	// reply (reply is the zero value when the fault suppressed it).
	Observe func(op Op, worker WorkerID, fault Fault, err error)
}

// Interceptor wraps a Coordinator with fault-injection hooks. It implements
// Coordinator itself, so it can stand between worker sessions and a farmer
// (or between chained middlewares — internal/harness wraps its conformance
// tracker, which in turn fronts the farmer and survives farmer restarts by
// re-attaching to the restored incarnation).
type Interceptor struct {
	mu    sync.Mutex
	inner Coordinator
	hooks Hooks
}

// NewInterceptor wraps inner with the given hooks.
func NewInterceptor(inner Coordinator, hooks Hooks) *Interceptor {
	return &Interceptor{inner: inner, hooks: hooks}
}

// deliver runs one exchange under the fault discipline. call must invoke
// the wrapped coordinator exactly once per invocation.
func (i *Interceptor) deliver(op Op, worker WorkerID, call func(Coordinator) error) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	fault := FaultNone
	if i.hooks.Fault != nil {
		fault = i.hooks.Fault(op, worker)
	}
	var err error
	switch fault {
	case FaultDropRequest:
		err = ErrLost
	case FaultBlackhole:
		err = ErrDeadline
	case FaultDropReply:
		if e := call(i.inner); e != nil {
			err = e
		} else {
			err = ErrLost
		}
	case FaultDuplicate:
		if e := call(i.inner); e != nil {
			err = e
		} else {
			err = call(i.inner)
		}
	default:
		err = call(i.inner)
	}
	if i.hooks.Observe != nil {
		i.hooks.Observe(op, worker, fault, err)
	}
	return err
}

// RequestWork implements Coordinator.
func (i *Interceptor) RequestWork(req WorkRequest) (WorkReply, error) {
	var reply WorkReply
	err := i.deliver(OpRequestWork, req.Worker, func(c Coordinator) error {
		r, e := c.RequestWork(req)
		if e != nil {
			return e
		}
		reply = r
		return nil
	})
	if err != nil {
		return WorkReply{}, err
	}
	return reply, nil
}

// UpdateInterval implements Coordinator.
func (i *Interceptor) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	var reply UpdateReply
	err := i.deliver(OpUpdateInterval, req.Worker, func(c Coordinator) error {
		r, e := c.UpdateInterval(req)
		if e != nil {
			return e
		}
		reply = r
		return nil
	})
	if err != nil {
		return UpdateReply{}, err
	}
	return reply, nil
}

// ReportSolution implements Coordinator.
func (i *Interceptor) ReportSolution(req SolutionReport) (SolutionAck, error) {
	var reply SolutionAck
	err := i.deliver(OpReportSolution, req.Worker, func(c Coordinator) error {
		r, e := c.ReportSolution(req)
		if e != nil {
			return e
		}
		reply = r
		return nil
	})
	if err != nil {
		return SolutionAck{}, err
	}
	return reply, nil
}

var _ Coordinator = (*Interceptor)(nil)
