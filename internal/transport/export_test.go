package transport

import "time"

// SetAuthTimeout overrides the shared authentication/negotiation deadline
// so tests can prove the bound fires without waiting ten seconds. It
// returns the previous value for restoration.
func SetAuthTimeout(d time.Duration) time.Duration {
	old := authTimeout
	authTimeout = d
	return old
}
