// Worker authentication for the hardened transport. Two modes, matching
// what a real grid deployment can provision:
//
//   - shared token: every worker presents one secret right after
//     connecting, before any RPC — cheap to distribute, revoked by
//     restarting the farmer with a new token. Combine with TLS so the
//     token never crosses the WAN in clear.
//   - client certificates: LoadServerTLS with a client CA makes the TLS
//     handshake itself the authentication; no token needed.
//
// The token exchange is a fixed-frame preamble (magic, length, token; one
// ACK byte back) rather than a text line, so the server never reads past
// the frame into the gob stream that follows.
package transport

import (
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// authTimeout bounds the whole connection preamble (TLS handshake, token
// exchange, dialect negotiation) on both sides: the server cannot have
// its accept slots pinned by half-open handshakes, and a dialer cannot be
// hung forever by a black-holed coordinator. A variable, not a const, so
// tests can shrink it.
var authTimeout = 10 * time.Second

// maxTokenBytes bounds the token frame; anything longer is hostile.
const maxTokenBytes = 512

// ErrAuth is returned when the token exchange fails — wrong token, or a
// peer that is not speaking the preamble at all.
var ErrAuth = errors.New("transport: authentication failed")

// tokenMagic opens the preamble frame; the version byte lets the framing
// evolve without ambiguity against gob traffic (gob never starts a
// connection with these bytes).
var tokenMagic = [3]byte{'G', 'B', 1}

// presentToken writes the client side of the token preamble and waits for
// the server's ACK. The caller has already armed a deadline if it wants
// one.
func presentToken(conn net.Conn, token string) error {
	if len(token) > maxTokenBytes {
		return fmt.Errorf("%w: token longer than %d bytes", ErrAuth, maxTokenBytes)
	}
	frame := make([]byte, 0, len(tokenMagic)+2+len(token))
	frame = append(frame, tokenMagic[:]...)
	frame = binary.BigEndian.AppendUint16(frame, uint16(len(token)))
	frame = append(frame, token...)
	if _, err := conn.Write(frame); err != nil {
		return err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("%w: server closed during token exchange", ErrAuth)
	}
	if ack[0] != 0x06 {
		return ErrAuth
	}
	return nil
}

// verifyToken reads and checks the client's token preamble under its own
// deadline, replying with one ACK byte on success. The comparison is
// constant-time; the failure path stays silent (close, no oracle).
func verifyToken(conn net.Conn, token string) error {
	conn.SetDeadline(time.Now().Add(authTimeout))
	defer conn.SetDeadline(time.Time{})
	var header [5]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		return fmt.Errorf("%w: no token preamble", ErrAuth)
	}
	if [3]byte(header[:3]) != tokenMagic {
		return fmt.Errorf("%w: peer did not present a token", ErrAuth)
	}
	n := int(binary.BigEndian.Uint16(header[3:5]))
	if n > maxTokenBytes {
		return fmt.Errorf("%w: token frame of %d bytes", ErrAuth, n)
	}
	got := make([]byte, n)
	if _, err := io.ReadFull(conn, got); err != nil {
		return fmt.Errorf("%w: truncated token", ErrAuth)
	}
	if subtle.ConstantTimeCompare(got, []byte(token)) != 1 {
		return fmt.Errorf("%w: wrong token", ErrAuth)
	}
	if _, err := conn.Write([]byte{0x06}); err != nil {
		return err
	}
	return nil
}

// LoadServerTLS builds a coordinator-side TLS config from PEM files: the
// server's certificate and key, plus — when clientCAFile is non-empty —
// mandatory client-certificate verification against that CA (the
// certificate mode of worker authentication; leave it empty for the
// shared-token mode, where TLS only protects the channel).
func LoadServerTLS(certFile, keyFile, clientCAFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("transport: load server certificate: %w", err)
	}
	conf := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if clientCAFile != "" {
		pool, err := loadCertPool(clientCAFile)
		if err != nil {
			return nil, err
		}
		conf.ClientCAs = pool
		conf.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return conf, nil
}

// LoadClientTLS builds a worker-side TLS config from PEM files: the CA to
// verify the coordinator against (empty falls back to the system roots),
// an optional client certificate pair for the certificate authentication
// mode, and an optional server-name override for when the dialed address
// is an IP but the certificate names a host.
func LoadClientTLS(caFile, certFile, keyFile, serverName string) (*tls.Config, error) {
	conf := &tls.Config{
		MinVersion: tls.VersionTLS12,
		ServerName: serverName,
	}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		conf.RootCAs = pool
	}
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("transport: load client certificate: %w", err)
		}
		conf.Certificates = []tls.Certificate{cert}
	}
	return conf, nil
}

func loadCertPool(caFile string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("transport: load CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("transport: no certificates in %s", caFile)
	}
	return pool, nil
}
