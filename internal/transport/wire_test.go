package transport_test

import (
	"crypto/tls"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/transport"
)

// legacyCoordinator is the PR-6 service surface: the three-call protocol
// only, no Exchange frame. Served over plain text-gob with no dialect
// sniff, it is the "old root" end of the mixed-version matrix.
type legacyCoordinator struct{ coord transport.Coordinator }

func (l *legacyCoordinator) RequestWork(req *transport.WorkRequest, reply *transport.WorkReply) error {
	r, err := l.coord.RequestWork(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

func (l *legacyCoordinator) UpdateInterval(req *transport.UpdateRequest, reply *transport.UpdateReply) error {
	r, err := l.coord.UpdateInterval(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

func (l *legacyCoordinator) ReportSolution(req *transport.SolutionReport, reply *transport.SolutionAck) error {
	r, err := l.coord.ReportSolution(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// legacyServe runs coord behind an old-vintage rpc server: gob streams
// only, closing any connection that opens with bytes gob cannot parse —
// exactly what a compact-dialect preamble looks like to it.
func legacyServe(t *testing.T, coord transport.Coordinator) string {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName("GridBB", &legacyCoordinator{coord}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(c)
		}
	}()
	return ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCompactRoundTrip: the compact dialect carries every protocol message
// over a real TCP hop with the same results as text-gob, at 50-job
// big.Int scale — including the steady-state reply elision (the folded
// interval comes back bound-exact even though it never crossed the wire)
// and the non-elided Known=false path. A plain gob client shares the same
// server throughout: the dialects coexist per connection.
func TestCompactRoundTrip(t *testing.T) {
	nb := core.NewNumbering(flowshop.NewProblem(flowshop.Ta056(), flowshop.BoundOneMachine, flowshop.PairsAll).Shape())
	root := nb.RootRange()
	f := farmer.New(root)
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{WireRef: root})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.DialWith(srv.Addr(), transport.DialOptions{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.RequestWork(transport.WorkRequest{Worker: "remote", Power: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != transport.WorkAssigned {
		t.Fatalf("status = %v", reply.Status)
	}
	if !reply.Interval.Equal(root) {
		t.Fatalf("assigned %v over the compact wire, want %v", reply.Interval, root)
	}

	ack, err := c.ReportSolution(transport.SolutionReport{Worker: "remote", Cost: 4000, Path: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || ack.BestCost != 4000 {
		t.Fatalf("ack = %+v", ack)
	}

	// Steady-state heartbeat: the farmer's intersection returns exactly the
	// folded interval, so the reply interval is elided on the wire and must
	// be restored bound-exact from the request's copy.
	half := root.Clone()
	a := half.A()
	b := half.B()
	a.Add(a, b).Rsh(a, 1)
	remaining := interval.New(a, b)
	up, err := c.UpdateInterval(transport.UpdateRequest{
		Worker: "remote", IntervalID: reply.IntervalID,
		Remaining: remaining, Power: 7, ExploredDelta: 123,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Known {
		t.Fatal("interval unknown after compact update")
	}
	if !up.Interval.Equal(remaining) {
		t.Fatalf("elided reply restored as %v, want %v", up.Interval, remaining)
	}
	if up.BestCost != 4000 {
		t.Fatalf("best over the compact wire = %d", up.BestCost)
	}

	// Unknown id: the reply differs from the fold (Known=false, empty
	// interval), so the non-elided reply path runs.
	up2, err := c.UpdateInterval(transport.UpdateRequest{
		Worker: "remote", IntervalID: 1 << 40, Remaining: remaining, Power: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if up2.Known {
		t.Fatal("bogus interval id reported known")
	}

	// A text-gob client on the same server, mid-stream: negotiation is per
	// connection, not per process.
	g, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gu, err := g.UpdateInterval(transport.UpdateRequest{
		Worker: "remote", IntervalID: reply.IntervalID, Remaining: remaining, Power: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gu.Known || gu.BestCost != 4000 {
		t.Fatalf("gob client beside a compact one: %+v", gu)
	}
}

// TestCompactExchangeBatch: the coalesced Exchange frame over the compact
// wire — refill-only, fold+report, and the retire-and-refill round that
// discovers global termination in the same trip.
func TestCompactExchangeBatch(t *testing.T) {
	root := interval.FromInt64(0, 1_000_000)
	f := farmer.New(root)
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{WireRef: root})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.DialWith(srv.Addr(), transport.DialOptions{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r1, err := c.Exchange(transport.BatchRequest{Worker: "sub", Power: 2, WantWork: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.HasWork || r1.Status != transport.WorkAssigned || !r1.WorkInterval.Equal(root) {
		t.Fatalf("refill leg = %+v", r1)
	}

	fold := interval.FromInt64(500_000, 1_000_000)
	r2, err := c.Exchange(transport.BatchRequest{
		Worker: "sub", Power: 2,
		HasFold: true, FoldID: r1.IntervalID, Remaining: fold, ExploredDelta: 10,
		HasReport: true, Cost: 77, Path: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.HasFold || !r2.Known || !r2.Interval.Equal(fold) {
		t.Fatalf("fold leg = %+v", r2)
	}
	if r2.BestCost != 77 {
		t.Fatalf("report leg lost: best = %d", r2.BestCost)
	}

	// Retire the copy ([B,B) fold) with the refill riding along: the table
	// drains, so the batch must come back Finished instead of assigning.
	end := interval.FromInt64(1_000_000, 1_000_000)
	r3, err := c.Exchange(transport.BatchRequest{
		Worker: "sub", Power: 2,
		HasFold: true, FoldID: r1.IntervalID, Remaining: end, WantWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Finished {
		t.Fatalf("retire-and-refill did not surface termination: %+v", r3)
	}
}

// TestCompactFallsBackToTextGob: a Compact dial against an old text-gob
// server survives — the server closes the preamble connection, the client
// re-dials speaking gob, and the calls work. The batch frame then fails
// with the rpc "can't find" ServerError, which is the documented signal
// to speak the three-call protocol.
func TestCompactFallsBackToTextGob(t *testing.T) {
	f := testFarmer()
	addr := legacyServe(t, f)
	c, err := transport.DialWith(addr, transport.DialOptions{Compact: true})
	if err != nil {
		t.Fatalf("compact dial against an old server: %v", err)
	}
	defer c.Close()
	reply, err := c.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != transport.WorkAssigned {
		t.Fatalf("status = %v", reply.Status)
	}
	if _, err := c.Exchange(transport.BatchRequest{Worker: "w", Power: 1, WantWork: true}); err == nil {
		t.Fatal("batch frame accepted by an old server")
	} else if _, ok := err.(rpc.ServerError); !ok || !strings.Contains(err.Error(), "can't find") {
		t.Fatalf("old-server batch error = %v, want the can't-find ServerError", err)
	}
	// The connection survived the rejected frame.
	if _, err := c.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 5}); err != nil {
		t.Fatalf("connection dead after rejected batch frame: %v", err)
	}
}

// TestDialSharedMultiplexes: N sessions through DialShared ride ONE
// physical connection (the server sees a single conn), the batch frame
// works through the shared handle, and the connection closes only when
// the last handle does.
func TestDialSharedMultiplexes(t *testing.T) {
	root := interval.FromInt64(0, 1_000_000)
	f := farmer.New(root)
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{WireRef: root})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := transport.DialOptions{Compact: true, Share: true}
	h1 := transport.DialShared(srv.Addr(), opts)
	h2 := transport.DialShared(srv.Addr(), opts)
	h3 := transport.DialShared(srv.Addr(), opts)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, h := range []*transport.Shared{h1, h2, h3} {
		wg.Add(1)
		go func(i int, h *transport.Shared) {
			defer wg.Done()
			_, errs[i] = h.RequestWork(transport.WorkRequest{Worker: transport.WorkerID(fmt.Sprintf("s%d", i)), Power: 1})
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := srv.Stats().ActiveConns; got != 1 {
		t.Fatalf("three sessions hold %d connections, want 1", got)
	}
	if _, err := h2.Exchange(transport.BatchRequest{Worker: "b", Power: 1}); err != nil {
		t.Fatalf("batch through the shared handle: %v", err)
	}

	// Close two handles: the survivor keeps the connection.
	h1.Close()
	h2.Close()
	if _, err := h3.RequestWork(transport.WorkRequest{Worker: "c", Power: 1}); err != nil {
		t.Fatalf("surviving handle lost its connection: %v", err)
	}
	if got := srv.Stats().ActiveConns; got != 1 {
		t.Fatalf("after two releases: %d connections, want 1", got)
	}
	h3.Close()
	waitFor(t, "the pooled connection to close", func() bool { return srv.Stats().ActiveConns == 0 })
}

// TestEvictionPrefersUnauthenticated pins the PR-6 bug: connections
// register before authentication, so a flood of token-less dials at the
// MaxConns cap could evict live authenticated workers. The policy now
// sacrifices the most idle UNauthenticated connection first — the flood
// competes with itself while the authenticated session, idle longer than
// any flood member, keeps its slot.
func TestEvictionPrefersUnauthenticated(t *testing.T) {
	f := testFarmer()
	srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{
		Token: "tok", MaxConns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	authed, err := transport.DialWith(srv.Addr(), transport.DialOptions{Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	defer authed.Close()
	if _, err := authed.RequestWork(transport.WorkRequest{Worker: "w", Power: 1}); err != nil {
		t.Fatal(err)
	}
	// Let the authenticated session become the most idle connection: under
	// the old most-idle-wins policy it would be the flood's first victim.
	time.Sleep(50 * time.Millisecond)

	flood := func() net.Conn {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		return nc
	}
	flood() // fills the cap
	waitFor(t, "the first flood connection to register", func() bool {
		return srv.Stats().ActiveConns == 2
	})
	flood() // at the cap: must evict the first flood conn, not the worker
	waitFor(t, "the first eviction", func() bool { return srv.Stats().Evicted == 1 })
	flood()
	waitFor(t, "the second eviction", func() bool { return srv.Stats().Evicted == 2 })

	// The authenticated session survived the whole flood.
	if _, err := authed.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 9}); err != nil {
		t.Fatalf("authenticated worker evicted by a token-less flood: %v", err)
	}
}

// TestRedialConcurrentCallsNotSerialized pins the PR-6 bug of Redial.call
// holding the mutex across the RPC: two calls against a black-holed
// coordinator must time out CONCURRENTLY (elapsed ≈ one timeout), not
// back to back (elapsed ≈ two timeouts).
func TestRedialConcurrentCallsNotSerialized(t *testing.T) {
	addr := blackholeListener(t)
	r := transport.NewRedialWith(addr, transport.DialOptions{
		Policy: transport.Policy{Timeout: time.Second},
	})
	defer r.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d succeeded against a black hole", i)
		}
	}
	if elapsed >= 1800*time.Millisecond {
		t.Fatalf("two concurrent calls took %v — serialized behind the Redial mutex", elapsed)
	}
}

// TestRedialCloseNotBlockedByInflightCall: the second half of the same
// bug — Close must return immediately while a call is mid-flight, and
// closing the connection must unblock that call long before its deadline.
func TestRedialCloseNotBlockedByInflightCall(t *testing.T) {
	addr := blackholeListener(t)
	r := transport.NewRedialWith(addr, transport.DialOptions{
		Policy: transport.Policy{Timeout: 30 * time.Second},
	})
	done := make(chan error, 1)
	go func() {
		_, err := r.RequestWork(transport.WorkRequest{Worker: "w", Power: 1})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // the call is dialed and in flight
	start := time.Now()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close blocked %v behind an in-flight call", elapsed)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call succeeded against a black hole")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call still blocked after Close")
	}
}

// TestDialAuthPhaseBounded pins the PR-6 bug of DialWith only arming a
// deadline when Policy.Timeout was set: with the zero policy, the
// TLS-handshake and token phases against a black-holed endpoint must
// still fail within the default auth bound instead of hanging forever.
func TestDialAuthPhaseBounded(t *testing.T) {
	old := transport.SetAuthTimeout(300 * time.Millisecond)
	defer transport.SetAuthTimeout(old)
	addr := blackholeListener(t)

	for _, tc := range []struct {
		name string
		opts transport.DialOptions
	}{
		{"tls", transport.DialOptions{TLS: &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12}}},
		{"token", transport.DialOptions{Token: "tok"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			c, err := transport.DialWith(addr, tc.opts)
			if err == nil {
				c.Close()
				t.Fatal("dial against a black hole succeeded")
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("unbounded auth phase: dial took %v", elapsed)
			}
		})
	}
}
