package transport_test

import (
	"context"
	"repro/internal/transport"
	"sync"
	"testing"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/worker"
)

// TestRPCRoundTrip: every protocol message survives a real TCP hop intact,
// including big.Int intervals that exceed uint64 (50-job scale).
func TestRPCRoundTrip(t *testing.T) {
	nb := core.NewNumbering(flowshop.NewProblem(flowshop.Ta056(), flowshop.BoundOneMachine, flowshop.PairsAll).Shape())
	root := nb.RootRange() // [0, 50!) — definitely not a machine word
	f := farmer.New(root)
	srv, err := transport.Serve(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply, err := client.RequestWork(transport.WorkRequest{Worker: "remote", Power: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != transport.WorkAssigned {
		t.Fatalf("status = %v", reply.Status)
	}
	if !reply.Interval.Equal(root) {
		t.Fatalf("assigned %v over TCP, want %v", reply.Interval, root)
	}

	// Report a solution and read it back through an update.
	ack, err := client.ReportSolution(transport.SolutionReport{Worker: "remote", Cost: 4000, Path: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || ack.BestCost != 4000 {
		t.Fatalf("ack = %+v", ack)
	}
	half := root.Clone()
	a := half.A()
	b := half.B()
	a.Add(a, b).Rsh(a, 1) // midpoint
	up, err := client.UpdateInterval(transport.UpdateRequest{
		Worker: "remote", IntervalID: reply.IntervalID,
		Remaining: interval.New(a, b), Power: 7, ExploredDelta: 123,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Known {
		t.Fatal("interval unknown after TCP update")
	}
	if up.Interval.A().Cmp(a) != 0 {
		t.Fatalf("intersected beginning %s, want %s", up.Interval.A(), a)
	}
	if up.BestCost != 4000 {
		t.Fatalf("best over TCP = %d", up.BestCost)
	}
}

// TestRPCEndToEndResolution: remote workers over real TCP sockets solve an
// instance to the sequential optimum — the cmd/farmer + cmd/worker
// deployment in miniature.
func TestRPCEndToEndResolution(t *testing.T) {
	ins := flowshop.Taillard(10, 6, 77)
	oracleP := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	want, _ := bb.Solve(oracleP, bb.Infinity)

	nb := core.NewNumbering(oracleP.Shape())
	f := farmer.New(nb.RootRange())
	srv, err := transport.Serve(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := transport.Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer client.Close()
			p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
			cfg := worker.Config{ID: transport.WorkerID(string(rune('x' + i))), Power: 1, UpdatePeriodNodes: 500}
			_, errs[i] = worker.Run(context.Background(), cfg, client, p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote worker %d: %v", i, err)
		}
	}
	if got := f.Best(); got.Cost != want.Cost {
		t.Fatalf("TCP resolution best %d, want %d", got.Cost, want.Cost)
	}
}

// TestWorkStatusString covers the log rendering.
func TestWorkStatusString(t *testing.T) {
	cases := map[transport.WorkStatus]string{
		transport.WorkAssigned:   "assigned",
		transport.WorkWait:       "wait",
		transport.WorkFinished:   "finished",
		transport.WorkStatus(42): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
