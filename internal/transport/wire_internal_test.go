package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"repro/internal/interval"
)

// stubCoord is a canned Coordinator for codec-level tests (the real
// farmer lives above this package and cannot be imported here).
type stubCoord struct{}

func (stubCoord) RequestWork(WorkRequest) (WorkReply, error) {
	return WorkReply{Status: WorkAssigned, IntervalID: 7, Interval: interval.FromInt64(0, 10), BestCost: 42}, nil
}
func (stubCoord) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	return UpdateReply{Known: true, Interval: req.Remaining}, nil
}
func (stubCoord) ReportSolution(SolutionReport) (SolutionAck, error) {
	return SolutionAck{Accepted: true}, nil
}

// TestReadWireFrameLengthOverflow: a frame header claiming ~2^63 bytes
// must be rejected before allocation. Converting the uvarint length to
// int64 first would wrap it negative, slipping past the size window into
// a panicking make — a 10-byte header killing coordinator or worker.
func TestReadWireFrameLengthOverflow(t *testing.T) {
	for _, n := range []uint64{math.MaxUint64, 1 << 63, math.MaxInt64 + 1} {
		hdr := binary.AppendUvarint(nil, n)
		br := bufio.NewReader(bytes.NewReader(hdr))
		if _, err := readWireFrame(br, DefaultMaxMessageBytes, nil); err == nil {
			t.Fatalf("length %#x passed the %d-byte window", n, int64(DefaultMaxMessageBytes))
		}
	}
	// With the window disabled (negative max), lengths beyond the platform
	// int must still be refused rather than handed to make.
	hdr := binary.AppendUvarint(nil, math.MaxUint64)
	br := bufio.NewReader(bytes.NewReader(hdr))
	if _, err := readWireFrame(br, -1, nil); err == nil {
		t.Fatal("MaxUint64 length passed with the size window disabled")
	}
}

// TestWireServerSurvivesUnknownMethodID: the forward-compatibility half of
// the dialect matrix — a frame with a method id this server does not know
// must come back as an rpc can't-find error on a connection that stays
// alive for the next, known frame.
func TestWireServerSurvivesUnknownMethodID(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	ref := interval.FromInt64(0, 1000)
	rsrv := rpc.NewServer()
	if err := rsrv.RegisterName(serviceName, NewRPCService(stubCoord{})); err != nil {
		t.Fatal(err)
	}
	go rsrv.ServeCodec(newWireServerCodec(srvSide, ref, DefaultMaxMessageBytes))

	cliSide.SetDeadline(time.Now().Add(5 * time.Second))
	send := func(body []byte) {
		t.Helper()
		frame := append(binary.AppendUvarint(nil, uint64(len(body))), body...)
		if _, err := cliSide.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(cliSide)
	recv := func() *wireReader {
		t.Helper()
		frame, err := readWireFrame(br, DefaultMaxMessageBytes, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &wireReader{data: frame}
	}

	// A frame with method id 0x7F, which no dialect version defines.
	send([]byte{0x7F, 0x01})
	r := recv()
	r.byte() // method id echo (zero for the unknown method)
	if seq := r.uvarint(); seq != 1 {
		t.Fatalf("response seq = %d, want 1", seq)
	}
	if flags := r.byte(); flags&wireFlagError == 0 {
		t.Fatal("unknown method id did not come back as an error response")
	}
	if msg := r.str(); !strings.Contains(msg, "can't find") {
		t.Fatalf("unknown-id error = %q, want the rpc can't-find text", msg)
	}
	if r.err != nil {
		t.Fatal(r.err)
	}

	// The connection survived: a well-formed RequestWork frame still works.
	body := []byte{wireRequestWork, 0x02}
	body, _, err := appendWireRequestBody(body, ref, &WorkRequest{Worker: "w", Power: 3})
	if err != nil {
		t.Fatal(err)
	}
	send(body)
	r = recv()
	if mid := r.byte(); mid != wireRequestWork {
		t.Fatalf("reply method id = %#x", mid)
	}
	if seq := r.uvarint(); seq != 2 {
		t.Fatalf("reply seq = %d, want 2", seq)
	}
	if flags := r.byte(); flags&wireFlagError != 0 {
		t.Fatalf("live frame after unknown id failed: %q", r.str())
	}
	var reply WorkReply
	decodeWireReplyBody(r, ref, &reply, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if reply.Status != WorkAssigned || reply.IntervalID != 7 || reply.BestCost != 42 {
		t.Fatalf("reply after unknown frame = %+v", reply)
	}
}
