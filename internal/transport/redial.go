package transport

import (
	"math/rand"
	"net/rpc"
	"sync"
	"time"
)

// Backoff computes full-jitter exponential delays: each step draws from
// [cur/2, 3·cur/2) and doubles cur up to Max. It is the shared schedule of
// every reconnect path (cmd/worker's process restarts, the Redial
// coordinator below), so fleets restarted together spread their rejoins
// instead of stampeding the coordinator.
type Backoff struct {
	// Base is the first step (default 1s); Max caps the exponential
	// growth (default 1 minute).
	Base, Max time.Duration
	// Rng drives the jitter; nil seeds from the wall clock (two workers
	// must never share a schedule).
	Rng *rand.Rand

	cur time.Duration
}

func (b *Backoff) init() {
	if b.Base <= 0 {
		b.Base = time.Second
	}
	if b.Max <= 0 {
		b.Max = time.Minute
	}
	if b.Rng == nil {
		b.Rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if b.cur == 0 {
		b.cur = b.Base
	}
}

// Next returns the next jittered delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	b.init()
	d := b.cur/2 + time.Duration(b.Rng.Int63n(int64(b.cur)))
	if b.cur < b.Max {
		b.cur *= 2
	}
	return d
}

// Reset rewinds the schedule to Base — call it after a success, so a
// long-lived process that survives many incidents starts each one fresh.
func (b *Backoff) Reset() { b.cur = 0 }

// Redial is a Coordinator over TCP that dials lazily and re-dials after a
// transport failure, with jittered backoff pacing between attempts. It
// exists for long-lived mid-tier processes (cmd/subfarmer): a plain Client
// is permanently dead after one connection loss, but a sub-farmer must
// survive root restarts for the lifetime of a resolution. Server-side
// errors (the coordinator rejecting a request) keep the connection;
// connection-level errors drop it, and the next call re-dials — callers
// like the SubFarmer already treat any upstream error as "lost, retry on
// the next cadence", which is exactly the pacing the backoff enforces.
type Redial struct {
	mu      sync.Mutex
	addr    string
	opts    DialOptions
	client  *Client
	backoff Backoff
	nextTry time.Time
	lastErr error
}

// NewRedial returns a reconnecting coordinator for addr. No connection is
// attempted until the first call.
func NewRedial(addr string) *Redial { return &Redial{addr: addr} }

// NewRedialWith is NewRedial with hardening options: opts.Policy gives
// every call a deadline and a retry budget (this is where Policy.Retries
// acts — a plain Client cannot retry), and opts.TLS/Token authenticate
// each redial.
func NewRedialWith(addr string, opts DialOptions) *Redial {
	return &Redial{addr: addr, opts: opts}
}

// do runs one exchange under the retry policy: up to 1+Retries attempts,
// paced by a fresh copy of the policy's backoff schedule. Server-side
// errors (the coordinator actively rejecting the request) are never
// retried; transport-level failures — including ErrDeadline from a
// black-holed coordinator — are, each retry forcing a fresh dial past the
// fail-fast window.
func (r *Redial) do(f func(*Client) error) error {
	attempts := 1 + r.opts.Policy.Retries
	if attempts < 1 {
		attempts = 1
	}
	bo := r.opts.Policy.Backoff
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			// Draw under the mutex: bo is a per-call copy, but a
			// caller-supplied Rng may be shared across goroutines.
			r.mu.Lock()
			d := bo.Next()
			r.mu.Unlock()
			time.Sleep(d)
		}
		err = r.call(f, a > 0)
		if err == nil {
			return nil
		}
		if _, serverSide := err.(rpc.ServerError); serverSide {
			return err
		}
	}
	return err
}

// call runs one exchange, (re)dialing as needed. While the backoff window
// of a failed dial is open, calls fail fast with the last error instead of
// hammering a dead address — except for retry attempts (force), which by
// definition have already paid their pacing in the retry loop.
func (r *Redial) call(f func(*Client) error, force bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		if !force && time.Now().Before(r.nextTry) {
			return r.lastErr
		}
		c, err := DialWith(r.addr, r.opts)
		if err != nil {
			r.lastErr = err
			r.nextTry = time.Now().Add(r.backoff.Next())
			return err
		}
		r.client = c
		r.backoff.Reset()
	}
	err := f(r.client)
	if err == nil {
		return nil
	}
	if _, serverSide := err.(rpc.ServerError); !serverSide {
		// Transport-level failure: the net/rpc client is unusable from
		// here on. Drop it; the next call past the backoff re-dials.
		r.client.Close()
		r.client = nil
		r.lastErr = err
		r.nextTry = time.Now().Add(r.backoff.Next())
	}
	return err
}

// RequestWork implements Coordinator. Retried per policy: a re-issued
// request is indistinguishable from a fresh one to the coordinator.
func (r *Redial) RequestWork(req WorkRequest) (reply WorkReply, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.RequestWork(req)
		return e
	})
	return reply, err
}

// UpdateInterval implements Coordinator. Retried per policy: the reply is
// authoritative whether the original or the retry landed.
func (r *Redial) UpdateInterval(req UpdateRequest) (reply UpdateReply, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.UpdateInterval(req)
		return e
	})
	return reply, err
}

// ReportSolution implements Coordinator. Retried per policy: SOLUTION only
// improves, so a duplicate report is absorbed as a non-improvement.
func (r *Redial) ReportSolution(req SolutionReport) (reply SolutionAck, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.ReportSolution(req)
		return e
	})
	return reply, err
}

// Close tears down the current connection, if any.
func (r *Redial) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		return nil
	}
	err := r.client.Close()
	r.client = nil
	return err
}

var _ Coordinator = (*Redial)(nil)
