package transport

import (
	"math/rand"
	"net/rpc"
	"sync"
	"time"
)

// Backoff computes full-jitter exponential delays: each step draws from
// [cur/2, 3·cur/2) and doubles cur up to Max. It is the shared schedule of
// every reconnect path (cmd/worker's process restarts, the Redial
// coordinator below), so fleets restarted together spread their rejoins
// instead of stampeding the coordinator.
type Backoff struct {
	// Base is the first step (default 1s); Max caps the exponential
	// growth (default 1 minute).
	Base, Max time.Duration
	// Rng drives the jitter; nil seeds from the wall clock (two workers
	// must never share a schedule).
	Rng *rand.Rand

	cur time.Duration
}

func (b *Backoff) init() {
	if b.Base <= 0 {
		b.Base = time.Second
	}
	if b.Max <= 0 {
		b.Max = time.Minute
	}
	if b.Rng == nil {
		b.Rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if b.cur == 0 {
		b.cur = b.Base
	}
}

// Next returns the next jittered delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	b.init()
	d := b.cur/2 + time.Duration(b.Rng.Int63n(int64(b.cur)))
	if b.cur < b.Max {
		b.cur *= 2
	}
	return d
}

// Reset rewinds the schedule to Base — call it after a success, so a
// long-lived process that survives many incidents starts each one fresh.
func (b *Backoff) Reset() { b.cur = 0 }

// Redial is a Coordinator over TCP that dials lazily and re-dials after a
// transport failure, with jittered backoff pacing between attempts. It
// exists for long-lived mid-tier processes (cmd/subfarmer): a plain Client
// is permanently dead after one connection loss, but a sub-farmer must
// survive root restarts for the lifetime of a resolution. Server-side
// errors (the coordinator rejecting a request) keep the connection;
// connection-level errors drop it, and the next call re-dials — callers
// like the SubFarmer already treat any upstream error as "lost, retry on
// the next cadence", which is exactly the pacing the backoff enforces.
// The mutex guards only client acquisition and teardown, never an
// in-flight RPC: the multiplexing layer shares one Redial among every
// worker on a host, so one slow WAN round-trip must not serialize the
// rest (or block Close). Concurrent callers during a re-dial wait on the
// condition variable rather than racing duplicate dials.
type Redial struct {
	mu      sync.Mutex
	cond    *sync.Cond // lazily bound to mu; signals the end of a dial
	addr    string
	opts    DialOptions
	client  *Client
	dialing bool
	closed  bool // terminal: set by Close, never cleared
	backoff Backoff
	nextTry time.Time
	lastErr error
}

// NewRedial returns a reconnecting coordinator for addr. No connection is
// attempted until the first call.
func NewRedial(addr string) *Redial { return &Redial{addr: addr} }

// NewRedialWith is NewRedial with hardening options: opts.Policy gives
// every call a deadline and a retry budget (this is where Policy.Retries
// acts — a plain Client cannot retry), and opts.TLS/Token authenticate
// each redial.
func NewRedialWith(addr string, opts DialOptions) *Redial {
	return &Redial{addr: addr, opts: opts}
}

// do runs one exchange under the retry policy: up to 1+Retries attempts,
// paced by a fresh copy of the policy's backoff schedule. Server-side
// errors (the coordinator actively rejecting the request) are never
// retried; transport-level failures — including ErrDeadline from a
// black-holed coordinator — are, each retry forcing a fresh dial past the
// fail-fast window.
func (r *Redial) do(f func(*Client) error) error {
	attempts := 1 + r.opts.Policy.Retries
	if attempts < 1 {
		attempts = 1
	}
	bo := r.opts.Policy.Backoff
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			// Draw under the mutex: bo is a per-call copy, but a
			// caller-supplied Rng may be shared across goroutines.
			r.mu.Lock()
			d := bo.Next()
			r.mu.Unlock()
			time.Sleep(d)
		}
		err = r.call(f, a > 0)
		if err == nil {
			return nil
		}
		if _, serverSide := err.(rpc.ServerError); serverSide {
			return err
		}
		// A terminal Close is never retried — but an rpc.ErrShutdown
		// from the call itself (a sharer's deadline expiry closed the
		// connection mid-flight) is only terminal when this Redial was
		// actually Closed; otherwise the retry re-dials as usual.
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return rpc.ErrShutdown
		}
	}
	return err
}

// acquire returns the live client, dialing one if needed. While the
// backoff window of a failed dial is open, it fails fast with the last
// error instead of hammering a dead address — except for retry attempts
// (force), which by definition have already paid their pacing in the
// retry loop. Exactly one goroutine dials at a time; the rest wait for
// its verdict instead of stampeding the address.
func (r *Redial) acquire(force bool) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, rpc.ErrShutdown
		}
		if r.client != nil {
			return r.client, nil
		}
		if r.dialing {
			if r.cond == nil {
				r.cond = sync.NewCond(&r.mu)
			}
			r.cond.Wait()
			continue
		}
		if !force && time.Now().Before(r.nextTry) {
			return nil, r.lastErr
		}
		r.dialing = true
		r.mu.Unlock()
		c, err := DialWith(r.addr, r.opts)
		r.mu.Lock()
		r.dialing = false
		if r.cond != nil {
			r.cond.Broadcast()
		}
		if err != nil {
			r.lastErr = err
			r.nextTry = time.Now().Add(r.backoff.Next())
			return nil, err
		}
		if r.closed {
			// Close raced the dial: the fresh socket must not outlive
			// the handle that owns it — close it instead of installing
			// an orphan no caller can ever reach or tear down.
			r.mu.Unlock()
			c.Close()
			r.mu.Lock()
			return nil, rpc.ErrShutdown
		}
		r.client = c
		r.backoff.Reset()
		return c, nil
	}
}

// call runs one exchange, (re)dialing as needed. The RPC itself runs
// outside the mutex: a shared Redial stays concurrent (net/rpc
// multiplexes in-flight calls by sequence number), and Close is never
// blocked behind a WAN round-trip.
func (r *Redial) call(f func(*Client) error, force bool) error {
	c, err := r.acquire(force)
	if err != nil {
		return err
	}
	err = f(c)
	if err == nil {
		return nil
	}
	if _, serverSide := err.(rpc.ServerError); !serverSide {
		// Transport-level failure: the net/rpc client is unusable from
		// here on. Drop it — but only if a concurrent failer hasn't
		// already replaced it — and close outside the lock.
		r.mu.Lock()
		if r.client == c {
			r.client = nil
			r.lastErr = err
			r.nextTry = time.Now().Add(r.backoff.Next())
		}
		r.mu.Unlock()
		c.Close()
	}
	return err
}

// RequestWork implements Coordinator. Retried per policy: a re-issued
// request is indistinguishable from a fresh one to the coordinator.
func (r *Redial) RequestWork(req WorkRequest) (reply WorkReply, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.RequestWork(req)
		return e
	})
	return reply, err
}

// UpdateInterval implements Coordinator. Retried per policy: the reply is
// authoritative whether the original or the retry landed.
func (r *Redial) UpdateInterval(req UpdateRequest) (reply UpdateReply, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.UpdateInterval(req)
		return e
	})
	return reply, err
}

// ReportSolution implements Coordinator. Retried per policy: SOLUTION only
// improves, so a duplicate report is absorbed as a non-improvement.
func (r *Redial) ReportSolution(req SolutionReport) (reply SolutionAck, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.ReportSolution(req)
		return e
	})
	return reply, err
}

// Exchange implements BatchCoordinator, retried per policy: every leg of
// a batch is individually retry-safe (see Policy), so the whole batch is.
// Against an old coordinator the first attempt returns the rpc "can't
// find method" ServerError — never retried — which callers treat as
// "speak the three-call protocol".
func (r *Redial) Exchange(req BatchRequest) (reply BatchReply, err error) {
	err = r.do(func(c *Client) (e error) {
		reply, e = c.Exchange(req)
		return e
	})
	return reply, err
}

// Close tears down the current connection, if any, and retires the Redial
// for good: every later (or concurrently waiting) call fails fast with
// rpc.ErrShutdown instead of re-dialing. Terminal semantics are what make
// the connection pool's accounting sound — a closed handle that could
// quietly resurrect its socket would leak a connection the pool no longer
// counts. It swaps the client out under the lock and closes outside it, so
// a Close never waits for an in-flight call to come back. Idempotent.
func (r *Redial) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.client
	r.client = nil
	if r.cond != nil {
		// Wake dial waiters so they observe the shutdown rather than
		// sleeping until a dial that may never be attempted resolves.
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}

var _ Coordinator = (*Redial)(nil)
var _ BatchCoordinator = (*Redial)(nil)
