// The compact wire codec (DESIGN.md §11): a drop-in replacement for the
// text-gob net/rpc stream that cuts an UpdateInterval round from ~350
// bytes to a few tens. Three mechanisms stack:
//
//   - intervals go as binary deltas against a reference range negotiated
//     at connection time (interval.AppendDelta; the server's WireRef,
//     typically the root interval the coordinator boundary already pins),
//     instead of two ~65-digit decimal texts;
//   - the "GridBB.UpdateInterval" method string both ways collapses to a
//     one-byte method id and a varint sequence number;
//   - the reply interval is elided entirely when it equals the request's
//     Remaining — the steady-state no-rebalance case, where the farmer's
//     intersection (eq. 14) returns exactly what the worker folded.
//
// Framing is uvarint(length) + body; the length is checked against
// MaxMessageBytes before the body is read, and intervals decode under
// interval.MaxDeltaBits, so the reject-before-materialize discipline of
// the srvConn/cliConn byte windows carries over (the windows themselves
// still run beneath this codec).
//
// Negotiation: after authentication the client sends wirePreamble, whose
// lead byte 0x00 can never begin a gob stream (a gob message length is
// never zero), so a new server distinguishes the two dialects from the
// first byte. A new server answers with an ack and the reference
// interval; an old server trips over the preamble and closes, and the
// client re-dials speaking plain text-gob — old and new peers interoperate
// in both directions with no configuration.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/big"
	"net/rpc"
	"sync"

	"repro/internal/interval"
)

// wirePreamble opens a compact-codec connection, after authentication.
// The lead 0x00 is unambiguous against gob: a gob stream begins with a
// message length, which is never zero.
var wirePreamble = [5]byte{0x00, 'G', 'B', 'W', 1}

// wireAck is the server's one-byte acceptance of the preamble, followed
// by the reference-interval frame.
const wireAck = 0x01

// maxWireRefBytes bounds the negotiated reference-interval frame.
const maxWireRefBytes = 1 << 16

// wireFlagError marks a response frame that carries an error string
// instead of a reply payload.
const wireFlagError = 0x01

// Method ids replace ServiceMethod strings on the wire.
const (
	wireRequestWork    = 0x01
	wireUpdateInterval = 0x02
	wireReportSolution = 0x03
	wireExchange       = 0x04
)

func wireMethodName(id byte) string {
	switch id {
	case wireRequestWork:
		return serviceName + ".RequestWork"
	case wireUpdateInterval:
		return serviceName + ".UpdateInterval"
	case wireReportSolution:
		return serviceName + ".ReportSolution"
	case wireExchange:
		return serviceName + ".Exchange"
	default:
		return ""
	}
}

func wireMethodID(name string) byte {
	switch name {
	case serviceName + ".RequestWork":
		return wireRequestWork
	case serviceName + ".UpdateInterval":
		return wireUpdateInterval
	case serviceName + ".ReportSolution":
		return wireReportSolution
	case serviceName + ".Exchange":
		return wireExchange
	default:
		return 0
	}
}

// readWireFrame reads one length-prefixed frame, reusing buf. The length
// is vetted against max before a byte of body is read.
func readWireFrame(br *bufio.Reader, max int64, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Both checks stay in uint64 space: converting n first would let a
	// 2^63-scale length wrap negative and reach make([]byte, n).
	if max > 0 && n > uint64(max) {
		return nil, fmt.Errorf("wire: %d-byte frame beyond %d: %w", n, max, ErrOversize)
	}
	if n > math.MaxInt {
		return nil, fmt.Errorf("wire: %d-byte frame beyond the platform int: %w", n, ErrOversize)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return buf, nil
}

// wireReader is a cursor over one frame body; errors stick so decode
// sequences read linearly and check once.
type wireReader struct {
	data []byte
	pos  int
	err  error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("wire: truncated body")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("wire: bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("wire: bad varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.data)-r.pos) < n {
		r.fail("wire: truncated string")
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *wireReader) interval(ref interval.Interval) interval.Interval {
	if r.err != nil {
		return interval.Interval{}
	}
	iv, n, err := interval.DecodeDelta(r.data[r.pos:], ref, 0)
	if err != nil {
		r.fail("wire: %v", err)
		return interval.Interval{}
	}
	r.pos += n
	return iv
}

func (r *wireReader) path() []int {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each path element is at least one varint byte.
	if uint64(len(r.data)-r.pos) < n {
		r.fail("wire: truncated path")
		return nil
	}
	p := make([]int, n)
	for i := range p {
		p[i] = int(r.varint())
	}
	return p
}

func appendWireStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendWirePath(dst []byte, p []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	for _, v := range p {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

func wireBool(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// appendWireBig encodes a non-negative big.Int as a length-prefixed
// big-endian byte string (the fold-content field; interval deltas have
// their own codec).
func appendWireBig(dst []byte, v *big.Int) []byte {
	b := v.Bytes()
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func (r *wireReader) big() *big.Int {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxWireRefBytes || uint64(len(r.data)-r.pos) < n {
		r.fail("wire: truncated big int")
		return nil
	}
	v := new(big.Int).SetBytes(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return v
}

// Request payloads.

func appendWireRequestBody(dst []byte, ref interval.Interval, x any) (body []byte, intervalSeg []byte, err error) {
	switch q := x.(type) {
	case *WorkRequest:
		dst = appendWireStr(dst, string(q.Worker))
		dst = binary.AppendVarint(dst, q.Power)
		// Job trails the PR-7 fixed layout behind an ext bitmask byte
		// (1 = job id), the same mixed-version discipline as the fold
		// extensions: an old decoder stops at Power and never sees it.
		if q.Job != "" {
			dst = append(dst, 1)
			dst = appendWireStr(dst, q.Job)
		}
	case *UpdateRequest:
		dst = appendWireStr(dst, string(q.Worker))
		dst = binary.AppendVarint(dst, q.IntervalID)
		p0 := len(dst)
		dst = q.Remaining.AppendDelta(dst, ref)
		intervalSeg = append([]byte(nil), dst[p0:]...)
		dst = binary.AppendVarint(dst, q.Power)
		dst = binary.AppendVarint(dst, q.ExploredDelta)
		dst = binary.AppendVarint(dst, q.PrunedDelta)
		dst = binary.AppendVarint(dst, q.LeavesDelta)
		// Extensions trail the fixed layout behind a bitmask byte (1 = gap,
		// 2 = content): an old decoder stops at LeavesDelta and ignores the
		// trailing bytes, so both folds are optional in both directions.
		ext := byte(0)
		if q.HasGap {
			ext |= 1
		}
		if q.Content != nil {
			ext |= 2
		}
		if q.Job != "" {
			ext |= 4
		}
		if ext != 0 {
			dst = append(dst, ext)
			if q.HasGap {
				dst = q.Gap.AppendDelta(dst, ref)
			}
			if q.Content != nil {
				dst = appendWireBig(dst, q.Content)
			}
			if q.Job != "" {
				dst = appendWireStr(dst, q.Job)
			}
		}
	case *SolutionReport:
		dst = appendWireStr(dst, string(q.Worker))
		dst = binary.AppendVarint(dst, q.Cost)
		dst = appendWirePath(dst, q.Path)
		// Job trails the fixed layout behind an ext byte, like WorkRequest.
		if q.Job != "" {
			dst = append(dst, 1)
			dst = appendWireStr(dst, q.Job)
		}
	case *BatchRequest:
		dst = appendWireStr(dst, string(q.Worker))
		dst = binary.AppendVarint(dst, q.Power)
		var f byte
		if q.HasFold {
			f |= 1
		}
		if q.HasReport {
			f |= 2
		}
		if q.WantWork {
			f |= 4
		}
		if q.HasFoldGap {
			f |= 8
		}
		if q.FoldContent != nil {
			f |= 16
		}
		dst = append(dst, f)
		if q.HasFold {
			dst = binary.AppendVarint(dst, q.FoldID)
			dst = q.Remaining.AppendDelta(dst, ref)
			dst = binary.AppendVarint(dst, q.ExploredDelta)
			dst = binary.AppendVarint(dst, q.PrunedDelta)
			dst = binary.AppendVarint(dst, q.LeavesDelta)
		}
		if q.HasReport {
			dst = binary.AppendVarint(dst, q.Cost)
			dst = appendWirePath(dst, q.Path)
		}
		// Trailing gap and content, same mixed-version discipline as the
		// reply hints: an old decoder ignores the unknown flag bits and
		// these bytes.
		if q.HasFoldGap {
			dst = q.FoldGap.AppendDelta(dst, ref)
		}
		if q.FoldContent != nil {
			dst = appendWireBig(dst, q.FoldContent)
		}
	default:
		return dst, nil, fmt.Errorf("wire: unsupported request type %T", x)
	}
	return dst, intervalSeg, nil
}

// decodeWireRequestBody fills x from r; for UpdateRequest it also returns
// the raw byte segment of the encoded Remaining, for reply elision.
func decodeWireRequestBody(r *wireReader, ref interval.Interval, x any) (intervalSeg []byte) {
	switch q := x.(type) {
	case *WorkRequest:
		q.Worker = WorkerID(r.str())
		q.Power = r.varint()
		if r.err == nil && r.pos < len(r.data) {
			ext := r.byte()
			if ext&1 != 0 {
				j := r.str()
				if r.err == nil {
					q.Job = j
				}
			}
		}
	case *UpdateRequest:
		q.Worker = WorkerID(r.str())
		q.IntervalID = r.varint()
		p0 := r.pos
		q.Remaining = r.interval(ref)
		if r.err == nil {
			intervalSeg = append([]byte(nil), r.data[p0:r.pos]...)
		}
		q.Power = r.varint()
		q.ExploredDelta = r.varint()
		q.PrunedDelta = r.varint()
		q.LeavesDelta = r.varint()
		// Optional trailing extensions behind a bitmask byte: 1 = delta-coded
		// gap interval, 2 = fold-content length. Unknown bits are future
		// extensions this decoder ignores, exactly as an old decoder ignores
		// these.
		if r.err == nil && r.pos < len(r.data) {
			ext := r.byte()
			if ext&1 != 0 {
				g := r.interval(ref)
				if r.err == nil {
					q.HasGap, q.Gap = true, g
				}
			}
			if ext&2 != 0 {
				c := r.big()
				if r.err == nil {
					q.Content = c
				}
			}
			if ext&4 != 0 {
				j := r.str()
				if r.err == nil {
					q.Job = j
				}
			}
		}
	case *SolutionReport:
		q.Worker = WorkerID(r.str())
		q.Cost = r.varint()
		q.Path = r.path()
		if r.err == nil && r.pos < len(r.data) {
			ext := r.byte()
			if ext&1 != 0 {
				j := r.str()
				if r.err == nil {
					q.Job = j
				}
			}
		}
	case *BatchRequest:
		q.Worker = WorkerID(r.str())
		q.Power = r.varint()
		f := r.byte()
		q.HasFold = f&1 != 0
		q.HasReport = f&2 != 0
		q.WantWork = f&4 != 0
		if q.HasFold {
			q.FoldID = r.varint()
			q.Remaining = r.interval(ref)
			q.ExploredDelta = r.varint()
			q.PrunedDelta = r.varint()
			q.LeavesDelta = r.varint()
		}
		if q.HasReport {
			q.Cost = r.varint()
			q.Path = r.path()
		}
		if f&8 != 0 {
			g := r.interval(ref)
			if r.err == nil {
				q.HasFoldGap, q.FoldGap = true, g
			}
		}
		if f&16 != 0 {
			c := r.big()
			if r.err == nil {
				q.FoldContent = c
			}
		}
	default:
		r.fail("wire: unsupported request type %T", x)
	}
	return intervalSeg
}

// Reply payloads.

func appendWireReplyBody(dst []byte, ref interval.Interval, x any, elideWant []byte) ([]byte, error) {
	switch p := x.(type) {
	case *WorkReply:
		dst = binary.AppendVarint(dst, int64(p.Status))
		dst = binary.AppendVarint(dst, p.IntervalID)
		dst = p.Interval.AppendDelta(dst, ref)
		dst = binary.AppendVarint(dst, p.BestCost)
		dst = append(dst, wireBool(p.Duplicated))
		// Job trails the PR-7 fixed layout behind an ext byte: an old
		// worker stops at Duplicated and never sees the routing tag.
		if p.Job != "" {
			dst = append(dst, 1)
			dst = appendWireStr(dst, p.Job)
		}
	case *UpdateReply:
		enc := p.Interval.AppendDelta(nil, ref)
		elide := elideWant != nil && bytes.Equal(enc, elideWant)
		var f byte
		if p.Finished {
			f |= 1
		}
		if p.Known {
			f |= 2
		}
		if elide {
			f |= 4
		}
		if p.Hint != nil {
			f |= 8
		}
		dst = append(dst, f)
		if !elide {
			dst = append(dst, enc...)
		}
		dst = binary.AppendVarint(dst, p.BestCost)
		// The hint trails the fixed layout: an old decoder stops at
		// BestCost and ignores both the unknown flag bit and these bytes,
		// which is exactly the "optional in both directions" contract.
		if p.Hint != nil {
			dst = binary.AppendVarint(dst, p.Hint.Others)
			dst = binary.AppendVarint(dst, p.Hint.RichestBits)
		}
	case *SolutionAck:
		dst = binary.AppendVarint(dst, p.BestCost)
		dst = append(dst, wireBool(p.Accepted))
	case *BatchReply:
		var f byte
		if p.HasFold {
			f |= 1
		}
		if p.Finished {
			f |= 2
		}
		if p.Known {
			f |= 4
		}
		if p.HasWork {
			f |= 8
		}
		if p.Duplicated {
			f |= 16
		}
		if p.Hint != nil {
			f |= 32
		}
		dst = append(dst, f)
		if p.HasFold {
			dst = p.Interval.AppendDelta(dst, ref)
		}
		if p.HasWork {
			dst = binary.AppendVarint(dst, int64(p.Status))
			dst = binary.AppendVarint(dst, p.IntervalID)
			dst = p.WorkInterval.AppendDelta(dst, ref)
		}
		dst = binary.AppendVarint(dst, p.BestCost)
		// Trailing hint, same mixed-version discipline as UpdateReply.
		if p.Hint != nil {
			dst = binary.AppendVarint(dst, p.Hint.Others)
			dst = binary.AppendVarint(dst, p.Hint.RichestBits)
		}
	default:
		return dst, fmt.Errorf("wire: unsupported reply type %T", x)
	}
	return dst, nil
}

// decodeWireReplyBody fills x from r; stashed is the encoded Remaining of
// the matching request, consumed when the reply interval was elided.
func decodeWireReplyBody(r *wireReader, ref interval.Interval, x any, stashed []byte) {
	switch p := x.(type) {
	case *WorkReply:
		p.Status = WorkStatus(r.varint())
		p.IntervalID = r.varint()
		p.Interval = r.interval(ref)
		p.BestCost = r.varint()
		p.Duplicated = r.byte() != 0
		if r.err == nil && r.pos < len(r.data) {
			ext := r.byte()
			if ext&1 != 0 {
				j := r.str()
				if r.err == nil {
					p.Job = j
				}
			}
		}
	case *UpdateReply:
		f := r.byte()
		p.Finished = f&1 != 0
		p.Known = f&2 != 0
		if f&4 != 0 {
			if stashed == nil {
				r.fail("wire: elided reply interval with no request copy")
				return
			}
			iv, n, err := interval.DecodeDelta(stashed, ref, 0)
			if err != nil || n != len(stashed) {
				r.fail("wire: bad stashed interval: %v", err)
				return
			}
			p.Interval = iv
		} else {
			p.Interval = r.interval(ref)
		}
		p.BestCost = r.varint()
		if f&8 != 0 {
			h := &StealHint{Others: r.varint(), RichestBits: r.varint()}
			if r.err == nil {
				p.Hint = h
			}
		}
	case *SolutionAck:
		p.BestCost = r.varint()
		p.Accepted = r.byte() != 0
	case *BatchReply:
		f := r.byte()
		p.HasFold = f&1 != 0
		p.Finished = f&2 != 0
		p.Known = f&4 != 0
		p.HasWork = f&8 != 0
		p.Duplicated = f&16 != 0
		if p.HasFold {
			p.Interval = r.interval(ref)
		}
		if p.HasWork {
			p.Status = WorkStatus(r.varint())
			p.IntervalID = r.varint()
			p.WorkInterval = r.interval(ref)
		}
		p.BestCost = r.varint()
		if f&32 != 0 {
			h := &StealHint{Others: r.varint(), RichestBits: r.varint()}
			if r.err == nil {
				p.Hint = h
			}
		}
	default:
		r.fail("wire: unsupported reply type %T", x)
	}
}

// wireServerCodec is the coordinator side of the compact dialect. Reads
// run on net/rpc's single input goroutine; writes are serialized by the
// rpc server's sending mutex (wmu is cheap insurance). The stash carries
// each UpdateInterval request's encoded Remaining from the read side to
// the response side, keyed by sequence number, so the reply interval can
// be elided when the coordinator changed nothing.
type wireServerCodec struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	ref  interval.Interval
	max  int64

	rbuf   []byte
	method byte
	seq    uint64
	body   []byte

	wmu        sync.Mutex
	wbuf, pbuf []byte

	stashMu sync.Mutex
	stash   map[uint64][]byte
}

func newWireServerCodec(conn io.ReadWriteCloser, ref interval.Interval, max int64) *wireServerCodec {
	return &wireServerCodec{
		conn:  conn,
		br:    bufio.NewReader(conn),
		ref:   ref,
		max:   max,
		stash: make(map[uint64][]byte),
	}
}

func (c *wireServerCodec) ReadRequestHeader(req *rpc.Request) error {
	frame, err := readWireFrame(c.br, c.max, c.rbuf)
	if err != nil {
		return err
	}
	c.rbuf = frame
	r := wireReader{data: frame}
	c.method = r.byte()
	c.seq = r.uvarint()
	if r.err != nil {
		return r.err
	}
	req.Seq = c.seq
	if name := wireMethodName(c.method); name != "" {
		req.ServiceMethod = name
	} else {
		// Unknown id: hand rpc a method it cannot find, so the peer gets
		// a ServerError reply and the connection survives.
		req.ServiceMethod = fmt.Sprintf("%s.wire#%d", serviceName, c.method)
	}
	c.body = frame[r.pos:]
	return nil
}

func (c *wireServerCodec) ReadRequestBody(x any) error {
	body := c.body
	c.body = nil
	if x == nil {
		return nil
	}
	r := wireReader{data: body}
	seg := decodeWireRequestBody(&r, c.ref, x)
	if r.err != nil {
		return r.err
	}
	if seg != nil {
		c.stashMu.Lock()
		c.stash[c.seq] = seg
		c.stashMu.Unlock()
	}
	return nil
}

func (c *wireServerCodec) WriteResponse(resp *rpc.Response, x any) error {
	c.stashMu.Lock()
	want := c.stash[resp.Seq]
	delete(c.stash, resp.Seq)
	c.stashMu.Unlock()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	body := c.pbuf[:0]
	body = append(body, wireMethodID(resp.ServiceMethod))
	body = binary.AppendUvarint(body, resp.Seq)
	if resp.Error != "" {
		body = append(body, wireFlagError)
		body = appendWireStr(body, resp.Error)
	} else {
		body = append(body, 0)
		var err error
		if body, err = appendWireReplyBody(body, c.ref, x, want); err != nil {
			return err
		}
	}
	c.pbuf = body
	out := binary.AppendUvarint(c.wbuf[:0], uint64(len(body)))
	out = append(out, body...)
	c.wbuf = out
	_, err := c.conn.Write(out)
	return err
}

func (c *wireServerCodec) Close() error { return c.conn.Close() }

// wireClientCodec is the worker side. WriteRequest stashes the encoded
// Remaining of each UpdateInterval by sequence number; ReadResponseBody
// (which net/rpc calls exactly once per response, nil body included)
// consumes the stash, restoring the interval when the reply elided it.
type wireClientCodec struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	ref  interval.Interval
	max  int64

	wmu        sync.Mutex
	wbuf, pbuf []byte

	rbuf     []byte
	respSeq  uint64
	respBody []byte

	stashMu sync.Mutex
	stash   map[uint64][]byte
}

func newWireClientCodec(conn io.ReadWriteCloser, br *bufio.Reader, ref interval.Interval, max int64) *wireClientCodec {
	return &wireClientCodec{
		conn:  conn,
		br:    br,
		ref:   ref,
		max:   max,
		stash: make(map[uint64][]byte),
	}
}

func (c *wireClientCodec) WriteRequest(req *rpc.Request, x any) error {
	id := wireMethodID(req.ServiceMethod)
	if id == 0 {
		return fmt.Errorf("wire: unknown method %q", req.ServiceMethod)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	body := c.pbuf[:0]
	body = append(body, id)
	body = binary.AppendUvarint(body, req.Seq)
	body, seg, err := appendWireRequestBody(body, c.ref, x)
	if err != nil {
		return err
	}
	if seg != nil {
		c.stashMu.Lock()
		c.stash[req.Seq] = seg
		c.stashMu.Unlock()
	}
	c.pbuf = body
	out := binary.AppendUvarint(c.wbuf[:0], uint64(len(body)))
	out = append(out, body...)
	c.wbuf = out
	_, werr := c.conn.Write(out)
	return werr
}

func (c *wireClientCodec) ReadResponseHeader(resp *rpc.Response) error {
	frame, err := readWireFrame(c.br, c.max, c.rbuf)
	if err != nil {
		return err
	}
	c.rbuf = frame
	r := wireReader{data: frame}
	mid := r.byte()
	seq := r.uvarint()
	flags := r.byte()
	if r.err != nil {
		return r.err
	}
	resp.Seq = seq
	resp.ServiceMethod = wireMethodName(mid)
	c.respSeq = seq
	c.respBody = nil
	if flags&wireFlagError != 0 {
		resp.Error = r.str()
		if r.err != nil {
			return r.err
		}
		if resp.Error == "" {
			resp.Error = "wire: unnamed server error"
		}
	} else {
		c.respBody = frame[r.pos:]
	}
	return nil
}

func (c *wireClientCodec) ReadResponseBody(x any) error {
	c.stashMu.Lock()
	stashed := c.stash[c.respSeq]
	delete(c.stash, c.respSeq)
	c.stashMu.Unlock()
	body := c.respBody
	c.respBody = nil
	if x == nil {
		return nil
	}
	r := wireReader{data: body}
	decodeWireReplyBody(&r, c.ref, x, stashed)
	return r.err
}

func (c *wireClientCodec) Close() error { return c.conn.Close() }

// negotiateCompact runs the client half of the dialect negotiation over
// an authenticated connection and returns the compact codec on success.
// Any failure — most commonly an old server closing the connection at the
// sight of the preamble — leaves the connection unusable; the caller
// closes it and re-dials plain gob.
func negotiateCompact(conn io.ReadWriteCloser, max int64) (*wireClientCodec, error) {
	if _, err := conn.Write(wirePreamble[:]); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	ack, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("wire: peer rejected preamble: %w", err)
	}
	if ack != wireAck {
		return nil, fmt.Errorf("wire: bad negotiation ack 0x%02x", ack)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("wire: reference frame: %w", err)
	}
	if n > maxWireRefBytes {
		return nil, fmt.Errorf("wire: %d-byte reference frame: %w", n, ErrOversize)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("wire: reference frame: %w", err)
	}
	ref, used, err := interval.DecodeDelta(buf, interval.Interval{}, 0)
	if err != nil || used != len(buf) {
		return nil, fmt.Errorf("wire: bad reference interval: %v", err)
	}
	return newWireClientCodec(conn, br, ref, max), nil
}

// prefixedConn replays sniffed bytes before the underlying stream, so the
// server's one-byte dialect sniff is invisible to the gob path.
type prefixedConn struct {
	io.ReadWriteCloser
	prefix []byte
}

func (p *prefixedConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.ReadWriteCloser.Read(b)
}
