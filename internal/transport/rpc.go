package transport

import (
	"crypto/tls"
	"fmt"
	"math"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// RPCService adapts a Coordinator to the net/rpc calling convention so a
// farmer can serve workers across machines. All methods are goroutine-safe
// if the underlying Coordinator is.
type RPCService struct {
	coord Coordinator
}

// NewRPCService wraps a coordinator.
func NewRPCService(coord Coordinator) *RPCService { return &RPCService{coord: coord} }

// RequestWork is the RPC wrapper of Coordinator.RequestWork.
func (s *RPCService) RequestWork(req *WorkRequest, reply *WorkReply) error {
	r, err := s.coord.RequestWork(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// UpdateInterval is the RPC wrapper of Coordinator.UpdateInterval.
func (s *RPCService) UpdateInterval(req *UpdateRequest, reply *UpdateReply) error {
	r, err := s.coord.UpdateInterval(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// ReportSolution is the RPC wrapper of Coordinator.ReportSolution.
func (s *RPCService) ReportSolution(req *SolutionReport, reply *SolutionAck) error {
	r, err := s.coord.ReportSolution(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// serviceName is the rpc-registered name of the farmer service.
const serviceName = "GridBB"

// DefaultMaxMessageBytes bounds one gob message on both ends of the wire.
// The protocol's messages are intervals and short paths — a few hundred
// bytes at depth-60 trees — so one mebibyte is three orders of magnitude
// of headroom while still making a gigabyte Path unsendable.
const DefaultMaxMessageBytes = 1 << 20

// ServerOptions hardens a coordinator endpoint against a hostile WAN. The
// zero value keeps the seed behaviour except for the message-size limit,
// which defaults to DefaultMaxMessageBytes (set MaxMessageBytes negative
// to disable it).
type ServerOptions struct {
	// ReadTimeout is the per-connection idle read deadline: a peer that
	// goes silent longer than this (between requests, or mid-message) has
	// its connection closed, freeing the slot and the goroutine. Zero
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxConns caps simultaneous connections. When a new peer arrives at
	// the cap, the connection with the oldest traffic is evicted — slow or
	// stalled clients yield to live ones, matching the pull model's bias
	// toward whoever is actually exploring. Zero means unlimited.
	MaxConns int
	// MaxMessageBytes bounds the bytes of one inbound message. Zero means
	// DefaultMaxMessageBytes; negative disables the bound.
	MaxMessageBytes int64
	// TLS, when non-nil, wraps every connection in server-side TLS. Use
	// LoadServerTLS to build a config from PEM files, including the
	// client-certificate authentication mode.
	TLS *tls.Config
	// Token, when non-empty, requires each connection to open with a
	// matching shared token before any RPC is accepted (the lightweight
	// authentication mode; combine with TLS so the token is not sent in
	// clear).
	Token string
}

// ServerStats counts what the hardening layer did, mirroring the farmer's
// rejected-and-counted discipline at the connection level.
type ServerStats struct {
	// ActiveConns is the number of currently tracked connections.
	ActiveConns int
	// Evicted counts connections closed to make room under MaxConns.
	Evicted int64
	// Oversize counts connections killed for exceeding MaxMessageBytes.
	Oversize int64
	// AuthFailures counts connections that failed the TLS handshake or
	// the token exchange.
	AuthFailures int64
	// AcceptErrors counts transient listener errors survived by the
	// accept loop's backoff.
	AcceptErrors int64
}

// Server serves a Coordinator over TCP.
type Server struct {
	listener net.Listener
	rpcSrv   *rpc.Server
	opts     ServerOptions

	mu     sync.Mutex
	closed bool
	conns  map[*srvConn]struct{}

	evicted      atomic.Int64
	oversize     atomic.Int64
	authFailures atomic.Int64
	acceptErrors atomic.Int64
}

// Serve registers the coordinator and starts accepting connections on addr
// (e.g. ":4321") with default options. It returns immediately; connections
// are handled on background goroutines until Close.
func Serve(coord Coordinator, addr string) (*Server, error) {
	return ServeWith(coord, addr, ServerOptions{})
}

// ServeTLS is Serve with TLS and optional shared-token authentication.
// tlsConf typically comes from LoadServerTLS; token may be empty when the
// TLS config itself authenticates clients (client-certificate mode).
func ServeTLS(coord Coordinator, addr string, tlsConf *tls.Config, token string) (*Server, error) {
	return ServeWith(coord, addr, ServerOptions{TLS: tlsConf, Token: token})
}

// ServeWith is Serve with explicit hardening options.
func ServeWith(coord Coordinator, addr string, opts ServerOptions) (*Server, error) {
	if opts.MaxMessageBytes == 0 {
		opts.MaxMessageBytes = DefaultMaxMessageBytes
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, NewRPCService(coord)); err != nil {
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if opts.TLS != nil {
		ln = tls.NewListener(ln, opts.TLS)
	}
	s := &Server{
		listener: ln,
		rpcSrv:   srv,
		opts:     opts,
		conns:    make(map[*srvConn]struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// acceptBackoff bounds the sleep ladder on transient Accept errors.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

func (s *Server) acceptLoop() {
	var delay time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// Transient accept error (EMFILE and friends): back off
			// instead of hot-spinning — the condition that broke Accept
			// needs wall time, not retries, to clear.
			s.acceptErrors.Add(1)
			if delay == 0 {
				delay = acceptBackoffBase
			} else if delay *= 2; delay > acceptBackoffMax {
				delay = acceptBackoffMax
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		go s.serveConn(conn)
	}
}

// serveConn authenticates, registers, and serves one connection, and
// guarantees its teardown.
func (s *Server) serveConn(nc net.Conn) {
	c := &srvConn{Conn: nc, srv: s}
	c.touch()
	if !s.register(c) {
		nc.Close()
		return
	}
	defer s.unregister(c)
	defer nc.Close()
	if tc, ok := nc.(*tls.Conn); ok {
		nc.SetDeadline(time.Now().Add(authTimeout))
		if err := tc.Handshake(); err != nil {
			s.authFailures.Add(1)
			return
		}
		nc.SetDeadline(time.Time{})
	}
	if s.opts.Token != "" {
		if err := verifyToken(nc, s.opts.Token); err != nil {
			s.authFailures.Add(1)
			return
		}
	}
	s.rpcSrv.ServeConn(c)
}

// register tracks c, evicting the most idle connection when MaxConns is
// reached. It reports false when the server is already closed.
func (s *Server) register(c *srvConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if max := s.opts.MaxConns; max > 0 && len(s.conns) >= max {
		var victim *srvConn
		oldest := int64(math.MaxInt64)
		for oc := range s.conns {
			if la := oc.lastActive.Load(); la < oldest {
				oldest, victim = la, oc
			}
		}
		if victim != nil {
			delete(s.conns, victim)
			victim.Conn.Close()
			s.evicted.Add(1)
		}
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) unregister(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Addr returns the bound address, useful when addr was ":0".
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Stats snapshots the hardening counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	return ServerStats{
		ActiveConns:  active,
		Evicted:      s.evicted.Load(),
		Oversize:     s.oversize.Load(),
		AuthFailures: s.authFailures.Load(),
		AcceptErrors: s.acceptErrors.Load(),
	}
}

// Close stops accepting connections and closes every tracked connection;
// their serving goroutines unwind on the resulting read errors.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[*srvConn]struct{})
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Conn.Close()
	}
	return err
}

// srvConn is the server's per-connection hardening wrapper: it arms the
// idle read deadline before every Read, timestamps traffic for the
// MaxConns eviction policy, and enforces the message-size window. The
// window is the bytes read since the connection's last write — because
// net/rpc is strictly request/reply per codec, that span can cover at most
// one full inbound message (plus the start of a pipelined next one), so a
// cap of MaxMessageBytes+slack bounds every message without teaching the
// wrapper gob framing.
type srvConn struct {
	net.Conn
	srv        *Server
	lastActive atomic.Int64 // wall nanos of last traffic, for eviction
	window     atomic.Int64 // bytes read since the last write
}

func (c *srvConn) touch() { c.lastActive.Store(time.Now().UnixNano()) }

func (c *srvConn) Read(p []byte) (int, error) {
	if t := c.srv.opts.ReadTimeout; t > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(t))
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.touch()
		// Allow one full message of pipelined readahead beyond the cap:
		// the wrapper cannot see gob frame boundaries, only byte flow.
		if max := c.srv.opts.MaxMessageBytes; max > 0 && c.window.Add(int64(n)) > 2*max {
			c.srv.oversize.Add(1)
			return 0, fmt.Errorf("transport: inbound message beyond %d bytes: %w", max, ErrOversize)
		}
	}
	return n, err
}

func (c *srvConn) Write(p []byte) (int, error) {
	c.window.Store(0)
	c.touch()
	return c.Conn.Write(p)
}

// DialOptions configures the client end of the hardened transport. The
// zero value matches the seed behaviour plus the default reply-size limit.
type DialOptions struct {
	// Policy is the per-call liveness discipline; see Policy. Timeout also
	// bounds connection establishment (dial, TLS handshake, token
	// exchange).
	Policy Policy
	// TLS, when non-nil, dials through client-side TLS. Use LoadClientTLS
	// to build a config from PEM files.
	TLS *tls.Config
	// Token, when non-empty, is presented to the server right after
	// connecting (shared-token authentication).
	Token string
	// MaxMessageBytes bounds one inbound reply. Zero means
	// DefaultMaxMessageBytes; negative disables the bound.
	MaxMessageBytes int64
}

// Client is a Coordinator implementation that forwards calls to a remote
// farmer over TCP. Calls are synchronous, matching the pull model: the
// worker blocks on its own outbound request, never the reverse — but with
// a Policy.Timeout the block is bounded, and a black-holed farmer yields
// ErrDeadline instead of a hang. A Client whose call timed out is closed
// (the reply could still arrive arbitrarily late on that connection);
// Redial layers reconnection and retries on top.
type Client struct {
	rc      *rpc.Client
	timeout time.Duration
}

// Dial connects to a farmer served by Serve.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialTLS is Dial over TLS with optional shared-token authentication,
// mirroring ServeTLS.
func DialTLS(addr string, tlsConf *tls.Config, token string) (*Client, error) {
	return DialWith(addr, DialOptions{TLS: tlsConf, Token: token})
}

// DialWith is Dial with explicit hardening options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	if opts.MaxMessageBytes == 0 {
		opts.MaxMessageBytes = DefaultMaxMessageBytes
	}
	timeout := opts.Policy.Timeout
	var nc net.Conn
	var err error
	if timeout > 0 {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if timeout > 0 {
		nc.SetDeadline(time.Now().Add(timeout))
	}
	if opts.TLS != nil {
		conf := opts.TLS
		if conf.ServerName == "" && !conf.InsecureSkipVerify {
			// Derive the verification name from the dialed address, as
			// tls.Dial would; the caller's config is not mutated.
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			conf = conf.Clone()
			conf.ServerName = host
		}
		tc := tls.Client(nc, conf)
		if err := tc.Handshake(); err != nil {
			nc.Close()
			return nil, fmt.Errorf("transport: tls handshake with %s: %w", addr, err)
		}
		nc = tc
	}
	if opts.Token != "" {
		if err := presentToken(nc, opts.Token); err != nil {
			nc.Close()
			return nil, fmt.Errorf("transport: authenticate to %s: %w", addr, err)
		}
	}
	if timeout > 0 {
		nc.SetDeadline(time.Time{})
	}
	cc := &cliConn{Conn: nc, max: opts.MaxMessageBytes}
	return &Client{rc: rpc.NewClient(cc), timeout: timeout}, nil
}

// cliConn enforces the reply-size window on the worker side, symmetric to
// srvConn: a hostile coordinator cannot feed a worker an unbounded reply.
type cliConn struct {
	net.Conn
	max    int64
	window atomic.Int64
}

func (c *cliConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.max > 0 && c.window.Add(int64(n)) > 2*c.max {
		return 0, fmt.Errorf("transport: inbound reply beyond %d bytes: %w", c.max, ErrOversize)
	}
	return n, err
}

func (c *cliConn) Write(p []byte) (int, error) {
	c.window.Store(0)
	return c.Conn.Write(p)
}

// timerPool recycles deadline timers across calls: a worker heartbeating
// every few seconds would otherwise allocate a runtime timer per call.
var timerPool sync.Pool

// invoke runs one RPC under the client's deadline. On timeout the
// connection is closed and the in-flight call drained before returning, so
// a late reply can never race a caller that has moved on and reused its
// reply value.
func (c *Client) invoke(method string, req, reply any) error {
	if c.timeout <= 0 {
		return c.rc.Call(method, req, reply)
	}
	call := c.rc.Go(method, req, reply, make(chan *rpc.Call, 1))
	timer, _ := timerPool.Get().(*time.Timer)
	if timer == nil {
		timer = time.NewTimer(c.timeout)
	} else {
		timer.Reset(c.timeout)
	}
	select {
	case <-call.Done:
		if !timer.Stop() {
			<-timer.C
		}
		timerPool.Put(timer)
		return call.Error
	case <-timer.C:
		timerPool.Put(timer)
		c.rc.Close()
		<-call.Done
		return fmt.Errorf("transport: %s after %v: %w", method, c.timeout, ErrDeadline)
	}
}

// RequestWork implements Coordinator.
func (c *Client) RequestWork(req WorkRequest) (WorkReply, error) {
	var reply WorkReply
	err := c.invoke(serviceName+".RequestWork", &req, &reply)
	return reply, err
}

// UpdateInterval implements Coordinator.
func (c *Client) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	var reply UpdateReply
	err := c.invoke(serviceName+".UpdateInterval", &req, &reply)
	return reply, err
}

// ReportSolution implements Coordinator.
func (c *Client) ReportSolution(req SolutionReport) (SolutionAck, error) {
	var reply SolutionAck
	err := c.invoke(serviceName+".ReportSolution", &req, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rc.Close() }

var _ Coordinator = (*Client)(nil)
