package transport

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// RPCService adapts a Coordinator to the net/rpc calling convention so a
// farmer can serve workers across machines. All methods are goroutine-safe
// if the underlying Coordinator is.
type RPCService struct {
	coord Coordinator
}

// NewRPCService wraps a coordinator.
func NewRPCService(coord Coordinator) *RPCService { return &RPCService{coord: coord} }

// RequestWork is the RPC wrapper of Coordinator.RequestWork.
func (s *RPCService) RequestWork(req *WorkRequest, reply *WorkReply) error {
	r, err := s.coord.RequestWork(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// UpdateInterval is the RPC wrapper of Coordinator.UpdateInterval.
func (s *RPCService) UpdateInterval(req *UpdateRequest, reply *UpdateReply) error {
	r, err := s.coord.UpdateInterval(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// ReportSolution is the RPC wrapper of Coordinator.ReportSolution.
func (s *RPCService) ReportSolution(req *SolutionReport, reply *SolutionAck) error {
	r, err := s.coord.ReportSolution(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// serviceName is the rpc-registered name of the farmer service.
const serviceName = "GridBB"

// Server serves a Coordinator over TCP.
type Server struct {
	listener net.Listener
	rpcSrv   *rpc.Server

	mu     sync.Mutex
	closed bool
}

// Serve registers the coordinator and starts accepting connections on addr
// (e.g. ":4321"). It returns immediately; connections are handled on
// background goroutines until Close.
func Serve(coord Coordinator, addr string) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, NewRPCService(coord)); err != nil {
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{listener: ln, rpcSrv: srv}
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// Transient accept errors: keep serving.
			continue
		}
		go s.rpcSrv.ServeConn(conn)
	}
}

// Addr returns the bound address, useful when addr was ":0".
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting connections. In-flight calls finish on their own.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.listener.Close()
}

// Client is a Coordinator implementation that forwards calls to a remote
// farmer over TCP. Calls are synchronous, matching the pull model: the
// worker blocks on its own outbound request, never the reverse.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a farmer served by Serve.
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{rc: rc}, nil
}

// RequestWork implements Coordinator.
func (c *Client) RequestWork(req WorkRequest) (WorkReply, error) {
	var reply WorkReply
	err := c.rc.Call(serviceName+".RequestWork", &req, &reply)
	return reply, err
}

// UpdateInterval implements Coordinator.
func (c *Client) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	var reply UpdateReply
	err := c.rc.Call(serviceName+".UpdateInterval", &req, &reply)
	return reply, err
}

// ReportSolution implements Coordinator.
func (c *Client) ReportSolution(req SolutionReport) (SolutionAck, error) {
	var reply SolutionAck
	err := c.rc.Call(serviceName+".ReportSolution", &req, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rc.Close() }

var _ Coordinator = (*Client)(nil)
