package transport

import (
	"crypto/tls"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/interval"
)

// RPCService adapts a Coordinator to the net/rpc calling convention so a
// farmer can serve workers across machines. All methods are goroutine-safe
// if the underlying Coordinator is.
type RPCService struct {
	coord Coordinator
}

// NewRPCService wraps a coordinator.
func NewRPCService(coord Coordinator) *RPCService { return &RPCService{coord: coord} }

// RequestWork is the RPC wrapper of Coordinator.RequestWork.
func (s *RPCService) RequestWork(req *WorkRequest, reply *WorkReply) error {
	r, err := s.coord.RequestWork(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// UpdateInterval is the RPC wrapper of Coordinator.UpdateInterval.
func (s *RPCService) UpdateInterval(req *UpdateRequest, reply *UpdateReply) error {
	r, err := s.coord.UpdateInterval(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// ReportSolution is the RPC wrapper of Coordinator.ReportSolution.
func (s *RPCService) ReportSolution(req *SolutionReport, reply *SolutionAck) error {
	r, err := s.coord.ReportSolution(*req)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// Exchange is the RPC carrier of BatchCoordinator: it decomposes the
// batch into the coordinator's three-call protocol server-side, so one
// WAN round-trip replaces up to four without the Coordinator interface
// growing. Leg order is report, fold, refill — and a fold that learns the
// resolution is finished suppresses the refill.
func (s *RPCService) Exchange(req *BatchRequest, reply *BatchReply) error {
	if req.HasReport {
		ack, err := s.coord.ReportSolution(SolutionReport{
			Worker: req.Worker, Cost: req.Cost, Path: req.Path,
		})
		if err != nil {
			return err
		}
		reply.BestCost = ack.BestCost
	}
	if req.HasFold {
		ur, err := s.coord.UpdateInterval(UpdateRequest{
			Worker:        req.Worker,
			IntervalID:    req.FoldID,
			Remaining:     req.Remaining,
			Power:         req.Power,
			ExploredDelta: req.ExploredDelta,
			PrunedDelta:   req.PrunedDelta,
			LeavesDelta:   req.LeavesDelta,
			HasGap:        req.HasFoldGap,
			Gap:           req.FoldGap,
			Content:       req.FoldContent,
		})
		if err != nil {
			return err
		}
		reply.HasFold = true
		reply.Finished = ur.Finished
		reply.Known = ur.Known
		reply.Interval = ur.Interval
		reply.BestCost = ur.BestCost
		reply.Hint = ur.Hint
	}
	if req.WantWork && !reply.Finished {
		wr, err := s.coord.RequestWork(WorkRequest{Worker: req.Worker, Power: req.Power})
		if err != nil {
			return err
		}
		reply.HasWork = true
		reply.Status = wr.Status
		reply.IntervalID = wr.IntervalID
		reply.WorkInterval = wr.Interval
		reply.Duplicated = wr.Duplicated
		reply.BestCost = wr.BestCost
		if wr.Status == WorkFinished {
			reply.Finished = true
		}
	}
	return nil
}

// serviceName is the rpc-registered name of the farmer service.
const serviceName = "GridBB"

// DefaultMaxMessageBytes bounds one gob message on both ends of the wire.
// The protocol's messages are intervals and short paths — a few hundred
// bytes at depth-60 trees — so one mebibyte is three orders of magnitude
// of headroom while still making a gigabyte Path unsendable.
const DefaultMaxMessageBytes = 1 << 20

// ServerOptions hardens a coordinator endpoint against a hostile WAN. The
// zero value keeps the seed behaviour except for the message-size limit,
// which defaults to DefaultMaxMessageBytes (set MaxMessageBytes negative
// to disable it).
type ServerOptions struct {
	// ReadTimeout is the per-connection idle read deadline: a peer that
	// goes silent longer than this (between requests, or mid-message) has
	// its connection closed, freeing the slot and the goroutine. Zero
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxConns caps simultaneous connections. When a new peer arrives at
	// the cap, the connection with the oldest traffic is evicted — slow or
	// stalled clients yield to live ones, matching the pull model's bias
	// toward whoever is actually exploring. Zero means unlimited.
	MaxConns int
	// MaxMessageBytes bounds the bytes of one inbound message. Zero means
	// DefaultMaxMessageBytes; negative disables the bound.
	MaxMessageBytes int64
	// TLS, when non-nil, wraps every connection in server-side TLS. Use
	// LoadServerTLS to build a config from PEM files, including the
	// client-certificate authentication mode.
	TLS *tls.Config
	// Token, when non-empty, requires each connection to open with a
	// matching shared token before any RPC is accepted (the lightweight
	// authentication mode; combine with TLS so the token is not sent in
	// clear).
	Token string
	// WireRef is the reference interval of the compact wire codec: when a
	// client negotiates the compact dialect, both ends delta-encode every
	// interval against it. The natural choice is the root interval the
	// coordinator boundary pins (gridbb wires it automatically); the zero
	// value is still correct — intervals then encode their absolute
	// bounds — just larger on the wire.
	WireRef interval.Interval
}

// ServerStats counts what the hardening layer did, mirroring the farmer's
// rejected-and-counted discipline at the connection level.
type ServerStats struct {
	// ActiveConns is the number of currently tracked connections.
	ActiveConns int
	// Evicted counts connections closed to make room under MaxConns.
	Evicted int64
	// Oversize counts connections killed for exceeding MaxMessageBytes.
	Oversize int64
	// AuthFailures counts connections that failed the TLS handshake or
	// the token exchange.
	AuthFailures int64
	// AcceptErrors counts transient listener errors survived by the
	// accept loop's backoff.
	AcceptErrors int64
}

// Server serves a Coordinator over TCP.
type Server struct {
	listener net.Listener
	rpcSrv   *rpc.Server
	opts     ServerOptions

	mu     sync.Mutex
	closed bool
	conns  map[*srvConn]struct{}

	evicted      atomic.Int64
	oversize     atomic.Int64
	authFailures atomic.Int64
	acceptErrors atomic.Int64
}

// Serve registers the coordinator and starts accepting connections on addr
// (e.g. ":4321") with default options. It returns immediately; connections
// are handled on background goroutines until Close.
func Serve(coord Coordinator, addr string) (*Server, error) {
	return ServeWith(coord, addr, ServerOptions{})
}

// ServeTLS is Serve with TLS and optional shared-token authentication.
// tlsConf typically comes from LoadServerTLS; token may be empty when the
// TLS config itself authenticates clients (client-certificate mode).
func ServeTLS(coord Coordinator, addr string, tlsConf *tls.Config, token string) (*Server, error) {
	return ServeWith(coord, addr, ServerOptions{TLS: tlsConf, Token: token})
}

// ServeWith is Serve with explicit hardening options.
func ServeWith(coord Coordinator, addr string, opts ServerOptions) (*Server, error) {
	if opts.MaxMessageBytes == 0 {
		opts.MaxMessageBytes = DefaultMaxMessageBytes
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, NewRPCService(coord)); err != nil {
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if opts.TLS != nil {
		ln = tls.NewListener(ln, opts.TLS)
	}
	s := &Server{
		listener: ln,
		rpcSrv:   srv,
		opts:     opts,
		conns:    make(map[*srvConn]struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// acceptBackoff bounds the sleep ladder on transient Accept errors.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

func (s *Server) acceptLoop() {
	var delay time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// Transient accept error (EMFILE and friends): back off
			// instead of hot-spinning — the condition that broke Accept
			// needs wall time, not retries, to clear.
			s.acceptErrors.Add(1)
			if delay == 0 {
				delay = acceptBackoffBase
			} else if delay *= 2; delay > acceptBackoffMax {
				delay = acceptBackoffMax
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		go s.serveConn(conn)
	}
}

// serveConn authenticates, registers, and serves one connection, and
// guarantees its teardown.
func (s *Server) serveConn(nc net.Conn) {
	c := &srvConn{Conn: nc, srv: s}
	c.touch()
	if !s.register(c) {
		nc.Close()
		return
	}
	defer s.unregister(c)
	defer nc.Close()
	if tc, ok := nc.(*tls.Conn); ok {
		nc.SetDeadline(time.Now().Add(authTimeout))
		if err := tc.Handshake(); err != nil {
			s.authFailures.Add(1)
			return
		}
		nc.SetDeadline(time.Time{})
	}
	if s.opts.Token != "" {
		if err := verifyToken(nc, s.opts.Token); err != nil {
			s.authFailures.Add(1)
			return
		}
	}
	c.authed.Store(true)
	// Dialect sniff: a compact-codec client opens with wirePreamble, whose
	// lead byte can never begin a gob stream; anything else is the legacy
	// text-gob dialect, replayed through prefixedConn.
	var first [1]byte
	if _, err := io.ReadFull(c, first[:]); err != nil {
		return
	}
	if first[0] == wirePreamble[0] {
		rest := make([]byte, len(wirePreamble)-1)
		if _, err := io.ReadFull(c, rest); err != nil {
			return
		}
		for i, b := range rest {
			if b != wirePreamble[i+1] {
				return
			}
		}
		enc := s.opts.WireRef.AppendDelta(nil, interval.Interval{})
		ack := append([]byte{wireAck}, binary.AppendUvarint(nil, uint64(len(enc)))...)
		ack = append(ack, enc...)
		if _, err := c.Write(ack); err != nil {
			return
		}
		s.rpcSrv.ServeCodec(newWireServerCodec(c, s.opts.WireRef, s.opts.MaxMessageBytes))
		return
	}
	s.rpcSrv.ServeConn(&prefixedConn{ReadWriteCloser: c, prefix: first[:]})
}

// register tracks c, evicting a connection when MaxConns is reached. The
// victim is the most idle UNauthenticated connection when one exists, and
// only otherwise the most idle authenticated one: a new arrival has not
// proven anything yet, so a flood of token-less dials competes with
// itself for slots instead of evicting live workers mid-RPC (each failed
// handshake unregisters within authTimeout, recycling the slots the flood
// holds). Reports false when the server is already closed.
func (s *Server) register(c *srvConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if max := s.opts.MaxConns; max > 0 && len(s.conns) >= max {
		var victim *srvConn
		victimAuthed := true
		oldest := int64(math.MaxInt64)
		for oc := range s.conns {
			authed, la := oc.authed.Load(), oc.lastActive.Load()
			if victim != nil && (authed && !victimAuthed || authed == victimAuthed && la >= oldest) {
				continue
			}
			victim, victimAuthed, oldest = oc, authed, la
		}
		if victim != nil {
			delete(s.conns, victim)
			victim.Conn.Close()
			s.evicted.Add(1)
		}
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) unregister(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Addr returns the bound address, useful when addr was ":0".
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Stats snapshots the hardening counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	return ServerStats{
		ActiveConns:  active,
		Evicted:      s.evicted.Load(),
		Oversize:     s.oversize.Load(),
		AuthFailures: s.authFailures.Load(),
		AcceptErrors: s.acceptErrors.Load(),
	}
}

// Close stops accepting connections and closes every tracked connection;
// their serving goroutines unwind on the resulting read errors.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[*srvConn]struct{})
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Conn.Close()
	}
	return err
}

// srvConn is the server's per-connection hardening wrapper: it arms the
// idle read deadline before every Read, timestamps traffic for the
// MaxConns eviction policy, and enforces the message-size window. The
// window is the bytes read since the connection's last write — because
// net/rpc is strictly request/reply per codec, that span can cover at most
// one full inbound message (plus the start of a pipelined next one), so a
// cap of MaxMessageBytes+slack bounds every message without teaching the
// wrapper gob framing.
type srvConn struct {
	net.Conn
	srv        *Server
	lastActive atomic.Int64 // wall nanos of last traffic, for eviction
	window     atomic.Int64 // bytes read since the last write
	authed     atomic.Bool  // TLS + token passed; eviction spares these first
}

func (c *srvConn) touch() { c.lastActive.Store(time.Now().UnixNano()) }

func (c *srvConn) Read(p []byte) (int, error) {
	if t := c.srv.opts.ReadTimeout; t > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(t))
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.touch()
		// Allow one full message of pipelined readahead beyond the cap:
		// the wrapper cannot see gob frame boundaries, only byte flow.
		if max := c.srv.opts.MaxMessageBytes; max > 0 && c.window.Add(int64(n)) > 2*max {
			c.srv.oversize.Add(1)
			return 0, fmt.Errorf("transport: inbound message beyond %d bytes: %w", max, ErrOversize)
		}
	}
	return n, err
}

func (c *srvConn) Write(p []byte) (int, error) {
	c.window.Store(0)
	c.touch()
	return c.Conn.Write(p)
}

// DialOptions configures the client end of the hardened transport. The
// zero value matches the seed behaviour plus the default reply-size limit.
type DialOptions struct {
	// Policy is the per-call liveness discipline; see Policy. Timeout also
	// bounds connection establishment (dial, TLS handshake, token
	// exchange).
	Policy Policy
	// TLS, when non-nil, dials through client-side TLS. Use LoadClientTLS
	// to build a config from PEM files.
	TLS *tls.Config
	// Token, when non-empty, is presented to the server right after
	// connecting (shared-token authentication).
	Token string
	// MaxMessageBytes bounds one inbound reply. Zero means
	// DefaultMaxMessageBytes; negative disables the bound.
	MaxMessageBytes int64
	// Compact asks for the compact wire dialect (delta-coded intervals,
	// one-byte methods; see wire.go). Negotiated, not assumed: an old
	// server closes the connection at the preamble, and the dial falls
	// back to a fresh text-gob connection — so Compact is always safe to
	// set, whatever the server's vintage.
	Compact bool
	// Share marks this client as safe to pool on one physical connection
	// per coordinator address (see DialShared): net/rpc multiplexes
	// concurrent calls by sequence number, so workers on one host don't
	// each need a socket at the root. Honored by the pooling layers
	// (gridbb, cmd/worker), not by DialWith itself.
	Share bool
}

// Client is a Coordinator implementation that forwards calls to a remote
// farmer over TCP. Calls are synchronous, matching the pull model: the
// worker blocks on its own outbound request, never the reverse — but with
// a Policy.Timeout the block is bounded, and a black-holed farmer yields
// ErrDeadline instead of a hang. A Client whose call timed out is closed
// (the reply could still arrive arbitrarily late on that connection);
// Redial layers reconnection and retries on top.
type Client struct {
	rc      *rpc.Client
	timeout time.Duration
}

// Dial connects to a farmer served by Serve.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialTLS is Dial over TLS with optional shared-token authentication,
// mirroring ServeTLS.
func DialTLS(addr string, tlsConf *tls.Config, token string) (*Client, error) {
	return DialWith(addr, DialOptions{TLS: tlsConf, Token: token})
}

// DialWith is Dial with explicit hardening options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	if opts.MaxMessageBytes == 0 {
		opts.MaxMessageBytes = DefaultMaxMessageBytes
	}
	timeout := opts.Policy.Timeout
	nc, err := dialAuthedConn(addr, opts)
	if err != nil {
		return nil, err
	}
	cc := &cliConn{Conn: nc, max: opts.MaxMessageBytes}
	if opts.Compact {
		codec, err := negotiateCompact(cc, opts.MaxMessageBytes)
		if err == nil {
			nc.SetDeadline(time.Time{})
			return &Client{rc: rpc.NewClientWithCodec(codec), timeout: timeout}, nil
		}
		// An old server trips over the preamble and closes the stream;
		// re-dial from scratch and speak the dialect it does know.
		nc.Close()
		if nc, err = dialAuthedConn(addr, opts); err != nil {
			return nil, err
		}
		cc = &cliConn{Conn: nc, max: opts.MaxMessageBytes}
	}
	nc.SetDeadline(time.Time{})
	return &Client{rc: rpc.NewClient(cc), timeout: timeout}, nil
}

// dialAuthedConn dials, TLS-handshakes, and token-authenticates one
// connection. The whole establishment phase runs under a deadline —
// Policy.Timeout when set, else authTimeout, mirroring the bound the
// server already puts on its half — so a black-holed coordinator can
// never hang a dialer. The deadline is still armed on return (covering
// the caller's dialect negotiation); the caller clears it.
func dialAuthedConn(addr string, opts DialOptions) (net.Conn, error) {
	timeout := opts.Policy.Timeout
	authBound := timeout
	if authBound <= 0 {
		authBound = authTimeout
	}
	var nc net.Conn
	var err error
	if timeout > 0 {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(authBound))
	if opts.TLS != nil {
		conf := opts.TLS
		if conf.ServerName == "" && !conf.InsecureSkipVerify {
			// Derive the verification name from the dialed address, as
			// tls.Dial would; the caller's config is not mutated.
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			conf = conf.Clone()
			conf.ServerName = host
		}
		tc := tls.Client(nc, conf)
		if err := tc.Handshake(); err != nil {
			nc.Close()
			return nil, fmt.Errorf("transport: tls handshake with %s: %w", addr, err)
		}
		nc = tc
	}
	if opts.Token != "" {
		if err := presentToken(nc, opts.Token); err != nil {
			nc.Close()
			return nil, fmt.Errorf("transport: authenticate to %s: %w", addr, err)
		}
	}
	return nc, nil
}

// cliConn enforces the reply-size window on the worker side, symmetric to
// srvConn: a hostile coordinator cannot feed a worker an unbounded reply.
type cliConn struct {
	net.Conn
	max    int64
	window atomic.Int64
}

func (c *cliConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.max > 0 && c.window.Add(int64(n)) > 2*c.max {
		return 0, fmt.Errorf("transport: inbound reply beyond %d bytes: %w", c.max, ErrOversize)
	}
	return n, err
}

func (c *cliConn) Write(p []byte) (int, error) {
	c.window.Store(0)
	return c.Conn.Write(p)
}

// timerPool recycles deadline timers across calls: a worker heartbeating
// every few seconds would otherwise allocate a runtime timer per call.
var timerPool sync.Pool

// invoke runs one RPC under the client's deadline. On timeout the
// connection is closed and the in-flight call drained before returning, so
// a late reply can never race a caller that has moved on and reused its
// reply value.
func (c *Client) invoke(method string, req, reply any) error {
	if c.timeout <= 0 {
		return c.rc.Call(method, req, reply)
	}
	call := c.rc.Go(method, req, reply, make(chan *rpc.Call, 1))
	timer, _ := timerPool.Get().(*time.Timer)
	if timer == nil {
		timer = time.NewTimer(c.timeout)
	} else {
		timer.Reset(c.timeout)
	}
	select {
	case <-call.Done:
		if !timer.Stop() {
			<-timer.C
		}
		timerPool.Put(timer)
		return call.Error
	case <-timer.C:
		timerPool.Put(timer)
		c.rc.Close()
		<-call.Done
		return fmt.Errorf("transport: %s after %v: %w", method, c.timeout, ErrDeadline)
	}
}

// RequestWork implements Coordinator.
func (c *Client) RequestWork(req WorkRequest) (WorkReply, error) {
	var reply WorkReply
	err := c.invoke(serviceName+".RequestWork", &req, &reply)
	return reply, err
}

// UpdateInterval implements Coordinator.
func (c *Client) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	var reply UpdateReply
	err := c.invoke(serviceName+".UpdateInterval", &req, &reply)
	return reply, err
}

// ReportSolution implements Coordinator.
func (c *Client) ReportSolution(req SolutionReport) (SolutionAck, error) {
	var reply SolutionAck
	err := c.invoke(serviceName+".ReportSolution", &req, &reply)
	return reply, err
}

// Exchange implements BatchCoordinator. Against an old server the call
// returns rpc.ServerError("rpc: can't find method ..."); callers use
// that as the signal to fall back to the three-call protocol.
func (c *Client) Exchange(req BatchRequest) (BatchReply, error) {
	var reply BatchReply
	err := c.invoke(serviceName+".Exchange", &req, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rc.Close() }

var _ Coordinator = (*Client)(nil)
var _ BatchCoordinator = (*Client)(nil)
