package transport

import (
	"errors"
	"testing"
	"time"
)

// countingCoord is a minimal Coordinator for wire-level tests. A negative
// power draws a server-side error (the hardened farmer's behaviour).
type countingCoord struct{ requests int }

func (c *countingCoord) RequestWork(req WorkRequest) (WorkReply, error) {
	c.requests++
	if req.Power < 0 {
		return WorkReply{}, errors.New("non-positive power")
	}
	return WorkReply{Status: WorkWait, BestCost: 7}, nil
}
func (c *countingCoord) UpdateInterval(req UpdateRequest) (UpdateReply, error) {
	return UpdateReply{Known: false}, nil
}
func (c *countingCoord) ReportSolution(req SolutionReport) (SolutionAck, error) {
	return SolutionAck{BestCost: req.Cost}, nil
}

// TestRedialSurvivesServerRestart pins the property cmd/subfarmer depends
// on for its lifetime: a plain Client is permanently dead after one
// connection loss, but a Redial coordinator re-dials and resumes once the
// server is back — with fail-fast behaviour inside the backoff window
// rather than a dial storm.
func TestRedialSurvivesServerRestart(t *testing.T) {
	coord := &countingCoord{}
	srv, err := Serve(coord, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	r := NewRedial(addr)
	r.backoff.Base = 5 * time.Millisecond
	defer r.Close()

	if reply, err := r.RequestWork(WorkRequest{Worker: "w", Power: 1}); err != nil || reply.BestCost != 7 {
		t.Fatalf("first call: reply=%+v err=%v", reply, err)
	}

	// Kill the server. Server.Close only stops the listener (in-flight
	// connections drain on their own), so model the process death's TCP
	// reset by severing the established connection too.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	r.client.Close()
	r.mu.Unlock()
	if _, err := r.RequestWork(WorkRequest{Worker: "w", Power: 1}); err == nil {
		t.Fatal("call against a dead server succeeded")
	}

	// Restart on the same address: within a few backoff windows the
	// client must re-dial and serve calls again.
	srv2, err := Serve(coord, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		reply, err := r.RequestWork(WorkRequest{Worker: "w", Power: 1})
		if err == nil {
			if reply.BestCost != 7 {
				t.Fatalf("recovered reply %+v", reply)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered after server restart: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A server-side protocol error must NOT drop the connection.
	before := coord.requests
	if _, err := r.RequestWork(WorkRequest{Worker: "w", Power: -1}); err == nil {
		t.Fatal("negative power accepted")
	}
	if reply, err := r.RequestWork(WorkRequest{Worker: "w", Power: 1}); err != nil || reply.BestCost != 7 {
		t.Fatalf("connection dropped after a server-side error: reply=%+v err=%v", reply, err)
	}
	if coord.requests <= before {
		t.Fatal("no calls reached the coordinator after the protocol error")
	}
}
