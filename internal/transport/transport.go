// Package transport defines the farmer–worker protocol of the paper's
// architecture (§4) and its two carriers: direct in-process calls and a TCP
// net/rpc transport for multi-process deployments.
//
// The protocol is strictly pull-model: workers initiate every exchange and
// the farmer never contacts a worker, because workers "can be behind
// fire-walls" (§4). There are exactly three worker-initiated operations:
//
//   - RequestWork — ask for an interval (on joining and on finishing one);
//   - UpdateInterval — periodically re-register the folded remaining
//     interval (the worker-side checkpoint of §4.1) and learn of any
//     shrink decided by load balancing, plus the current global best;
//   - ReportSolution — push an improving solution immediately (§4.4).
//
// Every message carries intervals, never node lists: that size asymmetry is
// the paper's central optimization, quantified by BenchmarkAblationWorkUnitEncoding.
package transport

import (
	"math/big"

	"repro/internal/interval"
)

// WorkerID identifies a B&B process. IDs are chosen by workers (hostname,
// pid, index...) and only need to be unique within one resolution.
type WorkerID string

// WorkStatus is the coordinator's verdict on a work request.
type WorkStatus int

const (
	// WorkAssigned: the reply carries an interval to explore.
	WorkAssigned WorkStatus = iota
	// WorkWait: nothing to assign right now; retry later. Rare — it only
	// happens transiently while the coordinator restores a checkpoint.
	WorkWait
	// WorkFinished: INTERVALS is empty, the resolution is over; the
	// worker must stop (§4.3: the process "is informed by the
	// coordinator that it must resume").
	WorkFinished
)

// String renders the status for logs.
func (s WorkStatus) String() string {
	switch s {
	case WorkAssigned:
		return "assigned"
	case WorkWait:
		return "wait"
	case WorkFinished:
		return "finished"
	default:
		return "unknown"
	}
}

// WorkRequest asks the coordinator for an interval.
type WorkRequest struct {
	// Worker identifies the requesting process.
	Worker WorkerID
	// Power is the requester's self-estimated exploration speed (nodes
	// per second); the partitioning operator splits proportionally to
	// the holder's and requester's powers (§4.2).
	Power int64
	// Job, when non-empty, pins the request to one job of a multi-tenant
	// coordinator (internal/jobs): the reply must come from that job's
	// interval table. Empty means "any job" — a single-job coordinator
	// ignores the field entirely, and a job table picks by fair share.
	// Optional in both directions: old peers omit it and are served from
	// the default job.
	Job string
}

// WorkReply carries the assignment.
type WorkReply struct {
	// Status qualifies the reply; the other fields are only meaningful
	// for WorkAssigned.
	Status WorkStatus
	// IntervalID names the coordinator-side copy; the worker echoes it
	// in updates.
	IntervalID int64
	// Interval is the assigned work unit.
	Interval interval.Interval
	// BestCost is the current global best (rule 1 of solution sharing:
	// the worker initializes its local best from SOLUTION, §4.4).
	BestCost int64
	// Duplicated tells the worker its interval is shared with other
	// processes (informational; behaviour is identical).
	Duplicated bool
	// Job names the job the assignment belongs to, when the coordinator
	// is a multi-tenant job table. A worker that asked with an empty
	// WorkRequest.Job learns here which job it was routed to and must
	// echo the value on every fold and report for this interval. Empty
	// from single-job coordinators; old workers ignore it (they only
	// ever talk to one job anyway).
	Job string
}

// UpdateRequest re-registers a worker's remaining interval.
type UpdateRequest struct {
	// Worker identifies the process.
	Worker WorkerID
	// IntervalID names the coordinator-side copy being updated.
	IntervalID int64
	// Remaining is the fold of the worker's active-node list.
	Remaining interval.Interval
	// Power refreshes the worker's speed estimate.
	Power int64
	// ExploredDelta, PrunedDelta, LeavesDelta report exploration
	// progress since the previous message, for the Table 2 statistics.
	ExploredDelta, PrunedDelta, LeavesDelta int64
	// HasGap gates Gap: a gap-carving fold (DESIGN.md §12). Gap is a
	// region strictly interior to Remaining that the reporter vouches is
	// fully explored — a sub-farmer's [C,B) hull fold overstates its
	// fragmented table, and the gap lets the coordinator carve the
	// explored hole out instead of re-issuing it as work. Optional in
	// both directions: old senders omit it, old coordinators ignore it
	// (the fold then keeps plain hull semantics), so mixed-version trees
	// stay correct either way.
	HasGap bool
	Gap    interval.Interval
	// Content, when non-nil, is the true amount of unexplored ground (in
	// leaf units) behind this fold. A sub-farmer's Remaining is the hull
	// of a fragmented table and can overstate its holdings by orders of
	// magnitude; Content lets the coordinator value the copy honestly for
	// size accounting, victim selection, and endgame detection. Advisory
	// and optional in both directions: old senders omit it, old
	// coordinators ignore it, and it never moves work by itself.
	Content *big.Int
	// Job routes the fold to one job of a multi-tenant coordinator: the
	// IntervalID namespace is per job, so a fold must name the table it
	// folds into. Empty means the default job (what old workers are).
	Job string
}

// UpdateReply carries the reconciled interval.
type UpdateReply struct {
	// Finished is true when the whole resolution is over.
	Finished bool
	// Known is false when the coordinator no longer tracks the interval
	// (it was completed, or reassigned after the worker was presumed
	// dead); the worker should drop it and request fresh work.
	Known bool
	// Interval is the authoritative copy after intersection (eq. 14);
	// the worker must restrict itself to it.
	Interval interval.Interval
	// BestCost is the current global best (rule 3 of solution sharing).
	BestCost int64
	// Hint, when non-nil, is a root-initiated steal hint (DESIGN.md §12):
	// a summary of the work the coordinator still tracks beyond the
	// updated copy. Optional in both directions — old peers omit it and
	// ignore it — so its absence must never change caller behaviour.
	Hint *StealHint
}

// StealHint is the root's frontier summary piggybacked on fold replies to
// its sub-farmers. A draining sub-farmer uses it to refill *before* its
// table runs dry (the work-conserving low-water rule): Others > 0 says
// the root still tracks ground elsewhere, and RichestBits bounds how much.
// It rides existing replies — no new message type, preserving the paper's
// three-operation pull protocol.
type StealHint struct {
	// Others is how many tracked copies the coordinator holds besides
	// the one this reply reconciles.
	Others int64
	// RichestBits is the bit length of the total tracked length beyond
	// the reconciled copy — a magnitude, not an exact count, because the
	// sub-farmer only needs scale to make a refill decision.
	RichestBits int64
}

// SolutionReport pushes an improving solution (rule 2 of solution sharing).
type SolutionReport struct {
	// Worker identifies the discoverer.
	Worker WorkerID
	// Cost is the solution's objective value.
	Cost int64
	// Path is the rank path of the leaf (problem-independent form).
	Path []int
	// Job routes the report to one job's SOLUTION file on a multi-tenant
	// coordinator — incumbents never cross jobs. Empty means the default
	// job. Optional in both directions like WorkRequest.Job.
	Job string
}

// SolutionAck acknowledges a report.
type SolutionAck struct {
	// BestCost is the global best after processing the report — it may
	// be better than the reported cost if another worker beat this one.
	BestCost int64
	// Accepted is true when the report improved SOLUTION.
	Accepted bool
}

// BatchRequest coalesces one cadence worth of upstream traffic — solution
// report, interval fold (with retire expressed as an empty Remaining), and
// work refill — into a single round-trip. Flat deployments keep the three
// separate calls; the batch exists for the hierarchical tree, where a
// sub-farmer's cadence would otherwise pay two to four WAN round-trips.
// The batch deliberately carries no Job field: a sub-farmer binds to one
// job for its lifetime (its local table must be one partition fragment),
// so its upstream leg is single-job by construction and the server-side
// decomposition routes it to the default job.
type BatchRequest struct {
	// Worker and Power are as in WorkRequest/UpdateRequest.
	Worker WorkerID
	Power  int64
	// HasFold gates the UpdateInterval leg: FoldID and Remaining carry
	// what UpdateRequest would, and the three deltas report progress.
	HasFold                                 bool
	FoldID                                  int64
	Remaining                               interval.Interval
	ExploredDelta, PrunedDelta, LeavesDelta int64
	// HasFoldGap/FoldGap mirror UpdateRequest.HasGap/Gap for the fold
	// leg: an explored hole interior to Remaining the coordinator may
	// carve out. Optional in both directions, like the steal hint.
	HasFoldGap bool
	FoldGap    interval.Interval
	// FoldContent mirrors UpdateRequest.Content for the fold leg.
	FoldContent *big.Int
	// HasReport gates the ReportSolution leg.
	HasReport bool
	Cost      int64
	Path      []int
	// WantWork gates the RequestWork leg, skipped when the fold leg
	// already learned the resolution is finished.
	WantWork bool
}

// BatchReply carries the verdicts of every leg the request enabled.
type BatchReply struct {
	// HasFold mirrors the request: Finished/Known/Interval are the
	// UpdateReply verdict for the fold leg.
	HasFold  bool
	Finished bool
	Known    bool
	Interval interval.Interval
	// HasWork mirrors WantWork: Status/IntervalID/WorkInterval/Duplicated
	// are the WorkReply for the refill leg.
	HasWork      bool
	Status       WorkStatus
	IntervalID   int64
	WorkInterval interval.Interval
	Duplicated   bool
	// BestCost is the global best after every leg ran (each leg also
	// reports it; the last one wins, and they are monotone anyway).
	BestCost int64
	// Hint mirrors UpdateReply.Hint for the fold leg (optional, may be
	// nil; old peers omit and ignore it).
	Hint *StealHint
}

// BatchCoordinator is the optional coalescing extension of Coordinator.
// The RPC transport implements it end to end (an old coordinator answers
// "can't find method", which callers treat as "speak the three-call
// protocol"); in-process coordinators need not bother, because a batch
// over a function call saves nothing.
type BatchCoordinator interface {
	// Exchange runs report, fold, and refill — whichever the request
	// enables, in that order — in one round-trip.
	Exchange(req BatchRequest) (BatchReply, error)
}

// Coordinator is the farmer-side API workers pull on. Implementations must
// be safe for concurrent use by many workers.
type Coordinator interface {
	// RequestWork implements the load-balancing entry point (§4.2).
	RequestWork(req WorkRequest) (WorkReply, error)
	// UpdateInterval implements the worker-side checkpoint (§4.1) and
	// the lazy propagation of partitioning decisions.
	UpdateInterval(req UpdateRequest) (UpdateReply, error)
	// ReportSolution implements immediate solution sharing (§4.4).
	ReportSolution(req SolutionReport) (SolutionAck, error)
}
