// The multi-job worker: one process, one protocol endpoint, many trees.
// A WorkerSession asks an untagged RequestWork ("give me whichever job is
// starved"), learns the job from the reply tag, and keeps one explorer
// per job it has ever served — numbering and incumbent are per tree, so
// they can never be shared across jobs. Folds and solution reports echo
// the job tag, which is what keeps the coordinator-side tables disjoint.
package jobs

import (
	"fmt"
	"sort"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/transport"
)

// Factories resolves a job id to that job's problem constructor. A worker
// can only explore trees it can rebuild locally; an assignment for an
// unresolvable job is a configuration error, surfaced as such.
type Factories func(jobID string) (func() bb.Problem, bool)

// SpecFactories adapts a static id→Spec catalogue (what a submission API
// hands out) into a Factories resolver.
func SpecFactories(specs map[string]Spec) Factories {
	return func(jobID string) (func() bb.Problem, bool) {
		s, ok := specs[jobID]
		if !ok {
			return nil, false
		}
		f, err := s.Factory()
		if err != nil {
			return nil, false
		}
		return f, true
	}
}

// WorkerConfig shapes a WorkerSession.
type WorkerConfig struct {
	// ID identifies the worker to the coordinator.
	ID transport.WorkerID
	// Power is the self-estimated speed in nodes per second.
	Power int64
	// UpdatePeriodNodes is the fold cadence per job; zero means 1<<16.
	UpdatePeriodNodes int64
}

// jobEngine is one job's local exploration state.
type jobEngine struct {
	job        string
	ex         *core.Explorer
	intervalID int64
	haveWork   bool
	// sinceUpdate counts nodes explored since the last fold for this
	// job; reported is what has already been shipped upstream.
	sinceUpdate int64
	reported    bb.Stats
	// done records that the coordinator declared this job finished.
	done bool
}

// WorkerSession drives one worker against a multi-tenant coordinator. It
// is single-goroutine (like worker.Session); run one per goroutine for a
// concurrent fleet.
type WorkerSession struct {
	cfg       WorkerConfig
	coord     transport.Coordinator
	factories Factories

	engines map[string]*jobEngine
	active  *jobEngine
	// finished means the coordinator answered WorkFinished to an
	// untagged request: the whole table is drained.
	finished bool
	pushErr  error

	// Messages counts protocol exchanges.
	Messages struct {
		Requests, Updates, Reports int64
	}
}

// NewWorkerSession builds a session over a coordinator.
func NewWorkerSession(cfg WorkerConfig, coord transport.Coordinator, factories Factories) *WorkerSession {
	if cfg.UpdatePeriodNodes <= 0 {
		cfg.UpdatePeriodNodes = 1 << 16
	}
	return &WorkerSession{
		cfg:       cfg,
		coord:     coord,
		factories: factories,
		engines:   make(map[string]*jobEngine),
	}
}

// Finished reports whether the coordinator declared the whole table over.
func (s *WorkerSession) Finished() bool { return s.finished }

// HasWork reports whether the session holds an interval right now.
func (s *WorkerSession) HasWork() bool { return s.active != nil }

// Advance explores up to budget nodes across whatever jobs the fair-share
// rule routes this worker to, interleaving folds as they come due. A
// (0, false, nil) return means the coordinator asked the worker to wait.
func (s *WorkerSession) Advance(budget int64) (explored int64, finished bool, err error) {
	if budget <= 0 && s.active == nil && !s.finished {
		// Zero-budget calls still acquire work (simulator ticks on a
		// slow host), mirroring worker.Session.
		_, err := s.requestWork()
		return 0, s.finished, err
	}
	for explored < budget && !s.finished {
		if s.active == nil {
			ok, err := s.requestWork()
			if err != nil {
				return explored, s.finished, err
			}
			if !ok {
				return explored, s.finished, nil // wait
			}
			continue
		}
		st := s.active
		slice := budget - explored
		if due := s.cfg.UpdatePeriodNodes - st.sinceUpdate; due < slice {
			slice = due
		}
		n, done := st.ex.Step(slice)
		explored += n
		st.sinceUpdate += n
		if s.pushErr != nil {
			err := s.pushErr
			s.pushErr = nil
			return explored, s.finished, err
		}
		if done || st.sinceUpdate >= s.cfg.UpdatePeriodNodes {
			if err := s.update(st); err != nil {
				return explored, s.finished, err
			}
		}
	}
	return explored, s.finished, nil
}

// requestWork asks for an interval from any job. It returns false with a
// nil error when told to wait.
func (s *WorkerSession) requestWork() (bool, error) {
	s.Messages.Requests++
	reply, err := s.coord.RequestWork(transport.WorkRequest{Worker: s.cfg.ID, Power: s.cfg.Power})
	if err != nil {
		return false, fmt.Errorf("worker %s: request work: %w", s.cfg.ID, err)
	}
	switch reply.Status {
	case transport.WorkFinished:
		s.finished = true
		return false, nil
	case transport.WorkWait:
		return false, nil
	case transport.WorkAssigned:
		st, err := s.engine(reply.Job)
		if err != nil {
			return false, err
		}
		st.ex.Reassign(reply.Interval)
		st.ex.AdoptBest(reply.BestCost)
		st.intervalID = reply.IntervalID
		st.haveWork = true
		st.sinceUpdate = 0
		st.done = false
		s.active = st
		return true, nil
	default:
		return false, fmt.Errorf("worker %s: unknown work status %v", s.cfg.ID, reply.Status)
	}
}

// engine returns (building on first use) the per-job exploration state.
func (s *WorkerSession) engine(jobID string) (*jobEngine, error) {
	if st, ok := s.engines[jobID]; ok {
		return st, nil
	}
	factory, ok := s.factories(jobID)
	if !ok {
		return nil, fmt.Errorf("worker %s: no problem factory for job %q", s.cfg.ID, jobID)
	}
	p := factory()
	nb := core.NewNumbering(p.Shape())
	st := &jobEngine{job: jobID}
	st.ex = core.NewExplorer(p, nb, interval.Interval{}, bb.Infinity)
	st.ex.OnImprove = func(sol bb.Solution) { s.pushSolution(st, sol) }
	s.engines[jobID] = st
	return st, nil
}

// pushSolution ships an improvement to the owning job's SOLUTION file
// (rule 2 of §4.4, per job). It runs inside Explorer.Step; errors are
// stashed and surfaced by Advance.
func (s *WorkerSession) pushSolution(st *jobEngine, sol bb.Solution) {
	s.Messages.Reports++
	ack, err := s.coord.ReportSolution(transport.SolutionReport{
		Worker: s.cfg.ID, Cost: sol.Cost, Path: sol.Path, Job: st.job,
	})
	if err != nil {
		s.pushErr = fmt.Errorf("worker %s: report solution: %w", s.cfg.ID, err)
		return
	}
	st.ex.AdoptBest(ack.BestCost)
}

// update folds one job's remaining interval upstream, tagged with the
// job id so it lands in the right table.
func (s *WorkerSession) update(st *jobEngine) error {
	stats := st.ex.Stats()
	req := transport.UpdateRequest{
		Worker:        s.cfg.ID,
		IntervalID:    st.intervalID,
		Remaining:     st.ex.Remaining(),
		Power:         s.cfg.Power,
		ExploredDelta: stats.Explored - st.reported.Explored,
		PrunedDelta:   stats.Pruned - st.reported.Pruned,
		LeavesDelta:   stats.Leaves - st.reported.Leaves,
		Job:           st.job,
	}
	s.Messages.Updates++
	reply, err := s.coord.UpdateInterval(req)
	if err != nil {
		return fmt.Errorf("worker %s: update job %s: %w", s.cfg.ID, st.job, err)
	}
	st.reported = stats
	st.sinceUpdate = 0
	if !reply.Known {
		st.ex.Reassign(interval.Interval{})
		st.haveWork = false
		st.done = reply.Finished
		s.active = nil
		return nil
	}
	st.ex.Restrict(reply.Interval)
	st.ex.AdoptBest(reply.BestCost)
	if reply.Finished {
		st.done = true
	}
	if st.ex.Done() {
		st.haveWork = false
		s.active = nil
	}
	return nil
}

// Checkpoint folds every job that currently holds work — called before a
// planned shutdown so nothing is re-explored on resume.
func (s *WorkerSession) Checkpoint() error {
	for _, id := range s.jobIDs() {
		st := s.engines[id]
		if !st.haveWork {
			continue
		}
		if err := s.update(st); err != nil {
			return err
		}
	}
	return nil
}

// jobIDs returns engine keys in sorted order, for deterministic sweeps.
func (s *WorkerSession) jobIDs() []string {
	ids := make([]string, 0, len(s.engines))
	for id := range s.engines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Stats sums local exploration counters across all jobs.
func (s *WorkerSession) Stats() bb.Stats {
	var out bb.Stats
	for _, st := range s.engines {
		out.Add(st.ex.Stats())
	}
	return out
}

// Reported sums the counters already shipped upstream; Stats minus
// Reported is the work lost if this worker crashed right now.
func (s *WorkerSession) Reported() bb.Stats {
	var out bb.Stats
	for _, st := range s.engines {
		out.Add(st.reported)
	}
	return out
}

// JobStats returns one job's local exploration counters.
func (s *WorkerSession) JobStats(jobID string) bb.Stats {
	if st, ok := s.engines[jobID]; ok {
		return st.ex.Stats()
	}
	return bb.Stats{}
}
