package jobs

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/transport"
)

// FuzzJobBoundary extends the farmer's FuzzCoordinatorBoundary up one
// layer: an adversarial message stream against a live multi-tenant table
// holding two running jobs and one cancelled one. Hostile probes carry
// unknown job ids, oversize and malformed ids, traffic for the cancelled
// job, and intervals in one job's coordinates tagged with the other job's
// id. After every message each running job's INTERVALS table must still be
// pairwise disjoint and inside that job's own root — the per-tenant
// partition invariant — and every provably hostile probe must land in the
// matching rejection counter.
func FuzzJobBoundary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("hostile-tenant-stream-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Add([]byte{7, 7, 7, 7, 6, 6, 6, 6, 5, 5, 5, 5, 4, 4, 4, 4, 3, 3, 3, 3})

	// alpha's root is 2^12 leaves, beta's 2^20 — so a beta-coordinate
	// interval tagged alpha provably escapes alpha's root.
	alphaSpec := Spec{Domain: "knapsack", N: 12, Seed: 1}
	betaSpec := Spec{Domain: "knapsack", N: 20, Seed: 2}
	roots := map[string]interval.Interval{}
	for id, spec := range map[string]Spec{"alpha": alphaSpec, "beta": betaSpec} {
		factory, err := spec.Factory()
		if err != nil {
			f.Fatal(err)
		}
		roots[id] = core.NewNumbering(factory().Shape()).RootRange()
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable(Config{})
		if err := tb.Submit("alpha", alphaSpec); err != nil {
			t.Fatal(err)
		}
		if err := tb.Submit("beta", betaSpec); err != nil {
			t.Fatal(err)
		}
		if err := tb.Submit("gone", Spec{Domain: "knapsack", N: 14, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		if err := tb.Cancel("gone"); err != nil {
			t.Fatal(err)
		}

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		nextInt64 := func() int64 {
			var v uint64
			for i := 0; i < 8; i++ {
				v = v<<8 | uint64(next())
			}
			return int64(v)
		}
		liveJob := func() string {
			if next()%2 == 0 {
				return "alpha"
			}
			return "beta"
		}

		// Interval ids observed from honest assignments, per job, so
		// hostile updates can reuse a real id under the wrong tag.
		ids := map[string][]int64{}
		var unknownBad, invalidBad, stoppedBad, crossBad int

		checkInvariant := func() {
			t.Helper()
			for id, root := range roots {
				fm := tb.Farmer(id)
				if fm == nil {
					continue
				}
				set := interval.NewSet()
				for _, rec := range fm.IntervalsSnapshot() {
					if rec.Interval.IsEmpty() {
						continue
					}
					if !root.ContainsInterval(rec.Interval) {
						t.Fatalf("job %s: tracked interval %v escaped its root", id, rec.Interval)
					}
					if ov := set.Add(rec.Interval); ov.Sign() != 0 {
						t.Fatalf("job %s: tracked intervals overlap by %s units", id, ov)
					}
				}
			}
		}

		for s := 0; s < 64; s++ {
			switch next() % 8 {
			case 0: // honest tagged request
				job := liveJob()
				r, err := tb.RequestWork(transport.WorkRequest{
					Worker: transport.WorkerID([]byte{'h', next() % 4}),
					Power:  1 + int64(next()%16),
					Job:    job,
				})
				if err == nil && r.Status == transport.WorkAssigned {
					ids[job] = append(ids[job], r.IntervalID)
				}
			case 1: // honest untagged request: fair-share routed
				r, err := tb.RequestWork(transport.WorkRequest{
					Worker: transport.WorkerID([]byte{'u', next() % 4}),
					Power:  1 + int64(next()%16),
				})
				if err == nil && r.Status == transport.WorkAssigned {
					ids[r.Job] = append(ids[r.Job], r.IntervalID)
				}
			case 2: // unknown job tag on a random op: always an error
				job := "no-such-job-" + string([]byte{'a' + next()%26})
				var err error
				switch next() % 3 {
				case 0:
					_, err = tb.RequestWork(transport.WorkRequest{Worker: "x", Power: 1, Job: job})
				case 1:
					_, err = tb.UpdateInterval(transport.UpdateRequest{Worker: "x", Job: job})
				default:
					_, err = tb.ReportSolution(transport.SolutionReport{Worker: "x", Cost: nextInt64(), Job: job})
				}
				if err == nil {
					t.Fatalf("unknown job %q accepted", job)
				}
				unknownBad++
			case 3: // malformed job id: oversize or path-escaping
				job := strings.Repeat("x", 129+int(next()))
				if next()%2 == 0 {
					job = ".." // path escape, rejected by namespace validation
				}
				if _, err := tb.RequestWork(transport.WorkRequest{Worker: "x", Power: 1, Job: job}); err == nil {
					t.Fatalf("malformed job id accepted")
				}
				invalidBad++
			case 4: // traffic for the cancelled job: terminal verdict, no error
				switch next() % 3 {
				case 0:
					r, err := tb.RequestWork(transport.WorkRequest{Worker: "x", Power: 1, Job: "gone"})
					if err != nil || r.Status != transport.WorkFinished {
						t.Fatalf("cancelled-job request: status %v err %v", r.Status, err)
					}
				case 1:
					r, err := tb.UpdateInterval(transport.UpdateRequest{Worker: "x", Job: "gone", IntervalID: nextInt64()})
					if err != nil || r.Known || !r.Finished {
						t.Fatalf("cancelled-job update: known=%v finished=%v err %v", r.Known, r.Finished, err)
					}
				default:
					if _, err := tb.ReportSolution(transport.SolutionReport{Worker: "x", Cost: nextInt64(), Job: "gone"}); err != nil {
						t.Fatalf("cancelled-job report: %v", err)
					}
				}
				stoppedBad++
			case 5: // cross-job interval: beta coordinates under alpha's tag
				id := nextInt64()
				if len(ids["alpha"]) > 0 && next()%2 == 0 {
					id = ids["alpha"][int(next())%len(ids["alpha"])]
				}
				lo := 1 << 13 // past alpha's 2^12-leaf root, inside beta's
				hi := lo + 1 + int(next())
				tb.UpdateInterval(transport.UpdateRequest{
					Worker:     transport.WorkerID([]byte{'c', next() % 4}),
					Job:        "alpha",
					IntervalID: id,
					Remaining:  interval.FromInt64(int64(lo), int64(hi)),
					Power:      1,
				})
				crossBad++
			case 6: // hostile update under a live tag: random id and bounds
				job := liveJob()
				tb.UpdateInterval(transport.UpdateRequest{
					Worker:        transport.WorkerID([]byte{'h', next() % 4}),
					Job:           job,
					IntervalID:    nextInt64(),
					Remaining:     interval.FromInt64(nextInt64()%(1<<21), nextInt64()%(1<<21)),
					Power:         nextInt64() % 100,
					ExploredDelta: int64(next()),
				})
			case 7: // hostile report under a live tag
				path := make([]int, int(next())%8)
				for i := range path {
					path[i] = int(int8(next()))
				}
				tb.ReportSolution(transport.SolutionReport{
					Worker: transport.WorkerID([]byte{'r', next() % 4}),
					Job:    liveJob(),
					Cost:   nextInt64(),
					Path:   path,
				})
			}
			checkInvariant()
		}

		c := tb.Counters()
		if int(c.UnknownJobs) < unknownBad {
			t.Fatalf("%d unknown-job probes, UnknownJobs counter %d", unknownBad, c.UnknownJobs)
		}
		if int(c.InvalidJobIDs) < invalidBad {
			t.Fatalf("%d malformed-id probes, InvalidJobIDs counter %d", invalidBad, c.InvalidJobIDs)
		}
		if int(c.StoppedJobTraffic) < stoppedBad {
			t.Fatalf("%d cancelled-job probes, StoppedJobTraffic counter %d", stoppedBad, c.StoppedJobTraffic)
		}
		if crossBad > 0 {
			fm := tb.Farmer("alpha")
			if fm == nil {
				t.Fatalf("alpha stopped running under a hostile stream")
			}
			if fm.Counters().RejectedIntervals == 0 {
				t.Fatalf("%d cross-job interval probes, alpha rejected none", crossBad)
			}
		}
	})
}
