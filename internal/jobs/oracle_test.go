package jobs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/transport"
)

// TestCrossJobIsolationOracle is the isolation contract, checked against
// the sequential oracle: 30 random (instances, fleet, seed) triples, each
// running several jobs concurrently through one table with a fleet of
// goroutine workers. Per job, the grid must land on exactly the optimum
// bb.Solve finds when the instance is solved alone — costs are
// timing-independent even though goroutine interleaving is not. A second,
// primed run (every player seeded with the known optimum) makes the
// pruning decisions timing-independent too, so each job's farmer-accounted
// ExploredNodes is pinned against the sequential primed count by the
// partition-invariant accounting, now summed per tenant. The bound is
// two-sided: a single node short means lost (or cross-job leaked) work —
// conservation is exact, so the lower bound is equality — while the upper
// bound allows only the §4.2 steal-in-flight rework window (a holder may
// explore past a split point until its next update restricts it; at most
// one update period per steal, and the farmer advances the co-owner past
// any prefix the holder's update proves explored).
// updatePeriod is the worker update cadence in the oracle fleets; it also
// bounds the per-steal rework window the primed run's upper bound allows.
const updatePeriod = 512

func TestCrossJobIsolationOracle(t *testing.T) {
	pool := []Spec{
		{Domain: "knapsack", N: 20, Seed: 1},
		{Domain: "knapsack", N: 22, Seed: 9},
		{Domain: "tsp", N: 8, Seed: 3},
		{Domain: "tsp", N: 8, Seed: 7},
		{Domain: "qap", N: 6, Seed: 4},
		{Domain: "qap", N: 7, Seed: 1},
		{Domain: "flowshop", Jobs: 10, Machines: 5, Seed: 2},
	}

	// Oracle and primed-reference caches, keyed by position in the pool —
	// triples resample the pool, no point re-solving.
	oracle := make([]bb.Solution, len(pool))
	primedRef := make([]int64, len(pool))
	for i, spec := range pool {
		factory, err := spec.Factory()
		if err != nil {
			t.Fatal(err)
		}
		oracle[i], _ = bb.Solve(factory(), bb.Infinity)
		if !oracle[i].Valid() {
			t.Fatalf("pool[%d] (%s): oracle found no solution", i, spec.Domain)
		}
		p := factory()
		nb := core.NewNumbering(p.Shape())
		ex := core.NewExplorer(p, nb, nb.RootRange(), oracle[i].Cost)
		for {
			if _, done := ex.Step(1 << 20); done {
				break
			}
		}
		primedRef[i] = ex.Stats().Explored
	}

	for triple := 0; triple < 30; triple++ {
		triple := triple
		t.Run(fmt.Sprintf("triple-%02d", triple), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + int64(triple)))
			numJobs := 2 + rng.Intn(3)
			fleet := 2 + rng.Intn(4)
			picks := make([]int, numJobs)
			specs := make(map[string]Spec, numJobs)
			for j := range picks {
				picks[j] = rng.Intn(len(pool))
				specs[fmt.Sprintf("j%d", j)] = pool[picks[j]]
			}

			// Run 1, from Infinity: optima and path validity.
			got := runFleet(t, specs, fleet, false)
			for j, pick := range picks {
				id := fmt.Sprintf("j%d", j)
				p := got[id]
				if p.State != "done" {
					t.Fatalf("%s: state %s, want done", id, p.State)
				}
				if p.BestCost != oracle[pick].Cost {
					t.Errorf("%s: grid optimum %d, sequential oracle %d", id, p.BestCost, oracle[pick].Cost)
				}
				factory, _ := specs[id].Factory()
				if cost, err := evalLeafPath(factory(), p.BestPath); err != nil {
					t.Errorf("%s: incumbent path invalid: %v", id, err)
				} else if cost != p.BestCost {
					t.Errorf("%s: incumbent path evaluates to %d, claimed %d", id, cost, p.BestCost)
				}
			}

			// Run 2, primed with the optimum: exact node accounting.
			primed := make(map[string]Spec, numJobs)
			for j, pick := range picks {
				spec := pool[pick]
				spec.InitialUpper = oracle[pick].Cost
				primed[fmt.Sprintf("j%d", j)] = spec
			}
			got = runFleet(t, primed, fleet, true)
			slack := int64(fleet) * updatePeriod
			for j, pick := range picks {
				id := fmt.Sprintf("j%d", j)
				p := got[id]
				if p.State != "done" {
					t.Fatalf("%s (primed): state %s, want done", id, p.State)
				}
				if p.Counters.ExploredNodes < primedRef[pick] {
					t.Errorf("%s (primed): grid explored %d nodes, sequential reference %d — work was lost",
						id, p.Counters.ExploredNodes, primedRef[pick])
				}
				if p.Counters.ExploredNodes > primedRef[pick]+slack {
					t.Errorf("%s (primed): grid explored %d nodes, sequential reference %d — rework beyond the %d-node steal window",
						id, p.Counters.ExploredNodes, primedRef[pick], slack)
				}
			}
		})
	}
}

// runFleet drives the jobs through one table with `fleet` concurrent
// goroutine workers and returns the final per-job progress.
func runFleet(t *testing.T, specs map[string]Spec, fleet int, primed bool) map[string]Progress {
	t.Helper()
	// The lease TTL is pushed out so no interval ever expires mid-test:
	// re-issued leases would double-explore and break the primed run's
	// exact accounting (and they model faults this oracle excludes).
	tb := NewTable(Config{MaxActive: len(specs), LeaseTTL: time.Hour})
	for id, spec := range specs {
		if err := tb.Submit(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	factories := SpecFactories(specs)
	var wg sync.WaitGroup
	for w := 0; w < fleet; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewWorkerSession(WorkerConfig{
				ID:                transport.WorkerID(fmt.Sprintf("w%d", w)),
				Power:             int64(1 + w),
				UpdatePeriodNodes: updatePeriod,
			}, tb, factories)
			for i := 0; ; i++ {
				_, fin, err := sess.Advance(1024)
				if err != nil {
					t.Errorf("worker w%d: %v", w, err)
					return
				}
				if fin {
					return
				}
				if i > 200_000 {
					t.Errorf("worker w%d never finished", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !tb.Done() {
		t.Fatalf("fleet drained but table not done (primed=%v)", primed)
	}
	out := make(map[string]Progress, len(specs))
	for _, p := range tb.List() {
		out[p.ID] = p
	}
	return out
}

// evalLeafPath walks the problem down the rank path and prices the leaf
// (the harness's incumbent-validity check, restated for this package).
func evalLeafPath(p bb.Problem, path []int) (int64, error) {
	depth := p.Shape().Depth()
	if len(path) != depth {
		return 0, fmt.Errorf("path length %d != tree depth %d", len(path), depth)
	}
	p.Reset()
	for d, r := range path {
		if r < 0 || r >= p.Shape().Branching(d) {
			return 0, fmt.Errorf("rank %d out of range at depth %d", r, d)
		}
		p.Descend(r)
	}
	return p.Cost(), nil
}
