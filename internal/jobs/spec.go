// Job specifications: the declarative form of "which tree is this job
// exploring". A Spec travels over the submission API as JSON and is small
// enough to persist next to a job's checkpoint, so a restarted service can
// rebuild the exact problem instance and resume the resolution from its
// interval file.
package jobs

import (
	"fmt"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tsp"
)

// Spec names a problem instance by generator parameters rather than by
// payload: every domain in this repo builds instances deterministically
// from a seed, which keeps the submission message tiny and makes a spec
// reproducible anywhere.
type Spec struct {
	// Domain selects the problem family: "flowshop", "tsp", "qap" or
	// "knapsack".
	Domain string `json:"domain"`
	// Jobs and Machines size a flowshop instance (Taillard generator).
	Jobs     int `json:"jobs,omitempty"`
	Machines int `json:"machines,omitempty"`
	// N sizes a tsp, qap or knapsack instance.
	N int `json:"n,omitempty"`
	// Size is the tsp board side; Max the qap flow/distance bound. Zero
	// picks a sensible default.
	Size int64 `json:"size,omitempty"`
	Max  int64 `json:"max,omitempty"`
	// Seed drives the instance generator.
	Seed int64 `json:"seed"`
	// InitialUpper primes the job's SOLUTION file (the paper's run 2
	// protocol). Zero means no prime (bb.Infinity).
	InitialUpper int64 `json:"initial_upper,omitempty"`
	// Owner attributes the job to a user for the per-user admission cap.
	Owner string `json:"owner,omitempty"`
	// Weight scales the job's fair share of the fleet; zero means 1.
	Weight int64 `json:"weight,omitempty"`
}

// Factory compiles the spec into a problem constructor, or explains why it
// cannot. The constructor is deterministic: every call yields an identical
// instance, so workers anywhere rebuild the same tree.
func (s Spec) Factory() (func() bb.Problem, error) {
	switch s.Domain {
	case "flowshop":
		if s.Jobs <= 0 || s.Machines <= 0 {
			return nil, fmt.Errorf("jobs: flowshop spec needs jobs and machines, got %dx%d", s.Jobs, s.Machines)
		}
		ins := flowshop.Taillard(s.Jobs, s.Machines, s.Seed)
		return func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		}, nil
	case "tsp":
		if s.N <= 0 {
			return nil, fmt.Errorf("jobs: tsp spec needs n, got %d", s.N)
		}
		size := s.Size
		if size <= 0 {
			size = 1000
		}
		ins := tsp.RandomEuclidean(s.N, size, s.Seed)
		return func() bb.Problem { return tsp.NewProblem(ins) }, nil
	case "qap":
		if s.N <= 0 {
			return nil, fmt.Errorf("jobs: qap spec needs n, got %d", s.N)
		}
		max := s.Max
		if max <= 0 {
			max = 20
		}
		ins := qap.Random(s.N, max, s.Seed)
		return func() bb.Problem { return qap.NewProblem(ins) }, nil
	case "knapsack":
		if s.N <= 0 {
			return nil, fmt.Errorf("jobs: knapsack spec needs n, got %d", s.N)
		}
		ins := knapsack.Random(s.N, s.Seed)
		return func() bb.Problem { return knapsack.NewProblem(ins) }, nil
	default:
		return nil, fmt.Errorf("jobs: unknown domain %q", s.Domain)
	}
}
